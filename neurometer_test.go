package neurometer

import (
	"strings"
	"testing"
)

func quickChip(t *testing.T) *Chip {
	t.Helper()
	c, err := Build(Config{
		Name: "api-test", TechNM: 28, ClockHz: 700e6,
		Tx: 1, Ty: 2,
		Core: CoreConfig{
			NumTUs: 2, TURows: 32, TUCols: 32, TUDataType: Int8, HasSU: true,
			Mem: []MemSegment{{Name: "spad", CapacityBytes: 2 << 20}},
		},
		NoCBisectionGBps: 128,
		OffChip:          []OffChipPort{{Kind: HBMPort, GBps: 256}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPublicBuildAndReport(t *testing.T) {
	c := quickChip(t)
	if c.PeakTOPS() <= 0 || c.AreaMM2() <= 0 || c.TDPW() <= 0 {
		t.Fatalf("degenerate chip: %v", c)
	}
	rep := c.Report()
	for _, want := range []string{"TOPS", "breakdown", "timing"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestPublicTOPSTargetSearch(t *testing.T) {
	c, err := Build(Config{
		Name: "search", TechNM: 28, TargetTOPS: 10,
		Tx: 1, Ty: 1,
		Core: CoreConfig{
			NumTUs: 2, TURows: 64, TUCols: 64, TUDataType: Int8,
			Mem: []MemSegment{{Name: "spad", CapacityBytes: 2 << 20}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.PeakTOPS(); got < 9.9 || got > 10.1 {
		t.Errorf("TOPS target search: got %.2f, want ~10", got)
	}
}

func TestPublicWorkloads(t *testing.T) {
	if got := len(Workloads()); got != 3 {
		t.Fatalf("Workloads() = %d, want 3", got)
	}
	g, err := Workload("resnet")
	if err != nil {
		t.Fatal(err)
	}
	if g.MACs() <= 0 {
		t.Errorf("resnet has no MACs")
	}
	if _, err := Workload("gpt"); err == nil {
		t.Errorf("unknown workload must fail")
	}
}

func TestPublicSimulate(t *testing.T) {
	c := quickChip(t)
	g, err := Workload("inception")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(c, g, 4, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.FPS <= 0 || res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("bad simulation: %+v", res)
	}
	eff := c.Efficiency(res.AchievedTOPS*1e12, res.Activity)
	if eff.TOPSPerWatt <= 0 || eff.PowerW >= c.TDPW() {
		t.Errorf("bad efficiency: %+v", eff)
	}
	batch, r2, err := LatencyLimitedBatch(c, g, 10e-3, DefaultSimOptions())
	if err != nil {
		t.Fatal(err)
	}
	if batch < 1 || (batch > 1 && r2.LatencySec > 10e-3) {
		t.Errorf("latency-limited batch %d violates the bound (%.1fms)", batch, r2.LatencySec*1e3)
	}
}

func TestPublicSparsityStudy(t *testing.T) {
	r, err := SparsityStudy(TU8, DefaultSparseWorkload(), 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Gain <= 1 {
		t.Errorf("TU8 at 90%% sparsity should gain, got %.2f", r.Gain)
	}
	if len(DefaultSparsities()) == 0 {
		t.Errorf("no default sparsities")
	}
}

func TestPublicRuntimePower(t *testing.T) {
	c := quickChip(t)
	w, bd := c.RuntimePower(Activity{TUMACsPerSec: 1e12})
	if w <= 0 || bd == nil {
		t.Errorf("runtime power: %g", w)
	}
}
