// Brawny-vs-wimpy mini sweep: a condensed version of the paper's §III case
// study using the public API. Four design points spanning the brawny-wimpy
// spectrum are built under the Table I environment and evaluated on the
// three datacenter CNNs at small and large batch, reproducing the central
// tension: wimpy wins utilization, brawny wins throughput and efficiency.
package main

import (
	"fmt"
	"log"

	"neurometer"
)

// point is one (X, N, Tx, Ty) tuple from the paper's design space.
type point struct{ x, n, tx, ty int }

func buildPoint(p point) (*neurometer.Chip, error) {
	tiles := p.tx * p.ty
	return neurometer.Build(neurometer.Config{
		Name:   fmt.Sprintf("(%d,%d,%d,%d)", p.x, p.n, p.tx, p.ty),
		TechNM: 28, ClockHz: 700e6,
		Tx: p.tx, Ty: p.ty,
		Core: neurometer.CoreConfig{
			NumTUs: p.n, TURows: p.x, TUCols: p.x,
			TUDataType: neurometer.Int8,
			HasSU:      true,
			Mem: []neurometer.MemSegment{
				{Name: "spad", CapacityBytes: int64(32<<20) / int64(tiles)},
			},
		},
		NoCBisectionGBps: 256,
		OffChip:          []neurometer.OffChipPort{{Kind: neurometer.HBMPort, GBps: 700}},
		AreaBudgetMM2:    500,
		PowerBudgetW:     300,
	})
}

func main() {
	points := []point{
		{256, 1, 1, 1}, // maximally brawny: TPU-v1-class single array
		{64, 2, 2, 4},  // the paper's throughput optimum
		{64, 4, 1, 2},  // the paper's efficiency optimum
		{8, 4, 4, 8},   // the paper's utilization optimum (wimpy)
	}
	models := neurometer.Workloads()
	opt := neurometer.DefaultSimOptions()

	for _, batch := range []int{1, 256} {
		fmt.Printf("== batch %d (mean over ResNet/Inception/NasNet) ==\n", batch)
		fmt.Printf("%-14s %9s %9s %7s %9s %10s\n",
			"point", "peakTOPS", "achTOPS", "util", "runtimeW", "TOPS/W")
		for _, p := range points {
			chip, err := buildPoint(p)
			if err != nil {
				log.Fatal(err)
			}
			var ach, util, watts, weff float64
			for _, g := range models {
				sim, err := neurometer.Simulate(chip, g, batch, opt)
				if err != nil {
					log.Fatal(err)
				}
				e := chip.Efficiency(sim.AchievedTOPS*1e12, sim.Activity)
				ach += sim.AchievedTOPS / 3
				util += sim.Utilization / 3
				watts += e.PowerW / 3
				weff += e.TOPSPerWatt / 3
			}
			fmt.Printf("%-14s %9.2f %9.2f %6.1f%% %9.1f %10.3f\n",
				chip.Cfg.Name, chip.PeakTOPS(), ach, util*100, watts, weff)
		}
		fmt.Println()
	}
	fmt.Println("expect: (8,4,4,8) leads utilization; (64,2,2,4) leads throughput;")
	fmt.Println("        (64,4,1,2) trades a modest share of throughput for efficiency.")
}
