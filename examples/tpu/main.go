// TPU-v1 modeling walkthrough: build the paper's §II-C validation target
// with the public API and compare the modeled area/TDP and component shares
// against the published numbers (Fig. 3) — the same experiment cmd/validate
// automates, spelled out by hand.
package main

import (
	"fmt"
	"log"

	"neurometer"
)

func main() {
	// TPU-v1 at the architecture level: one core with a 256x256 Int8
	// systolic array at 28nm/0.86V/700MHz; 24 MiB unified buffer (dual
	// bank, one read + one write port), 4 MiB accumulator buffer, a weight
	// FIFO, an activation pipeline (256-lane vector unit), two DDR3
	// channels and a PCIe Gen3 x16 interface. The published ~21% unknown
	// area plus the unmodeled host interface enter as white space.
	cfg := neurometer.Config{
		Name:   "tpu-v1",
		TechNM: 28, Vdd: 0.86, ClockHz: 700e6,
		Tx: 1, Ty: 1,
		Core: neurometer.CoreConfig{
			NumTUs: 1, TURows: 256, TUCols: 256,
			TUDataType: neurometer.Int8,
			VULanes:    256,
			Mem: []neurometer.MemSegment{
				{Name: "ub", CapacityBytes: 24 << 20, BlockBytes: 256,
					Banks: 2, ReadPorts: 1, WritePorts: 1,
					ReadBytesPerCycle: 256, WriteBytesPerCycle: 256},
				{Name: "acc", CapacityBytes: 4 << 20, BlockBytes: 256, Banks: 4,
					ReadBytesPerCycle: 1024, WriteBytesPerCycle: 1024},
				{Name: "wfifo", CapacityBytes: 256 << 10, BlockBytes: 256,
					ReadBytesPerCycle: 256, WriteBytesPerCycle: 64},
			},
		},
		NoCTopology: neurometer.NoCBus, NoCBisectionGBps: 30,
		OffChip: []neurometer.OffChipPort{
			{Kind: neurometer.DDRPort, GBps: 34},
			{Kind: neurometer.PCIePort, GBps: 14},
		},
		WhiteSpaceFrac: 0.26,
	}

	chip, err := neurometer.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(chip.Report())

	// Compare against the published numbers the paper validates against.
	const publishedArea, publishedTDP = 331.0, 75.0
	areaErr := 100 * abs(chip.AreaMM2()-publishedArea) / publishedArea
	tdpErr := 100 * abs(chip.TDPW()-publishedTDP) / publishedTDP
	fmt.Printf("== published comparison (Fig. 3) ==\n")
	fmt.Printf("area: %.1f mm2 vs <%.0f mm2 published (%.1f%% err; paper <10%%)\n",
		chip.AreaMM2(), publishedArea, areaErr)
	fmt.Printf("TDP:  %.1f W vs %.0f W published (%.1f%% err; paper <5%%)\n",
		chip.TDPW(), publishedTDP, tdpErr)
	fmt.Printf("peak: %.2f TOPS (published 92 TOPS)\n", chip.PeakTOPS())

	bd := chip.AreaBreakdown()
	fmt.Printf("systolic array share: %.1f%% (published 24%%)\n",
		100*bd.Find("tu").AreaMM2/chip.AreaMM2())
	fmt.Printf("on-chip memory share: %.1f%% (published UB+ACC ~35%%)\n",
		100*bd.Find("mem").AreaMM2/chip.AreaMM2())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
