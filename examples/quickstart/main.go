// Quickstart: describe an ML accelerator at the architecture level, let
// NeuroMeter derive everything else, and read the power/area/timing report —
// then pair the chip with the bundled performance simulator for runtime
// power and efficiency, exactly the Fig. 1 flow of the paper.
package main

import (
	"fmt"
	"log"

	"neurometer"
)

func main() {
	// A small datacenter inference chip: 8 cores, each with two 64x64 Int8
	// systolic tensor units, a scalar control core, and a 4 MiB slice of
	// the distributed on-chip memory. Everything else — vector unit lanes,
	// vector register file ports, memory banking, NoC link widths — is
	// auto-scaled by the framework.
	cfg := neurometer.Config{
		Name:    "quickstart",
		TechNM:  28,       // technology node
		ClockHz: 700e6,    // target clock; alternatively set TargetTOPS
		Tx:      2, Ty: 4, // 2x4 tile grid (ring <=4 tiles, mesh otherwise)
		Core: neurometer.CoreConfig{
			NumTUs: 2, TURows: 64, TUCols: 64,
			TUDataType: neurometer.Int8,
			HasSU:      true,
			Mem: []neurometer.MemSegment{
				{Name: "spad", CapacityBytes: 4 << 20},
			},
		},
		NoCBisectionGBps: 256,
		OffChip: []neurometer.OffChipPort{
			{Kind: neurometer.HBMPort, GBps: 700},
		},
	}

	chip, err := neurometer.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The default output: power, area, timing, with component breakdowns
	// and the hardware critical path.
	fmt.Println(chip.Report())

	// Runtime analysis: run ResNet-50 at batch 8 through the performance
	// simulator and feed the activity factors back for runtime power.
	resnet, err := neurometer.Workload("resnet")
	if err != nil {
		log.Fatal(err)
	}
	sim, err := neurometer.Simulate(chip, resnet, 8, neurometer.DefaultSimOptions())
	if err != nil {
		log.Fatal(err)
	}
	eff := chip.Efficiency(sim.AchievedTOPS*1e12, sim.Activity)

	fmt.Printf("== ResNet-50 @ batch 8 ==\n")
	fmt.Printf("throughput:  %.0f fps (latency %.2f ms)\n", sim.FPS, sim.LatencySec*1e3)
	fmt.Printf("achieved:    %.2f of %.2f peak TOPS (%.1f%% utilization)\n",
		sim.AchievedTOPS, chip.PeakTOPS(), sim.Utilization*100)
	fmt.Printf("runtime:     %.1f W -> %.3f TOPS/W\n", eff.PowerW, eff.TOPSPerWatt)

	// And the 10ms-SLO batch size the paper's datacenter study uses.
	batch, _, err := neurometer.LatencyLimitedBatch(chip, resnet, 10e-3, neurometer.DefaultSimOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latency-limited batch (10ms SLO): %d\n", batch)
}
