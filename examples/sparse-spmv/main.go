// Sparse SpMV study (the paper's §IV mini-case study): how much energy
// efficiency different accelerator architectures extract from element-wise
// weight sparsity. Tensor-unit designs skip aligned all-zero blocks of
// their array size; reduction trees skip vector-sized segments — so
// fine-grained (wimpier) architectures benefit much more readily.
package main

import (
	"fmt"
	"log"

	"neurometer"
)

func main() {
	w := neurometer.DefaultSparseWorkload() // 2048x2048 weights, batch 32
	fmt.Printf("synthetic SpMV: %dx%d weight matrix, %d batched vectors\n\n", w.M, w.N, w.K)

	archs := []neurometer.SparseArch{
		neurometer.TU32, neurometer.TU8, neurometer.RT1024, neurometer.RT64,
	}
	sparsities := neurometer.DefaultSparsities()
	out, err := neurometer.SparsitySweep(w, sparsities, 42)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-9s", "sparsity")
	for _, a := range archs {
		fmt.Printf(" %9s", a)
	}
	fmt.Printf("   %6s\n", "beta")
	for i, s := range sparsities {
		fmt.Printf("%-9.2f", s)
		for _, a := range archs {
			fmt.Printf(" %8.2fx", out[a][i].Gain)
		}
		fmt.Printf("   %6.2f\n", out[neurometer.TU8][i].Beta)
	}

	// Detail view of a single point: what the numbers are made of.
	r, err := neurometer.SparsityStudy(neurometer.TU8, w, 0.9, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTU8 @ 90%% sparsity in detail:\n")
	fmt.Printf("  CSR overhead beta:      %.2f (paper: 2.0-2.5)\n", r.Beta)
	fmt.Printf("  8x8 blocks skipped:     %.1f%%\n", r.SkipFrac*100)
	fmt.Printf("  compute reduction y:    %.3f\n", r.Y)
	fmt.Printf("  runtime: %.3g s dense -> %.3g s sparse\n", r.DenseTimeSec, r.SparseTimeSec)
	fmt.Printf("  power:   %.1f W dense -> %.1f W sparse\n", r.DensePowerW, r.SparsePowerW)
	fmt.Printf("  energy-efficiency gain: %.2fx\n", r.Gain)
	fmt.Println("\nexpect: gains above 1x only past ~0.5 sparsity; TU8/RT64 rise steeply")
	fmt.Println("        near 0.9 while TU32/RT1024 improve in a low slope (Fig. 11).")
}
