// Technology scaling study: the same accelerator architecture evaluated
// across process nodes from 65nm to 7nm. This is the kind of cross-node
// what-if the swappable technology backend exists for: architecture and
// clock stay fixed; area, TDP and efficiency follow the node parameters
// (logic density, gate energy, SRAM cells, wire RC, and the analog blocks
// that barely shrink).
package main

import (
	"fmt"
	"log"

	"neurometer"
)

func main() {
	nodes := []int{65, 45, 28, 16, 7}
	fmt.Println("one architecture, five nodes: 8 cores x two 64x64 Int8 TUs, 32MB, 700GB/s HBM")
	fmt.Printf("%6s %10s %8s %10s %10s %12s\n",
		"node", "area-mm2", "TDP-W", "peakTOPS", "TOPS/W", "TOPS/mm2")
	var prevEff float64
	for _, nm := range nodes {
		c, err := neurometer.Build(neurometer.Config{
			Name:   fmt.Sprintf("dc-%dnm", nm),
			TechNM: nm,
			// 700MHz closes timing at every node down to 65nm for this
			// datapath; deeper nodes could clock higher, but holding the
			// clock isolates the pure backend scaling.
			ClockHz: 700e6,
			Tx:      2, Ty: 4,
			Core: neurometer.CoreConfig{
				NumTUs: 2, TURows: 64, TUCols: 64,
				TUDataType: neurometer.Int8,
				HasSU:      true,
				Mem:        []neurometer.MemSegment{{Name: "spad", CapacityBytes: 4 << 20}},
			},
			NoCBisectionGBps: 256,
			OffChip:          []neurometer.OffChipPort{{Kind: neurometer.HBMPort, GBps: 700}},
		})
		if err != nil {
			log.Fatalf("%dnm: %v", nm, err)
		}
		eff := c.PeakTOPSPerWatt()
		trend := ""
		if prevEff > 0 {
			trend = fmt.Sprintf("(%.2fx)", eff/prevEff)
		}
		fmt.Printf("%4dnm %10.1f %8.1f %10.2f %9.3f %s %11.3f\n",
			nm, c.AreaMM2(), c.TDPW(), c.PeakTOPS(), eff, trend,
			c.PeakTOPS()/c.AreaMM2())
		prevEff = eff
	}
	fmt.Println("\nnote how the HBM interface refuses to shrink with the logic: at 7nm")
	fmt.Println("the analog PHY is one of the largest blocks left on the die.")
}
