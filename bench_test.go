package neurometer

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment end to end
// and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. The first iteration of each benchmark
// logs the regenerated rows (visible with -v), and EXPERIMENTS.md records
// the paper-vs-measured comparison.

import (
	"context"
	"fmt"
	"testing"

	"neurometer/internal/cyclesim"
	"neurometer/internal/dse"
	"neurometer/internal/perfsim"
	"neurometer/internal/refchips"
	"neurometer/internal/sparse"
	"neurometer/internal/workloads"
)

// BenchmarkFig3TPUv1Validation regenerates the TPU-v1 validation of Fig. 3:
// chip-level area and TDP against the published numbers plus the component
// share breakdown.
func BenchmarkFig3TPUv1Validation(b *testing.B) {
	var rep refchips.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = refchips.ValidateTPUv1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.ModeledAreaMM2, "area-mm2")
	b.ReportMetric(rep.ModeledTDPW, "tdp-W")
	b.ReportMetric(rep.AreaErr()*100, "area-err-%")
	b.ReportMetric(rep.TDPErr()*100, "tdp-err-%")
	b.Logf("\n%s", rep)
}

// BenchmarkFig4TPUv2Validation regenerates the TPU-v2 area validation of
// Fig. 4 including the automatic 2R1W VMem port search.
func BenchmarkFig4TPUv2Validation(b *testing.B) {
	var rep refchips.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = refchips.ValidateTPUv2()
		if err != nil {
			b.Fatal(err)
		}
	}
	r, w, err := refchips.VMemPorts()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.ModeledAreaMM2, "area-mm2")
	b.ReportMetric(rep.AreaErr()*100, "area-err-%")
	b.ReportMetric(float64(r), "vmem-read-ports")
	b.ReportMetric(float64(w), "vmem-write-ports")
	b.Logf("\n%s", rep)
}

// BenchmarkFig5EyerissValidation regenerates the Eyeriss validation of
// Fig. 5: PE/chip area plus the AlexNet conv1/conv5 runtime power.
func BenchmarkFig5EyerissValidation(b *testing.B) {
	var rep refchips.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = refchips.ValidateEyeriss()
		if err != nil {
			b.Fatal(err)
		}
	}
	pe, err := refchips.EyerissPEAreaMM2()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(rep.ModeledAreaMM2, "area-mm2")
	b.ReportMetric(pe*1000, "pe-area-um2/1000")
	for _, row := range rep.PowerRows {
		b.ReportMetric(row.ModeledPct, row.Component+"-mW")
	}
	b.Logf("\n%s", rep)
}

// BenchmarkTable2Workloads regenerates Table II: the workload
// characteristics (MACs, params, peak transient data) of the three
// datacenter CNNs from their layer tables.
func BenchmarkTable2Workloads(b *testing.B) {
	var macs, params int64
	for i := 0; i < b.N; i++ {
		macs, params = 0, 0
		for _, g := range workloads.All() {
			macs += g.MACs()
			params += g.Params()
		}
	}
	for _, g := range workloads.All() {
		b.Logf("%-10s MACs=%.2fG params=%.1fM peakData=%.2fMB",
			g.Name, float64(g.MACs())/1e9, float64(g.Params())/1e6,
			float64(g.PeakDataBytes())/1e6)
	}
	b.ReportMetric(float64(macs)/1e9, "total-GMACs")
	b.ReportMetric(float64(params)/1e6, "total-Mparams")
}

// BenchmarkFig7SoftwareOptimization regenerates Fig. 7: throughput before
// and after the TF-Sim-style graph optimizations across batch sizes.
func BenchmarkFig7SoftwareOptimization(b *testing.B) {
	cs := dse.TableI()
	var rows []dse.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = dse.Fig7(cs, dse.DefaultModels(), []int{1, 16, 256})
		if err != nil {
			b.Fatal(err)
		}
	}
	var worst, best = 1e9, 0.0
	for _, r := range rows {
		g := r.Gain()
		if g < worst {
			worst = g
		}
		if g > best {
			best = g
		}
		b.Logf("%-10s bs=%-4d before=%8.1ffps after=%8.1ffps gain=%.2fx",
			r.Model, r.Batch, r.FPSBefore, r.FPSAfter, g)
	}
	b.ReportMetric(worst, "min-gain-x")
	b.ReportMetric(best, "max-gain-x")
}

// BenchmarkFig8AreaTDP regenerates Fig. 8: the chip-level sweep with area
// and TDP breakdowns and peak efficiencies over the Table I design space.
func BenchmarkFig8AreaTDP(b *testing.B) {
	cs := dse.TableI()
	var rows []dse.Fig8Row
	for i := 0; i < b.N; i++ {
		cands := dse.Frontier(dse.Enumerate(cs), cs.TOPSCap)
		rows = dse.Fig8(cands)
	}
	var bestTCO dse.Fig8Row
	for _, r := range rows {
		if r.PeakTOPS > 91 && r.PeakTOPSPerTCO > bestTCO.PeakTOPSPerTCO {
			bestTCO = r
		}
	}
	b.ReportMetric(float64(len(rows)), "design-points")
	b.ReportMetric(bestTCO.PeakTOPSPerTCO*1e3, "best-92T-TCOx1e3")
	b.Logf("92-TOPS peak-TCO optimum: %s (paper: (128,4,1,1))", bestTCO.Point)
	for _, r := range rows[:min(8, len(rows))] {
		b.Logf("%-14s peak=%6.2fT area=%6.1fmm2 tdp=%6.1fW mem=%5.1fmm2",
			r.Point, r.PeakTOPS, r.AreaMM2, r.TDPW,
			r.AreaBreakdown.Find("mem").AreaMM2)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BenchmarkFig9BatchSweep regenerates Fig. 9: throughput/latency vs batch
// size on (64,2,2,4) and the 10ms latency-limited batch sizes.
func BenchmarkFig9BatchSweep(b *testing.B) {
	cs := dse.TableI()
	var limits map[string]int
	for i := 0; i < b.N; i++ {
		var err error
		_, limits, err = dse.Fig9(cs, dse.DefaultModels(), []int{1, 4, 16, 64, 256})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(limits["resnet"]), "resnet-slo-batch")
	b.ReportMetric(float64(limits["nasnet"]), "nasnet-slo-batch")
	b.ReportMetric(float64(limits["inception"]), "inception-slo-batch")
	b.Logf("10ms batches: resnet=%d nasnet=%d inception=%d (paper: 16/4/32)",
		limits["resnet"], limits["nasnet"], limits["inception"])
}

// BenchmarkFig10RuntimeDSE regenerates Fig. 10: the runtime performance and
// efficiency study across the design space at the three batch regimes.
func BenchmarkFig10RuntimeDSE(b *testing.B) {
	cs := dse.TableI()
	cands := dse.SecondRound(dse.Frontier(dse.Enumerate(cs), cs.TOPSCap), cs.TOPSCap)
	var out map[string][]dse.RuntimeRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = dse.Fig10(cands, dse.DefaultModels())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, regime := range []string{"a-small", "b-medium", "c-large"} {
		rows := out[regime]
		thr, _ := dse.Winner(rows, dse.ByAchievedTOPS)
		util, _ := dse.Winner(rows, dse.ByUtilization)
		weff, _ := dse.Winner(rows, dse.ByTOPSPerWatt)
		ceff, _ := dse.Winner(rows, dse.ByTOPSPerTCO)
		b.Logf("Fig10(%s): thr=%s util=%s tops/w=%s tops/tco=%s",
			regime, thr.Point, util.Point, weff.Point, ceff.Point)
	}
	// The §III-B.2 headline tradeoff at batch 1.
	var eff, thr dse.RuntimeRow
	for _, r := range out["a-small"] {
		if r.Point == (dse.Point{X: 64, N: 4, Tx: 1, Ty: 2}) {
			eff = r
		}
		if r.Point == (dse.Point{X: 64, N: 2, Tx: 2, Ty: 4}) {
			thr = r
		}
	}
	if thr.AchievedTOPS > 0 {
		b.ReportMetric(eff.AchievedTOPS/thr.AchievedTOPS, "ach-ratio(paper-0.84)")
		b.ReportMetric(eff.TOPSPerTCO/thr.TOPSPerTCO, "tco-gain-x(paper-2.1)")
		b.ReportMetric(eff.TOPSPerWatt/thr.TOPSPerWatt, "w-gain-x(paper-1.3)")
	}
}

// BenchmarkRuntimeStudyWorkers compares the serial and parallel sweep
// paths on the Fig. 10 second-round candidate set at the fixed batch-8
// regime. Output is byte-identical across worker counts (pinned by the
// internal/dse parallel tests); only wall clock differs. The pool only
// helps when GOMAXPROCS > 1 — on a single-core host run with -cpu 4 (or
// higher) to see the speedup.
func BenchmarkRuntimeStudyWorkers(b *testing.B) {
	cs := dse.TableI()
	cands := dse.SecondRound(dse.Frontier(dse.Enumerate(cs), cs.TOPSCap), cs.TOPSCap)
	models := dse.DefaultModels()
	spec := dse.BatchSpec{Fixed: 8}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := dse.RuntimeStudyHardened(context.Background(), cands, models,
					spec, perfsim.DefaultOptions(), dse.Hardening{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11SparsityGain regenerates Fig. 11: the sparse-over-dense
// energy-efficiency gains on TU- and RT-based architectures.
func BenchmarkFig11SparsityGain(b *testing.B) {
	w := sparse.DefaultWorkload()
	var out map[sparse.Arch][]sparse.Result
	for i := 0; i < b.N; i++ {
		var err error
		out, err = sparse.Sweep(w, sparse.DefaultSparsities(), 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, a := range []sparse.Arch{sparse.TU32, sparse.TU8, sparse.RT1024, sparse.RT64} {
		rows := out[a]
		b.Logf("%-7s gain@0.5=%.2fx gain@0.9=%.2fx gain@0.99=%.2fx beta@0.9=%.2f",
			a, rows[2].Gain, rows[5].Gain, rows[7].Gain, rows[5].Beta)
	}
	b.ReportMetric(out[sparse.TU8][5].Gain, "tu8-gain@0.9")
	b.ReportMetric(out[sparse.TU32][5].Gain, "tu32-gain@0.9")
	b.ReportMetric(out[sparse.TU8][5].Beta, "beta@0.9")
}

// BenchmarkAblations regenerates the design-choice ablation studies called
// out in DESIGN.md: NoC topology, memory cell, inner-TU interconnect, VReg
// port sharing, dataflow, and operand data type.
func BenchmarkAblations(b *testing.B) {
	cs := dse.TableI()
	var report string
	for i := 0; i < b.N; i++ {
		var err error
		report, err = dse.AllAblations(cs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("\n%s", report)
}

// BenchmarkChipBuild measures the framework's own modeling speed — the
// "fast" in fast-and-accurate: one full chip evaluation per iteration.
func BenchmarkChipBuild(b *testing.B) {
	cs := dse.TableI()
	cfg := cs.Config(dse.Point{X: 64, N: 2, Tx: 2, Ty: 4})
	for i := 0; i < b.N; i++ {
		if _, err := Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfSim measures one ResNet-50 performance simulation.
func BenchmarkPerfSim(b *testing.B) {
	cs := dse.TableI()
	c, err := Build(cs.Config(dse.Point{X: 64, N: 2, Tx: 2, Ty: 4}))
	if err != nil {
		b.Fatal(err)
	}
	g := workloads.ResNet50()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perfsim.Simulate(c, g, 16, perfsim.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEdgeStudy runs the edge-scenario sweep (the cloud-to-edge range
// the paper's introduction motivates): mobile budgets, LPDDR bandwidth,
// single-image ResNet-50 inference.
func BenchmarkEdgeStudy(b *testing.B) {
	var rows []dse.EdgeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = dse.EdgeStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	best := rows[0]
	for _, r := range rows {
		if r.FPSPerWatt > best.FPSPerWatt {
			best = r
		}
	}
	b.ReportMetric(float64(len(rows)), "designs")
	b.ReportMetric(best.FPSPerWatt, "best-fps-per-watt")
	b.Logf("edge fps/W optimum: %s (%.1f fps at %.2f W)", best.Point, best.FPS, best.PowerW)
}

// BenchmarkCycleSimCrossValidation runs the cycle-accurate systolic-array
// simulator against the analytical closed form on a ResNet-class GEMM, the
// validation behind the performance simulator's per-tile model.
func BenchmarkCycleSimCrossValidation(b *testing.B) {
	cfg := cyclesim.Config{ArraySize: 64, M: 784, K: 1152, N: 256, DoubleBufferWeights: true}
	var st cyclesim.Stats
	for i := 0; i < b.N; i++ {
		var err error
		st, err = cyclesim.Simulate(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	ana := cyclesim.AnalyticalCycles(cfg)
	b.ReportMetric(float64(st.Cycles), "simulated-cycles")
	b.ReportMetric(ana/float64(st.Cycles), "analytical-ratio")
	b.ReportMetric(st.Utilization()*100, "array-util-%")
}
