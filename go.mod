module neurometer

go 1.22
