// Package neurometer is a from-scratch Go implementation of NeuroMeter, the
// integrated power, area, and timing modeling framework for machine-learning
// accelerators (Tang et al., HPCA 2021).
//
// The package is the public face of the library: it re-exports the
// configuration surface, the chip builder, the runtime-power interface, the
// bundled workloads, and the performance simulator, so that a user can go
// from a high-level architecture description to power/area/timing reports
// and runtime efficiency analysis:
//
//	cfg := neurometer.Config{
//	    Name: "my-accelerator", TechNM: 28, ClockHz: 700e6,
//	    Tx: 2, Ty: 4,
//	    Core: neurometer.CoreConfig{
//	        NumTUs: 2, TURows: 64, TUCols: 64, TUDataType: neurometer.Int8,
//	        HasSU: true,
//	        Mem:   []neurometer.MemSegment{{Name: "spad", CapacityBytes: 4 << 20}},
//	    },
//	    NoCBisectionGBps: 256,
//	    OffChip:          []neurometer.OffChipPort{{Kind: neurometer.HBMPort, GBps: 700}},
//	}
//	chip, err := neurometer.Build(cfg)
//	fmt.Println(chip.Report())
//
// Architecture-level modeling follows the paper's top-down methodology
// (§II): components map to computing arrays, memory arrays, interconnect
// and regular logic; those map onto RC/Elmore circuit models against a
// technology backend. Runtime analysis pairs the chip model with the
// bundled tile-level performance simulator (the TF-Sim role) or with the
// sparse roofline model of §IV.
package neurometer

import (
	"context"

	"neurometer/internal/chip"
	"neurometer/internal/graph"
	"neurometer/internal/maclib"
	"neurometer/internal/perfsim"
	"neurometer/internal/periph"
	"neurometer/internal/sparse"
	"neurometer/internal/workloads"
)

// Configuration surface (see chip.Config for field documentation).
type (
	// Config is the chip-level architecture configuration.
	Config = chip.Config
	// CoreConfig describes one core (TUs, RTs, VU, SU, memory slice).
	CoreConfig = chip.CoreConfig
	// MemSegment is one region of the distributed on-chip memory.
	MemSegment = chip.MemSegment
	// OffChipPort requests a peripheral interface (HBM, DDR, PCIe, ICI).
	OffChipPort = chip.OffChipPort
	// Chip is a fully evaluated accelerator.
	Chip = chip.Chip
	// Activity carries runtime statistics for runtime-power analysis.
	Activity = chip.Activity
	// EfficiencySummary bundles achieved TOPS, utilization, TOPS/W and
	// TOPS/TCO for a workload run.
	EfficiencySummary = chip.EfficiencySummary
	// TimingEntry is one row of the hardware critical-path report.
	TimingEntry = chip.TimingEntry
	// EnergyEntry is one row of the Accelergy-style energy reference
	// table exported by Chip.EnergyTable.
	EnergyEntry = chip.EnergyEntry
	// JSONReport is the machine-readable chip evaluation.
	JSONReport = chip.JSONReport
	// TraceSample is one interval of a runtime activity trace;
	// TraceResult the evaluated power profile.
	TraceSample = chip.TraceSample
	TraceResult = chip.TraceResult
	// DataType selects an operand format (Int8, BF16, FP32, ...).
	DataType = maclib.DataType
	// Graph is a workload computational graph; Layer one node of it.
	Graph = graph.Graph
	// Layer is one operator of a workload graph.
	Layer = graph.Layer
	// SimOptions toggles the software optimizations of the performance
	// simulator (Space-to-Batch, Space-to-Depth, double buffering).
	SimOptions = perfsim.Options
	// SimResult is a performance-simulation outcome.
	SimResult = perfsim.Result
)

// Operand formats.
const (
	Int8  = maclib.Int8
	Int16 = maclib.Int16
	Int32 = maclib.Int32
	BF16  = maclib.BF16
	FP16  = maclib.FP16
	FP32  = maclib.FP32
)

// Peripheral kinds.
const (
	DDRPort   = periph.DDRPort
	HBMPort   = periph.HBMPort
	PCIePort  = periph.PCIePort
	ICILink   = periph.ICILink
	DMAEngine = periph.DMAEngine
	LPDDRPort = periph.LPDDRPort
)

// NoC topology overrides (the zero value auto-selects ring for <=4 tiles
// and 2-D mesh otherwise, per the paper's Table I convention).
const (
	NoCAuto  = chip.NoCAuto
	NoCMesh  = chip.NoCMesh
	NoCRing  = chip.NoCRing
	NoCBus   = chip.NoCBus
	NoCHTree = chip.NoCHTree
)

// Build constructs and evaluates a chip from the high-level configuration:
// it auto-scales dependent hardware (VU lanes, VReg ports, memory banking),
// solves the clock for a TOPS target when no clock is given, verifies
// timing, and enforces the optional area/power budgets.
func Build(cfg Config) (*Chip, error) { return chip.Build(cfg) }

// Workload returns a bundled case-study model by name: "resnet",
// "inception", "nasnet" (Table II) or "alexnet" (Eyeriss validation).
func Workload(name string) (*Graph, error) { return workloads.ByName(name) }

// Workloads returns the three datacenter case-study models of Table II.
func Workloads() []*Graph { return workloads.All() }

// DefaultSimOptions enables all software optimizations (the paper's
// "after optimization" configuration of Fig. 7).
func DefaultSimOptions() SimOptions { return perfsim.DefaultOptions() }

// Simulate runs one batch of the workload through the chip with the
// bundled tile-level performance simulator and returns throughput, latency,
// utilization and the activity factors for runtime-power analysis.
func Simulate(c *Chip, g *Graph, batch int, opt SimOptions) (*SimResult, error) {
	return perfsim.Simulate(c, g, batch, opt)
}

// SimulateCtx is Simulate with observability: spans started inside the
// simulator (per graph, per layer) nest under any internal/obs span carried
// by ctx.
func SimulateCtx(ctx context.Context, c *Chip, g *Graph, batch int, opt SimOptions) (*SimResult, error) {
	return perfsim.SimulateCtx(ctx, c, g, batch, opt)
}

// LatencyLimitedBatch finds the largest power-of-two batch size whose batch
// latency meets the bound (the paper's 10 ms datacenter SLO analysis).
func LatencyLimitedBatch(c *Chip, g *Graph, latencyBound float64, opt SimOptions) (int, *SimResult, error) {
	return perfsim.LatencyLimitedBatch(c, g, latencyBound, opt)
}

// Sparse-study surface (§IV / Fig. 11).
type (
	// SparseArch selects one of the four §IV architectures (TU32, TU8,
	// RT1024, RT64).
	SparseArch = sparse.Arch
	// SparseWorkload is the synthetic SpMV microbenchmark shape.
	SparseWorkload = sparse.Workload
	// SparseResult is one point of the Fig. 11 energy-efficiency curves.
	SparseResult = sparse.Result
)

// The four §IV architectures.
const (
	TU32   = sparse.TU32
	TU8    = sparse.TU8
	RT1024 = sparse.RT1024
	RT64   = sparse.RT64
)

// SparsityStudy evaluates one architecture on the synthetic SpMV
// microbenchmark at one sparsity level: it generates the CSR-encoded
// matrix, measures the block/vector zero-skip fractions, applies the
// modified roofline, and pairs it with the runtime power model.
func SparsityStudy(a SparseArch, w SparseWorkload, sparsity float64, seed uint64) (SparseResult, error) {
	return sparse.Study(a, w, sparsity, seed)
}

// SparsitySweep produces the full Fig. 11 dataset across the four
// architectures.
func SparsitySweep(w SparseWorkload, sparsities []float64, seed uint64) (map[SparseArch][]SparseResult, error) {
	return sparse.Sweep(w, sparsities, seed)
}

// DefaultSparseWorkload and DefaultSparsities mirror the paper's setup.
func DefaultSparseWorkload() SparseWorkload { return sparse.DefaultWorkload() }
func DefaultSparsities() []float64          { return sparse.DefaultSparsities() }
