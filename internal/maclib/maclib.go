// Package maclib is NeuroMeter's empirical model for complex custom-layout
// arithmetic blocks (multipliers, adders, fused MACs in integer and
// floating-point formats).
//
// The paper notes that a purely analytical approach "does not work well for
// complex structures that have custom layouts, such as the MAC logic", and
// instead curve-fits synthesis results (Design Compiler + Berkeley HardFloat
// + FreePDK) into a parameterizable numerical model. We substitute the same
// kind of model: a reference table of area/energy/delay at a 45nm anchor
// node (seeded from public synthesis/energy surveys, e.g. Horowitz,
// "Computing's energy problem", ISSCC'14) that is scaled to other nodes via
// the tech backend's gate area/energy/FO4 ratios, then calibrated at chip
// level against TPU-v1/v2 and Eyeriss.
package maclib

import (
	"fmt"

	"neurometer/internal/pat"
	"neurometer/internal/tech"
)

// DataType enumerates the operand formats the paper's tensor/vector units
// support (TPU-v1 uses Int8 multiply + Int32 accumulate; TPU-v2 uses BF16
// multiply + FP32 accumulate; Eyeriss uses Int16).
type DataType int

const (
	Int8 DataType = iota
	Int16
	Int32
	BF16
	FP16
	FP32
)

var dtNames = map[DataType]string{
	Int8: "int8", Int16: "int16", Int32: "int32",
	BF16: "bf16", FP16: "fp16", FP32: "fp32",
}

func (d DataType) String() string {
	if s, ok := dtNames[d]; ok {
		return s
	}
	return fmt.Sprintf("DataType(%d)", int(d))
}

// ParseDataType converts a config string into a DataType.
func ParseDataType(s string) (DataType, error) {
	for d, n := range dtNames {
		if n == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("maclib: unknown data type %q", s)
}

// Bits returns the operand width in bits.
func (d DataType) Bits() int {
	switch d {
	case Int8:
		return 8
	case Int16, BF16, FP16:
		return 16
	default:
		return 32
	}
}

// IsFloat reports whether the type is a floating-point format.
func (d DataType) IsFloat() bool { return d == BF16 || d == FP16 || d == FP32 }

// AccumType returns the natural accumulator format for products of d:
// integer formats accumulate in Int32; float formats in FP32 (the
// BF16-multiply/FP32-add MXU configuration of TPU-v2).
func (d DataType) AccumType() DataType {
	if d.IsFloat() {
		return FP32
	}
	return Int32
}

// refEntry is the 45nm anchor point for one operator: area in um^2, energy
// in pJ per operation, delay in FO4 units.
type refEntry struct {
	areaUM2 float64
	pj      float64
	fo4     float64
}

// anchorNode is the node the reference table is expressed at.
const anchorNode = 45

// Reference tables at 45nm, ~1.0V. Values follow the public ISSCC'14 survey
// with pipeline-latch overheads typical of synthesized datapaths.
// Energies are ~2x the bare-datapath survey figures: synthesized netlists
// driven with high-toggle vectors (the paper's Design Compiler flow) carry
// wire load and glue that roughly doubles the switched capacitance.
var multRef = map[DataType]refEntry{
	Int8:  {areaUM2: 450, pj: 0.46, fo4: 13},
	Int16: {areaUM2: 1650, pj: 1.7, fo4: 16},
	Int32: {areaUM2: 5300, pj: 6.4, fo4: 20},
	BF16:  {areaUM2: 1750, pj: 1.65, fo4: 18},
	FP16:  {areaUM2: 2500, pj: 2.3, fo4: 19},
	FP32:  {areaUM2: 9500, pj: 7.6, fo4: 24},
}

var addRef = map[DataType]refEntry{
	Int8:  {areaUM2: 60, pj: 0.065, fo4: 7},
	Int16: {areaUM2: 110, pj: 0.11, fo4: 8},
	Int32: {areaUM2: 220, pj: 0.21, fo4: 9},
	BF16:  {areaUM2: 1250, pj: 0.72, fo4: 16},
	FP16:  {areaUM2: 1500, pj: 0.84, fo4: 16},
	FP32:  {areaUM2: 4600, pj: 1.9, fo4: 18},
}

// anchorRef holds the anchor node's parameters; anchorNode is a static
// table entry, so the lookup cannot fail (asserted by TestAnchorTabulated).
var anchorRef, _ = tech.Reference(anchorNode)

// scale transfers a 45nm reference entry to the target node: area by gate
// density, energy by gate switching energy (which folds in the voltage
// squared term), delay by FO4.
func scale(n tech.Node, e refEntry) pat.Result {
	ref := anchorRef
	areaRatio := n.GateAreaUM2() / ref.GateAreaUM2()
	energyRatio := n.GateEnergyFJ / ref.GateEnergyFJ
	leakPerUM2 := n.GateLeakNW / n.GateAreaUM2() // nW per um^2 of logic
	area := e.areaUM2 * areaRatio
	return pat.Result{
		AreaUM2: area,
		DynPJ:   e.pj * energyRatio,
		LeakUW:  area * leakPerUM2 / 1000,
		DelayPS: e.fo4 * n.FO4PS,
	}
}

// Mult returns the model for a multiplier of the given format at node n.
func Mult(n tech.Node, d DataType) pat.Result { return scale(n, multRef[d]) }

// Add returns the model for an adder of the given format at node n.
func Add(n tech.Node, d DataType) pat.Result { return scale(n, addRef[d]) }

// MAC returns the model for a fused multiply-accumulate: a multiplier in
// format mul feeding an accumulator adder in format acc. Energy is per MAC
// operation; delay is the combinational mult+add path (callers pipeline it
// against their cycle time).
func MAC(n tech.Node, mul, acc DataType) pat.Result {
	m := Mult(n, mul)
	a := Add(n, acc)
	return m.Cascade(a)
}

// ALU returns the model for a general 1-D vector-lane ALU in format d:
// an adder plus comparator/shifter/logic-ops block (~2.5x the adder's
// complexity), used by the vector and scalar units for the non-MAC
// operations (pooling, activation, normalization).
func ALU(n tech.Node, d DataType) pat.Result {
	a := Add(n, d)
	return pat.Result{
		AreaUM2: a.AreaUM2 * 2.5,
		DynPJ:   a.DynPJ * 1.8,
		LeakUW:  a.LeakUW * 2.5,
		DelayPS: a.DelayPS * 1.2,
	}
}
