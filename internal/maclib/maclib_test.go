package maclib

import (
	"testing"

	"neurometer/internal/tech"
	"neurometer/internal/tech/techtest"
)

var all = []DataType{Int8, Int16, Int32, BF16, FP16, FP32}

func TestParseDataTypeRoundtrip(t *testing.T) {
	for _, d := range all {
		got, err := ParseDataType(d.String())
		if err != nil || got != d {
			t.Errorf("roundtrip %v: got %v err %v", d, got, err)
		}
	}
	if _, err := ParseDataType("fp64"); err == nil {
		t.Errorf("fp64 should be rejected")
	}
}

func TestBitsAndAccum(t *testing.T) {
	cases := map[DataType]int{Int8: 8, Int16: 16, Int32: 32, BF16: 16, FP16: 16, FP32: 32}
	for d, bits := range cases {
		if d.Bits() != bits {
			t.Errorf("%v.Bits() = %d, want %d", d, d.Bits(), bits)
		}
	}
	if Int8.AccumType() != Int32 || Int16.AccumType() != Int32 {
		t.Errorf("integer accumulation must be Int32")
	}
	if BF16.AccumType() != FP32 || FP16.AccumType() != FP32 || FP32.AccumType() != FP32 {
		t.Errorf("float accumulation must be FP32")
	}
	if Int8.IsFloat() || !BF16.IsFloat() {
		t.Errorf("IsFloat misclassifies")
	}
}

func TestAllOperatorsValid(t *testing.T) {
	for _, nm := range tech.Nodes() {
		n := techtest.MustByNode(nm)
		for _, d := range all {
			for name, r := range map[string]func() (a, e, dl float64){
				"mult": func() (float64, float64, float64) {
					x := Mult(n, d)
					return x.AreaUM2, x.DynPJ, x.DelayPS
				},
				"add": func() (float64, float64, float64) {
					x := Add(n, d)
					return x.AreaUM2, x.DynPJ, x.DelayPS
				},
				"alu": func() (float64, float64, float64) {
					x := ALU(n, d)
					return x.AreaUM2, x.DynPJ, x.DelayPS
				},
			} {
				a, e, dl := r()
				if a <= 0 || e <= 0 || dl <= 0 {
					t.Errorf("%dnm %v %s: a=%g e=%g d=%g", nm, d, name, a, e, dl)
				}
			}
		}
	}
}

func TestWidthOrdering(t *testing.T) {
	n := techtest.MustByNode(28)
	if !(Mult(n, Int8).AreaUM2 < Mult(n, Int16).AreaUM2 &&
		Mult(n, Int16).AreaUM2 < Mult(n, Int32).AreaUM2) {
		t.Errorf("int multiplier area must grow with width")
	}
	if !(Add(n, Int8).DynPJ < Add(n, Int32).DynPJ) {
		t.Errorf("int adder energy must grow with width")
	}
	// Float adders are far more expensive than integer adders of the same width.
	if Add(n, FP32).AreaUM2 < 5*Add(n, Int32).AreaUM2 {
		t.Errorf("fp32 adder should dwarf int32 adder")
	}
	// BF16 multiplier is cheaper than FP16 (shorter mantissa).
	if Mult(n, BF16).AreaUM2 >= Mult(n, FP16).AreaUM2 {
		t.Errorf("bf16 mult should be cheaper than fp16")
	}
}

func TestMACComposition(t *testing.T) {
	n := techtest.MustByNode(28)
	mac := MAC(n, Int8, Int32)
	m, a := Mult(n, Int8), Add(n, Int32)
	if mac.AreaUM2 != m.AreaUM2+a.AreaUM2 {
		t.Errorf("MAC area must be mult+add")
	}
	if mac.DelayPS != m.DelayPS+a.DelayPS {
		t.Errorf("MAC delay must cascade")
	}
	// TPU-v2 style MXU cell: BF16 multiply, FP32 accumulate.
	mxu := MAC(n, BF16, FP32)
	if mxu.DynPJ <= mac.DynPJ {
		t.Errorf("bf16/fp32 MAC must cost more than int8/int32: %g vs %g", mxu.DynPJ, mac.DynPJ)
	}
}

func TestNodeScalingMakesOpsCheaper(t *testing.T) {
	for _, d := range all {
		m65 := Mult(techtest.MustByNode(65), d)
		m16 := Mult(techtest.MustByNode(16), d)
		if m16.AreaUM2 >= m65.AreaUM2 || m16.DynPJ >= m65.DynPJ || m16.DelayPS >= m65.DelayPS {
			t.Errorf("%v mult must improve from 65nm to 16nm", d)
		}
	}
}

func TestInt8MACEnergyBallpark(t *testing.T) {
	// Calibration anchor: an Int8xInt8 + Int32 MAC at 28nm should cost
	// roughly 0.1-0.3 pJ (public survey ballpark), before array overheads.
	n := techtest.MustByNode(28)
	mac := MAC(n, Int8, Int32)
	if mac.DynPJ < 0.1 || mac.DynPJ > 0.6 {
		t.Errorf("int8 MAC energy out of ballpark: %g pJ", mac.DynPJ)
	}
}

func TestAnchorTabulated(t *testing.T) {
	// scale() anchors on a package-level Reference lookup whose error is
	// discarded; this pins the invariant that makes that safe.
	if anchorRef.Nm != anchorNode || anchorRef.GateEnergyFJ <= 0 {
		t.Fatalf("anchor node %dnm must be a tabulated tech entry, got %+v", anchorNode, anchorRef)
	}
}
