// Package sparse implements the paper's §IV mini-case study: the synthetic
// SpMV microbenchmark, the CSR encoding with the paper's 256x256-tile
// scheme (whose overhead factor beta lands in [2.0, 2.5]), block/vector
// zero-skip measurement on the generated matrices, the modified roofline
// model, and the energy-efficiency-gain computation for TU- and RT-based
// accelerators.
package sparse

import (
	"fmt"
	"math"
)

// rng is a small deterministic PRNG (xorshift64*) so the microbenchmark is
// reproducible without package math/rand seeds leaking into results.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// float64 in [0,1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn in [0,n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Matrix is a dense Int8 weight matrix with explicit zero structure.
type Matrix struct {
	Rows, Cols int
	// Data is row-major; zero bytes are zeros.
	Data []int8
}

// Distribution selects how zeros are placed — the paper notes the compute
// reduction y "is determined by the non-zero ratio x and the distribution
// of zero elements", and the two modes demonstrate exactly that
// sensitivity.
type Distribution int

const (
	// Clustered mimics magnitude-pruned weights: zeros form runs aligned
	// across small row groups, so block/vector skipping engages early.
	Clustered Distribution = iota
	// Random places zeros i.i.d.: an aligned b-element block is all-zero
	// with probability s^b, so coarse-grained skipping is hopeless below
	// extreme sparsity.
	Random
)

func (d Distribution) String() string {
	if d == Random {
		return "random"
	}
	return "clustered"
}

// GenOptions controls the synthetic sparsity structure.
type GenOptions struct {
	// Sparsity is the zero fraction in [0,1).
	Sparsity float64
	// Distribution selects clustered (default) or i.i.d. zeros.
	Distribution Distribution
	// RowGroup aligns the zero runs across groups of adjacent rows
	// (structured pruning removes small row-blocks together); default 8.
	// Clustered mode only.
	RowGroup int
	// MeanNZRun is the mean length of non-zero runs; the zero-run length
	// follows from the sparsity target. Default 16. Clustered mode only.
	MeanNZRun int
	// Seed makes generation reproducible.
	Seed uint64
}

// Generate builds a rows x cols Int8 matrix with run-structured, row-group
// aligned sparsity: along each row group, alternating non-zero runs (mean
// MeanNZRun) and zero runs whose mean length grows with the sparsity level,
// mimicking magnitude-pruned CNN/MLP weights where zeros cluster. The
// element-wise sparsity converges to opt.Sparsity.
func Generate(rows, cols int, opt GenOptions) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("sparse: matrix dims must be positive, got %dx%d", rows, cols)
	}
	if opt.Sparsity < 0 || opt.Sparsity >= 1 {
		return nil, fmt.Errorf("sparse: sparsity must be in [0,1), got %g", opt.Sparsity)
	}
	group := opt.RowGroup
	if group <= 0 {
		group = 8
	}
	nzRun := opt.MeanNZRun
	if nzRun <= 0 {
		nzRun = 16
	}
	r := newRNG(opt.Seed)
	m := &Matrix{Rows: rows, Cols: cols, Data: make([]int8, rows*cols)}

	if opt.Distribution == Random {
		for i := range m.Data {
			if r.float() >= opt.Sparsity {
				v := int8(r.intn(255) - 127)
				if v == 0 {
					v = 1
				}
				m.Data[i] = v
			}
		}
		return m, nil
	}

	s := opt.Sparsity
	// Mean zero-run length so that zRun/(zRun+nzRun) == s.
	zRun := 0.0
	if s > 0 {
		zRun = s / (1 - s) * float64(nzRun)
	}

	geo := func(mean float64) int {
		if mean <= 0 {
			return 0
		}
		// Geometric with the given mean, at least 1.
		u := r.float()
		l := int(math.Ceil(math.Log(1-u) / math.Log(1-1/mean)))
		if l < 1 {
			l = 1
		}
		return l
	}

	for g0 := 0; g0 < rows; g0 += group {
		g1 := g0 + group
		if g1 > rows {
			g1 = rows
		}
		col := 0
		zero := r.float() < s // start state
		for col < cols {
			var run int
			if zero {
				run = geo(zRun)
			} else {
				run = geo(float64(nzRun))
			}
			if col+run > cols {
				run = cols - col
			}
			if !zero {
				for row := g0; row < g1; row++ {
					base := row*cols + col
					for i := 0; i < run; i++ {
						v := int8(r.intn(255) - 127)
						if v == 0 {
							v = 1
						}
						m.Data[base+i] = v
					}
				}
			}
			col += run
			if zRun == 0 {
				zero = false
			} else {
				zero = !zero
			}
		}
	}
	return m, nil
}

// Sparsity returns the measured zero fraction.
func (m *Matrix) Sparsity() float64 {
	zeros := 0
	for _, v := range m.Data {
		if v == 0 {
			zeros++
		}
	}
	return float64(zeros) / float64(len(m.Data))
}

// NonZeros counts non-zero elements.
func (m *Matrix) NonZeros() int {
	nz := 0
	for _, v := range m.Data {
		if v != 0 {
			nz++
		}
	}
	return nz
}

// BlockSkipFraction returns the fraction of aligned b x b blocks that are
// entirely zero — the paper's systolic-array block-wise zero-skipping: "if
// the zero elements form a block of the size of TU's systolic array and
// align on the systolic array loading boundary, this all-zero block can be
// skipped".
func (m *Matrix) BlockSkipFraction(b int) float64 {
	if b <= 0 || b > m.Rows || b > m.Cols {
		return 0
	}
	blocksR, blocksC := m.Rows/b, m.Cols/b
	if blocksR == 0 || blocksC == 0 {
		return 0
	}
	zero := 0
	for br := 0; br < blocksR; br++ {
		for bc := 0; bc < blocksC; bc++ {
			if m.blockZero(br*b, bc*b, b, b) {
				zero++
			}
		}
	}
	return float64(zero) / float64(blocksR*blocksC)
}

// VectorSkipFraction returns the fraction of aligned 1 x v row segments that
// are entirely zero — the reduction tree's vector-size zero-skipping.
func (m *Matrix) VectorSkipFraction(v int) float64 {
	if v <= 0 || v > m.Cols {
		return 0
	}
	segs := m.Cols / v
	if segs == 0 {
		return 0
	}
	zero := 0
	for row := 0; row < m.Rows; row++ {
		for sc := 0; sc < segs; sc++ {
			if m.blockZero(row, sc*v, 1, v) {
				zero++
			}
		}
	}
	return float64(zero) / float64(m.Rows*segs)
}

func (m *Matrix) blockZero(r0, c0, h, w int) bool {
	for r := r0; r < r0+h; r++ {
		base := r * m.Cols
		for c := c0; c < c0+w; c++ {
			if m.Data[base+c] != 0 {
				return false
			}
		}
	}
	return true
}
