package sparse

// CSR is the compressed-sparse-row encoding of a weight matrix with the
// paper's tiled layout: the matrix is first tiled into 256x256 submatrices;
// each Int8 non-zero costs one extra byte of column index, each tiled row
// one byte of inner-submatrix row indexing, and each submatrix two bytes of
// tile index (§IV). The resulting storage overhead factor beta =
// EncodedBytes / NonZeroBytes lands between 2.0 and 2.5 depending on
// sparsity and matrix size — the paper's range.
type CSR struct {
	Rows, Cols int
	TileSize   int

	// Values holds the non-zero Int8 values in tile-major order; ColIdx
	// their one-byte intra-tile column indices; RowNZ the per-tiled-row
	// non-zero counts (the row-pointer structure, one byte each in the
	// paper's accounting).
	Values []int8
	ColIdx []uint8
	RowNZ  []uint32
	// tileHdr is the submatrix count (two bytes each).
	tileHdr int
}

const tileSize = 256

// EncodeCSR converts the matrix into the tiled CSR layout.
func EncodeCSR(m *Matrix) *CSR {
	c := &CSR{Rows: m.Rows, Cols: m.Cols, TileSize: tileSize}
	tilesR := (m.Rows + tileSize - 1) / tileSize
	tilesC := (m.Cols + tileSize - 1) / tileSize
	c.tileHdr = tilesR * tilesC
	for tr := 0; tr < tilesR; tr++ {
		for tc := 0; tc < tilesC; tc++ {
			r1 := min((tr+1)*tileSize, m.Rows)
			c1 := min((tc+1)*tileSize, m.Cols)
			for r := tr * tileSize; r < r1; r++ {
				base := r * m.Cols
				nz := uint32(0)
				for col := tc * tileSize; col < c1; col++ {
					if v := m.Data[base+col]; v != 0 {
						c.Values = append(c.Values, v)
						c.ColIdx = append(c.ColIdx, uint8(col-tc*tileSize))
						nz++
					}
				}
				c.RowNZ = append(c.RowNZ, nz)
			}
		}
	}
	return c
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// EncodedBytes returns the total CSR storage under the paper's accounting:
// one byte per non-zero value, one byte per column index, one byte per
// tiled row, two bytes per submatrix.
func (c *CSR) EncodedBytes() int {
	return len(c.Values) + len(c.ColIdx) + len(c.RowNZ) + 2*c.tileHdr
}

// Beta returns the storage overhead relative to the non-zero payload
// (the paper's beta, between 2.0 and 2.5 for its configurations).
func (c *CSR) Beta() float64 {
	if len(c.Values) == 0 {
		return 0
	}
	return float64(c.EncodedBytes()) / float64(len(c.Values))
}

// Decode reconstructs the dense matrix (round-trip tested).
func (c *CSR) Decode() *Matrix {
	m := &Matrix{Rows: c.Rows, Cols: c.Cols, Data: make([]int8, c.Rows*c.Cols)}
	tilesC := (c.Cols + tileSize - 1) / tileSize
	idx := 0
	row := 0
	for tr := 0; tr*tileSize < c.Rows; tr++ {
		for tc := 0; tc < tilesC; tc++ {
			r1 := min((tr+1)*tileSize, c.Rows)
			for r := tr * tileSize; r < r1; r++ {
				nz := int(c.RowNZ[row])
				row++
				for i := 0; i < nz; i++ {
					col := tc*tileSize + int(c.ColIdx[idx])
					m.Data[r*c.Cols+col] = c.Values[idx]
					idx++
				}
			}
		}
	}
	return m
}
