package sparse

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(0, 8, GenOptions{}); err == nil {
		t.Errorf("zero rows must fail")
	}
	if _, err := Generate(8, 8, GenOptions{Sparsity: 1.0}); err == nil {
		t.Errorf("sparsity 1.0 must fail")
	}
	if _, err := Generate(8, 8, GenOptions{Sparsity: -0.1}); err == nil {
		t.Errorf("negative sparsity must fail")
	}
}

func TestGenerateHitsSparsityTarget(t *testing.T) {
	for _, s := range []float64{0, 0.3, 0.5, 0.8, 0.9, 0.99} {
		m, err := Generate(1024, 1024, GenOptions{Sparsity: s, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		got := m.Sparsity()
		if math.Abs(got-s) > 0.05 {
			t.Errorf("target %g, measured %g", s, got)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(256, 256, GenOptions{Sparsity: 0.7, Seed: 3})
	b, _ := Generate(256, 256, GenOptions{Sparsity: 0.7, Seed: 3})
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("same seed must reproduce the matrix")
		}
	}
	c, _ := Generate(256, 256, GenOptions{Sparsity: 0.7, Seed: 4})
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds should differ")
	}
}

func TestSkipFractionsOrdering(t *testing.T) {
	m, err := Generate(2048, 2048, GenOptions{Sparsity: 0.9, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Finer granularities always skip at least as much as coarser ones.
	b8, b32 := m.BlockSkipFraction(8), m.BlockSkipFraction(32)
	v64, v1024 := m.VectorSkipFraction(64), m.VectorSkipFraction(1024)
	if b8 < b32 {
		t.Errorf("8x8 skip (%.3f) must be >= 32x32 skip (%.3f)", b8, b32)
	}
	if v64 < v1024 {
		t.Errorf("64-vector skip (%.3f) must be >= 1024-vector skip (%.3f)", v64, v1024)
	}
	if b8 <= 0 {
		t.Errorf("at 90%% clustered sparsity the fine blocks must skip, got %.3f", b8)
	}
	// Degenerate granularities.
	if m.BlockSkipFraction(0) != 0 || m.BlockSkipFraction(4096) != 0 {
		t.Errorf("invalid block sizes must report 0")
	}
	if m.VectorSkipFraction(0) != 0 || m.VectorSkipFraction(4096) != 0 {
		t.Errorf("invalid vector sizes must report 0")
	}
}

func TestSkipGrowsWithSparsity(t *testing.T) {
	prev := -1.0
	for _, s := range []float64{0.5, 0.7, 0.9, 0.99} {
		m, err := Generate(1024, 1024, GenOptions{Sparsity: s, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		skip := m.BlockSkipFraction(8)
		if skip <= prev {
			t.Errorf("skip fraction must grow with sparsity: %.3f at %g (prev %.3f)", skip, s, prev)
		}
		prev = skip
	}
}

func TestCSRRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 0.5, 0.95} {
		m, err := Generate(512, 700, GenOptions{Sparsity: s, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		got := EncodeCSR(m).Decode()
		if got.Rows != m.Rows || got.Cols != m.Cols {
			t.Fatalf("shape mismatch")
		}
		for i := range m.Data {
			if m.Data[i] != got.Data[i] {
				t.Fatalf("s=%g: roundtrip mismatch at %d", s, i)
			}
		}
	}
}

func TestCSRRoundTripProperty(t *testing.T) {
	f := func(seed uint16, sRaw uint8) bool {
		s := float64(sRaw%95) / 100
		m, err := Generate(300, 300, GenOptions{Sparsity: s, Seed: uint64(seed) + 1})
		if err != nil {
			return false
		}
		got := EncodeCSR(m).Decode()
		for i := range m.Data {
			if m.Data[i] != got.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBetaInPaperRange(t *testing.T) {
	// §IV: "beta is a value between 2.0 and 2.5 in this case study".
	for _, s := range []float64{0.5, 0.7, 0.9, 0.99} {
		m, err := Generate(2048, 2048, GenOptions{Sparsity: s, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		beta := EncodeCSR(m).Beta()
		if beta < 2.0 || beta > 2.5 {
			t.Errorf("s=%g: beta %.2f outside [2.0, 2.5]", s, beta)
		}
	}
}

func TestArchitecturesBuild(t *testing.T) {
	for _, a := range []Arch{TU32, TU8, RT1024, RT64} {
		c, err := BuildArch(a)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if c.PeakTOPS() <= 0 {
			t.Errorf("%v: zero peak", a)
		}
		if a.String() == "" {
			t.Errorf("empty arch name")
		}
	}
	// TU/RT twins have identical peak throughput ("the same OPS per
	// compute unit as the corresponding systolic arrays").
	tu32, _ := BuildArch(TU32)
	rt1024, _ := BuildArch(RT1024)
	if math.Abs(tu32.PeakTOPS()-rt1024.PeakTOPS()) > 1e-9 {
		t.Errorf("TU32 (%.2f) and RT1024 (%.2f) must match peak", tu32.PeakTOPS(), rt1024.PeakTOPS())
	}
	tu8, _ := BuildArch(TU8)
	rt64, _ := BuildArch(RT64)
	if math.Abs(tu8.PeakTOPS()-rt64.PeakTOPS()) > 1e-9 {
		t.Errorf("TU8 and RT64 must match peak")
	}
}

// TestFig11Shape verifies the paper's §IV findings on the full sweep:
// gains below one at low sparsity, crossover near 0.5, monotone growth,
// and wimpier architectures benefiting more.
func TestFig11Shape(t *testing.T) {
	out, err := Sweep(DefaultWorkload(), []float64{0.0, 0.5, 0.9, 0.99}, 42)
	if err != nil {
		t.Fatal(err)
	}
	for a, rows := range out {
		if rows[0].Gain >= 1.0 {
			t.Errorf("%v: dense-equivalent workload must not gain (%.2f)", a, rows[0].Gain)
		}
		for i := 1; i < len(rows); i++ {
			if rows[i].Gain < rows[i-1].Gain {
				t.Errorf("%v: gain must grow with sparsity (%.2f -> %.2f)",
					a, rows[i-1].Gain, rows[i].Gain)
			}
		}
		last := rows[len(rows)-1]
		if last.Gain <= 1.0 {
			t.Errorf("%v: 99%% sparsity must gain, got %.2f", a, last.Gain)
		}
	}
	// Wimpier architectures benefit more readily (the paper's conclusion).
	at := func(a Arch, i int) float64 { return out[a][i].Gain }
	for i := 2; i < 4; i++ { // 0.9 and 0.99
		if at(TU8, i) <= at(TU32, i) {
			t.Errorf("TU8 must out-gain TU32 at high sparsity: %.2f vs %.2f", at(TU8, i), at(TU32, i))
		}
		if at(RT64, i) <= at(RT1024, i) {
			t.Errorf("RT64 must out-gain RT1024 at high sparsity: %.2f vs %.2f", at(RT64, i), at(RT1024, i))
		}
	}
	// The coarse-grained designs improve in a visibly lower slope.
	tu32Slope := at(TU32, 3) - at(TU32, 1)
	tu8Slope := at(TU8, 3) - at(TU8, 1)
	if tu8Slope <= tu32Slope {
		t.Errorf("fine-grained slope must exceed coarse-grained: %.2f vs %.2f", tu8Slope, tu32Slope)
	}
}

func TestStudyFieldsPopulated(t *testing.T) {
	r, err := Study(TU8, DefaultWorkload(), 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r.Beta < 2 || r.Y <= 0 || r.Y > 1 || r.SkipFrac <= 0 {
		t.Errorf("suspicious study fields: %+v", r)
	}
	if r.DenseTimeSec <= 0 || r.SparseTimeSec <= 0 ||
		r.DensePowerW <= 0 || r.SparsePowerW <= 0 {
		t.Errorf("times/powers must be positive: %+v", r)
	}
	if r.SparseTimeSec >= r.DenseTimeSec {
		t.Errorf("90%% sparse SpMV should be faster than dense")
	}
}

func TestNonZerosConsistent(t *testing.T) {
	m, err := Generate(512, 512, GenOptions{Sparsity: 0.8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	csr := EncodeCSR(m)
	if len(csr.Values) != m.NonZeros() {
		t.Errorf("CSR values %d != matrix non-zeros %d", len(csr.Values), m.NonZeros())
	}
	if csr.EncodedBytes() <= len(csr.Values) {
		t.Errorf("encoding must carry index overhead")
	}
}

// TestRooflineIdentities checks the §IV equations directly on a computed
// study point: t_d = max(C/F, (S_V+S_W)/B) and the sparse counterpart with
// the measured y and beta.
func TestRooflineIdentities(t *testing.T) {
	w := DefaultWorkload()
	r, err := Study(TU32, w, 0.8, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := BuildArch(TU32)
	if err != nil {
		t.Fatal(err)
	}
	C := 2 * float64(w.M) * float64(w.N) * float64(w.K)
	sV := float64(w.N+w.M) * float64(w.K)
	sW := float64(w.M) * float64(w.N)
	F := c.PeakTOPS() * 1e12
	B := 700e9
	tD := math.Max(C/F, (sV+sW)/B)
	if math.Abs(r.DenseTimeSec-tD)/tD > 1e-9 {
		t.Errorf("dense roofline mismatch: %g vs %g", r.DenseTimeSec, tD)
	}
	x := 1 - 0.8 // approximately; use the exact measured value below
	_ = x
	// Recompute with the study's own y/beta and the measured sparsity.
	m, err := Generate(w.M, w.N, GenOptions{Sparsity: 0.8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	xm := 1 - m.Sparsity()
	tS := math.Max(r.Y*C/F, (sV+r.Beta*xm*sW)/B)
	if math.Abs(r.SparseTimeSec-tS)/tS > 1e-9 {
		t.Errorf("sparse roofline mismatch: %g vs %g", r.SparseTimeSec, tS)
	}
}

// TestLowSparsityCSRPenalty: below the beta crossover (x > 1/beta) the CSR
// encoding moves MORE bytes than the dense matrix, so the memory-bound
// sparse run cannot be faster.
func TestLowSparsityCSRPenalty(t *testing.T) {
	r, err := Study(TU32, DefaultWorkload(), 0.3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r.SparseTimeSec < r.DenseTimeSec {
		t.Errorf("30%% sparsity should not beat dense on a bandwidth-bound MV: %g vs %g",
			r.SparseTimeSec, r.DenseTimeSec)
	}
	if r.Gain >= 1 {
		t.Errorf("30%% sparsity must not gain: %.2f", r.Gain)
	}
}

// TestDistributionSensitivity demonstrates the §IV point that the compute
// reduction depends on the *distribution* of zeros, not just the ratio:
// at 90% sparsity, clustered zeros let 8x8 blocks skip massively while
// i.i.d. zeros leave essentially nothing skippable (P = 0.9^64 ~ 0.001).
func TestDistributionSensitivity(t *testing.T) {
	clustered, err := Generate(1024, 1024, GenOptions{Sparsity: 0.9, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	random, err := Generate(1024, 1024, GenOptions{Sparsity: 0.9, Seed: 21, Distribution: Random})
	if err != nil {
		t.Fatal(err)
	}
	// Both hit the same element-wise sparsity...
	if math.Abs(clustered.Sparsity()-random.Sparsity()) > 0.03 {
		t.Errorf("sparsities diverge: %.3f vs %.3f", clustered.Sparsity(), random.Sparsity())
	}
	// ...but only the clustered one skips at block granularity.
	cs, rs := clustered.BlockSkipFraction(8), random.BlockSkipFraction(8)
	if cs < 0.3 {
		t.Errorf("clustered 8x8 skip too low: %.3f", cs)
	}
	if rs > 0.02 {
		t.Errorf("random 8x8 skip should be negligible at 0.9: %.3f", rs)
	}
	if Clustered.String() != "clustered" || Random.String() != "random" {
		t.Errorf("distribution strings")
	}
	// CSR round-trips regardless of distribution.
	got := EncodeCSR(random).Decode()
	for i := range random.Data {
		if random.Data[i] != got.Data[i] {
			t.Fatalf("random-distribution CSR roundtrip mismatch")
		}
	}
}
