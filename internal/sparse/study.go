package sparse

import (
	"fmt"
	"math"

	"neurometer/internal/chip"
	"neurometer/internal/maclib"
	"neurometer/internal/periph"
)

// Arch names one of the four §IV architectures: the Fig. 10(b) power
// optimum with 32x32 TUs (TU32), the utilization optimum with 8x8 TUs
// (TU8), and the reduction-tree twins with the same OPS per compute unit
// (RT1024 and RT64).
type Arch int

const (
	TU32 Arch = iota
	TU8
	RT1024
	RT64
)

func (a Arch) String() string {
	switch a {
	case TU32:
		return "TU32"
	case TU8:
		return "TU8"
	case RT1024:
		return "RT1024"
	case RT64:
		return "RT64"
	}
	return fmt.Sprintf("Arch(%d)", int(a))
}

// SkipGranularity returns the zero-skip granularity: TUs skip aligned
// array-sized blocks, RTs skip vector-sized row segments.
func (a Arch) SkipGranularity() int {
	switch a {
	case TU32:
		return 32 // 32x32 blocks
	case TU8:
		return 8 // 8x8 blocks
	case RT1024:
		return 1024 // 1024-wide vectors
	default:
		return 64 // 64-wide vectors
	}
}

// BuildArch constructs the chip model for one architecture under the
// Table-I-style environment (28nm, 700MHz, 700GB/s HBM). The RT designs
// match the OPS per compute unit of the corresponding TUs (1024-to-1 RT vs
// 32x32 TU; 64-to-1 RT vs 8x8 TU) with identical unit counts.
func BuildArch(a Arch) (*chip.Chip, error) {
	cfg := chip.Config{
		TechNM: 28, ClockHz: 700e6,
		NoCBisectionGBps: 256,
		OffChip:          []chip.OffChipPort{{Kind: periph.HBMPort, GBps: 700}},
	}
	switch a {
	case TU32:
		// The Fig. 10(b) power-efficient optimum with 32x32 TUs.
		cfg.Name, cfg.Tx, cfg.Ty = "tu32", 2, 4
		cfg.Core = chip.CoreConfig{
			NumTUs: 4, TURows: 32, TUCols: 32, TUDataType: maclib.Int8, HasSU: true,
			Mem: []chip.MemSegment{{Name: "spad", CapacityBytes: 4 << 20}},
		}
	case TU8:
		// The utilization optimum (8,4,4,8).
		cfg.Name, cfg.Tx, cfg.Ty = "tu8", 4, 8
		cfg.Core = chip.CoreConfig{
			NumTUs: 4, TURows: 8, TUCols: 8, TUDataType: maclib.Int8, HasSU: true,
			Mem: []chip.MemSegment{{Name: "spad", CapacityBytes: 1 << 20}},
		}
	case RT1024:
		cfg.Name, cfg.Tx, cfg.Ty = "rt1024", 2, 4
		cfg.Core = chip.CoreConfig{
			NumRTs: 4, RTInputs: 1024, TUDataType: maclib.Int8, HasSU: true,
			Mem: []chip.MemSegment{{Name: "spad", CapacityBytes: 4 << 20}},
		}
	case RT64:
		cfg.Name, cfg.Tx, cfg.Ty = "rt64", 4, 8
		cfg.Core = chip.CoreConfig{
			NumRTs: 4, RTInputs: 64, TUDataType: maclib.Int8, HasSU: true,
			Mem: []chip.MemSegment{{Name: "spad", CapacityBytes: 1 << 20}},
		}
	default:
		return nil, fmt.Errorf("sparse: unknown arch %v", a)
	}
	return chip.Build(cfg)
}

// Workload is the SpMV microbenchmark: a weight matrix of M x N multiplied
// by batched dense vectors of N x K (§IV: M, N >= 1024, K >= 32).
type Workload struct {
	M, N, K int
}

// DefaultWorkload returns the paper's minimum configuration.
func DefaultWorkload() Workload { return Workload{M: 2048, N: 2048, K: 32} }

// Result is one point of the Fig. 11 curves.
type Result struct {
	Arch     Arch
	Sparsity float64 // target element-wise sparsity (zero fraction)

	Beta     float64 // CSR storage overhead
	SkipFrac float64 // zero-skipped block/vector fraction
	Y        float64 // compute reduction factor (1 = no reduction)

	DenseTimeSec  float64
	SparseTimeSec float64
	DensePowerW   float64
	SparsePowerW  float64

	// Gain is the sparse-over-dense energy-efficiency ratio
	// (Power_d * t_d) / (Power_s * t_s); > 1 means improvement.
	Gain float64
}

// Study evaluates one architecture at one sparsity level, generating the
// synthetic matrix, encoding it, measuring skip fractions, and combining
// the modified roofline with NeuroMeter's runtime power model.
func Study(a Arch, w Workload, sparsity float64, seed uint64) (Result, error) {
	c, err := BuildArch(a)
	if err != nil {
		return Result{}, err
	}
	m, err := Generate(w.M, w.N, GenOptions{Sparsity: sparsity, Seed: seed})
	if err != nil {
		return Result{}, err
	}
	csr := EncodeCSR(m)

	res := Result{Arch: a, Sparsity: sparsity}
	res.Beta = csr.Beta()
	x := 1 - m.Sparsity() // non-zero ratio
	g := a.SkipGranularity()
	switch a {
	case TU32, TU8:
		res.SkipFrac = m.BlockSkipFraction(g)
	default:
		res.SkipFrac = m.VectorSkipFraction(g)
	}
	res.Y = 1 - res.SkipFrac

	// ---- Modified roofline (§IV equations) --------------------------------
	C := 2 * float64(w.M) * float64(w.N) * float64(w.K) // OPs
	sV := float64(w.N+w.M) * float64(w.K)               // batched in+out vectors
	sW := float64(w.M) * float64(w.N)
	F := c.PeakTOPS() * 1e12
	B := offChipBps(c)
	const alpha = 1.0

	tD := math.Max(C/F, (sV+sW)/B)
	tS := math.Max(alpha*res.Y*C/F, (sV+res.Beta*x*sW)/B)
	res.DenseTimeSec = tD
	res.SparseTimeSec = tS

	// ---- Runtime power via NeuroMeter --------------------------------------
	res.DensePowerW = runtimePower(c, C/2/tD, (sV+sW)/tD, 1.0)
	// Sparse: surviving blocks still stream zeros at reduced switching; the
	// CSR decompression path adds vector work.
	nzInBlocks := math.Min(1, x/math.Max(res.Y, 1e-9))
	res.SparsePowerW = runtimePower(c, res.Y*C/2/tS, (sV+res.Beta*x*sW)/tS,
		0.35+0.65*nzInBlocks)
	res.Gain = (res.DensePowerW * tD) / (res.SparsePowerW * tS)
	return res, nil
}

// runtimePower assembles the activity factors for the SpMV kernel.
func runtimePower(c *chip.Chip, macsPerSec, offChipBps float64, switching float64) float64 {
	act := chip.Activity{
		VUOpsPerSec:         macsPerSec * 0.02, // merge/epilogue sliver
		SUInstrPerSec:       float64(c.Tiles()) * c.ClockHz() * 0.05,
		MemReadBytesPerSec:  macsPerSec * 1.2, // act + weight stream bytes/MAC
		MemWriteBytesPerSec: macsPerSec * 0.1,
		NoCBytesPerSec:      offChipBps * 0.5,
		OffChipBytesPerSec:  offChipBps,
		ClockGateIdleFrac:   0.5,
	}
	if c.Core.RT != nil {
		act.RTMACsPerSec = macsPerSec * switching
	} else {
		act.TUMACsPerSec = macsPerSec * switching
	}
	w, _ := c.RuntimePower(act)
	return w
}

func offChipBps(c *chip.Chip) float64 {
	var total float64
	for _, p := range c.Periph {
		switch p.Cfg.Kind {
		case periph.HBMPort, periph.DDRPort:
			total += p.Cfg.GBps * 1e9
		}
	}
	return total
}

// Sweep evaluates all four architectures across the sparsity levels,
// producing the Fig. 11 dataset.
func Sweep(w Workload, sparsities []float64, seed uint64) (map[Arch][]Result, error) {
	out := map[Arch][]Result{}
	for _, a := range []Arch{TU32, TU8, RT1024, RT64} {
		for _, s := range sparsities {
			r, err := Study(a, w, s, seed)
			if err != nil {
				return nil, err
			}
			out[a] = append(out[a], r)
		}
	}
	return out, nil
}

// DefaultSparsities is the Fig. 11 x-axis.
func DefaultSparsities() []float64 {
	return []float64{0.0, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99}
}
