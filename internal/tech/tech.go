// Package tech is NeuroMeter's technology backend: the per-process-node
// device and wiring parameters every circuit-level model consumes.
//
// The paper uses the FreePDK45/FreePDK15 libraries plus ITRS-style scaling;
// this package substitutes a parameter table for planar/FinFET nodes from
// 65nm down to 7nm with public ballpark values, calibrated at the chip
// level against TPU-v1 (28nm), TPU-v2 (16nm) and Eyeriss (65nm). Only the
// small parameter surface NeuroMeter actually needs is modeled: supply
// voltage, FO4 delay, standard-cell density and energy, memory cell
// geometry, wire RC per mm, and leakage.
package tech

import (
	"fmt"
	"math"
	"sort"

	"neurometer/internal/guard"
)

// WireLayer selects one of the three wiring planes the hierarchical wire
// model distinguishes, in the CACTI tradition.
type WireLayer int

const (
	// WireLocal is minimum-pitch metal used inside arrays (bitlines,
	// cell-to-cell links).
	WireLocal WireLayer = iota
	// WireIntermediate is semi-global routing between blocks in a core.
	WireIntermediate
	// WireGlobal is wide top-metal routing: NoC links, clock spines.
	WireGlobal
)

func (w WireLayer) String() string {
	switch w {
	case WireLocal:
		return "local"
	case WireIntermediate:
		return "intermediate"
	case WireGlobal:
		return "global"
	}
	return fmt.Sprintf("WireLayer(%d)", int(w))
}

// MemCell selects the storage cell family for memory arrays (§II-A "the
// cell type of Mem can be selected from DFF, SRAM, and eDRAM").
type MemCell int

const (
	CellSRAM MemCell = iota
	CellDFF
	CellEDRAM
)

func (c MemCell) String() string {
	switch c {
	case CellSRAM:
		return "sram"
	case CellDFF:
		return "dff"
	case CellEDRAM:
		return "edram"
	}
	return fmt.Sprintf("MemCell(%d)", int(c))
}

// Node holds the backend parameters of one technology node at one supply
// voltage. All derived models read only these fields, so evaluating a
// component at a different node or voltage is a matter of swapping the Node.
type Node struct {
	// Nm is the node name (65, 45, 28, 16, 7).
	Nm int
	// VddNominal is the library's nominal supply in volts; Vdd is the
	// operating supply (equal to VddNominal unless WithVdd was used).
	VddNominal float64
	Vdd        float64

	// FO4PS is the fanout-of-4 inverter delay in picoseconds at the
	// operating voltage: the unit of gate-delay arithmetic.
	FO4PS float64

	// GateDensityPerMM2 is the achievable NAND2-equivalent standard-cell
	// density (gates per mm^2) including typical placement utilization.
	GateDensityPerMM2 float64

	// GateCapFF is the input capacitance of a unit (1x) inverter in fF.
	GateCapFF float64

	// GateEnergyFJ is the switching energy of one NAND2-equivalent gate
	// in fJ at the operating voltage, including the average local-wire
	// load of a synthesized netlist (which is why it is ~2x the bare-gate
	// CV^2 figure).
	GateEnergyFJ float64

	// GateLeakNW is the leakage of one NAND2-equivalent gate in nW at the
	// operating voltage and hot (TDP-condition) silicon temperature.
	GateLeakNW float64

	// SRAMCellUM2 is the 6T SRAM bit-cell area in um^2; EDRAMCellUM2 the
	// 1T1C embedded-DRAM cell; DFFCellUM2 a standard-cell flip-flop.
	SRAMCellUM2  float64
	EDRAMCellUM2 float64
	DFFCellUM2   float64

	// SRAMCellReadFJ is the bit-cell-level read energy per bit in fJ
	// (cell + local bitline swing); peripheral energy is modeled on top
	// by memarray.
	SRAMCellReadFJ float64
	// SRAMCellLeakNW is per-bit leakage in nW.
	SRAMCellLeakNW float64

	// Wire parameters per layer: resistance in ohm/mm and capacitance in
	// fF/mm. Indexed by WireLayer.
	WireResOhmPerMM [3]float64
	WireCapFFPerMM  [3]float64
}

// nominal table. Sources: public ITRS/IRDS scaling surveys, CACTI 6/7
// defaults, Horowitz ISSCC'14 energy tables; values then calibrated so the
// three validation chips land inside the paper's error bands.
var nodes = map[int]Node{
	65: {
		Nm: 65, VddNominal: 1.0, Vdd: 1.0,
		FO4PS:             25.0,
		GateDensityPerMM2: 0.70e6,
		GateCapFF:         1.8,
		GateEnergyFJ:      4.5,
		GateLeakNW:        8.0,
		SRAMCellUM2:       0.525,
		EDRAMCellUM2:      0.21,
		DFFCellUM2:        9.4,
		SRAMCellReadFJ:    0.045,
		SRAMCellLeakNW:    0.0080,
		WireResOhmPerMM:   [3]float64{1600, 850, 180},
		WireCapFFPerMM:    [3]float64{195, 205, 240},
	},
	45: {
		Nm: 45, VddNominal: 1.0, Vdd: 1.0,
		FO4PS:             17.0,
		GateDensityPerMM2: 1.40e6,
		GateCapFF:         1.1,
		GateEnergyFJ:      2.5,
		GateLeakNW:        6.5,
		SRAMCellUM2:       0.346,
		EDRAMCellUM2:      0.14,
		DFFCellUM2:        5.2,
		SRAMCellReadFJ:    0.030,
		SRAMCellLeakNW:    0.0065,
		WireResOhmPerMM:   [3]float64{2300, 1250, 250},
		WireCapFFPerMM:    [3]float64{190, 200, 235},
	},
	28: {
		Nm: 28, VddNominal: 0.90, Vdd: 0.90,
		FO4PS:             11.0,
		GateDensityPerMM2: 3.40e6,
		GateCapFF:         0.62,
		GateEnergyFJ:      1.0,
		GateLeakNW:        4.5,
		SRAMCellUM2:       0.127,
		EDRAMCellUM2:      0.051,
		DFFCellUM2:        2.1,
		SRAMCellReadFJ:    0.014,
		SRAMCellLeakNW:    0.0040,
		WireResOhmPerMM:   [3]float64{3600, 2000, 380},
		WireCapFFPerMM:    [3]float64{185, 195, 230},
	},
	16: {
		Nm: 16, VddNominal: 0.80, Vdd: 0.80,
		FO4PS:             7.6,
		GateDensityPerMM2: 8.70e6,
		GateCapFF:         0.38,
		GateEnergyFJ:      0.95,
		GateLeakNW:        4.0,
		SRAMCellUM2:       0.074,
		EDRAMCellUM2:      0.030,
		DFFCellUM2:        0.86,
		SRAMCellReadFJ:    0.0100,
		SRAMCellLeakNW:    0.0025,
		WireResOhmPerMM:   [3]float64{6200, 3400, 620},
		WireCapFFPerMM:    [3]float64{180, 192, 225},
	},
	7: {
		Nm: 7, VddNominal: 0.70, Vdd: 0.70,
		FO4PS:             4.9,
		GateDensityPerMM2: 23.0e6,
		GateCapFF:         0.22,
		GateEnergyFJ:      0.30,
		GateLeakNW:        1.8,
		SRAMCellUM2:       0.031,
		EDRAMCellUM2:      0.013,
		DFFCellUM2:        0.33,
		SRAMCellReadFJ:    0.0034,
		SRAMCellLeakNW:    0.0015,
		WireResOhmPerMM:   [3]float64{14500, 7800, 1300},
		WireCapFFPerMM:    [3]float64{178, 190, 222},
	},
}

// Nodes returns the list of directly tabulated node names, ascending.
func Nodes() []int {
	out := make([]int, 0, len(nodes))
	for nm := range nodes {
		out = append(out, nm)
	}
	sort.Ints(out)
	return out
}

// ByNode returns the parameter set of a technology node. Nodes between two
// tabulated entries are geometrically interpolated so intermediate processes
// (e.g. 40, 22, 12 nm) can be modeled; nodes outside [7,65] are an error.
func ByNode(nm int) (Node, error) {
	if n, ok := nodes[nm]; ok {
		return n, nil
	}
	names := Nodes()
	if nm < names[0] || nm > names[len(names)-1] {
		return Node{}, guard.Invalid("tech: node %dnm outside supported range [%d,%d]",
			nm, names[0], names[len(names)-1])
	}
	lo, hi := bracket(names, nm)
	a, b := nodes[lo], nodes[hi]
	// Geometric interpolation in log(node) space: feature-driven metrics
	// scale roughly as power laws of the node name.
	t := (math.Log(float64(nm)) - math.Log(float64(lo))) /
		(math.Log(float64(hi)) - math.Log(float64(lo)))
	g := func(x, y float64) float64 {
		if x <= 0 || y <= 0 {
			return x + t*(y-x)
		}
		return math.Exp(math.Log(x) + t*(math.Log(y)-math.Log(x)))
	}
	n := Node{
		Nm:                nm,
		VddNominal:        g(a.VddNominal, b.VddNominal),
		FO4PS:             g(a.FO4PS, b.FO4PS),
		GateDensityPerMM2: g(a.GateDensityPerMM2, b.GateDensityPerMM2),
		GateCapFF:         g(a.GateCapFF, b.GateCapFF),
		GateEnergyFJ:      g(a.GateEnergyFJ, b.GateEnergyFJ),
		GateLeakNW:        g(a.GateLeakNW, b.GateLeakNW),
		SRAMCellUM2:       g(a.SRAMCellUM2, b.SRAMCellUM2),
		EDRAMCellUM2:      g(a.EDRAMCellUM2, b.EDRAMCellUM2),
		DFFCellUM2:        g(a.DFFCellUM2, b.DFFCellUM2),
		SRAMCellReadFJ:    g(a.SRAMCellReadFJ, b.SRAMCellReadFJ),
		SRAMCellLeakNW:    g(a.SRAMCellLeakNW, b.SRAMCellLeakNW),
	}
	for i := 0; i < 3; i++ {
		n.WireResOhmPerMM[i] = g(a.WireResOhmPerMM[i], b.WireResOhmPerMM[i])
		n.WireCapFFPerMM[i] = g(a.WireCapFFPerMM[i], b.WireCapFFPerMM[i])
	}
	n.Vdd = n.VddNominal
	return n, nil
}

func bracket(sorted []int, nm int) (lo, hi int) {
	lo, hi = sorted[0], sorted[len(sorted)-1]
	for i := 0; i+1 < len(sorted); i++ {
		if sorted[i] <= nm && nm <= sorted[i+1] {
			return sorted[i], sorted[i+1]
		}
	}
	return lo, hi
}

// Reference returns the directly tabulated node nm without interpolation.
// The second result reports whether nm is a table entry. Packages that
// anchor scaling laws at a fixed tabulated node (maclib at 45nm, periph at
// 28nm) use it to obtain an infallible constant; everything user-facing
// goes through ByNode and handles the error.
func Reference(nm int) (Node, bool) {
	n, ok := nodes[nm]
	return n, ok
}

// WithVdd returns a copy of n operating at supply v (volts). Dynamic energy
// scales as (v/Vnom)^2, leakage roughly linearly, and delay with a
// simplified alpha-power law: delay ~ v/(v-Vt)^1.3 with Vt ~= 0.35*Vnom.
// Non-positive and non-finite supplies are ignored (nominal operation) so a
// corrupted voltage can never poison the derived parameters with NaN.
func (n Node) WithVdd(v float64) Node {
	if !(v > 0) || math.IsInf(v, 1) {
		return n
	}
	out := n
	r := v / n.VddNominal
	out.Vdd = v
	out.GateEnergyFJ *= r * r
	out.SRAMCellReadFJ *= r * r
	out.GateLeakNW *= r
	out.SRAMCellLeakNW *= r
	out.FO4PS *= delayFactor(v, n.VddNominal)
	return out
}

func delayFactor(v, vnom float64) float64 {
	vt := 0.35 * vnom
	if v <= vt*1.1 {
		v = vt * 1.1 // clamp: near-threshold operation is out of scope
	}
	num := v / math.Pow(v-vt, 1.3)
	den := vnom / math.Pow(vnom-vt, 1.3)
	return num / den
}

// CellAreaUM2 returns the per-bit cell area for the given memory cell type.
func (n Node) CellAreaUM2(c MemCell) float64 {
	switch c {
	case CellSRAM:
		return n.SRAMCellUM2
	case CellEDRAM:
		return n.EDRAMCellUM2
	case CellDFF:
		return n.DFFCellUM2
	}
	return n.SRAMCellUM2
}

// CellReadFJ returns the per-bit cell-level read energy for cell type c.
// eDRAM reads are destructive and include restore; DFF reads are a mux path.
func (n Node) CellReadFJ(c MemCell) float64 {
	switch c {
	case CellSRAM:
		return n.SRAMCellReadFJ
	case CellEDRAM:
		return n.SRAMCellReadFJ * 1.8
	case CellDFF:
		return n.GateEnergyFJ * 0.5
	}
	return n.SRAMCellReadFJ
}

// CellLeakNW returns per-bit leakage for cell type c. eDRAM has negligible
// cell leakage but pays refresh energy, folded in as equivalent static power.
func (n Node) CellLeakNW(c MemCell) float64 {
	switch c {
	case CellSRAM:
		return n.SRAMCellLeakNW
	case CellEDRAM:
		return n.SRAMCellLeakNW * 0.35
	case CellDFF:
		return n.GateLeakNW * 4.5
	}
	return n.SRAMCellLeakNW
}

// SRAMCellAspect is the width/height ratio of the 6T cell; used to derive
// wordline/bitline lengths from cell counts.
const SRAMCellAspect = 2.0

// CellDimsUM returns the (width, height) of one cell in micrometres.
func (n Node) CellDimsUM(c MemCell) (w, h float64) {
	a := n.CellAreaUM2(c)
	h = math.Sqrt(a / SRAMCellAspect)
	return a / h, h
}

// InvCinFF returns the input capacitance of a unit inverter.
func (n Node) InvCinFF() float64 { return n.GateCapFF }

// InvRonOhm returns the effective drive resistance of a unit inverter,
// derived from the FO4 delay: FO4 = ln(2) * Ron * (Cpar + 4*Cin) with
// Cpar ~= Cin.
func (n Node) InvRonOhm() float64 {
	return n.FO4PS * 1e-12 / (math.Ln2 * 5 * n.GateCapFF * 1e-15)
}

// GateAreaUM2 returns the layout area of one NAND2-equivalent gate.
func (n Node) GateAreaUM2() float64 { return 1e6 / n.GateDensityPerMM2 }

// LogicBlock returns the area/energy/leakage of a block of the given
// NAND2-equivalent gate count with the given average switching activity
// (energy reported per clocked operation of the block). Delay is not
// meaningful for an amorphous gate-count block and is returned as zero.
func (n Node) LogicBlock(gates float64, activity float64) (areaUM2, dynPJ, leakUW float64) {
	areaUM2 = gates * n.GateAreaUM2()
	dynPJ = gates * n.GateEnergyFJ * activity / 1000
	leakUW = gates * n.GateLeakNW / 1000
	return
}

func (n Node) String() string {
	return fmt.Sprintf("%dnm@%.2fV", n.Nm, n.Vdd)
}
