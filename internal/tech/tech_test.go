package tech

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"neurometer/internal/guard"
)

// mustByNode is the in-package fixture helper (techtest.MustByNode would be
// an import cycle from here).
func mustByNode(nm int) Node {
	n, err := ByNode(nm)
	if err != nil {
		panic(err)
	}
	return n
}

func TestNodesTabulated(t *testing.T) {
	want := []int{7, 16, 28, 45, 65}
	got := Nodes()
	if len(got) != len(want) {
		t.Fatalf("Nodes() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v, want %v", got, want)
		}
	}
}

func TestByNodeTabulated(t *testing.T) {
	for _, nm := range Nodes() {
		n, err := ByNode(nm)
		if err != nil {
			t.Fatalf("ByNode(%d): %v", nm, err)
		}
		if n.Nm != nm {
			t.Errorf("ByNode(%d).Nm = %d", nm, n.Nm)
		}
		if n.Vdd != n.VddNominal {
			t.Errorf("ByNode(%d): Vdd %v != nominal %v", nm, n.Vdd, n.VddNominal)
		}
	}
}

func TestByNodeOutOfRange(t *testing.T) {
	for _, nm := range []int{0, 3, 6, 66, 90, 180, -1} {
		if _, err := ByNode(nm); err == nil {
			t.Errorf("ByNode(%d): expected error", nm)
		}
	}
}

func TestInterpolatedNodeBracketsNeighbors(t *testing.T) {
	for _, nm := range []int{40, 22, 12, 10, 32} {
		n, err := ByNode(nm)
		if err != nil {
			t.Fatalf("ByNode(%d): %v", nm, err)
		}
		lo, hi := bracketFor(nm)
		a, b := mustByNode(lo), mustByNode(hi)
		checkBetween := func(name string, x, p, q float64) {
			loV, hiV := math.Min(p, q), math.Max(p, q)
			if x < loV-1e-9 || x > hiV+1e-9 {
				t.Errorf("node %d %s=%g outside [%g,%g]", nm, name, x, loV, hiV)
			}
		}
		checkBetween("FO4", n.FO4PS, a.FO4PS, b.FO4PS)
		checkBetween("density", n.GateDensityPerMM2, a.GateDensityPerMM2, b.GateDensityPerMM2)
		checkBetween("sram", n.SRAMCellUM2, a.SRAMCellUM2, b.SRAMCellUM2)
		checkBetween("energy", n.GateEnergyFJ, a.GateEnergyFJ, b.GateEnergyFJ)
	}
}

func bracketFor(nm int) (int, int) {
	names := Nodes()
	for i := 0; i+1 < len(names); i++ {
		if names[i] <= nm && nm <= names[i+1] {
			return names[i], names[i+1]
		}
	}
	return names[0], names[len(names)-1]
}

func TestScalingMonotonicAcrossNodes(t *testing.T) {
	names := Nodes() // ascending: 7..65
	for i := 0; i+1 < len(names); i++ {
		small, big := mustByNode(names[i]), mustByNode(names[i+1])
		if small.FO4PS >= big.FO4PS {
			t.Errorf("FO4 should shrink with node: %d=%g vs %d=%g", small.Nm, small.FO4PS, big.Nm, big.FO4PS)
		}
		if small.GateDensityPerMM2 <= big.GateDensityPerMM2 {
			t.Errorf("density should grow as node shrinks")
		}
		if small.SRAMCellUM2 >= big.SRAMCellUM2 {
			t.Errorf("SRAM cell should shrink with node")
		}
		if small.GateEnergyFJ >= big.GateEnergyFJ {
			t.Errorf("gate energy should shrink with node")
		}
	}
}

func TestWithVddScaling(t *testing.T) {
	n := mustByNode(28)
	low := n.WithVdd(0.86)
	if low.Vdd != 0.86 {
		t.Fatalf("Vdd = %v", low.Vdd)
	}
	wantE := n.GateEnergyFJ * (0.86 / 0.90) * (0.86 / 0.90)
	if math.Abs(low.GateEnergyFJ-wantE) > 1e-9 {
		t.Errorf("energy scaling: got %g want %g", low.GateEnergyFJ, wantE)
	}
	if low.FO4PS <= n.FO4PS {
		t.Errorf("lower Vdd must be slower: %g vs %g", low.FO4PS, n.FO4PS)
	}
	if low.GateLeakNW >= n.GateLeakNW {
		t.Errorf("lower Vdd must leak less")
	}
	// Raising voltage speeds things up and costs energy.
	hi := n.WithVdd(1.0)
	if hi.FO4PS >= n.FO4PS || hi.GateEnergyFJ <= n.GateEnergyFJ {
		t.Errorf("overvolt: FO4 %g (nom %g), E %g (nom %g)", hi.FO4PS, n.FO4PS, hi.GateEnergyFJ, n.GateEnergyFJ)
	}
	// Invalid Vdd is a no-op.
	same := n.WithVdd(0)
	if same.Vdd != n.Vdd {
		t.Errorf("WithVdd(0) should be a no-op")
	}
}

func TestWithVddPropertyQuadratic(t *testing.T) {
	n := mustByNode(16)
	f := func(raw uint8) bool {
		v := 0.5 + float64(raw)/255.0*0.5 // 0.5..1.0 V
		s := n.WithVdd(v)
		r := v / n.VddNominal
		return math.Abs(s.GateEnergyFJ-n.GateEnergyFJ*r*r) < 1e-9 &&
			math.Abs(s.SRAMCellReadFJ-n.SRAMCellReadFJ*r*r) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellHelpers(t *testing.T) {
	n := mustByNode(28)
	if n.CellAreaUM2(CellSRAM) != n.SRAMCellUM2 {
		t.Errorf("sram cell area mismatch")
	}
	if n.CellAreaUM2(CellEDRAM) >= n.CellAreaUM2(CellSRAM) {
		t.Errorf("eDRAM cell must be denser than SRAM")
	}
	if n.CellAreaUM2(CellDFF) <= n.CellAreaUM2(CellSRAM) {
		t.Errorf("DFF cell must be bigger than SRAM")
	}
	w, h := n.CellDimsUM(CellSRAM)
	if math.Abs(w*h-n.SRAMCellUM2) > 1e-9 {
		t.Errorf("cell dims don't multiply to area: %g*%g != %g", w, h, n.SRAMCellUM2)
	}
	if math.Abs(w/h-SRAMCellAspect) > 1e-9 {
		t.Errorf("aspect ratio: %g", w/h)
	}
}

func TestLogicBlock(t *testing.T) {
	n := mustByNode(28)
	area, dyn, leak := n.LogicBlock(1000, 0.5)
	if area <= 0 || dyn <= 0 || leak <= 0 {
		t.Fatalf("LogicBlock: %g %g %g", area, dyn, leak)
	}
	area2, dyn2, leak2 := n.LogicBlock(2000, 0.5)
	if math.Abs(area2-2*area) > 1e-9 || math.Abs(dyn2-2*dyn) > 1e-9 || math.Abs(leak2-2*leak) > 1e-9 {
		t.Errorf("LogicBlock must be linear in gates")
	}
}

func TestInvRonPositive(t *testing.T) {
	for _, nm := range Nodes() {
		n := mustByNode(nm)
		if n.InvRonOhm() <= 0 {
			t.Errorf("node %d: InvRon = %g", nm, n.InvRonOhm())
		}
		if n.GateAreaUM2() <= 0 {
			t.Errorf("node %d: gate area = %g", nm, n.GateAreaUM2())
		}
	}
}

func TestStringers(t *testing.T) {
	if mustByNode(28).String() != "28nm@0.90V" {
		t.Errorf("Node.String: %q", mustByNode(28).String())
	}
	for _, w := range []WireLayer{WireLocal, WireIntermediate, WireGlobal} {
		if w.String() == "" {
			t.Errorf("empty WireLayer string")
		}
	}
	for _, c := range []MemCell{CellSRAM, CellDFF, CellEDRAM} {
		if c.String() == "" {
			t.Errorf("empty MemCell string")
		}
	}
	if WireLayer(9).String() != "WireLayer(9)" {
		t.Errorf("unknown layer string")
	}
	if MemCell(9).String() != "MemCell(9)" {
		t.Errorf("unknown cell string")
	}
}

func TestCellEnergyAndLeakHelpers(t *testing.T) {
	n := mustByNode(28)
	if n.CellReadFJ(CellSRAM) != n.SRAMCellReadFJ {
		t.Errorf("sram read energy mismatch")
	}
	if n.CellReadFJ(CellEDRAM) <= n.CellReadFJ(CellSRAM) {
		t.Errorf("destructive eDRAM read must cost more than SRAM")
	}
	if n.CellReadFJ(CellDFF) <= 0 {
		t.Errorf("dff read energy must be positive")
	}
	if n.CellLeakNW(CellEDRAM) >= n.CellLeakNW(CellSRAM) {
		t.Errorf("eDRAM cell leakage must undercut SRAM")
	}
	if n.CellLeakNW(CellDFF) <= n.CellLeakNW(CellSRAM) {
		t.Errorf("DFF leaks more than a 6T cell")
	}
	// Unknown cell types fall back to SRAM behaviour.
	if n.CellAreaUM2(MemCell(9)) != n.SRAMCellUM2 {
		t.Errorf("unknown cell area fallback")
	}
	if n.CellReadFJ(MemCell(9)) != n.SRAMCellReadFJ {
		t.Errorf("unknown cell read fallback")
	}
	if n.CellLeakNW(MemCell(9)) != n.SRAMCellLeakNW {
		t.Errorf("unknown cell leak fallback")
	}
	if n.InvCinFF() != n.GateCapFF {
		t.Errorf("InvCinFF must expose the unit inverter cap")
	}
}

func TestByNodeOutOfRangeIsInvalidConfig(t *testing.T) {
	// The unknown-node failure is an error at the API boundary (not a
	// panic), classified under the guard taxonomy.
	for _, nm := range []int{-4, 0, 1, 6, 66, 1000} {
		_, err := ByNode(nm)
		if err == nil {
			t.Fatalf("ByNode(%d) must fail", nm)
		}
		if !errors.Is(err, guard.ErrInvalidConfig) {
			t.Errorf("ByNode(%d) error must wrap guard.ErrInvalidConfig: %v", nm, err)
		}
	}
}

func TestWithVddRejectsNonFinite(t *testing.T) {
	n := mustByNode(28)
	for _, v := range []float64{math.NaN(), math.Inf(1), -1, 0} {
		got := n.WithVdd(v)
		if got != n {
			t.Errorf("WithVdd(%v) must leave the node at nominal", v)
		}
	}
}

func TestDelayFactorNearThresholdClamp(t *testing.T) {
	// Dropping Vdd toward threshold must slow the node dramatically but
	// never produce NaN/Inf thanks to the clamp.
	n := mustByNode(28)
	low := n.WithVdd(0.30) // below the 0.35*Vnom clamp region
	if math.IsNaN(low.FO4PS) || math.IsInf(low.FO4PS, 0) || low.FO4PS <= n.FO4PS {
		t.Errorf("near-threshold FO4: %g (nominal %g)", low.FO4PS, n.FO4PS)
	}
}
