// Package techtest provides the node-lookup helper tests use to build
// fixtures in package-level vars and struct literals. Production code must
// use tech.ByNode and handle the error per the internal/guard taxonomy —
// this package exists precisely so the panicking convenience form stays
// out of the library API.
package techtest

import (
	"neurometer/internal/tech"
)

// MustByNode returns the parameters of node nm, panicking on error. Test
// fixtures only ever name valid constant nodes, so the panic is a fixture
// bug, not a runtime failure mode.
func MustByNode(nm int) tech.Node {
	n, err := tech.ByNode(nm)
	if err != nil {
		panic(err)
	}
	return n
}
