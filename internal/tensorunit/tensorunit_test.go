package tensorunit

import (
	"strings"
	"testing"
	"testing/quick"

	"neurometer/internal/maclib"
	"neurometer/internal/tech/techtest"
)

const cycle700 = 1e12 / 700e6

func build(t *testing.T, cfg Config) *Unit {
	t.Helper()
	u, err := Build(cfg)
	if err != nil {
		t.Fatalf("Build(%+v): %v", cfg, err)
	}
	return u
}

func tpuStyle(rows, cols int) Config {
	return Config{
		Node: techtest.MustByNode(28).WithVdd(0.86),
		Rows: rows, Cols: cols,
		MulType: maclib.Int8,
		CyclePS: cycle700,
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build(Config{Node: techtest.MustByNode(28), Rows: 0, Cols: 8, CyclePS: 1}); err == nil {
		t.Errorf("zero rows must fail")
	}
	if _, err := Build(Config{Node: techtest.MustByNode(28), Rows: 8, Cols: 8}); err == nil {
		t.Errorf("zero cycle must fail")
	}
}

func TestAccTypeDefaults(t *testing.T) {
	u := build(t, tpuStyle(8, 8))
	if u.Cfg.AccType != maclib.Int32 {
		t.Errorf("int8 TU must default to int32 accumulation, got %v", u.Cfg.AccType)
	}
	cfg := tpuStyle(8, 8)
	cfg.MulType = maclib.BF16
	u = build(t, cfg)
	if u.Cfg.AccType != maclib.FP32 {
		t.Errorf("bf16 TU must default to fp32 accumulation, got %v", u.Cfg.AccType)
	}
}

func TestTPUv1ScaleCalibration(t *testing.T) {
	// 256x256 Int8 array at 28nm/0.86V: the TPU-v1 MMU occupies ~24% of a
	// ~300-330mm2 die, i.e. roughly 70-85 mm2; full-activity power at
	// 700MHz should be in the tens of watts.
	u := build(t, tpuStyle(256, 256))
	areaMM2 := u.AreaUM2() / 1e6
	if areaMM2 < 55 || areaMM2 > 95 {
		t.Errorf("256x256 int8 TU area out of calibration band: %.1f mm2", areaMM2)
	}
	powerW := u.PerMACPJ() * 1e-12 * float64(u.MACs()) * 700e6
	if powerW < 25 || powerW > 55 {
		t.Errorf("256x256 int8 TU power out of band: %.1f W", powerW)
	}
	if !u.MeetsTiming() {
		t.Errorf("int8 cell must close timing at 700MHz: crit=%.0fps", u.CritPathPS())
	}
}

func TestAreaScalesQuadratically(t *testing.T) {
	small := build(t, tpuStyle(32, 32))
	big := build(t, tpuStyle(64, 64))
	r := big.AreaUM2() / small.AreaUM2()
	if r < 3.3 || r > 4.7 {
		t.Errorf("doubling the array side should ~4x the area, got %.2fx", r)
	}
}

func TestPerMACEnergyRoughlySizeIndependent(t *testing.T) {
	// The per-MAC energy of a unicast TU is dominated by the cell; FIFO
	// amortization makes small arrays slightly more expensive per MAC.
	small := build(t, tpuStyle(8, 8))
	big := build(t, tpuStyle(128, 128))
	if small.PerMACPJ() <= big.PerMACPJ() {
		t.Errorf("FIFO amortization: 8x8 (%.3fpJ) should cost more per MAC than 128x128 (%.3fpJ)",
			small.PerMACPJ(), big.PerMACPJ())
	}
	if small.PerMACPJ() > big.PerMACPJ()*2.5 {
		t.Errorf("per-MAC energy gap too large: %.3f vs %.3f", small.PerMACPJ(), big.PerMACPJ())
	}
}

func TestDataTypeOrdering(t *testing.T) {
	i8 := build(t, tpuStyle(32, 32))
	cfg := tpuStyle(32, 32)
	cfg.MulType = maclib.BF16
	bf := build(t, cfg)
	if bf.AreaUM2() <= i8.AreaUM2() || bf.PerMACPJ() <= i8.PerMACPJ() {
		t.Errorf("bf16 TU must be bigger and hungrier than int8")
	}
}

func TestMulticastEyerissStyle(t *testing.T) {
	cfg := Config{
		Node: techtest.MustByNode(65),
		Rows: 12, Cols: 14,
		MulType: maclib.Int16, AccType: maclib.Int32,
		Interconnect: Multicast, Dataflow: RowStationary,
		LocalSpadBytes: 448, LocalRegBytes: 72,
		CyclePS: 1e12 / 200e6,
	}
	u := build(t, cfg)
	if u.BusResult().AreaUM2 <= 0 {
		t.Errorf("multicast TU must have bus area")
	}
	if !u.MeetsTiming() {
		t.Errorf("Eyeriss-style TU must close timing at 200MHz: crit=%.0fps", u.CritPathPS())
	}
	// The PE (cell) carries the spad: it must dwarf a bare int16 cell.
	bare := build(t, Config{
		Node: techtest.MustByNode(65), Rows: 12, Cols: 14,
		MulType: maclib.Int16, AccType: maclib.Int32,
		Interconnect: Multicast, CyclePS: 1e12 / 200e6,
	})
	if u.CellResult().AreaUM2 < 3*bare.CellResult().AreaUM2 {
		t.Errorf("spad-equipped PE should be >3x a bare cell: %g vs %g",
			u.CellResult().AreaUM2, bare.CellResult().AreaUM2)
	}
	// Eyeriss PE array (168 PEs incl. spads) lands in the handful-of-mm2
	// range at 65nm.
	if a := u.AreaUM2() / 1e6; a < 4 || a > 14 {
		t.Errorf("Eyeriss-style PE array area out of band: %.2f mm2", a)
	}
}

func TestUnicastVsMulticastDelay(t *testing.T) {
	uni := build(t, tpuStyle(64, 64))
	cfg := tpuStyle(64, 64)
	cfg.Interconnect = Multicast
	multi := build(t, cfg)
	if multi.CritPathPS() <= uni.CritPathPS() {
		t.Errorf("a 64-wide multicast bus must be slower than a neighbour hop: %g vs %g",
			multi.CritPathPS(), uni.CritPathPS())
	}
}

func TestDataflowsDiffer(t *testing.T) {
	ws := build(t, tpuStyle(32, 32))
	cfg := tpuStyle(32, 32)
	cfg.Dataflow = OutputStationary
	os := build(t, cfg)
	if ws.CellResult().AreaUM2 == os.CellResult().AreaUM2 {
		t.Errorf("WS and OS cells should differ in register complement")
	}
}

func TestPeakOps(t *testing.T) {
	u := build(t, tpuStyle(64, 64))
	if u.MACs() != 4096 {
		t.Errorf("MACs: %d", u.MACs())
	}
	if u.PeakOpsPerCycle() != 8192 {
		t.Errorf("PeakOps: %g", u.PeakOpsPerCycle())
	}
}

func TestResultValidProperty(t *testing.T) {
	f := func(r, c uint8) bool {
		rows := int(r%64) + 1
		cols := int(c%64) + 1
		u, err := Build(tpuStyle(rows, cols))
		if err != nil {
			return false
		}
		return u.Result().Valid() && u.AreaUM2() > 0 && u.PerMACPJ() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStringMentionsConfig(t *testing.T) {
	u := build(t, tpuStyle(16, 16))
	s := u.String()
	if !strings.Contains(s, "16x16") || !strings.Contains(s, "unicast") {
		t.Errorf("String: %q", s)
	}
	if Unicast.String() != "unicast" || Multicast.String() != "multicast" {
		t.Errorf("interconnect strings")
	}
	if WeightStationary.String() == "" || OutputStationary.String() == "" || RowStationary.String() == "" {
		t.Errorf("dataflow strings")
	}
}
