// Package tensorunit models NeuroMeter's Tensor Unit (TU): a generic 2-D
// systolic array made of (1) systolic cells, each a MAC plus DFF/SRAM local
// buffering, (2) wires connecting nearby cells, and (3) DFF/SRAM-based I/O
// FIFOs (§II-A).
//
// Two inner-TU interconnect styles are supported, as in Fig. 2(c):
//
//   - Unicast: nearest-neighbour systolic links (TPU-v1 style), with
//     weight-stationary or output-stationary dataflow.
//   - Multicast: X/Y buses that broadcast from the I/O FIFOs to a row or
//     column of cells (Eyeriss style); the bus is decomposed into pi-RC
//     segments with per-cell taps and evaluated with the Elmore model
//     (Fig. 2(d)).
package tensorunit

import (
	"fmt"
	"math"

	"neurometer/internal/circuit"
	"neurometer/internal/maclib"
	"neurometer/internal/memarray"
	"neurometer/internal/pat"
	"neurometer/internal/tech"
)

// Interconnect selects the inner-TU interconnection style.
type Interconnect int

const (
	// Unicast is nearest-neighbour systolic forwarding (TPU-v1).
	Unicast Interconnect = iota
	// Multicast is X/Y-bus broadcast (Eyeriss).
	Multicast
)

func (i Interconnect) String() string {
	if i == Multicast {
		return "multicast"
	}
	return "unicast"
}

// Dataflow selects the systolic dataflow for unicast TUs (§II-A: "we
// support modeling of both weight-stationary and output-stationary").
type Dataflow int

const (
	WeightStationary Dataflow = iota
	OutputStationary
	// RowStationary is used to model Eyeriss-style PEs together with the
	// multicast interconnect; cells carry larger local buffers.
	RowStationary
)

func (d Dataflow) String() string {
	switch d {
	case OutputStationary:
		return "output-stationary"
	case RowStationary:
		return "row-stationary"
	}
	return "weight-stationary"
}

// Config is the user-visible TU configuration: only high-level parameters,
// per the paper's abstraction-raising goal.
type Config struct {
	Node tech.Node
	// Rows x Cols systolic cells.
	Rows, Cols int
	// MulType is the multiplier operand format; AccType the accumulator
	// format (zero value lets the tool pick MulType.AccumType()).
	MulType maclib.DataType
	AccType maclib.DataType
	// Interconnect and Dataflow select the fabric style.
	Interconnect Interconnect
	Dataflow     Dataflow
	// LocalSpadBytes / LocalRegBytes add per-cell storage beyond the
	// pipeline registers (Eyeriss: 448 B SRAM spad + 72 B registers).
	LocalSpadBytes int
	LocalRegBytes  int
	// IOFIFODepth is the depth of each row/column I/O FIFO (default 8).
	IOFIFODepth int
	// CyclePS is the target clock period, used for timing checks.
	CyclePS float64
}

// fabricOverhead accounts for place-and-route, pipeline margin and cell
// abutment overhead of the systolic fabric; calibrated against the TPU-v1
// systolic array share.
const fabricOverhead = 2.2

// clockOverhead folds the clock distribution network into the sequential
// elements' dynamic energy, following the paper's choice to amortize the
// clock network into components.
const clockOverhead = 1.35

// Unit is an evaluated tensor unit.
type Unit struct {
	Cfg Config

	cell     pat.Result // one systolic cell, incl. local buffers and link
	fifos    pat.Result // all I/O FIFOs
	bus      pat.Result // multicast X/Y buses (zero for unicast)
	perMACPJ float64
	areaUM2  float64
	leakUW   float64
	critPS   float64
	spad     *memarray.Array // non-nil when LocalSpadBytes > 0
}

// Build evaluates a tensor unit.
func Build(cfg Config) (*Unit, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		return nil, fmt.Errorf("tensorunit: array must be at least 1x1, got %dx%d", cfg.Rows, cfg.Cols)
	}
	if cfg.CyclePS <= 0 {
		return nil, fmt.Errorf("tensorunit: CyclePS must be positive")
	}
	// The DataType zero value is Int8, and Int8 accumulation is never a
	// valid configuration (products overflow immediately), so an Int8
	// AccType always means "unset: derive from the multiplier format".
	acc := cfg.AccType
	if acc == maclib.Int8 {
		acc = cfg.MulType.AccumType()
	}
	n := cfg.Node
	u := &Unit{Cfg: cfg}
	u.Cfg.AccType = acc

	// ---- Systolic cell ----------------------------------------------------
	mac := maclib.MAC(n, cfg.MulType, acc)

	mulBits := cfg.MulType.Bits()
	accBits := acc.Bits()
	// All dataflows carry an internal MAC pipeline latch (partial product /
	// carry-save stage) of roughly 2.5x the multiplier operand width.
	pipeBits := mulBits * 5 / 2
	var regBits int
	switch cfg.Dataflow {
	case OutputStationary:
		// Stationary psum register; weight and activation stream through.
		regBits = accBits + 2*mulBits + pipeBits + 4
	case RowStationary:
		// Filter row + input row + psum registers handled by the explicit
		// local reg/spad storage; keep minimal pipeline regs.
		regBits = mulBits + accBits/2 + pipeBits + 4
	default: // WeightStationary
		// Double-buffered weight, streaming activation, flowing psum.
		regBits = 2*mulBits + mulBits + accBits + pipeBits + 4
	}
	regs := circuit.Register{Node: n, Bits: regBits}.Eval()
	regs.DynPJ *= clockOverhead

	// Per-cell control plus output drivers for the systolic links.
	ctlArea, ctlDyn, ctlLeak := n.LogicBlock(35+2*float64(mulBits+accBits), 0.3)
	cell := mac.Add(regs)
	cell.AreaUM2 += ctlArea
	cell.DynPJ += ctlDyn
	cell.LeakUW += ctlLeak

	// Extra local register storage (Eyeriss-style).
	if cfg.LocalRegBytes > 0 {
		lr := circuit.Register{Node: n, Bits: cfg.LocalRegBytes * 8}.Eval()
		// Only a fraction of the local registers toggles per MAC.
		lr.DynPJ *= 0.25 * clockOverhead
		cell = cell.Add(lr)
	}
	// Local scratchpad (Eyeriss spad): a small SRAM per cell.
	if cfg.LocalSpadBytes > 0 {
		sp, err := memarray.Build(memarray.Config{
			Node: n, Cell: tech.CellSRAM,
			CapacityBytes: int64(cfg.LocalSpadBytes),
			BlockBytes:    2,
			Banks:         1, ReadPorts: 1, WritePorts: 1,
			CyclePS: cfg.CyclePS,
		})
		if err != nil {
			return nil, fmt.Errorf("tensorunit: cell spad: %w", err)
		}
		u.spad = sp
		cell.AreaUM2 += sp.AreaUM2()
		// ~1 spad read + 0.5 write per MAC in row-stationary operation.
		cell.DynPJ += sp.ReadEnergyPJ() + 0.5*sp.WriteEnergyPJ()
		cell.LeakUW += sp.LeakUW()
	}

	// Cell pitch (post-overhead) determines the neighbour link length.
	cellArea := cell.AreaUM2 * fabricOverhead
	pitchMM := math.Sqrt(cellArea) / 1000

	// ---- Interconnect ------------------------------------------------------
	linkBits := mulBits + accBits + mulBits // act in, psum through, weight path
	switch cfg.Interconnect {
	case Unicast:
		link := circuit.Wire{
			Node: n, Layer: tech.WireIntermediate,
			LengthMM:  pitchMM,
			DriverRes: n.InvRonOhm() / 4,
			LoadFF:    n.InvCinFF() * 4,
			Bits:      linkBits,
		}
		lr := link.Eval()
		// Link wires route over the cell; count tracks not consumed by the
		// fabric overhead at 40%.
		cell.AreaUM2 += lr.AreaUM2 * 0.4 / fabricOverhead
		cell.DynPJ += lr.DynPJ * 0.5 // average toggle
		u.critPS = cell.DelayPS + lr.DelayPS
	case Multicast:
		// X buses span each row, Y buses each column; every cell taps the
		// bus. Delay from the Elmore chain with per-cell taps.
		rowSegs := make([]circuit.PiRC, cfg.Cols)
		taps := make([]float64, cfg.Cols)
		for i := range rowSegs {
			rowSegs[i] = circuit.PiFromWire(n, tech.WireIntermediate, pitchMM)
			taps[i] = n.InvCinFF() * 3
		}
		busDelay, err := circuit.ElmoreChainPS(n.InvRonOhm()/16, rowSegs, taps)
		if err != nil {
			return nil, err
		}
		rowBus := circuit.Wire{
			Node: n, Layer: tech.WireIntermediate,
			LengthMM: pitchMM * float64(cfg.Cols),
			Bits:     mulBits * 2, // data + tag for multicast matching
		}
		colBus := circuit.Wire{
			Node: n, Layer: tech.WireIntermediate,
			LengthMM: pitchMM * float64(cfg.Rows),
			Bits:     mulBits * 2,
		}
		rb, cb := rowBus.Eval(), colBus.Eval()
		// The X/Y buses route over the PE array on upper metal; only a
		// quarter of the track footprint costs silicon (keep-out + drivers).
		u.bus = pat.Result{
			AreaUM2: (rb.AreaUM2*float64(cfg.Rows) + cb.AreaUM2*float64(cfg.Cols)) * 0.25,
			DynPJ:   rb.DynPJ + cb.DynPJ, // per broadcast
			LeakUW:  0,
			DelayPS: busDelay,
		}
		u.critPS = math.Max(cell.DelayPS, busDelay)
	}

	// ---- I/O FIFOs ---------------------------------------------------------
	depth := cfg.IOFIFODepth
	if depth <= 0 {
		depth = 8
	}
	inFIFO := circuit.FIFO{Node: n, Depth: depth, Bits: mulBits}.Eval()
	outFIFO := circuit.FIFO{Node: n, Depth: depth, Bits: accBits}.Eval()
	u.fifos = inFIFO.Scale(float64(cfg.Rows + cfg.Cols)).Add(outFIFO.Scale(float64(cfg.Cols)))

	// ---- Totals ------------------------------------------------------------
	cells := float64(cfg.Rows * cfg.Cols)
	u.cell = cell
	u.areaUM2 = cellArea*cells + u.fifos.AreaUM2 + u.bus.AreaUM2
	u.leakUW = cell.LeakUW*cells + u.fifos.LeakUW

	// Per-MAC energy: the cell itself plus amortized FIFO traffic (one
	// push/pop feeds a whole row/column of MACs) and, for multicast, the
	// bus broadcast amortized over the cells it feeds.
	perMAC := cell.DynPJ +
		(inFIFO.DynPJ*float64(cfg.Rows+cfg.Cols)+outFIFO.DynPJ*float64(cfg.Cols))/cells
	if cfg.Interconnect == Multicast {
		perMAC += u.bus.DynPJ / float64(cfg.Rows+cfg.Cols)
	}
	u.perMACPJ = perMAC
	u.critPS = math.Max(u.critPS, u.fifos.DelayPS)
	return u, nil
}

// AreaUM2 returns the total TU area.
func (u *Unit) AreaUM2() float64 { return u.areaUM2 }

// PerMACPJ returns the average dynamic energy of one MAC operation,
// including register, local-buffer, link and amortized FIFO energy.
func (u *Unit) PerMACPJ() float64 { return u.perMACPJ }

// LeakUW returns the total static leakage.
func (u *Unit) LeakUW() float64 { return u.leakUW }

// CritPathPS returns the slowest stage delay; it must fit the cycle.
func (u *Unit) CritPathPS() float64 { return u.critPS }

// MeetsTiming reports whether the unit's critical path fits its target cycle.
func (u *Unit) MeetsTiming() bool { return u.critPS <= u.Cfg.CyclePS }

// MACs returns the number of systolic cells.
func (u *Unit) MACs() int { return u.Cfg.Rows * u.Cfg.Cols }

// PeakOpsPerCycle returns 2*MACs (multiply + add count as two operations,
// the convention behind "TOPS" in the paper).
func (u *Unit) PeakOpsPerCycle() float64 { return 2 * float64(u.MACs()) }

// CellResult exposes the evaluated single-cell model (Eyeriss PE-level
// validation compares at this granularity).
func (u *Unit) CellResult() pat.Result {
	c := u.cell
	c.AreaUM2 *= fabricOverhead
	return c
}

// FIFOResult exposes the aggregate I/O FIFO model.
func (u *Unit) FIFOResult() pat.Result { return u.fifos }

// BusResult exposes the multicast bus model (zero for unicast TUs).
func (u *Unit) BusResult() pat.Result { return u.bus }

// Result summarizes the whole unit; DynPJ is per MAC.
func (u *Unit) Result() pat.Result {
	return pat.Result{
		AreaUM2: u.areaUM2,
		DynPJ:   u.perMACPJ,
		LeakUW:  u.leakUW,
		DelayPS: u.critPS,
	}
}

func (u *Unit) String() string {
	return fmt.Sprintf("tu[%dx%d %s/%s %s area=%.2fmm2 %.3fpJ/MAC crit=%.0fps]",
		u.Cfg.Rows, u.Cfg.Cols, u.Cfg.MulType, u.Cfg.AccType, u.Cfg.Interconnect,
		u.areaUM2/1e6, u.perMACPJ, u.critPS)
}
