package fleet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"neurometer/internal/obs"
)

// TestBreakerLifecycle walks the full state machine: closed → (threshold
// failures) → open → (cooldown) → half-open → (probe success) → closed.
func TestBreakerLifecycle(t *testing.T) {
	g := obs.NewGauge("fleet.breaker_state.test-lifecycle")
	b := newBreaker(g)
	now := time.Unix(1000, 0)
	const threshold = 3
	const cooldown = 10 * time.Second

	// Closed: admits shards, absorbs sub-threshold failures.
	for i := 0; i < threshold-1; i++ {
		if !b.allow(now) {
			t.Fatalf("closed breaker must admit (failure %d)", i)
		}
		b.failure(threshold, cooldown, now)
	}
	if b.current() != stClosed {
		t.Fatalf("breaker opened below threshold: state %d", b.current())
	}

	// A success while closed resets the consecutive-failure count.
	b.success()
	for i := 0; i < threshold-1; i++ {
		b.failure(threshold, cooldown, now)
	}
	if b.current() != stClosed {
		t.Fatalf("success did not reset the failure count: state %d", b.current())
	}

	// The threshold-th consecutive failure trips it open.
	b.failure(threshold, cooldown, now)
	if b.current() != stOpen {
		t.Fatalf("breaker did not open at threshold: state %d", b.current())
	}
	if g.Value() != stOpen {
		t.Fatalf("breaker gauge = %v, want %d", g.Value(), stOpen)
	}

	// Open: rejects until the cooldown elapses.
	if b.allow(now.Add(cooldown / 2)) {
		t.Fatal("open breaker admitted a shard before cooldown")
	}

	// Cooldown over: half-open, exactly one probe admitted.
	probeTime := now.Add(cooldown + time.Second)
	if !b.allow(probeTime) {
		t.Fatal("breaker must admit a probe after cooldown")
	}
	if b.current() != stHalfOpen {
		t.Fatalf("breaker after cooldown = %d, want half-open (%d)", b.current(), stHalfOpen)
	}
	if b.allow(probeTime) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe success closes it.
	b.success()
	if b.current() != stClosed {
		t.Fatalf("probe success did not close the breaker: state %d", b.current())
	}
	if g.Value() != stClosed {
		t.Fatalf("breaker gauge = %v, want %d", g.Value(), stClosed)
	}
	if !b.allow(probeTime) {
		t.Fatal("closed breaker must admit")
	}
}

// TestBreakerProbeFailureReopens: a failed half-open probe re-opens the
// breaker immediately for another full cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	b := newBreaker(obs.NewGauge("fleet.breaker_state.test-reopen"))
	now := time.Unix(2000, 0)
	const cooldown = 10 * time.Second

	b.failure(1, cooldown, now)
	if b.current() != stOpen {
		t.Fatalf("threshold-1 breaker must open on first failure: state %d", b.current())
	}
	probeTime := now.Add(cooldown + time.Second)
	if !b.allow(probeTime) {
		t.Fatal("breaker must admit a probe after cooldown")
	}
	b.failure(1, cooldown, probeTime)
	if b.current() != stOpen {
		t.Fatalf("failed probe must re-open the breaker: state %d", b.current())
	}
	if b.allow(probeTime.Add(cooldown / 2)) {
		t.Fatal("re-opened breaker admitted before a fresh cooldown")
	}
	// And the fresh cooldown counts from the probe failure.
	if !b.allow(probeTime.Add(cooldown + time.Second)) {
		t.Fatal("re-opened breaker must probe again after its new cooldown")
	}
}

// TestBreakerProbeReleasedOnOutcome: the single half-open probe slot is
// released by either outcome, never leaked.
func TestBreakerProbeReleasedOnOutcome(t *testing.T) {
	b := newBreaker(obs.NewGauge("fleet.breaker_state.test-release"))
	now := time.Unix(3000, 0)
	const cooldown = time.Second

	b.failure(1, cooldown, now)
	probeTime := now.Add(2 * cooldown)
	if !b.allow(probeTime) {
		t.Fatal("probe not admitted")
	}
	b.failure(1, cooldown, probeTime) // probe fails → open again
	next := probeTime.Add(2 * cooldown)
	if !b.allow(next) {
		t.Fatal("probe slot leaked: second probe not admitted after cooldown")
	}
	b.success()
	if b.current() != stClosed {
		t.Fatalf("state %d, want closed", b.current())
	}
}

func TestMetricName(t *testing.T) {
	cases := map[string]string{
		"http://10.0.0.7:8080":    "10.0.0.7_8080",
		"https://w1.example.com/": "w1.example.com_",
		"host:1234":               "host_1234",
	}
	for in, want := range cases {
		if got := metricName(in); got != want {
			t.Errorf("metricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestBreakerHalfOpenSingleProbeConcurrent: when the cooldown elapses and
// many shard completions race to dispatch against the same recovering
// worker, exactly one caller wins the half-open probe slot — the rest are
// turned away until the probe reports an outcome. Run under -race this
// also proves allow's state transition is properly synchronized.
func TestBreakerHalfOpenSingleProbeConcurrent(t *testing.T) {
	b := newBreaker(obs.NewGauge("fleet.breaker_state.test-concurrent-probe"))
	now := time.Unix(4000, 0)
	const cooldown = time.Second

	b.failure(1, cooldown, now)
	if b.current() != stOpen {
		t.Fatalf("state %d, want open", b.current())
	}

	// N goroutines — one per "shard just completed, find me a worker" —
	// all observe the cooldown as elapsed and call allow at once.
	const n = 32
	probeTime := now.Add(2 * cooldown)
	start := make(chan struct{})
	var wg sync.WaitGroup
	var admitted atomic.Int32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if b.allow(probeTime) {
				admitted.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open breaker admitted %d concurrent probes, want exactly 1", got)
	}
	if b.current() != stHalfOpen {
		t.Fatalf("state %d, want half-open", b.current())
	}

	// The winner's outcome releases the slot: a success closes the breaker
	// and the stampede is re-admitted in full.
	b.success()
	admitted.Store(0)
	for i := 0; i < n; i++ {
		if b.allow(probeTime) {
			admitted.Add(1)
		}
	}
	if got := admitted.Load(); got != n {
		t.Fatalf("closed breaker admitted %d of %d, want all", got, n)
	}
}
