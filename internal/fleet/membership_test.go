package fleet

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"neurometer/internal/dse"
	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

// memberWorker is a test worker that answers both halves of the fleet
// protocol: GET /readyz (probe target) and POST /v1/worker/eval.
func memberWorker() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.Handle("POST /v1/worker/eval", workerHandler())
	return mux
}

// TestMembershipTransitions drives the full state machine with a controlled
// clock through probeResult — no real probes, no sleeps.
func TestMembershipTransitions(t *testing.T) {
	c, err := New(Config{
		Workers:      []string{"w1:8080", "w2:8080"},
		SuspectAfter: 10 * time.Second,
		EvictAfter:   30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	t0 := time.Now()
	w1 := c.m.lookup("w1:8080")
	if w1 == nil {
		t.Fatal("seeded worker missing from table")
	}

	// Failed probes age live → suspect → evicted against lastOK.
	c.m.probeResult(ctx, w1, false, t0.Add(5*time.Second))
	if st := c.m.States()["http://w1:8080"]; st != StateLive {
		t.Fatalf("after young failed probe: %v, want live", st)
	}
	c.m.probeResult(ctx, w1, false, t0.Add(11*time.Second))
	if st := c.m.States()["http://w1:8080"]; st != StateSuspect {
		t.Fatalf("past SuspectAfter: %v, want suspect", st)
	}
	c.m.probeResult(ctx, w1, false, t0.Add(31*time.Second))
	if st := c.m.States()["http://w1:8080"]; st != StateEvicted {
		t.Fatalf("past EvictAfter: %v, want evicted", st)
	}
	if got := c.m.Counts(); got.Live != 1 || got.Evicted != 1 {
		t.Fatalf("counts = %+v, want 1 live 1 evicted", got)
	}

	// A successful probe readmits an evicted member and resets its clock.
	c.m.probeResult(ctx, w1, true, t0.Add(40*time.Second))
	if st := c.m.States()["http://w1:8080"]; st != StateLive {
		t.Fatalf("after successful probe: %v, want live", st)
	}

	// Drain is sticky: successful probes do not readmit a draining member...
	if _, err := c.m.Drain(ctx, "w1:8080"); err != nil {
		t.Fatal(err)
	}
	c.m.probeResult(ctx, w1, true, t0.Add(50*time.Second))
	if st := c.m.States()["http://w1:8080"]; st != StateDraining {
		t.Fatalf("probe success on draining member: %v, want draining", st)
	}
	// ...but a drained process that stops answering still ages out, and
	// re-registration is the way back in.
	c.m.probeResult(ctx, w1, false, t0.Add(90*time.Second))
	if st := c.m.States()["http://w1:8080"]; st != StateEvicted {
		t.Fatalf("draining member past EvictAfter: %v, want evicted", st)
	}
	if _, err := c.m.Register(ctx, "w1:8080", t0.Add(95*time.Second)); err != nil {
		t.Fatal(err)
	}
	if st := c.m.States()["http://w1:8080"]; st != StateLive {
		t.Fatalf("after re-registration: %v, want live", st)
	}

	// Unknown workers cannot drain; registration is how the table grows.
	if _, err := c.m.Drain(ctx, "w9:8080"); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("drain of unknown worker: %v, want invalid-config", err)
	}
	if _, err := c.m.Register(ctx, "w3:8080", t0); err != nil {
		t.Fatal(err)
	}
	if got := c.m.Counts().Live; got != 3 {
		t.Fatalf("live = %d after join, want 3", got)
	}
	if g := obs.NewGauge("fleet.workers_live").Value(); g != 3 {
		t.Fatalf("fleet.workers_live gauge = %v, want 3", g)
	}
}

// TestNewValidatesMembershipKnobs: EvictAfter must exceed SuspectAfter, and
// an empty worker list needs Dynamic.
func TestNewValidatesMembershipKnobs(t *testing.T) {
	_, err := New(Config{Workers: []string{"w1"}, SuspectAfter: 30 * time.Second, EvictAfter: 10 * time.Second})
	if !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("EvictAfter < SuspectAfter: err = %v, want invalid-config", err)
	}
	c, err := New(Config{Dynamic: true})
	if err != nil {
		t.Fatalf("Dynamic with no seed workers: %v", err)
	}
	defer c.Close()
	if n := c.m.size(); n != 0 {
		t.Fatalf("dynamic coordinator table size = %d, want 0", n)
	}
	if _, err := c.m.Register(context.Background(), "w1:8080", time.Now()); err != nil {
		t.Fatal(err)
	}
	if got := c.m.Counts().Live; got != 1 {
		t.Fatalf("live = %d after first registration, want 1", got)
	}
}

// TestValidateFlags pins the CLI fail-fast contract: every bad combination
// is invalid-config (exit code 2).
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name     string
		lease    time.Duration
		hedge    time.Duration
		attempts int
		ok       bool
	}{
		{"defaults", DefaultLeaseTTL, DefaultHedgeAfter, DefaultMaxAttempts, true},
		{"hedging-disabled", time.Minute, -1, 2, true},
		{"zero-lease", 0, -1, 2, false},
		{"negative-lease", -time.Second, -1, 2, false},
		{"hedge-equals-lease", time.Minute, time.Minute, 2, false},
		{"hedge-exceeds-lease", time.Minute, 2 * time.Minute, 2, false},
		{"zero-attempts", time.Minute, -1, 0, false},
	}
	for _, tc := range cases {
		err := ValidateFlags(tc.lease, tc.hedge, tc.attempts)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok {
			if !errors.Is(err, guard.ErrInvalidConfig) {
				t.Errorf("%s: err = %v, want invalid-config", tc.name, err)
			}
			if code := guard.ExitCode(err); code != 2 {
				t.Errorf("%s: exit code = %d, want 2", tc.name, code)
			}
		}
	}
}

// TestHeartbeatEvictsDeadAndReadmitsRegistered: the probe loop notices a
// worker that died without draining (connection refused) and ages it to
// evicted within EvictAfter, while the healthy worker stays live; a
// re-registration readmits the dead one instantly.
func TestHeartbeatEvictsDeadAndReadmitsRegistered(t *testing.T) {
	healthy := httptest.NewServer(memberWorker())
	defer healthy.Close()
	dead := httptest.NewServer(memberWorker())
	deadURL := dead.URL
	dead.Close() // SIGKILL stand-in: the port now refuses connections

	c, err := New(Config{
		Workers:      []string{healthy.URL, deadURL},
		Heartbeat:    20 * time.Millisecond,
		SuspectAfter: 60 * time.Millisecond,
		EvictAfter:   150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if c.m.States()[deadURL] == StateEvicted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead worker never evicted; states = %v", c.m.States())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := c.m.States()[healthy.URL]; st != StateLive {
		t.Fatalf("healthy worker = %v, want live", st)
	}
	if g := obs.NewGauge("fleet.workers_evicted").Value(); g < 1 {
		t.Fatalf("fleet.workers_evicted gauge = %v, want >= 1", g)
	}

	// The worker restarts and registers: live again, immediately.
	if _, err := c.m.Register(context.Background(), deadURL, time.Now()); err != nil {
		t.Fatal(err)
	}
	if st := c.m.States()[deadURL]; st != StateLive {
		t.Fatalf("re-registered worker = %v, want live", st)
	}
}

// TestFleetChurnByteIdentical is the tentpole acceptance test: a scripted
// join → suspect → evict → readmit → drain schedule runs concurrently with
// a real study, and the study's table, CSV, and checkpoint bytes still
// match the serial reference exactly. Run under -race this also pins the
// membership table's concurrency contract against live dispatch.
func TestFleetChurnByteIdentical(t *testing.T) {
	st := tinyStudy(t)
	w1 := httptest.NewServer(memberWorker())
	defer w1.Close()
	w2 := httptest.NewServer(memberWorker())
	defer w2.Close()

	cfg := fastCfg(w1.URL) // w2 joins mid-study
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dir := t.TempDir()
	want, wantCk := runStudy(t, st, dir, "serial.ckpt", nil)

	ctx := context.Background()
	churn := func() {
		mb1 := c.m.lookup(w1.URL)
		step := 5 * time.Millisecond
		time.Sleep(step)
		// join: a second worker registers while shards are in flight.
		c.m.Register(ctx, w2.URL, time.Now())
		time.Sleep(step)
		// suspect then evict w1 on a synthetic clock (its real process
		// stays up, so its in-flight leases keep resolving — the eviction
		// only gates new dispatch, exactly like a frozen process).
		c.m.probeResult(ctx, mb1, false, time.Now().Add(cfg.SuspectAfter+DefaultSuspectAfter))
		time.Sleep(step)
		c.m.probeResult(ctx, mb1, false, time.Now().Add(DefaultEvictAfter+time.Hour))
		time.Sleep(step)
		// readmit w1 via registration, then drain w2.
		c.m.Register(ctx, w1.URL, time.Now())
		time.Sleep(step)
		c.m.Drain(ctx, w2.URL)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	dispatch := func(dctx context.Context, sh dse.Shard, report func(dse.ShardOutcome)) {
		go func() { defer wg.Done(); churn() }()
		c.Dispatch(dctx, sh, report)
	}
	got, gotCk := runStudy(t, st, dir, "churn.ckpt", dispatch)
	wg.Wait()

	if got != want {
		t.Fatalf("churn output differs from serial:\n--- serial\n%s\n--- churn\n%s", want, got)
	}
	if string(gotCk) != string(wantCk) {
		t.Fatalf("churn checkpoint differs from serial")
	}
	states := c.m.States()
	if states[w1.URL] != StateLive {
		t.Fatalf("w1 = %v after readmission, want live", states[w1.URL])
	}
	if states[w2.URL] != StateDraining {
		t.Fatalf("w2 = %v after drain, want draining", states[w2.URL])
	}
}

// TestFleetDrainFinishesLeasedShard pins the drain/lease race: a worker
// drained while holding an active lease finishes that shard and its result
// merges normally; afterwards it receives no new dispatch.
func TestFleetDrainFinishesLeasedShard(t *testing.T) {
	st := tinyStudy(t)
	gate := make(chan struct{})
	var reqs, evals int64
	var mu sync.Mutex
	drainMux := http.NewServeMux()
	drainMux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	started := make(chan struct{}, 16)
	drainMux.Handle("POST /v1/worker/eval", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		reqs++
		mu.Unlock()
		started <- struct{}{}
		<-gate // hold the lease until the test has drained us
		workerHandler()(w, r)
		mu.Lock()
		evals++
		mu.Unlock()
	}))
	drainW := httptest.NewServer(drainMux)
	defer drainW.Close()
	other := httptest.NewServer(memberWorker())
	defer other.Close()

	cfg := fastCfg(drainW.URL, other.URL)
	cfg.ShardSize = 4 // 8 candidates -> 2 shards: one per worker
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dir := t.TempDir()
	want, _ := runStudy(t, st, dir, "serial.ckpt", nil)

	// Count every reported outcome per candidate index: a double-requeue
	// that merged twice would show up here even though dse would drop it.
	reports := map[int]int{}
	var rmu sync.Mutex
	done := make(chan struct{})
	var got string
	go func() {
		defer close(done)
		got, _ = runStudy(t, st, dir, "drain.ckpt", func(ctx context.Context, sh dse.Shard, report func(dse.ShardOutcome)) {
			c.Dispatch(ctx, sh, func(o dse.ShardOutcome) {
				rmu.Lock()
				reports[o.Index]++
				rmu.Unlock()
				report(o)
			})
		})
	}()

	<-started // drainW holds an active lease now
	if _, err := c.m.Drain(context.Background(), drainW.URL); err != nil {
		t.Fatal(err)
	}
	close(gate) // the drained worker finishes its leased shard
	<-done

	if got != want {
		t.Fatalf("drain-race output differs from serial:\n--- serial\n%s\n--- got\n%s", want, got)
	}
	mu.Lock()
	gotReqs, gotEvals := reqs, evals
	mu.Unlock()
	if gotReqs != 1 {
		t.Fatalf("drained worker received %d shards, want exactly 1 (no new dispatch after drain)", gotReqs)
	}
	if gotEvals != 1 {
		t.Fatalf("drained worker completed %d evals, want 1 (leased shard must finish)", gotEvals)
	}
	rmu.Lock()
	defer rmu.Unlock()
	for idx, n := range reports {
		if n != 1 {
			t.Fatalf("candidate %d reported %d times, want exactly once", idx, n)
		}
	}

	// A fresh study through the same coordinator never touches the drained
	// worker.
	got2, _ := runStudy(t, st, dir, "after.ckpt", c.Dispatch)
	if got2 != want {
		t.Fatalf("post-drain study differs from serial")
	}
	mu.Lock()
	defer mu.Unlock()
	if reqs != gotReqs {
		t.Fatalf("drained worker received %d new shards in a post-drain study, want 0", reqs-gotReqs)
	}
}

// TestFleetDrainedLeaseExpiryRequeuesOnce: a worker drained while wedged on
// a lease lets the lease expire; the shard requeues elsewhere exactly once
// and every candidate still merges exactly once — drain plus expiry is not
// a double requeue.
func TestFleetDrainedLeaseExpiryRequeuesOnce(t *testing.T) {
	st := tinyStudy(t)
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	var reqs int64
	var mu sync.Mutex
	wedgedMux := http.NewServeMux()
	wedgedMux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	wedgedMux.Handle("POST /v1/worker/eval", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		reqs++
		mu.Unlock()
		started <- struct{}{}
		select {
		case <-gate:
		case <-r.Context().Done(): // lease expiry cancels the request
		}
	}))
	wedged := httptest.NewServer(wedgedMux)
	defer wedged.Close()
	other := httptest.NewServer(memberWorker())
	defer other.Close()

	cfg := fastCfg(wedged.URL, other.URL)
	cfg.ShardSize = 64 // one shard holding the whole study
	cfg.LeaseTTL = 250 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	dir := t.TempDir()
	want, _ := runStudy(t, st, dir, "serial.ckpt", nil)

	expiredBefore := obs.NewCounter("fleet.lease_expired_total").Value()
	reports := map[int]int{}
	var rmu sync.Mutex
	done := make(chan struct{})
	var got string
	go func() {
		defer close(done)
		got, _ = runStudy(t, st, dir, "wedged.ckpt", func(ctx context.Context, sh dse.Shard, report func(dse.ShardOutcome)) {
			c.Dispatch(ctx, sh, func(o dse.ShardOutcome) {
				rmu.Lock()
				reports[o.Index]++
				rmu.Unlock()
				report(o)
			})
		})
	}()

	<-started // the wedged worker holds the study's only lease
	if _, err := c.m.Drain(context.Background(), wedged.URL); err != nil {
		t.Fatal(err)
	}
	// Never open the gate: the lease expires under the drained worker and
	// the shard must requeue to the other worker exactly once.
	<-done
	close(gate)

	if got != want {
		t.Fatalf("wedged-drain output differs from serial:\n--- serial\n%s\n--- got\n%s", want, got)
	}
	if obs.NewCounter("fleet.lease_expired_total").Value() != expiredBefore+1 {
		t.Fatalf("lease expiries = %d, want exactly 1 more than %d",
			obs.NewCounter("fleet.lease_expired_total").Value(), expiredBefore)
	}
	mu.Lock()
	if reqs != 1 {
		t.Fatalf("wedged worker received %d shards, want 1 (drain gates the retry)", reqs)
	}
	mu.Unlock()
	rmu.Lock()
	defer rmu.Unlock()
	for idx, n := range reports {
		if n != 1 {
			t.Fatalf("candidate %d reported %d times, want exactly once", idx, n)
		}
	}
}
