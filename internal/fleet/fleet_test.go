package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"neurometer/internal/dse"
	"neurometer/internal/guard"
	"neurometer/internal/obs"
	"neurometer/internal/perfsim"
)

// tinyStudy materializes a small, fast runtime study (two brawniness
// classes, one workload) — the same shape the dse tests sweep.
func tinyStudy(t *testing.T) *dse.Study {
	t.Helper()
	cs := dse.TableI()
	cs.XChoices = []int{8, 64}
	cs.NChoices = []int{2, 4}
	cs.MaxTiles = 32
	st, err := dse.NewStudy(context.Background(), dse.StudySpec{
		Constraints: cs,
		Spec:        dse.BatchSpec{Fixed: 8},
		Opt:         perfsim.DefaultOptions(),
		Models:      []string{"alexnet"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// workerHandler behaves like a neurometerd worker's /v1/worker/eval: decode
// the shard, pass the fleet.shard fault-injection site, evaluate, respond.
// Errors render in the serve wire form ({error, kind}) with the guard
// status mapping — exactly what the coordinator's classifier expects.
func workerHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var sh dse.Shard
		if err := json.NewDecoder(r.Body).Decode(&sh); err != nil {
			writeWorkerErr(w, 400, "invalid-config", err.Error())
			return
		}
		if err := guard.Inject(r.Context(), "fleet.shard"); err != nil {
			writeWorkerErr(w, guard.HTTPStatus(err), guard.Kind(err), err.Error())
			return
		}
		outs, err := dse.EvalShard(r.Context(), sh, 1, nil)
		if err != nil {
			writeWorkerErr(w, guard.HTTPStatus(err), guard.Kind(err), err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(dse.ShardResult{Outcomes: outs})
	}
}

func writeWorkerErr(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg, "kind": kind})
}

// fastCfg returns a Config tuned for test wall-clock: tiny backoff, no
// hedging unless a test opts in.
func fastCfg(workers ...string) Config {
	return Config{
		Workers:         workers,
		ShardSize:       1,
		LeaseTTL:        5 * time.Second,
		HedgeAfter:      -1,
		MaxAttempts:     4,
		Backoff:         guard.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		BreakerCooldown: 20 * time.Millisecond,
	}
}

// runStudy evaluates the tiny study with the given dispatcher and returns
// its formatted rows and checkpoint bytes.
func runStudy(t *testing.T, st *dse.Study, dir, name string, dispatch func(context.Context, dse.Shard, func(dse.ShardOutcome))) (string, []byte) {
	t.Helper()
	path := filepath.Join(dir, name)
	rows, err := st.Run(context.Background(), dse.Hardening{Workers: 1, Dispatch: dispatch}, path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return dse.FormatRuntimeRows(rows) + "\n" + dse.RuntimeRowsCSV(rows), b
}

// TestFleetByteIdenticalToSerial: the headline contract. A two-worker fleet
// run emits the same table, CSV, and checkpoint bytes as a serial
// in-process run.
func TestFleetByteIdenticalToSerial(t *testing.T) {
	st := tinyStudy(t)
	w1 := httptest.NewServer(workerHandler())
	defer w1.Close()
	w2 := httptest.NewServer(workerHandler())
	defer w2.Close()

	c, err := New(fastCfg(w1.URL, w2.URL))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	want, wantCk := runStudy(t, st, dir, "serial.ckpt", nil)
	got, gotCk := runStudy(t, st, dir, "fleet.ckpt", c.Dispatch)
	if got != want {
		t.Fatalf("fleet output differs from serial:\n--- serial\n%s\n--- fleet\n%s", want, got)
	}
	if string(gotCk) != string(wantCk) {
		t.Fatalf("fleet checkpoint differs from serial:\n--- serial\n%s\n--- fleet\n%s", wantCk, gotCk)
	}
}

// TestFleetSurvivesWorkerDeathMidStudy: one of two workers dies after its
// first shard (connections drop mid-request from then on). The study must
// complete with byte-identical output — the dead worker's shards retry on
// the survivor.
func TestFleetSurvivesWorkerDeathMidStudy(t *testing.T) {
	st := tinyStudy(t)
	var served atomic.Int64
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) > 1 {
			panic(http.ErrAbortHandler) // slam the connection shut mid-request
		}
		workerHandler()(w, r)
	}))
	defer dying.Close()
	healthy := httptest.NewServer(workerHandler())
	defer healthy.Close()

	cfg := fastCfg(dying.URL, healthy.URL)
	cfg.BreakerThreshold = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	want, wantCk := runStudy(t, st, dir, "serial.ckpt", nil)
	got, gotCk := runStudy(t, st, dir, "fleet.ckpt", c.Dispatch)
	if got != want {
		t.Fatalf("output with dying worker differs from serial:\n--- serial\n%s\n--- fleet\n%s", want, got)
	}
	if string(gotCk) != string(wantCk) {
		t.Fatalf("checkpoint with dying worker differs from serial")
	}
}

// TestFleetInjectedWorkerFaultRetries: a fault injected at the worker-side
// fleet.shard site (one 503) must be retried transparently; output stays
// byte-identical and fleet.retries_total moves.
func TestFleetInjectedWorkerFaultRetries(t *testing.T) {
	defer guard.DisarmAll()
	st := tinyStudy(t)
	w1 := httptest.NewServer(workerHandler())
	defer w1.Close()
	w2 := httptest.NewServer(workerHandler())
	defer w2.Close()

	c, err := New(fastCfg(w1.URL, w2.URL))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	want, _ := runStudy(t, st, dir, "serial.ckpt", nil)

	retriesBefore := obs.NewCounter("fleet.retries_total").Value()
	guard.Arm("fleet.shard", guard.Fault{Count: 1, Err: guard.Unavailable("injected worker fault")})
	got, _ := runStudy(t, st, dir, "fleet.ckpt", c.Dispatch)
	if got != want {
		t.Fatalf("output with injected fault differs from serial:\n--- serial\n%s\n--- fleet\n%s", want, got)
	}
	if obs.NewCounter("fleet.retries_total").Value() == retriesBefore {
		t.Fatalf("injected worker fault did not register a retry")
	}
}

// TestFleetAllWorkersDownFallsBackLocal: a coordinator whose entire fleet
// is unreachable must not fail the study — every candidate falls through to
// local evaluation, byte-identically.
func TestFleetAllWorkersDownFallsBackLocal(t *testing.T) {
	st := tinyStudy(t)
	dead := httptest.NewServer(nil)
	dead.Close() // nothing listens here anymore

	cfg := fastCfg(dead.URL)
	cfg.MaxAttempts = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	want, wantCk := runStudy(t, st, dir, "serial.ckpt", nil)
	got, gotCk := runStudy(t, st, dir, "fleet.ckpt", c.Dispatch)
	if got != want {
		t.Fatalf("output with dead fleet differs from serial:\n--- serial\n%s\n--- local\n%s", want, got)
	}
	if string(gotCk) != string(wantCk) {
		t.Fatalf("checkpoint with dead fleet differs from serial")
	}
}

// TestFleetLeaseExpiryRequeues: a worker that sits on a shard past the
// lease TTL loses it; the shard requeues elsewhere and the study completes
// byte-identically. fleet.lease_expired_total witnesses the mechanism.
func TestFleetLeaseExpiryRequeues(t *testing.T) {
	st := tinyStudy(t)
	var stalls atomic.Int64
	done := make(chan struct{}) // unblocks the stalled handler at test end
	stalling := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if stalls.Add(1) == 1 {
			// Hold the first shard until the lease reaps it client-side.
			select {
			case <-r.Context().Done():
			case <-done:
			}
			return
		}
		workerHandler()(w, r)
	}))
	defer stalling.Close()
	defer close(done) // LIFO: runs before stalling.Close()
	healthy := httptest.NewServer(workerHandler())
	defer healthy.Close()

	cfg := fastCfg(stalling.URL, healthy.URL)
	cfg.LeaseTTL = 100 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	want, _ := runStudy(t, st, dir, "serial.ckpt", nil)

	expiredBefore := obs.NewCounter("fleet.lease_expired_total").Value()
	got, _ := runStudy(t, st, dir, "fleet.ckpt", c.Dispatch)
	if got != want {
		t.Fatalf("output with stalling worker differs from serial:\n--- serial\n%s\n--- fleet\n%s", want, got)
	}
	if obs.NewCounter("fleet.lease_expired_total").Value() <= expiredBefore {
		t.Fatalf("stalled shard did not register a lease expiry")
	}
}

// TestFleetHedgesStragglers: with hedging enabled, a straggling primary is
// raced by a second attempt on another worker; the fast result wins and the
// straggler is canceled, so the study finishes long before the straggler
// would have.
func TestFleetHedgesStragglers(t *testing.T) {
	st := tinyStudy(t)
	const stall = 30 * time.Second
	done := make(chan struct{}) // unblocks stragglers at test end
	straggler := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(stall):
			workerHandler()(w, r)
		case <-r.Context().Done(): // canceled by first-result-wins
		case <-done:
		}
	}))
	defer straggler.Close()
	defer close(done) // LIFO: runs before straggler.Close()
	fast := httptest.NewServer(workerHandler())
	defer fast.Close()

	cfg := fastCfg(straggler.URL, fast.URL)
	cfg.ShardSize = 64 // one shard: its primary may land on the straggler
	cfg.HedgeAfter = 20 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	want, _ := runStudy(t, st, dir, "serial.ckpt", nil)

	hedgesBefore := obs.NewCounter("fleet.hedges_total").Value()
	start := time.Now()
	got, _ := runStudy(t, st, dir, "fleet.ckpt", c.Dispatch)
	if elapsed := time.Since(start); elapsed > stall/2 {
		t.Fatalf("hedging did not rescue the straggler: study took %v", elapsed)
	}
	if got != want {
		t.Fatalf("hedged output differs from serial:\n--- serial\n%s\n--- fleet\n%s", want, got)
	}
	if obs.NewCounter("fleet.hedges_total").Value() <= hedgesBefore {
		t.Fatalf("straggling primary did not register a hedge")
	}
}

// TestFleetBreakerIsolatesAndReadmits: a worker that keeps erroring gets
// its breaker opened (no more shards), and once it recovers, the half-open
// probe readmits it.
func TestFleetBreakerIsolatesAndReadmits(t *testing.T) {
	st := tinyStudy(t)
	var broken atomic.Bool
	broken.Store(true)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if broken.Load() {
			writeWorkerErr(w, http.StatusServiceUnavailable, "unavailable", "worker down for maintenance")
			return
		}
		workerHandler()(w, r)
	}))
	defer flaky.Close()
	healthy := httptest.NewServer(workerHandler())
	defer healthy.Close()

	cfg := fastCfg(flaky.URL, healthy.URL)
	cfg.BreakerThreshold = 1
	cfg.BreakerCooldown = 30 * time.Millisecond
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	want, _ := runStudy(t, st, dir, "serial.ckpt", nil)
	got, _ := runStudy(t, st, dir, "fleet1.ckpt", c.Dispatch)
	if got != want {
		t.Fatalf("output with broken worker differs from serial")
	}
	flakyBreaker := c.m.lookup(flaky.URL).breaker
	if flakyBreaker.current() != stOpen {
		t.Fatalf("erroring worker's breaker = %d, want open (%d)", flakyBreaker.current(), stOpen)
	}
	// A breaker trip also feeds membership suspicion.
	if st := c.m.States()[flaky.URL]; st != StateSuspect {
		t.Fatalf("erroring worker's membership state = %v, want suspect", st)
	}

	// Recovery: after the cooldown, the next study's probe should close
	// the breaker again.
	broken.Store(false)
	time.Sleep(2 * cfg.BreakerCooldown)
	got, _ = runStudy(t, st, dir, "fleet2.ckpt", c.Dispatch)
	if got != want {
		t.Fatalf("output after worker recovery differs from serial")
	}
	if flakyBreaker.current() != stClosed {
		t.Fatalf("recovered worker's breaker = %d, want closed (%d)", flakyBreaker.current(), stClosed)
	}
}

// TestFleetPermanentRejectionFallsBackWithoutRetry: a worker that rejects
// the shard as malformed (4xx) must not be retried — the candidates fall
// back to local evaluation immediately.
func TestFleetPermanentRejectionFallsBackWithoutRetry(t *testing.T) {
	st := tinyStudy(t)
	var requests atomic.Int64
	rejecting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		writeWorkerErr(w, http.StatusUnprocessableEntity, "invalid-config", "shard rejected")
	}))
	defer rejecting.Close()

	cfg := fastCfg(rejecting.URL)
	cfg.ShardSize = 64 // a single shard, so the request count is exact
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	want, _ := runStudy(t, st, dir, "serial.ckpt", nil)
	got, _ := runStudy(t, st, dir, "fleet.ckpt", c.Dispatch)
	if got != want {
		t.Fatalf("output after permanent rejection differs from serial")
	}
	if n := requests.Load(); n != 1 {
		t.Fatalf("permanently rejected shard was sent %d times, want 1", n)
	}
}

// TestNewValidates: a coordinator needs at least one worker, and worker
// URLs are normalized.
func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no workers must fail")
	}
	c, err := New(Config{Workers: []string{"host1:8080/", "http://host2:9090"}})
	if err != nil {
		t.Fatal(err)
	}
	ws := c.Workers()
	if ws[0] != "http://host1:8080" || ws[1] != "http://host2:9090" {
		t.Fatalf("worker URLs not normalized: %v", ws)
	}
}
