package fleet

import (
	"context"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

var (
	mProbes       = obs.NewCounter("fleet.probes_total")
	mProbeFailed  = obs.NewCounter("fleet.probe_failures_total")
	mMemberEvents = obs.NewCounter("fleet.member_events_total")
)

// probeLoop drives the membership heartbeat: roughly every cfg.Heartbeat
// it probes each member's /readyz in parallel and feeds the outcomes
// through Membership.probeResult, which ages unresponsive members toward
// eviction and readmits recovered ones. The interval is jittered (see
// probeInterval) so a fleet of coordinators started together — or
// restarted together after a deploy — does not probe every worker in
// synchronized bursts, the same full-jitter reasoning Backoff applies to
// shard retries. Started by New when Heartbeat > 0; stopped by Close.
func (c *Coordinator) probeLoop(ctx context.Context) {
	defer close(c.probeDone)
	t := time.NewTimer(probeInterval(c.cfg.Heartbeat))
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.probeAll(ctx, time.Now())
			t.Reset(probeInterval(c.cfg.Heartbeat))
		}
	}
}

// probeInterval draws the next heartbeat delay: uniform in (h/2, h]. Full
// jitter over the upper half of the interval decorrelates coordinators
// while keeping two guarantees the membership aging math relies on: the
// gap between probe rounds never exceeds the configured Heartbeat (so
// SuspectAfter/EvictAfter thresholds, documented as multiples of
// Heartbeat, still bound detection latency), and never drops below half
// of it (so jitter cannot double probe load on the workers).
func probeInterval(h time.Duration) time.Duration {
	half := h / 2
	if half <= 0 {
		return h
	}
	return half + time.Duration(rand.Int63n(int64(h-half))+1)
}

// probeAll runs one probe round over the full table (every state — an
// evicted member that answers again is readmitted). Exposed to tests so a
// churn schedule can be driven with a controlled clock instead of waiting
// out real heartbeat intervals.
func (c *Coordinator) probeAll(ctx context.Context, now time.Time) {
	members := c.m.all()
	var wg sync.WaitGroup
	for _, mb := range members {
		wg.Add(1)
		go func(mb *member) {
			defer wg.Done()
			c.m.probeResult(ctx, mb, c.probeOne(ctx, mb), now)
		}(mb)
	}
	wg.Wait()
}

// probeOne GETs one member's /readyz under a Heartbeat-long deadline (or
// one second when heartbeats are disabled and a test calls probeAll
// directly). Success is exactly HTTP 200: a draining or shedding worker
// answering 503 is a failed probe, which is what lets a drained-and-gone
// process age out of the table. The fleet.heartbeat fault site injects
// probe failures for chaos tests.
func (c *Coordinator) probeOne(ctx context.Context, mb *member) bool {
	mProbes.Inc()
	if err := guard.Inject(ctx, "fleet.heartbeat"); err != nil {
		mProbeFailed.Inc()
		return false
	}
	timeout := c.cfg.Heartbeat
	if timeout <= 0 {
		timeout = time.Second
	}
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, mb.url+"/readyz", nil)
	if err != nil {
		mProbeFailed.Inc()
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		mProbeFailed.Inc()
		return false
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		mProbeFailed.Inc()
		return false
	}
	return true
}
