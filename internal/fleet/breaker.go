package fleet

import (
	"sync"
	"time"

	"neurometer/internal/obs"
)

// Per-worker circuit breaker. A worker that keeps failing stops receiving
// shards (open) until a cooldown elapses, then gets exactly one probe shard
// (half-open): success closes the breaker, failure re-opens it. This keeps
// a crashed or wedged worker from absorbing — and timing out — a lease per
// retry while healthy workers sit idle, and it gives a recovered worker a
// cheap way back into rotation.
//
// State is exported as a labeled gauge per worker
// (fleet.breaker_state{worker="<url>"}): 0 closed, 1 half-open, 2 open —
// matching the state constants below.

const (
	stClosed   = 0
	stHalfOpen = 1
	stOpen     = 2
)

type breaker struct {
	mu      sync.Mutex
	state   int
	fails   int       // consecutive failures while closed
	until   time.Time // open: when the cooldown ends
	probing bool      // half-open: the single probe is in flight
	gauge   *obs.Gauge
}

func newBreaker(gauge *obs.Gauge) *breaker {
	b := &breaker{gauge: gauge}
	gauge.Set(stClosed)
	return b
}

func (b *breaker) set(state int) {
	b.state = state
	b.gauge.Set(float64(state))
}

// allow reports whether the worker may receive a shard now. In half-open it
// reserves the single probe slot for the caller — a true return is a
// commitment to report success() or failure() for the attempt.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stClosed:
		return true
	case stOpen:
		if now.Before(b.until) {
			return false
		}
		b.set(stHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success closes the breaker: the worker is healthy again.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.fails = 0
	if b.state != stClosed {
		b.set(stClosed)
	}
}

// failure records a worker-attributable failure and reports whether this
// failure tripped the breaker open (callers emit the breaker-open trace
// event exactly once per trip). A failed half-open probe re-opens
// immediately; threshold consecutive failures while closed trip the breaker
// open for cooldown.
func (b *breaker) failure(threshold int, cooldown time.Duration, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state == stHalfOpen {
		b.trip(cooldown, now)
		return true
	}
	if b.state == stClosed {
		b.fails++
		if b.fails >= threshold {
			b.trip(cooldown, now)
			return true
		}
	}
	return false
}

func (b *breaker) trip(cooldown time.Duration, now time.Time) {
	b.set(stOpen)
	b.until = now.Add(cooldown)
	b.fails = 0
}

// probeReady reports whether the breaker would admit a half-open probe
// right now, without reserving it the way allow does. The dispatch picker
// uses this to let a suspect worker back into the primary rotation exactly
// when its breaker is due a traffic probe — otherwise a suspect member
// behind healthy live ones would never see the shard that readmits it.
func (b *breaker) probeReady(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stOpen:
		return !now.Before(b.until)
	case stHalfOpen:
		return !b.probing
	}
	return false
}

// current returns the state for tests and introspection.
func (b *breaker) current() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
