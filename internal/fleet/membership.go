package fleet

import (
	"context"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"time"

	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

// Dynamic fleet membership. The coordinator keeps one table of every worker
// it has ever heard of — seeded from the static Config.Workers list and
// extended at runtime by POST /v1/worker/register — and tracks each worker
// through a small state machine:
//
//	live ──(missed probes ≥ SuspectAfter, or breaker trips)──▶ suspect
//	suspect ──(missed probes ≥ EvictAfter)──▶ evicted
//	suspect/evicted ──(probe success or re-registration)──▶ live
//	any ──(POST /v1/worker/drain)──▶ draining
//	draining ──(missed probes ≥ EvictAfter)──▶ evicted
//	draining ──(re-registration)──▶ live
//
// Dispatch gating is the only consumer of the state: live members receive
// shards first, suspect members only when no live member admits one, and
// draining or evicted members receive nothing. Draining members finish the
// shards they already hold (nothing cancels an in-flight lease on a drain),
// and an evicted member's in-flight leases requeue through the ordinary
// lease-expiry path. A membership transition therefore only ever changes
// *who* evaluates a shard, never *what* merges back — the coordinator still
// merges outcomes by candidate index and still degrades any unresolved
// remainder to local evaluation — so tables, CSVs, and checkpoints stay
// byte-identical to a serial run under any join/leave/crash/drain schedule.
//
// Observability: fleet.workers_live / fleet.workers_suspect /
// fleet.workers_draining / fleet.workers_evicted gauges track the table,
// and every transition emits a fleet.member_join / fleet.member_suspect /
// fleet.member_evict / fleet.member_drain trace event plus a structured
// log line.

// State is a member's position in the membership state machine.
type State int

const (
	// StateLive members receive new shards.
	StateLive State = iota
	// StateSuspect members have missed liveness probes (or tripped their
	// breaker); they receive new shards only when no live member can.
	StateSuspect
	// StateDraining members finish the shards they hold but receive no
	// new dispatch; set by POST /v1/worker/drain (SIGTERM announcement).
	StateDraining
	// StateEvicted members receive nothing; probe success or
	// re-registration readmits them as live.
	StateEvicted
)

// String renders the state for /readyz summaries, logs, and wire responses.
func (s State) String() string {
	switch s {
	case StateLive:
		return "live"
	case StateSuspect:
		return "suspect"
	case StateDraining:
		return "draining"
	case StateEvicted:
		return "evicted"
	}
	return "unknown"
}

// Defaults for the membership knobs (the cmd flag defaults).
const (
	// DefaultHeartbeat is the coordinator probe interval (and the worker
	// re-registration cadence under -join).
	DefaultHeartbeat = 2 * time.Second
	// DefaultSuspectAfter marks a worker suspect after this long without a
	// successful probe.
	DefaultSuspectAfter = 10 * time.Second
	// DefaultEvictAfter evicts a worker after this long without a
	// successful probe.
	DefaultEvictAfter = 30 * time.Second
)

// member is one worker's membership record. The url is immutable; state,
// lastOK and the breaker are guarded by the Membership mutex (breaker has
// its own internal lock — it is shared with the dispatch path).
type member struct {
	url     string
	seq     int // join order; keeps round-robin stable and config-faithful
	breaker *breaker

	state  State
	lastOK time.Time // last successful probe, eval, or (re-)registration
}

// Membership is the coordinator's worker table. Safe for concurrent use by
// the dispatch path, the probe loop, and the serve register/drain handlers.
type Membership struct {
	mu      sync.Mutex
	members map[string]*member
	nextSeq int

	suspectAfter time.Duration
	evictAfter   time.Duration

	gLive     *obs.Gauge
	gSuspect  *obs.Gauge
	gDraining *obs.Gauge
	gEvicted  *obs.Gauge
}

// MemberCounts is the membership summary /readyz exposes in coordinator
// mode, and what the CI chaos jobs gate on.
type MemberCounts struct {
	Live     int `json:"workers_live"`
	Suspect  int `json:"workers_suspect"`
	Draining int `json:"workers_draining"`
	Evicted  int `json:"workers_evicted"`
}

func newMembership(suspectAfter, evictAfter time.Duration) *Membership {
	return &Membership{
		members:      map[string]*member{},
		suspectAfter: suspectAfter,
		evictAfter:   evictAfter,
		gLive:        obs.NewGauge("fleet.workers_live"),
		gSuspect:     obs.NewGauge("fleet.workers_suspect"),
		gDraining:    obs.NewGauge("fleet.workers_draining"),
		gEvicted:     obs.NewGauge("fleet.workers_evicted"),
	}
}

// memberEvent emits one membership-transition trace event and counts it
// under fleet.member_events_total, so churn is visible on a metrics
// dashboard even when no trace is attached.
func memberEvent(ctx context.Context, name string, attrs ...obs.Attr) {
	mMemberEvents.Inc()
	obs.Event(ctx, name, attrs...)
}

// normalizeURL canonicalizes a worker address the way Config.Workers always
// has: trim trailing slashes, default the scheme to http.
func normalizeURL(url string) (string, error) {
	url = strings.TrimRight(strings.TrimSpace(url), "/")
	if url == "" {
		return "", guard.Invalid("fleet: empty worker URL")
	}
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	return url, nil
}

// seed adds the static Config.Workers list as live members (no events: the
// table is being constructed, nothing joined).
func (m *Membership) seed(urls []string, now time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, u := range urls {
		u, err := normalizeURL(u)
		if err != nil {
			return err
		}
		if _, ok := m.members[u]; ok {
			continue
		}
		m.members[u] = &member{
			url:     u,
			seq:     m.nextSeq,
			breaker: newBreaker(obs.NewGauge(obs.Name("fleet.breaker_state", "worker", metricName(u)))),
			state:   StateLive,
			lastOK:  now,
		}
		m.nextSeq++
	}
	m.updateGaugesLocked()
	return nil
}

// Register adds a worker to the table as live, or readmits one the table
// already knows (suspect, draining, or evicted → live, with the breaker
// reset so the first shard is not blocked by stale failure history).
// Re-registering a live member is an idempotent heartbeat: lastOK advances,
// nothing else changes. This is the /v1/worker/register entry point.
func (m *Membership) Register(ctx context.Context, url string, now time.Time) (State, error) {
	url, err := normalizeURL(url)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	mb, known := m.members[url]
	if !known {
		mb = &member{
			url:     url,
			seq:     m.nextSeq,
			breaker: newBreaker(obs.NewGauge(obs.Name("fleet.breaker_state", "worker", metricName(url)))),
			state:   StateLive,
			lastOK:  now,
		}
		m.members[url] = mb
		m.nextSeq++
	}
	readmitted := known && mb.state != StateLive
	mb.lastOK = now
	if readmitted {
		mb.state = StateLive
	}
	m.updateGaugesLocked()
	m.mu.Unlock()

	if !known || readmitted {
		mb.breaker.success() // fresh start: stale failure history cleared
		memberEvent(ctx, "fleet.member_join", obs.String("worker", url))
		slog.InfoContext(ctx, "fleet: worker joined", "worker", url, "readmitted", readmitted)
	}
	return StateLive, nil
}

// Drain marks a known worker draining: it finishes the shards it holds but
// receives no new dispatch. Draining is sticky — only re-registration (or
// eventual eviction once its probes stop answering) moves it out. This is
// the /v1/worker/drain entry point, fed by a worker's SIGTERM announcement.
func (m *Membership) Drain(ctx context.Context, url string) (State, error) {
	url, err := normalizeURL(url)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	mb, ok := m.members[url]
	if !ok {
		m.mu.Unlock()
		return 0, guard.Invalid("fleet: drain: unknown worker %s", url)
	}
	changed := mb.state != StateDraining
	mb.state = StateDraining
	m.updateGaugesLocked()
	m.mu.Unlock()

	if changed {
		memberEvent(ctx, "fleet.member_drain", obs.String("worker", url))
		slog.InfoContext(ctx, "fleet: worker draining", "worker", url)
	}
	return StateDraining, nil
}

// Counts returns the per-state member counts.
func (m *Membership) Counts() MemberCounts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.countsLocked()
}

func (m *Membership) countsLocked() MemberCounts {
	var c MemberCounts
	for _, mb := range m.members {
		switch mb.state {
		case StateLive:
			c.Live++
		case StateSuspect:
			c.Suspect++
		case StateDraining:
			c.Draining++
		case StateEvicted:
			c.Evicted++
		}
	}
	return c
}

// States returns every member's current state, keyed by normalized URL.
func (m *Membership) States() map[string]State {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]State, len(m.members))
	for u, mb := range m.members {
		out[u] = mb.state
	}
	return out
}

// urls returns every known member URL in join order.
func (m *Membership) urls() []string {
	out := []string{}
	for _, mb := range m.all() {
		out = append(out, mb.url)
	}
	return out
}

// all returns every member in join order — the probe loop's worklist.
func (m *Membership) all() []*member {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*member, 0, len(m.members))
	for _, mb := range m.members {
		out = append(out, mb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// dispatchable returns the members eligible for new shards, live and
// suspect, each class in join order for a stable round-robin base.
// Draining and evicted members are never returned.
func (m *Membership) dispatchable() (live, suspect []*member) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mb := range m.members {
		switch mb.state {
		case StateLive:
			live = append(live, mb)
		case StateSuspect:
			suspect = append(suspect, mb)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].seq < live[j].seq })
	sort.Slice(suspect, func(i, j int) bool { return suspect[i].seq < suspect[j].seq })
	return live, suspect
}

// lookup returns the member for a (raw or normalized) URL, or nil.
func (m *Membership) lookup(url string) *member {
	url, err := normalizeURL(url)
	if err != nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.members[url]
}

// size returns the table size (every state).
func (m *Membership) size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.members)
}

// markSuccess records a successful interaction (probe or shard eval) with a
// member: its liveness clock resets, and a suspect or evicted member is
// readmitted to live. Draining members stay draining — a drained worker
// finishing its last shard is not an application to rejoin.
func (m *Membership) markSuccess(ctx context.Context, mb *member, now time.Time) {
	m.mu.Lock()
	mb.lastOK = now
	readmitted := mb.state == StateSuspect || mb.state == StateEvicted
	if readmitted {
		mb.state = StateLive
	}
	m.updateGaugesLocked()
	m.mu.Unlock()

	if readmitted {
		memberEvent(ctx, "fleet.member_join", obs.String("worker", mb.url), obs.String("via", "probe"))
		slog.InfoContext(ctx, "fleet: worker readmitted", "worker", mb.url)
	}
}

// markSuspect moves a live member to suspect — the breaker-open feed into
// the membership layer. The liveness clock is NOT reset: eviction timing
// keys off lastOK, so a worker that keeps failing evals without ever
// answering a probe still ages toward eviction.
func (m *Membership) markSuspect(ctx context.Context, mb *member) {
	m.mu.Lock()
	changed := mb.state == StateLive
	if changed {
		mb.state = StateSuspect
	}
	m.updateGaugesLocked()
	m.mu.Unlock()

	if changed {
		memberEvent(ctx, "fleet.member_suspect", obs.String("worker", mb.url), obs.String("via", "breaker"))
		slog.WarnContext(ctx, "fleet: worker suspect", "worker", mb.url, "via", "breaker")
	}
}

// probeResult applies one liveness probe outcome. Success readmits (and
// resets the member's breaker, so a recovered worker is dispatchable
// immediately instead of waiting out a cooldown). Failure ages the member
// along live → suspect → evicted against the SuspectAfter / EvictAfter
// deadlines, measured from the last successful interaction; a draining
// member whose probes stop answering is evicted on the same clock, which is
// how drained-and-exited processes leave the table's active states.
func (m *Membership) probeResult(ctx context.Context, mb *member, ok bool, now time.Time) {
	if ok {
		m.markSuccess(ctx, mb, now)
		mb.breaker.success()
		return
	}
	m.mu.Lock()
	age := now.Sub(mb.lastOK)
	var to State = -1
	switch {
	case mb.state == StateEvicted:
		// Already out; nothing to age.
	case age >= m.evictAfter:
		to = StateEvicted
	case age >= m.suspectAfter && mb.state == StateLive:
		to = StateSuspect
	}
	if to >= 0 {
		mb.state = to
	}
	m.updateGaugesLocked()
	m.mu.Unlock()

	switch to {
	case StateSuspect:
		memberEvent(ctx, "fleet.member_suspect", obs.String("worker", mb.url), obs.String("via", "probe"))
		slog.WarnContext(ctx, "fleet: worker suspect", "worker", mb.url, "via", "probe", "age", age)
	case StateEvicted:
		memberEvent(ctx, "fleet.member_evict", obs.String("worker", mb.url))
		slog.WarnContext(ctx, "fleet: worker evicted", "worker", mb.url, "age", age)
	}
}

// updateGaugesLocked refreshes the fleet.workers_* gauges; callers hold mu.
func (m *Membership) updateGaugesLocked() {
	c := m.countsLocked()
	m.gLive.Set(float64(c.Live))
	m.gSuspect.Set(float64(c.Suspect))
	m.gDraining.Set(float64(c.Draining))
	m.gEvicted.Set(float64(c.Evicted))
}
