// Package fleet distributes a DSE runtime study across worker processes.
//
// The coordinator side plugs into dse.Hardening.Dispatch: it splits the
// pending candidates into shards, posts each shard to a worker's
// /v1/worker/eval endpoint, and reports the outcomes back into the study.
// The worker side is dse.EvalShard behind an HTTP handler (internal/serve).
//
// Robustness envelope, per shard:
//
//   - Lease: every attempt runs under a LeaseTTL deadline. A worker that
//     stalls or dies mid-shard forfeits its lease and the shard is requeued
//     (fleet.lease_expired_total).
//   - Retry: transient failures (guard.Retryable — unavailability and
//     timeouts) retry on another worker under exponential backoff with full
//     jitter (guard.Backoff, fleet.retries_total), up to MaxAttempts.
//   - Breaker: consecutive worker-attributable failures open a per-worker
//     circuit breaker; an open worker receives nothing until a cooldown,
//     then a single half-open probe decides (breaker.go).
//   - Hedge: if a shard's first attempt has not resolved after HedgeAfter,
//     a second attempt launches on a different worker; the first result
//     wins and the loser is canceled (fleet.hedges_total).
//   - Degradation: a shard that exhausts its attempts — or finds every
//     breaker open — is simply not reported; RuntimeStudyHardened evaluates
//     those candidates in-process. Losing the whole fleet slows a study
//     down, it never fails or changes it.
//
// Membership (membership.go, probe.go): the worker set is a dynamic table,
// not a fixed slice. Config.Workers seeds it; workers join and leave at
// runtime through Membership.Register / Membership.Drain (the serve
// /v1/worker/register and /v1/worker/drain endpoints), and a heartbeat
// loop probes every member's /readyz, aging unresponsive workers through
// live → suspect → evicted and readmitting recovered ones. Dispatch only
// ever consumes a snapshot of the table, so the fleet heals itself while a
// study is running.
//
// Determinism: workers run the same deterministic simulator on the same
// exactly-serialized configs, the coordinator merges outcomes by candidate
// index, and duplicate reports (hedging) are idempotent — so tables, CSV,
// and checkpoint files are byte-identical to a serial in-process run at any
// fleet size, any failure schedule, and any membership churn schedule. That
// property is what makes every retry safe: re-evaluating a candidate cannot
// change the answer.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neurometer/internal/dse"
	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

var (
	gShardsInflight = obs.NewGauge("fleet.shards_inflight")
	mShards         = obs.NewCounter("fleet.shards_total")
	mRetries        = obs.NewCounter("fleet.retries_total")
	mHedges         = obs.NewCounter("fleet.hedges_total")
	mLeaseExpired   = obs.NewCounter("fleet.lease_expired_total")
	mAbandoned      = obs.NewCounter("fleet.shards_abandoned_total")
)

// Defaults for the zero-valued Config knobs. Exported so the CLIs can show
// (and fail-fast validate against) the real values instead of a 0 sentinel.
const (
	DefaultShardSize   = 4
	DefaultLeaseTTL    = 2 * time.Minute
	DefaultHedgeAfter  = 15 * time.Second
	DefaultMaxAttempts = 4

	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = 10 * time.Second

	// maxResponseBytes bounds how much of a worker response the
	// coordinator will read — a confused worker cannot OOM the study.
	maxResponseBytes = 64 << 20
)

// Config parameterizes a Coordinator. The zero value of every knob except
// Workers resolves to a sensible default.
type Config struct {
	// Workers are the base URLs of neurometerd worker processes, e.g.
	// "http://10.0.0.7:8080". They seed the membership table; at least one
	// is required unless Dynamic is set (workers may then join at runtime
	// via Membership.Register).
	Workers []string
	// Dynamic allows an empty Workers seed: the coordinator starts with no
	// members and relies on runtime registration to populate the table.
	Dynamic bool
	// ShardSize is the number of candidates per shard. Smaller shards
	// spread better and lose less work per worker death; larger shards
	// amortize HTTP overhead.
	ShardSize int
	// LeaseTTL bounds one shard attempt on one worker. An attempt that
	// overruns is canceled and the shard requeued elsewhere.
	LeaseTTL time.Duration
	// HedgeAfter launches a second attempt on a different worker if the
	// first has not resolved in time; first result wins. <0 disables
	// hedging.
	HedgeAfter time.Duration
	// MaxAttempts bounds how many times one shard is tried (hedges do not
	// count) before its candidates fall back to local evaluation.
	MaxAttempts int
	// Backoff paces retries (full jitter; see guard.Backoff).
	Backoff guard.Backoff
	// BreakerThreshold consecutive failures open a worker's breaker;
	// BreakerCooldown later it gets a half-open probe.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Heartbeat enables the membership probe loop: every Heartbeat the
	// coordinator GETs each member's /readyz under a Heartbeat-long
	// deadline. 0 (the zero value) disables probing — membership then
	// changes only through registration, drain, and breaker trips.
	Heartbeat time.Duration
	// SuspectAfter marks a member suspect after this long without a
	// successful probe or eval (0 = DefaultSuspectAfter); EvictAfter
	// evicts it (0 = DefaultEvictAfter). EvictAfter must exceed
	// SuspectAfter.
	SuspectAfter time.Duration
	EvictAfter   time.Duration
	// Client is the HTTP client used for worker calls. Defaults to a
	// dedicated client with no overall timeout: attempts are bounded by
	// the lease context, not the transport.
	Client *http.Client
}

// ValidateFlags fail-fast checks the CLI fleet knobs the way a Coordinator
// would eventually trip over them, so a bad flag is an exit-2 at startup
// instead of a misbehaving study at first dispatch: the lease must be
// positive, the hedge delay must be shorter than the lease (negative
// disables hedging), and at least one attempt must be allowed.
func ValidateFlags(lease, hedge time.Duration, attempts int) error {
	if lease <= 0 {
		return guard.Invalid("fleet: -fleet-lease must be positive (got %v)", lease)
	}
	if hedge >= lease {
		return guard.Invalid("fleet: -fleet-hedge-after (%v) must be shorter than -fleet-lease (%v); negative disables hedging", hedge, lease)
	}
	if attempts < 1 {
		return guard.Invalid("fleet: -fleet-max-attempts must be at least 1 (got %d)", attempts)
	}
	return nil
}

// Coordinator shards studies across a worker fleet. Safe for concurrent
// use; one Coordinator can serve many studies. Close releases the probe
// loop (a Coordinator with Heartbeat disabled has nothing to release, but
// Close is always safe to call).
type Coordinator struct {
	cfg    Config
	m      *Membership
	client *http.Client
	rr     atomic.Int64 // round-robin cursor

	closeOnce   sync.Once
	probeCancel context.CancelFunc
	probeDone   chan struct{}
}

// New validates cfg, applies defaults, seeds the membership table, and
// builds a Coordinator. With Heartbeat > 0 the membership probe loop starts
// immediately; call Close to stop it.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 && !cfg.Dynamic {
		return nil, guard.Invalid("fleet: no workers configured")
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = DefaultShardSize
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = DefaultHedgeAfter
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = defaultBreakerThreshold
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = defaultBreakerCooldown
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	if cfg.EvictAfter <= 0 {
		cfg.EvictAfter = DefaultEvictAfter
	}
	if cfg.EvictAfter <= cfg.SuspectAfter {
		return nil, guard.Invalid("fleet: EvictAfter (%v) must exceed SuspectAfter (%v)",
			cfg.EvictAfter, cfg.SuspectAfter)
	}
	c := &Coordinator{cfg: cfg, client: cfg.Client, m: newMembership(cfg.SuspectAfter, cfg.EvictAfter)}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if err := c.m.seed(cfg.Workers, time.Now()); err != nil {
		return nil, err
	}
	if cfg.Heartbeat > 0 {
		pctx, cancel := context.WithCancel(context.Background())
		c.probeCancel = cancel
		c.probeDone = make(chan struct{})
		go c.probeLoop(pctx)
	}
	return c, nil
}

// Close stops the membership probe loop (if running) and waits for it to
// unwind. Idempotent and nil-safe on a Coordinator without heartbeats.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		if c.probeCancel != nil {
			c.probeCancel()
			<-c.probeDone
		}
	})
}

// metricName flattens a worker URL into a metric-name-safe suffix.
func metricName(url string) string {
	if i := strings.Index(url, "://"); i >= 0 {
		url = url[i+3:]
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		}
		return '_'
	}, url)
}

// Workers returns every known member's normalized base URL (any state),
// sorted.
func (c *Coordinator) Workers() []string { return c.m.urls() }

// Membership exposes the coordinator's worker table — the serve layer
// mounts its register/drain endpoints and /readyz summary on it.
func (c *Coordinator) Membership() *Membership { return c.m }

// Dispatch implements dse.Hardening.Dispatch: shard the pending candidates,
// evaluate the shards across the fleet under the robustness envelope, and
// report resolved outcomes. Returns when every shard has either resolved or
// been abandoned to local evaluation; report may be called from multiple
// goroutines (the dse merge is mutex-protected and idempotent).
func (c *Coordinator) Dispatch(ctx context.Context, sh dse.Shard, report func(dse.ShardOutcome)) {
	ctx, span := obs.Start(ctx, "fleet.dispatch")
	defer span.End()
	span.SetInt("candidates", int64(len(sh.Cands)))
	span.SetInt("workers", int64(c.m.size()))

	shards := splitShard(sh, c.cfg.ShardSize)
	span.SetInt("shards", int64(len(shards)))

	// Bound concurrency to a small multiple of the table size: enough to
	// keep every worker busy plus hedges, without thousands of goroutines
	// contending for leases on a huge study. Sized off the full table (not
	// just the live members) so workers joining mid-study find slots
	// waiting for them.
	width := 2 * c.m.size()
	if width < 2 {
		width = 2
	}
	sem := make(chan struct{}, width)
	var wg sync.WaitGroup
	for _, sub := range shards {
		wg.Add(1)
		go func(sub dse.Shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c.runShard(ctx, sub, report)
		}(sub)
	}
	wg.Wait()
}

// splitShard cuts a shard into sub-shards of at most size candidates.
func splitShard(sh dse.Shard, size int) []dse.Shard {
	var out []dse.Shard
	for lo := 0; lo < len(sh.Cands); lo += size {
		hi := lo + size
		if hi > len(sh.Cands) {
			hi = len(sh.Cands)
		}
		sub := sh
		sub.Cands = sh.Cands[lo:hi]
		out = append(out, sub)
	}
	return out
}

// runShard drives one shard to resolution or abandonment: retry loop with
// backoff around hedged attempts.
func (c *Coordinator) runShard(ctx context.Context, sub dse.Shard, report func(dse.ShardOutcome)) {
	mShards.Inc()
	gShardsInflight.Add(1)
	defer gShardsInflight.Add(-1)
	ctx, span := obs.Start(ctx, "fleet.shard", obs.Int("candidates", int64(len(sub.Cands))))
	defer span.End()

	var avoid *member // worker that failed the previous attempt
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if guard.CtxErr(ctx) != nil {
			return
		}
		if attempt > 0 {
			mRetries.Inc()
			obs.Event(ctx, "fleet.retry", obs.Int("attempt", int64(attempt+1)))
			if err := c.cfg.Backoff.Sleep(ctx, attempt-1); err != nil {
				return
			}
		}
		res, worker, err := c.attempt(ctx, sub, avoid)
		if err == nil {
			for _, o := range res.Outcomes {
				report(o)
			}
			return
		}
		avoid = worker
		if !guard.Retryable(err) {
			// Canceled ctx, or a permanent rejection (the worker called
			// the shard malformed) — retrying cannot help. Unreported
			// candidates fall back to local evaluation.
			if guard.CtxErr(ctx) == nil {
				mAbandoned.Inc()
				obs.Event(ctx, "fleet.abandoned", obs.String("kind", guard.Kind(err)))
				slog.WarnContext(ctx, "fleet: shard failed permanently, falling back to local evaluation",
					"candidates", len(sub.Cands), "kind", guard.Kind(err), "err", err)
			}
			return
		}
		slog.WarnContext(ctx, "fleet: shard attempt failed, will retry",
			"attempt", attempt+1, "max_attempts", c.cfg.MaxAttempts,
			"candidates", len(sub.Cands), "kind", guard.Kind(err), "err", err)
	}
	mAbandoned.Inc()
	obs.Event(ctx, "fleet.abandoned", obs.String("kind", "attempts-exhausted"))
	slog.WarnContext(ctx, "fleet: shard exhausted its attempts, falling back to local evaluation",
		"candidates", len(sub.Cands), "attempts", c.cfg.MaxAttempts)
}

// attempt runs one (possibly hedged) shard attempt. It returns the result,
// or the worker to avoid next time and the classified error.
func (c *Coordinator) attempt(ctx context.Context, sub dse.Shard, avoid *member) (*dse.ShardResult, *member, error) {
	primary := c.pick(avoid, nil)
	if primary == nil {
		// No dispatchable member admits a shard right now: every breaker
		// open, or the whole table is draining/evicted. Retryable — a
		// cooldown may elapse, a probe may readmit, a worker may join.
		return nil, avoid, guard.Unavailable("fleet: no workers available (breakers open or members drained/evicted)")
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel() // first-result-wins: cancels the losing attempt

	type result struct {
		res    *dse.ShardResult
		err    error
		worker *member
	}
	ch := make(chan result, 2)
	launch := func(w *member) {
		go func() {
			res, err := c.evalOn(actx, w, sub)
			ch <- result{res, err, w}
		}()
	}
	launch(primary)
	inflight := 1

	var hedgeC <-chan time.Time
	if c.cfg.HedgeAfter > 0 && c.m.size() > 1 {
		t := time.NewTimer(c.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	var firstErr error
	firstWorker := primary
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				r.worker.breaker.success()
				c.m.markSuccess(ctx, r.worker, time.Now())
				return r.res, r.worker, nil
			}
			// A loser canceled by first-result-wins would have returned
			// through the success arm already; here every error is real.
			// Only worker-attributable transient failures feed the
			// breaker — a shard the worker rejected as malformed says
			// nothing about the worker's health. A breaker trip feeds the
			// membership layer's suspicion in turn.
			if guard.Retryable(r.err) && guard.CtxErr(ctx) == nil {
				if r.worker.breaker.failure(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown, time.Now()) {
					obs.Event(ctx, "fleet.breaker.open", obs.String("worker", r.worker.url))
					c.m.markSuspect(ctx, r.worker)
				}
			}
			if firstErr == nil {
				firstErr, firstWorker = r.err, r.worker
			}
			if inflight == 0 {
				return nil, firstWorker, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if w := c.pick(avoid, primary); w != nil {
				mHedges.Inc()
				obs.Event(ctx, "fleet.hedge",
					obs.String("primary", primary.url), obs.String("hedge", w.url))
				slog.DebugContext(ctx, "fleet: hedging slow shard",
					"primary", primary.url, "hedge", w.url)
				launch(w)
				inflight++
			}
		case <-ctx.Done():
			// Let in-flight attempts unwind via actx; their sends land in
			// the buffered channel.
			return nil, firstWorker, guard.CtxErr(ctx)
		}
	}
}

// pick selects the next dispatchable member in round-robin order whose
// breaker admits a shard, working from a membership snapshot: the primary
// rotation first (excluding avoid and not), then with the avoid exclusion
// relaxed (a retry may reuse the failed worker if it is the only one left),
// then the remaining suspect members as a last resort. The `not` member is
// never returned (a hedge must run on a different worker than its primary);
// draining and evicted members are never dispatchable.
func (c *Coordinator) pick(avoid, not *member) *member {
	now := time.Now()
	live, suspect := c.m.dispatchable()
	// A suspect member whose breaker is due a half-open traffic probe
	// rejoins the primary rotation: that probe shard is what readmits a
	// recovered worker when heartbeats are disabled.
	primary := live
	var lastResort []*member
	for _, w := range suspect {
		if w.breaker.probeReady(now) {
			primary = append(primary, w)
		} else {
			lastResort = append(lastResort, w)
		}
	}
	passes := [...]struct {
		class     []*member
		skipAvoid bool
	}{
		{primary, true},
		{primary, false},
		{lastResort, false},
	}
	for _, p := range passes {
		n := len(p.class)
		if n == 0 {
			continue
		}
		start := int(c.rr.Add(1)-1) % n
		if start < 0 {
			start += n
		}
		for i := 0; i < n; i++ {
			w := p.class[(start+i)%n]
			if w == not || (p.skipAvoid && w == avoid) {
				continue
			}
			if w.breaker.allow(now) {
				return w
			}
		}
	}
	return nil
}

// evalOn posts the shard to one worker under a fresh lease and decodes the
// outcome. Transport failures and 5xx/429 responses classify as retryable
// unavailability; a lease overrun classifies as a timeout and is counted
// separately (the requeue-on-expiry signal).
//
// Tracing: the round trip is a "fleet.eval" span, the request carries the
// span's W3C traceparent, and the worker's serialized span subtree from the
// response grafts under the span — so the merged study trace shows remote
// per-candidate work nested exactly where it ran.
func (c *Coordinator) evalOn(ctx context.Context, w *member, sub dse.Shard) (*dse.ShardResult, error) {
	ctx, span := obs.Start(ctx, "fleet.eval", obs.String("worker", w.url))
	defer span.End()
	lctx, cancel := context.WithTimeout(ctx, c.cfg.LeaseTTL)
	defer cancel()

	body, err := json.Marshal(sub)
	if err != nil {
		return nil, guard.Invalid("fleet: marshal shard: %v", err)
	}
	// The worker's own request deadline is aligned with the lease, so a
	// worker holding an expired lease stops burning CPU on it.
	url := fmt.Sprintf("%s/v1/worker/eval?timeout_ms=%d",
		w.url, c.cfg.LeaseTTL/time.Millisecond)
	req, err := http.NewRequestWithContext(lctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, guard.Invalid("fleet: build request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := obs.Traceparent(ctx); tp != "" {
		req.Header.Set(obs.TraceparentHeader, tp)
	}

	resp, err := c.client.Do(req)
	if err != nil {
		if leaseExpired(lctx, ctx) {
			mLeaseExpired.Inc()
			obs.Event(ctx, "fleet.lease_expired")
			return nil, guard.KindError("timeout",
				fmt.Sprintf("fleet: worker %s: lease expired after %v", w.url, c.cfg.LeaseTTL))
		}
		if cerr := guard.CtxErr(ctx); cerr != nil {
			return nil, cerr
		}
		return nil, guard.Unavailable("fleet: worker %s: %v", w.url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		if leaseExpired(lctx, ctx) {
			mLeaseExpired.Inc()
			obs.Event(ctx, "fleet.lease_expired")
			return nil, guard.KindError("timeout",
				fmt.Sprintf("fleet: worker %s: lease expired mid-response after %v", w.url, c.cfg.LeaseTTL))
		}
		return nil, guard.Unavailable("fleet: worker %s: read response: %v", w.url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, classifyStatus(w.url, resp.StatusCode, b)
	}
	var res dse.ShardResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, guard.Unavailable("fleet: worker %s: malformed response: %v", w.url, err)
	}
	if len(res.Outcomes) != len(sub.Cands) {
		return nil, guard.Unavailable("fleet: worker %s: returned %d outcomes for %d candidates",
			w.url, len(res.Outcomes), len(sub.Cands))
	}
	span.Graft(res.Spans)
	return &res, nil
}

// leaseExpired reports whether the lease deadline fired while the parent
// dispatch context is still alive — the signature of a worker overrunning
// its lease, as opposed to the whole study being canceled.
func leaseExpired(lctx, parent context.Context) bool {
	return errors.Is(lctx.Err(), context.DeadlineExceeded) && parent.Err() == nil
}

// classifyStatus maps a worker's non-200 response onto the guard taxonomy:
// 429 and 5xx are the worker's problem (retryable elsewhere; 504 keeps its
// timeout identity), anything else 4xx means the coordinator sent a shard
// the worker permanently rejects.
func classifyStatus(worker string, status int, body []byte) error {
	var ae struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	_ = json.Unmarshal(body, &ae)
	msg := ae.Error
	if msg == "" {
		msg = strings.TrimSpace(string(body))
		if len(msg) > 200 {
			msg = msg[:200]
		}
	}
	switch {
	case status == http.StatusGatewayTimeout:
		return guard.KindError("timeout", fmt.Sprintf("fleet: worker %s: %s", worker, msg))
	case status == http.StatusTooManyRequests || status >= 500:
		return guard.Unavailable("fleet: worker %s: status %d: %s", worker, status, msg)
	default:
		kind := ae.Kind
		if kind == "" {
			kind = "invalid-config"
		}
		return guard.KindError(kind, fmt.Sprintf("fleet: worker %s: status %d: %s", worker, status, msg))
	}
}
