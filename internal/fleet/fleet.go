// Package fleet distributes a DSE runtime study across worker processes.
//
// The coordinator side plugs into dse.Hardening.Dispatch: it splits the
// pending candidates into shards, posts each shard to a worker's
// /v1/worker/eval endpoint, and reports the outcomes back into the study.
// The worker side is dse.EvalShard behind an HTTP handler (internal/serve).
//
// Robustness envelope, per shard:
//
//   - Lease: every attempt runs under a LeaseTTL deadline. A worker that
//     stalls or dies mid-shard forfeits its lease and the shard is requeued
//     (fleet.lease_expired_total).
//   - Retry: transient failures (guard.Retryable — unavailability and
//     timeouts) retry on another worker under exponential backoff with full
//     jitter (guard.Backoff, fleet.retries_total), up to MaxAttempts.
//   - Breaker: consecutive worker-attributable failures open a per-worker
//     circuit breaker; an open worker receives nothing until a cooldown,
//     then a single half-open probe decides (breaker.go).
//   - Hedge: if a shard's first attempt has not resolved after HedgeAfter,
//     a second attempt launches on a different worker; the first result
//     wins and the loser is canceled (fleet.hedges_total).
//   - Degradation: a shard that exhausts its attempts — or finds every
//     breaker open — is simply not reported; RuntimeStudyHardened evaluates
//     those candidates in-process. Losing the whole fleet slows a study
//     down, it never fails or changes it.
//
// Determinism: workers run the same deterministic simulator on the same
// exactly-serialized configs, the coordinator merges outcomes by candidate
// index, and duplicate reports (hedging) are idempotent — so tables, CSV,
// and checkpoint files are byte-identical to a serial in-process run at any
// fleet size and any failure schedule. That property is what makes every
// retry safe: re-evaluating a candidate cannot change the answer.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"neurometer/internal/dse"
	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

var (
	gShardsInflight = obs.NewGauge("fleet.shards_inflight")
	mShards         = obs.NewCounter("fleet.shards_total")
	mRetries        = obs.NewCounter("fleet.retries_total")
	mHedges         = obs.NewCounter("fleet.hedges_total")
	mLeaseExpired   = obs.NewCounter("fleet.lease_expired_total")
	mAbandoned      = obs.NewCounter("fleet.shards_abandoned_total")
)

// Defaults for the zero-valued Config knobs.
const (
	defaultShardSize        = 4
	defaultLeaseTTL         = 2 * time.Minute
	defaultHedgeAfter       = 15 * time.Second
	defaultMaxAttempts      = 4
	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = 10 * time.Second

	// maxResponseBytes bounds how much of a worker response the
	// coordinator will read — a confused worker cannot OOM the study.
	maxResponseBytes = 64 << 20
)

// Config parameterizes a Coordinator. The zero value of every knob except
// Workers resolves to a sensible default.
type Config struct {
	// Workers are the base URLs of neurometerd worker processes, e.g.
	// "http://10.0.0.7:8080". At least one is required.
	Workers []string
	// ShardSize is the number of candidates per shard. Smaller shards
	// spread better and lose less work per worker death; larger shards
	// amortize HTTP overhead.
	ShardSize int
	// LeaseTTL bounds one shard attempt on one worker. An attempt that
	// overruns is canceled and the shard requeued elsewhere.
	LeaseTTL time.Duration
	// HedgeAfter launches a second attempt on a different worker if the
	// first has not resolved in time; first result wins. <0 disables
	// hedging.
	HedgeAfter time.Duration
	// MaxAttempts bounds how many times one shard is tried (hedges do not
	// count) before its candidates fall back to local evaluation.
	MaxAttempts int
	// Backoff paces retries (full jitter; see guard.Backoff).
	Backoff guard.Backoff
	// BreakerThreshold consecutive failures open a worker's breaker;
	// BreakerCooldown later it gets a half-open probe.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Client is the HTTP client used for worker calls. Defaults to a
	// dedicated client with no overall timeout: attempts are bounded by
	// the lease context, not the transport.
	Client *http.Client
}

// Coordinator shards studies across a worker fleet. Safe for concurrent
// use; one Coordinator can serve many studies.
type Coordinator struct {
	cfg      Config
	workers  []string // normalized base URLs
	breakers []*breaker
	client   *http.Client
	rr       atomic.Int64 // round-robin cursor
}

// New validates cfg, applies defaults, and builds a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, guard.Invalid("fleet: no workers configured")
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = defaultShardSize
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = defaultLeaseTTL
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = defaultHedgeAfter
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = defaultMaxAttempts
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = defaultBreakerThreshold
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = defaultBreakerCooldown
	}
	c := &Coordinator{cfg: cfg, client: cfg.Client}
	if c.client == nil {
		c.client = &http.Client{}
	}
	for _, w := range cfg.Workers {
		w = strings.TrimRight(w, "/")
		if w == "" {
			return nil, guard.Invalid("fleet: empty worker URL")
		}
		if !strings.Contains(w, "://") {
			w = "http://" + w
		}
		c.workers = append(c.workers, w)
		c.breakers = append(c.breakers,
			newBreaker(obs.NewGauge(obs.Name("fleet.breaker_state", "worker", metricName(w)))))
	}
	return c, nil
}

// metricName flattens a worker URL into a metric-name-safe suffix.
func metricName(url string) string {
	if i := strings.Index(url, "://"); i >= 0 {
		url = url[i+3:]
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		}
		return '_'
	}, url)
}

// Workers returns the normalized worker base URLs.
func (c *Coordinator) Workers() []string { return append([]string(nil), c.workers...) }

// Dispatch implements dse.Hardening.Dispatch: shard the pending candidates,
// evaluate the shards across the fleet under the robustness envelope, and
// report resolved outcomes. Returns when every shard has either resolved or
// been abandoned to local evaluation; report may be called from multiple
// goroutines (the dse merge is mutex-protected and idempotent).
func (c *Coordinator) Dispatch(ctx context.Context, sh dse.Shard, report func(dse.ShardOutcome)) {
	ctx, span := obs.Start(ctx, "fleet.dispatch")
	defer span.End()
	span.SetInt("candidates", int64(len(sh.Cands)))
	span.SetInt("workers", int64(len(c.workers)))

	shards := splitShard(sh, c.cfg.ShardSize)
	span.SetInt("shards", int64(len(shards)))

	// Bound concurrency to a small multiple of the fleet size: enough to
	// keep every worker busy plus hedges, without thousands of goroutines
	// contending for leases on a huge study.
	sem := make(chan struct{}, 2*len(c.workers))
	var wg sync.WaitGroup
	for _, sub := range shards {
		wg.Add(1)
		go func(sub dse.Shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c.runShard(ctx, sub, report)
		}(sub)
	}
	wg.Wait()
}

// splitShard cuts a shard into sub-shards of at most size candidates.
func splitShard(sh dse.Shard, size int) []dse.Shard {
	var out []dse.Shard
	for lo := 0; lo < len(sh.Cands); lo += size {
		hi := lo + size
		if hi > len(sh.Cands) {
			hi = len(sh.Cands)
		}
		sub := sh
		sub.Cands = sh.Cands[lo:hi]
		out = append(out, sub)
	}
	return out
}

// runShard drives one shard to resolution or abandonment: retry loop with
// backoff around hedged attempts.
func (c *Coordinator) runShard(ctx context.Context, sub dse.Shard, report func(dse.ShardOutcome)) {
	mShards.Inc()
	gShardsInflight.Add(1)
	defer gShardsInflight.Add(-1)
	ctx, span := obs.Start(ctx, "fleet.shard", obs.Int("candidates", int64(len(sub.Cands))))
	defer span.End()

	avoid := -1 // worker that failed the previous attempt
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if guard.CtxErr(ctx) != nil {
			return
		}
		if attempt > 0 {
			mRetries.Inc()
			obs.Event(ctx, "fleet.retry", obs.Int("attempt", int64(attempt+1)))
			if err := c.cfg.Backoff.Sleep(ctx, attempt-1); err != nil {
				return
			}
		}
		res, worker, err := c.attempt(ctx, sub, avoid)
		if err == nil {
			for _, o := range res.Outcomes {
				report(o)
			}
			return
		}
		avoid = worker
		if !guard.Retryable(err) {
			// Canceled ctx, or a permanent rejection (the worker called
			// the shard malformed) — retrying cannot help. Unreported
			// candidates fall back to local evaluation.
			if guard.CtxErr(ctx) == nil {
				mAbandoned.Inc()
				obs.Event(ctx, "fleet.abandoned", obs.String("kind", guard.Kind(err)))
				slog.WarnContext(ctx, "fleet: shard failed permanently, falling back to local evaluation",
					"candidates", len(sub.Cands), "kind", guard.Kind(err), "err", err)
			}
			return
		}
		slog.WarnContext(ctx, "fleet: shard attempt failed, will retry",
			"attempt", attempt+1, "max_attempts", c.cfg.MaxAttempts,
			"candidates", len(sub.Cands), "kind", guard.Kind(err), "err", err)
	}
	mAbandoned.Inc()
	obs.Event(ctx, "fleet.abandoned", obs.String("kind", "attempts-exhausted"))
	slog.WarnContext(ctx, "fleet: shard exhausted its attempts, falling back to local evaluation",
		"candidates", len(sub.Cands), "attempts", c.cfg.MaxAttempts)
}

// attempt runs one (possibly hedged) shard attempt. It returns the result,
// or the index of the worker to avoid next time and the classified error.
func (c *Coordinator) attempt(ctx context.Context, sub dse.Shard, avoid int) (*dse.ShardResult, int, error) {
	primary := c.pick(avoid, -1)
	if primary < 0 {
		// Every breaker is open: nothing to try until a cooldown elapses.
		return nil, avoid, guard.Unavailable("fleet: no workers available (all breakers open)")
	}

	actx, cancel := context.WithCancel(ctx)
	defer cancel() // first-result-wins: cancels the losing attempt

	type result struct {
		res    *dse.ShardResult
		err    error
		worker int
	}
	ch := make(chan result, 2)
	launch := func(w int) {
		go func() {
			res, err := c.evalOn(actx, w, sub)
			ch <- result{res, err, w}
		}()
	}
	launch(primary)
	inflight := 1

	var hedgeC <-chan time.Time
	if c.cfg.HedgeAfter > 0 && len(c.workers) > 1 {
		t := time.NewTimer(c.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	var firstErr error
	firstWorker := primary
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				c.breakers[r.worker].success()
				return r.res, r.worker, nil
			}
			// A loser canceled by first-result-wins would have returned
			// through the success arm already; here every error is real.
			// Only worker-attributable transient failures feed the
			// breaker — a shard the worker rejected as malformed says
			// nothing about the worker's health.
			if guard.Retryable(r.err) && guard.CtxErr(ctx) == nil {
				if c.breakers[r.worker].failure(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown, time.Now()) {
					obs.Event(ctx, "fleet.breaker.open", obs.String("worker", c.workers[r.worker]))
				}
			}
			if firstErr == nil {
				firstErr, firstWorker = r.err, r.worker
			}
			if inflight == 0 {
				return nil, firstWorker, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if w := c.pick(avoid, primary); w >= 0 {
				mHedges.Inc()
				obs.Event(ctx, "fleet.hedge",
					obs.String("primary", c.workers[primary]), obs.String("hedge", c.workers[w]))
				slog.DebugContext(ctx, "fleet: hedging slow shard",
					"primary", c.workers[primary], "hedge", c.workers[w])
				launch(w)
				inflight++
			}
		case <-ctx.Done():
			// Let in-flight attempts unwind via actx; their sends land in
			// the buffered channel.
			return nil, firstWorker, guard.CtxErr(ctx)
		}
	}
}

// pick selects the next worker in round-robin order whose breaker admits a
// shard, skipping the excluded indices (pass -1 for none). When only
// excluded workers are admissible, exclusion is relaxed for `avoid` (a
// retry may reuse the failed worker if it is the only one left) but never
// for `not` (a hedge must run on a different worker than its primary).
func (c *Coordinator) pick(avoid, not int) int {
	now := time.Now()
	start := int(c.rr.Add(1)-1) % len(c.workers)
	if start < 0 {
		start += len(c.workers)
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < len(c.workers); i++ {
			w := (start + i) % len(c.workers)
			if w == not {
				continue
			}
			if pass == 0 && w == avoid {
				continue
			}
			if c.breakers[w].allow(now) {
				return w
			}
		}
	}
	return -1
}

// evalOn posts the shard to one worker under a fresh lease and decodes the
// outcome. Transport failures and 5xx/429 responses classify as retryable
// unavailability; a lease overrun classifies as a timeout and is counted
// separately (the requeue-on-expiry signal).
//
// Tracing: the round trip is a "fleet.eval" span, the request carries the
// span's W3C traceparent, and the worker's serialized span subtree from the
// response grafts under the span — so the merged study trace shows remote
// per-candidate work nested exactly where it ran.
func (c *Coordinator) evalOn(ctx context.Context, w int, sub dse.Shard) (*dse.ShardResult, error) {
	ctx, span := obs.Start(ctx, "fleet.eval", obs.String("worker", c.workers[w]))
	defer span.End()
	lctx, cancel := context.WithTimeout(ctx, c.cfg.LeaseTTL)
	defer cancel()

	body, err := json.Marshal(sub)
	if err != nil {
		return nil, guard.Invalid("fleet: marshal shard: %v", err)
	}
	// The worker's own request deadline is aligned with the lease, so a
	// worker holding an expired lease stops burning CPU on it.
	url := fmt.Sprintf("%s/v1/worker/eval?timeout_ms=%d",
		c.workers[w], c.cfg.LeaseTTL/time.Millisecond)
	req, err := http.NewRequestWithContext(lctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, guard.Invalid("fleet: build request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tp := obs.Traceparent(ctx); tp != "" {
		req.Header.Set(obs.TraceparentHeader, tp)
	}

	resp, err := c.client.Do(req)
	if err != nil {
		if leaseExpired(lctx, ctx) {
			mLeaseExpired.Inc()
			obs.Event(ctx, "fleet.lease_expired")
			return nil, guard.KindError("timeout",
				fmt.Sprintf("fleet: worker %s: lease expired after %v", c.workers[w], c.cfg.LeaseTTL))
		}
		if cerr := guard.CtxErr(ctx); cerr != nil {
			return nil, cerr
		}
		return nil, guard.Unavailable("fleet: worker %s: %v", c.workers[w], err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		if leaseExpired(lctx, ctx) {
			mLeaseExpired.Inc()
			obs.Event(ctx, "fleet.lease_expired")
			return nil, guard.KindError("timeout",
				fmt.Sprintf("fleet: worker %s: lease expired mid-response after %v", c.workers[w], c.cfg.LeaseTTL))
		}
		return nil, guard.Unavailable("fleet: worker %s: read response: %v", c.workers[w], err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, classifyStatus(c.workers[w], resp.StatusCode, b)
	}
	var res dse.ShardResult
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, guard.Unavailable("fleet: worker %s: malformed response: %v", c.workers[w], err)
	}
	if len(res.Outcomes) != len(sub.Cands) {
		return nil, guard.Unavailable("fleet: worker %s: returned %d outcomes for %d candidates",
			c.workers[w], len(res.Outcomes), len(sub.Cands))
	}
	span.Graft(res.Spans)
	return &res, nil
}

// leaseExpired reports whether the lease deadline fired while the parent
// dispatch context is still alive — the signature of a worker overrunning
// its lease, as opposed to the whole study being canceled.
func leaseExpired(lctx, parent context.Context) bool {
	return errors.Is(lctx.Err(), context.DeadlineExceeded) && parent.Err() == nil
}

// classifyStatus maps a worker's non-200 response onto the guard taxonomy:
// 429 and 5xx are the worker's problem (retryable elsewhere; 504 keeps its
// timeout identity), anything else 4xx means the coordinator sent a shard
// the worker permanently rejects.
func classifyStatus(worker string, status int, body []byte) error {
	var ae struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	_ = json.Unmarshal(body, &ae)
	msg := ae.Error
	if msg == "" {
		msg = strings.TrimSpace(string(body))
		if len(msg) > 200 {
			msg = msg[:200]
		}
	}
	switch {
	case status == http.StatusGatewayTimeout:
		return guard.KindError("timeout", fmt.Sprintf("fleet: worker %s: %s", worker, msg))
	case status == http.StatusTooManyRequests || status >= 500:
		return guard.Unavailable("fleet: worker %s: status %d: %s", worker, status, msg)
	default:
		kind := ae.Kind
		if kind == "" {
			kind = "invalid-config"
		}
		return guard.KindError(kind, fmt.Sprintf("fleet: worker %s: status %d: %s", worker, status, msg))
	}
}
