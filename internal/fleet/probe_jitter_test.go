package fleet

import (
	"testing"
	"time"
)

// TestProbeIntervalBand pins the jitter contract: every draw lands in
// (h/2, h] — never more than the configured Heartbeat (membership aging
// thresholds stay valid) and never at or below half of it (probe load at
// most doubles) — and the draws actually spread across the band instead
// of collapsing onto one value.
func TestProbeIntervalBand(t *testing.T) {
	const h = 100 * time.Millisecond
	seen := map[time.Duration]bool{}
	var lo, hi time.Duration = h, 0
	for i := 0; i < 1000; i++ {
		d := probeInterval(h)
		if d <= h/2 || d > h {
			t.Fatalf("draw %d: interval %v outside (%v, %v]", i, d, h/2, h)
		}
		seen[d] = true
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	if len(seen) < 20 {
		t.Errorf("1000 draws produced only %d distinct intervals — jitter is degenerate", len(seen))
	}
	// The extremes should use a decent share of the band, not cluster.
	if band := h - h/2; hi-lo < band/2 {
		t.Errorf("draws span only [%v, %v] of the (%v, %v] band", lo, hi, h/2, h)
	}
}

// TestProbeIntervalDegenerate checks tiny heartbeats don't panic or zero
// out the loop timer.
func TestProbeIntervalDegenerate(t *testing.T) {
	for _, h := range []time.Duration{1, 2, 3, time.Microsecond} {
		if d := probeInterval(h); d <= 0 || d > h {
			t.Errorf("probeInterval(%v) = %v, want in (0, %v]", h, d, h)
		}
	}
}
