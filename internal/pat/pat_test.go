package pat

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAndCascade(t *testing.T) {
	a := Result{AreaUM2: 10, DynPJ: 1, LeakUW: 0.5, DelayPS: 100}
	b := Result{AreaUM2: 20, DynPJ: 2, LeakUW: 1.0, DelayPS: 50}
	sum := a.Add(b)
	if sum.AreaUM2 != 30 || sum.DynPJ != 3 || sum.LeakUW != 1.5 {
		t.Errorf("Add: %+v", sum)
	}
	if sum.DelayPS != 100 {
		t.Errorf("Add delay should be max: %v", sum.DelayPS)
	}
	cas := a.Cascade(b)
	if cas.DelayPS != 150 {
		t.Errorf("Cascade delay should sum: %v", cas.DelayPS)
	}
	if cas.AreaUM2 != 30 {
		t.Errorf("Cascade area: %v", cas.AreaUM2)
	}
}

func TestScale(t *testing.T) {
	a := Result{AreaUM2: 10, DynPJ: 1, LeakUW: 0.5, DelayPS: 100}
	s := a.Scale(4)
	if s.AreaUM2 != 40 || s.DynPJ != 4 || s.LeakUW != 2 {
		t.Errorf("Scale: %+v", s)
	}
	if s.DelayPS != 100 {
		t.Errorf("Scale must not change delay: %v", s.DelayPS)
	}
}

func TestConversions(t *testing.T) {
	r := Result{AreaUM2: 2e6, DynPJ: 10, LeakUW: 1500}
	if r.AreaMM2() != 2 {
		t.Errorf("AreaMM2: %v", r.AreaMM2())
	}
	if math.Abs(r.LeakW()-0.0015) > 1e-12 {
		t.Errorf("LeakW: %v", r.LeakW())
	}
	// 10pJ at 1GHz, full activity = 10mW.
	if p := r.DynPowerW(1e9, 1.0); math.Abs(p-0.01) > 1e-12 {
		t.Errorf("DynPowerW: %v", p)
	}
	if p := r.DynPowerW(1e9, 0.5); math.Abs(p-0.005) > 1e-12 {
		t.Errorf("DynPowerW half activity: %v", p)
	}
}

func TestValid(t *testing.T) {
	if !(Result{}).Valid() {
		t.Errorf("zero result must be valid")
	}
	if (Result{AreaUM2: -1}).Valid() {
		t.Errorf("negative area must be invalid")
	}
	if (Result{DynPJ: math.NaN()}).Valid() {
		t.Errorf("NaN must be invalid")
	}
	if (Result{DelayPS: math.Inf(1)}).Valid() {
		t.Errorf("Inf must be invalid")
	}
}

func TestAddPreservesValidityProperty(t *testing.T) {
	f := func(a1, d1, l1, t1, a2, d2, l2, t2 uint16) bool {
		r1 := Result{float64(a1), float64(d1), float64(l1), float64(t1)}
		r2 := Result{float64(a2), float64(d2), float64(l2), float64(t2)}
		return r1.Add(r2).Valid() && r1.Cascade(r2).Valid() && r1.Scale(3).Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func buildTree() *Breakdown {
	root := NewBreakdown("chip", 0, 0)
	core := NewBreakdown("core", 0, 0)
	core.AddChild(NewBreakdown("tu", 50, 20))
	core.AddChild(NewBreakdown("mem", 100, 10))
	root.AddChild(core)
	root.AddChild(NewBreakdown("noc", 30, 5))
	return root
}

func TestBreakdownAggregation(t *testing.T) {
	root := buildTree()
	if root.AreaMM2 != 180 || root.PowerW != 35 {
		t.Fatalf("root totals: %v %v", root.AreaMM2, root.PowerW)
	}
	if !root.Consistent(1e-9) {
		t.Errorf("tree should be consistent")
	}
	root.AreaMM2 += 50 // tamper
	if root.Consistent(1e-9) {
		t.Errorf("tampered tree should be inconsistent")
	}
	if root.Consistent(0.5) != true {
		t.Errorf("loose tolerance should pass")
	}
}

func TestBreakdownLookups(t *testing.T) {
	root := buildTree()
	if root.Child("core") == nil || root.Child("tu") != nil {
		t.Errorf("Child must be direct-only")
	}
	if root.Find("tu") == nil {
		t.Errorf("Find must be recursive")
	}
	if root.Find("nope") != nil {
		t.Errorf("Find miss should be nil")
	}
	if s := root.AreaShare("noc"); math.Abs(s-30.0/180.0) > 1e-12 {
		t.Errorf("AreaShare: %v", s)
	}
	if s := root.PowerShare("core"); math.Abs(s-30.0/35.0) > 1e-12 {
		t.Errorf("PowerShare: %v", s)
	}
	if root.AreaShare("nope") != 0 {
		t.Errorf("missing child share must be 0")
	}
	empty := NewBreakdown("x", 0, 0)
	empty.Children = append(empty.Children, NewBreakdown("y", 0, 0))
	if empty.AreaShare("y") != 0 {
		t.Errorf("zero-total share must be 0")
	}
}

func TestBreakdownString(t *testing.T) {
	s := buildTree().String()
	for _, want := range []string{"chip", "core", "tu", "mem", "noc"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	// Children are sorted by descending area: "mem" (100) before "tu" (50).
	if strings.Index(s, "mem") > strings.Index(s, "tu") {
		t.Errorf("children not sorted by area:\n%s", s)
	}
}

func TestResultString(t *testing.T) {
	s := (Result{AreaUM2: 1, DynPJ: 2, LeakUW: 3, DelayPS: 4}).String()
	if !strings.Contains(s, "area=") || !strings.Contains(s, "delay=") {
		t.Errorf("String: %q", s)
	}
}
