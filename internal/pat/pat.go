// Package pat defines the shared power/area/timing result types used by
// every NeuroMeter component model.
//
// Components report a Result (area, per-operation dynamic energy, static
// leakage, and critical-path delay). Assemblies aggregate child Results into
// a Breakdown tree so that chip-level reports can be decomposed exactly the
// way the paper's ring charts are (Figs. 3-5, 8).
package pat

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Result is the power/area/timing summary of a single hardware component.
//
// Units are chosen so that typical component values are O(1)-O(1e6) and
// conversions stay explicit:
//
//	AreaUM2   - layout area in square micrometres
//	DynPJ     - dynamic energy per operation (access, MAC, flit, ...) in pJ
//	LeakUW    - static leakage power in microwatts
//	DelayPS   - critical-path propagation delay in picoseconds
type Result struct {
	AreaUM2 float64
	DynPJ   float64
	LeakUW  float64
	DelayPS float64
}

// Add returns the component-wise sum of r and o. Delay is combined as the
// max of the two paths (parallel composition); use Cascade for series paths.
func (r Result) Add(o Result) Result {
	return Result{
		AreaUM2: r.AreaUM2 + o.AreaUM2,
		DynPJ:   r.DynPJ + o.DynPJ,
		LeakUW:  r.LeakUW + o.LeakUW,
		DelayPS: math.Max(r.DelayPS, o.DelayPS),
	}
}

// Cascade returns the series composition of r followed by o: areas, energies
// and leakage add, and delays add because the signal traverses both.
func (r Result) Cascade(o Result) Result {
	return Result{
		AreaUM2: r.AreaUM2 + o.AreaUM2,
		DynPJ:   r.DynPJ + o.DynPJ,
		LeakUW:  r.LeakUW + o.LeakUW,
		DelayPS: r.DelayPS + o.DelayPS,
	}
}

// Scale returns r with area, energy and leakage multiplied by n (n parallel
// instances). Delay is unchanged: replication does not slow the unit.
func (r Result) Scale(n float64) Result {
	return Result{
		AreaUM2: r.AreaUM2 * n,
		DynPJ:   r.DynPJ * n,
		LeakUW:  r.LeakUW * n,
		DelayPS: r.DelayPS,
	}
}

// AreaMM2 converts the component area to square millimetres.
func (r Result) AreaMM2() float64 { return r.AreaUM2 / 1e6 }

// DynPowerW returns the dynamic power in watts when the component performs
// ops operations per second at activity factor alpha in [0,1].
func (r Result) DynPowerW(opsPerSec, alpha float64) float64 {
	return r.DynPJ * 1e-12 * opsPerSec * alpha
}

// LeakW returns the leakage power in watts.
func (r Result) LeakW() float64 { return r.LeakUW * 1e-6 }

// Valid reports whether every field is finite and non-negative. Models use
// it in tests as a basic sanity invariant.
func (r Result) Valid() bool {
	for _, v := range []float64{r.AreaUM2, r.DynPJ, r.LeakUW, r.DelayPS} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return false
		}
	}
	return true
}

func (r Result) String() string {
	return fmt.Sprintf("area=%.1fum2 dyn=%.3fpJ leak=%.2fuW delay=%.1fps",
		r.AreaUM2, r.DynPJ, r.LeakUW, r.DelayPS)
}

// Breakdown is a named tree of area/power contributions. The root's totals
// must equal the sum of its children (plus any unattributed remainder the
// builder adds explicitly, e.g. the "white space" entries of Figs. 3-4).
type Breakdown struct {
	Name     string
	AreaMM2  float64
	PowerW   float64
	Children []*Breakdown
}

// NewBreakdown returns a leaf node.
func NewBreakdown(name string, areaMM2, powerW float64) *Breakdown {
	return &Breakdown{Name: name, AreaMM2: areaMM2, PowerW: powerW}
}

// AddChild appends child and accumulates its totals into b.
func (b *Breakdown) AddChild(child *Breakdown) {
	b.Children = append(b.Children, child)
	b.AreaMM2 += child.AreaMM2
	b.PowerW += child.PowerW
}

// Child returns the direct child with the given name, or nil.
func (b *Breakdown) Child(name string) *Breakdown {
	for _, c := range b.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Find returns the first node with the given name in a depth-first walk of
// the tree rooted at b (including b itself), or nil.
func (b *Breakdown) Find(name string) *Breakdown {
	if b.Name == name {
		return b
	}
	for _, c := range b.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// AreaShare returns the fraction of b's total area contributed by the direct
// child with the given name (0 if absent or the total is zero).
func (b *Breakdown) AreaShare(name string) float64 {
	c := b.Child(name)
	if c == nil || b.AreaMM2 == 0 {
		return 0
	}
	return c.AreaMM2 / b.AreaMM2
}

// PowerShare returns the fraction of b's total power contributed by the
// direct child with the given name (0 if absent or the total is zero).
func (b *Breakdown) PowerShare(name string) float64 {
	c := b.Child(name)
	if c == nil || b.PowerW == 0 {
		return 0
	}
	return c.PowerW / b.PowerW
}

// Consistent reports whether, at every internal node, the node totals equal
// the sum of the children within the given relative tolerance.
func (b *Breakdown) Consistent(tol float64) bool {
	if len(b.Children) == 0 {
		return true
	}
	var area, power float64
	for _, c := range b.Children {
		if !c.Consistent(tol) {
			return false
		}
		area += c.AreaMM2
		power += c.PowerW
	}
	return approxEq(area, b.AreaMM2, tol) && approxEq(power, b.PowerW, tol)
}

func approxEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m || d < 1e-12
}

// String renders the tree with children sorted by descending area, matching
// the report layout of the cmd tools.
func (b *Breakdown) String() string {
	var sb strings.Builder
	b.write(&sb, 0)
	return sb.String()
}

func (b *Breakdown) write(sb *strings.Builder, depth int) {
	fmt.Fprintf(sb, "%s%-28s %10.3f mm2 %10.3f W\n",
		strings.Repeat("  ", depth), b.Name, b.AreaMM2, b.PowerW)
	kids := make([]*Breakdown, len(b.Children))
	copy(kids, b.Children)
	sort.SliceStable(kids, func(i, j int) bool { return kids[i].AreaMM2 > kids[j].AreaMM2 })
	for _, c := range kids {
		c.write(sb, depth+1)
	}
}
