package perfsim_test

import (
	"fmt"

	"neurometer/internal/chip"
	"neurometer/internal/maclib"
	"neurometer/internal/periph"
	"neurometer/internal/perfsim"
	"neurometer/internal/workloads"
)

// Simulate maps a workload graph onto a built chip and returns per-batch
// runtime metrics. It is pure — the chip and graph are read-only — so
// sweeps call it concurrently against shared instances.
func ExampleSimulate() {
	c, err := chip.BuildCached(chip.Config{
		Name: "example", TechNM: 28, ClockHz: 700e6,
		Tx: 2, Ty: 2,
		Core: chip.CoreConfig{
			NumTUs: 2, TURows: 64, TUCols: 64, TUDataType: maclib.Int8,
			HasSU: true,
			Mem:   []chip.MemSegment{{Name: "spad", CapacityBytes: 8 << 20}},
		},
		NoCBisectionGBps: 256,
		OffChip:          []chip.OffChipPort{{Kind: periph.HBMPort, GBps: 700}},
	})
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	g, err := workloads.ByName("alexnet")
	if err != nil {
		fmt.Println("workload:", err)
		return
	}
	res, err := perfsim.Simulate(c, g, 8, perfsim.DefaultOptions())
	if err != nil {
		fmt.Println("simulate:", err)
		return
	}
	fmt.Println("batch:", res.Batch)
	fmt.Println("layers simulated:", len(res.Layers) == len(g.Layers))
	fmt.Println("throughput positive:", res.FPS > 0)
	fmt.Println("utilization in (0,1]:", res.Utilization > 0 && res.Utilization <= 1)
	// Output:
	// batch: 8
	// layers simulated: true
	// throughput positive: true
	// utilization in (0,1]: true
}
