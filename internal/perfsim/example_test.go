package perfsim_test

import (
	"context"
	"fmt"

	"neurometer/internal/chip"
	"neurometer/internal/maclib"
	"neurometer/internal/perfsim"
	"neurometer/internal/periph"
	"neurometer/internal/workloads"
)

// SimulateBatch amortizes workload preparation across many candidate chips:
// the graph is validated and its per-layer closed-form inputs computed once,
// and every candidate's headline metrics are bit-identical to a
// per-candidate Simulate call. The returned BatchResult is pooled scratch —
// Release it when done, and copy out anything that must outlive the batch.
func ExampleSimulateBatch() {
	build := func(x int) *chip.Chip {
		c, err := chip.BuildCached(chip.Config{
			Name: fmt.Sprintf("x%d", x), TechNM: 28, ClockHz: 700e6,
			Tx: 2, Ty: 2,
			Core: chip.CoreConfig{
				NumTUs: 2, TURows: x, TUCols: x, TUDataType: maclib.Int8,
				HasSU: true,
				Mem:   []chip.MemSegment{{Name: "spad", CapacityBytes: 8 << 20}},
			},
			NoCBisectionGBps: 256,
			OffChip:          []chip.OffChipPort{{Kind: periph.HBMPort, GBps: 700}},
		})
		if err != nil {
			panic(err)
		}
		return c
	}
	candidates := []*chip.Chip{build(32), build(64), build(128)}
	g, err := workloads.ByName("alexnet")
	if err != nil {
		fmt.Println("workload:", err)
		return
	}
	br, err := perfsim.SimulateBatch(context.Background(), g, 8, perfsim.DefaultOptions(), candidates)
	if err != nil {
		fmt.Println("simulate:", err)
		return
	}
	defer br.Release()
	fmt.Println("candidates evaluated:", len(br.Results))
	fmt.Println("failures:", br.Failed())
	for i, c := range candidates {
		single, _ := perfsim.Simulate(c, g, 8, perfsim.DefaultOptions())
		fmt.Printf("%s matches single-candidate run: %v\n",
			c.Cfg.Name, br.Results[i].FPS == single.FPS)
	}
	// Output:
	// candidates evaluated: 3
	// failures: 0
	// x32 matches single-candidate run: true
	// x64 matches single-candidate run: true
	// x128 matches single-candidate run: true
}

// Simulate maps a workload graph onto a built chip and returns per-batch
// runtime metrics. It is pure — the chip and graph are read-only — so
// sweeps call it concurrently against shared instances.
func ExampleSimulate() {
	c, err := chip.BuildCached(chip.Config{
		Name: "example", TechNM: 28, ClockHz: 700e6,
		Tx: 2, Ty: 2,
		Core: chip.CoreConfig{
			NumTUs: 2, TURows: 64, TUCols: 64, TUDataType: maclib.Int8,
			HasSU: true,
			Mem:   []chip.MemSegment{{Name: "spad", CapacityBytes: 8 << 20}},
		},
		NoCBisectionGBps: 256,
		OffChip:          []chip.OffChipPort{{Kind: periph.HBMPort, GBps: 700}},
	})
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	g, err := workloads.ByName("alexnet")
	if err != nil {
		fmt.Println("workload:", err)
		return
	}
	res, err := perfsim.Simulate(c, g, 8, perfsim.DefaultOptions())
	if err != nil {
		fmt.Println("simulate:", err)
		return
	}
	fmt.Println("batch:", res.Batch)
	fmt.Println("layers simulated:", len(res.Layers) == len(g.Layers))
	fmt.Println("throughput positive:", res.FPS > 0)
	fmt.Println("utilization in (0,1]:", res.Utilization > 0 && res.Utilization <= 1)
	// Output:
	// batch: 8
	// layers simulated: true
	// throughput positive: true
	// utilization in (0,1]: true
}
