package perfsim

import (
	"math"

	"neurometer/internal/graph"
	"neurometer/internal/guard"
)

// Graph preparation: everything about a layer that does not depend on the
// chip being evaluated — MAC/vector-op counts, im2col GEMM dimensions,
// activation footprints, the depthwise kernel packing factor — is a pure
// function of the graph, yet the historical SimulateCtx recomputed it from
// the layer table on every call (§"where time goes" in PERFORMANCE.md: ~15%
// of a simulation). Prepare hoists that work into a read-only table computed
// once per workload, which the batch engine amortizes across every candidate
// sharing the graph.

// layerVals is the chip-independent precomputation for one layer. All
// quantities are stored as float64 exactly as the simulator's closed forms
// consume them, so a prepared simulation performs bit-identical arithmetic
// to the unprepared path.
type layerVals struct {
	name     string
	kind     graph.OpKind
	isMatrix bool
	macs     float64 // per-frame MACs
	vops     float64 // per-frame vector ops
	m0       float64 // im2col GEMM M per frame (matrix ops only)
	k0       float64 // im2col GEMM K
	n0       float64 // im2col GEMM N
	inBytes  float64 // per-frame input activation bytes
	outBytes float64 // per-frame output activation bytes
	kk       float64 // depthwise/pool effective kernel footprint
}

// Prepared is a validated workload graph with its per-layer closed-form
// inputs precomputed. It is immutable after Prepare and safe for concurrent
// use by any number of goroutines — the dse sweep engine shares one
// Prepared per workload across its whole worker pool.
type Prepared struct {
	g      *graph.Graph
	layers []layerVals
	params float64 // float64(g.Params()), for the weights-residency test
}

// Prepare validates g once and precomputes the per-layer quantities every
// simulation of g needs. Callers that evaluate many chips against one
// workload should Prepare once and reuse it (or use SimulateBatch, which
// does so internally); SimulateCtx re-prepares on every call.
func Prepare(g *graph.Graph) (*Prepared, error) {
	if g == nil {
		return nil, guard.Invalid("perfsim: nil graph")
	}
	if err := g.Validate(); err != nil {
		return nil, guard.Invalid("perfsim: %v", err)
	}
	p := &Prepared{
		g:      g,
		layers: make([]layerVals, len(g.Layers)),
		params: float64(g.Params()),
	}
	for i := range g.Layers {
		l := &g.Layers[i]
		lv := &p.layers[i]
		lv.name = l.Name
		lv.kind = l.Kind
		lv.isMatrix = l.Kind.IsMatrixOp()
		lv.macs = float64(l.MACs())
		lv.vops = float64(l.VectorOps())
		if lv.isMatrix {
			m0, k0, n0 := l.GEMM()
			lv.m0, lv.k0, lv.n0 = float64(m0), float64(k0), float64(n0)
		}
		lv.inBytes = float64(l.InBytes())
		lv.outBytes = float64(l.OutBytes())
		lv.kk = math.Max(1, float64(l.KH*l.KW))
		if l.Kind == graph.GlobalPool {
			lv.kk = math.Min(float64(l.InH*l.InW), 64)
		}
	}
	return p, nil
}

// Graph returns the underlying workload graph.
func (p *Prepared) Graph() *graph.Graph { return p.g }
