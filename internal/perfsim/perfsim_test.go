package perfsim

import (
	"encoding/csv"
	"fmt"
	"strings"
	"testing"

	"neurometer/internal/chip"
	"neurometer/internal/graph"
	"neurometer/internal/maclib"
	"neurometer/internal/periph"
	"neurometer/internal/workloads"
)

// dcPoint builds a Table-I datacenter design point (X, N, Tx, Ty).
func dcPoint(t *testing.T, x, n, tx, ty int) *chip.Chip {
	t.Helper()
	tiles := tx * ty
	c, err := chip.Build(chip.Config{
		Name: fmt.Sprintf("(%d,%d,%d,%d)", x, n, tx, ty), TechNM: 28, ClockHz: 700e6,
		Tx: tx, Ty: ty,
		Core: chip.CoreConfig{
			NumTUs: n, TURows: x, TUCols: x, TUDataType: maclib.Int8, HasSU: true,
			Mem: []chip.MemSegment{{Name: "spad", CapacityBytes: int64(32<<20) / int64(tiles)}},
		},
		NoCBisectionGBps: 256,
		OffChip:          []chip.OffChipPort{{Kind: periph.HBMPort, GBps: 700}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSimulateValidation(t *testing.T) {
	c := dcPoint(t, 64, 2, 2, 4)
	g := workloads.ResNet50()
	if _, err := Simulate(c, g, 0, DefaultOptions()); err == nil {
		t.Errorf("batch 0 must fail")
	}
	bad := *g
	bad.Layers = nil
	if _, err := Simulate(c, &bad, 1, DefaultOptions()); err == nil {
		t.Errorf("empty graph must fail")
	}
}

func TestBasicInvariants(t *testing.T) {
	c := dcPoint(t, 64, 2, 2, 4)
	for _, g := range workloads.All() {
		r, err := Simulate(c, g, 4, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if r.Utilization <= 0 || r.Utilization > 1 {
			t.Errorf("%s: utilization %g out of (0,1]", g.Name, r.Utilization)
		}
		if r.AchievedTOPS <= 0 || r.AchievedTOPS > c.PeakTOPS() {
			t.Errorf("%s: achieved %g vs peak %g", g.Name, r.AchievedTOPS, c.PeakTOPS())
		}
		if r.FPS <= 0 || r.TimeSec <= 0 {
			t.Errorf("%s: degenerate timing", g.Name)
		}
		if len(r.Layers) != len(g.Layers) {
			t.Errorf("%s: layer stats %d != %d", g.Name, len(r.Layers), len(g.Layers))
		}
		if r.Activity.TUMACsPerSec <= 0 || r.Activity.MemReadBytesPerSec <= 0 {
			t.Errorf("%s: empty activity", g.Name)
		}
	}
}

func TestBatchImprovesThroughput(t *testing.T) {
	// Fig. 9: throughput grows significantly from batch 1 to 64.
	c := dcPoint(t, 64, 2, 2, 4)
	for _, g := range workloads.All() {
		r1, err := Simulate(c, g, 1, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		r64, err := Simulate(c, g, 64, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if r64.FPS < 1.5*r1.FPS {
			t.Errorf("%s: batching 64 should raise fps >1.5x: %.0f -> %.0f", g.Name, r1.FPS, r64.FPS)
		}
		if r64.LatencySec <= r1.LatencySec {
			t.Errorf("%s: larger batch must have larger batch latency", g.Name)
		}
	}
}

func TestSoftwareOptimizationsHelp(t *testing.T) {
	// Fig. 7: the graph optimizations significantly improve throughput,
	// especially at small batch sizes.
	c := dcPoint(t, 64, 2, 2, 4)
	for _, g := range workloads.All() {
		for _, bs := range []int{1, 16} {
			on, err := Simulate(c, g, bs, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			off, err := Simulate(c, g, bs, NoOptimizations())
			if err != nil {
				t.Fatal(err)
			}
			if on.FPS <= off.FPS {
				t.Errorf("%s bs=%d: optimizations must help: %.0f vs %.0f fps",
					g.Name, bs, on.FPS, off.FPS)
			}
		}
		// The gain is larger at batch 1 than at a large batch (Fig. 7 shape).
		on1, _ := Simulate(c, g, 1, DefaultOptions())
		off1, _ := Simulate(c, g, 1, NoOptimizations())
		on256, _ := Simulate(c, g, 256, DefaultOptions())
		off256, _ := Simulate(c, g, 256, NoOptimizations())
		gain1 := on1.FPS / off1.FPS
		gain256 := on256.FPS / off256.FPS
		if gain1 <= gain256*0.8 {
			t.Errorf("%s: small-batch gain (%.2fx) should not trail large-batch gain (%.2fx)",
				g.Name, gain1, gain256)
		}
	}
}

func TestWimpyHigherUtilBrawnyHigherThroughput(t *testing.T) {
	// The central Fig. 10 shape at batch 1.
	brawny := dcPoint(t, 64, 2, 2, 4)
	wimpy := dcPoint(t, 8, 4, 4, 8)
	var brawnyTOPS, wimpyTOPS, brawnyUtil, wimpyUtil float64
	for _, g := range workloads.All() {
		rb, err := Simulate(brawny, g, 1, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		rw, err := Simulate(wimpy, g, 1, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		brawnyTOPS += rb.AchievedTOPS
		wimpyTOPS += rw.AchievedTOPS
		brawnyUtil += rb.Utilization
		wimpyUtil += rw.Utilization
	}
	if wimpyUtil <= brawnyUtil {
		t.Errorf("wimpy must win utilization: %.2f vs %.2f", wimpyUtil/3, brawnyUtil/3)
	}
	if brawnyTOPS <= wimpyTOPS {
		t.Errorf("brawny must win throughput: %.2f vs %.2f", brawnyTOPS/3, wimpyTOPS/3)
	}
}

func TestEfficiencyThroughputTradeoff(t *testing.T) {
	// §III-B.2: choosing (64,4,1,2) over (64,2,2,4) at batch 1 sacrifices a
	// modest share of achieved TOPS (paper: <16%, ours: ~25%) for >2x
	// cost efficiency.
	thr := dcPoint(t, 64, 2, 2, 4)
	eff := dcPoint(t, 64, 4, 1, 2)
	var thrTOPS, effTOPS, thrCost, effCost float64
	for _, g := range workloads.All() {
		rt, err := Simulate(thr, g, 1, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		re, err := Simulate(eff, g, 1, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		thrTOPS += rt.AchievedTOPS / 3
		effTOPS += re.AchievedTOPS / 3
		thrCost += thr.Efficiency(rt.AchievedTOPS*1e12, rt.Activity).TOPSPerTCO / 3
		effCost += eff.Efficiency(re.AchievedTOPS*1e12, re.Activity).TOPSPerTCO / 3
	}
	ratio := effTOPS / thrTOPS
	if ratio < 0.65 || ratio >= 1.0 {
		t.Errorf("achieved-TOPS ratio out of band: %.2f (paper ~0.84)", ratio)
	}
	gain := effCost / thrCost
	if gain < 1.8 {
		t.Errorf("cost-efficiency gain %.2fx, want >1.8x (paper 2.1x)", gain)
	}
}

func TestLatencyLimitedBatch(t *testing.T) {
	// Fig. 9: 10 ms SLO batch sizes on (64,2,2,4) are 16/4/32 for
	// ResNet/NasNet/Inception; we accept one power-of-two step of slack.
	c := dcPoint(t, 64, 2, 2, 4)
	for _, tc := range []struct {
		model string
		paper int
	}{
		{"resnet", 16}, {"nasnet", 4}, {"inception", 32},
	} {
		g, err := workloads.ByName(tc.model)
		if err != nil {
			t.Fatal(err)
		}
		batch, r, err := LatencyLimitedBatch(c, g, 10e-3, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if r.LatencySec > 10e-3 && batch > 1 {
			t.Errorf("%s: selected batch %d misses the SLO: %.1fms", tc.model, batch, r.LatencySec*1e3)
		}
		if batch < tc.paper/2 || batch > tc.paper*2 {
			t.Errorf("%s: latency-limited batch %d vs paper %d (allow one 2x step)",
				tc.model, batch, tc.paper)
		}
	}
}

func TestRTChipRejected(t *testing.T) {
	c, err := chip.Build(chip.Config{
		Name: "rt", TechNM: 28, ClockHz: 700e6, Tx: 1, Ty: 1,
		Core: chip.CoreConfig{NumRTs: 4, RTInputs: 1024, TUDataType: maclib.Int8,
			Mem: []chip.MemSegment{{Name: "spad", CapacityBytes: 8 << 20}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(c, workloads.ResNet50(), 1, DefaultOptions()); err == nil {
		t.Errorf("RT-only chips must be rejected (they use the sparse roofline)")
	}
}

func TestRuntimePowerBelowTDP(t *testing.T) {
	c := dcPoint(t, 64, 2, 2, 4)
	for _, bs := range []int{1, 64, 256} {
		for _, g := range workloads.All() {
			r, err := Simulate(c, g, bs, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			w, _ := c.RuntimePower(r.Activity)
			if w <= 0 || w >= c.TDPW() {
				t.Errorf("%s bs=%d: runtime power %.1fW outside (0, TDP=%.1fW)",
					g.Name, bs, w, c.TDPW())
			}
		}
	}
}

func TestLayersCSVAndSummary(t *testing.T) {
	c := dcPoint(t, 64, 2, 2, 4)
	r, err := Simulate(c, workloads.ResNet50(), 2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	csv := r.LayersCSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != len(r.Layers)+1 {
		t.Fatalf("CSV rows %d, want %d", len(lines), len(r.Layers)+1)
	}
	if !strings.HasPrefix(lines[0], "layer,kind,mapping") {
		t.Errorf("CSV header: %q", lines[0])
	}
	if !strings.Contains(csv, "conv1") {
		t.Errorf("CSV missing layers")
	}
	for _, want := range []string{"batch=2", "fps=", "util="} {
		if !strings.Contains(r.Summary(), want) {
			t.Errorf("summary missing %q: %s", want, r.Summary())
		}
	}
}

// Layer names containing CSV metacharacters must round-trip: the writer
// quotes per RFC 4180 instead of corrupting columns.
func TestLayersCSVEscaping(t *testing.T) {
	r := &Result{Layers: []LayerStat{{
		Name:    `branch2a,3x3 "fused"`,
		Kind:    graph.Conv2D,
		Mapping: "n-split",
		Cycles:  1234,
	}}}
	rd := csv.NewReader(strings.NewReader(r.LayersCSV()))
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("records: got %d, want header + 1 row", len(recs))
	}
	if got := len(recs[0]); got != len(layersCSVHeader) {
		t.Errorf("header width %d, want %d", got, len(layersCSVHeader))
	}
	if recs[1][0] != `branch2a,3x3 "fused"` {
		t.Errorf("layer name corrupted: %q", recs[1][0])
	}
	if recs[1][3] != "1234" {
		t.Errorf("cycles column: %q", recs[1][3])
	}
	if LayersCSVFormatVersion < 2 {
		t.Errorf("format version must be >= 2 after the encoding/csv migration")
	}
}

func TestActivityTrace(t *testing.T) {
	c := dcPoint(t, 64, 2, 2, 4)
	r, err := Simulate(c, workloads.ResNet50(), 4, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	trace := r.ActivityTrace(c)
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	res, err := c.RuntimeTrace(trace)
	if err != nil {
		t.Fatal(err)
	}
	// The trace spans the simulated time.
	if res.TotalSec < r.TimeSec*0.95 || res.TotalSec > r.TimeSec*1.05 {
		t.Errorf("trace time %.4fs vs simulated %.4fs", res.TotalSec, r.TimeSec)
	}
	// The time-weighted trace average matches the single-shot runtime
	// power within 35% (the single shot uses workload-average rates; the
	// trace resolves per-layer phases).
	single, _ := c.RuntimePower(r.Activity)
	if res.AvgPowerW < single*0.65 || res.AvgPowerW > single*1.35 {
		t.Errorf("trace average %.1fW vs single-shot %.1fW", res.AvgPowerW, single)
	}
	// There must be real phase variation (conv1 vs late layers).
	if res.PeakPowerW < res.AvgPowerW*1.05 {
		t.Errorf("no phase variation: peak %.1fW avg %.1fW", res.PeakPowerW, res.AvgPowerW)
	}
	if res.PeakPowerW >= c.TDPW()*1.2 {
		t.Errorf("trace peak %.1fW far above TDP %.1fW", res.PeakPowerW, c.TDPW())
	}
}
