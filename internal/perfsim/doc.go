// Package perfsim is the performance simulator NeuroMeter pairs with for
// runtime analysis — the role TF-Sim ([9], unpublished) plays in the paper.
//
// It maps each layer of a computational graph onto a many-core systolic
// accelerator at tile granularity: weight tiles of X x X are distributed
// over the chip's tensor units, activations stream through (fill/drain
// modeled), partial-sum merging and activation/weight broadcast cross the
// NoC, and off-chip traffic rides the HBM roofline. The graph-level
// optimizations the paper credits to TF-Sim (Fig. 7) are implemented as
// options: Space-to-Batch, Space-to-Depth, and double buffering.
//
// The simulator deliberately stays analytical (per-layer closed forms) —
// the paper's methodology — rather than cycle-accurate.
//
// # Concurrency contract
//
// Simulate is a pure function of its inputs: it mutates neither the
// *chip.Chip (immutable after chip.Build) nor the *graph.Graph it is
// given, and keeps all working state on the stack. Any number of
// goroutines may therefore simulate against shared chips and graphs
// concurrently — this is exactly what the dse parallel sweep engine does —
// and identical inputs always produce bitwise-identical Results.
//
// # Batch evaluation
//
// The design-space engine asks one question many times: "this workload,
// this batch size, these N candidate chips". Prepare validates a graph once
// and precomputes every chip-independent per-layer quantity; SimulateBatch
// (and the lower-level Prepared methods SimulateInto / LatencyLimitedInto)
// then run the same closed forms over each candidate into pooled result
// scratch, so the steady state allocates nothing per candidate. Headline
// metrics are bit-identical to per-candidate SimulateCtx calls; per-layer
// LayerStat detail is a single-candidate feature — use SimulateCtx when
// Layers matter. BatchResults come from a sync.Pool: Release them when done
// and copy out anything that must outlive the batch. See PERFORMANCE.md for
// the measured profile and the benchmark trajectory.
//
// # Error contract
//
// Simulate returns errors classified under the guard taxonomy:
// guard.ErrInvalidConfig for malformed graphs or options,
// guard.ErrInfeasible for layers the chip cannot map, guard.ErrNonFinite
// if any derived quantity leaves the finite range, and the classified
// context error (guard.ErrCanceled / guard.ErrTimeout) when SimulateCtx's
// context expires — checked between layers, so cancellation latency is one
// layer's closed-form evaluation.
package perfsim
