// Package perfsim is the performance simulator NeuroMeter pairs with for
// runtime analysis — the role TF-Sim ([9], unpublished) plays in the paper.
//
// It maps each layer of a computational graph onto a many-core systolic
// accelerator at tile granularity: weight tiles of X x X are distributed
// over the chip's tensor units, activations stream through (fill/drain
// modeled), partial-sum merging and activation/weight broadcast cross the
// NoC, and off-chip traffic rides the HBM roofline. The graph-level
// optimizations the paper credits to TF-Sim (Fig. 7) are implemented as
// options: Space-to-Batch, Space-to-Depth, and double buffering.
//
// The simulator deliberately stays analytical (per-layer closed forms) —
// the paper's methodology — rather than cycle-accurate.
//
// # Concurrency contract
//
// Simulate is a pure function of its inputs: it mutates neither the
// *chip.Chip (immutable after chip.Build) nor the *graph.Graph it is
// given, and keeps all working state on the stack. Any number of
// goroutines may therefore simulate against shared chips and graphs
// concurrently — this is exactly what the dse parallel sweep engine does —
// and identical inputs always produce bitwise-identical Results.
//
// # Error contract
//
// Simulate returns errors classified under the guard taxonomy:
// guard.ErrInvalidConfig for malformed graphs or options,
// guard.ErrInfeasible for layers the chip cannot map, guard.ErrNonFinite
// if any derived quantity leaves the finite range, and the classified
// context error (guard.ErrCanceled / guard.ErrTimeout) when SimulateCtx's
// context expires — checked between layers, so cancellation latency is one
// layer's closed-form evaluation.
package perfsim
