package perfsim

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"neurometer/internal/chip"
	"neurometer/internal/guard"
	"neurometer/internal/maclib"
	"neurometer/internal/periph"
	"neurometer/internal/workloads"
)

// batchChips builds a spread of datacenter design points, cycling the
// Table-I axes so the batch exercises different array sizes, TU counts,
// and tile grids.
func batchChips(t *testing.T, n int) []*chip.Chip {
	t.Helper()
	xs := []int{32, 64, 128, 256}
	ns := []int{1, 2, 4}
	grids := [][2]int{{1, 1}, {1, 2}, {2, 2}, {2, 4}}
	chips := make([]*chip.Chip, n)
	for i := range chips {
		g := grids[i%len(grids)]
		chips[i] = dcPoint(t, xs[i%len(xs)], ns[i%len(ns)], g[0], g[1])
	}
	return chips
}

// headline is the comparable projection of a Result: everything but the
// Layers slice (batch results never record per-layer stats). Equality on it
// is exact float64 bit comparison, pinning the determinism contract.
type headline struct {
	Batch                                                       int
	Cycles, TimeSec, LatencySec, FPS, AchievedTOPS, Utilization float64
	Activity                                                    chip.Activity
}

func stripLayers(r Result) headline {
	return headline{
		Batch: r.Batch, Cycles: r.Cycles, TimeSec: r.TimeSec,
		LatencySec: r.LatencySec, FPS: r.FPS, AchievedTOPS: r.AchievedTOPS,
		Utilization: r.Utilization, Activity: r.Activity,
	}
}

// TestSimulateBatchBitIdentical pins the core determinism contract: for
// every chip, batch size, and option set, SimulateBatch produces exactly
// the float64 bits SimulateCtx produces.
func TestSimulateBatchBitIdentical(t *testing.T) {
	chips := batchChips(t, 9)
	for _, g := range workloads.All() {
		for _, batch := range []int{1, 16, 256} {
			for _, opt := range []Options{DefaultOptions(), NoOptimizations(), {SpaceToDepth: true}} {
				br, err := SimulateBatch(context.Background(), g, batch, opt, chips)
				if err != nil {
					t.Fatalf("%s batch %d: %v", g.Name, batch, err)
				}
				for i, c := range chips {
					if br.Errs[i] != nil {
						t.Fatalf("%s batch %d chip %d: %v", g.Name, batch, i, br.Errs[i])
					}
					want, err := SimulateCtx(context.Background(), c, g, batch, opt)
					if err != nil {
						t.Fatal(err)
					}
					if got := stripLayers(br.Results[i]); got != stripLayers(*want) {
						t.Errorf("%s batch %d chip %d: batch result diverges\n got %+v\nwant %+v",
							g.Name, batch, i, got, stripLayers(*want))
					}
				}
				br.Release()
			}
		}
	}
}

// TestSimulateBatchZeroAllocs proves the steady-state batch path is
// allocation-free: prepared workload, pooled scratch, no per-candidate or
// per-layer garbage. testing.Benchmark absorbs the occasional pool clear a
// GC cycle causes (AllocsPerOp rounds the average down).
func TestSimulateBatchZeroAllocs(t *testing.T) {
	chips := batchChips(t, 8)
	g := workloads.ResNet50()
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opt := DefaultOptions()
	// Warm the pool so the measured loop starts in steady state.
	br, err := p.SimulateBatch(ctx, 16, opt, chips)
	if err != nil {
		t.Fatal(err)
	}
	br.Release()
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			br, err := p.SimulateBatch(ctx, 16, opt, chips)
			if err != nil {
				b.Fatal(err)
			}
			br.Release()
		}
	})
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Errorf("steady-state batch evaluation allocates: %d allocs/op (want 0)", allocs)
	}
}

// TestSimulateBatchPoolNoAliasing pins the pool-reuse invariant: a
// BatchResult that has not been released must never share scratch with a
// later batch. Two back-to-back batches are compared against fresh
// per-candidate evaluations after both have run.
func TestSimulateBatchPoolNoAliasing(t *testing.T) {
	g := workloads.ResNet50()
	ctx := context.Background()
	opt := DefaultOptions()
	chipsA := batchChips(t, 6)
	chipsB := batchChips(t, 6)[3:] // different shape and length

	brA, err := SimulateBatch(ctx, g, 16, opt, chipsA)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([]Result, len(brA.Results))
	copy(snapshot, brA.Results)

	brB, err := SimulateBatch(ctx, g, 64, opt, chipsB)
	if err != nil {
		t.Fatal(err)
	}
	if &brA.Results[0] == &brB.Results[0] {
		t.Fatalf("second batch reused scratch of an unreleased BatchResult")
	}
	for i := range brA.Results {
		if stripLayers(brA.Results[i]) != stripLayers(snapshot[i]) {
			t.Errorf("chip %d: first batch mutated by second batch", i)
		}
	}
	// Release both, run a third batch: it may reuse either scratch but must
	// fully overwrite it.
	brA.Release()
	brB.Release()
	brC, err := SimulateBatch(ctx, g, 1, opt, chipsA)
	if err != nil {
		t.Fatal(err)
	}
	defer brC.Release()
	for i, c := range chipsA {
		want, err := SimulateCtx(ctx, c, g, 1, opt)
		if err != nil {
			t.Fatal(err)
		}
		if stripLayers(brC.Results[i]) != stripLayers(*want) {
			t.Errorf("chip %d: recycled scratch not fully overwritten", i)
		}
	}
}

// TestSimulateBatchMidBatchLayerFault targets a perfsim.layer fault at one
// candidate mid-batch: that candidate fails with the injected error, every
// other candidate's result is untouched and bit-identical to a clean run.
func TestSimulateBatchMidBatchLayerFault(t *testing.T) {
	g := workloads.ResNet50()
	chips := batchChips(t, 5)
	ctx := context.Background()
	opt := DefaultOptions()

	clean, err := SimulateBatch(ctx, g, 16, opt, chips)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]Result, len(clean.Results))
	copy(want, clean.Results)
	clean.Release()

	// Fire once, partway through candidate 2's layer walk.
	boom := errors.New("injected layer fault")
	defer guard.Arm("perfsim.layer", guard.Fault{
		Skip:  2*len(g.Layers) + 7,
		Count: 1,
		Err:   boom,
	})()
	br, err := SimulateBatch(ctx, g, 16, opt, chips)
	if err != nil {
		t.Fatalf("batch-level error from a single-candidate fault: %v", err)
	}
	defer br.Release()
	for i := range chips {
		if i == 2 {
			if !errors.Is(br.Errs[2], boom) {
				t.Errorf("candidate 2: want injected fault, got %v", br.Errs[2])
			}
			continue
		}
		if br.Errs[i] != nil {
			t.Errorf("candidate %d: unexpected error %v", i, br.Errs[i])
		}
		if stripLayers(br.Results[i]) != stripLayers(want[i]) {
			t.Errorf("candidate %d: result disturbed by candidate 2's fault", i)
		}
	}
}

// TestSimulateBatchMidBatchPanic does the same with a panic at the layer
// site: RecoverTo converts it to that candidate's error, the rest of the
// batch completes.
func TestSimulateBatchMidBatchPanic(t *testing.T) {
	g := workloads.ResNet50()
	chips := batchChips(t, 4)
	defer guard.Arm("perfsim.layer", guard.Fault{
		Skip:  len(g.Layers) + 3, // mid candidate 1
		Count: 1,
		Panic: true,
	})()
	br, err := SimulateBatch(context.Background(), g, 8, DefaultOptions(), chips)
	if err != nil {
		t.Fatalf("batch-level error from a single-candidate panic: %v", err)
	}
	defer br.Release()
	if br.Errs[1] == nil {
		t.Errorf("candidate 1 should have failed from the injected panic")
	}
	if got := br.Failed(); got != 1 {
		t.Errorf("Failed() = %d, want 1", got)
	}
}

// TestSimulateBatchPerCandidateValidation: a nil chip or TU-less chip fails
// its slot only.
func TestSimulateBatchPerCandidateValidation(t *testing.T) {
	g := workloads.ResNet50()
	chips := batchChips(t, 3)
	chips[1] = nil
	br, err := SimulateBatch(context.Background(), g, 4, DefaultOptions(), chips)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Release()
	if !errors.Is(br.Errs[1], guard.ErrInvalidConfig) {
		t.Errorf("nil chip: want invalid-input error, got %v", br.Errs[1])
	}
	if br.Errs[0] != nil || br.Errs[2] != nil {
		t.Errorf("healthy candidates failed: %v / %v", br.Errs[0], br.Errs[2])
	}
}

// TestSimulateBatchBatchLevelValidation: bad batch sizes, empty chip
// lists, and nil/invalid graphs fail the whole call.
func TestSimulateBatchBatchLevelValidation(t *testing.T) {
	g := workloads.ResNet50()
	chips := batchChips(t, 2)
	if _, err := SimulateBatch(context.Background(), g, 0, DefaultOptions(), chips); err == nil {
		t.Errorf("batch 0 must fail")
	}
	if _, err := SimulateBatch(context.Background(), g, 4, DefaultOptions(), nil); err == nil {
		t.Errorf("empty chip list must fail")
	}
	if _, err := SimulateBatch(context.Background(), nil, 4, DefaultOptions(), chips); err == nil {
		t.Errorf("nil graph must fail")
	}
	bad := *g
	bad.Layers = nil
	if _, err := SimulateBatch(context.Background(), &bad, 4, DefaultOptions(), chips); err == nil {
		t.Errorf("invalid graph must fail")
	}
}

// TestSimulateBatchCtxCancel: a canceled ctx aborts the whole batch with
// the classified error.
func TestSimulateBatchCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateBatch(ctx, workloads.ResNet50(), 4, DefaultOptions(), batchChips(t, 2))
	if !errors.Is(err, guard.ErrCanceled) {
		t.Errorf("want guard.ErrCanceled, got %v", err)
	}
}

// TestLatencyLimitedIntoMatchesCtx pins the prepared latency search against
// the historical per-call path.
func TestLatencyLimitedIntoMatchesCtx(t *testing.T) {
	c := dcPoint(t, 64, 2, 2, 4)
	for _, g := range workloads.All() {
		p, err := Prepare(g)
		if err != nil {
			t.Fatal(err)
		}
		var a, b Result
		gotB, gotR, err := p.LatencyLimitedInto(context.Background(), c, 0.010, DefaultOptions(), &a, &b)
		if err != nil {
			t.Fatal(err)
		}
		wantB, wantR, err := LatencyLimitedBatchCtx(context.Background(), c, g, 0.010, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if gotB != wantB {
			t.Errorf("%s: batch %d, want %d", g.Name, gotB, wantB)
		}
		if stripLayers(*gotR) != stripLayers(*wantR) {
			t.Errorf("%s: latency-limited result diverges", g.Name)
		}
	}
}

// BenchmarkSimulateBatch measures batch-64 candidate throughput and
// reports it next to the per-candidate SimulateCtx path; the
// "speedup-vs-single" metric is the acceptance headline. cmd/bench runs
// the same pair and persists the numbers to BENCH_*.json.
func BenchmarkSimulateBatch(b *testing.B) {
	chips := benchChips(b, 64)
	g := workloads.ResNet50()
	p, err := Prepare(g)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, err := p.SimulateBatch(ctx, 16, opt, chips)
		if err != nil {
			b.Fatal(err)
		}
		if br.Failed() > 0 {
			b.Fatal("batch candidate failed")
		}
		br.Release()
	}
	b.StopTimer()
	perCand := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(chips))
	b.ReportMetric(1e9/perCand, "candidates/sec")
}

// BenchmarkSimulateSingle is the per-candidate baseline for
// BenchmarkSimulateBatch: the same 64 chips through SimulateCtx one at a
// time, full per-call prep and result allocation.
func BenchmarkSimulateSingle(b *testing.B) {
	chips := benchChips(b, 64)
	g := workloads.ResNet50()
	ctx := context.Background()
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range chips {
			if _, err := SimulateCtx(ctx, c, g, 16, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	perCand := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(chips))
	b.ReportMetric(1e9/perCand, "candidates/sec")
}

// benchChips is batchChips for benchmarks.
func benchChips(b *testing.B, n int) []*chip.Chip {
	b.Helper()
	xs := []int{32, 64, 128, 256}
	ns := []int{1, 2, 4}
	grids := [][2]int{{1, 1}, {1, 2}, {2, 2}, {2, 4}}
	chips := make([]*chip.Chip, n)
	for i := range chips {
		grid := grids[i%len(grids)]
		c, err := chip.Build(chip.Config{
			Name:   fmt.Sprintf("(%d,%d,%d,%d)", xs[i%len(xs)], ns[i%len(ns)], grid[0], grid[1]),
			TechNM: 28, ClockHz: 700e6, Tx: grid[0], Ty: grid[1],
			Core: chip.CoreConfig{
				NumTUs: ns[i%len(ns)], TURows: xs[i%len(xs)], TUCols: xs[i%len(xs)],
				TUDataType: maclib.Int8, HasSU: true,
				Mem: []chip.MemSegment{{Name: "spad", CapacityBytes: int64(32<<20) / int64(grid[0]*grid[1])}},
			},
			NoCBisectionGBps: 256,
			OffChip:          []chip.OffChipPort{{Kind: periph.HBMPort, GBps: 700}},
		})
		if err != nil {
			b.Fatal(err)
		}
		chips[i] = c
	}
	return chips
}
