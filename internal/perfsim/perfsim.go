package perfsim

import (
	"context"
	"fmt"
	"math"

	"neurometer/internal/chip"
	"neurometer/internal/graph"
	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

// Observability: simulation and per-layer counters feed the obs default
// registry; spans record per-graph and per-layer wall time when tracing is
// enabled (no-ops otherwise).
var (
	mSimulations = obs.NewCounter("perfsim.simulations")
	mLayers      = obs.NewCounter("perfsim.layers_simulated")
)

// Options toggles the software optimizations (Fig. 7's "before/after").
type Options struct {
	// SpaceToDepth folds spatial positions into the reduction dimension for
	// early layers whose channel depth underfills the array rows.
	SpaceToDepth bool
	// SpaceToBatch splits large spatial extents across cores like extra
	// batch, avoiding whole-activation broadcasts.
	SpaceToBatch bool
	// DoubleBuffer overlaps weight loading and off-chip/NoC transfers with
	// compute.
	DoubleBuffer bool
}

// DefaultOptions enables everything (the paper's "after optimization").
func DefaultOptions() Options {
	return Options{SpaceToDepth: true, SpaceToBatch: true, DoubleBuffer: true}
}

// NoOptimizations is the "before" configuration of Fig. 7.
func NoOptimizations() Options { return Options{} }

// LayerStat records the simulated execution of one layer (for one batch).
type LayerStat struct {
	Name          string
	Kind          graph.OpKind
	Cycles        float64
	ComputeCycles float64
	NoCCycles     float64
	HBMCycles     float64
	VUCycles      float64
	Overhead      float64
	MACs          float64
	Mapping       string // "n-split" | "m-split" | "vector"
	// Per-layer traffic, for activity-trace generation.
	MemReadBytes  float64
	MemWriteBytes float64
	NoCBytes      float64
	HBMBytes      float64
	StreamMACs    float64
}

// Result is the outcome of simulating one batch through the graph.
type Result struct {
	Batch        int
	Cycles       float64
	TimeSec      float64
	LatencySec   float64 // == TimeSec (one batch in flight)
	FPS          float64
	AchievedTOPS float64
	Utilization  float64
	Activity     chip.Activity
	Layers       []LayerStat
}

// fixed per-layer costs: kernel launch/sequencing plus a per-core
// synchronization term — the scheduling overheads that penalize many-core
// chips at small batch.
const (
	launchCycles   = 1800.0
	syncPerCore    = 40.0
	multicastShare = 0.8 // mesh multicast saves a fifth of unicast traffic
	// dispatchPerTile is the scalar-unit sequencing cost (tile descriptor,
	// address calculation) per weight tile, serialized per core.
	dispatchPerTile = 8.0
	// nocExposed is the fraction of inter-core transfer time that cannot
	// hide behind compute even with double buffering (the first tile of
	// every dependency chain).
	nocExposed = 0.5
	// haloPerCore is the fractional recompute/transfer overhead each
	// additional core adds when the spatial dimension is split (halo rows
	// of the convolution window).
	haloPerCore = 0.08
)

// Simulate runs one batch of g through c.
func Simulate(c *chip.Chip, g *graph.Graph, batch int, opt Options) (*Result, error) {
	return SimulateCtx(context.Background(), c, g, batch, opt)
}

// SimulateCtx is Simulate with observability and robustness: it opens a
// span per graph (child of any span in ctx) and a child span per layer
// carrying the mapping decision and cycle breakdown. The ctx deadline is
// honored between layers (a canceled or expired ctx aborts the simulation
// with guard.ErrCanceled/ErrTimeout), and the headline result metrics are
// finite-checked before returning so NaN/Inf never escapes into sweeps.
//
// SimulateCtx re-validates and re-prepares the graph on every call. When
// evaluating many chips against one workload, Prepare the graph once and
// use (*Prepared).SimulateInto or SimulateBatch, which amortize that cost
// and reuse result scratch; both produce bit-identical headline metrics.
func SimulateCtx(ctx context.Context, c *chip.Chip, g *graph.Graph, batch int, opt Options) (res *Result, err error) {
	defer guard.RecoverTo(&err)
	if c == nil {
		return nil, guard.Invalid("perfsim: nil chip")
	}
	if g == nil {
		return nil, guard.Invalid("perfsim: nil graph")
	}
	if batch <= 0 {
		return nil, guard.Invalid("perfsim: batch must be positive, got %d", batch)
	}
	if err := guard.Inject(ctx, "perfsim.simulate"); err != nil {
		return nil, err
	}
	ctx, span := obs.Start(ctx, "perfsim.simulate")
	defer span.End()
	span.SetStr("graph", g.Name)
	span.SetInt("batch", int64(batch))
	p, err := Prepare(g)
	if err != nil {
		return nil, err
	}
	res = &Result{Layers: make([]LayerStat, 0, len(g.Layers))}
	if err := simulateInto(ctx, c, p, batch, opt, res, true); err != nil {
		return nil, err
	}
	return res, nil
}

func nonFinite(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// fmax/fmin are branch-only max/min for the simulator's closed-form value
// domain: non-negative finite quantities or +Inf, never NaN and never -0
// (every operand is a count, a byte total, or a cycle count). On that
// domain they are bit-identical to math.Max/math.Min, without the
// function-call and NaN/±0 handling cost (math.Max is not an intrinsic on
// amd64 and showed up at ~25% of the batch inner loop).
func fmax(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func fmin(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// simulateInto is the shared simulation core. It fully overwrites *res
// (reusing the Layers backing array) and allocates nothing on the steady
// state when detail is false: per-layer spans and LayerStat records are
// produced only for the detailed single-candidate path (SimulateCtx), while
// the batch/sweep path accumulates through locals. Both modes execute the
// same closed forms in the same order, so headline metrics are
// bit-identical between them.
func simulateInto(ctx context.Context, c *chip.Chip, p *Prepared, batch int, opt Options, res *Result, detail bool) (err error) {
	defer guard.RecoverTo(&err)
	core := c.Core
	if core.TU == nil {
		return guard.Invalid("perfsim: chip %q has no tensor units (RT chips use the sparse roofline model)", c.Cfg.Name)
	}

	x := float64(core.Cfg.TUCols)
	tuPerCore := float64(core.Cfg.NumTUs)
	cores := float64(c.Tiles())
	totalTUs := tuPerCore * cores
	lanes := float64(core.Cfg.VULanes) * cores
	mulBytes := float64(core.Cfg.TUDataType.Bits()) / 8
	accBytes := 4.0

	// Bandwidths in bytes per cycle.
	nocBPC := c.Cfg.NoCBisectionGBps * 1e9 / c.ClockHz()
	if nocBPC <= 0 || cores == 1 {
		nocBPC = math.Inf(1) // single core: no NoC crossing
	}
	hbmBPC := offChipGBps(c) * 1e9 / c.ClockHz()
	if hbmBPC <= 0 {
		hbmBPC = math.Inf(1)
	}
	memBytes := float64(0)
	if core.Mem != nil {
		memBytes = float64(core.Mem.CapacityBytes()) * cores
	}
	weightsResident := p.params <= memBytes*0.85

	layers := res.Layers[:0]
	*res = Result{Batch: batch, Layers: layers}
	batchF := float64(batch)
	act := chip.Activity{ClockGateIdleFrac: 0.5}
	var totalMACs, totalVecOps float64
	// streamMACs counts cell-cycles actually clocked through the arrays,
	// including padded tiles and fill/drain bubbles: the energy-relevant
	// quantity (a 64x64 array computing a 10-row stripe still clocks all
	// 4096 cells). This is the mechanism behind the paper's observation
	// that runtime energy efficiency favors smaller arrays (§III-B.2).
	var streamMACs float64
	var memRead, memWrite, nocBytes, hbmBytes float64

	// Chip-level constants hoisted out of the layer loop; each is exactly
	// the subexpression the per-layer forms used, so hoisting cannot change
	// a single bit of the result.
	hopCycles := c.NoC.AvgHops() * c.NoC.HopLatencyCycles()
	// Weight double buffering overlaps most of the tile switch, but
	// skewed refill still exposes ~half an array depth per round;
	// without it every round pays the full load + fill bubble.
	bubble := 3 * x // fill + drain + weight load, per round
	oneTime := 0.0
	if opt.DoubleBuffer {
		bubble = 2 * x // fill + drain; only the weight load overlaps
		oneTime = 0
	}

	// Deadline checks gate on the Done channel: nil for non-cancelable
	// contexts (skip entirely), and a lock-free poll otherwise —
	// guard.CtxErr (which classifies via context.Cause, taking a mutex)
	// runs only once the context is actually dead, returning the identical
	// error it always did.
	done := ctx.Done()
	for li := range p.layers {
		lv := &p.layers[li]
		// Deadline check per layer: analytical layers are cheap, so this is
		// the granularity at which a per-candidate timeout can actually
		// interrupt a simulation.
		if done != nil {
			select {
			case <-done:
				return guard.CtxErr(ctx)
			default:
			}
		}
		if err := guard.Inject(ctx, "perfsim.layer"); err != nil {
			return err
		}
		macs := lv.macs * batchF
		vops := lv.vops * batchF
		totalMACs += macs

		var cyc float64
		if lv.isMatrix {
			mF, kF := lv.m0*batchF, lv.k0
			nF := lv.n0

			// Space-to-Depth: fold spatial into depth when K underfills
			// the array (early convs: K = 27..147 vs X up to 256).
			if opt.SpaceToDepth && lv.kind == graph.Conv2D && kF < x/2 && mF >= 4 {
				fold := fmin(4, math.Floor(x/kF))
				if fold >= 2 {
					kF *= fold
					mF = math.Ceil(mF / fold)
				}
			}

			kt := math.Ceil(kF / x)
			nt := math.Ceil(nF / x)
			tiles := kt * nt

			// The scheduler evaluates three mappings and picks the fastest,
			// mirroring TF-Sim's "advanced runtime graph scheduling". Fill
			// and drain cost one array-depth bubble per tile round (draining
			// tile i overlaps filling tile i+1). Each mapping is evaluated
			// into scalar locals — no per-layer candidate slice.

			// ---- A: N-split across cores (no inter-core psum merging) ----
			// Each core owns a slice of the output channels; partial sums
			// accumulate locally (intra-core K-splits share the core's
			// accumulators through the VReg). Inter-core parallelism is
			// therefore capped by the N-tile count: with few output-channel
			// tiles, part of the chip idles — the reason small batches
			// cannot feed many brawny cores.
			coresA := fmin(cores, nt)
			ntc := math.Ceil(nt / coresA)
			roundsA := math.Ceil(ntc * kt / tuPerCore)
			compA := roundsA*(mF+bubble) + oneTime
			// Intra-core K-splits accumulate in the core's accumulator
			// buffer (the TPU pattern): no VU cost.
			vuA := 0.0
			bcastA := 0.0
			if coresA > 1 {
				bcastA = mF * kF * mulBytes // activations, one crossing
			}
			nocA := bcastA / nocBPC
			energyA := mF * kF * mulBytes * (coresA - 1) * multicastShare
			tusA := fmin(coresA*tuPerCore, tiles)

			// ---- B: K+N split across cores (inter-core psum merging) ------
			var compB float64
			if tiles >= totalTUs {
				compB = math.Ceil(tiles/totalTUs)*(mF+bubble) + oneTime
			} else {
				share := math.Floor(totalTUs / tiles)
				compB = math.Ceil(mF/share) + bubble + oneTime
			}
			kSplit := fmin(kt, fmax(1, math.Floor(totalTUs/nt)))
			coresK := math.Ceil(kSplit / tuPerCore)
			// Every K-split pair produces a full M x N partial-sum tensor
			// that must be summed; the cross-core fraction rides the NoC.
			mergeB := fmax(0, kSplit-1) * mF * nF * accBytes *
				(coresK - 1) / fmax(coresK, 1)
			bcastB := 0.0
			if fmin(cores, tiles) > 1 {
				bcastB = mF * kF * mulBytes
			}
			vuB := fmax(0, kSplit-1) * mF * nF / lanes
			nocB := (mergeB + bcastB) / nocBPC
			energyB := mergeB + mF*kF*mulBytes*(fmin(cores, tiles)-1)*multicastShare
			coresB := fmin(cores, tiles)
			tusB := fmin(totalTUs, tiles*fmax(1, math.Floor(totalTUs/tiles)))

			// ---- C: M-split across cores (data/spatial parallel) -----------
			// Splitting the spatial/batch dimension across cores needs halo
			// rows around every slice (Space-to-Batch keeps the halos small
			// but not free); the scheduler searches the core count that
			// balances parallelism against halo recompute.
			// Without Space-to-Batch only whole frames distribute;
			// with it, spatial slices parallelize too (at halo cost).
			coresMax := fmin(cores, batchF)
			if opt.SpaceToBatch {
				coresMax = fmin(cores, fmax(coresMax, math.Floor(mF/32)))
			}
			// Distinct frames split for free; only splits beyond the
			// batch dimension cut spatially and pay halos.
			coresM := 1.0
			bestT := math.Inf(1)
			for n := 1.0; n <= coresMax; n *= 2 {
				spatial := fmax(1, n/batchF)
				if t := math.Ceil(mF/n) * (1 + haloPerCore*(spatial-1)); t < bestT {
					bestT, coresM = t, n
				}
			}
			spatialM := fmax(1, coresM/batchF)
			mc := math.Ceil(mF/coresM) * (1 + haloPerCore*(spatialM-1))
			roundsC := math.Ceil(tiles / tuPerCore)
			compC := roundsC*(mc+bubble) + oneTime
			wb := 0.0
			if coresM > 1 {
				wb = kF * nF * mulBytes // weights replicate, one crossing
			}
			vuC := 0.0 // intra-core accumulation in the accumulator buffer
			nocC := wb / nocBPC
			energyC := kF * nF * mulBytes * (coresM - 1) * multicastShare
			tusC := fmin(tuPerCore, tiles) * coresM

			// Pick cheapest: cost = max(compute, noc) + noc*exposed + vu/4,
			// ties broken in A, B, C order exactly as the historical
			// candidate-slice scan did.
			mapName, compute, noc, vu := "n-split", compA, nocA, vuA
			nocEnergy, coresUsed, tus := energyA, coresA, tusA
			bestCost := fmax(compA, nocA) + nocA*nocExposed + vuA*0.25
			if cB := fmax(compB, nocB) + nocB*nocExposed + vuB*0.25; cB < bestCost {
				mapName, compute, noc, vu = "kn-split", compB, nocB, vuB
				nocEnergy, coresUsed, tus = energyB, coresB, tusB
				bestCost = cB
			}
			if cC := fmax(compC, nocC) + nocC*nocExposed + vuC*0.25; cC < bestCost {
				mapName, compute, noc, vu = "m-split", compC, nocC, vuC
				nocEnergy, coresUsed, tus = energyC, coresM, tusC
			}
			merge, bcast := 0.0, nocEnergy
			sm := compute * tus * x * x
			streamMACs += sm

			// Off-chip: stream weights when not resident; spill activations
			// exceeding the on-chip memory.
			var hbm float64
			layerHBM := 0.0
			if !weightsResident {
				layerHBM += kF * nF * mulBytes
			}
			actBytes := (mF*kF + mF*nF) * mulBytes
			if actBytes > memBytes*0.5 {
				layerHBM += actBytes - memBytes*0.5
			}
			hbm = layerHBM / hbmBPC

			// Bias + activation epilogues ride the per-TU output pipeline
			// (the TPU-style activation path is sized to the array drain
			// rate); only a sliver of cleanup work reaches the shared VU.
			vu += vops / lanes * 0.05

			overhead := launchCycles + syncPerCore*coresUsed +
				dispatchPerTile*tiles/fmax(coresUsed, 1) +
				hopCycles
			if opt.DoubleBuffer {
				cyc = fmax(compute, fmax(noc, hbm)) + noc*nocExposed + vu*0.25 + overhead
			} else {
				cyc = compute + noc + hbm + vu + overhead
			}

			// Traffic accounting for the runtime power model.
			mrd := mF*kF*mulBytes*fmin(nt, 4) + kF*nF*mulBytes
			mwr := mF * nF * mulBytes
			memRead += mrd
			memWrite += mwr
			nocBytes += merge + bcast
			hbmBytes += layerHBM
			if detail {
				res.Layers = append(res.Layers, LayerStat{
					Name: lv.name, Kind: lv.kind, Mapping: mapName,
					Cycles: cyc, ComputeCycles: compute, NoCCycles: noc,
					HBMCycles: hbm, VUCycles: vu, Overhead: overhead, MACs: macs,
					MemReadBytes: mrd, MemWriteBytes: mwr,
					NoCBytes: merge + bcast, HBMBytes: layerHBM, StreamMACs: sm,
				})
			}
		} else if lv.kind == graph.DepthwiseConv2D || lv.kind == graph.Pool || lv.kind == graph.GlobalPool {
			// Depthwise convolutions pack block-diagonally onto the tensor
			// units: each channel is an independent (M x k^2) x (k^2 x 1)
			// GEMM, so only floor(X/k^2) diagonal blocks of k^2 cells are
			// active per pass — array efficiency ~ 1/X. Smaller arrays
			// digest depthwise layers far better (part of why wimpy designs
			// score higher utilization on NasNet); it still beats the
			// vector unit by an order of magnitude.
			// Pooling layers ride the same path: an average pool is a
			// depthwise convolution with constant weights.
			kk := lv.kk
			work := macs
			if work == 0 {
				work = vops
			}
			compute := work / (totalTUs * x * x / kk)
			overhead := launchCycles + syncPerCore*cores*0.5
			cyc = compute + overhead
			// Imperfect row gating clocks ~2x the active cells.
			sm := compute * totalTUs * fmin(x*x*2/kk, x*x)
			streamMACs += sm
			mrd := lv.inBytes * batchF
			mwr := lv.outBytes * batchF
			memRead += mrd
			memWrite += mwr
			if detail {
				res.Layers = append(res.Layers, LayerStat{
					Name: lv.name, Kind: lv.kind, Mapping: "tu-depthwise",
					Cycles: cyc, ComputeCycles: compute, Overhead: overhead,
					MACs: macs, MemReadBytes: mrd, MemWriteBytes: mwr, StreamMACs: sm,
				})
			}
		} else {
			// Vector-mapped layer (pool, eltwise, softmax, ...). XLA-style
			// fusion folds most elementwise work into the producing matrix
			// op's output stream, so only ~a quarter of the lane time is
			// exposed, and fused ops skip the full launch cost.
			vu := vops / (lanes * 2 * 0.5) // dual-issue lanes, stride/halo efficiency
			overhead := launchCycles*0.3 + syncPerCore*cores*0.25
			cyc = vu*0.25 + overhead
			mrd := lv.inBytes * batchF
			mwr := lv.outBytes * batchF
			memRead += mrd
			memWrite += mwr
			if detail {
				res.Layers = append(res.Layers, LayerStat{
					Name: lv.name, Kind: lv.kind, Mapping: "vector",
					Cycles: cyc, VUCycles: vu, Overhead: overhead,
					MemReadBytes: mrd, MemWriteBytes: mwr,
				})
			}
		}
		totalVecOps += vops
		res.Cycles += cyc
		mLayers.Inc()
		if detail {
			_, lspan := obs.Start(ctx, "perfsim.layer")
			lspan.SetStr("layer", lv.name)
			lspan.SetStr("mapping", res.Layers[len(res.Layers)-1].Mapping)
			lspan.SetFloat("cycles", cyc)
			lspan.SetFloat("macs", macs)
			lspan.End()
		}
	}
	mSimulations.Inc()

	res.TimeSec = res.Cycles / c.ClockHz()
	res.LatencySec = res.TimeSec
	res.FPS = batchF / res.TimeSec
	ops := 2 * totalMACs
	res.AchievedTOPS = guard.CorruptFloat("perfsim.achieved_tops", ops/res.TimeSec/1e12)
	res.Utilization = res.AchievedTOPS / c.PeakTOPS()
	// Finite-check the headline metrics. The common all-finite case is
	// decided with plain comparisons (guard.CheckFinites boxes its variadic
	// float64 pairs into interfaces, which allocates); the guard call runs
	// only on failure so the returned error is byte-identical to the
	// historical path.
	if nonFinite(res.Cycles) || nonFinite(res.TimeSec) || nonFinite(res.FPS) ||
		nonFinite(res.AchievedTOPS) || nonFinite(res.Utilization) {
		ferr := guard.CheckFinites(
			"cycles", res.Cycles, "time_sec", res.TimeSec, "fps", res.FPS,
			"achieved_tops", res.AchievedTOPS, "utilization", res.Utilization,
		)
		return fmt.Errorf("perfsim: %s batch %d: %w", p.g.Name, batch, ferr)
	}

	// Padded/bubble cell-cycles carry zeros: they burn clock and control
	// but toggle little datapath (~30% of a live MAC).
	effectiveMACs := totalMACs + 0.3*fmax(0, streamMACs-totalMACs)
	act.TUMACsPerSec = effectiveMACs / res.TimeSec
	act.VUOpsPerSec = totalVecOps / res.TimeSec
	act.SUInstrPerSec = cores * c.ClockHz() * 0.10
	act.MemReadBytesPerSec = memRead / res.TimeSec
	act.MemWriteBytesPerSec = memWrite / res.TimeSec
	act.NoCBytesPerSec = nocBytes / res.TimeSec
	act.OffChipBytesPerSec = hbmBytes / res.TimeSec
	res.Activity = act
	return nil
}

func offChipGBps(c *chip.Chip) float64 {
	var total float64
	for _, p := range c.Periph {
		switch p.Cfg.Kind.String() {
		case "hbm", "ddr":
			total += p.Cfg.GBps
		}
	}
	return total
}

// LatencyLimitedBatch finds the largest power-of-two batch whose batch
// latency stays within the bound (the paper's "latency limited batch size",
// §III-B.2, with a 10 ms production SLO). It returns the batch and its
// simulation result; batch 1 is returned even if it misses the bound.
func LatencyLimitedBatch(c *chip.Chip, g *graph.Graph, latencyBound float64, opt Options) (int, *Result, error) {
	return LatencyLimitedBatchCtx(context.Background(), c, g, latencyBound, opt)
}

// LatencyLimitedBatchCtx is LatencyLimitedBatch threading a span context
// through the underlying simulations.
func LatencyLimitedBatchCtx(ctx context.Context, c *chip.Chip, g *graph.Graph, latencyBound float64, opt Options) (int, *Result, error) {
	best, bestRes, err := 1, (*Result)(nil), error(nil)
	r, err := SimulateCtx(ctx, c, g, 1, opt)
	if err != nil {
		return 0, nil, err
	}
	bestRes = r
	for b := 2; b <= 512; b *= 2 {
		r, err := SimulateCtx(ctx, c, g, b, opt)
		if err != nil {
			return 0, nil, err
		}
		if r.LatencySec > latencyBound {
			break
		}
		best, bestRes = b, r
	}
	return best, bestRes, err
}
