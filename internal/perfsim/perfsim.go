package perfsim

import (
	"context"
	"fmt"
	"math"

	"neurometer/internal/chip"
	"neurometer/internal/graph"
	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

// Observability: simulation and per-layer counters feed the obs default
// registry; spans record per-graph and per-layer wall time when tracing is
// enabled (no-ops otherwise).
var (
	mSimulations = obs.NewCounter("perfsim.simulations")
	mLayers      = obs.NewCounter("perfsim.layers_simulated")
)

// Options toggles the software optimizations (Fig. 7's "before/after").
type Options struct {
	// SpaceToDepth folds spatial positions into the reduction dimension for
	// early layers whose channel depth underfills the array rows.
	SpaceToDepth bool
	// SpaceToBatch splits large spatial extents across cores like extra
	// batch, avoiding whole-activation broadcasts.
	SpaceToBatch bool
	// DoubleBuffer overlaps weight loading and off-chip/NoC transfers with
	// compute.
	DoubleBuffer bool
}

// DefaultOptions enables everything (the paper's "after optimization").
func DefaultOptions() Options {
	return Options{SpaceToDepth: true, SpaceToBatch: true, DoubleBuffer: true}
}

// NoOptimizations is the "before" configuration of Fig. 7.
func NoOptimizations() Options { return Options{} }

// LayerStat records the simulated execution of one layer (for one batch).
type LayerStat struct {
	Name          string
	Kind          graph.OpKind
	Cycles        float64
	ComputeCycles float64
	NoCCycles     float64
	HBMCycles     float64
	VUCycles      float64
	Overhead      float64
	MACs          float64
	Mapping       string // "n-split" | "m-split" | "vector"
	// Per-layer traffic, for activity-trace generation.
	MemReadBytes  float64
	MemWriteBytes float64
	NoCBytes      float64
	HBMBytes      float64
	StreamMACs    float64
}

// Result is the outcome of simulating one batch through the graph.
type Result struct {
	Batch        int
	Cycles       float64
	TimeSec      float64
	LatencySec   float64 // == TimeSec (one batch in flight)
	FPS          float64
	AchievedTOPS float64
	Utilization  float64
	Activity     chip.Activity
	Layers       []LayerStat
}

// fixed per-layer costs: kernel launch/sequencing plus a per-core
// synchronization term — the scheduling overheads that penalize many-core
// chips at small batch.
const (
	launchCycles   = 1800.0
	syncPerCore    = 40.0
	multicastShare = 0.8 // mesh multicast saves a fifth of unicast traffic
	// dispatchPerTile is the scalar-unit sequencing cost (tile descriptor,
	// address calculation) per weight tile, serialized per core.
	dispatchPerTile = 8.0
	// nocExposed is the fraction of inter-core transfer time that cannot
	// hide behind compute even with double buffering (the first tile of
	// every dependency chain).
	nocExposed = 0.5
	// haloPerCore is the fractional recompute/transfer overhead each
	// additional core adds when the spatial dimension is split (halo rows
	// of the convolution window).
	haloPerCore = 0.08
)

// Simulate runs one batch of g through c.
func Simulate(c *chip.Chip, g *graph.Graph, batch int, opt Options) (*Result, error) {
	return SimulateCtx(context.Background(), c, g, batch, opt)
}

// SimulateCtx is Simulate with observability and robustness: it opens a
// span per graph (child of any span in ctx) and a child span per layer
// carrying the mapping decision and cycle breakdown. The ctx deadline is
// honored between layers (a canceled or expired ctx aborts the simulation
// with guard.ErrCanceled/ErrTimeout), and the headline result metrics are
// finite-checked before returning so NaN/Inf never escapes into sweeps.
func SimulateCtx(ctx context.Context, c *chip.Chip, g *graph.Graph, batch int, opt Options) (res *Result, err error) {
	defer guard.RecoverTo(&err)
	if c == nil {
		return nil, guard.Invalid("perfsim: nil chip")
	}
	if g == nil {
		return nil, guard.Invalid("perfsim: nil graph")
	}
	if batch <= 0 {
		return nil, guard.Invalid("perfsim: batch must be positive, got %d", batch)
	}
	if err := guard.Inject(ctx, "perfsim.simulate"); err != nil {
		return nil, err
	}
	ctx, span := obs.Start(ctx, "perfsim.simulate")
	defer span.End()
	span.SetStr("graph", g.Name)
	span.SetInt("batch", int64(batch))
	if err := g.Validate(); err != nil {
		return nil, guard.Invalid("perfsim: %v", err)
	}
	core := c.Core
	if core.TU == nil {
		return nil, guard.Invalid("perfsim: chip %q has no tensor units (RT chips use the sparse roofline model)", c.Cfg.Name)
	}

	x := float64(core.Cfg.TUCols)
	tuPerCore := float64(core.Cfg.NumTUs)
	cores := float64(c.Tiles())
	totalTUs := tuPerCore * cores
	lanes := float64(core.Cfg.VULanes) * cores
	mulBytes := float64(core.Cfg.TUDataType.Bits()) / 8
	accBytes := 4.0

	// Bandwidths in bytes per cycle.
	nocBPC := c.Cfg.NoCBisectionGBps * 1e9 / c.ClockHz()
	if nocBPC <= 0 || cores == 1 {
		nocBPC = math.Inf(1) // single core: no NoC crossing
	}
	hbmBPC := offChipGBps(c) * 1e9 / c.ClockHz()
	if hbmBPC <= 0 {
		hbmBPC = math.Inf(1)
	}
	memBytes := float64(0)
	if core.Mem != nil {
		memBytes = float64(core.Mem.CapacityBytes()) * cores
	}
	weightsResident := float64(g.Params()) <= memBytes*0.85

	res = &Result{Batch: batch}
	act := chip.Activity{ClockGateIdleFrac: 0.5}
	var totalMACs, totalVecOps float64
	// streamMACs counts cell-cycles actually clocked through the arrays,
	// including padded tiles and fill/drain bubbles: the energy-relevant
	// quantity (a 64x64 array computing a 10-row stripe still clocks all
	// 4096 cells). This is the mechanism behind the paper's observation
	// that runtime energy efficiency favors smaller arrays (§III-B.2).
	var streamMACs float64
	var memRead, memWrite, nocBytes, hbmBytes float64

	for _, l := range g.Layers {
		// Deadline check per layer: analytical layers are cheap, so this is
		// the granularity at which a per-candidate timeout can actually
		// interrupt a simulation.
		if err := guard.CtxErr(ctx); err != nil {
			return nil, err
		}
		if err := guard.Inject(ctx, "perfsim.layer"); err != nil {
			return nil, err
		}
		_, lspan := obs.Start(ctx, "perfsim.layer")
		st := LayerStat{Name: l.Name, Kind: l.Kind}
		macs := float64(l.MACs()) * float64(batch)
		vops := float64(l.VectorOps()) * float64(batch)
		totalMACs += macs

		if l.Kind.IsMatrixOp() {
			m0, k0, n0 := l.GEMM()
			mF, kF := float64(m0)*float64(batch), float64(k0)
			nF := float64(n0)

			// Space-to-Depth: fold spatial into depth when K underfills
			// the array (early convs: K = 27..147 vs X up to 256).
			if opt.SpaceToDepth && l.Kind == graph.Conv2D && kF < x/2 && mF >= 4 {
				fold := math.Min(4, math.Floor(x/kF))
				if fold >= 2 {
					kF *= fold
					mF = math.Ceil(mF / fold)
				}
			}

			kt := math.Ceil(kF / x)
			nt := math.Ceil(nF / x)
			tiles := kt * nt
			// Weight double buffering overlaps most of the tile switch, but
			// skewed refill still exposes ~half an array depth per round;
			// without it every round pays the full load + fill bubble.
			bubble := 3 * x // fill + drain + weight load, per round
			oneTime := 0.0
			if opt.DoubleBuffer {
				bubble = 2 * x // fill + drain; only the weight load overlaps
				oneTime = 0
			}

			// The scheduler evaluates three mappings and picks the fastest,
			// mirroring TF-Sim's "advanced runtime graph scheduling". Fill
			// and drain cost one array-depth bubble per tile round (draining
			// tile i overlaps filling tile i+1).
			type mapping struct {
				name      string
				compute   float64
				noc       float64 // bisection-crossing transfer cycles
				vu        float64
				nocEnergy float64 // bytes, replication included
				cores     float64
				tus       float64
			}
			var cands []mapping

			// ---- A: N-split across cores (no inter-core psum merging) ----
			// Each core owns a slice of the output channels; partial sums
			// accumulate locally (intra-core K-splits share the core's
			// accumulators through the VReg). Inter-core parallelism is
			// therefore capped by the N-tile count: with few output-channel
			// tiles, part of the chip idles — the reason small batches
			// cannot feed many brawny cores.
			{
				coresA := math.Min(cores, nt)
				ntc := math.Ceil(nt / coresA)
				roundsA := math.Ceil(ntc * kt / tuPerCore)
				cA := roundsA*(mF+bubble) + oneTime
				// Intra-core K-splits accumulate in the core's accumulator
				// buffer (the TPU pattern): no VU cost.
				vuA := 0.0
				bcastA := 0.0
				if coresA > 1 {
					bcastA = mF * kF * mulBytes // activations, one crossing
				}
				cands = append(cands, mapping{
					name: "n-split", compute: cA, noc: bcastA / nocBPC, vu: vuA,
					nocEnergy: mF * kF * mulBytes * (coresA - 1) * multicastShare,
					cores:     coresA,
					tus:       math.Min(coresA*tuPerCore, tiles),
				})
			}

			// ---- B: K+N split across cores (inter-core psum merging) ------
			{
				var cB float64
				if tiles >= totalTUs {
					cB = math.Ceil(tiles/totalTUs)*(mF+bubble) + oneTime
				} else {
					share := math.Floor(totalTUs / tiles)
					cB = math.Ceil(mF/share) + bubble + oneTime
				}
				kSplit := math.Min(kt, math.Max(1, math.Floor(totalTUs/nt)))
				coresK := math.Ceil(kSplit / tuPerCore)
				// Every K-split pair produces a full M x N partial-sum tensor
				// that must be summed; the cross-core fraction rides the NoC.
				mergeB := math.Max(0, kSplit-1) * mF * nF * accBytes *
					(coresK - 1) / math.Max(coresK, 1)
				bcastB := 0.0
				if math.Min(cores, tiles) > 1 {
					bcastB = mF * kF * mulBytes
				}
				vuB := math.Max(0, kSplit-1) * mF * nF / lanes
				cands = append(cands, mapping{
					name: "kn-split", compute: cB, noc: (mergeB + bcastB) / nocBPC, vu: vuB,
					nocEnergy: mergeB + mF*kF*mulBytes*(math.Min(cores, tiles)-1)*multicastShare,
					cores:     math.Min(cores, tiles),
					tus:       math.Min(totalTUs, tiles*math.Max(1, math.Floor(totalTUs/tiles))),
				})
			}

			// ---- C: M-split across cores (data/spatial parallel) -----------
			// Splitting the spatial/batch dimension across cores needs halo
			// rows around every slice (Space-to-Batch keeps the halos small
			// but not free); the scheduler searches the core count that
			// balances parallelism against halo recompute.
			{
				// Without Space-to-Batch only whole frames distribute;
				// with it, spatial slices parallelize too (at halo cost).
				coresMax := math.Min(cores, float64(batch))
				if opt.SpaceToBatch {
					coresMax = math.Min(cores, math.Max(coresMax, math.Floor(mF/32)))
				}
				// Distinct frames split for free; only splits beyond the
				// batch dimension cut spatially and pay halos.
				halo := func(n float64) float64 {
					spatial := math.Max(1, n/float64(batch))
					return 1 + haloPerCore*(spatial-1)
				}
				coresM := 1.0
				bestC := math.Inf(1)
				for n := 1.0; n <= coresMax; n *= 2 {
					if t := math.Ceil(mF/n) * halo(n); t < bestC {
						bestC, coresM = t, n
					}
				}
				mc := math.Ceil(mF/coresM) * halo(coresM)
				roundsC := math.Ceil(tiles / tuPerCore)
				cC := roundsC*(mc+bubble) + oneTime
				wb := 0.0
				if coresM > 1 {
					wb = kF * nF * mulBytes // weights replicate, one crossing
				}
				vuC := 0.0 // intra-core accumulation in the accumulator buffer
				cands = append(cands, mapping{
					name: "m-split", compute: cC, noc: wb / nocBPC, vu: vuC,
					nocEnergy: kF * nF * mulBytes * (coresM - 1) * multicastShare,
					cores:     coresM,
					tus:       math.Min(tuPerCore, tiles) * coresM,
				})
			}

			best := cands[0]
			cost := func(m mapping) float64 {
				return math.Max(m.compute, m.noc) + m.noc*nocExposed + m.vu*0.25
			}
			for _, m := range cands[1:] {
				if cost(m) < cost(best) {
					best = m
				}
			}
			st.Mapping = best.name
			compute, noc, vu := best.compute, best.noc, best.vu
			merge, bcast := 0.0, best.nocEnergy
			coresUsed := best.cores
			streamMACs += compute * best.tus * x * x

			// Off-chip: stream weights when not resident; spill activations
			// exceeding the on-chip memory.
			var hbm float64
			layerHBM := 0.0
			if !weightsResident {
				layerHBM += kF * nF * mulBytes
			}
			actBytes := (mF*kF + mF*nF) * mulBytes
			if actBytes > memBytes*0.5 {
				layerHBM += actBytes - memBytes*0.5
			}
			hbm = layerHBM / hbmBPC

			// Bias + activation epilogues ride the per-TU output pipeline
			// (the TPU-style activation path is sized to the array drain
			// rate); only a sliver of cleanup work reaches the shared VU.
			vu += vops / lanes * 0.05

			overhead := launchCycles + syncPerCore*coresUsed +
				dispatchPerTile*tiles/math.Max(coresUsed, 1) +
				c.NoC.AvgHops()*c.NoC.HopLatencyCycles()
			var cyc float64
			if opt.DoubleBuffer {
				cyc = math.Max(compute, math.Max(noc, hbm)) + noc*nocExposed + vu*0.25 + overhead
			} else {
				cyc = compute + noc + hbm + vu + overhead
			}
			st.ComputeCycles, st.NoCCycles, st.HBMCycles, st.VUCycles = compute, noc, hbm, vu
			st.Overhead = overhead
			st.Cycles = cyc
			st.MACs = macs

			// Traffic accounting for the runtime power model.
			st.MemReadBytes = mF*kF*mulBytes*math.Min(nt, 4) + kF*nF*mulBytes
			st.MemWriteBytes = mF * nF * mulBytes
			st.NoCBytes = merge + bcast
			st.HBMBytes = layerHBM
			st.StreamMACs = compute * best.tus * x * x
			memRead += st.MemReadBytes
			memWrite += st.MemWriteBytes
			nocBytes += st.NoCBytes
			hbmBytes += st.HBMBytes
		} else if l.Kind == graph.DepthwiseConv2D || l.Kind == graph.Pool || l.Kind == graph.GlobalPool {
			// Depthwise convolutions pack block-diagonally onto the tensor
			// units: each channel is an independent (M x k^2) x (k^2 x 1)
			// GEMM, so only floor(X/k^2) diagonal blocks of k^2 cells are
			// active per pass — array efficiency ~ 1/X. Smaller arrays
			// digest depthwise layers far better (part of why wimpy designs
			// score higher utilization on NasNet); it still beats the
			// vector unit by an order of magnitude.
			// Pooling layers ride the same path: an average pool is a
			// depthwise convolution with constant weights.
			st.Mapping = "tu-depthwise"
			kk := math.Max(1, float64(l.KH*l.KW))
			if l.Kind == graph.GlobalPool {
				kk = math.Min(float64(l.InH*l.InW), 64)
			}
			work := macs
			if work == 0 {
				work = vops
			}
			compute := work / (totalTUs * x * x / kk)
			overhead := launchCycles + syncPerCore*cores*0.5
			st.ComputeCycles = compute
			st.Overhead = overhead
			st.Cycles = compute + overhead
			st.MACs = macs
			// Imperfect row gating clocks ~2x the active cells.
			st.StreamMACs = compute * totalTUs * math.Min(x*x*2/kk, x*x)
			streamMACs += st.StreamMACs
			st.MemReadBytes = float64(l.InBytes()) * float64(batch)
			st.MemWriteBytes = float64(l.OutBytes()) * float64(batch)
			memRead += st.MemReadBytes
			memWrite += st.MemWriteBytes
		} else {
			// Vector-mapped layer (pool, eltwise, softmax, ...). XLA-style
			// fusion folds most elementwise work into the producing matrix
			// op's output stream, so only ~a quarter of the lane time is
			// exposed, and fused ops skip the full launch cost.
			st.Mapping = "vector"
			vu := vops / (lanes * 2 * 0.5) // dual-issue lanes, stride/halo efficiency
			overhead := launchCycles*0.3 + syncPerCore*cores*0.25
			st.VUCycles = vu
			st.Overhead = overhead
			st.Cycles = vu*0.25 + overhead
			st.MemReadBytes = float64(l.InBytes()) * float64(batch)
			st.MemWriteBytes = float64(l.OutBytes()) * float64(batch)
			memRead += st.MemReadBytes
			memWrite += st.MemWriteBytes
		}
		totalVecOps += vops
		res.Cycles += st.Cycles
		res.Layers = append(res.Layers, st)
		mLayers.Inc()
		lspan.SetStr("layer", l.Name)
		lspan.SetStr("mapping", st.Mapping)
		lspan.SetFloat("cycles", st.Cycles)
		lspan.SetFloat("macs", st.MACs)
		lspan.End()
	}
	mSimulations.Inc()

	res.TimeSec = res.Cycles / c.ClockHz()
	res.LatencySec = res.TimeSec
	res.FPS = float64(batch) / res.TimeSec
	ops := 2 * totalMACs
	res.AchievedTOPS = guard.CorruptFloat("perfsim.achieved_tops", ops/res.TimeSec/1e12)
	res.Utilization = res.AchievedTOPS / c.PeakTOPS()
	if ferr := guard.CheckFinites(
		"cycles", res.Cycles, "time_sec", res.TimeSec, "fps", res.FPS,
		"achieved_tops", res.AchievedTOPS, "utilization", res.Utilization,
	); ferr != nil {
		return nil, fmt.Errorf("perfsim: %s batch %d: %w", g.Name, batch, ferr)
	}

	// Padded/bubble cell-cycles carry zeros: they burn clock and control
	// but toggle little datapath (~30% of a live MAC).
	effectiveMACs := totalMACs + 0.3*math.Max(0, streamMACs-totalMACs)
	act.TUMACsPerSec = effectiveMACs / res.TimeSec
	act.VUOpsPerSec = totalVecOps / res.TimeSec
	act.SUInstrPerSec = cores * c.ClockHz() * 0.10
	act.MemReadBytesPerSec = memRead / res.TimeSec
	act.MemWriteBytesPerSec = memWrite / res.TimeSec
	act.NoCBytesPerSec = nocBytes / res.TimeSec
	act.OffChipBytesPerSec = hbmBytes / res.TimeSec
	res.Activity = act
	return res, nil
}

func offChipGBps(c *chip.Chip) float64 {
	var total float64
	for _, p := range c.Periph {
		switch p.Cfg.Kind.String() {
		case "hbm", "ddr":
			total += p.Cfg.GBps
		}
	}
	return total
}

// LatencyLimitedBatch finds the largest power-of-two batch whose batch
// latency stays within the bound (the paper's "latency limited batch size",
// §III-B.2, with a 10 ms production SLO). It returns the batch and its
// simulation result; batch 1 is returned even if it misses the bound.
func LatencyLimitedBatch(c *chip.Chip, g *graph.Graph, latencyBound float64, opt Options) (int, *Result, error) {
	return LatencyLimitedBatchCtx(context.Background(), c, g, latencyBound, opt)
}

// LatencyLimitedBatchCtx is LatencyLimitedBatch threading a span context
// through the underlying simulations.
func LatencyLimitedBatchCtx(ctx context.Context, c *chip.Chip, g *graph.Graph, latencyBound float64, opt Options) (int, *Result, error) {
	best, bestRes, err := 1, (*Result)(nil), error(nil)
	r, err := SimulateCtx(ctx, c, g, 1, opt)
	if err != nil {
		return 0, nil, err
	}
	bestRes = r
	for b := 2; b <= 512; b *= 2 {
		r, err := SimulateCtx(ctx, c, g, b, opt)
		if err != nil {
			return 0, nil, err
		}
		if r.LatencySec > latencyBound {
			break
		}
		best, bestRes = b, r
	}
	return best, bestRes, err
}
