package perfsim

import (
	"fmt"
	"strings"
)

// LayersCSV renders the per-layer statistics as CSV — the interchange
// format for plotting scripts and for debugging mapping decisions (which
// layers went n-split vs m-split, where the NoC or HBM bound).
func (r *Result) LayersCSV() string {
	var sb strings.Builder
	sb.WriteString("layer,kind,mapping,cycles,compute,noc,hbm,vu,overhead,macs\n")
	for _, l := range r.Layers {
		fmt.Fprintf(&sb, "%s,%s,%s,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f\n",
			l.Name, l.Kind, l.Mapping, l.Cycles, l.ComputeCycles, l.NoCCycles,
			l.HBMCycles, l.VUCycles, l.Overhead, l.MACs)
	}
	return sb.String()
}

// Summary renders the headline quantities in one line.
func (r *Result) Summary() string {
	return fmt.Sprintf("batch=%d time=%.3fms fps=%.1f achieved=%.2fTOPS util=%.1f%%",
		r.Batch, r.TimeSec*1e3, r.FPS, r.AchievedTOPS, r.Utilization*100)
}
