package perfsim

import (
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"
)

// LayersCSVFormatVersion identifies the LayersCSV schema. Bump it whenever
// layersCSVHeader changes so downstream plotting scripts can detect drift.
const LayersCSVFormatVersion = 2

// layersCSVHeader is the stable column order of LayersCSV. Append-only:
// existing columns must not be renamed or reordered within a format
// version.
var layersCSVHeader = []string{
	"layer", "kind", "mapping", "cycles", "compute", "noc", "hbm", "vu", "overhead", "macs",
}

// LayersCSV renders the per-layer statistics as CSV — the interchange
// format for plotting scripts and for debugging mapping decisions (which
// layers went n-split vs m-split, where the NoC or HBM bound). Fields are
// quoted per RFC 4180 by encoding/csv, so layer names containing commas or
// quotes round-trip safely.
func (r *Result) LayersCSV() string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	w.Write(layersCSVHeader)
	for _, l := range r.Layers {
		w.Write([]string{
			l.Name,
			l.Kind.String(),
			l.Mapping,
			cell(l.Cycles),
			cell(l.ComputeCycles),
			cell(l.NoCCycles),
			cell(l.HBMCycles),
			cell(l.VUCycles),
			cell(l.Overhead),
			cell(l.MACs),
		})
	}
	w.Flush()
	return sb.String()
}

func cell(v float64) string { return strconv.FormatFloat(v, 'f', 0, 64) }

// Summary renders the headline quantities in one line.
func (r *Result) Summary() string {
	return fmt.Sprintf("batch=%d time=%.3fms fps=%.1f achieved=%.2fTOPS util=%.1f%%",
		r.Batch, r.TimeSec*1e3, r.FPS, r.AchievedTOPS, r.Utilization*100)
}
