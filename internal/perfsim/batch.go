package perfsim

import (
	"context"
	"sync"

	"neurometer/internal/chip"
	"neurometer/internal/graph"
	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

// Batch evaluation: the design-space engine asks one question many times —
// "this workload, this batch, these N candidate chips" — and the historical
// answer (N calls to SimulateCtx) re-validated the graph, rebuilt the
// per-layer table, and allocated a fresh Result and layer slice for every
// candidate. SimulateBatch prepares the workload once, runs the same
// closed forms over each chip, and reuses pooled result scratch, so the
// steady state allocates nothing per candidate (asserted by
// TestSimulateBatchZeroAllocs). Headline metrics are bit-identical to
// per-candidate SimulateCtx calls.

var mBatchSims = obs.NewCounter("perfsim.batch_simulations")

// BatchResult holds the outcomes of one SimulateBatch call. Results[i] and
// Errs[i] correspond to chips[i]: exactly one of them is meaningful
// (Errs[i] == nil means Results[i] is valid). Batch results carry headline
// metrics and Activity only — per-layer stats are a single-candidate
// feature; use SimulateCtx when Layers matter.
//
// A BatchResult comes from an internal sync.Pool. Call Release when done to
// return the scratch for reuse; after Release the Results slice must not be
// touched. Copy out anything that must outlive the batch (Result is a value
// type once Layers is empty, so a plain assignment suffices).
type BatchResult struct {
	Results []Result
	Errs    []error
}

// Failed reports how many candidates in the batch returned an error.
func (br *BatchResult) Failed() int {
	n := 0
	for _, e := range br.Errs {
		if e != nil {
			n++
		}
	}
	return n
}

// Release returns the BatchResult's scratch to the pool. Safe on nil.
func (br *BatchResult) Release() {
	if br == nil {
		return
	}
	batchPool.Put(br)
}

var batchPool sync.Pool

// acquireBatch fetches pooled scratch sized for n candidates. Reused
// Results keep their backing arrays; every slot is fully overwritten by
// simulateInto before it is visible to the caller, and Errs is cleared
// here, so no state leaks between batches.
func acquireBatch(n int) *BatchResult {
	br, _ := batchPool.Get().(*BatchResult)
	if br == nil {
		br = &BatchResult{}
	}
	if cap(br.Results) < n || cap(br.Errs) < n {
		br.Results = make([]Result, n)
		br.Errs = make([]error, n)
		return br
	}
	br.Results = br.Results[:n]
	br.Errs = br.Errs[:n]
	for i := range br.Errs {
		br.Errs[i] = nil
	}
	return br
}

// SimulateBatch evaluates one workload at one batch size across many
// candidate chips, preparing the graph once. See (*Prepared).SimulateBatch
// for the full contract; use that method directly when the same workload is
// batched repeatedly.
func SimulateBatch(ctx context.Context, g *graph.Graph, batch int, opt Options, chips []*chip.Chip) (*BatchResult, error) {
	p, err := Prepare(g)
	if err != nil {
		return nil, err
	}
	return p.SimulateBatch(ctx, batch, opt, chips)
}

// SimulateBatch evaluates every chip in chips against the prepared
// workload. Candidate failures (nil chip, no tensor units, injected fault,
// non-finite metrics, panic) land in Errs[i] and do not disturb the other
// candidates; only batch-level problems (invalid batch, empty chip list,
// canceled ctx) fail the whole call. The ctx is checked between candidates
// and between layers, exactly like SimulateCtx.
//
// The returned BatchResult is pooled scratch — Release it when done.
func (p *Prepared) SimulateBatch(ctx context.Context, batch int, opt Options, chips []*chip.Chip) (*BatchResult, error) {
	if batch <= 0 {
		return nil, guard.Invalid("perfsim: batch must be positive, got %d", batch)
	}
	if len(chips) == 0 {
		return nil, guard.Invalid("perfsim: simulate batch: no candidate chips")
	}
	ctx, span := obs.Start(ctx, "perfsim.simulate_batch")
	defer span.End()
	span.SetStr("graph", p.g.Name)
	span.SetInt("batch", int64(batch))
	span.SetInt("candidates", int64(len(chips)))
	br := acquireBatch(len(chips))
	for i, c := range chips {
		if err := guard.CtxErr(ctx); err != nil {
			br.Release()
			return nil, err
		}
		br.Errs[i] = p.SimulateInto(ctx, c, batch, opt, &br.Results[i])
	}
	mBatchSims.Inc()
	return br, nil
}

// SimulateInto runs one prepared simulation into caller-owned scratch,
// fully overwriting *res (the Layers backing array is reused but left
// empty — per-layer stats are not recorded on this path). It allocates
// nothing in the steady state and produces headline metrics bit-identical
// to SimulateCtx. res must not be nil.
func (p *Prepared) SimulateInto(ctx context.Context, c *chip.Chip, batch int, opt Options, res *Result) error {
	if c == nil {
		return guard.Invalid("perfsim: nil chip")
	}
	if batch <= 0 {
		return guard.Invalid("perfsim: batch must be positive, got %d", batch)
	}
	if err := guard.Inject(ctx, "perfsim.simulate"); err != nil {
		return err
	}
	return simulateInto(ctx, c, p, batch, opt, res, false)
}

// LatencyLimitedInto is the prepared, scratch-reusing analogue of
// LatencyLimitedBatchCtx: it finds the largest power-of-two batch whose
// latency stays within the bound, double-buffering between the two
// caller-owned Results a and b. It returns the chosen batch size and
// whichever of a/b holds its simulation; the other Result holds the
// first-over-bound probe and should be treated as garbage.
func (p *Prepared) LatencyLimitedInto(ctx context.Context, c *chip.Chip, latencyBound float64, opt Options, a, b *Result) (int, *Result, error) {
	if err := p.SimulateInto(ctx, c, 1, opt, a); err != nil {
		return 0, nil, err
	}
	best, bestRes, spare := 1, a, b
	for bs := 2; bs <= 512; bs *= 2 {
		if err := p.SimulateInto(ctx, c, bs, opt, spare); err != nil {
			return 0, nil, err
		}
		if spare.LatencySec > latencyBound {
			break
		}
		best, bestRes, spare = bs, spare, bestRes
	}
	return best, bestRes, nil
}
