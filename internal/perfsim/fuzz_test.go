package perfsim

import (
	"math"
	"testing"

	"neurometer/internal/chip"
	"neurometer/internal/maclib"
	"neurometer/internal/periph"
	"neurometer/internal/workloads"
)

// FuzzPerfsimOptions drives Simulate across arbitrary batch sizes, option
// combinations, and chip shapes: no input may panic, and every successful
// simulation must report finite cycles/TOPS/utilization. The chip builds
// are cached per shape so the fuzzer spends its time in the simulator.
func FuzzPerfsimOptions(f *testing.F) {
	f.Add(1, true, true, true, 64, 2)
	f.Add(8, false, false, false, 8, 4)
	f.Add(256, true, false, true, 128, 1)
	f.Add(0, false, true, false, 64, 2)
	f.Add(-3, true, true, false, 32, 2)
	f.Add(1<<20, false, false, true, 16, 1)

	g, err := workloads.ByName("alexnet")
	if err != nil {
		f.Fatal(err)
	}
	chips := map[[2]int]*chip.Chip{}
	build := func(x, n int) *chip.Chip {
		if c, ok := chips[[2]int{x, n}]; ok {
			return c
		}
		c, _ := chip.Build(chip.Config{
			Name: "fuzz", TechNM: 28, ClockHz: 700e6, Tx: 2, Ty: 2,
			Core: chip.CoreConfig{
				NumTUs: n, TURows: x, TUCols: x,
				TUDataType: maclib.Int8, HasSU: true,
				Mem: []chip.MemSegment{{Name: "spad", CapacityBytes: 4 << 20}},
			},
			NoCBisectionGBps: 256,
			OffChip:          []chip.OffChipPort{{Kind: periph.HBMPort, GBps: 700}},
		})
		chips[[2]int{x, n}] = c // nil for infeasible shapes: also a fuzz input
		return c
	}

	f.Fuzz(func(t *testing.T, batch int, s2d, s2b, dbuf bool, xRaw, nRaw int) {
		x := []int{8, 16, 32, 64, 128}[abs(xRaw)%5]
		n := []int{1, 2, 4}[abs(nRaw)%3]
		opt := Options{SpaceToDepth: s2d, SpaceToBatch: s2b, DoubleBuffer: dbuf}
		res, err := Simulate(build(x, n), g, batch, opt) // must never panic
		if err != nil {
			return
		}
		for name, v := range map[string]float64{
			"cycles": res.Cycles, "time": res.TimeSec, "fps": res.FPS,
			"tops": res.AchievedTOPS, "util": res.Utilization,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("simulation reports non-finite %s: %g (batch=%d x=%d n=%d opt=%+v)",
					name, v, batch, x, n, opt)
			}
		}
	})
}

func abs(v int) int {
	if v < 0 {
		if v == math.MinInt {
			return 0
		}
		return -v
	}
	return v
}
