package perfsim

import "neurometer/internal/chip"

// ActivityTrace converts the per-layer simulation into a runtime activity
// trace: one interval per layer with that layer's own component rates. Fed
// to chip.RuntimeTrace it yields the power profile of the workload — the
// complete Fig. 1 loop (performance simulation -> runtime statistics ->
// runtime power) at layer granularity.
func (r *Result) ActivityTrace(c *chip.Chip) []chip.TraceSample {
	var out []chip.TraceSample
	cores := float64(c.Tiles())
	for _, l := range r.Layers {
		if l.Cycles <= 0 {
			continue
		}
		dur := l.Cycles / c.ClockHz()
		useful := l.MACs
		stream := useful + 0.3*maxF(0, l.StreamMACs-useful)
		act := chip.Activity{
			TUMACsPerSec:        stream / dur,
			VUOpsPerSec:         l.VUCycles * float64(c.Core.Cfg.VULanes) * cores / l.Cycles * c.ClockHz(),
			SUInstrPerSec:       cores * c.ClockHz() * 0.10,
			MemReadBytesPerSec:  l.MemReadBytes / dur,
			MemWriteBytesPerSec: l.MemWriteBytes / dur,
			NoCBytesPerSec:      l.NoCBytes / dur,
			OffChipBytesPerSec:  l.HBMBytes / dur,
			ClockGateIdleFrac:   0.5,
		}
		out = append(out, chip.TraceSample{DurationSec: dur, Activity: act})
	}
	return out
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
