package dse

import (
	"context"
	"sort"

	"neurometer/internal/graph"
	"neurometer/internal/guard"
	"neurometer/internal/perfsim"
	"neurometer/internal/workloads"
)

// Study is the job-facing handle over a runtime study: a serving layer (or
// any outer search loop driving NeuroMeter as an evaluation oracle) accepts
// a StudySpec over the wire, materializes it once into a deterministic
// candidate list, and gets a stable fingerprint that doubles as an
// idempotent job identity — two requests describing the same study resolve
// to the same fingerprint, the same checkpoint file, and byte-identical
// output.

// StudySpec describes a runtime study as pure data.
type StudySpec struct {
	// Constraints bounds the enumerated design space (TableI() for the
	// paper's datacenter sweep).
	Constraints Constraints
	// Full evaluates the whole feasible set; the default false reduces it
	// to the Fig. 8 frontier first (the cmd/dse default).
	Full bool
	// Spec selects the batch regime.
	Spec BatchSpec
	// Opt toggles the software optimizations.
	Opt perfsim.Options
	// Models names the workloads (workloads.ByName); empty = the full
	// Table II set.
	Models []string
}

// Study is a materialized, runnable StudySpec.
type Study struct {
	spec        StudySpec
	cands       []Candidate
	models      []*graph.Graph
	fingerprint string
}

// NewStudy resolves a spec into a runnable study: workloads are looked up
// by name, the design space is enumerated and reduced exactly as cmd/dse
// -fig 10 does (frontier unless Full, then second-round pruning, then the
// peak-TOPS-descending presentation order), and the study fingerprint is
// derived from the surviving candidate list. Unknown workload names and
// empty candidate sets fail with guard taxonomy errors so callers can map
// them to 400/422 directly.
func NewStudy(ctx context.Context, spec StudySpec) (*Study, error) {
	models := workloads.All()
	if len(spec.Models) > 0 {
		models = models[:0:0]
		for _, name := range spec.Models {
			g, err := workloads.ByName(name)
			if err != nil {
				return nil, guard.Invalid("dse: study: %v", err)
			}
			models = append(models, g)
		}
	}
	cands := EnumerateCtx(ctx, spec.Constraints)
	if err := guard.CtxErr(ctx); err != nil {
		return nil, err
	}
	if !spec.Full {
		cands = Frontier(cands, spec.Constraints.TOPSCap)
	}
	cands = SecondRound(cands, spec.Constraints.TOPSCap)
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.PeakTOPS != b.PeakTOPS {
			return a.PeakTOPS > b.PeakTOPS
		}
		return a.Point.X > b.Point.X
	})
	if len(cands) == 0 {
		return nil, guard.Infeasible("dse: study: no feasible candidates under the constraints")
	}
	return &Study{
		spec:        spec,
		cands:       cands,
		models:      models,
		fingerprint: StudyFingerprint(cands, models, spec.Spec, spec.Opt),
	}, nil
}

// Fingerprint identifies the study: everything that determines its output.
// Equal fingerprints mean interchangeable studies (and shareable
// checkpoints); the serving layer hashes it into the job ID.
func (s *Study) Fingerprint() string { return s.fingerprint }

// NumCandidates reports how many design points the study will evaluate.
func (s *Study) NumCandidates() int { return len(s.cands) }

// Run executes the study under the hardening envelope. A non-empty
// checkpointPath arms (or resumes) the checkpoint at that path, keyed by
// the study fingerprint — h.Checkpoint is overwritten in that case. An
// interrupted run (canceled ctx) returns the rows completed so far with the
// classified cause; because outcomes land in the checkpoint as they
// complete, rerunning with the same path resumes instead of recomputing and
// yields byte-identical rows to an uninterrupted run.
func (s *Study) Run(ctx context.Context, h Hardening, checkpointPath string) ([]RuntimeRow, error) {
	if checkpointPath != "" {
		ck, err := OpenCheckpoint(checkpointPath, s.fingerprint)
		if err != nil {
			return nil, err
		}
		h.Checkpoint = ck
	}
	return RuntimeStudyHardened(ctx, s.cands, s.models, s.spec.Spec, s.spec.Opt, h)
}
