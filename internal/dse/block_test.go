package dse

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"neurometer/internal/guard"
)

// Block-claiming determinism: the BlockSize knob changes only which worker
// evaluates which candidate, so every observable artifact — table, CSV,
// checkpoint bytes — must be byte-identical at any (workers, block)
// combination. Run under -race these tests also prove block claiming and
// the shared studySim/scratch pool are race-free.

func TestResolveBlock(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-1, DefaultBlockSize}, {0, DefaultBlockSize}, {1, 1}, {7, 7}, {1000, 1000},
	} {
		if got := resolveBlock(tc.in); got != tc.want {
			t.Errorf("resolveBlock(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRuntimeStudyBlockSizesByteIdentical(t *testing.T) {
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)
	fp := StudyFingerprint(cands, models, spec, opt)
	dir := t.TempDir()

	run := func(name string, workers, block int) (table, csv string, ckpt []byte) {
		path := filepath.Join(dir, name+".ckpt")
		ck, err := OpenCheckpoint(path, fp)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt,
			Hardening{Workers: workers, BlockSize: block, Checkpoint: ck})
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return FormatRuntimeRows(rows), RuntimeRowsCSV(rows), b
	}

	wantTable, wantCSV, wantCkpt := run("ref", 1, 1)
	for _, workers := range []int{1, 8} {
		for _, block := range []int{1, 7, 64} {
			if workers == 1 && block == 1 {
				continue // the reference itself
			}
			name := "w" + string(rune('0'+workers)) + "b" + string(rune('0'+block%10))
			table, csv, ckpt := run(name, workers, block)
			if table != wantTable {
				t.Errorf("workers=%d block=%d: table differs from serial block-1 reference:\n--- want\n%s\n--- got\n%s",
					workers, block, wantTable, table)
			}
			if csv != wantCSV {
				t.Errorf("workers=%d block=%d: CSV differs from serial block-1 reference",
					workers, block)
			}
			if string(ckpt) != string(wantCkpt) {
				t.Errorf("workers=%d block=%d: checkpoint bytes differ from serial block-1 reference",
					workers, block)
			}
		}
	}
}

// TestRuntimeStudyMidBlockLayerFault injects one per-layer simulator fault
// into a parallel block-claiming study: exactly one candidate fails mid-
// block, the failure classifies correctly, and every other candidate's row
// is delivered untouched — a faulted block never poisons its neighbors'
// shared scratch or prepared tables.
func TestRuntimeStudyMidBlockLayerFault(t *testing.T) {
	defer guard.DisarmAll()
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)

	boom := errors.New("mid-block layer fault")
	disarm := guard.Arm("perfsim.layer", guard.Fault{Skip: 3, Count: 1, Err: boom})
	rows, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt,
		Hardening{Workers: 8, BlockSize: 7})
	disarm()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cands)-1 {
		t.Fatalf("got %d rows, want %d (one candidate sacrificed to the injected fault)",
			len(rows), len(cands)-1)
	}

	// The surviving rows must be byte-identical to the corresponding rows of
	// a clean serial run: drop the one missing point and compare.
	clean, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt, Hardening{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	have := map[Point]bool{}
	for _, r := range rows {
		have[r.Point] = true
	}
	var kept []RuntimeRow
	for _, r := range clean {
		if have[r.Point] {
			kept = append(kept, r)
		}
	}
	if RuntimeRowsCSV(kept) != RuntimeRowsCSV(rows) {
		t.Fatalf("surviving rows differ from clean run:\n--- clean\n%s\n--- faulted\n%s",
			RuntimeRowsCSV(kept), RuntimeRowsCSV(rows))
	}
}
