package dse

import (
	"fmt"

	"neurometer/internal/chip"
	"neurometer/internal/maclib"
	"neurometer/internal/perfsim"
	"neurometer/internal/periph"
	"neurometer/internal/workloads"
)

// The paper's introduction motivates accelerators "ranging from cloud to
// edge devices"; its case study covers the datacenter end and validates the
// edge end against Eyeriss. This file adds the corresponding edge-side
// design-space sweep: mobile budgets (tens of mm^2, a couple of watts,
// LPDDR-class bandwidth, sub-megabyte memories) over the same (X, N)
// brawny-wimpy axis with single-digit core counts.

// EdgeConstraints returns a mobile/edge inference environment: 28nm low
// clock, 16 mm^2 / 2 W budgets, 2 MB of on-chip memory and 12.8 GB/s of
// LPDDR bandwidth.
func EdgeConstraints() Constraints {
	return Constraints{
		TechNM:        28,
		ClockHz:       400e6,
		AreaBudgetMM2: 16,
		PowerBudgetW:  2,
		TOPSCap:       4,
		MemBytes:      2 << 20,
		NoCBisectGBps: 16,
		OffChipGBps:   12.8,
		XChoices:      []int{8, 16, 32, 64},
		NChoices:      []int{1, 2},
		MaxTiles:      4,
	}
}

// edgeConfig adapts the datacenter template to the edge environment: DDR
// instead of HBM, no scalar core on single-tile designs (top-level control
// suffices, as in Eyeriss).
func edgeConfig(cs Constraints, p Point) chip.Config {
	cfg := chip.Config{
		Name: "edge" + p.String(), TechNM: cs.TechNM, ClockHz: cs.ClockHz,
		Tx: p.Tx, Ty: p.Ty,
		Core: chip.CoreConfig{
			NumTUs: p.N, TURows: p.X, TUCols: p.X, TUDataType: maclib.Int8,
			HasSU: p.Tiles() > 1,
			Mem: []chip.MemSegment{{
				Name: "spad", CapacityBytes: cs.MemBytes / int64(p.Tiles()),
			}},
		},
		NoCBisectionGBps: cs.NoCBisectGBps,
		OffChip:          []chip.OffChipPort{{Kind: periph.LPDDRPort, GBps: cs.OffChipGBps}},
		AreaBudgetMM2:    cs.AreaBudgetMM2,
		PowerBudgetW:     cs.PowerBudgetW,
	}
	return cfg
}

// EdgeRow is one edge design point with its batch-1 runtimes (the edge
// regime is always latency-critical single-image inference). MobileNet is
// the canonical edge model; ResNet-50 is the heavyweight reference.
type EdgeRow struct {
	Point       Point
	PeakTOPS    float64
	AreaMM2     float64
	TDPW        float64
	LatencyMS   float64 // ResNet-50
	FPS         float64
	PowerW      float64
	FPSPerWatt  float64
	Utilization float64
	// MobileNet single-image numbers.
	MobileLatencyMS  float64
	MobileFPS        float64
	MobileFPSPerWatt float64
}

// EdgeStudy sweeps the edge space and simulates single-image ResNet-50
// inference on every feasible point.
func EdgeStudy() ([]EdgeRow, error) {
	cs := EdgeConstraints()
	resnet := DefaultModels()[0]
	mobilenet, err := workloads.ByName("mobilenet")
	if err != nil {
		return nil, err
	}
	var rows []EdgeRow
	for _, x := range cs.XChoices {
		for _, n := range cs.NChoices {
			for _, g := range gridShapes(cs.MaxTiles) {
				p := Point{X: x, N: n, Tx: g[0], Ty: g[1]}
				peak := 2 * float64(x*x*n*p.Tiles()) * cs.ClockHz / 1e12
				if peak > cs.TOPSCap {
					continue
				}
				c, err := chip.BuildCached(edgeConfig(cs, p))
				if err != nil {
					continue // over budget
				}
				res, err := perfsim.Simulate(c, resnet, 1, perfsim.DefaultOptions())
				if err != nil {
					return nil, fmt.Errorf("dse: edge %s: %w", p, err)
				}
				mob, err := perfsim.Simulate(c, mobilenet, 1, perfsim.DefaultOptions())
				if err != nil {
					return nil, fmt.Errorf("dse: edge %s (mobilenet): %w", p, err)
				}
				e := c.Efficiency(res.AchievedTOPS*1e12, res.Activity)
				em := c.Efficiency(mob.AchievedTOPS*1e12, mob.Activity)
				rows = append(rows, EdgeRow{
					Point: p, PeakTOPS: c.PeakTOPS(), AreaMM2: c.AreaMM2(), TDPW: c.TDPW(),
					LatencyMS: res.LatencySec * 1e3, FPS: res.FPS,
					PowerW: e.PowerW, FPSPerWatt: res.FPS / e.PowerW,
					Utilization:     res.Utilization,
					MobileLatencyMS: mob.LatencySec * 1e3, MobileFPS: mob.FPS,
					MobileFPSPerWatt: mob.FPS / em.PowerW,
				})
			}
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dse: no feasible edge designs")
	}
	return rows, nil
}
