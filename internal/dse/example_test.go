package dse_test

import (
	"context"
	"fmt"

	"neurometer/internal/dse"
	"neurometer/internal/graph"
	"neurometer/internal/perfsim"
	"neurometer/internal/workloads"
)

// Hardening.Workers and Hardening.BlockSize tune how a runtime study's
// worker pool claims candidates: Workers bounds the goroutine pool, and
// BlockSize is how many consecutive candidates one worker claims at a time
// (0 = dse.DefaultBlockSize), keeping its evaluation scratch hot across a
// run of candidates. Neither knob changes output — results are collected by
// candidate index, so any (Workers, BlockSize) combination emits the same
// bytes as a serial run.
func ExampleHardening() {
	cs := dse.TableI()
	cs.XChoices, cs.NChoices, cs.MaxTiles = []int{8, 64}, []int{2, 4}, 32
	cands := dse.SecondRound(dse.EnumerateCtx(context.Background(), cs), cs.TOPSCap)
	g, err := workloads.ByName("alexnet")
	if err != nil {
		fmt.Println("workload:", err)
		return
	}
	models := []*graph.Graph{g}
	spec := dse.BatchSpec{Fixed: 8}
	opt := perfsim.DefaultOptions()

	serial, err := dse.RuntimeStudyHardened(context.Background(), cands, models, spec, opt,
		dse.Hardening{Workers: 1, BlockSize: 1})
	if err != nil {
		fmt.Println("study:", err)
		return
	}
	blocked, err := dse.RuntimeStudyHardened(context.Background(), cands, models, spec, opt,
		dse.Hardening{Workers: 8, BlockSize: 7})
	if err != nil {
		fmt.Println("study:", err)
		return
	}
	fmt.Println("rows:", len(blocked) > 0)
	fmt.Println("byte-identical to serial:",
		dse.RuntimeRowsCSV(blocked) == dse.RuntimeRowsCSV(serial))
	// Output:
	// rows: true
	// byte-identical to serial: true
}

// Winner ranks a runtime study's rows by one of the Fig. 10 metrics. The
// paper's headline result falls out of exactly this call: the brawny
// (64,2,2,4) point wins raw throughput while a wimpier configuration wins
// on efficiency.
func ExampleWinner() {
	rows := []dse.RuntimeRow{
		{Point: dse.Point{X: 64, N: 2, Tx: 2, Ty: 4}, AchievedTOPS: 61.2, TOPSPerWatt: 0.31},
		{Point: dse.Point{X: 8, N: 4, Tx: 8, Ty: 8}, AchievedTOPS: 48.9, TOPSPerWatt: 0.42},
	}
	byTOPS, _ := dse.Winner(rows, dse.ByAchievedTOPS)
	byEff, _ := dse.Winner(rows, dse.ByTOPSPerWatt)
	fmt.Println("best throughput:", byTOPS.Point)
	fmt.Println("best TOPS/W:   ", byEff.Point)
	// Output:
	// best throughput: (64,2,2,4)
	// best TOPS/W:    (8,4,8,8)
}

// RuntimeRowsCSV is the plotting interchange format and the byte-identity
// witness for the parallel sweep engine: serial, parallel and resumed runs
// of one study emit the same bytes.
func ExampleRuntimeRowsCSV() {
	rows := []dse.RuntimeRow{{
		Point:        dse.Point{X: 64, N: 2, Tx: 2, Ty: 4},
		PeakTOPS:     91.75,
		AchievedTOPS: 60.5,
		Utilization:  0.66,
		PowerW:       198.4,
		TOPSPerWatt:  0.305,
		TOPSPerTCO:   0.00042,
		Batches:      []int{8, 8, 8},
	}}
	fmt.Print(dse.RuntimeRowsCSV(rows))
	// Output:
	// point,x,n,tx,ty,peak_tops,achieved_tops,utilization,power_w,tops_per_watt,tops_per_tco,batches
	// "(64,2,2,4)",64,2,2,4,91.75,60.5,0.66,198.4,0.305,0.00042,8;8;8
}
