package dse

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"neurometer/internal/guard"
)

// The atomic-write protocol must never leave its temp file behind: not
// after a successful flush (rename consumed it), and not after a failed
// one (removed on the error path). A lingering .tmp would be mistaken for
// an in-progress write by operators and would shadow the next flush.
func TestCheckpointFlushLeavesNoTmpFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "study.json")
	ck, err := OpenCheckpoint(path, "fp-tmp-test")
	if err != nil {
		t.Fatal(err)
	}
	ck.Record(Point{X: 8, N: 1, Tx: 1, Ty: 1}, RuntimeRow{PeakTOPS: 1})
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint missing after flush: %v", err)
	}
	assertNoTmp(t, dir)

	// Force the rename to fail by squatting a directory on the target
	// path: the flush must error AND clean up its temp file.
	blocked := filepath.Join(dir, "blocked.json")
	if err := os.Mkdir(blocked, 0o755); err != nil {
		t.Fatal(err)
	}
	ck2 := &Checkpoint{path: blocked, file: ck.file, dirty: true}
	if err := ck2.Flush(); err == nil {
		t.Fatal("flush onto a directory must fail")
	}
	assertNoTmp(t, dir)
}

func assertNoTmp(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s lingers after flush", e.Name())
		}
	}
}

// A flush into the working directory (no path separator) must survive the
// parent-dir fsync — the "" dir defaults to ".".
func TestCheckpointFlushBareFilename(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
	ck, err := OpenCheckpoint("bare.json", "fp-bare")
	if err != nil {
		t.Fatal(err)
	}
	ck.RecordFailure(Point{X: 8, N: 1, Tx: 1, Ty: 1}, guard.Infeasible("x"))
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat("bare.json"); err != nil {
		t.Fatal(err)
	}
}
