package dse

import (
	"strings"
	"testing"
)

func rowsByName(rows []AblationRow) map[string]AblationRow {
	out := map[string]AblationRow{}
	for _, r := range rows {
		out[r.Variant] = r
	}
	return out
}

func TestAblateNoCTopology(t *testing.T) {
	rows, err := AblateNoCTopology(TableI())
	if err != nil {
		t.Fatal(err)
	}
	m := rowsByName(rows)
	// A single bus cannot carry a 256GB/s bisection across 16 tiles without
	// burning absurd power; the mesh is the efficient choice at this scale
	// (which is why Table I mandates it beyond 4 tiles).
	if m["mesh2d"].TOPSPerW <= m["bus"].TOPSPerW {
		t.Errorf("mesh must beat bus at 16 cores: %.3f vs %.3f",
			m["mesh2d"].TOPSPerW, m["bus"].TOPSPerW)
	}
	if m["mesh2d"].TOPSPerW <= m["ring"].TOPSPerW {
		t.Errorf("mesh must beat ring at 16 cores: %.3f vs %.3f",
			m["mesh2d"].TOPSPerW, m["ring"].TOPSPerW)
	}
	// All variants share the same compute, so peak TOPS must be identical.
	for _, r := range rows {
		if r.PeakTOPS != rows[0].PeakTOPS {
			t.Errorf("NoC choice must not change peak TOPS")
		}
	}
}

func TestAblateMemoryCell(t *testing.T) {
	rows, err := AblateMemoryCell(TableI())
	if err != nil {
		t.Fatal(err)
	}
	m := rowsByName(rows)
	if m["edram"].AreaMM2 >= m["sram"].AreaMM2 {
		t.Errorf("eDRAM must shrink the die: %.1f vs %.1f", m["edram"].AreaMM2, m["sram"].AreaMM2)
	}
}

func TestAblateInterconnectAndDataflow(t *testing.T) {
	ic, err := AblateInterconnect(TableI())
	if err != nil {
		t.Fatal(err)
	}
	m := rowsByName(ic)
	// The multicast bus is the slower structure (the Elmore chain spans the
	// whole row), visible in the critical-path note.
	if !strings.Contains(m["multicast"].Note, "tu-crit") {
		t.Errorf("missing crit-path note")
	}
	df, err := AblateDataflow(TableI())
	if err != nil {
		t.Fatal(err)
	}
	d := rowsByName(df)
	if d["weight-stationary"].AreaMM2 == d["output-stationary"].AreaMM2 {
		t.Errorf("dataflows must differ in register complement")
	}
}

func TestAblateVRegSharing(t *testing.T) {
	rows, err := AblateVRegSharing(TableI())
	if err != nil {
		t.Fatal(err)
	}
	m := rowsByName(rows)
	if m["shared-ports"].AreaMM2 >= m["private-ports"].AreaMM2 {
		t.Errorf("port sharing must shrink the chip: %.2f vs %.2f",
			m["shared-ports"].AreaMM2, m["private-ports"].AreaMM2)
	}
	if !strings.Contains(m["private-ports"].Note, "10R5W") {
		t.Errorf("private ports should be 10R5W for 4 TUs + VU: %s", m["private-ports"].Note)
	}
	if !strings.Contains(m["shared-ports"].Note, "4R2W") {
		t.Errorf("shared ports should collapse to 4R2W: %s", m["shared-ports"].Note)
	}
}

func TestAblateDataType(t *testing.T) {
	rows, err := AblateDataType(TableI())
	if err != nil {
		t.Fatal(err)
	}
	m := rowsByName(rows)
	i8, bf := m["int8-inference"], m["bf16-training"]
	// BF16 multiply + FP32 accumulate costs far more area and energy per
	// op at the same peak TOPS.
	if bf.AreaMM2 < 1.5*i8.AreaMM2 {
		t.Errorf("bf16 should cost >1.5x area: %.1f vs %.1f", bf.AreaMM2, i8.AreaMM2)
	}
	if bf.TOPSPerW >= i8.TOPSPerW {
		t.Errorf("bf16 must be less efficient per watt")
	}
}

func TestAllAblationsRender(t *testing.T) {
	s, err := AllAblations(TableI())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"NoC topology", "memory cell", "interconnect",
		"VReg port", "dataflow", "data type", "mesh2d", "edram"} {
		if !strings.Contains(s, want) {
			t.Errorf("ablation report missing %q", want)
		}
	}
}
