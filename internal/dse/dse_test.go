package dse

import (
	"strings"
	"testing"

	"neurometer/internal/perfsim"
)

// sweep is computed once; the full enumeration builds ~100 chips.
var sweep = Enumerate(TableI())

func findCand(t *testing.T, p Point) Candidate {
	t.Helper()
	for _, c := range sweep {
		if c.Point == p {
			return c
		}
	}
	t.Fatalf("point %s not in feasible set", p)
	return Candidate{}
}

func TestEnumerateProducesFeasibleSet(t *testing.T) {
	cs := TableI()
	if len(sweep) < 20 {
		t.Fatalf("feasible set suspiciously small: %d", len(sweep))
	}
	for _, c := range sweep {
		if c.PeakTOPS > cs.TOPSCap*1.01 {
			t.Errorf("%s exceeds the TOPS cap: %.1f", c.Point, c.PeakTOPS)
		}
		if c.AreaMM2 > cs.AreaBudgetMM2 {
			t.Errorf("%s exceeds the area budget: %.1f", c.Point, c.AreaMM2)
		}
		if c.TDPW > cs.PowerBudgetW {
			t.Errorf("%s exceeds the power budget: %.1f", c.Point, c.TDPW)
		}
	}
}

func TestNamedPaperPointsFeasible(t *testing.T) {
	for _, p := range []Point{
		{256, 1, 1, 1}, {128, 4, 1, 1}, {64, 2, 2, 4}, {64, 4, 1, 2}, {8, 4, 4, 8},
	} {
		findCand(t, p)
	}
}

func TestFig8MemoryDominatesArea(t *testing.T) {
	// §III-B.1 first insight: on-chip memory takes the largest die area
	// among architectural components for datacenter inference chips.
	for _, c := range Frontier(sweep, TableI().TOPSCap) {
		bd := c.Chip.AreaBreakdown()
		cores := bd.Find("cores")
		mem := cores.Child("mem").AreaMM2
		for _, name := range []string{"tu", "vu", "su", "cdb"} {
			if child := cores.Child(name); child != nil && child.AreaMM2 > mem {
				t.Errorf("%s: %s (%.1fmm2) exceeds mem (%.1fmm2)", c.Point, name, child.AreaMM2, mem)
			}
		}
	}
}

func TestFig8WimpierNeedsMoreAreaAtSamePeak(t *testing.T) {
	// At the 92-TOPS target, the wimpier the design the larger the die.
	seq := []Point{{64, 2, 2, 4}, {32, 4, 4, 4}, {16, 4, 8, 8}}
	prev := 0.0
	for _, p := range seq {
		c := findCand(t, p)
		if c.AreaMM2 <= prev {
			t.Errorf("%s should be bigger than the brawnier twin: %.1f <= %.1f",
				p, c.AreaMM2, prev)
		}
		prev = c.AreaMM2
	}
}

func TestFig8PeakEfficiencyFavorsBrawny(t *testing.T) {
	// Peak TOPS/W and TOPS/TCO degrade with wimpier designs at equal peak.
	brawny := findCand(t, Point{64, 2, 2, 4})
	wimpy := findCand(t, Point{16, 4, 8, 8})
	if wimpy.PeakTOPSPerW >= brawny.PeakTOPSPerW {
		t.Errorf("wimpy peak TOPS/W should trail: %.3f vs %.3f",
			wimpy.PeakTOPSPerW, brawny.PeakTOPSPerW)
	}
	if wimpy.PeakTOPSPerTCO >= brawny.PeakTOPSPerTCO {
		t.Errorf("wimpy peak TOPS/TCO should trail")
	}
	// (128,4,1,1) is the best TOPS/TCO among the 92-TOPS designs (Fig 8b).
	var best Candidate
	for _, c := range sweep {
		if c.PeakTOPS > 91 && c.PeakTOPSPerTCO > best.PeakTOPSPerTCO {
			best = c
		}
	}
	if best.Point != (Point{128, 4, 1, 1}) {
		t.Errorf("92-TOPS TCO optimum: got %s, paper (128,4,1,1)", best.Point)
	}
}

func TestFrontierKeepsNamedPoints(t *testing.T) {
	fr := Frontier(sweep, TableI().TOPSCap)
	want := map[Point]bool{
		{64, 2, 2, 4}: false, {64, 4, 1, 2}: false, {8, 4, 4, 8}: false,
		{128, 4, 1, 1}: false, {256, 1, 1, 1}: false,
	}
	for _, c := range fr {
		if _, ok := want[c.Point]; ok {
			want[c.Point] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("frontier must keep %s", p)
		}
	}
	if len(fr) > len(sweep) {
		t.Errorf("frontier must not grow the set: %d vs %d", len(fr), len(sweep))
	}
}

func TestSecondRoundPrunesLowPerf(t *testing.T) {
	pruned := SecondRound(sweep, TableI().TOPSCap)
	if len(pruned) >= len(sweep) {
		t.Errorf("second round should drop the 4x4-class points")
	}
	for _, c := range pruned {
		if c.Point.X == 4 {
			t.Errorf("4x4 designs should be pruned (paper: <1/12 peak): %s", c.Point)
		}
	}
}

func TestFig10SmallBatchClaims(t *testing.T) {
	// The §III-B.2 headline claims at batch 1, evaluated on the paper's
	// named points.
	points := []Point{
		{256, 1, 1, 1}, {128, 4, 1, 1}, {64, 2, 2, 4}, {64, 4, 1, 2},
		{32, 4, 2, 2}, {8, 4, 4, 8},
	}
	var cands []Candidate
	for _, p := range points {
		cands = append(cands, findCand(t, p))
	}
	rows, err := RuntimeStudy(cands, DefaultModels(), BatchSpec{Fixed: 1}, perfsim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	get := func(p Point) RuntimeRow {
		for _, r := range rows {
			if r.Point == p {
				return r
			}
		}
		t.Fatalf("row %s missing", p)
		return RuntimeRow{}
	}
	// Highest utilization among the named points: (8,4,4,8).
	util, err := Winner(rows, ByUtilization)
	if err != nil {
		t.Fatal(err)
	}
	if util.Point != (Point{8, 4, 4, 8}) {
		t.Errorf("utilization winner: got %s, paper (8,4,4,8)", util.Point)
	}
	// Highest throughput: the 8-core brawny design (64,2,2,4).
	thr, err := Winner(rows, ByAchievedTOPS)
	if err != nil {
		t.Fatal(err)
	}
	if thr.Point != (Point{64, 2, 2, 4}) {
		t.Errorf("throughput winner: got %s, paper (64,2,2,4)", thr.Point)
	}
	// The efficiency/throughput tradeoff: (64,4,1,2) sacrifices a modest
	// share of achieved TOPS for >1.8x TOPS/TCO.
	eff, thr2 := get(Point{64, 4, 1, 2}), get(Point{64, 2, 2, 4})
	if ratio := eff.AchievedTOPS / thr2.AchievedTOPS; ratio < 0.65 || ratio >= 1 {
		t.Errorf("achieved ratio %.2f out of band (paper ~0.84)", ratio)
	}
	if gain := eff.TOPSPerTCO / thr2.TOPSPerTCO; gain < 1.8 {
		t.Errorf("TOPS/TCO gain %.2fx, want >1.8x (paper 2.1x)", gain)
	}
	if gain := eff.TOPSPerWatt / thr2.TOPSPerWatt; gain < 1.0 {
		t.Errorf("TOPS/W gain %.2fx, want >1x (paper 1.3x)", gain)
	}
}

func TestFig10LargeBatchEnergyFavors32(t *testing.T) {
	// §III-B.2: at medium/large batch the energy-efficiency optimum drops
	// from 64x64 to 32x32.
	points := []Point{
		{64, 2, 2, 4}, {64, 4, 1, 2}, {32, 4, 4, 4}, {32, 2, 4, 8}, {16, 4, 8, 8},
	}
	var cands []Candidate
	for _, p := range points {
		cands = append(cands, findCand(t, p))
	}
	rows, err := RuntimeStudy(cands, DefaultModels(), BatchSpec{Fixed: 256}, perfsim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	w, err := Winner(rows, ByTOPSPerWatt)
	if err != nil {
		t.Fatal(err)
	}
	if w.Point.X != 32 {
		t.Errorf("large-batch energy winner should be 32x32-based, got %s", w.Point)
	}
}

func TestFig9LatencyLimitedBatches(t *testing.T) {
	_, limits, err := Fig9(TableI(), DefaultModels(), []int{1, 16, 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		model string
		paper int
	}{
		{"resnet", 16}, {"nasnet", 4}, {"inception", 32},
	} {
		got := limits[tc.model]
		if got < tc.paper/2 || got > tc.paper*2 {
			t.Errorf("%s latency-limited batch %d vs paper %d", tc.model, got, tc.paper)
		}
	}
}

func TestFig7OptimizationGains(t *testing.T) {
	rows, err := Fig7(TableI(), DefaultModels(), []int{1, 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Gain() <= 1.0 {
			t.Errorf("%s bs=%d: optimizations must help (gain %.2f)", r.Model, r.Batch, r.Gain())
		}
	}
}

func TestBatchSpecString(t *testing.T) {
	if (BatchSpec{Fixed: 4}).String() != "bs=4" {
		t.Errorf("fixed spec string")
	}
	if (BatchSpec{LatencyBound: 0.01}).String() != "bs=latency<10ms" {
		t.Errorf("latency spec string: %s", BatchSpec{LatencyBound: 0.01})
	}
	if (Point{1, 2, 3, 4}).String() != "(1,2,3,4)" {
		t.Errorf("point string")
	}
}

func TestEdgeStudy(t *testing.T) {
	rows, err := EdgeStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Fatalf("edge space too small: %d designs", len(rows))
	}
	cs := EdgeConstraints()
	for _, r := range rows {
		if r.AreaMM2 > cs.AreaBudgetMM2 || r.TDPW > cs.PowerBudgetW {
			t.Errorf("%s exceeds the edge budget: %.1fmm2 %.2fW", r.Point, r.AreaMM2, r.TDPW)
		}
		if r.LatencyMS <= 0 || r.FPS <= 0 || r.Utilization <= 0 {
			t.Errorf("%s: degenerate runtime", r.Point)
		}
	}
	// Edge inference at batch 1 on sub-TOPS chips is compute-starved, so
	// utilizations run far higher than the datacenter points'.
	var minUtil = 1.0
	for _, r := range rows {
		if r.Utilization < minUtil {
			minUtil = r.Utilization
		}
	}
	if minUtil < 0.5 {
		t.Errorf("edge utilizations should be high, min %.2f", minUtil)
	}
	// More peak always means lower latency within this space.
	best, worst := rows[0], rows[0]
	for _, r := range rows {
		if r.PeakTOPS > best.PeakTOPS {
			best = r
		}
		if r.PeakTOPS < worst.PeakTOPS {
			worst = r
		}
	}
	if best.LatencyMS >= worst.LatencyMS {
		t.Errorf("the biggest edge chip should be the fastest: %.1fms vs %.1fms",
			best.LatencyMS, worst.LatencyMS)
	}
}

func TestFormatRuntimeRows(t *testing.T) {
	rows := []RuntimeRow{{
		Point: Point{64, 2, 2, 4}, PeakTOPS: 91.75, AchievedTOPS: 20,
		Utilization: 0.22, PowerW: 35, TOPSPerWatt: 0.57, TOPSPerTCO: 1e-5,
	}}
	s := FormatRuntimeRows(rows)
	for _, want := range []string{"(64,2,2,4)", "91.75", "22.0%", "point"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted rows missing %q:\n%s", want, s)
		}
	}
}

func TestWinnerEmpty(t *testing.T) {
	if _, err := Winner(nil, ByAchievedTOPS); err == nil {
		t.Errorf("empty rows must fail")
	}
}

func TestFig8RowsCarryBreakdowns(t *testing.T) {
	cands := Frontier(sweep, TableI().TOPSCap)[:3]
	rows := Fig8(cands)
	for _, r := range rows {
		if r.AreaBreakdown == nil || r.AreaBreakdown.Find("mem") == nil {
			t.Errorf("%s: missing breakdown", r.Point)
		}
		if !r.AreaBreakdown.Consistent(1e-6) {
			t.Errorf("%s: inconsistent breakdown", r.Point)
		}
	}
}
