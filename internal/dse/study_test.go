package dse

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"neurometer/internal/guard"
	"neurometer/internal/perfsim"
)

// tinySpec is a fast two-brawniness study on one workload, small enough to
// run uninterrupted in well under a second.
func tinySpec() StudySpec {
	cs := TableI()
	cs.XChoices = []int{8, 64}
	cs.NChoices = []int{2, 4}
	cs.MaxTiles = 32
	return StudySpec{
		Constraints: cs,
		Spec:        BatchSpec{Fixed: 8},
		Opt:         perfsim.DefaultOptions(),
		Models:      []string{"alexnet"},
	}
}

func TestStudyFingerprintStableAndDiscriminating(t *testing.T) {
	ctx := context.Background()
	a, err := NewStudy(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStudy(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical specs must produce identical fingerprints")
	}
	if a.NumCandidates() == 0 {
		t.Fatal("tiny spec produced no candidates")
	}

	other := tinySpec()
	other.Spec = BatchSpec{Fixed: 16}
	c, err := NewStudy(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("different batch regimes must produce different fingerprints")
	}
}

func TestStudyRejectsUnknownWorkload(t *testing.T) {
	spec := tinySpec()
	spec.Models = []string{"gpt7"}
	if _, err := NewStudy(context.Background(), spec); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("unknown workload: got %v, want ErrInvalidConfig", err)
	}
}

// An interrupted Study.Run flushes its checkpoint; rerunning the same spec
// against the same path resumes and emits byte-identical CSV to an
// uninterrupted run — the property the serving layer's crash-safe job
// lifecycle is built on.
func TestStudyRunResumeByteIdentical(t *testing.T) {
	defer guard.DisarmAll()
	ctx := context.Background()

	ref, err := NewStudy(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	wantRows, err := ref.Run(ctx, Hardening{}, "")
	if err != nil {
		t.Fatal(err)
	}
	want := RuntimeRowsCSV(wantRows)

	// Interrupt a checkpointed run after the second candidate completes:
	// the fault's OnHit cancels the study context at a deterministic point.
	path := filepath.Join(t.TempDir(), "job.ckpt.json")
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	disarm := guard.Arm("dse.candidate", guard.Fault{Skip: 2, Count: 1, OnHit: func() { cancel() }})
	s1, err := NewStudy(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(cctx, Hardening{}, path); !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("interrupted run: got %v, want ErrCanceled", err)
	}
	disarm()

	// A fresh Study (as a restarted server would build) resumes the
	// checkpoint by fingerprint and completes the remainder.
	s2, err := NewStudy(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	gotRows, err := s2.Run(ctx, Hardening{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if got := RuntimeRowsCSV(gotRows); got != want {
		t.Fatalf("resumed study output differs from uninterrupted run:\n got: %s\nwant: %s", got, want)
	}
}
