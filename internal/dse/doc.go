// Package dse implements the paper's §III design-space exploration of
// "Brawny and Wimpy" datacenter inference accelerators: the Table I
// constraint set, the (X, N, Tx, Ty) sweep with automatic pruning, the
// chip-level analysis of Fig. 8, and the runtime performance/efficiency
// study of Figs. 9-10 (paired with the perfsim performance simulator).
//
// # Pipeline
//
// The sweep is a pipeline of pure stages. Enumerate (or EnumerateParallel)
// builds every design point under the constraints and keeps the feasible
// ones; Frontier and SecondRound narrow the candidate set the way the
// paper does; RuntimeStudy / RuntimeStudyHardened simulate each surviving
// candidate over the workload models; Winner ranks the rows by a metric
// (ByAchievedTOPS, ByTOPSPerWatt, ...); FormatRuntimeRows and
// RuntimeRowsCSV render them. cmd/dse drives the whole pipeline per paper
// figure.
//
// # Concurrency contract
//
// Candidate evaluations are independent, so both enumeration
// (EnumerateParallel) and the runtime study (Hardening.Workers) fan work
// across a bounded goroutine pool. The engine is deterministic by
// construction: results are collected by candidate index, not completion
// order, and checkpoint files marshal with sorted keys — so the formatted
// tables, CSV output and checkpoint bytes are identical at every worker
// count, including a serial run. Workers <= 1 runs inline on the caller's
// goroutine (the historical serial path). Workers claim candidates in
// blocks of Hardening.BlockSize consecutive indices (0 = DefaultBlockSize),
// which keeps each worker's evaluation scratch and the study's prepared
// workload tables hot without affecting output bytes. See DESIGN.md §9 and
// §14.
//
// Each study prepares its workload graphs once (perfsim.Prepare) and every
// candidate evaluation runs into pooled result scratch, so the per-candidate
// hot path is allocation-free in the steady state; see PERFORMANCE.md.
//
// Repeated chip constructions across sweeps and figure drivers hit the
// chip.BuildCached memo; cache traffic is visible as
// chip.build_cache_hits / chip.build_cache_misses under -metrics.
//
// # Error contract
//
// Every candidate failure is classified under the guard taxonomy
// (guard.ErrInvalidConfig, ErrInfeasible, ErrNonFinite, ErrTimeout,
// ErrCanceled, ErrCandidatePanic) and absorbed: one bad candidate costs
// one row, never the sweep. A hardened study fails outright only when
// every candidate fails, or when its context is canceled — in which case
// it returns the rows completed so far alongside the classified context
// error, after flushing any armed checkpoint so the sweep can resume.
package dse
