package dse

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

// The parallel sweep engine. Every candidate evaluation in this package —
// a chip.Build during enumeration, a full runtime study of one design
// point — is independent of every other, so the sweeps fan work out across
// a bounded pool of goroutines and collect results by candidate index.
// Ordering by index (not by completion) is what keeps the engine
// deterministic: the assembled candidate list, Frontier/SecondRound/Winner
// inputs, CSV emission, and checkpoint files are byte-identical to a
// serial run's, regardless of worker count or scheduling. See DESIGN.md §9
// for the determinism argument.

// Observability: pool-level gauges in the obs default registry.
// dse.eval_inflight tracks evaluations currently executing;
// dse.queue_depth tracks claimed-but-unstarted work remaining in the
// current sweep. Both drain to zero when a sweep finishes or is canceled.
var (
	gInflight   = obs.NewGauge("dse.eval_inflight")
	gQueueDepth = obs.NewGauge("dse.queue_depth")
)

// resolveWorkers maps a Workers knob to an effective pool size: values
// below 1 mean "one worker" (the historical serial behavior of the zero
// value), and DefaultWorkers resolves to GOMAXPROCS.
func resolveWorkers(workers int) int {
	if workers == DefaultWorkers {
		return runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// DefaultWorkers selects GOMAXPROCS workers (the cmd/dse -workers default).
const DefaultWorkers = -1

// DefaultBlockSize is the claim granularity a block value below 1 resolves
// to. Claiming candidates in blocks keeps a worker on consecutive indices,
// so the per-worker evaluation scratch and the prepared-workload tables
// stay hot across a run of candidates, and the claim cursor is touched once
// per block instead of once per candidate. Sixteen is small enough that the
// tail imbalance at the end of a sweep stays under one block per worker.
const DefaultBlockSize = 16

// resolveBlock maps a BlockSize knob to an effective claim granularity.
func resolveBlock(block int) int {
	if block < 1 {
		return DefaultBlockSize
	}
	return block
}

// runPool executes fn(i) for every i in [0, n) across at most workers
// goroutines and blocks until all claimed work finishes. Work is claimed
// from an atomic cursor in index order in blocks of `block` consecutive
// indices (block < 1 resolves to DefaultBlockSize), so a one-worker pool
// degenerates to the plain serial loop (run inline on the caller's
// goroutine — no spawn, no synchronization beyond the per-block claim and
// two atomic gauge ops per item).
//
// Determinism: the block size changes only which worker evaluates which
// index, never what is computed — results are collected by index, so
// output is byte-identical at any (workers, block) combination; the
// parallel byte-identity tests sweep both axes.
//
// Cancellation: each item checks ctx first; once ctx is done no new work
// starts, in-flight items run to completion (they observe the same ctx
// internally and unwind quickly), and runPool returns the classified
// context error. fn must do its own panic recovery (the dse evaluators
// convert panics to guard.ErrCandidatePanic); a panic escaping fn would
// take the process down exactly as it would in a serial loop.
func runPool(ctx context.Context, n, workers, block int, fn func(i int)) error {
	workers = resolveWorkers(workers)
	if workers > n {
		workers = n
	}
	block = resolveBlock(block)
	gQueueDepth.Add(float64(n))
	var cursor atomic.Int64
	runOne := func(i int) {
		gInflight.Add(1)
		// Deferred so a panic escaping fn (it shouldn't — the evaluators
		// recover — but a guard fault or future bug could) cannot leak an
		// inflight slot past the sweep.
		defer gInflight.Add(-1)
		fn(i)
	}
	work := func() {
		for {
			start := int(cursor.Add(int64(block))) - block
			if start >= n {
				return
			}
			end := start + block
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				gQueueDepth.Add(-1)
				if guard.CtxErr(ctx) != nil {
					continue // drain the queue gauge, start nothing new
				}
				runOne(i)
			}
		}
	}
	if workers <= 1 {
		work()
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
		wg.Wait()
	}
	return guard.CtxErr(ctx)
}
