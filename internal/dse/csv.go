package dse

import (
	"encoding/csv"
	"strconv"
	"strings"
)

// RuntimeRowsCSVFormatVersion identifies the RuntimeRowsCSV schema. Bump
// it whenever runtimeRowsCSVHeader changes so downstream plotting scripts
// can detect drift.
const RuntimeRowsCSVFormatVersion = 1

// runtimeRowsCSVHeader is the stable column order of RuntimeRowsCSV.
// Append-only: existing columns must not be renamed or reordered within a
// format version.
var runtimeRowsCSVHeader = []string{
	"point", "x", "n", "tx", "ty",
	"peak_tops", "achieved_tops", "utilization", "power_w",
	"tops_per_watt", "tops_per_tco", "batches",
}

// RuntimeRowsCSV renders a runtime study's rows as CSV — the interchange
// format for plotting scripts and the byte-identity witness for the
// parallel sweep engine (serial, parallel, and resumed runs of the same
// study must produce the same bytes). Floats use round-trip-exact 'g'
// formatting; the per-workload batch sizes are joined with ';' in workload
// order.
func RuntimeRowsCSV(rows []RuntimeRow) string {
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	w.Write(runtimeRowsCSVHeader)
	for _, r := range rows {
		batches := make([]string, len(r.Batches))
		for i, b := range r.Batches {
			batches[i] = strconv.Itoa(b)
		}
		w.Write([]string{
			r.Point.String(),
			strconv.Itoa(r.Point.X),
			strconv.Itoa(r.Point.N),
			strconv.Itoa(r.Point.Tx),
			strconv.Itoa(r.Point.Ty),
			cellF(r.PeakTOPS),
			cellF(r.AchievedTOPS),
			cellF(r.Utilization),
			cellF(r.PowerW),
			cellF(r.TOPSPerWatt),
			cellF(r.TOPSPerTCO),
			strings.Join(batches, ";"),
		})
	}
	w.Flush()
	return sb.String()
}

// cellF formats a float64 with the shortest representation that round-trips
// exactly, so equal values always produce equal bytes.
func cellF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
