package dse

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"

	"neurometer/internal/chip"
	"neurometer/internal/graph"
	"neurometer/internal/guard"
	"neurometer/internal/obs"
	"neurometer/internal/perfsim"
	"neurometer/internal/rstore"
)

// The result-store binding: a candidate evaluation is a pure function of
// (chip config, workload set, batch regime, simulator options), so that
// tuple — not the study it appeared in — is the content address of its
// RuntimeRow. Two studies sharing a design point share its stored result;
// a shard evaluated on a fleet worker lands under the same fingerprint the
// coordinator would have used, because chip.Config and the shard fields
// round-trip exactly through JSON.
//
// Trust boundary: stored bytes are verified three ways before they can
// replace an evaluation — the rstore envelope checksum, the embedded
// fingerprint, and decodeStoredRow's own checks (the payload must
// deserialize, carry the expected design point, and have finite metrics,
// the same guard.CheckFinites gate a fresh evaluation passes). Any failure
// quarantines the entry and the candidate evaluates normally.

// resultStoreVersion is folded into every candidate fingerprint, so a
// change to the RuntimeRow payload schema orphans (rather than
// misinterprets) entries written by older builds.
const resultStoreVersion = 1

// mStoreHits counts candidate evaluations satisfied from the result store.
var mStoreHits = obs.NewCounter("dse.candidates_from_store")

// CandidateFingerprint derives the content address of one candidate
// evaluation. Unlike StudyFingerprint it is per-candidate and uses exact
// (%+v) renderings throughout — a lossily formatted latency bound must not
// alias two different batch regimes onto one stored result.
func CandidateFingerprint(cfg chip.Config, models []string, spec BatchSpec, opt perfsim.Options) string {
	fp := fmt.Sprintf("rstore/v%d|cfg=%s|spec=%+v|opt=%+v|models=", resultStoreVersion, cfg.Fingerprint(), spec, opt)
	for i, m := range models {
		if i > 0 {
			fp += ","
		}
		fp += m
	}
	return fp
}

// modelNames projects a workload set onto the name list both
// CandidateFingerprint and the shard protocol use.
func modelNames(models []*graph.Graph) []string {
	names := make([]string, len(models))
	for i, g := range models {
		names[i] = g.Name
	}
	return names
}

// encodeStoredRow serializes a RuntimeRow for the store. JSON float
// encoding is round-trip exact, so a decoded row is bit-identical to the
// evaluated one — the property the byte-identity tests pin down.
func encodeStoredRow(row RuntimeRow) ([]byte, error) {
	b, err := json.Marshal(row)
	if err != nil {
		// Unreachable for a CheckFinites-clean row; degrade to "not
		// persisted" rather than fail an evaluation that succeeded.
		return nil, guard.Invalid("dse: encode stored row: %v", err)
	}
	return b, nil
}

// decodeStoredRow deserializes and verifies a stored payload: it must
// parse, describe the expected design point, and pass the same finiteness
// gate a fresh evaluation passes. Failures classify as guard.ErrCorrupt so
// the caller quarantines the entry.
func decodeStoredRow(payload []byte, want Point) (RuntimeRow, error) {
	var row RuntimeRow
	if err := json.Unmarshal(payload, &row); err != nil {
		return RuntimeRow{}, guard.Corrupt("dse: stored row does not deserialize: %v", err)
	}
	if row.Point != want {
		return RuntimeRow{}, guard.Corrupt("dse: stored row is for %s, wanted %s", row.Point, want)
	}
	if err := guard.CheckFinites(
		"peak_tops", row.PeakTOPS, "achieved_tops", row.AchievedTOPS,
		"utilization", row.Utilization, "power_w", row.PowerW,
		"tops_per_w", row.TOPSPerWatt, "tops_per_tco", row.TOPSPerTCO,
	); err != nil {
		return RuntimeRow{}, guard.Corrupt("dse: stored row rejected: %v", err)
	}
	return row, nil
}

// lookupStoredRow consults the result store for one candidate; ok reports
// a fully verified hit. A nil cache, a miss, and every flavor of store
// fault all return ok=false — the caller evaluates.
func lookupStoredRow(ctx context.Context, cache *rstore.Cache, fp string, want Point) (RuntimeRow, bool) {
	var row RuntimeRow
	ok := cache.Lookup(ctx, fp, func(payload []byte) error {
		r, err := decodeStoredRow(payload, want)
		if err != nil {
			return err
		}
		row = r
		return nil
	})
	if ok {
		mStoreHits.Inc()
	}
	return row, ok
}

// evalStoreAware evaluates one candidate through the store's single-flight
// layer: concurrent evaluations of the same fingerprint (another study in
// this process, another worker goroutine) collapse to one, with the
// leader's successful row persisted best-effort. Waiters re-verify the
// shared bytes exactly like a disk read; if the bytes do not survive
// verification the waiter falls back to evaluating locally — a degraded
// flight changes cost, never results.
func evalStoreAware(ctx context.Context, cache *rstore.Cache, fp string, cand Candidate, sim *studySim, spec BatchSpec, opt perfsim.Options, h Hardening) (RuntimeRow, error) {
	if cache == nil {
		return evalWithRetry(ctx, cand, sim, spec, opt, h)
	}
	var leaderRow RuntimeRow
	payload, shared, err := cache.Compute(ctx, fp, func() ([]byte, error) {
		row, err := evalWithRetry(ctx, cand, sim, spec, opt, h)
		if err != nil {
			return nil, err
		}
		leaderRow = row
		b, eerr := encodeStoredRow(row)
		if eerr != nil {
			slog.WarnContext(ctx, "dse: result not persisted", "point", cand.Point.String(), "err", eerr)
			return nil, nil // row already captured; skip persistence only
		}
		return b, nil
	})
	if err != nil {
		return RuntimeRow{}, err
	}
	if !shared {
		return leaderRow, nil
	}
	row, derr := decodeStoredRow(payload, cand.Point)
	if derr != nil {
		cache.ReportBad(ctx, fp, derr)
		return evalWithRetry(ctx, cand, sim, spec, opt, h)
	}
	mStoreHits.Inc()
	return row, nil
}

// storeRemoteOutcome best-effort persists a row computed by a remote
// worker, so the coordinator's store warms from fleet traffic too.
func storeRemoteOutcome(cache *rstore.Cache, fp string, row RuntimeRow) {
	if cache == nil {
		return
	}
	if b, err := encodeStoredRow(row); err == nil {
		cache.Add(fp, b)
	}
}
