package dse

import (
	"context"
	"fmt"
	"strings"

	"neurometer/internal/chip"
	"neurometer/internal/graph"
	"neurometer/internal/pat"
	"neurometer/internal/perfsim"
)

// Fig7Row is one series point of Fig. 7: throughput before and after the
// software optimizations, per workload and batch size.
type Fig7Row struct {
	Model     string
	Batch     int
	FPSBefore float64
	FPSAfter  float64
}

// Gain returns the optimization speedup.
func (r Fig7Row) Gain() float64 { return r.FPSAfter / r.FPSBefore }

// Fig7 reproduces the software-optimization ablation on the throughput
// reference point (64,2,2,4).
func Fig7(cs Constraints, models []*graph.Graph, batches []int) ([]Fig7Row, error) {
	cand, err := buildPoint(cs, Point{64, 2, 2, 4})
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, g := range models {
		for _, bs := range batches {
			after, err := perfsim.Simulate(cand.Chip, g, bs, perfsim.DefaultOptions())
			if err != nil {
				return nil, err
			}
			before, err := perfsim.Simulate(cand.Chip, g, bs, perfsim.NoOptimizations())
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig7Row{
				Model: g.Name, Batch: bs,
				FPSBefore: before.FPS, FPSAfter: after.FPS,
			})
		}
	}
	return rows, nil
}

func buildPoint(cs Constraints, p Point) (Candidate, error) {
	c, err := chip.BuildCached(cs.Config(p))
	if err != nil {
		return Candidate{}, err
	}
	return Candidate{
		Point: p, Chip: c,
		PeakTOPS: c.PeakTOPS(), AreaMM2: c.AreaMM2(), TDPW: c.TDPW(),
		PeakTOPSPerW: c.PeakTOPSPerWatt(), PeakTOPSPerTCO: c.PeakTOPSPerTCO(),
	}, nil
}

// Fig8Row is one x-axis entry of Fig. 8: per-component area and TDP plus
// the peak metrics.
type Fig8Row struct {
	Point          Point
	PeakTOPS       float64
	AreaMM2        float64
	TDPW           float64
	PeakTOPSPerW   float64
	PeakTOPSPerTCO float64
	AreaBreakdown  *pat.Breakdown
}

// Fig8 evaluates the representative design points' chip-level area/TDP
// breakdowns and peak efficiencies.
func Fig8(cands []Candidate) []Fig8Row {
	var rows []Fig8Row
	for _, c := range cands {
		rows = append(rows, Fig8Row{
			Point:          c.Point,
			PeakTOPS:       c.PeakTOPS,
			AreaMM2:        c.AreaMM2,
			TDPW:           c.TDPW,
			PeakTOPSPerW:   c.PeakTOPSPerW,
			PeakTOPSPerTCO: c.PeakTOPSPerTCO,
			AreaBreakdown:  c.Chip.AreaBreakdown(),
		})
	}
	return rows
}

// Fig9Row is one batch point of Fig. 9 for one model on (64,2,2,4).
type Fig9Row struct {
	Model      string
	Batch      int
	FPS        float64
	LatencyMS  float64
	MeetsSLO10 bool
}

// Fig9 sweeps batch sizes on the (64,2,2,4) reference point and reports
// throughput and latency per workload, plus the 10ms latency-limited batch.
func Fig9(cs Constraints, models []*graph.Graph, batches []int) ([]Fig9Row, map[string]int, error) {
	cand, err := buildPoint(cs, Point{64, 2, 2, 4})
	if err != nil {
		return nil, nil, err
	}
	var rows []Fig9Row
	limits := map[string]int{}
	for _, g := range models {
		for _, bs := range batches {
			r, err := perfsim.Simulate(cand.Chip, g, bs, perfsim.DefaultOptions())
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, Fig9Row{
				Model: g.Name, Batch: bs, FPS: r.FPS,
				LatencyMS:  r.LatencySec * 1e3,
				MeetsSLO10: r.LatencySec <= 10e-3,
			})
		}
		lim, _, err := perfsim.LatencyLimitedBatch(cand.Chip, g, 10e-3, perfsim.DefaultOptions())
		if err != nil {
			return nil, nil, err
		}
		limits[g.Name] = lim
	}
	return rows, limits, nil
}

// Fig10 runs the three batch regimes of Fig. 10 over the candidate set:
// (a) batch 1, (b) 10ms-latency-limited batch, (c) batch 256.
func Fig10(cands []Candidate, models []*graph.Graph) (map[string][]RuntimeRow, error) {
	return Fig10Ctx(context.Background(), cands, models)
}

// Fig10Ctx is Fig10 threading a span context through the three runtime
// studies (one span each, named after the batch regime).
func Fig10Ctx(ctx context.Context, cands []Candidate, models []*graph.Graph) (map[string][]RuntimeRow, error) {
	return Fig10Hardened(ctx, cands, models, Hardening{}, "")
}

// Fig10Regimes lists the batch regimes of Fig. 10 in execution order.
var Fig10Regimes = []string{"a-small", "b-medium", "c-large"}

// Fig10Hardened is Fig10Ctx under a hardening envelope. A non-empty
// checkpointPath stores one checkpoint per batch regime at
// <checkpointPath>.<regime>.json; regimes run in Fig10Regimes order so an
// interrupted run resumes deterministically. h.Checkpoint is ignored (each
// regime gets its own).
func Fig10Hardened(ctx context.Context, cands []Candidate, models []*graph.Graph, h Hardening, checkpointPath string) (map[string][]RuntimeRow, error) {
	specs := map[string]BatchSpec{
		"a-small":  {Fixed: 1},
		"b-medium": {LatencyBound: 10e-3},
		"c-large":  {Fixed: 256},
	}
	opt := perfsim.DefaultOptions()
	out := map[string][]RuntimeRow{}
	for _, name := range Fig10Regimes {
		spec := specs[name]
		hr := h
		hr.Checkpoint = nil
		if checkpointPath != "" {
			ck, err := OpenCheckpoint(checkpointPath+"."+name+".json",
				StudyFingerprint(cands, models, spec, opt))
			if err != nil {
				return nil, err
			}
			hr.Checkpoint = ck
		}
		rows, err := RuntimeStudyHardened(ctx, cands, models, spec, opt, hr)
		if err != nil {
			return nil, fmt.Errorf("fig10 %s: %w", name, err)
		}
		out[name] = rows
	}
	return out, nil
}

// FormatRuntimeRows renders a Fig. 10 style table.
func FormatRuntimeRows(rows []RuntimeRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %9s %9s %7s %8s %10s %12s\n",
		"point", "peakTOPS", "achTOPS", "util", "powerW", "TOPS/W", "TOPS/TCO")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %9.2f %9.2f %6.1f%% %8.1f %10.4f %12.6f\n",
			r.Point, r.PeakTOPS, r.AchievedTOPS, r.Utilization*100, r.PowerW,
			r.TOPSPerWatt, r.TOPSPerTCO*1e3)
	}
	return sb.String()
}
