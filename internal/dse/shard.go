package dse

import (
	"context"
	"fmt"
	"time"

	"neurometer/internal/chip"
	"neurometer/internal/graph"
	"neurometer/internal/guard"
	"neurometer/internal/obs"
	"neurometer/internal/perfsim"
	"neurometer/internal/rstore"
	"neurometer/internal/workloads"
)

// The fleet wire protocol. A shard is a self-contained slice of a runtime
// study: everything a remote worker needs to evaluate a set of candidates
// — batch regime, options, workload names, and per-candidate chip configs
// — plus the study-local index of each candidate so the coordinator can
// merge outcomes back by position. Every field round-trips exactly through
// JSON (configs are ints/strings/exact floats, rows are float64s with
// round-trip-exact encoding), and the simulator is deterministic, so a row
// computed on any worker is bit-identical to the row a local evaluation
// would have produced. That is the whole byte-identity argument for
// distributed studies: the fleet only changes *where* a candidate runs,
// never *what* it computes.

// ShardCandidate is one design point of a shard, addressed by its index in
// the study's candidate list.
type ShardCandidate struct {
	Index  int         `json:"index"`
	Point  Point       `json:"point"`
	Config chip.Config `json:"config"`
}

// Shard is the /v1/worker/eval request body.
type Shard struct {
	Spec   BatchSpec        `json:"spec"`
	Opt    perfsim.Options  `json:"opt"`
	Models []string         `json:"models"`
	Cands  []ShardCandidate `json:"cands"`
	// Worker-side hardening: per-candidate deadline and bounded retry,
	// mirroring Hardening.
	CandidateTimeoutMS int64 `json:"candidate_timeout_ms,omitempty"`
	MaxRetries         int   `json:"max_retries,omitempty"`
}

// ShardOutcome is one candidate's resolved result: a row, or a failure in
// (kind, msg) form. guard.KindError reconstructs the failure coordinator-
// side with the exact message and taxonomy class, so a remotely failed
// candidate lands in the checkpoint byte-identically to a local failure.
type ShardOutcome struct {
	Index int         `json:"index"`
	Row   *RuntimeRow `json:"row,omitempty"`
	Kind  string      `json:"kind,omitempty"`
	Err   string      `json:"err,omitempty"`
}

// ShardResult is the /v1/worker/eval response body. Spans carries the
// worker's span subtree for the request (present only when the coordinator
// sent a traceparent header); the coordinator grafts it under the
// dispatching span so the merged study trace shows remote per-candidate
// evals in place.
type ShardResult struct {
	Outcomes []ShardOutcome `json:"outcomes"`
	Spans    []obs.WireSpan `json:"spans,omitempty"`
}

// BuildShard packages the candidates at the given study indices for remote
// evaluation under h's per-candidate hardening knobs.
func BuildShard(cands []Candidate, indices []int, models []*graph.Graph, spec BatchSpec, opt perfsim.Options, h Hardening) Shard {
	sh := Shard{
		Spec:               spec,
		Opt:                opt,
		CandidateTimeoutMS: int64(h.CandidateTimeout / time.Millisecond),
		MaxRetries:         h.MaxRetries,
	}
	for _, g := range models {
		sh.Models = append(sh.Models, g.Name)
	}
	for _, i := range indices {
		sh.Cands = append(sh.Cands, ShardCandidate{
			Index:  i,
			Point:  cands[i].Point,
			Config: cands[i].Chip.Cfg,
		})
	}
	return sh
}

// EvalShard is the worker side of the fleet protocol: rebuild each
// candidate's chip from its config (memoized through chip.BuildCached),
// evaluate it over the workload set under the shard's hardening knobs, and
// report one outcome per candidate. Candidate failures are outcomes, not
// errors — a shard full of infeasible points still succeeds. EvalShard
// itself fails only on malformed shards (unknown workloads, no candidates)
// or when ctx dies mid-shard, in which case the coordinator retries the
// whole shard elsewhere (re-evaluation is free of side effects and
// deterministic).
//
// cache, when non-nil, is the worker's local result store: each candidate
// is looked up by the same fingerprint the coordinator derives (the shard
// fields round-trip exactly through JSON, so both sides address the same
// entry), and fresh evaluations are persisted through the store's
// single-flight layer. A nil cache — or any store fault — just means every
// candidate evaluates.
func EvalShard(ctx context.Context, sh Shard, workers int, cache *rstore.Cache) ([]ShardOutcome, error) {
	if len(sh.Cands) == 0 {
		return nil, guard.Invalid("dse: shard: no candidates")
	}
	if len(sh.Models) == 0 {
		return nil, guard.Invalid("dse: shard: no models")
	}
	models := make([]*graph.Graph, 0, len(sh.Models))
	for _, name := range sh.Models {
		g, err := workloads.ByName(name)
		if err != nil {
			return nil, guard.Invalid("dse: shard: %v", err)
		}
		models = append(models, g)
	}
	h := Hardening{
		CandidateTimeout: time.Duration(sh.CandidateTimeoutMS) * time.Millisecond,
		MaxRetries:       sh.MaxRetries,
	}
	// The whole shard shares one simulation context: every workload prepared
	// once, candidates evaluated as one batch over it — a worker's hot path
	// is the same prepared closed forms the coordinator's local pool runs.
	sim := newStudySim(models)
	outs := make([]ShardOutcome, len(sh.Cands))
	runPool(ctx, len(sh.Cands), workers, 0, func(i int) {
		sc := sh.Cands[i]
		cctx, sp := obs.Start(ctx, "dse.candidate", obs.Int("index", int64(sc.Index)))
		outs[i] = evalShardCandidate(cctx, sc, sh, sim, h, cache)
		sp.End()
	})
	if err := guard.CtxErr(ctx); err != nil {
		return nil, fmt.Errorf("dse: shard interrupted: %w", err)
	}
	return outs, nil
}

// evalShardCandidate resolves one shard candidate: a verified store hit
// skips even the chip rebuild; otherwise the chip is rebuilt and the
// candidate evaluated through the store's single-flight layer.
func evalShardCandidate(ctx context.Context, sc ShardCandidate, sh Shard, sim *studySim, h Hardening, cache *rstore.Cache) ShardOutcome {
	out := ShardOutcome{Index: sc.Index}
	var fp string
	if cache != nil {
		fp = CandidateFingerprint(sc.Config, sh.Models, sh.Spec, sh.Opt)
		if row, ok := lookupStoredRow(ctx, cache, fp, sc.Point); ok {
			out.Row = &row
			return out
		}
	}
	c, err := chip.BuildCached(sc.Config)
	if err == nil {
		cand := Candidate{Point: sc.Point, Chip: c, PeakTOPS: c.PeakTOPS()}
		var row RuntimeRow
		row, err = evalStoreAware(ctx, cache, fp, cand, sim, sh.Spec, sh.Opt, h)
		if err == nil {
			out.Row = &row
			return out
		}
	}
	out.Kind, out.Err = guard.Kind(err), err.Error()
	return out
}
