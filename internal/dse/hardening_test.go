package dse

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"neurometer/internal/graph"
	"neurometer/internal/guard"
	"neurometer/internal/perfsim"
	"neurometer/internal/workloads"
)

// studyFixture returns a small candidate set and workload for fast
// hardening tests: three feasible sweep points and AlexNet only.
func studyFixture(t *testing.T) ([]Candidate, BatchSpec, perfsim.Options) {
	t.Helper()
	cands := []Candidate{
		findCand(t, Point{X: 64, N: 2, Tx: 2, Ty: 4}),
		findCand(t, Point{X: 64, N: 4, Tx: 1, Ty: 2}),
		findCand(t, Point{X: 8, N: 4, Tx: 4, Ty: 8}),
	}
	return cands, BatchSpec{Fixed: 8}, perfsim.DefaultOptions()
}

func alexnet(t *testing.T) []*graph.Graph {
	t.Helper()
	g, err := workloads.ByName("alexnet")
	if err != nil {
		t.Fatal(err)
	}
	return []*graph.Graph{g}
}

func TestRuntimeStudySkipsPanickingCandidate(t *testing.T) {
	defer guard.DisarmAll()
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)

	// The second candidate's simulation panics; the sweep must survive
	// and deliver the other two rows.
	disarm := guard.Arm("perfsim.simulate", guard.Fault{Skip: 1, Count: 1, Panic: true})
	defer disarm()

	rows, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt, Hardening{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (panicking candidate skipped)", len(rows))
	}
	for _, r := range rows {
		if r.Point == cands[1].Point {
			t.Fatalf("panicking candidate %s must not produce a row", r.Point)
		}
	}
}

func TestRuntimeStudyTimeoutClassifiedAndRetried(t *testing.T) {
	defer guard.DisarmAll()
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)

	// Candidate 1's first layer stalls far past the 30ms deadline, every
	// attempt. With one retry allowed the fault fires twice, then the
	// candidate fails with ErrTimeout and the sweep continues.
	hits := 0
	disarm := guard.Arm("perfsim.simulate", guard.Fault{
		Delay: 10 * time.Second, OnHit: func() { hits++ },
	})
	defer disarm()

	h := Hardening{CandidateTimeout: 30 * time.Millisecond, MaxRetries: 1}
	rows, err := RuntimeStudyHardened(context.Background(), cands[:1], models, spec, opt, h)
	if err == nil {
		t.Fatal("want all-candidates-failed error")
	}
	if !errors.Is(err, guard.ErrTimeout) {
		t.Fatalf("error %v must wrap ErrTimeout", err)
	}
	if len(rows) != 0 {
		t.Fatalf("timed-out candidate produced %d rows", len(rows))
	}
	if hits != 2 {
		t.Fatalf("fault fired %d times, want 2 (initial attempt + 1 retry)", hits)
	}
}

func TestRuntimeStudyRetrySucceedsAfterTransientTimeout(t *testing.T) {
	defer guard.DisarmAll()
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)

	// The fault stalls only the first attempt (Count: 1); the retry runs
	// clean and the candidate must deliver its row.
	disarm := guard.Arm("perfsim.simulate", guard.Fault{Count: 1, Delay: 10 * time.Second})
	defer disarm()

	h := Hardening{CandidateTimeout: 30 * time.Millisecond, MaxRetries: 2}
	rows, err := RuntimeStudyHardened(context.Background(), cands[:1], models, spec, opt, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(rows))
	}
}

func TestRuntimeStudyRejectsNaNRows(t *testing.T) {
	defer guard.DisarmAll()
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)

	// Corrupt candidate 0's achieved TOPS into NaN: the row must be
	// rejected with ErrNonFinite, never reaching the output.
	disarm := guard.Arm("perfsim.achieved_tops", guard.Fault{Count: 1, NaN: true})
	defer disarm()

	rows, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt, Hardening{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.AchievedTOPS) || math.IsNaN(r.TOPSPerWatt) {
			t.Fatalf("NaN leaked into row %s", r.Point)
		}
	}
}

func TestRuntimeStudyCancellationReturnsPartial(t *testing.T) {
	defer guard.DisarmAll()
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)

	// Cancel the sweep as candidate 1 starts: candidate 0's row survives
	// and the error is the classified cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	disarm := guard.Arm("dse.candidate", guard.Fault{Skip: 1, OnHit: cancel})
	defer disarm()

	rows, err := RuntimeStudyHardened(ctx, cands, models, spec, opt, Hardening{})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("error %v must wrap ErrCanceled", err)
	}
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1 completed before cancellation", len(rows))
	}
}

func TestCheckpointResumeIsByteIdentical(t *testing.T) {
	defer guard.DisarmAll()
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)
	fp := StudyFingerprint(cands, models, spec, opt)

	// Reference: one uninterrupted run.
	want, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt, Hardening{})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel while candidate 1 evaluates, with a
	// checkpoint armed.
	path := filepath.Join(t.TempDir(), "study.ckpt")
	ck, err := OpenCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	disarm := guard.Arm("dse.candidate", guard.Fault{Skip: 1, OnHit: cancel})
	partial, err := RuntimeStudyHardened(ctx, cands, models, spec, opt, Hardening{Checkpoint: ck})
	disarm()
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("interrupted run: %v", err)
	}
	if len(partial) != 1 {
		t.Fatalf("interrupted run produced %d rows, want 1", len(partial))
	}
	if _, serr := os.Stat(path); serr != nil {
		t.Fatalf("checkpoint not flushed: %v", serr)
	}

	// Resume from the checkpoint file: candidate 0 replays, 1 and 2 run.
	ck2, err := OpenCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Len() != 1 {
		t.Fatalf("reloaded checkpoint has %d outcomes, want 1", ck2.Len())
	}
	got, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt, Hardening{Checkpoint: ck2})
	if err != nil {
		t.Fatal(err)
	}

	if FormatRuntimeRows(got) != FormatRuntimeRows(want) {
		t.Fatalf("resumed output differs from uninterrupted run:\n--- want\n%s\n--- got\n%s",
			FormatRuntimeRows(want), FormatRuntimeRows(got))
	}
}

func TestCheckpointRejectsForeignFingerprint(t *testing.T) {
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)
	path := filepath.Join(t.TempDir(), "study.ckpt")

	ck, err := OpenCheckpoint(path, StudyFingerprint(cands, models, spec, opt))
	if err != nil {
		t.Fatal(err)
	}
	ck.Record(cands[0].Point, RuntimeRow{Point: cands[0].Point})
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}

	otherSpec := BatchSpec{Fixed: 128}
	if _, err := OpenCheckpoint(path, StudyFingerprint(cands, models, otherSpec, opt)); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("foreign checkpoint must fail with ErrInvalidConfig, got %v", err)
	}
}

func TestCheckpointReplaysFailures(t *testing.T) {
	ckPath := filepath.Join(t.TempDir(), "study.ckpt")
	ck, err := OpenCheckpoint(ckPath, "fp")
	if err != nil {
		t.Fatal(err)
	}
	p := Point{X: 8, N: 1, Tx: 1, Ty: 1}
	ck.RecordFailure(p, guard.Infeasible("dse: testing"))
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(ckPath, "fp")
	if err != nil {
		t.Fatal(err)
	}
	ferr, ok := ck2.LookupFailure(p)
	if !ok {
		t.Fatal("failure not recorded")
	}
	if !errors.Is(ferr, guard.ErrInfeasible) {
		t.Fatalf("replayed failure %v lost its guard kind", ferr)
	}
}

func TestWinnerSkipsNaN(t *testing.T) {
	rows := []RuntimeRow{
		{Point: Point{X: 8}, AchievedTOPS: math.NaN()},
		{Point: Point{X: 16}, AchievedTOPS: 10},
		{Point: Point{X: 32}, AchievedTOPS: 20},
	}
	w, err := Winner(rows, ByAchievedTOPS)
	if err != nil {
		t.Fatal(err)
	}
	if w.Point.X != 32 {
		t.Fatalf("winner %v, want X=32", w.Point)
	}

	allNaN := []RuntimeRow{{AchievedTOPS: math.NaN()}, {AchievedTOPS: math.NaN()}}
	if _, err := Winner(allNaN, ByAchievedTOPS); !errors.Is(err, guard.ErrNonFinite) {
		t.Fatalf("all-NaN rows must fail with ErrNonFinite, got %v", err)
	}
	if _, err := Winner(nil, ByAchievedTOPS); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("empty rows must fail with ErrInvalidConfig, got %v", err)
	}
}

func TestFrontierAndSortNaNSafe(t *testing.T) {
	base := findCand(t, Point{X: 64, N: 2, Tx: 2, Ty: 4})
	nan := base
	nan.Point = Point{X: 64, N: 2, Tx: 4, Ty: 4}
	nan.PeakTOPSPerTCO = math.NaN()
	nan.PeakTOPS = base.PeakTOPS // same bin as base

	front := Frontier([]Candidate{nan, base}, TableI().TOPSCap)
	for _, c := range front {
		if c.Point == nan.Point {
			t.Fatalf("NaN TOPS/TCO candidate won its frontier bin")
		}
	}

	// NaN PeakTOPS must sort last, not scramble the order.
	nanPeak := base
	nanPeak.Point = Point{X: 64, N: 2, Tx: 8, Ty: 8}
	nanPeak.PeakTOPS = math.NaN()
	sorted := Frontier([]Candidate{nanPeak, base}, TableI().TOPSCap)
	if len(sorted) > 1 && math.IsNaN(sorted[0].PeakTOPS) {
		t.Fatalf("NaN PeakTOPS sorted first")
	}
}

func TestEnumerateSurvivesInjectedBuildPanic(t *testing.T) {
	defer guard.DisarmAll()
	disarm := guard.Arm("chip.build", guard.Fault{Skip: 2, Count: 1, Panic: true})
	defer disarm()
	out := Enumerate(TableI())
	if len(out) < len(sweep)-1 {
		t.Fatalf("enumeration lost more than the panicking candidate: %d vs %d", len(out), len(sweep))
	}
}
