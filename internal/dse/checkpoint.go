package dse

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"neurometer/internal/graph"
	"neurometer/internal/guard"
	"neurometer/internal/perfsim"
)

// Sweep checkpointing: RuntimeStudyHardened records every candidate
// outcome (row or classified failure) into a versioned JSON file as it
// completes, so an interrupted sweep — SIGINT, deadline, crash — resumes
// where it stopped instead of re-simulating hours of candidates. The file
// is keyed by a study fingerprint (constraints, batch spec, options,
// workloads, candidate list) so a stale checkpoint from a different study
// is rejected instead of silently merging wrong results. JSON stores
// float64 values with round-trip-exact encoding, and the simulator is
// deterministic, so a resumed study's output is byte-identical to an
// uninterrupted run's.

// checkpointVersion is bumped whenever the on-disk format changes;
// OpenCheckpoint rejects files written by other versions.
const checkpointVersion = 1

type checkpointFailure struct {
	Kind string `json:"kind"`
	Msg  string `json:"msg"`
}

type checkpointFile struct {
	Version     int                          `json:"version"`
	Fingerprint string                       `json:"fingerprint"`
	Rows        map[string]RuntimeRow        `json:"rows"`
	Failures    map[string]checkpointFailure `json:"failures,omitempty"`
}

// Checkpoint is an on-disk record of completed candidate evaluations.
// All methods are safe for concurrent use: sweep workers record and flush
// outcomes under one internal mutex, so the atomic temp-file-plus-rename
// write protocol holds under any worker count and a SIGINT mid-sweep still
// leaves a valid, resumable file on disk. The serialized outcome maps
// marshal with sorted keys (encoding/json), making the file bytes
// independent of completion order.
type Checkpoint struct {
	path string

	mu    sync.Mutex
	file  checkpointFile
	dirty bool
}

// StudyFingerprint derives the identity of a runtime study from everything
// that determines its output. Two studies with the same fingerprint are
// interchangeable for resume purposes.
func StudyFingerprint(cands []Candidate, models []*graph.Graph, spec BatchSpec, opt perfsim.Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v%d|spec=%s|opt=%+v|models=", checkpointVersion, spec, opt)
	for i, g := range models {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(g.Name)
	}
	b.WriteString("|points=")
	for i, c := range cands {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(c.Point.String())
	}
	return b.String()
}

// OpenCheckpoint loads the checkpoint at path, or starts a fresh one if
// the file does not exist. A file with the wrong version or a different
// study fingerprint fails with guard.ErrInvalidConfig — resuming it would
// silently mix results from different sweeps.
func OpenCheckpoint(path, fingerprint string) (*Checkpoint, error) {
	fresh := &Checkpoint{path: path, file: checkpointFile{
		Version:     checkpointVersion,
		Fingerprint: fingerprint,
		Rows:        map[string]RuntimeRow{},
		Failures:    map[string]checkpointFailure{},
	}}
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return fresh, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dse: checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, guard.Invalid("dse: checkpoint %s is not a valid checkpoint: %v", path, err)
	}
	if f.Version != checkpointVersion {
		return nil, guard.Invalid("dse: checkpoint %s has version %d, this build reads version %d",
			path, f.Version, checkpointVersion)
	}
	if f.Fingerprint != fingerprint {
		return nil, guard.Invalid("dse: checkpoint %s was written by a different study (constraints, batch spec, options or candidate set changed)", path)
	}
	if f.Rows == nil {
		f.Rows = map[string]RuntimeRow{}
	}
	if f.Failures == nil {
		f.Failures = map[string]checkpointFailure{}
	}
	return &Checkpoint{path: path, file: f}, nil
}

// Lookup returns the recorded row for a design point.
func (c *Checkpoint) Lookup(p Point) (RuntimeRow, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	row, ok := c.file.Rows[p.String()]
	return row, ok
}

// LookupFailure returns the recorded failure for a design point,
// reconstructed under the guard taxonomy (guard.KindError) so errors.Is
// classification still works after a resume and the message stays
// byte-identical to the originally recorded one — re-recording a replayed
// failure must not mutate the checkpoint.
func (c *Checkpoint) LookupFailure(p Point) (error, bool) {
	c.mu.Lock()
	f, ok := c.file.Failures[p.String()]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	return guard.KindError(f.Kind, f.Msg), true
}

// Record stores a completed row. Flush persists it.
func (c *Checkpoint) Record(p Point, row RuntimeRow) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.file.Rows[p.String()] = row
	c.dirty = true
}

// RecordFailure stores a candidate failure by guard kind and message.
func (c *Checkpoint) RecordFailure(p Point, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.file.Failures[p.String()] = checkpointFailure{Kind: guard.Kind(err), Msg: err.Error()}
	c.dirty = true
}

// Len returns the number of recorded outcomes (rows plus failures).
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.file.Rows) + len(c.file.Failures)
}

// Flush writes the checkpoint atomically (temp file + rename + parent-dir
// fsync), so a crash mid-write leaves the previous checkpoint intact rather
// than a truncated JSON file, and a crash immediately after the rename —
// the window a SIGTERM drain closes in — cannot lose the rename itself: the
// directory entry is forced to disk before Flush reports success. A clean
// checkpoint is not rewritten, and a failed flush removes its temp file so
// retries (and operators listing the directory) never see stale .tmp
// droppings. The whole sequence runs under the checkpoint mutex, so
// concurrent sweep workers serialize their flushes and the on-disk file is
// always one complete, self-consistent snapshot.
func (c *Checkpoint) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dirty {
		return nil
	}
	b, err := json.MarshalIndent(&c.file, "", "  ")
	if err != nil {
		return fmt.Errorf("dse: checkpoint: %w", err)
	}
	dir := filepath.Dir(c.path)
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("dse: checkpoint: %w", err)
		}
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dse: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dse: checkpoint: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("dse: checkpoint: %w", err)
	}
	c.dirty = false
	return nil
}

// syncDir fsyncs a directory so a just-renamed file's directory entry is
// durable. Filesystems that refuse fsync on directories (EINVAL on some
// network mounts) are tolerated: the rename is still atomic, only the
// durability-after-crash guarantee degrades to the mount's own policy.
func syncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}
