package dse

import (
	"context"
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"

	"neurometer/internal/guard"
	"neurometer/internal/obs"
	"neurometer/internal/rstore"
)

// The result-store byte-identity suite: a study run against a cold, warm,
// poisoned (bit-flipped / torn / wrong-row), write-failing, read-failing,
// or absent store must produce byte-identical CSV output to the serial
// no-store reference. The store may only ever change where a row comes
// from, never what it contains.

func openCache(t *testing.T, dir string) *rstore.Cache {
	t.Helper()
	st, err := rstore.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := rstore.NewCache(st)
	t.Cleanup(func() { c.Close() })
	return c
}

func storeCounter(name string) int64 {
	return obs.Default().Snapshot().Counters[name]
}

// studyCSV runs the fixture study under h and renders its CSV.
func studyCSV(t *testing.T, h Hardening) string {
	t.Helper()
	cands, spec, opt := studyFixture(t)
	rows, err := RuntimeStudyHardened(context.Background(), cands, alexnet(t), spec, opt, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cands) {
		t.Fatalf("got %d rows, want %d", len(rows), len(cands))
	}
	return RuntimeRowsCSV(rows)
}

// storeEntryFiles lists the store's entry files.
func storeEntryFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(filepath.Join(dir, "objects"), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".res" {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func quarantineCount(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

func TestStoreColdWarmByteIdentity(t *testing.T) {
	ref := studyCSV(t, Hardening{}) // serial, storeless reference
	dir := t.TempDir()

	// Cold store, parallel workers: every candidate misses and evaluates.
	if got := studyCSV(t, Hardening{Results: openCache(t, dir), Workers: 4}); got != ref {
		t.Fatalf("cold-store CSV differs from reference:\n%s\n---\n%s", got, ref)
	}
	if n := len(storeEntryFiles(t, dir)); n != 3 {
		t.Fatalf("store holds %d entries after cold run, want 3", n)
	}

	// Warm store, fresh process (fresh cache over the same dir): every
	// candidate is served from disk — and the bytes still match.
	hitsBefore := storeCounter("rstore.hits")
	if got := studyCSV(t, Hardening{Results: openCache(t, dir), Workers: 4}); got != ref {
		t.Fatalf("warm-store CSV differs from reference")
	}
	if d := storeCounter("rstore.hits") - hitsBefore; d != 3 {
		t.Fatalf("warm run hit %d entries, want 3", d)
	}
}

func TestStorePoisonedBitFlipByteIdentity(t *testing.T) {
	ref := studyCSV(t, Hardening{})
	dir := t.TempDir()
	studyCSV(t, Hardening{Results: openCache(t, dir)}) // warm it

	// Flip one byte in every stored entry. Reads must detect, quarantine,
	// and silently re-evaluate.
	for _, f := range storeEntryFiles(t, dir) {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/3] ^= 0x20
		if err := os.WriteFile(f, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	qBefore := storeCounter("rstore.corrupt_quarantined")
	if got := studyCSV(t, Hardening{Results: openCache(t, dir), Workers: 2}); got != ref {
		t.Fatalf("poisoned-store CSV differs from reference")
	}
	if d := storeCounter("rstore.corrupt_quarantined") - qBefore; d != 3 {
		t.Fatalf("corrupt_quarantined delta = %d, want 3", d)
	}
	if q := quarantineCount(t, dir); q != 3 {
		t.Fatalf("quarantine holds %d entries, want 3", q)
	}
}

func TestStoreTornWriteByteIdentity(t *testing.T) {
	ref := studyCSV(t, Hardening{})
	dir := t.TempDir()
	studyCSV(t, Hardening{Results: openCache(t, dir)})

	// Tear one entry mid-payload and plant the *.tmp a SIGKILL between
	// write and rename would leave. OpenDisk's recovery scan must remove
	// the orphan and quarantine the torn entry without failing.
	files := storeEntryFiles(t, dir)
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[1]+".tmp", raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := rstore.OpenDisk(dir)
	if err != nil {
		t.Fatalf("recovery scan over torn store failed: %v", err)
	}
	if r := st.Report(); r.Entries != 2 || r.Quarantined != 1 || r.TmpRemoved != 1 {
		t.Fatalf("scan report = %+v, want entries=2 quarantined=1 tmp_removed=1", r)
	}
	cache := rstore.NewCache(st)
	defer cache.Close()
	if got := studyCSV(t, Hardening{Results: cache}); got != ref {
		t.Fatalf("post-recovery CSV differs from reference")
	}
}

func TestStoreENOSPCByteIdentity(t *testing.T) {
	defer guard.DisarmAll()
	ref := studyCSV(t, Hardening{})
	dir := t.TempDir()

	// Every write fails with ENOSPC: the study must neither fail nor slow
	// down beyond the evaluations themselves, and nothing is persisted.
	disarm := guard.Arm("rstore.write", guard.Fault{Err: syscall.ENOSPC})
	wfBefore := storeCounter("rstore.write_failures")
	if got := studyCSV(t, Hardening{Results: openCache(t, dir), Workers: 2}); got != ref {
		t.Fatalf("ENOSPC-store CSV differs from reference")
	}
	if d := storeCounter("rstore.write_failures") - wfBefore; d != 3 {
		t.Fatalf("write_failures delta = %d, want 3", d)
	}
	if n := len(storeEntryFiles(t, dir)); n != 0 {
		t.Fatalf("store holds %d entries despite ENOSPC, want 0", n)
	}
	disarm()

	// Disk recovered: the next run persists and still matches.
	if got := studyCSV(t, Hardening{Results: openCache(t, dir)}); got != ref {
		t.Fatalf("post-ENOSPC CSV differs from reference")
	}
	if n := len(storeEntryFiles(t, dir)); n != 3 {
		t.Fatalf("store holds %d entries after recovery, want 3", n)
	}
}

func TestStoreReadFaultByteIdentity(t *testing.T) {
	defer guard.DisarmAll()
	ref := studyCSV(t, Hardening{})
	dir := t.TempDir()
	studyCSV(t, Hardening{Results: openCache(t, dir)}) // warm

	// Every read fails (bad mount): all lookups degrade to evaluation.
	defer guard.Arm("rstore.read", guard.Fault{Err: guard.Unavailable("injected io error")})()
	degBefore := storeCounter("rstore.degraded")
	if got := studyCSV(t, Hardening{Results: openCache(t, dir), Workers: 2}); got != ref {
		t.Fatalf("read-fault CSV differs from reference")
	}
	if d := storeCounter("rstore.degraded") - degBefore; d < 3 {
		t.Fatalf("degraded delta = %d, want >= 3", d)
	}
}

func TestStoreWrongRowQuarantined(t *testing.T) {
	ref := studyCSV(t, Hardening{})
	cands, spec, opt := studyFixture(t)
	names := modelNames(alexnet(t))
	dir := t.TempDir()

	// Plant a checksum-valid entry whose payload describes a different
	// design point under candidate 0's fingerprint — the identity check
	// (not the checksum) must catch it.
	st, err := rstore.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := json.Marshal(RuntimeRow{Point: cands[1].Point, PeakTOPS: 1, AchievedTOPS: 1, Utilization: 1, PowerW: 1, TOPSPerWatt: 1, TOPSPerTCO: 1})
	if err != nil {
		t.Fatal(err)
	}
	fp0 := CandidateFingerprint(cands[0].Chip.Cfg, names, spec, opt)
	if err := st.Put(fp0, wrong); err != nil {
		t.Fatal(err)
	}
	// And an entry whose payload is not JSON at all under candidate 1's.
	fp1 := CandidateFingerprint(cands[1].Chip.Cfg, names, spec, opt)
	if err := st.Put(fp1, []byte("not json {")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	qBefore := storeCounter("rstore.corrupt_quarantined")
	if got := studyCSV(t, Hardening{Results: openCache(t, dir)}); got != ref {
		t.Fatalf("wrong-row store CSV differs from reference")
	}
	if d := storeCounter("rstore.corrupt_quarantined") - qBefore; d != 2 {
		t.Fatalf("corrupt_quarantined delta = %d, want 2", d)
	}
	if q := quarantineCount(t, dir); q != 2 {
		t.Fatalf("quarantine holds %d entries, want 2", q)
	}
}

func TestStoreConcurrentStudiesByteIdentity(t *testing.T) {
	ref := studyCSV(t, Hardening{})
	cache := openCache(t, t.TempDir())

	// Two studies over the same candidates race on a shared cache: the
	// single-flight layer dedupes whatever overlaps in time, and both
	// outputs match the reference exactly.
	var wg sync.WaitGroup
	out := make([]string, 2)
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cands, spec, opt := studyFixture(t)
			rows, err := RuntimeStudyHardened(context.Background(), cands, alexnet(t), spec, opt,
				Hardening{Results: cache, Workers: 2})
			if err != nil {
				t.Error(err)
				return
			}
			out[i] = RuntimeRowsCSV(rows)
		}(i)
	}
	wg.Wait()
	for i, got := range out {
		if got != ref {
			t.Fatalf("concurrent study %d CSV differs from reference", i)
		}
	}
}

func TestStoreWarmsFromRemoteOutcomes(t *testing.T) {
	ref := studyCSV(t, Hardening{})
	dir := t.TempDir()

	// A dispatcher that resolves every candidate "remotely" (worker-side
	// EvalShard with no store). The coordinator's store must warm from the
	// reported outcomes, so the next run hits without evaluating.
	dispatch := func(ctx context.Context, sh Shard, report func(ShardOutcome)) {
		outs, err := EvalShard(ctx, sh, 1, nil)
		if err != nil {
			t.Error(err)
			return
		}
		for _, o := range outs {
			report(o)
		}
	}
	got := studyCSV(t, Hardening{Results: openCache(t, dir), Dispatch: dispatch})
	if got != ref {
		t.Fatalf("remote-dispatch CSV differs from reference")
	}
	if n := len(storeEntryFiles(t, dir)); n != 3 {
		t.Fatalf("store holds %d entries after remote run, want 3", n)
	}
	hitsBefore := storeCounter("rstore.hits")
	if got := studyCSV(t, Hardening{Results: openCache(t, dir)}); got != ref {
		t.Fatalf("post-remote warm CSV differs from reference")
	}
	if d := storeCounter("rstore.hits") - hitsBefore; d != 3 {
		t.Fatalf("warm run after remote dispatch hit %d, want 3", d)
	}
}

func TestEvalShardConsultsStore(t *testing.T) {
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)
	sh := BuildShard(cands, []int{0, 1, 2}, models, spec, opt, Hardening{})

	want, err := EvalShard(context.Background(), sh, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	// First store-backed evaluation populates; the second is served from
	// disk (hits counter advances by the shard size) with equal outcomes.
	dir := t.TempDir()
	first, err := EvalShard(context.Background(), sh, 2, openCache(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore := storeCounter("rstore.hits")
	second, err := EvalShard(context.Background(), sh, 2, openCache(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	if d := storeCounter("rstore.hits") - hitsBefore; d != 3 {
		t.Fatalf("second shard eval hit %d entries, want 3", d)
	}
	for i := range want {
		a, _ := json.Marshal(want[i])
		b, _ := json.Marshal(first[i])
		c, _ := json.Marshal(second[i])
		if string(a) != string(b) || string(a) != string(c) {
			t.Fatalf("outcome %d differs across store modes:\n%s\n%s\n%s", i, a, b, c)
		}
	}
}

func TestStoreHitsRecordIntoCheckpoint(t *testing.T) {
	ref := studyCSV(t, Hardening{})
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)
	dir := t.TempDir()
	studyCSV(t, Hardening{Results: openCache(t, dir)}) // warm the store

	// A warm run with a checkpoint must record its store hits, so a
	// subsequent resume replays them without touching store or simulator.
	ckptPath := filepath.Join(t.TempDir(), "study.json")
	fp := StudyFingerprint(cands, models, spec, opt)
	ck, err := OpenCheckpoint(ckptPath, fp)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt,
		Hardening{Results: openCache(t, dir), Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	if RuntimeRowsCSV(rows) != ref {
		t.Fatalf("warm checkpointed CSV differs from reference")
	}
	ck2, err := OpenCheckpoint(ckptPath, fp)
	if err != nil {
		t.Fatal(err)
	}
	resumedBefore := storeCounter("dse.candidates_resumed")
	rows2, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt,
		Hardening{Checkpoint: ck2}) // no store this time
	if err != nil {
		t.Fatal(err)
	}
	if RuntimeRowsCSV(rows2) != ref {
		t.Fatalf("checkpoint-resumed CSV differs from reference")
	}
	if d := storeCounter("dse.candidates_resumed") - resumedBefore; d != 3 {
		t.Fatalf("resume replayed %d candidates, want 3", d)
	}
}
