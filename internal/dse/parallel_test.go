package dse

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"neurometer/internal/guard"
)

// The determinism contract: every observable sweep artifact — candidate
// lists, formatted tables, CSV, checkpoint files — must be byte-identical
// at any worker count. These tests pin that contract; `go test -race`
// additionally proves the pool itself is race-free.

func TestEnumerateParallelMatchesSerial(t *testing.T) {
	cs := TableI()
	serial := EnumerateParallel(context.Background(), cs, 1)
	par := EnumerateParallel(context.Background(), cs, 8)
	if len(serial) != len(par) {
		t.Fatalf("serial found %d candidates, parallel found %d", len(serial), len(par))
	}
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("candidate %d differs: serial %+v, parallel %+v", i, serial[i], par[i])
		}
	}
}

func TestRuntimeStudyParallelByteIdentical(t *testing.T) {
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)

	serial, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt, Hardening{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt, Hardening{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if FormatRuntimeRows(serial) != FormatRuntimeRows(par) {
		t.Fatalf("parallel table differs from serial:\n--- serial\n%s\n--- parallel\n%s",
			FormatRuntimeRows(serial), FormatRuntimeRows(par))
	}
	if RuntimeRowsCSV(serial) != RuntimeRowsCSV(par) {
		t.Fatalf("parallel CSV differs from serial:\n--- serial\n%s\n--- parallel\n%s",
			RuntimeRowsCSV(serial), RuntimeRowsCSV(par))
	}
}

func TestRuntimeStudyParallelCheckpointBytesMatchSerial(t *testing.T) {
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)
	fp := StudyFingerprint(cands, models, spec, opt)
	dir := t.TempDir()

	run := func(name string, workers int) []byte {
		path := filepath.Join(dir, name)
		ck, err := OpenCheckpoint(path, fp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt,
			Hardening{Checkpoint: ck, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	serial := run("serial.ckpt", 1)
	par := run("parallel.ckpt", 8)
	if string(serial) != string(par) {
		t.Fatalf("parallel checkpoint bytes differ from serial:\n--- serial\n%s\n--- parallel\n%s",
			serial, par)
	}
}

func TestParallelCancelResumeMatchesSerial(t *testing.T) {
	defer guard.DisarmAll()
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)
	fp := StudyFingerprint(cands, models, spec, opt)

	// Reference: one uninterrupted serial run.
	want, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt, Hardening{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted parallel run: the second candidate to start evaluation
	// cancels the sweep. Which candidates complete first is scheduling
	// dependent — that is the point — but the checkpoint on disk must stay
	// valid and the resumed output must still match the serial reference.
	path := filepath.Join(t.TempDir(), "study.ckpt")
	ck, err := OpenCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	disarm := guard.Arm("dse.candidate", guard.Fault{Skip: 1, OnHit: cancel})
	_, err = RuntimeStudyHardened(ctx, cands, models, spec, opt, Hardening{Checkpoint: ck, Workers: 8})
	disarm()
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("interrupted run must classify as canceled, got %v", err)
	}

	// Resume in parallel from whatever the interrupted run left behind.
	ck2, err := OpenCheckpoint(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt,
		Hardening{Checkpoint: ck2, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if FormatRuntimeRows(got) != FormatRuntimeRows(want) {
		t.Fatalf("resumed parallel output differs from serial reference:\n--- want\n%s\n--- got\n%s",
			FormatRuntimeRows(want), FormatRuntimeRows(got))
	}
	if RuntimeRowsCSV(got) != RuntimeRowsCSV(want) {
		t.Fatalf("resumed parallel CSV differs from serial reference")
	}
}

func TestRuntimeStudyParallelSurvivesInjectedPanic(t *testing.T) {
	defer guard.DisarmAll()
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)

	// Exactly one simulation panics (whichever worker draws it); the pool
	// must absorb it as a classified candidate failure and deliver the
	// other rows. Run under -race this also proves the injection registry
	// and failure accounting are race-free inside the pool.
	disarm := guard.Arm("perfsim.simulate", guard.Fault{Panic: true, Count: 1})
	defer disarm()

	rows, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt, Hardening{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cands)-1 {
		t.Fatalf("got %d rows, want %d (one candidate sacrificed to the injected panic)",
			len(rows), len(cands)-1)
	}
}

func TestResolveWorkers(t *testing.T) {
	for _, tc := range []struct{ in, wantMin int }{
		{0, 1}, {1, 1}, {3, 3},
	} {
		if got := resolveWorkers(tc.in); got != tc.wantMin {
			t.Errorf("resolveWorkers(%d) = %d, want %d", tc.in, got, tc.wantMin)
		}
	}
	if got := resolveWorkers(DefaultWorkers); got < 1 {
		t.Errorf("resolveWorkers(DefaultWorkers) = %d, want >= 1", got)
	}
}
