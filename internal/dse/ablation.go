package dse

import (
	"fmt"
	"strings"

	"neurometer/internal/chip"
	"neurometer/internal/maclib"
	"neurometer/internal/tech"
	"neurometer/internal/tensorunit"
)

// This file contains the ablation studies for the design choices DESIGN.md
// calls out: NoC topology, memory cell technology, inner-TU interconnect,
// VReg port sharing, dataflow, and operand data type. Each ablation takes a
// reference design point and varies exactly one axis, reporting the chip-
// level consequences — the kind of what-if a NeuroMeter user runs before
// committing to an architecture.

// AblationRow is one variant of an ablation study.
type AblationRow struct {
	Variant  string
	AreaMM2  float64
	TDPW     float64
	PeakTOPS float64
	// TOPSPerW is peak TOPS per TDP watt.
	TOPSPerW float64
	// Note carries a study-specific observation (e.g. NoC share).
	Note string
}

// FormatAblation renders an ablation table.
func FormatAblation(title string, rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== ablation: %s ==\n", title)
	fmt.Fprintf(&sb, "%-22s %9s %8s %9s %9s  %s\n", "variant", "area-mm2", "TDP-W", "peakTOPS", "TOPS/W", "note")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %9.1f %8.1f %9.2f %9.3f  %s\n",
			r.Variant, r.AreaMM2, r.TDPW, r.PeakTOPS, r.TOPSPerW, r.Note)
	}
	return sb.String()
}

// ablationConfig builds the variant config with the budget constraints
// lifted: an ablation is a what-if, and some variants (e.g. a 256GB/s bus
// spanning 16 tiles) exist precisely to show how badly they blow a budget.
func ablationConfig(cs Constraints, p Point) chip.Config {
	cfg := cs.Config(p)
	cfg.AreaBudgetMM2 = 0
	cfg.PowerBudgetW = 0
	return cfg
}

func ablationRow(name, note string, c *chip.Chip) AblationRow {
	return AblationRow{
		Variant: name, AreaMM2: c.AreaMM2(), TDPW: c.TDPW(),
		PeakTOPS: c.PeakTOPS(), TOPSPerW: c.PeakTOPSPerWatt(), Note: note,
	}
}

// AblateNoCTopology compares the four NoC shapes on a 16-core design at the
// Table-I bisection bandwidth.
func AblateNoCTopology(cs Constraints) ([]AblationRow, error) {
	var rows []AblationRow
	for _, tc := range []struct {
		name string
		topo chip.NoCTopology
	}{
		{"mesh2d", chip.NoCMesh},
		{"ring", chip.NoCRing},
		{"bus", chip.NoCBus},
		{"htree", chip.NoCHTree},
	} {
		cfg := ablationConfig(cs, Point{X: 32, N: 4, Tx: 4, Ty: 4})
		cfg.Name = "noc-" + tc.name
		cfg.NoCTopology = tc.topo
		c, err := chip.BuildCached(cfg)
		if err != nil {
			return nil, fmt.Errorf("dse: noc ablation %s: %w", tc.name, err)
		}
		noc := c.AreaBreakdown().Find("noc")
		rows = append(rows, ablationRow(tc.name,
			fmt.Sprintf("noc=%.1fmm2/%.1fW", noc.AreaMM2, noc.PowerW), c))
	}
	return rows, nil
}

// AblateMemoryCell compares SRAM against eDRAM for the distributed on-chip
// memory (§II-A: "the cell type of Mem can be selected from DFF, SRAM, and
// eDRAM").
func AblateMemoryCell(cs Constraints) ([]AblationRow, error) {
	var rows []AblationRow
	for _, tc := range []struct {
		name string
		cell tech.MemCell
	}{
		{"sram", tech.CellSRAM},
		{"edram", tech.CellEDRAM},
	} {
		cfg := ablationConfig(cs, Point{X: 64, N: 2, Tx: 2, Ty: 4})
		cfg.Name = "mem-" + tc.name
		cfg.Core.MemCell = tc.cell
		c, err := chip.BuildCached(cfg)
		if err != nil {
			return nil, fmt.Errorf("dse: mem ablation %s: %w", tc.name, err)
		}
		mem := c.AreaBreakdown().Find("mem")
		rows = append(rows, ablationRow(tc.name,
			fmt.Sprintf("mem=%.1fmm2/%.1fW", mem.AreaMM2, mem.PowerW), c))
	}
	return rows, nil
}

// AblateInterconnect compares unicast (TPU-style) against multicast
// (Eyeriss-style) inner-TU interconnect on a mid-size array.
func AblateInterconnect(cs Constraints) ([]AblationRow, error) {
	var rows []AblationRow
	for _, tc := range []struct {
		name string
		ic   tensorunit.Interconnect
	}{
		{"unicast", tensorunit.Unicast},
		{"multicast", tensorunit.Multicast},
	} {
		cfg := ablationConfig(cs, Point{X: 32, N: 2, Tx: 2, Ty: 2})
		cfg.Name = "ic-" + tc.name
		cfg.Core.TUInterconnect = tc.ic
		c, err := chip.BuildCached(cfg)
		if err != nil {
			return nil, fmt.Errorf("dse: interconnect ablation %s: %w", tc.name, err)
		}
		rows = append(rows, ablationRow(tc.name,
			fmt.Sprintf("tu-crit=%.0fps", c.Core.TU.CritPathPS()), c))
	}
	return rows, nil
}

// AblateVRegSharing quantifies the §III-A VReg port-explosion tradeoff:
// private 2R1W port groups per functional unit versus one shared group.
func AblateVRegSharing(cs Constraints) ([]AblationRow, error) {
	var rows []AblationRow
	for _, tc := range []struct {
		name   string
		shared bool
	}{
		{"private-ports", false},
		{"shared-ports", true},
	} {
		cfg := ablationConfig(cs, Point{X: 16, N: 4, Tx: 2, Ty: 2})
		cfg.Name = "vreg-" + tc.name
		cfg.Core.SharedVRegPorts = tc.shared
		c, err := chip.BuildCached(cfg)
		if err != nil {
			return nil, fmt.Errorf("dse: vreg ablation %s: %w", tc.name, err)
		}
		rows = append(rows, ablationRow(tc.name,
			fmt.Sprintf("vu=%.2fmm2 (%dR%dW)", c.Core.VU.AreaUM2()/1e6,
				c.Core.VU.Cfg.VRegReadPorts, c.Core.VU.Cfg.VRegWritePorts), c))
	}
	return rows, nil
}

// AblateDataflow compares weight-stationary against output-stationary
// systolic cells (§II-A: both supported for unicast TUs).
func AblateDataflow(cs Constraints) ([]AblationRow, error) {
	var rows []AblationRow
	for _, tc := range []struct {
		name string
		df   tensorunit.Dataflow
	}{
		{"weight-stationary", tensorunit.WeightStationary},
		{"output-stationary", tensorunit.OutputStationary},
	} {
		cfg := ablationConfig(cs, Point{X: 64, N: 2, Tx: 2, Ty: 4})
		cfg.Name = "df-" + tc.name
		cfg.Core.TUDataflow = tc.df
		c, err := chip.BuildCached(cfg)
		if err != nil {
			return nil, fmt.Errorf("dse: dataflow ablation %s: %w", tc.name, err)
		}
		rows = append(rows, ablationRow(tc.name,
			fmt.Sprintf("tu=%.1fmm2", c.AreaBreakdown().Find("tu").AreaMM2), c))
	}
	return rows, nil
}

// AblateDataType compares Int8 inference arithmetic against a BF16 variant
// of the same design point — the training-accelerator direction the paper
// leaves to future work (§III: "NeuroMeter models both training and
// inference accelerators").
func AblateDataType(cs Constraints) ([]AblationRow, error) {
	var rows []AblationRow
	for _, tc := range []struct {
		name string
		dt   maclib.DataType
	}{
		{"int8-inference", maclib.Int8},
		{"bf16-training", maclib.BF16},
	} {
		cfg := ablationConfig(cs, Point{X: 64, N: 2, Tx: 2, Ty: 4})
		cfg.Name = "dt-" + tc.name
		cfg.Core.TUDataType = tc.dt
		c, err := chip.BuildCached(cfg)
		if err != nil {
			return nil, fmt.Errorf("dse: datatype ablation %s: %w", tc.name, err)
		}
		rows = append(rows, ablationRow(tc.name,
			fmt.Sprintf("%.2fpJ/MAC", c.Core.TU.PerMACPJ()), c))
	}
	return rows, nil
}

// AllAblations runs every ablation study and returns the rendered report.
func AllAblations(cs Constraints) (string, error) {
	var sb strings.Builder
	for _, study := range []struct {
		name string
		run  func(Constraints) ([]AblationRow, error)
	}{
		{"NoC topology (32x32 TUs, 16 cores)", AblateNoCTopology},
		{"memory cell technology (64x64 TUs, 8 cores)", AblateMemoryCell},
		{"inner-TU interconnect (32x32 TUs)", AblateInterconnect},
		{"VReg port sharing (N=4 TUs per core)", AblateVRegSharing},
		{"systolic dataflow (64x64 TUs)", AblateDataflow},
		{"operand data type (64x64 TUs)", AblateDataType},
	} {
		rows, err := study.run(cs)
		if err != nil {
			return "", err
		}
		sb.WriteString(FormatAblation(study.name, rows))
		sb.WriteString("\n")
	}
	return sb.String(), nil
}
