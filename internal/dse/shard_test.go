package dse

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"neurometer/internal/guard"
)

// wireDispatch returns a Hardening.Dispatch that does exactly what a fleet
// worker does — marshal the shard, unmarshal it in "another process",
// EvalShard, marshal the result, unmarshal it coordinator-side — and then
// reports the outcomes for the indices keep selects (nil = all). The double
// JSON round-trip is the point: it proves the wire encoding itself is
// byte-exact, not just the in-memory structs.
func wireDispatch(t *testing.T, keep func(i int) bool, reports *[]ShardOutcome) func(context.Context, Shard, func(ShardOutcome)) {
	t.Helper()
	return func(ctx context.Context, sh Shard, report func(ShardOutcome)) {
		b, err := json.Marshal(sh)
		if err != nil {
			t.Errorf("marshal shard: %v", err)
			return
		}
		var remote Shard
		if err := json.Unmarshal(b, &remote); err != nil {
			t.Errorf("unmarshal shard: %v", err)
			return
		}
		outs, err := EvalShard(ctx, remote, 1, nil)
		if err != nil {
			t.Errorf("EvalShard: %v", err)
			return
		}
		rb, err := json.Marshal(ShardResult{Outcomes: outs})
		if err != nil {
			t.Errorf("marshal result: %v", err)
			return
		}
		var res ShardResult
		if err := json.Unmarshal(rb, &res); err != nil {
			t.Errorf("unmarshal result: %v", err)
			return
		}
		for _, o := range res.Outcomes {
			if keep != nil && !keep(o.Index) {
				continue
			}
			if reports != nil {
				*reports = append(*reports, o)
			}
			report(o)
		}
	}
}

// TestShardDispatchByteIdentical is the core fleet determinism claim at the
// dse layer: a study whose candidates are all evaluated remotely — through
// a JSON round-trip of both the shard and its result — emits tables, CSV,
// and checkpoint bytes identical to a plain serial run.
func TestShardDispatchByteIdentical(t *testing.T) {
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)
	fp := StudyFingerprint(cands, models, spec, opt)
	dir := t.TempDir()

	run := func(name string, dispatch func(context.Context, Shard, func(ShardOutcome))) ([]RuntimeRow, []byte) {
		path := filepath.Join(dir, name)
		ck, err := OpenCheckpoint(path, fp)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt,
			Hardening{Checkpoint: ck, Workers: 1, Dispatch: dispatch})
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return rows, b
	}

	want, wantCk := run("serial.ckpt", nil)
	got, gotCk := run("remote.ckpt", wireDispatch(t, nil, nil))

	if FormatRuntimeRows(got) != FormatRuntimeRows(want) {
		t.Fatalf("remote rows differ from serial:\n--- serial\n%s\n--- remote\n%s",
			FormatRuntimeRows(want), FormatRuntimeRows(got))
	}
	if RuntimeRowsCSV(got) != RuntimeRowsCSV(want) {
		t.Fatalf("remote CSV differs from serial")
	}
	if string(gotCk) != string(wantCk) {
		t.Fatalf("remote checkpoint bytes differ from serial:\n--- serial\n%s\n--- remote\n%s",
			wantCk, gotCk)
	}
}

// TestShardDispatchPartialFallsBackLocal: a dispatcher that resolves only
// some candidates leaves the rest to the local pool, and the merged output
// is still byte-identical to serial — graceful degradation by construction.
func TestShardDispatchPartialFallsBackLocal(t *testing.T) {
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)

	want, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt, Hardening{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	var reported []ShardOutcome
	got, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt, Hardening{
		Workers:  1,
		Dispatch: wireDispatch(t, func(i int) bool { return i%2 == 0 }, &reported),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reported) == 0 || len(reported) == len(cands) {
		t.Fatalf("partial dispatch reported %d of %d candidates, want a strict subset", len(reported), len(cands))
	}
	if FormatRuntimeRows(got) != FormatRuntimeRows(want) {
		t.Fatalf("partial-dispatch rows differ from serial:\n--- serial\n%s\n--- got\n%s",
			FormatRuntimeRows(want), FormatRuntimeRows(got))
	}
}

// TestShardDispatchIgnoresDuplicatesAndBogusIndices: hedged dispatch can
// deliver the same outcome twice, and a buggy or malicious worker can report
// indices outside the study. The merge must take the first report for an
// index and drop the garbage, keeping output byte-identical.
func TestShardDispatchIgnoresDuplicatesAndBogusIndices(t *testing.T) {
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)

	want, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt, Hardening{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	dispatch := func(ctx context.Context, sh Shard, report func(ShardOutcome)) {
		outs, err := EvalShard(ctx, sh, 1, nil)
		if err != nil {
			t.Errorf("EvalShard: %v", err)
			return
		}
		report(ShardOutcome{Index: -5, Kind: "error", Err: "bogus"})
		report(ShardOutcome{Index: len(cands) + 3, Kind: "error", Err: "bogus"})
		for _, o := range outs {
			report(o)
			// Hedged duplicate: a conflicting second report for the same
			// index must lose to the first.
			report(ShardOutcome{Index: o.Index, Kind: "unavailable", Err: "late hedge"})
		}
	}
	got, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt,
		Hardening{Workers: 1, Dispatch: dispatch})
	if err != nil {
		t.Fatal(err)
	}
	if FormatRuntimeRows(got) != FormatRuntimeRows(want) {
		t.Fatalf("noisy dispatch changed the output:\n--- serial\n%s\n--- got\n%s",
			FormatRuntimeRows(want), FormatRuntimeRows(got))
	}
}

// TestShardRemoteFailureCheckpointByteIdentical: a candidate that fails on
// a worker crosses the wire as (kind, msg) and must land in the coordinator
// checkpoint byte-for-byte as it would have failing locally — the property
// guard.KindError exists for.
func TestShardRemoteFailureCheckpointByteIdentical(t *testing.T) {
	defer guard.DisarmAll()
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)
	fp := StudyFingerprint(cands, models, spec, opt)
	dir := t.TempDir()

	// The second candidate fails with a non-retryable taxonomy error, in
	// both regimes. Workers:1 on both sides keeps the hit order equal to
	// candidate order, so the fault targets the same design point.
	arm := func() {
		guard.Arm("dse.candidate", guard.Fault{Skip: 1, Count: 1,
			Err: guard.Infeasible("injected: no feasible mapping")})
	}

	run := func(name string, dispatch func(context.Context, Shard, func(ShardOutcome))) []byte {
		arm()
		defer guard.DisarmAll()
		path := filepath.Join(dir, name)
		ck, err := OpenCheckpoint(path, fp)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt,
			Hardening{Checkpoint: ck, Workers: 1, Dispatch: dispatch})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(cands)-1 {
			t.Fatalf("%s: got %d rows, want %d (one injected failure)", name, len(rows), len(cands)-1)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	local := run("local.ckpt", nil)
	remote := run("remote.ckpt", wireDispatch(t, nil, nil))
	if string(remote) != string(local) {
		t.Fatalf("remote failure checkpoint differs from local:\n--- local\n%s\n--- remote\n%s",
			local, remote)
	}
}

// TestEvalShardRejectsMalformedShards: empty candidate sets, empty model
// sets and unknown workloads are coordinator bugs, not candidate failures —
// they must fail the whole shard with an invalid-config classification so
// the coordinator does not retry them forever.
func TestEvalShardRejectsMalformedShards(t *testing.T) {
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)
	good := BuildShard(cands, []int{0, 1}, models, spec, opt, Hardening{})

	cases := map[string]Shard{
		"no candidates":    {Spec: spec, Opt: opt, Models: good.Models},
		"no models":        {Spec: spec, Opt: opt, Cands: good.Cands},
		"unknown workload": {Spec: spec, Opt: opt, Models: []string{"not-a-net"}, Cands: good.Cands},
	}
	for name, sh := range cases {
		if _, err := EvalShard(context.Background(), sh, 1, nil); !errorsIsInvalid(err) {
			t.Errorf("%s: EvalShard = %v, want ErrInvalidConfig", name, err)
		}
	}
}

func errorsIsInvalid(err error) bool { return err != nil && guard.Kind(err) == "invalid-config" }

// TestBuildShardCarriesHardening: the worker must enforce the same
// per-candidate deadline and retry budget the coordinator would have
// enforced locally.
func TestBuildShardCarriesHardening(t *testing.T) {
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)
	sh := BuildShard(cands, []int{2, 0}, models, spec, opt, Hardening{
		CandidateTimeout: 1500e6, // 1.5s
		MaxRetries:       3,
	})
	if sh.CandidateTimeoutMS != 1500 || sh.MaxRetries != 3 {
		t.Fatalf("hardening knobs not carried: %+v", sh)
	}
	if len(sh.Cands) != 2 || sh.Cands[0].Index != 2 || sh.Cands[1].Index != 0 {
		t.Fatalf("indices not preserved: %+v", sh.Cands)
	}
	if sh.Cands[0].Point != cands[2].Point {
		t.Fatalf("point mismatch: %+v vs %+v", sh.Cands[0].Point, cands[2].Point)
	}
}
