package dse

import (
	"context"
	"testing"
	"time"

	"neurometer/internal/chaos/invariants"
	"neurometer/internal/guard"
)

// checkGaugesDrained asserts the pool gauges returned to zero once a sweep
// finished — the regression contract for the inflight-slot leak: panics and
// timeouts inside candidate evaluation must not strand dse.eval_inflight or
// dse.queue_depth above zero. The check itself is the shared invariant the
// chaos engine runs after every episode.
func checkGaugesDrained(t *testing.T) {
	t.Helper()
	invariants.RequireGaugesDrained(t, "dse.eval_inflight", "dse.queue_depth")
}

func TestGaugesDrainAfterPanickingCandidates(t *testing.T) {
	defer guard.DisarmAll()
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)

	// Every candidate's simulation panics; the recovery path must still
	// release its inflight slot.
	disarm := guard.Arm("perfsim.simulate", guard.Fault{Panic: true})
	defer disarm()

	_, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt, Hardening{Workers: 2})
	if err == nil {
		t.Fatal("want all-candidates-failed error")
	}
	checkGaugesDrained(t)
}

func TestGaugesDrainAfterTimeouts(t *testing.T) {
	defer guard.DisarmAll()
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)

	// Every attempt stalls past the deadline: the evaluator abandons the
	// candidate goroutine mid-flight, which must not leak a slot.
	disarm := guard.Arm("perfsim.simulate", guard.Fault{Delay: 10 * time.Second})
	defer disarm()

	h := Hardening{CandidateTimeout: 20 * time.Millisecond, Workers: 2}
	_, err := RuntimeStudyHardened(context.Background(), cands, models, spec, opt, h)
	if err == nil {
		t.Fatal("want all-candidates-failed error")
	}
	checkGaugesDrained(t)
}

func TestGaugesDrainAfterShardFaults(t *testing.T) {
	defer guard.DisarmAll()
	cands, spec, opt := studyFixture(t)
	models := alexnet(t)

	disarm := guard.Arm("perfsim.simulate", guard.Fault{Skip: 1, Count: 1, Panic: true})
	defer disarm()

	sh := BuildShard(cands, []int{0, 1, 2}, models, spec, opt, Hardening{})
	outs, err := EvalShard(context.Background(), sh, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes, want 3", len(outs))
	}
	checkGaugesDrained(t)
}
