package dse

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"neurometer/internal/chip"
	"neurometer/internal/graph"
	"neurometer/internal/guard"
	"neurometer/internal/maclib"
	"neurometer/internal/obs"
	"neurometer/internal/perfsim"
	"neurometer/internal/periph"
	"neurometer/internal/rstore"
	"neurometer/internal/workloads"
)

// Observability: sweep counters and the per-candidate evaluation latency
// histogram feed the obs default registry; progress is logged at debug
// level (visible under the CLIs' -v flag).
var (
	mEnumerated   = obs.NewCounter("dse.candidates_enumerated")
	mPruned       = obs.NewCounter("dse.candidates_pruned")
	mFeasible     = obs.NewCounter("dse.candidates_feasible")
	mEvalFailures = obs.NewCounter("dse.candidate_failures")
	mEvalRetries  = obs.NewCounter("dse.candidate_retries")
	mEvalPanics   = obs.NewCounter("dse.candidate_panics")
	mResumed      = obs.NewCounter("dse.candidates_resumed")
	mRemote       = obs.NewCounter("dse.candidates_remote")
	mEvalLatency  = obs.NewHistogram("dse.candidate_eval_seconds", nil)
)

// progressEvery is the candidate interval between progress log lines in
// the enumeration and runtime-study loops.
const progressEvery = 16

// Point is one design point: TU length X, TUs per core N, and the Tx x Ty
// tile grid.
type Point struct {
	X, N, Tx, Ty int
}

func (p Point) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d)", p.X, p.N, p.Tx, p.Ty)
}

// Tiles returns the core count.
func (p Point) Tiles() int { return p.Tx * p.Ty }

// Constraints mirrors Table I.
type Constraints struct {
	TechNM        int
	ClockHz       float64
	AreaBudgetMM2 float64
	PowerBudgetW  float64
	TOPSCap       float64
	MemBytes      int64
	NoCBisectGBps float64
	OffChipGBps   float64
	// XChoices / NChoices bound the sweep; MaxTiles bounds the grid.
	XChoices []int
	NChoices []int
	MaxTiles int
}

// TableI returns the paper's datacenter constraint set: 28nm, 700MHz,
// 500mm^2 / 300W budgets, 92 TOPS upper bound, 32MB distributed memory,
// 256GB/s NoC bisection, 700GB/s HBM.
func TableI() Constraints {
	return Constraints{
		TechNM:        28,
		ClockHz:       700e6,
		AreaBudgetMM2: 500,
		PowerBudgetW:  300,
		TOPSCap:       92,
		MemBytes:      32 << 20,
		NoCBisectGBps: 256,
		OffChipGBps:   700,
		XChoices:      []int{4, 8, 16, 32, 64, 128, 256},
		NChoices:      []int{1, 2, 4},
		MaxTiles:      128,
	}
}

// Config converts a design point into a chip configuration under the
// constraint set.
func (cs Constraints) Config(p Point) chip.Config {
	return chip.Config{
		Name: p.String(), TechNM: cs.TechNM, ClockHz: cs.ClockHz,
		Tx: p.Tx, Ty: p.Ty,
		Core: chip.CoreConfig{
			NumTUs: p.N, TURows: p.X, TUCols: p.X, TUDataType: maclib.Int8,
			HasSU: true,
			Mem: []chip.MemSegment{{
				Name: "spad", CapacityBytes: cs.MemBytes / int64(p.Tiles()),
			}},
		},
		NoCBisectionGBps: cs.NoCBisectGBps,
		OffChip:          []chip.OffChipPort{{Kind: periph.HBMPort, GBps: cs.OffChipGBps}},
		AreaBudgetMM2:    cs.AreaBudgetMM2,
		PowerBudgetW:     cs.PowerBudgetW,
	}
}

// Candidate is an evaluated, feasible design point.
type Candidate struct {
	Point Point
	Chip  *chip.Chip

	PeakTOPS       float64
	AreaMM2        float64
	TDPW           float64
	PeakTOPSPerW   float64
	PeakTOPSPerTCO float64
}

// gridShapes enumerates Tx x Ty grids with power-of-two dimensions where
// Tx == Ty or Tx == Ty/2 (the paper's square-ish layout rule).
func gridShapes(maxTiles int) [][2]int {
	var out [][2]int
	for tx := 1; tx*tx <= maxTiles*2; tx *= 2 {
		for _, ty := range []int{tx, 2 * tx} {
			if tx*ty <= maxTiles {
				out = append(out, [2]int{tx, ty})
			}
		}
	}
	return out
}

// sweepPoints lists the full (X, N, Tx, Ty) sweep in its deterministic
// enumeration order — the order candidate indices refer to.
func (cs Constraints) sweepPoints() []Point {
	var pts []Point
	for _, x := range cs.XChoices {
		for _, n := range cs.NChoices {
			for _, g := range gridShapes(cs.MaxTiles) {
				pts = append(pts, Point{X: x, N: n, Tx: g[0], Ty: g[1]})
			}
		}
	}
	return pts
}

// Enumerate sweeps the (X, N, Tx, Ty) space, builds every candidate, and
// prunes the ones that exceed the area/power budgets or the peak-TOPS upper
// bound (§III-A.1: points beyond the budget or with extremely low
// performance are pruned; core count is swept up to the feasibility edge).
func Enumerate(cs Constraints) []Candidate {
	return EnumerateCtx(context.Background(), cs)
}

// EnumerateCtx is Enumerate with observability and fault tolerance: a span
// over the sweep, pruning counters, and debug-level progress logging.
// chip.Build converts model-stack panics to guard.ErrCandidatePanic, so a
// single broken design point cannot take down the sweep — it is counted,
// logged at warn level, and pruned. Cancelling ctx stops the enumeration
// early; the candidates built so far are returned. Evaluation runs on a
// single worker; use EnumerateParallel to fan out.
func EnumerateCtx(ctx context.Context, cs Constraints) []Candidate {
	return EnumerateParallel(ctx, cs, 1)
}

// EnumerateParallel is EnumerateCtx fanned out across a bounded worker
// pool (DefaultWorkers = GOMAXPROCS). Builds are memoized through
// chip.BuildCached — repeated enumerations and the figure drivers'
// reference points share one build per distinct configuration — and
// results are collected by sweep index, so the returned candidate list is
// identical to the serial path's for any worker count.
func EnumerateParallel(ctx context.Context, cs Constraints, workers int) []Candidate {
	ctx, span := obs.Start(ctx, "dse.enumerate")
	defer span.End()
	span.SetInt("workers", int64(resolveWorkers(workers)))
	points := cs.sweepPoints()
	results := make([]*Candidate, len(points))
	var tried atomic.Int64
	// Block size 1: builds are heavyweight, memoized, and unevenly pruned,
	// so fine-grained claiming balances better than blocks here.
	interrupted := runPool(ctx, len(points), workers, 1, func(i int) {
		p := points[i]
		mEnumerated.Inc()
		if n := tried.Add(1); n%progressEvery == 0 {
			slog.DebugContext(ctx, "dse: enumerate progress",
				"tried", n, "total", len(points))
		}
		peak := 2 * float64(p.X) * float64(p.X) * float64(p.N) *
			float64(p.Tiles()) * cs.ClockHz / 1e12
		// Prune over-cap and extremely low performance points early.
		if peak > cs.TOPSCap*1.001 || peak < cs.TOPSCap/32 {
			mPruned.Inc()
			return
		}
		c, err := chip.BuildCached(cs.Config(p))
		if err != nil {
			mPruned.Inc()
			if errors.Is(err, guard.ErrCandidatePanic) {
				mEvalPanics.Inc()
				slog.WarnContext(ctx, "dse: candidate build panicked (recovered)",
					"point", p.String(), "err", err)
			}
			return // over budget, timing-infeasible, or broken
		}
		mFeasible.Inc()
		results[i] = &Candidate{
			Point:          p,
			Chip:           c,
			PeakTOPS:       c.PeakTOPS(),
			AreaMM2:        c.AreaMM2(),
			TDPW:           c.TDPW(),
			PeakTOPSPerW:   c.PeakTOPSPerWatt(),
			PeakTOPSPerTCO: c.PeakTOPSPerTCO(),
		}
	})
	var out []Candidate
	for _, r := range results {
		if r != nil {
			out = append(out, *r)
		}
	}
	if interrupted != nil {
		slog.WarnContext(ctx, "dse: enumerate interrupted",
			"tried", tried.Load(), "feasible", len(out), "err", interrupted)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if c := cmpDesc(a.PeakTOPS, b.PeakTOPS); c != 0 {
			return c < 0
		}
		if a.Point.X != b.Point.X {
			return a.Point.X > b.Point.X
		}
		return a.Point.Tiles() < b.Point.Tiles()
	})
	span.SetInt("tried", tried.Load())
	span.SetInt("feasible", int64(len(out)))
	slog.DebugContext(ctx, "dse: enumerate done", "tried", tried.Load(), "feasible", len(out))
	return out
}

// cmpDesc orders a before b (negative) when a is larger, with NaN always
// last. Raw float comparators break sort transitivity in the presence of
// NaN (every comparison is false), which can scramble an entire sort; this
// comparator keeps the order total.
func cmpDesc(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return 1
	case bn:
		return -1
	case a > b:
		return -1
	case a < b:
		return 1
	}
	return 0
}

// Frontier reduces the feasible set to the representative points of
// Fig. 8's x-axis: the figure's subclusters are bins of peak TOPS
// (TOPSCap, /2, /4, /8), and per (X, N) and bin the best-TOPS/TCO grid is
// kept. This keeps one entry per brawniness level and performance class —
// including the paper's named points (64,2,2,4), (64,4,1,2) and (8,4,4,8).
func Frontier(cands []Candidate, topsCap float64) []Candidate {
	type key struct {
		x, n, bin int
	}
	best := map[key]Candidate{}
	for _, c := range cands {
		bin := 0
		for b := topsCap; b >= topsCap/8-1e-9; b /= 2 {
			if c.PeakTOPS > b*0.6 {
				break
			}
			bin++
		}
		k := key{c.Point.X, c.Point.N, bin}
		// cmpDesc keeps a NaN TOPS/TCO from ever displacing a finite one.
		if cur, ok := best[k]; !ok || cmpDesc(c.PeakTOPSPerTCO, cur.PeakTOPSPerTCO) < 0 {
			best[k] = c
		}
	}
	var out []Candidate
	for _, c := range best {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if c := cmpDesc(a.PeakTOPS, b.PeakTOPS); c != 0 {
			return c < 0
		}
		if a.Point.X != b.Point.X {
			return a.Point.X > b.Point.X
		}
		return a.Point.Tiles() < b.Point.Tiles()
	})
	return out
}

// SecondRound applies the paper's second-round pruning before the runtime
// study: design points with extremely low peak performance are dropped.
// The paper's own verdict is that the 4x4 class delivers under 1/12 of the
// target peak at comparable area, so both the TOPS floor and the 4x4 class
// itself are excluded (our softer area model would otherwise let very large
// 4x4 grids reach higher peaks than the paper's did).
func SecondRound(cands []Candidate, topsCap float64) []Candidate {
	var out []Candidate
	for _, c := range cands {
		// A NaN PeakTOPS fails the >= comparison, so corrupted candidates
		// are dropped here rather than carried into the runtime study.
		if c.PeakTOPS >= topsCap/12 && c.Point.X >= 8 {
			out = append(out, c)
		}
	}
	return out
}

// BatchSpec selects the batch regime of a runtime study: a fixed batch
// size, or the largest batch meeting a latency bound (the paper's 10ms SLO
// "medium batch").
type BatchSpec struct {
	Fixed        int     // used when > 0
	LatencyBound float64 // seconds; used when Fixed == 0
}

func (b BatchSpec) String() string {
	if b.Fixed > 0 {
		return fmt.Sprintf("bs=%d", b.Fixed)
	}
	return fmt.Sprintf("bs=latency<%.0fms", b.LatencyBound*1e3)
}

// RuntimeRow aggregates a candidate's runtime metrics over the workload set
// (Fig. 10 format): arithmetic-mean achieved TOPS, geometric-mean
// utilization and efficiencies (§III-B.2's averaging conventions).
type RuntimeRow struct {
	Point        Point
	PeakTOPS     float64
	AchievedTOPS float64 // arithmetic mean
	Utilization  float64 // geometric mean
	PowerW       float64 // arithmetic mean
	TOPSPerWatt  float64 // geometric mean
	TOPSPerTCO   float64 // geometric mean
	// Batches records the batch size used per workload (differs under a
	// latency bound).
	Batches []int
}

// RuntimeStudy simulates every candidate on the workload set under the
// batch regime and aggregates the four Fig. 10 metrics.
//
// A failing candidate does not abort the sweep: its error is wrapped with
// the design point and model name, counted in the dse.candidate_failures
// metric, logged, and the candidate is skipped. The joined failure errors
// are returned only when every candidate failed (no rows survived).
func RuntimeStudy(cands []Candidate, models []*graph.Graph, spec BatchSpec, opt perfsim.Options) ([]RuntimeRow, error) {
	return RuntimeStudyCtx(context.Background(), cands, models, spec, opt)
}

// RuntimeStudyCtx is RuntimeStudy with observability: a span over the
// study, a child span per candidate (nesting the per-graph simulation
// spans), an eval-latency histogram, and progress logging. It runs with no
// per-candidate deadline, no retries, and no checkpoint; use
// RuntimeStudyHardened to configure those.
func RuntimeStudyCtx(ctx context.Context, cands []Candidate, models []*graph.Graph, spec BatchSpec, opt perfsim.Options) ([]RuntimeRow, error) {
	return RuntimeStudyHardened(ctx, cands, models, spec, opt, Hardening{})
}

// Hardening configures the fault-tolerance envelope of a runtime study.
// The zero value means: no per-candidate deadline, no retries, no
// checkpoint — the historical RuntimeStudy behavior.
type Hardening struct {
	// CandidateTimeout bounds each candidate's evaluation across the whole
	// workload set; 0 = unbounded. An expired deadline fails the candidate
	// with guard.ErrTimeout.
	CandidateTimeout time.Duration
	// MaxRetries re-evaluates a candidate whose failure is retryable
	// (guard.Retryable — timeouts). Validation errors, infeasibility,
	// non-finite results, and panics are deterministic and never retried.
	MaxRetries int
	// Checkpoint, when non-nil, makes the study resumable: every
	// candidate outcome (row or failure) is recorded and flushed as it
	// completes, and already-recorded candidates replay from the
	// checkpoint instead of re-simulating. Because the simulator is
	// deterministic and the checkpoint stores exact float64 values, a
	// resumed study produces byte-identical output to an uninterrupted
	// one.
	Checkpoint *Checkpoint
	// Workers bounds the evaluation pool: <= 1 (and the zero value) runs
	// candidates serially on the caller's goroutine — the historical
	// behavior — and DefaultWorkers resolves to GOMAXPROCS. Results are
	// collected by candidate index, so output is byte-identical across
	// worker counts.
	Workers int
	// BlockSize is the number of consecutive candidates a worker claims at
	// a time (< 1, including the zero value, resolves to DefaultBlockSize).
	// Larger blocks keep a worker's evaluation scratch and the prepared
	// workload tables hot across a run of candidates at the cost of coarser
	// load balancing near the end of a sweep. The block size only changes
	// which worker evaluates which candidate — results are collected by
	// index, so output is byte-identical at any (Workers, BlockSize) pair.
	BlockSize int
	// Dispatch, when non-nil, is offered the pending (not checkpointed)
	// candidates before the local pool runs: it evaluates whatever it can
	// remotely — fleet.Coordinator.Dispatch shards them across workers —
	// and reports resolved outcomes through its callback (safe to call
	// from any goroutine). Candidates it leaves unreported fall through to
	// local in-process evaluation, so losing every remote worker degrades
	// the study, never fails it. Because remote evaluation is
	// deterministic and outcomes merge by candidate index through the same
	// checkpoint machinery, output stays byte-identical at any fleet size
	// and any failure schedule.
	Dispatch func(ctx context.Context, sh Shard, report func(ShardOutcome))
	// Results, when non-nil, is the persistent content-addressed result
	// store: pending candidates are looked up (fully verified — envelope
	// checksum, fingerprint match, finite metrics) before any evaluation
	// is scheduled, local evaluations run under the store's single-flight
	// layer and persist their rows, and remote outcomes are written back
	// best-effort. Store faults of every kind degrade to evaluation, so a
	// study runs byte-identically with a cold, warm, poisoned, or absent
	// store. A nil Cache (including rstore.NewCache(nil)) disables all of
	// this.
	Results *rstore.Cache
}

// outcome is one candidate's resolved result, held in an index-addressed
// slice until assembly so output order never depends on completion order.
type outcome struct {
	row     RuntimeRow
	err     error
	done    bool // evaluated or replayed (false = skipped by cancellation)
	resumed bool // replayed from the checkpoint
}

// RuntimeStudyHardened is RuntimeStudyCtx with a configurable robustness
// envelope and an optional worker pool (Hardening.Workers). Per candidate
// it recovers panics (guard.ErrCandidatePanic), enforces the deadline,
// retries retryable failures, and rejects rows with non-finite aggregates;
// a canceled sweep ctx stops new evaluations, lets in-flight workers
// unwind, flushes the checkpoint, and returns the rows completed so far
// along with the classified cause (guard.ErrCanceled / guard.ErrTimeout).
//
// Determinism: rows and failures are assembled in candidate order whatever
// the worker count, the checkpoint file serializes its outcome maps with
// sorted keys, and each candidate's evaluation is single-threaded — so a
// parallel, a serial, and a resumed run of the same study all emit
// byte-identical output.
func RuntimeStudyHardened(ctx context.Context, cands []Candidate, models []*graph.Graph, spec BatchSpec, opt perfsim.Options, h Hardening) ([]RuntimeRow, error) {
	ctx, span := obs.Start(ctx, "dse.runtime-study")
	defer span.End()
	span.SetStr("spec", spec.String())
	span.SetInt("candidates", int64(len(cands)))
	span.SetInt("workers", int64(resolveWorkers(h.Workers)))

	// Replay checkpointed outcomes up front (cheap map lookups); only the
	// remainder enters the pool.
	outs := make([]outcome, len(cands))
	var pending []int
	for i, cand := range cands {
		if h.Checkpoint != nil {
			if row, ok := h.Checkpoint.Lookup(cand.Point); ok {
				outs[i] = outcome{row: row, done: true, resumed: true}
				continue
			}
			if ferr, ok := h.Checkpoint.LookupFailure(cand.Point); ok {
				outs[i] = outcome{err: ferr, done: true, resumed: true}
				continue
			}
		}
		pending = append(pending, i)
	}

	// Store phase: satisfy the remaining candidates from the persistent
	// result store before any evaluation — local or remote — is scheduled.
	// A hit is recorded to the checkpoint exactly like an evaluated
	// outcome, so an interrupted warm run resumes identically to an
	// interrupted cold one, and the checkpoint file stays byte-identical
	// either way (it stores the same row values).
	names := modelNames(models)
	if h.Results != nil && len(pending) > 0 {
		hits := 0
		remaining := pending[:0]
		for _, i := range pending {
			cand := cands[i]
			fp := CandidateFingerprint(cand.Chip.Cfg, names, spec, opt)
			if row, ok := lookupStoredRow(ctx, h.Results, fp, cand.Point); ok {
				outs[i] = outcome{row: row, done: true}
				if h.Checkpoint != nil {
					h.Checkpoint.Record(cand.Point, row)
				}
				hits++
				continue
			}
			remaining = append(remaining, i)
		}
		if hits > 0 && h.Checkpoint != nil {
			if ferr := h.Checkpoint.Flush(); ferr != nil {
				slog.WarnContext(ctx, "dse: checkpoint flush failed", "err", ferr)
			}
		}
		span.SetInt("store_hits", int64(hits))
		pending = remaining
	}

	// Remote phase: offer the pending candidates to the dispatcher. Its
	// report callback lands outcomes exactly where a local evaluation
	// would — the outs slice and the checkpoint — so the assembly below
	// cannot tell (and the output bytes do not reflect) where a candidate
	// ran. Whatever the dispatcher could not resolve stays pending for the
	// local pool.
	if h.Dispatch != nil && len(pending) > 0 {
		var mu sync.Mutex
		sh := BuildShard(cands, pending, models, spec, opt, h)
		h.Dispatch(ctx, sh, func(o ShardOutcome) {
			if o.Index < 0 || o.Index >= len(outs) {
				slog.WarnContext(ctx, "dse: dispatcher reported out-of-range candidate",
					"index", o.Index, "candidates", len(outs))
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if outs[o.Index].done {
				return // duplicate report (hedged dispatch): first one won
			}
			var err error
			if o.Row == nil {
				err = guard.KindError(o.Kind, o.Err)
			}
			cand := cands[o.Index]
			if err != nil {
				mEvalFailures.Inc()
				slog.WarnContext(ctx, "dse: candidate failed remotely, skipping",
					"point", cand.Point.String(), "kind", guard.Kind(err), "err", err)
				outs[o.Index] = outcome{err: err, done: true}
			} else {
				outs[o.Index] = outcome{row: *o.Row, done: true}
				if h.Results != nil {
					// Warm the store from fleet traffic too (best-effort).
					storeRemoteOutcome(h.Results,
						CandidateFingerprint(cand.Chip.Cfg, names, spec, opt), *o.Row)
				}
			}
			mRemote.Inc()
			if h.Checkpoint != nil {
				if err != nil {
					h.Checkpoint.RecordFailure(cand.Point, err)
				} else {
					h.Checkpoint.Record(cand.Point, *o.Row)
				}
				if ferr := h.Checkpoint.Flush(); ferr != nil {
					slog.WarnContext(ctx, "dse: checkpoint flush failed", "err", ferr)
				}
			}
		})
		remaining := pending[:0]
		for _, i := range pending {
			if !outs[i].done {
				remaining = append(remaining, i)
			}
		}
		if len(remaining) > 0 && guard.CtxErr(ctx) == nil {
			slog.WarnContext(ctx, "dse: dispatcher left candidates unresolved, evaluating locally",
				"unresolved", len(remaining), "dispatched", len(pending))
		}
		span.SetInt("remote_resolved", int64(len(pending)-len(remaining)))
		pending = remaining
	}

	// One simulation context for the whole study: every workload graph is
	// validated and prepared exactly once here, then shared read-only by
	// all workers — the per-candidate hot path never re-parses a graph.
	sim := newStudySim(models)
	var completed atomic.Int64
	poolErr := runPool(ctx, len(pending), h.Workers, h.BlockSize, func(pi int) {
		i := pending[pi]
		cand := cands[i]
		cctx, cspan := obs.Start(ctx, "dse.candidate")
		cspan.SetStr("point", cand.Point.String())
		evalStart := time.Now()
		var fp string
		if h.Results != nil {
			fp = CandidateFingerprint(cand.Chip.Cfg, names, spec, opt)
		}
		row, err := evalStoreAware(cctx, h.Results, fp, cand, sim, spec, opt, h)
		mEvalLatency.Observe(time.Since(evalStart).Seconds())
		cspan.End()
		if n := completed.Add(1); n%progressEvery == 0 || n == int64(len(pending)) {
			slog.DebugContext(ctx, "dse: runtime study progress",
				"done", n, "total", len(pending), "spec", spec.String())
		}
		// A canceled sweep ctx surfaces as the candidate's error too;
		// treat it as an interruption, not a candidate failure — the
		// candidate stays un-done and re-evaluates on resume.
		if err != nil && guard.CtxErr(ctx) != nil {
			return
		}
		outs[i] = outcome{row: row, err: err, done: true}
		if err != nil {
			mEvalFailures.Inc()
			if errors.Is(err, guard.ErrCandidatePanic) {
				mEvalPanics.Inc()
			}
			slog.WarnContext(cctx, "dse: candidate failed, skipping",
				"point", cand.Point.String(), "kind", guard.Kind(err), "err", err)
		}
		if h.Checkpoint != nil {
			if err != nil {
				h.Checkpoint.RecordFailure(cand.Point, err)
			} else {
				h.Checkpoint.Record(cand.Point, row)
			}
			if ferr := h.Checkpoint.Flush(); ferr != nil {
				slog.WarnContext(ctx, "dse: checkpoint flush failed", "err", ferr)
			}
		}
	})

	// Assemble in candidate order — identical to the serial walk.
	var rows []RuntimeRow
	var failures []error
	for i := range outs {
		o := &outs[i]
		if !o.done {
			continue
		}
		if o.resumed {
			mResumed.Inc()
		}
		if o.err != nil {
			failures = append(failures, o.err)
			continue
		}
		rows = append(rows, o.row)
	}
	if poolErr != nil {
		if h.Checkpoint != nil {
			if ferr := h.Checkpoint.Flush(); ferr != nil {
				slog.WarnContext(ctx, "dse: checkpoint flush failed", "err", ferr)
			}
		}
		slog.WarnContext(ctx, "dse: runtime study interrupted",
			"done", len(rows), "total", len(cands), "err", poolErr)
		return rows, poolErr
	}
	if len(rows) == 0 && len(failures) > 0 {
		return nil, fmt.Errorf("dse: runtime study: all %d candidates failed: %w",
			len(cands), errors.Join(failures...))
	}
	return rows, nil
}

// studySim is the simulation context one study shares across all of its
// candidate evaluations: every workload graph validated and prepared
// exactly once, so the per-candidate hot path runs straight into the
// closed forms. Immutable after newStudySim and safe for any number of
// concurrent workers.
//
// A model that fails Prepare keeps a nil entry and falls back to the
// historical per-candidate SimulateCtx path, which surfaces the same
// validation error bytes from the same candidate the serial engine would.
type studySim struct {
	models   []*graph.Graph
	prepared []*perfsim.Prepared
}

func newStudySim(models []*graph.Graph) *studySim {
	s := &studySim{models: models, prepared: make([]*perfsim.Prepared, len(models))}
	for i, g := range models {
		if p, err := perfsim.Prepare(g); err == nil {
			s.prepared[i] = p
		}
	}
	return s
}

// evalScratch is one evaluation's reusable simulation output. Two Results
// because the latency-bound regime double-buffers its probe batches
// (perfsim.LatencyLimitedInto); the fixed-batch regime uses only a.
type evalScratch struct {
	a, b perfsim.Result
}

var scratchPool = sync.Pool{New: func() any { return new(evalScratch) }}

// evalWithRetry evaluates one candidate under the hardening envelope:
// deadline per attempt, bounded retry of retryable failures.
func evalWithRetry(ctx context.Context, cand Candidate, sim *studySim, spec BatchSpec, opt perfsim.Options, h Hardening) (RuntimeRow, error) {
	for attempt := 0; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if h.CandidateTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, h.CandidateTimeout)
		}
		row, err := evalCandidate(actx, cand, sim, spec, opt)
		cancel()
		if err == nil {
			return row, nil
		}
		// Don't burn retries when the sweep itself is shutting down, and
		// don't retry deterministic failures.
		if guard.CtxErr(ctx) != nil || !guard.Retryable(err) || attempt >= h.MaxRetries {
			return RuntimeRow{}, err
		}
		mEvalRetries.Inc()
		slog.DebugContext(ctx, "dse: retrying candidate",
			"point", cand.Point.String(), "attempt", attempt+1, "err", err)
	}
}

// evalCandidate simulates one candidate over the workload set and
// aggregates its Fig. 10 row. Panics anywhere below are converted to
// guard.ErrCandidatePanic; the aggregated row is finite-checked before it
// can reach a frontier or CSV. Simulation output lands in pooled scratch,
// so the steady state of a sweep allocates only the row's Batches slice.
func evalCandidate(ctx context.Context, cand Candidate, sim *studySim, spec BatchSpec, opt perfsim.Options) (row RuntimeRow, err error) {
	defer guard.RecoverTo(&err)
	if ierr := guard.Inject(ctx, "dse.candidate"); ierr != nil {
		return RuntimeRow{}, fmt.Errorf("dse: candidate %s: %w", cand.Point, ierr)
	}
	sc := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(sc)
	row = RuntimeRow{Point: cand.Point, PeakTOPS: cand.PeakTOPS}
	nModels := float64(len(sim.models))
	utilProd, wEffProd, cEffProd := 1.0, 1.0, 1.0
	for mi, g := range sim.models {
		var res *perfsim.Result
		var serr error
		batch := spec.Fixed
		if p := sim.prepared[mi]; p != nil {
			if batch > 0 {
				if serr = p.SimulateInto(ctx, cand.Chip, batch, opt, &sc.a); serr == nil {
					res = &sc.a
				}
			} else {
				batch, res, serr = p.LatencyLimitedInto(ctx, cand.Chip, spec.LatencyBound, opt, &sc.a, &sc.b)
			}
		} else if batch > 0 {
			res, serr = perfsim.SimulateCtx(ctx, cand.Chip, g, batch, opt)
		} else {
			batch, res, serr = perfsim.LatencyLimitedBatchCtx(ctx, cand.Chip, g, spec.LatencyBound, opt)
		}
		if serr != nil {
			return RuntimeRow{}, fmt.Errorf("dse: candidate %s on model %q (%s): %w",
				cand.Point, g.Name, spec, serr)
		}
		e := cand.Chip.Efficiency(res.AchievedTOPS*1e12, res.Activity)
		row.AchievedTOPS += res.AchievedTOPS / nModels
		row.PowerW += e.PowerW / nModels
		utilProd *= res.Utilization
		wEffProd *= e.TOPSPerWatt
		cEffProd *= e.TOPSPerTCO
		row.Batches = append(row.Batches, batch)
	}
	inv := 1.0 / nModels
	row.Utilization = math.Pow(utilProd, inv)
	row.TOPSPerWatt = math.Pow(wEffProd, inv)
	row.TOPSPerTCO = math.Pow(cEffProd, inv)
	if ferr := guard.CheckFinites(
		"achieved_tops", row.AchievedTOPS, "utilization", row.Utilization,
		"power_w", row.PowerW, "tops_per_w", row.TOPSPerWatt, "tops_per_tco", row.TOPSPerTCO,
	); ferr != nil {
		return RuntimeRow{}, fmt.Errorf("dse: candidate %s: %w", cand.Point, ferr)
	}
	return row, nil
}

// Winner returns the row maximizing the metric. Rows whose metric is NaN
// never win; if no row has a comparable metric the error wraps
// guard.ErrNonFinite.
func Winner(rows []RuntimeRow, metric func(RuntimeRow) float64) (RuntimeRow, error) {
	if len(rows) == 0 {
		return RuntimeRow{}, guard.Invalid("dse: no rows")
	}
	var best RuntimeRow
	found := false
	for _, r := range rows {
		m := metric(r)
		if math.IsNaN(m) {
			continue
		}
		if !found || m > metric(best) {
			best, found = r, true
		}
	}
	if !found {
		return RuntimeRow{}, fmt.Errorf("dse: all %d rows have NaN metrics: %w",
			len(rows), guard.ErrNonFinite)
	}
	return best, nil
}

// Metric selectors for Winner.
func ByAchievedTOPS(r RuntimeRow) float64 { return r.AchievedTOPS }
func ByUtilization(r RuntimeRow) float64  { return r.Utilization }
func ByTOPSPerWatt(r RuntimeRow) float64  { return r.TOPSPerWatt }
func ByTOPSPerTCO(r RuntimeRow) float64   { return r.TOPSPerTCO }

// DefaultModels returns the Table II workloads.
func DefaultModels() []*graph.Graph { return workloads.All() }
