package chaos

import (
	"fmt"
	"math/rand"
	"sort"
)

// siteEffects classifies every production fault site by the effects the
// chaos engine may arm there *without* breaking the output contract the
// invariants assert:
//
//   - fleet.* and rstore.* sites absorb errors by construction (retry,
//     fallback-to-local, degrade-to-recompute), so err is fair game;
//     fleet.shard additionally tolerates panics (the worker's recovery
//     middleware turns them into retryable 500s) and delays (lease expiry
//     requeues the shard).
//   - model-layer sites (chip.build, perfsim.*, dse.candidate) sit on the
//     serial evaluation path: an injected error there makes a candidate
//     legitimately fail and a row legitimately disappear, which is not an
//     invariant violation but would make byte-identity meaningless. They
//     get delay-only faults — exercising timeout/cancellation plumbing
//     while keeping output exact.
//   - perfsim.achieved_tops is the NaN-corruption site; arming it flips
//     the episode to the relaxed output contract (Schedule.OutputExact).
var siteEffects = map[string][]string{
	"chip.build":            {EffectDelay},
	"perfsim.simulate":      {EffectDelay},
	"perfsim.layer":         {EffectDelay},
	"perfsim.achieved_tops": {EffectNaN},
	"dse.candidate":         {EffectDelay},
	"fleet.shard":           {EffectErr, EffectDelay, EffectPanic},
	"fleet.heartbeat":       {EffectErr},
	"fleet.register":        {EffectErr},
	"rstore.read":           {EffectErr, EffectDelay},
	"rstore.write":          {EffectErr, EffectDelay},
	"rstore.scan":           {EffectErr},
}

// Scenario is a named region of the schedule space: which sites and ops
// the generator draws from, the harness shape, and anchor events that
// make every episode of the scenario exercise its namesake machinery even
// at seeds whose random draws are tame.
type Scenario struct {
	Name      string
	Workers   int
	Heartbeat bool
	Store     bool
	// Sites the generator always arms once (deterministic coverage).
	Sites []string
	// ExtraSites the generator may additionally draw from (probabilistic;
	// this is where output-relaxing effects like NaN live).
	ExtraSites []string
	// Ops the generator may draw timed ops from.
	Ops []string
	// Anchors are fixed events present in every episode of the scenario.
	Anchors []Event
	// MinExtra..MaxExtra bounds the number of random events on top of the
	// per-site coverage faults and anchors.
	MinExtra, MaxExtra int
}

// scenarios is the registry, ordered for -scenario listings. Between
// them the Sites/ExtraSites lists cover the complete guard registry —
// chaos_test pins that against guard.Sites().
var scenarios = []Scenario{
	{
		Name:    "fleet",
		Workers: 2,
		Sites:   []string{"fleet.shard", "dse.candidate", "chip.build", "perfsim.simulate", "perfsim.layer"},
		ExtraSites: []string{"perfsim.achieved_tops"},
		Ops:     []string{OpKill, OpSpawn, OpStarve},
		Anchors: []Event{
			{Kind: KindOp, Op: OpKill, Worker: 0, AtMS: 300},
		},
		MinExtra: 1, MaxExtra: 4,
	},
	{
		Name:      "membership",
		Workers:   2,
		Heartbeat: true,
		Sites:     []string{"fleet.heartbeat", "fleet.register", "fleet.shard"},
		Ops:       []string{OpKill, OpSpawn, OpDrain},
		Anchors: []Event{
			{Kind: KindOp, Op: OpSpawn, AtMS: 200},
			{Kind: KindOp, Op: OpKill, Worker: 1, AtMS: 500},
			{Kind: KindOp, Op: OpDrain, Worker: 0, AtMS: 800},
		},
		MinExtra: 1, MaxExtra: 4,
	},
	{
		Name:  "cache",
		Store: true,
		Sites: []string{"rstore.read", "rstore.write", "rstore.scan"},
		Ops:   []string{OpCorruptEntry, OpTruncateEntry, OpPlantTmp},
		Anchors: []Event{
			{Kind: KindOp, Op: OpCorruptEntry, Worker: 0, AtMS: 10},
			{Kind: KindOp, Op: OpPlantTmp, AtMS: 20},
		},
		MinExtra: 1, MaxExtra: 5,
	},
	{
		Name:      "mixed",
		Workers:   2,
		Heartbeat: true,
		Store:     true,
		Sites:     []string{"fleet.shard", "fleet.heartbeat", "rstore.read", "rstore.write"},
		ExtraSites: []string{
			"chip.build", "perfsim.simulate", "perfsim.layer", "perfsim.achieved_tops",
			"dse.candidate", "fleet.register", "rstore.scan",
		},
		Ops: []string{OpKill, OpSpawn, OpDrain, OpStarve, OpCorruptEntry, OpTruncateEntry, OpPlantTmp},
		Anchors: []Event{
			{Kind: KindOp, Op: OpKill, Worker: 0, AtMS: 400},
			{Kind: KindOp, Op: OpSpawn, AtMS: 600},
		},
		MinExtra: 2, MaxExtra: 6,
	},
	{
		// planted exists to prove the loop can catch and shrink a real
		// violation: its anchor deliberately breaks the gauge-drain
		// invariant, and the noise events are all removable, so the
		// shrinker must reduce any failing planted episode to one event.
		Name:  "planted",
		Sites: []string{"chip.build", "perfsim.layer"},
		Ops:   []string{OpViolate},
		Anchors: []Event{
			{Kind: KindOp, Op: OpViolate, AtMS: 50},
		},
		MinExtra: 2, MaxExtra: 4,
	},
}

// ScenarioNames lists the registered scenarios in order.
func ScenarioNames() []string {
	names := make([]string, len(scenarios))
	for i, sc := range scenarios {
		names[i] = sc.Name
	}
	return names
}

func findScenario(name string) (Scenario, error) {
	for _, sc := range scenarios {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("chaos: unknown scenario %q (have %v)", name, ScenarioNames())
}

// Generate derives the schedule for (scenario, seed). Pure function of
// its arguments: the same pair always yields the same schedule, byte for
// byte — the foundation of the replay and shrink story.
func Generate(scenario string, seed int64) (*Schedule, error) {
	sc, err := findScenario(scenario)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{
		FormatVersion: FormatVersion,
		Scenario:      sc.Name,
		Seed:          seed,
		Workers:       sc.Workers,
		Heartbeat:     sc.Heartbeat,
		Store:         sc.Store,
	}

	// One coverage fault per scenario site, deterministically present so
	// every episode reaches its scenario's machinery.
	for _, site := range sc.Sites {
		s.Events = append(s.Events, genFault(rng, site))
	}
	s.Events = append(s.Events, sc.Anchors...)

	// Extra random events: more faults (including ExtraSites) and ops.
	extra := sc.MinExtra
	if sc.MaxExtra > sc.MinExtra {
		extra += rng.Intn(sc.MaxExtra - sc.MinExtra + 1)
	}
	pool := append(append([]string{}, sc.Sites...), sc.ExtraSites...)
	for i := 0; i < extra; i++ {
		if len(sc.Ops) > 0 && rng.Float64() < 0.4 {
			s.Events = append(s.Events, genOp(rng, sc))
		} else {
			s.Events = append(s.Events, genFault(rng, pool[rng.Intn(len(pool))]))
		}
	}
	// Keep op ordering readable in artifacts; execution order is by AtMS
	// anyway and fault order within a site is irrelevant across sites.
	sort.SliceStable(s.Events, func(i, j int) bool {
		if s.Events[i].Kind != s.Events[j].Kind {
			return s.Events[i].Kind == KindFault
		}
		return false
	})
	return s, nil
}

// genFault draws one fault event for site: an allowed effect, a hit
// window, and for roughly a third of the draws probabilistic arming.
func genFault(rng *rand.Rand, site string) Event {
	effects := siteEffects[site]
	e := Event{
		Kind:   KindFault,
		Site:   site,
		Effect: effects[rng.Intn(len(effects))],
		Skip:   rng.Intn(6),
		Count:  1 + rng.Intn(3),
	}
	if e.Effect == EffectDelay {
		e.DelayMS = 1 + rng.Intn(25)
	}
	if rng.Float64() < 0.33 {
		e.Prob = 0.25 + 0.5*rng.Float64()
		e.Count = 0 // probabilistic faults are windowed by the coin, not a cap
	}
	if e.Effect == EffectNaN {
		// NaN removes rows (legitimately); keep the blast radius small so
		// a relaxed-contract episode still emits most of the study.
		e.Prob = 0
		e.Count = 1 + rng.Intn(2)
	}
	return e
}

// genOp draws one timed op for the scenario.
func genOp(rng *rand.Rand, sc Scenario) Event {
	e := Event{
		Kind: KindOp,
		Op:   sc.Ops[rng.Intn(len(sc.Ops))],
		AtMS: 50 + rng.Intn(1200),
	}
	switch e.Op {
	case OpKill, OpDrain:
		if sc.Workers > 0 {
			e.Worker = rng.Intn(sc.Workers)
		}
	case OpCorruptEntry, OpTruncateEntry:
		e.Worker = rng.Intn(8)
	}
	return e
}
