package chaos

import (
	"context"
	"fmt"
	"log/slog"
)

// Shrink minimizes a failing schedule to a smaller event set that still
// violates an invariant, using greedy delta debugging: first re-confirm
// the failure, then repeatedly try dropping chunks of events (halving the
// chunk size down to single events), keeping any removal that still
// fails. The result is 1-minimal with respect to single-event removal —
// dropping any one remaining event makes the episode pass — which is the
// strongest claim a replay-based shrinker can make without exploring
// subsets exponentially.
//
// Episode verdicts are deterministic for a fixed schedule (see the
// package comment), so each trial is trustworthy: a schedule that fails
// once fails always, and the shrinker never "loses" the bug to timing.
// maxEpisodes bounds the total replays (shrinking is O(n) episodes per
// pass); when the budget runs out the best-so-far schedule is returned.
func Shrink(ctx context.Context, r *Runner, sch *Schedule, maxEpisodes int) (*Schedule, error) {
	budget := maxEpisodes
	fails := func(events []Event) (bool, error) {
		if budget <= 0 {
			return false, fmt.Errorf("chaos: shrink budget exhausted")
		}
		budget--
		trial := *sch
		trial.Events = events
		v, err := r.Run(ctx, &trial)
		if err != nil {
			return false, err
		}
		return !v.Passed, nil
	}

	failed, err := fails(sch.Events)
	if err != nil {
		return nil, err
	}
	if !failed {
		return nil, fmt.Errorf("chaos: schedule for scenario %q seed %d passes — nothing to shrink", sch.Scenario, sch.Seed)
	}

	events := append([]Event(nil), sch.Events...)
	for chunk := (len(events) + 1) / 2; chunk >= 1; chunk /= 2 {
		for {
			removedAny := false
			for start := 0; start < len(events); start += chunk {
				end := start + chunk
				if end > len(events) {
					end = len(events)
				}
				trial := make([]Event, 0, len(events)-(end-start))
				trial = append(trial, events[:start]...)
				trial = append(trial, events[end:]...)
				if len(trial) == 0 {
					continue // the empty schedule passing is a given
				}
				stillFails, err := fails(trial)
				if err != nil {
					// Budget exhausted (or harness error): return the
					// smallest failing schedule found so far.
					slog.Warn("chaos: shrink stopped early", "err", err, "events", len(events))
					out := *sch
					out.Events = events
					return &out, nil
				}
				if stillFails {
					events = trial
					removedAny = true
					start -= chunk // re-examine the same offset
				}
			}
			if !removedAny {
				break
			}
		}
	}
	out := *sch
	out.Events = events
	slog.Info("chaos: shrunk schedule", "from", len(sch.Events), "to", len(events))
	return &out, nil
}
