// Package chaos is the deterministic chaos-schedule engine: it generates
// seeded failure schedules over the complete guard fault-site registry
// plus fleet-level churn ops, runs each schedule as an episode against an
// in-process coordinator+workers harness, and checks the system-level
// invariants the codebase promises (episode.go). A failing seed feeds a
// greedy shrinker (shrink.go) that minimizes the schedule to the smallest
// still-failing event set and writes it as a replayable artifact.
//
// Determinism is the point. A Schedule is pure data, generated from a
// seed by a fixed procedure (gen.go), so the same seed always yields the
// same JSON. Faults target *logical* time — the Nth visit of a fault
// site, or a seeded per-hit coin flip — never wall-clock arming, so a
// replayed schedule drives the same recovery paths regardless of machine
// speed. Ops (kill/spawn/drain/...) do fire on a wall clock, but every
// invariant the episode checks is closed under op timing: output
// byte-identity holds at any interleaving by the fleet envelope's
// construction, and the remaining invariants are checked at quiescence.
// So "same schedule → same verdict" holds even though goroutine
// interleavings differ, which is what makes -replay and the shrinker
// trustworthy.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"neurometer/internal/guard"
)

// FormatVersion identifies the schedule JSON layout; bump on breaking
// changes so a stale committed reproduction fails loudly instead of
// silently replaying the wrong episode.
const FormatVersion = 1

// Event kinds.
const (
	// KindFault arms one guard fault. Fault events are armed before the
	// episode starts and target logical time (Skip/Count/Prob), so AtMS
	// is ignored for them.
	KindFault = "fault"
	// KindOp is a harness operation executed AtMS milliseconds into the
	// episode (kill/spawn/drain/starve/violate) or, for store ops,
	// between the populate and replay phases (corrupt_entry,
	// truncate_entry, plant_tmp — AtMS orders them).
	KindOp = "op"
)

// Op names.
const (
	// OpKill abruptly closes worker Worker's listener and live
	// connections — the in-process analog of SIGKILL.
	OpKill = "kill"
	// OpSpawn starts a fresh worker and hot-joins it through the
	// coordinator's /v1/worker/register endpoint.
	OpSpawn = "spawn"
	// OpDrain announces drain for worker Worker through
	// /v1/worker/drain.
	OpDrain = "drain"
	// OpStarve is lease starvation: one shard attempt stalls past the
	// lease TTL, forcing expiry and requeue. Translated at arm time into
	// a one-shot fleet.shard delay fault longer than the lease.
	OpStarve = "starve"
	// OpViolate plants a deliberate invariant violation (an undrained
	// gauge) — the shrinker's self-test target.
	OpViolate = "violate"
	// OpCorruptEntry flips bytes in the Worker-th result-store entry
	// (sorted order) between episode phases.
	OpCorruptEntry = "corrupt_entry"
	// OpTruncateEntry truncates the Worker-th entry to half its size.
	OpTruncateEntry = "truncate_entry"
	// OpPlantTmp drops an orphaned *.tmp file into the object tree, as a
	// crash between write and rename would.
	OpPlantTmp = "plant_tmp"
)

// Fault effects.
const (
	// EffectErr makes the site return guard.ErrUnavailable.
	EffectErr = "err"
	// EffectDelay makes the site sleep DelayMS.
	EffectDelay = "delay"
	// EffectPanic makes the site panic (only on sites behind a recovery
	// boundary).
	EffectPanic = "panic"
	// EffectNaN corrupts the site's float to NaN. The only effect that
	// legitimately changes study output (a poisoned candidate is dropped
	// by the non-finite guards), so it flips the episode to the relaxed
	// output invariant — see Schedule.OutputExact.
	EffectNaN = "nan"
)

// Event is one element of a schedule.
type Event struct {
	Kind string `json:"kind"`
	// AtMS is the op's firing time in episode-milliseconds (KindOp only).
	AtMS int `json:"at_ms,omitempty"`
	// Op names the harness operation (KindOp only).
	Op string `json:"op,omitempty"`
	// Worker indexes the op's target worker (or store entry).
	Worker int `json:"worker,omitempty"`

	// Site, Effect, Skip, Count, Prob, DelayMS describe a fault
	// (KindFault only); semantics match guard.PlanFault.
	Site    string  `json:"site,omitempty"`
	Effect  string  `json:"effect,omitempty"`
	Skip    int     `json:"skip,omitempty"`
	Count   int     `json:"count,omitempty"`
	Prob    float64 `json:"prob,omitempty"`
	DelayMS int     `json:"delay_ms,omitempty"`
}

// Schedule is a seeded, replayable chaos episode: harness shape plus an
// event sequence. It is the unit the generator emits, the runner
// executes, the shrinker minimizes, and CI commits as a reproduction.
type Schedule struct {
	FormatVersion int    `json:"format_version"`
	Scenario      string `json:"scenario"`
	Seed          int64  `json:"seed"`
	// Workers is the initial fleet size; 0 runs the study in-process.
	Workers int `json:"workers"`
	// Heartbeat enables the coordinator's membership probe loop and the
	// membership-transition invariant.
	Heartbeat bool `json:"heartbeat,omitempty"`
	// Store runs the two-phase result-store episode: populate, mutate
	// (store ops), recover, replay.
	Store  bool    `json:"store,omitempty"`
	Events []Event `json:"events"`
}

// OutputExact reports whether the episode's study output must be
// byte-identical to the serial reference. Every fault the schedule can
// carry is output-transparent by construction (fleet/rstore faults are
// absorbed by retry/degradation; model-layer faults are delay-only) —
// except NaN corruption, which legitimately removes the poisoned
// candidate. A schedule carrying a NaN fault is therefore checked against
// the relaxed contract: every emitted row byte-identical to the matching
// reference row (subset), and nothing non-finite anywhere.
func (s *Schedule) OutputExact() bool {
	for _, e := range s.Events {
		if e.Kind == KindFault && e.Effect == EffectNaN {
			return false
		}
	}
	return true
}

// Validate checks internal consistency before an episode runs, so a
// hand-edited reproduction fails with a message instead of arming
// nonsense.
func (s *Schedule) Validate() error {
	if s.FormatVersion != FormatVersion {
		return fmt.Errorf("chaos: schedule format_version %d, this binary speaks %d", s.FormatVersion, FormatVersion)
	}
	known := map[string]bool{}
	for _, site := range guard.Sites() {
		known[site] = true
	}
	for i, e := range s.Events {
		switch e.Kind {
		case KindFault:
			if !known[e.Site] {
				return fmt.Errorf("chaos: event %d: unknown fault site %q", i, e.Site)
			}
			switch e.Effect {
			case EffectErr, EffectDelay, EffectPanic, EffectNaN:
			default:
				return fmt.Errorf("chaos: event %d: unknown effect %q", i, e.Effect)
			}
		case KindOp:
			switch e.Op {
			case OpKill, OpSpawn, OpDrain, OpStarve, OpViolate:
			case OpCorruptEntry, OpTruncateEntry, OpPlantTmp:
				if !s.Store {
					return fmt.Errorf("chaos: event %d: store op %q in a storeless schedule", i, e.Op)
				}
			default:
				return fmt.Errorf("chaos: event %d: unknown op %q", i, e.Op)
			}
		default:
			return fmt.Errorf("chaos: event %d: unknown kind %q", i, e.Kind)
		}
	}
	return nil
}

// MarshalIndent renders the schedule as canonical JSON (stable field
// order, trailing newline) — the byte-identical artifact format.
func (s *Schedule) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the schedule artifact to path, creating the parent
// directory if needed — an invariant violation must never fail to
// leave its reproduction behind because -out didn't exist yet.
func (s *Schedule) WriteFile(path string) error {
	b, err := s.MarshalIndent()
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadSchedule loads and validates a schedule artifact.
func ReadSchedule(path string) (*Schedule, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Schedule
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("chaos: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: %s: %w", path, err)
	}
	return &s, nil
}

// opsInOrder returns the schedule's op events sorted by firing time
// (stable, so equal-time ops keep schedule order).
func (s *Schedule) opsInOrder() []Event {
	var ops []Event
	for _, e := range s.Events {
		if e.Kind == KindOp {
			ops = append(ops, e)
		}
	}
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].AtMS < ops[j].AtMS })
	return ops
}
