package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"neurometer/internal/guard"
)

// TestGenerateDeterministic pins the seed contract: the same (scenario,
// seed) pair yields byte-identical schedule JSON, and different seeds
// differ.
func TestGenerateDeterministic(t *testing.T) {
	for _, name := range ScenarioNames() {
		a, err := Generate(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		ja, _ := a.MarshalIndent()
		jb, _ := b.MarshalIndent()
		if !bytes.Equal(ja, jb) {
			t.Errorf("scenario %s: seed 7 generated two different schedules", name)
		}
		c, err := Generate(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		jc, _ := c.MarshalIndent()
		if bytes.Equal(ja, jc) {
			t.Errorf("scenario %s: seeds 7 and 8 generated identical schedules", name)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("scenario %s: generated schedule fails validation: %v", name, err)
		}
	}
}

// TestScheduleRoundTrip checks the artifact cycle: write, read, identical.
func TestScheduleRoundTrip(t *testing.T) {
	s, err := Generate("mixed", 3)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/schedule.json"
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(path)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := s.MarshalIndent()
	jb, _ := got.MarshalIndent()
	if !bytes.Equal(ja, jb) {
		t.Fatal("schedule did not survive a write/read round trip")
	}
}

// TestRegistryCompleteness pins the coverage claim: every production
// fault site in guard.Sites() is reachable from a generated schedule —
// each site is drawn by some scenario, and concretely appears in the
// union of schedules over a handful of seeds.
func TestRegistryCompleteness(t *testing.T) {
	declared := map[string]bool{}
	for _, sc := range scenarios {
		for _, site := range sc.Sites {
			declared[site] = true
		}
		for _, site := range sc.ExtraSites {
			declared[site] = true
		}
	}
	generated := map[string]bool{}
	for _, name := range ScenarioNames() {
		for seed := int64(1); seed <= 20; seed++ {
			s, err := Generate(name, seed)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range s.Events {
				if e.Kind == KindFault {
					generated[e.Site] = true
				}
			}
		}
	}
	for _, site := range guard.Sites() {
		if !declared[site] {
			t.Errorf("fault site %q is not drawn by any scenario — the chaos engine cannot reach it", site)
		}
		if !generated[site] {
			t.Errorf("fault site %q never appeared in schedules for seeds 1..20 — coverage is theoretical only", site)
		}
	}
	for site := range declared {
		if !contains(guard.Sites(), site) {
			t.Errorf("scenario draws from %q, which is not a registered fault site", site)
		}
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// TestEpisodesPassAndReplayIdentically runs one episode per scenario
// (planted excepted — it is built to fail) and checks (a) every invariant
// holds, and (b) replaying the same schedule yields a byte-identical
// verdict — the determinism claim -replay rests on.
func TestEpisodesPassAndReplayIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("episodes take seconds each")
	}
	defer guard.DisarmAll()
	r := NewRunner()
	ctx := context.Background()
	for _, name := range []string{"fleet", "membership", "cache", "mixed"} {
		sch, err := Generate(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		v1, err := r.Run(ctx, sch)
		if err != nil {
			t.Fatalf("scenario %s: episode error: %v", name, err)
		}
		if !v1.Passed {
			t.Errorf("scenario %s seed 1: invariant violations:\n%v", name, v1.Violations)
			continue
		}
		v2, err := r.Run(ctx, sch)
		if err != nil {
			t.Fatalf("scenario %s: replay error: %v", name, err)
		}
		j1, _ := json.Marshal(v1)
		j2, _ := json.Marshal(v2)
		if !bytes.Equal(j1, j2) {
			t.Errorf("scenario %s: replay verdict differs:\n%s\n%s", name, j1, j2)
		}
	}
}

// TestPlantedViolationShrinksToMinimal is the shrinker acceptance test: a
// planted invariant violation (an undrained gauge) must be detected, and
// the greedy shrinker must reduce the schedule to at most 3 events — in
// practice exactly the violate op(s), since every other event is noise.
func TestPlantedViolationShrinksToMinimal(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking replays many episodes")
	}
	defer guard.DisarmAll()
	r := NewRunner()
	ctx := context.Background()
	sch, err := Generate("planted", 5)
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.Run(ctx, sch)
	if err != nil {
		t.Fatal(err)
	}
	if v.Passed {
		t.Fatal("planted scenario passed — the violation was not detected")
	}
	min, err := Shrink(ctx, r, sch, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Events) > 3 {
		b, _ := min.MarshalIndent()
		t.Fatalf("shrunk schedule still has %d events (want <= 3):\n%s", len(min.Events), b)
	}
	for _, e := range min.Events {
		if e.Kind != KindOp || e.Op != OpViolate {
			t.Errorf("shrunk schedule kept a non-culprit event: %+v", e)
		}
	}
	// The minimized schedule must still reproduce the violation.
	vm, err := r.Run(ctx, min)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Passed {
		t.Fatal("shrunk schedule no longer fails — shrinker returned a non-reproduction")
	}
}
