package chaos

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"neurometer/internal/chaos/invariants"
	"neurometer/internal/dse"
	"neurometer/internal/fleet"
	"neurometer/internal/guard"
	"neurometer/internal/obs"
	"neurometer/internal/rstore"
	"neurometer/internal/serve"
)

// Fast-but-realistic fleet knobs for an episode: leases long enough for a
// tiny shard, heartbeats quick enough that kill→suspect→evict plays out
// inside one episode. OpStarve's injected stall must exceed episodeLease.
const (
	episodeLease     = 800 * time.Millisecond
	episodeHeartbeat = 50 * time.Millisecond
	episodeSuspect   = 250 * time.Millisecond
	episodeEvict     = 800 * time.Millisecond
)

// gPlanted is the gauge OpViolate bumps and never drains — the planted
// invariant violation the shrinker proves itself against.
var gPlanted = obs.NewGauge("chaos.planted_violations")

// Verdict is an episode's invariant outcome. It deliberately carries no
// timing, so two runs of the same schedule produce byte-identical
// verdict JSON — which is what lets CI diff them.
type Verdict struct {
	Scenario    string   `json:"scenario"`
	Seed        int64    `json:"seed"`
	Events      int      `json:"events"`
	OutputExact bool     `json:"output_exact"`
	Passed      bool     `json:"passed"`
	Violations  []string `json:"violations,omitempty"`
}

// Runner executes schedules as episodes against an in-process harness. A
// Runner caches the serial study reference across episodes (it never
// changes — same spec, no faults) and owns the HTTP client the harness
// coordinators use, so teardown can drop keepalive connections before the
// goroutine-leak check. Episodes arm process-global guard state, so a
// Runner must not run episodes concurrently.
type Runner struct {
	client *http.Client

	refOnce sync.Once
	refCSV  string
	refErr  error
}

// NewRunner returns a Runner with a dedicated HTTP client.
func NewRunner() *Runner {
	return &Runner{client: &http.Client{}}
}

// episodeSpec is the study every episode evaluates: a few candidates of
// the paper's datacenter space over one workload — small enough for a
// sub-second serial run, large enough to shard across workers.
func episodeSpec() dse.StudySpec {
	c := dse.TableI()
	c.XChoices = []int{8, 32, 64}
	c.NChoices = []int{2, 4}
	c.MaxTiles = 64
	return dse.StudySpec{
		Constraints: c,
		Spec:        dse.BatchSpec{Fixed: 8},
		Models:      []string{"alexnet"},
	}
}

// Reference computes (once) the serial, fault-free study output every
// episode is compared against.
func (r *Runner) Reference(ctx context.Context) (string, error) {
	r.refOnce.Do(func() {
		if guard.Armed() {
			r.refErr = fmt.Errorf("chaos: reference requested with faults armed")
			return
		}
		study, err := dse.NewStudy(ctx, episodeSpec())
		if err != nil {
			r.refErr = err
			return
		}
		rows, err := study.Run(ctx, dse.Hardening{}, "")
		if err != nil {
			r.refErr = err
			return
		}
		r.refCSV = dse.RuntimeRowsCSV(rows)
	})
	return r.refCSV, r.refErr
}

// buildPlan translates a schedule's fault events (and starve ops, which
// are sugar for a one-shot over-lease stall at fleet.shard) into a guard
// plan seeded by the schedule.
func buildPlan(sch *Schedule) guard.Plan {
	p := guard.Plan{Seed: sch.Seed}
	for _, e := range sch.Events {
		switch {
		case e.Kind == KindFault:
			pf := guard.PlanFault{Site: e.Site, Prob: e.Prob}
			pf.Skip, pf.Count = e.Skip, e.Count
			switch e.Effect {
			case EffectErr:
				pf.Err = guard.ErrUnavailable
			case EffectDelay:
				pf.Delay = time.Duration(e.DelayMS) * time.Millisecond
			case EffectPanic:
				pf.Panic = true
			case EffectNaN:
				pf.NaN = true
			}
			p.Faults = append(p.Faults, pf)
		case e.Kind == KindOp && e.Op == OpStarve:
			p.Faults = append(p.Faults, guard.PlanFault{
				Site:  "fleet.shard",
				Fault: guard.Fault{Delay: episodeLease + 200*time.Millisecond, Count: 1, Skip: e.Skip},
			})
		}
	}
	return p
}

// Run executes one episode of the schedule and returns its verdict. A
// non-nil error means the harness itself failed (setup, I/O), not that an
// invariant was violated — violations land in the verdict.
func (r *Runner) Run(ctx context.Context, sch *Schedule) (*Verdict, error) {
	if err := sch.Validate(); err != nil {
		return nil, err
	}
	refCSV, err := r.Reference(ctx)
	if err != nil {
		return nil, fmt.Errorf("chaos: serial reference: %w", err)
	}

	gPlanted.Set(0)
	baseline := invariants.GoroutineBaseline()
	before := obs.Default().Snapshot()
	var violations []string

	disarm := guard.ArmPlan(buildPlan(sch))
	csv, vio, err := r.drive(ctx, sch)
	disarm()
	guard.DisarmAll() // belt and braces: nothing may leak into the next episode
	if err != nil {
		return nil, err
	}
	violations = append(violations, vio...)

	// Output invariant: byte-identity against the serial reference, or —
	// when the schedule corrupts a metric to NaN — the relaxed contract
	// (every emitted row identical to a reference row, nothing
	// non-finite).
	if sch.OutputExact() {
		if csv != refCSV {
			violations = append(violations, fmt.Sprintf(
				"output: study CSV diverged from serial reference\n--- reference\n%s--- episode\n%s", refCSV, csv))
		}
	} else {
		violations = append(violations, relaxedOutputViolations(refCSV, csv)...)
	}

	// Quiescence invariants, after full teardown.
	if err := invariants.NoGoroutineLeak(baseline, 4, 5*time.Second); err != nil {
		violations = append(violations, err.Error())
	}
	after := obs.Default().Snapshot()
	if err := invariants.GaugesDrained(after, append(invariants.DrainedGauges(), "chaos.planted_violations")...); err != nil {
		violations = append(violations, err.Error())
	}
	if err := invariants.CountersMonotonic(before, after); err != nil {
		violations = append(violations, err.Error())
	}
	if err := invariants.FiniteGauges(after); err != nil {
		violations = append(violations, err.Error())
	}

	return &Verdict{
		Scenario:    sch.Scenario,
		Seed:        sch.Seed,
		Events:      len(sch.Events),
		OutputExact: sch.OutputExact(),
		Passed:      len(violations) == 0,
		Violations:  violations,
	}, nil
}

// relaxedOutputViolations checks the NaN-episode contract: got's header
// matches, every data row appears verbatim in the reference, and no
// non-finite value is rendered anywhere.
func relaxedOutputViolations(ref, got string) []string {
	var out []string
	refLines := strings.Split(strings.TrimRight(ref, "\n"), "\n")
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	known := map[string]bool{}
	for _, l := range refLines {
		known[l] = true
	}
	if len(gotLines) > 0 && len(refLines) > 0 && gotLines[0] != refLines[0] {
		out = append(out, fmt.Sprintf("output: CSV header diverged: %q vs %q", gotLines[0], refLines[0]))
	}
	for _, l := range gotLines {
		if l == "" {
			continue
		}
		if !known[l] {
			out = append(out, fmt.Sprintf("output: row not byte-identical to any reference row: %q", l))
		}
		if strings.Contains(l, "NaN") || strings.Contains(l, "Inf") {
			out = append(out, fmt.Sprintf("output: non-finite value escaped into CSV: %q", l))
		}
	}
	return out
}

// drive runs the schedule's study phase(s) and returns the episode CSV
// and any harness-observed invariant violations (membership transitions,
// store accounting).
func (r *Runner) drive(ctx context.Context, sch *Schedule) (string, []string, error) {
	if !sch.Store {
		return r.driveStudy(ctx, sch, nil)
	}
	// Two-phase store episode: populate the store with a fault-free-path
	// local run, mutate entries the way crashes and bad disks do, then
	// recover (OpenDisk scan) and replay — the episode output is the
	// replayed run, which must still match the reference because a
	// damaged store degrades to recomputation, never to wrong results.
	dir, err := os.MkdirTemp("", "chaos-store-*")
	if err != nil {
		return "", nil, err
	}
	defer os.RemoveAll(dir)

	ds, err := rstore.OpenDisk(dir)
	if err != nil {
		return "", nil, fmt.Errorf("chaos: store populate open: %w", err)
	}
	study, err := dse.NewStudy(ctx, episodeSpec())
	if err != nil {
		return "", nil, err
	}
	if _, err := study.Run(ctx, dse.Hardening{Results: rstore.NewCache(ds)}, ""); err != nil && sch.OutputExact() {
		return "", nil, fmt.Errorf("chaos: store populate run: %w", err)
	}
	ds.Close()

	for _, e := range sch.opsInOrder() {
		if err := mutateStore(dir, e); err != nil {
			return "", nil, err
		}
	}

	ds2, err := rstore.OpenDisk(dir) // recovery scan: quarantine + tmp cleanup
	if err != nil {
		return "", nil, fmt.Errorf("chaos: store recovery open: %w", err)
	}
	defer ds2.Close()
	csv, vio, err := r.driveStudy(ctx, sch, rstore.NewCache(ds2))
	if err != nil {
		return "", nil, err
	}
	maxEntries, _ := rstore.QuarantineLimits()
	if qerr := invariants.QuarantineAccounting(dir, maxEntries); qerr != nil {
		vio = append(vio, qerr.Error())
	}
	return csv, vio, nil
}

// driveStudy runs one study under the schedule's harness: workers plus
// coordinator when sch.Workers > 0, a timed ops driver, and (when
// heartbeats are on) a membership-transition watcher.
func (r *Runner) driveStudy(ctx context.Context, sch *Schedule, cache *rstore.Cache) (string, []string, error) {
	h := &harness{runner: r, sch: sch}
	defer h.teardown()
	if err := h.start(); err != nil {
		return "", nil, err
	}

	opsCtx, opsCancel := context.WithCancel(ctx)
	defer opsCancel()
	opsDone := make(chan struct{})
	go func() {
		defer close(opsDone)
		start := time.Now()
		for _, e := range sch.opsInOrder() {
			if wait := time.Duration(e.AtMS)*time.Millisecond - time.Since(start); wait > 0 {
				select {
				case <-time.After(wait):
				case <-opsCtx.Done():
					return
				}
			}
			h.execOp(opsCtx, e)
		}
	}()

	hard := dse.Hardening{Workers: 2, BlockSize: 2, Results: cache}
	if h.coord != nil {
		hard.Dispatch = h.coord.Dispatch
	}
	study, err := dse.NewStudy(ctx, episodeSpec())
	if err != nil {
		return "", nil, err
	}
	rows, err := study.Run(ctx, hard, "")
	if err != nil && sch.OutputExact() {
		return "", nil, fmt.Errorf("chaos: episode study: %w", err)
	}
	<-opsDone
	h.teardown()
	return dse.RuntimeRowsCSV(rows), h.violations(), nil
}

// harness is one episode's in-process fleet: workers behind real
// listeners, a coordinator, the coordinator's HTTP surface (register/
// drain endpoints), and the membership watcher.
type harness struct {
	runner *Runner
	sch    *Schedule

	mu      sync.Mutex
	workers []*episodeWorker
	vio     []string

	coord     *fleet.Coordinator
	coordSrv  *serve.Server
	coordHTTP *http.Server
	coordURL  string

	watchStop chan struct{}
	watchDone chan struct{}
	torn      bool
}

// episodeWorker is one worker process analog: a serve.Server behind a
// caller-owned http.Server, so OpKill can abruptly sever its listener and
// connections the way SIGKILL would.
type episodeWorker struct {
	srv    *serve.Server
	hs     *http.Server
	url    string
	killed bool
}

func (h *harness) start() error {
	if h.sch.Workers == 0 {
		return nil
	}
	urls := make([]string, 0, h.sch.Workers)
	for i := 0; i < h.sch.Workers; i++ {
		w, err := h.startWorker()
		if err != nil {
			return err
		}
		urls = append(urls, w.url)
	}
	cfg := fleet.Config{
		Workers:          urls,
		Dynamic:          true,
		ShardSize:        2,
		LeaseTTL:         episodeLease,
		HedgeAfter:       -1,
		MaxAttempts:      3,
		Backoff:          guard.Backoff{Base: 5 * time.Millisecond, Max: 40 * time.Millisecond},
		BreakerThreshold: 3,
		BreakerCooldown:  200 * time.Millisecond,
		Client:           h.runner.client,
	}
	if h.sch.Heartbeat {
		cfg.Heartbeat = episodeHeartbeat
		cfg.SuspectAfter = episodeSuspect
		cfg.EvictAfter = episodeEvict
	}
	coord, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	h.coord = coord

	// The coordinator's own HTTP surface, so spawn/drain ops go through
	// the real /v1/worker/register and /v1/worker/drain endpoints (and
	// their fleet.register fault site), not through a back door.
	h.coordSrv = serve.New(serve.Config{Membership: coord.Membership()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	h.coordHTTP = &http.Server{Handler: h.coordSrv.Handler()}
	go h.coordHTTP.Serve(ln)
	h.coordURL = "http://" + ln.Addr().String()

	if h.sch.Heartbeat {
		h.watchStop = make(chan struct{})
		h.watchDone = make(chan struct{})
		go h.watchMembership(coord.Membership())
	}
	return nil
}

func (h *harness) startWorker() (*episodeWorker, error) {
	srv := serve.New(serve.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	w := &episodeWorker{
		srv: srv,
		hs:  &http.Server{Handler: srv.Handler()},
		url: "http://" + ln.Addr().String(),
	}
	go w.hs.Serve(ln)
	h.mu.Lock()
	h.workers = append(h.workers, w)
	h.mu.Unlock()
	return w, nil
}

// execOp applies one timed op. Store ops are handled between phases by
// drive, not here.
func (h *harness) execOp(ctx context.Context, e Event) {
	switch e.Op {
	case OpKill:
		h.mu.Lock()
		defer h.mu.Unlock()
		if len(h.workers) == 0 {
			return
		}
		w := h.workers[e.Worker%len(h.workers)]
		if !w.killed {
			w.killed = true
			w.hs.Close()
		}
	case OpSpawn:
		if h.coordURL == "" {
			return
		}
		w, err := h.startWorker()
		if err != nil {
			return
		}
		h.memberPost(ctx, "/v1/worker/register", w.url)
	case OpDrain:
		h.mu.Lock()
		var url string
		if len(h.workers) > 0 {
			url = h.workers[e.Worker%len(h.workers)].url
		}
		h.mu.Unlock()
		if url != "" && h.coordURL != "" {
			h.memberPost(ctx, "/v1/worker/drain", url)
		}
	case OpViolate:
		gPlanted.Add(1)
	}
}

// memberPost drives the coordinator's register/drain endpoint. Failures
// are deliberately ignored: an injected fleet.register fault *should*
// fail this call, and the invariant story is that the system stays
// correct regardless.
func (h *harness) memberPost(ctx context.Context, path, workerURL string) {
	body := strings.NewReader(`{"url":` + strconv.Quote(workerURL) + `}`)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, h.coordURL+path, body)
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.runner.client.Do(req)
	if err == nil {
		resp.Body.Close()
	}
}

// watchMembership samples the membership table and checks every directly
// observed transition against the state machine's legal edges. Sampling
// can miss intermediate states, so a check only counts when consecutive
// samples are close enough (well under SuspectAfter) that a composed
// multi-hop path cannot masquerade as one illegal edge.
func (h *harness) watchMembership(m *fleet.Membership) {
	defer close(h.watchDone)
	const every = 15 * time.Millisecond
	const maxGap = 150 * time.Millisecond
	last := m.States()
	lastAt := time.Now()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-h.watchStop:
			return
		case <-t.C:
			cur := m.States()
			now := time.Now()
			if now.Sub(lastAt) <= maxGap {
				for url, st := range cur {
					prev, ok := last[url]
					if ok && !legalTransition(prev, st) {
						h.mu.Lock()
						h.vio = append(h.vio, fmt.Sprintf(
							"membership: illegal transition %s -> %s for %s", prev, st, url))
						h.mu.Unlock()
					}
				}
			}
			last, lastAt = cur, now
		}
	}
}

// legalTransition reports whether a directly observed membership edge
// from -> to is reachable in the state machine
// (internal/fleet/membership.go): any state may drain (operator action)
// or readmit to live (probe success / re-register); only a live member
// becomes suspect; any non-evicted state may age straight to evicted
// (probeResult evicts on EvictAfter silence even if no round observed the
// suspect window).
func legalTransition(from, to fleet.State) bool {
	if from == to {
		return true
	}
	switch to {
	case fleet.StateDraining, fleet.StateLive:
		return true
	case fleet.StateSuspect:
		return from == fleet.StateLive
	case fleet.StateEvicted:
		return from != fleet.StateEvicted
	default:
		return false
	}
}

// violations snapshots the harness-observed invariant violations.
func (h *harness) violations() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.vio...)
}

// teardown stops the watcher, the coordinator, the coordinator's HTTP
// surface, and every worker (killed ones included — process death would
// have reclaimed their resources; in-process, Shutdown does). Idempotent.
func (h *harness) teardown() {
	h.mu.Lock()
	if h.torn {
		h.mu.Unlock()
		return
	}
	h.torn = true
	workers := append([]*episodeWorker(nil), h.workers...)
	h.mu.Unlock()

	if h.watchStop != nil {
		close(h.watchStop)
		<-h.watchDone
	}
	if h.coord != nil {
		h.coord.Close()
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if h.coordHTTP != nil {
		h.coordHTTP.Close()
	}
	if h.coordSrv != nil {
		h.coordSrv.Shutdown(sctx)
	}
	for _, w := range workers {
		w.hs.Close()
		w.srv.Shutdown(sctx)
	}
	h.runner.client.CloseIdleConnections()
}

// mutateStore applies one store op to the store directory between the
// populate and replay phases. Entry indices address the sorted entry
// list, so the same schedule always damages the same entry.
func mutateStore(dir string, e Event) error {
	switch e.Op {
	case OpCorruptEntry, OpTruncateEntry:
		entries, err := listEntries(dir)
		if err != nil || len(entries) == 0 {
			return err
		}
		path := entries[e.Worker%len(entries)]
		if e.Op == OpTruncateEntry {
			info, err := os.Stat(path)
			if err != nil {
				return nil // already gone (mutated twice)
			}
			return os.Truncate(path, info.Size()/2)
		}
		b, err := os.ReadFile(path)
		if err != nil || len(b) == 0 {
			return nil
		}
		b[len(b)/2] ^= 0xFF
		return os.WriteFile(path, b, 0o644)
	case OpPlantTmp:
		sub := filepath.Join(dir, "objects", "00")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return err
		}
		name := strings.Repeat("0", 64) + ".res.tmp"
		return os.WriteFile(filepath.Join(sub, name), []byte("torn write"), 0o644)
	}
	return nil
}

// listEntries returns the store's entry files in sorted order.
func listEntries(dir string) ([]string, error) {
	var out []string
	objects := filepath.Join(dir, "objects")
	err := filepath.WalkDir(objects, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".res" {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}
