// Package invariants collects the system-level assertions the codebase
// promises piecemeal — gauges drain to zero, goroutines don't leak,
// counters only go up, the quarantine stays bounded — as plain
// error-returning checks plus thin testing adapters. The chaos engine
// (internal/chaos) evaluates the same checks after every episode that the
// unit tests assert after every lifecycle, so "what the tests check" and
// "what chaos checks" cannot drift apart. The package deliberately
// imports nothing above obs, so every layer's in-package tests can adopt
// it; the fleet-specific membership-transition check lives in
// internal/chaos, which may import the world.
package invariants

import (
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"neurometer/internal/obs"
)

// DrainedGauges returns the gauges that must read zero whenever the
// system is quiescent (no requests in flight, all pools stopped). Each
// one is an in-flight/occupancy gauge some subsystem increments on entry
// and decrements on every exit path; a nonzero reading at rest means a
// leaked decrement.
func DrainedGauges() []string {
	return []string{
		"dse.eval_inflight",
		"dse.queue_depth",
		"fleet.shards_inflight",
		"serve.inflight",
	}
}

// GaugesDrained checks that every named gauge reads exactly zero in the
// snapshot. Gauges absent from the snapshot pass: a process that never
// touched a subsystem never registered its gauges.
func GaugesDrained(snap obs.Snapshot, names ...string) error {
	if len(names) == 0 {
		names = DrainedGauges()
	}
	var bad []string
	for _, name := range names {
		if v, ok := snap.Gauges[name]; ok && v != 0 {
			bad = append(bad, fmt.Sprintf("%s=%g", name, v))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("gauges not drained at rest: %s", strings.Join(bad, ", "))
	}
	return nil
}

// CountersMonotonic checks that no counter moved backwards (or vanished)
// between two snapshots. Counters are cumulative by contract; a decrease
// means double-registration or a raw Set on a counter.
func CountersMonotonic(before, after obs.Snapshot) error {
	var bad []string
	for name, b := range before.Counters {
		a, ok := after.Counters[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s vanished (was %d)", name, b))
			continue
		}
		if a < b {
			bad = append(bad, fmt.Sprintf("%s went %d -> %d", name, b, a))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("counters moved backwards: %s", strings.Join(bad, "; "))
	}
	return nil
}

// FiniteGauges checks that no gauge in the snapshot holds a NaN or Inf —
// the obs-layer face of the repo-wide "no non-finite numbers escape"
// contract.
func FiniteGauges(snap obs.Snapshot) error {
	var bad []string
	for name, v := range snap.Gauges {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			bad = append(bad, fmt.Sprintf("%s=%g", name, v))
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("non-finite gauges: %s", strings.Join(bad, ", "))
	}
	return nil
}

// GoroutineBaseline samples the current goroutine count, to be taken
// before the lifecycle under test starts.
func GoroutineBaseline() int { return runtime.NumGoroutine() }

// NoGoroutineLeak checks that the goroutine count settles back to
// baseline+slack within grace. Runtime-internal helpers (GC workers,
// netpoller threads) come and go, hence the slack; exiting goroutines
// need a beat to unwind, hence the GC-and-poll loop rather than a single
// sample. On failure the error carries a full stack dump.
func NoGoroutineLeak(baseline, slack int, grace time.Duration) error {
	deadline := time.Now().Add(grace)
	var n int
	for {
		runtime.GC()
		n = runtime.NumGoroutine()
		if n <= baseline+slack {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	return fmt.Errorf("goroutine leak: %d goroutines, baseline %d (slack %d)\n%s",
		n, baseline, slack, buf)
}

// RequireGaugesDrained is the testing adapter for GaugesDrained against
// the default obs registry.
func RequireGaugesDrained(tb testing.TB, names ...string) {
	tb.Helper()
	if err := GaugesDrained(obs.Default().Snapshot(), names...); err != nil {
		tb.Error(err)
	}
}

// RequireNoGoroutineLeak is the testing adapter for NoGoroutineLeak with
// the conventional tolerance (2 goroutines, 3s settle) used across the
// serve and dse lifecycle tests.
func RequireNoGoroutineLeak(tb testing.TB, baseline int) {
	tb.Helper()
	if err := NoGoroutineLeak(baseline, 2, 3*time.Second); err != nil {
		tb.Error(err)
	}
}

// QuarantineAccounting checks a result store's on-disk bookkeeping after
// a run: no *.tmp droppings under objects/ (crash-safe writes clean up or
// the next scan does), and the quarantine directory within the entry cap.
// maxEntries <= 0 means "no cap check".
func QuarantineAccounting(storeDir string, maxEntries int) error {
	objects := filepath.Join(storeDir, "objects")
	var tmps []string
	err := filepath.WalkDir(objects, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return filepath.SkipAll
			}
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".tmp") {
			tmps = append(tmps, path)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("quarantine accounting: %w", err)
	}
	if len(tmps) > 0 {
		return fmt.Errorf("orphaned tmp files under objects/ after recovery: %v", tmps)
	}
	if maxEntries > 0 {
		ents, err := os.ReadDir(filepath.Join(storeDir, "quarantine"))
		if err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("quarantine accounting: %w", err)
		}
		n := 0
		for _, e := range ents {
			if !e.IsDir() {
				n++
			}
		}
		if n > maxEntries {
			return fmt.Errorf("quarantine holds %d entries, cap is %d", n, maxEntries)
		}
	}
	return nil
}
