package graph

import (
	"testing"
	"testing/quick"
)

func conv(h, inC, outC, k, s int, same bool) Layer {
	return Layer{Name: "c", Kind: Conv2D, InH: h, InW: h, InC: inC, OutC: outC, KH: k, KW: k, Stride: s, SamePad: same}
}

func TestOutDims(t *testing.T) {
	for _, tc := range []struct {
		l          Layer
		outH, outW int
	}{
		{conv(224, 3, 64, 7, 2, true), 112, 112},
		{conv(227, 3, 96, 11, 4, false), 55, 55},
		{conv(56, 64, 64, 1, 1, true), 56, 56},
		{conv(35, 192, 384, 3, 2, false), 17, 17},
		{Layer{Kind: MatMul, InH: 1, InW: 1, InC: 2048, OutC: 1000}, 1, 1},
		{Layer{Kind: GlobalPool, InH: 7, InW: 7, InC: 2048}, 1, 1},
		{Layer{Kind: Pool, InH: 55, InW: 55, InC: 96, KH: 3, KW: 3, Stride: 2}, 27, 27},
	} {
		if tc.l.OutH() != tc.outH || tc.l.OutW() != tc.outW {
			t.Errorf("%v: out %dx%d, want %dx%d", tc.l, tc.l.OutH(), tc.l.OutW(), tc.outH, tc.outW)
		}
	}
}

func TestGEMMAndMACs(t *testing.T) {
	// AlexNet conv1: 55x55x96 output, K = 3*11*11 = 363 -> 105.4M MACs.
	l := conv(227, 3, 96, 11, 4, false)
	m, k, n := l.GEMM()
	if m != 55*55 || k != 363 || n != 96 {
		t.Errorf("GEMM: %d %d %d", m, k, n)
	}
	if l.MACs() != int64(55*55)*363*96 {
		t.Errorf("MACs: %d", l.MACs())
	}
	fc := Layer{Kind: MatMul, InH: 1, InW: 1, InC: 4096, OutC: 1000}
	if fc.MACs() != 4096*1000 {
		t.Errorf("fc MACs: %d", fc.MACs())
	}
	p := Layer{Kind: Pool, InH: 10, InW: 10, InC: 8, KH: 2, KW: 2, Stride: 2}
	if p.MACs() != 0 {
		t.Errorf("pool has no MACs")
	}
}

func TestDepthwiseMACs(t *testing.T) {
	dw := Layer{Kind: DepthwiseConv2D, InH: 56, InW: 56, InC: 128, KH: 3, KW: 3, Stride: 1, SamePad: true}
	want := int64(56*56) * 128 * 9
	if dw.MACs() != want {
		t.Errorf("dw MACs: %d want %d", dw.MACs(), want)
	}
	if m, k, n := dw.GEMM(); m != 0 || k != 0 || n != 0 {
		t.Errorf("depthwise must not map to GEMM")
	}
	if dw.VectorOps() != want {
		t.Errorf("dw vector ops: %d", dw.VectorOps())
	}
}

func TestParams(t *testing.T) {
	l := conv(56, 64, 256, 1, 1, true)
	if l.Params() != 64*256+256 {
		t.Errorf("conv params: %d", l.Params())
	}
	bn := Layer{Kind: BatchNorm, InH: 56, InW: 56, InC: 64}
	if bn.Params() != 128 {
		t.Errorf("bn params: %d", bn.Params())
	}
	if (Layer{Kind: Pool, InH: 4, InW: 4, InC: 4, KH: 2, KW: 2}).Params() != 0 {
		t.Errorf("pool params must be 0")
	}
}

func TestGraphTotals(t *testing.T) {
	g := &Graph{Name: "toy", Layers: []Layer{
		conv(8, 3, 16, 3, 1, true),
		{Kind: Activation, InH: 8, InW: 8, InC: 16},
		{Kind: MatMul, InH: 1, InW: 1, InC: 16 * 64, OutC: 10},
	}}
	if g.MACs() != int64(64*27*16)+int64(16*64*10) {
		t.Errorf("MACs: %d", g.MACs())
	}
	if g.Ops() != 2*g.MACs() {
		t.Errorf("Ops must be 2x MACs")
	}
	if g.Params() <= 0 || g.PeakDataBytes() <= 0 {
		t.Errorf("totals must be positive")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}
}

func TestValidateCatchesBadGraphs(t *testing.T) {
	if err := (&Graph{Name: "empty"}).Validate(); err == nil {
		t.Errorf("empty graph must fail")
	}
	bad := &Graph{Name: "bad", Layers: []Layer{{Kind: Conv2D, InH: 0, InW: 8, InC: 3, OutC: 8, KH: 3, KW: 3}}}
	if err := bad.Validate(); err == nil {
		t.Errorf("zero-dim layer must fail")
	}
	noOut := &Graph{Name: "noout", Layers: []Layer{{Kind: Conv2D, InH: 8, InW: 8, InC: 3, KH: 3, KW: 3}}}
	if err := noOut.Validate(); err == nil {
		t.Errorf("conv without OutC must fail")
	}
}

func TestMACsNonNegativeProperty(t *testing.T) {
	f := func(h, c, o, k uint8) bool {
		l := conv(int(h%128)+1, int(c)%512+1, int(o)%512+1, int(k%7)+1, 1, true)
		return l.MACs() >= 0 && l.Params() >= 0 && l.OutBytes() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStrings(t *testing.T) {
	kinds := []OpKind{Conv2D, DepthwiseConv2D, MatMul, Pool, GlobalPool,
		Activation, BatchNorm, EltwiseAdd, Concat, Softmax}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty kind string")
		}
	}
	if !Conv2D.IsMatrixOp() || !MatMul.IsMatrixOp() || Pool.IsMatrixOp() {
		t.Errorf("IsMatrixOp misclassifies")
	}
	if conv(8, 3, 8, 3, 1, true).String() == "" {
		t.Errorf("empty layer string")
	}
}

func TestVectorOpsByKind(t *testing.T) {
	pool := Layer{Kind: Pool, InH: 10, InW: 10, InC: 8, KH: 3, KW: 3, Stride: 2}
	if pool.VectorOps() != int64(pool.OutH()*pool.OutW()*8*9) {
		t.Errorf("pool vector ops: %d", pool.VectorOps())
	}
	gp := Layer{Kind: GlobalPool, InH: 7, InW: 7, InC: 64}
	if gp.VectorOps() != 7*7*64 {
		t.Errorf("globalpool ops: %d", gp.VectorOps())
	}
	add := Layer{Kind: EltwiseAdd, InH: 8, InW: 8, InC: 16}
	if add.VectorOps() != 8*8*16 {
		t.Errorf("add ops: %d", add.VectorOps())
	}
	cc := Layer{Kind: Concat, InH: 8, InW: 8, InC: 16, OutC: 16}
	if cc.VectorOps() != 0 {
		t.Errorf("concat moves data, no lane ops: %d", cc.VectorOps())
	}
	fc := Layer{Kind: MatMul, InH: 1, InW: 1, InC: 64, OutC: 10}
	if fc.VectorOps() != 10 {
		t.Errorf("matmul epilogue ops: %d", fc.VectorOps())
	}
	sm := Layer{Kind: Softmax, InH: 1, InW: 1, InC: 100}
	if sm.VectorOps() != 100 {
		t.Errorf("softmax ops: %d", sm.VectorOps())
	}
	act := Layer{Kind: Activation, InH: 4, InW: 4, InC: 3, OutC: 0}
	if act.VectorOps() != 4*4*3 {
		t.Errorf("activation falls back to input channels: %d", act.VectorOps())
	}
}

func TestParamsByKind(t *testing.T) {
	dw := Layer{Kind: DepthwiseConv2D, InH: 8, InW: 8, InC: 16, KH: 3, KW: 3}
	if dw.Params() != 16*9+16 {
		t.Errorf("dw params: %d", dw.Params())
	}
	dyn := Layer{Kind: MatMul, InH: 1, InW: 1, InC: 64, OutC: 64, DynamicB: true}
	if dyn.Params() != 0 {
		t.Errorf("dynamic matmul params: %d", dyn.Params())
	}
	if (Layer{Kind: Softmax, InH: 1, InW: 1, InC: 10}).Params() != 0 {
		t.Errorf("softmax has no params")
	}
}

func TestOutChannelsFallbacks(t *testing.T) {
	dw := Layer{Kind: DepthwiseConv2D, InH: 8, InW: 8, InC: 16, KH: 3, KW: 3, SamePad: true}
	if dw.OutBytes() != 8*8*16 {
		t.Errorf("dw out bytes: %d", dw.OutBytes())
	}
	pool := Layer{Kind: Pool, InH: 8, InW: 8, InC: 16, OutC: 16, KH: 2, KW: 2, Stride: 2}
	if pool.OutBytes() != 4*4*16 {
		t.Errorf("pool out bytes: %d", pool.OutBytes())
	}
}
