// Package graph is the computational-graph IR the performance simulator
// consumes: a linearized list of layers (the TF-Sim role of tfGraph in the
// paper's Fig. 1). Each layer knows its tensor shapes, its GEMM mapping
// (im2col), its MAC count, its parameter count and its activation
// footprint, so workload characteristics (Table II) and tile mappings fall
// out of the same definitions.
package graph

import "fmt"

// OpKind enumerates the supported layer types.
type OpKind int

const (
	// Conv2D is a standard convolution (maps to a GEMM on the TU).
	Conv2D OpKind = iota
	// DepthwiseConv2D convolves each channel independently (TU-unfriendly;
	// the simulator maps it to the vector unit).
	DepthwiseConv2D
	// MatMul is a fully-connected layer.
	MatMul
	// Pool is max/avg pooling (vector op).
	Pool
	// GlobalPool reduces each channel to a scalar (vector op).
	GlobalPool
	// Activation is ReLU/sigmoid/etc. (vector op, usually fused).
	Activation
	// BatchNorm is inference-time scale+shift (vector op, usually fused).
	BatchNorm
	// EltwiseAdd is a residual connection (vector op).
	EltwiseAdd
	// Concat is a channel concatenation (data movement only).
	Concat
	// Softmax is the classifier head (vector op).
	Softmax
)

var kindNames = map[OpKind]string{
	Conv2D: "conv2d", DepthwiseConv2D: "dwconv2d", MatMul: "matmul",
	Pool: "pool", GlobalPool: "globalpool", Activation: "activation",
	BatchNorm: "batchnorm", EltwiseAdd: "add", Concat: "concat", Softmax: "softmax",
}

func (k OpKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// IsMatrixOp reports whether the layer maps to the tensor units.
func (k OpKind) IsMatrixOp() bool { return k == Conv2D || k == MatMul }

// Layer is one node of the linearized graph. Spatial fields follow NHWC
// conventions; MatMul uses InC -> OutC with spatial dims of 1.
type Layer struct {
	Name string
	Kind OpKind

	// Input spatial size and channels.
	InH, InW, InC int
	// OutC output channels; KH x KW kernel; Stride the (square) stride.
	OutC, KH, KW, Stride int
	// Pad is "same"-style padding when true (output = ceil(in/stride));
	// otherwise valid padding.
	SamePad bool
	// DynamicB marks a MatMul whose B operand is an activation rather than
	// a weight tensor (attention score/context products): it contributes
	// MACs but no parameters.
	DynamicB bool
}

// OutH / OutW compute the output spatial dims.
func (l Layer) OutH() int { return l.outDim(l.InH, l.KH) }
func (l Layer) OutW() int { return l.outDim(l.InW, l.KW) }

func (l Layer) outDim(in, k int) int {
	s := l.Stride
	if s <= 0 {
		s = 1
	}
	switch l.Kind {
	case MatMul, Softmax:
		return 1
	case GlobalPool:
		return 1
	}
	if k <= 0 {
		k = 1
	}
	if l.SamePad {
		return (in + s - 1) / s
	}
	out := (in-k)/s + 1
	if out < 1 {
		out = 1
	}
	return out
}

// GEMM returns the im2col GEMM dimensions per frame: M (output pixels),
// K (reduction depth), N (output channels). Zero for non-matrix ops.
func (l Layer) GEMM() (m, k, n int) {
	switch l.Kind {
	case Conv2D:
		return l.OutH() * l.OutW(), l.InC * l.KH * l.KW, l.OutC
	case MatMul:
		return 1, l.InC, l.OutC
	}
	return 0, 0, 0
}

// MACs returns the multiply-accumulate count per frame.
func (l Layer) MACs() int64 {
	switch l.Kind {
	case Conv2D, MatMul:
		m, k, n := l.GEMM()
		return int64(m) * int64(k) * int64(n)
	case DepthwiseConv2D:
		return int64(l.OutH()) * int64(l.OutW()) * int64(l.InC) * int64(l.KH) * int64(l.KW)
	}
	return 0
}

// VectorOps returns per-frame vector-lane operations for non-matrix layers
// (and the bias/activation epilogue of matrix layers).
func (l Layer) VectorOps() int64 {
	out := int64(l.OutH()) * int64(l.OutW()) * int64(l.outChannels())
	switch l.Kind {
	case Conv2D, MatMul:
		return out // bias + activation epilogue
	case DepthwiseConv2D:
		return l.MACs()
	case Pool:
		return out * int64(l.KH) * int64(l.KW)
	case GlobalPool:
		return int64(l.InH) * int64(l.InW) * int64(l.InC)
	case Activation, BatchNorm, EltwiseAdd, Softmax:
		return out
	case Concat:
		return 0
	}
	return out
}

func (l Layer) outChannels() int {
	switch l.Kind {
	case Conv2D, MatMul:
		return l.OutC
	case DepthwiseConv2D:
		return l.InC
	case Concat:
		return l.OutC
	default:
		if l.OutC > 0 {
			return l.OutC
		}
		return l.InC
	}
}

// Params returns the weight count (Int8 quantized: bytes == params).
func (l Layer) Params() int64 {
	if l.DynamicB {
		return 0
	}
	switch l.Kind {
	case Conv2D:
		return int64(l.InC)*int64(l.KH)*int64(l.KW)*int64(l.OutC) + int64(l.OutC)
	case MatMul:
		return int64(l.InC)*int64(l.OutC) + int64(l.OutC)
	case DepthwiseConv2D:
		return int64(l.InC)*int64(l.KH)*int64(l.KW) + int64(l.InC)
	case BatchNorm:
		return 2 * int64(l.InC)
	}
	return 0
}

// InBytes / OutBytes are the activation sizes per frame (Int8).
func (l Layer) InBytes() int64 {
	return int64(l.InH) * int64(l.InW) * int64(l.InC)
}

func (l Layer) OutBytes() int64 {
	return int64(l.OutH()) * int64(l.OutW()) * int64(l.outChannels())
}

func (l Layer) String() string {
	return fmt.Sprintf("%s[%s %dx%dx%d -> %dx%dx%d k%dx%d s%d]",
		l.Name, l.Kind, l.InH, l.InW, l.InC, l.OutH(), l.OutW(), l.outChannels(),
		l.KH, l.KW, l.Stride)
}

// Graph is a linearized model.
type Graph struct {
	Name   string
	Layers []Layer
}

// MACs returns total per-frame MACs.
func (g *Graph) MACs() int64 {
	var total int64
	for _, l := range g.Layers {
		total += l.MACs()
	}
	return total
}

// Ops returns total per-frame operations, counting 2 per MAC plus vector
// ops (the TOPS convention of the paper).
func (g *Graph) Ops() int64 {
	var total int64
	for _, l := range g.Layers {
		total += 2 * l.MACs()
	}
	return total
}

// Params returns the model size in parameters (== bytes at Int8).
func (g *Graph) Params() int64 {
	var total int64
	for _, l := range g.Layers {
		total += l.Params()
	}
	return total
}

// PeakDataBytes returns the peak transient activation footprint per frame
// (Table II's #Data): the largest in+out live set across the graph, plus
// the largest residual/branch tensor held concurrently.
func (g *Graph) PeakDataBytes() int64 {
	var peak int64
	var residual int64
	for _, l := range g.Layers {
		live := l.InBytes() + l.OutBytes()
		if l.Kind == EltwiseAdd || l.Kind == Concat {
			live += residual
		}
		if l.Kind == Conv2D && l.Stride == 1 && l.InH == l.OutH() {
			// A same-size conv inside a block keeps the block input alive
			// for the residual connection.
			residual = l.InBytes()
		}
		if live > peak {
			peak = live
		}
	}
	return peak
}

// Validate checks shape continuity invariants (output channels of layer i
// feed layer i+1 for simple chains); Concat breaks strict continuity, so
// only gross violations (zero/negative dims) are reported.
func (g *Graph) Validate() error {
	if len(g.Layers) == 0 {
		return fmt.Errorf("graph %q has no layers", g.Name)
	}
	for i, l := range g.Layers {
		if l.InH <= 0 || l.InW <= 0 || l.InC <= 0 {
			return fmt.Errorf("graph %q layer %d (%s): non-positive input dims", g.Name, i, l.Name)
		}
		if l.Kind.IsMatrixOp() && l.OutC <= 0 {
			return fmt.Errorf("graph %q layer %d (%s): matrix op without output channels", g.Name, i, l.Name)
		}
	}
	return nil
}
