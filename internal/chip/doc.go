// Package chip is NeuroMeter's top-level model: it assembles cores (IFU,
// LSU, EXU with TU/RT/VU/VReg/CDB, SU) into a many-core accelerator with a
// NoC, distributed on-chip memory and peripheral interfaces, auto-scales
// the dependent hardware parameters from the user's high-level
// configuration, searches the clock for a target TOPS, and reports chip
// TDP, area and timing with per-component breakdowns — the paper's primary
// contribution (§II).
//
// # Concurrency contract
//
// Build is deterministic and has no side effects beyond its return values;
// a *Chip is immutable once Build returns, so one instance may be shared
// freely across goroutines (the dse sweep workers and perfsim rely on
// this). BuildCached adds a process-wide single-flight memo keyed on
// Config.Fingerprint — concurrent requests for the same configuration
// build once and share the result — and is itself safe for concurrent use.
// The cache is bypassed entirely while any guard fault is armed, so
// deterministic fault injection always reaches a real Build.
//
// # Error contract
//
// Build fails with guard.ErrInvalidConfig for configurations it refuses to
// evaluate and guard.ErrInfeasible for well-formed ones it cannot realize
// (timing cannot close, budgets exceeded). Both outcomes are deterministic
// and are memoized by BuildCached alongside successful chips.
package chip
