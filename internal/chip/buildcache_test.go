package chip

import (
	"errors"
	"sync"
	"testing"

	"neurometer/internal/guard"
)

func TestBuildCachedSharesOneChip(t *testing.T) {
	ResetBuildCache()
	cfg := dcPoint(32, 2, 2, 2)
	hits0, misses0 := mCacheHits.Value(), mCacheMisses.Value()

	a, err := BuildCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical configs must share one memoized *Chip")
	}
	if got := mCacheMisses.Value() - misses0; got != 1 {
		t.Fatalf("cache misses = %d, want 1", got)
	}
	if got := mCacheHits.Value() - hits0; got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
}

func TestBuildCachedFingerprintSeparatesConfigs(t *testing.T) {
	a, b := dcPoint(32, 2, 2, 2), dcPoint(64, 2, 2, 2)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("distinct configs must have distinct fingerprints")
	}
	if a.Fingerprint() != dcPoint(32, 2, 2, 2).Fingerprint() {
		t.Fatal("equal configs must have equal fingerprints")
	}
}

func TestBuildCachedCachesDeterministicErrors(t *testing.T) {
	ResetBuildCache()
	_, err1 := BuildCached(Config{}) // invalid: everything missing
	if err1 == nil {
		t.Fatal("empty config must fail")
	}
	_, err2 := BuildCached(Config{})
	if !errors.Is(err2, guard.ErrInvalidConfig) {
		t.Fatalf("cached failure lost its classification: %v", err2)
	}
}

func TestBuildCachedSingleFlight(t *testing.T) {
	ResetBuildCache()
	cfg := dcPoint(32, 2, 2, 4)
	chips := make([]*Chip, 8)
	var wg sync.WaitGroup
	for i := range chips {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := BuildCached(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			chips[i] = c
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(chips); i++ {
		if chips[i] != chips[0] {
			t.Fatal("concurrent BuildCached calls must share one instance")
		}
	}
}

func TestBuildCachedBypassedWhileFaultArmed(t *testing.T) {
	defer guard.DisarmAll()
	ResetBuildCache()
	cfg := dcPoint(32, 4, 2, 2)

	// Arming any fault — even at an unrelated site — must take the cache
	// out of the path entirely, so injected faults land on their exact
	// rehearsed visit.
	disarm := guard.Arm("unrelated.site", guard.Fault{Err: errors.New("live")})
	a, err := BuildCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("cache must be bypassed while a fault is armed")
	}
	disarm()

	// With faults disarmed the memo takes over again.
	c, err := BuildCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := BuildCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c != d {
		t.Fatal("cache must memoize again after disarm")
	}
}
