package chip

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"neurometer/internal/maclib"
	"neurometer/internal/periph"
)

// dcPoint builds a datacenter design point (X, N, Tx, Ty) per Table I.
func dcPoint(x, n, tx, ty int) Config {
	tiles := tx * ty
	memPerCore := int64(32<<20) / int64(tiles)
	return Config{
		Name: "dc", TechNM: 28, ClockHz: 700e6,
		Tx: tx, Ty: ty,
		Core: CoreConfig{
			NumTUs: n, TURows: x, TUCols: x, TUDataType: maclib.Int8,
			HasSU: true,
			Mem:   []MemSegment{{Name: "spad", CapacityBytes: memPerCore}},
		},
		NoCBisectionGBps: 256,
		OffChip:          []OffChipPort{{Kind: periph.HBMPort, GBps: 700}},
	}
}

func TestValidation(t *testing.T) {
	if _, err := Build(Config{}); err == nil {
		t.Errorf("empty config must fail")
	}
	c := dcPoint(64, 2, 2, 4)
	c.TechNM = 0
	if _, err := Build(c); err == nil {
		t.Errorf("missing tech must fail")
	}
	c = dcPoint(64, 2, 2, 4)
	c.ClockHz = 0
	if _, err := Build(c); err == nil {
		t.Errorf("no clock and no TOPS target must fail")
	}
	c = dcPoint(0, 1, 1, 1)
	c.Core.NumTUs = 0
	c.Core.VULanes = 0
	if _, err := Build(c); err == nil {
		t.Errorf("compute-less core must fail")
	}
}

func TestPeakTOPSArithmetic(t *testing.T) {
	// (64, 2, 2, 4): 16 TUs x 4096 MACs x 2 ops x 0.7GHz = 91.75 TOPS.
	c, err := Build(dcPoint(64, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 64 * 64 * 2 * 8 * 0.7e9 / 1e12
	if math.Abs(c.PeakTOPS()-want) > 1e-9 {
		t.Errorf("PeakTOPS = %g, want %g", c.PeakTOPS(), want)
	}
	if c.Tiles() != 8 {
		t.Errorf("tiles: %d", c.Tiles())
	}
}

func TestClockSearchFromTOPSTarget(t *testing.T) {
	cfg := dcPoint(128, 4, 1, 1)
	cfg.ClockHz = 0
	cfg.TargetTOPS = 91.75
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 x 128x128 x 2 ops = 131072 ops/cycle -> 700 MHz for 91.75 TOPS.
	if math.Abs(c.ClockHz()-700e6) > 1e6 {
		t.Errorf("searched clock %.1f MHz, want ~700", c.ClockHz()/1e6)
	}
	if math.Abs(c.PeakTOPS()-91.75) > 0.1 {
		t.Errorf("peak %.2f, want 91.75", c.PeakTOPS())
	}
}

func TestTimingFailureAtAbsurdClock(t *testing.T) {
	cfg := dcPoint(64, 1, 1, 1)
	cfg.ClockHz = 20e9 // 20 GHz: nothing at 28nm closes this
	if _, err := Build(cfg); err == nil {
		t.Errorf("expected a build failure at 20GHz")
	}
}

func TestAutoScalingRules(t *testing.T) {
	c, err := Build(dcPoint(32, 4, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	// VU lanes match the TU array length.
	if c.Core.Cfg.VULanes != 32 {
		t.Errorf("VU lanes = %d, want 32", c.Core.Cfg.VULanes)
	}
	// VReg ports: 2R1W per functional unit (4 TUs + VU = 5 FUs).
	if c.Core.VU.Cfg.VRegReadPorts != 10 || c.Core.VU.Cfg.VRegWritePorts != 5 {
		t.Errorf("VReg ports %dR%dW, want 10R5W",
			c.Core.VU.Cfg.VRegReadPorts, c.Core.VU.Cfg.VRegWritePorts)
	}
	// Shared port group caps at 4R2W.
	cfg := dcPoint(32, 4, 2, 2)
	cfg.Core.SharedVRegPorts = true
	cs, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Core.VU.Cfg.VRegReadPorts != 4 || cs.Core.VU.Cfg.VRegWritePorts != 2 {
		t.Errorf("shared VReg ports %dR%dW, want 4R2W",
			cs.Core.VU.Cfg.VRegReadPorts, cs.Core.VU.Cfg.VRegWritePorts)
	}
	if cs.Core.VU.AreaUM2() >= c.Core.VU.AreaUM2() {
		t.Errorf("shared ports must shrink the VReg")
	}
}

func TestNoCTopologyAutoRule(t *testing.T) {
	small, err := Build(dcPoint(64, 4, 1, 2)) // 2 tiles -> ring
	if err != nil {
		t.Fatal(err)
	}
	if got := small.NoC.Cfg.Topology.String(); got != "ring" {
		t.Errorf("2 tiles should use ring, got %s", got)
	}
	big, err := Build(dcPoint(16, 4, 4, 8)) // 32 tiles -> mesh
	if err != nil {
		t.Fatal(err)
	}
	if got := big.NoC.Cfg.Topology.String(); got != "mesh2d" {
		t.Errorf("32 tiles should use mesh, got %s", got)
	}
}

func TestBudgetsEnforced(t *testing.T) {
	cfg := dcPoint(64, 2, 2, 4)
	cfg.AreaBudgetMM2 = 10
	if _, err := Build(cfg); err == nil || !strings.Contains(err.Error(), "area") {
		t.Errorf("area budget must fail, got %v", err)
	}
	cfg = dcPoint(64, 2, 2, 4)
	cfg.PowerBudgetW = 5
	if _, err := Build(cfg); err == nil || !strings.Contains(err.Error(), "TDP") {
		t.Errorf("power budget must fail, got %v", err)
	}
}

func TestBreakdownConsistency(t *testing.T) {
	c, err := Build(dcPoint(64, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	bd := c.AreaBreakdown()
	if !bd.Consistent(1e-6) {
		t.Errorf("breakdown tree inconsistent:\n%s", bd)
	}
	if math.Abs(bd.AreaMM2-c.AreaMM2()) > 1e-6 {
		t.Errorf("breakdown total %.3f != AreaMM2 %.3f", bd.AreaMM2, c.AreaMM2())
	}
	if math.Abs(bd.PowerW-c.TDPW()) > c.TDPW()*1e-9 {
		t.Errorf("breakdown power %.3f != TDP %.3f", bd.PowerW, c.TDPW())
	}
	// Memory should dominate core area for datacenter points (§III-B.1).
	cores := bd.Child("cores")
	if cores == nil || cores.Child("mem") == nil {
		t.Fatalf("missing cores/mem in breakdown")
	}
}

func TestWhiteSpaceScaling(t *testing.T) {
	base, err := Build(dcPoint(64, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := dcPoint(64, 2, 2, 4)
	cfg.WhiteSpaceFrac = 0.2
	ws, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := base.AreaMM2() / 0.8
	if math.Abs(ws.AreaMM2()-want) > 0.5 {
		t.Errorf("white space: got %.1f want %.1f", ws.AreaMM2(), want)
	}
	if !ws.AreaBreakdown().Consistent(1e-6) {
		t.Errorf("white-space breakdown inconsistent")
	}
}

func TestTimingReport(t *testing.T) {
	c, err := Build(dcPoint(64, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	rep := c.TimingReport()
	if len(rep) < 5 {
		t.Fatalf("timing report too short: %d", len(rep))
	}
	for i := 1; i < len(rep); i++ {
		if rep[i].DelayPS > rep[i-1].DelayPS {
			t.Errorf("timing report not sorted")
		}
	}
	for _, e := range rep {
		if e.SlackPS < 0 {
			t.Errorf("component %s misses timing by %.0fps", e.Component, -e.SlackPS)
		}
	}
	name, d := c.CriticalPath()
	if name != rep[0].Component || d != rep[0].DelayPS {
		t.Errorf("CriticalPath mismatch")
	}
}

func TestRuntimePowerBelowTDP(t *testing.T) {
	c, err := Build(dcPoint(64, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	// 40% utilization activity.
	util := 0.4
	act := Activity{
		TUMACsPerSec:        util * c.PeakTOPS() / 2 * 1e12,
		VUOpsPerSec:         util * float64(c.Core.Cfg.VULanes) * float64(c.Tiles()) * c.ClockHz() * 0.2,
		MemReadBytesPerSec:  100e9,
		MemWriteBytesPerSec: 50e9,
		NoCBytesPerSec:      50e9,
		OffChipBytesPerSec:  300e9,
		SUInstrPerSec:       float64(c.Tiles()) * c.ClockHz() * 0.2,
	}
	w, bd := c.RuntimePower(act)
	if w <= 0 || w >= c.TDPW() {
		t.Errorf("runtime power %.1fW should be below TDP %.1fW", w, c.TDPW())
	}
	if !bd.Consistent(1e-9) {
		t.Errorf("runtime breakdown inconsistent")
	}
	// More activity -> more power.
	act2 := act
	act2.TUMACsPerSec *= 2
	w2, _ := c.RuntimePower(act2)
	if w2 <= w {
		t.Errorf("more MACs must burn more power: %g vs %g", w2, w)
	}
	// Clock gating reduces idle power.
	actG := act
	actG.ClockGateIdleFrac = 0.8
	wg, _ := c.RuntimePower(actG)
	if wg >= w {
		t.Errorf("clock gating must reduce power: %g vs %g", wg, w)
	}
}

func TestEfficiencySummary(t *testing.T) {
	c, err := Build(dcPoint(64, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	opsPerSec := 0.35 * c.PeakTOPS() * 1e12
	e := c.Efficiency(opsPerSec, Activity{TUMACsPerSec: opsPerSec / 2})
	if math.Abs(e.Utilization-0.35) > 1e-9 {
		t.Errorf("utilization: %g", e.Utilization)
	}
	if e.TOPSPerWatt <= 0 || e.TOPSPerTCO <= 0 {
		t.Errorf("efficiency metrics: %+v", e)
	}
	if e.String() == "" {
		t.Errorf("empty summary string")
	}
}

func TestBrawnyVsWimpyShape(t *testing.T) {
	// A wimpy chip with the same peak TOPS needs far more area: per-core
	// overhead (SU, ctrl, NoC routers) multiplies (§III-B.1).
	brawny, err := Build(dcPoint(64, 2, 2, 4)) // 91.75 peak TOPS
	if err != nil {
		t.Fatal(err)
	}
	wimpy, err := Build(dcPoint(8, 4, 8, 16)) // 128 cores x 4 8x8 TUs = 45.9 TOPS
	if err != nil {
		t.Fatal(err)
	}
	brawnyAreaPerTOPS := brawny.AreaMM2() / brawny.PeakTOPS()
	wimpyAreaPerTOPS := wimpy.AreaMM2() / wimpy.PeakTOPS()
	if wimpyAreaPerTOPS < 2*brawnyAreaPerTOPS {
		t.Errorf("wimpy should need >2x area/TOPS: %.2f vs %.2f", wimpyAreaPerTOPS, brawnyAreaPerTOPS)
	}
	if wimpy.PeakTOPSPerWatt() >= brawny.PeakTOPSPerWatt() {
		t.Errorf("brawny should lead peak TOPS/W: %.3f vs %.3f",
			brawny.PeakTOPSPerWatt(), wimpy.PeakTOPSPerWatt())
	}
}

func TestRTBasedChip(t *testing.T) {
	cfg := Config{
		Name: "rt-chip", TechNM: 28, ClockHz: 700e6,
		Tx: 1, Ty: 2,
		Core: CoreConfig{
			NumRTs: 4, RTInputs: 1024, TUDataType: maclib.Int8,
			HasSU: true,
			Mem:   []MemSegment{{Name: "spad", CapacityBytes: 16 << 20}},
		},
		NoCBisectionGBps: 256,
	}
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Core.RT == nil || c.Core.TU != nil {
		t.Fatalf("expected RT-only core")
	}
	// 2 cores x 4 RTs x 1024 x 2 ops x 0.7GHz = 11.5 TOPS.
	if math.Abs(c.PeakTOPS()-11.47) > 0.1 {
		t.Errorf("RT chip peak: %.2f", c.PeakTOPS())
	}
	if !c.AreaBreakdown().Consistent(1e-6) {
		t.Errorf("breakdown inconsistent")
	}
}

func TestReportRenders(t *testing.T) {
	c, err := Build(dcPoint(32, 1, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	for _, want := range []string{"TOPS", "timing", "breakdown", "tu"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestJSONReport(t *testing.T) {
	c, err := Build(dcPoint(64, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	rep := c.JSONReport()
	if rep.PeakTOPS != c.PeakTOPS() || rep.AreaMM2 != c.AreaMM2() || rep.TDPW != c.TDPW() {
		t.Errorf("JSON report totals diverge from the chip")
	}
	if len(rep.Area) == 0 || len(rep.Timing) == 0 {
		t.Errorf("JSON report missing sections")
	}
	// The tree must carry the core components.
	var sawCores bool
	for _, n := range rep.Area {
		if n.Name == "cores" {
			sawCores = true
			if len(n.Children) < 4 {
				t.Errorf("cores node should have component children, got %d", len(n.Children))
			}
		}
	}
	if !sawCores {
		t.Errorf("JSON report missing cores node")
	}
	raw, err := c.MarshalReport()
	if err != nil {
		t.Fatal(err)
	}
	var back JSONReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Name != rep.Name || back.Tiles != rep.Tiles {
		t.Errorf("round-trip mismatch")
	}
}

func TestEnergyTable(t *testing.T) {
	c, err := Build(dcPoint(64, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	ert := c.EnergyTable()
	want := map[string]bool{
		"tu/mac": false, "vu/lane_op": false, "su/instruction": false,
		"mem.spad/read": false, "mem.spad/write": false,
		"cdb/byte": false, "noc/flit_hop": false, "hbm/byte": false,
	}
	for _, e := range ert {
		key := e.Component + "/" + e.Action
		if _, ok := want[key]; ok {
			want[key] = true
		}
		if e.EnergyPJ <= 0 {
			t.Errorf("%s: non-positive energy %g", key, e.EnergyPJ)
		}
		if e.Unit == "" {
			t.Errorf("%s: missing unit", key)
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("energy table missing %s", k)
		}
	}
	raw, err := c.MarshalEnergyTable()
	if err != nil {
		t.Fatal(err)
	}
	var back []EnergyEntry
	if err := json.Unmarshal(raw, &back); err != nil || len(back) != len(ert) {
		t.Errorf("ERT does not round-trip: %v", err)
	}
	// The RT variant exports rt/mac.
	rtCfg := Config{
		Name: "rt", TechNM: 28, ClockHz: 700e6, Tx: 1, Ty: 1,
		Core: CoreConfig{NumRTs: 2, RTInputs: 256, TUDataType: maclib.Int8,
			Mem: []MemSegment{{Name: "spad", CapacityBytes: 1 << 20}}},
	}
	rc, err := Build(rtCfg)
	if err != nil {
		t.Fatal(err)
	}
	var sawRT bool
	for _, e := range rc.EnergyTable() {
		if e.Component == "rt" && e.Action == "mac" {
			sawRT = true
		}
	}
	if !sawRT {
		t.Errorf("RT chip must export rt/mac energy")
	}
}

func TestRuntimeTrace(t *testing.T) {
	c, err := Build(dcPoint(64, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	busy := Activity{TUMACsPerSec: 0.5 * c.PeakTOPS() / 2 * 1e12, OffChipBytesPerSec: 400e9}
	idle := Activity{ClockGateIdleFrac: 0.8}
	res, err := c.RuntimeTrace([]TraceSample{
		{DurationSec: 0.010, Activity: busy},
		{DurationSec: 0.030, Activity: idle},
		{DurationSec: 0.010, Activity: busy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points: %d", len(res.Points))
	}
	if res.TotalSec != 0.05 {
		t.Errorf("total time: %g", res.TotalSec)
	}
	// Busy intervals dominate the peak; the average sits between idle and
	// busy and below TDP.
	if res.PeakPowerW != res.Points[0].PowerW {
		t.Errorf("peak should be the busy interval")
	}
	if res.AvgPowerW <= res.Points[1].PowerW || res.AvgPowerW >= res.PeakPowerW {
		t.Errorf("avg %.1fW outside (idle %.1f, peak %.1f)",
			res.AvgPowerW, res.Points[1].PowerW, res.PeakPowerW)
	}
	if res.PeakPowerW >= c.TDPW() {
		t.Errorf("trace peak must stay under TDP")
	}
	wantE := res.Points[0].PowerW*0.01 + res.Points[1].PowerW*0.03 + res.Points[2].PowerW*0.01
	if math.Abs(res.EnergyJ-wantE) > 1e-9 {
		t.Errorf("energy accounting: %g vs %g", res.EnergyJ, wantE)
	}
	// Error paths.
	if _, err := c.RuntimeTrace(nil); err == nil {
		t.Errorf("empty trace must fail")
	}
	if _, err := c.RuntimeTrace([]TraceSample{{DurationSec: 0}}); err == nil {
		t.Errorf("zero-duration sample must fail")
	}
}

func TestParseTrace(t *testing.T) {
	raw := []byte(`[{"duration_sec": 0.01, "activity": {"TUMACsPerSec": 1e12}}]`)
	samples, err := ParseTrace(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 || samples[0].Activity.TUMACsPerSec != 1e12 {
		t.Errorf("parsed: %+v", samples)
	}
	if _, err := ParseTrace([]byte("{broken")); err == nil {
		t.Errorf("bad JSON must fail")
	}
}

func TestInterpolatedNodeChip(t *testing.T) {
	// A 40nm build exercises the geometric node interpolation end to end;
	// it must land between the 28nm and 45nm builds on area and energy.
	build := func(nm int) *Chip {
		cfg := dcPoint(32, 2, 1, 2)
		cfg.TechNM = nm
		c, err := Build(cfg)
		if err != nil {
			t.Fatalf("%dnm: %v", nm, err)
		}
		return c
	}
	c28, c40, c45 := build(28), build(40), build(45)
	if !(c28.AreaMM2() < c40.AreaMM2() && c40.AreaMM2() < c45.AreaMM2()) {
		t.Errorf("area must interpolate: 28=%.1f 40=%.1f 45=%.1f",
			c28.AreaMM2(), c40.AreaMM2(), c45.AreaMM2())
	}
	if !(c28.TDPW() < c40.TDPW() && c40.TDPW() < c45.TDPW()) {
		t.Errorf("TDP must interpolate: 28=%.1f 40=%.1f 45=%.1f",
			c28.TDPW(), c40.TDPW(), c45.TDPW())
	}
}

func TestVddOverrideChip(t *testing.T) {
	base := dcPoint(32, 2, 1, 2)
	nominal, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	lv := dcPoint(32, 2, 1, 2)
	lv.Vdd = 0.80 // undervolt the 0.9V node
	low, err := Build(lv)
	if err != nil {
		t.Fatal(err)
	}
	if low.TDPW() >= nominal.TDPW() {
		t.Errorf("undervolting must cut TDP: %.1f vs %.1f", low.TDPW(), nominal.TDPW())
	}
	if low.Node.Vdd != 0.80 {
		t.Errorf("node Vdd: %g", low.Node.Vdd)
	}
	// Area barely changes with voltage (only pipelining decisions shift:
	// slower gates at low Vdd can need extra pipeline registers).
	if math.Abs(low.AreaMM2()-nominal.AreaMM2()) > 0.02*nominal.AreaMM2() {
		t.Errorf("voltage should barely change area: %.2f vs %.2f", low.AreaMM2(), nominal.AreaMM2())
	}
}

func TestHybridTUPlusRTCore(t *testing.T) {
	// A core can carry both systolic arrays and reduction trees; peak ops
	// add up across both fabrics.
	cfg := Config{
		Name: "hybrid", TechNM: 28, ClockHz: 700e6, Tx: 1, Ty: 1,
		Core: CoreConfig{
			NumTUs: 1, TURows: 32, TUCols: 32, TUDataType: maclib.Int8,
			NumRTs: 2, RTInputs: 256,
			Mem: []MemSegment{{Name: "spad", CapacityBytes: 2 << 20}},
		},
	}
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := float64(2*32*32 + 2*2*256)
	if got := c.Core.PeakOpsPerCycle(); math.Abs(got-wantOps) > 1e-9 {
		t.Errorf("hybrid peak ops/cycle: %g, want %g", got, wantOps)
	}
	bd := c.AreaBreakdown()
	if bd.Find("tu") == nil || bd.Find("rt") == nil {
		t.Errorf("hybrid breakdown must carry both tu and rt")
	}
	if !bd.Consistent(1e-6) {
		t.Errorf("hybrid breakdown inconsistent")
	}
}

func TestSevenNMChipBuilds(t *testing.T) {
	cfg := dcPoint(64, 2, 2, 4)
	cfg.TechNM = 7
	c, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Build(dcPoint(64, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if c.AreaMM2() >= base.AreaMM2()/2 {
		t.Errorf("7nm should be far denser than 28nm: %.1f vs %.1f", c.AreaMM2(), base.AreaMM2())
	}
	if c.PeakTOPSPerWatt() <= base.PeakTOPSPerWatt() {
		t.Errorf("7nm should be more efficient")
	}
}
