package chip

import (
	"math"
	"testing"

	"neurometer/internal/maclib"
)

// FuzzChipConfig drives arbitrary configurations through Validate and
// Build: no input may panic, and every successfully built chip must report
// finite headline metrics. The seed corpus covers the interesting regimes
// (valid TPU-ish point, clock search, NaN/Inf floats, zero/negative
// dimensions, huge grids).
func FuzzChipConfig(f *testing.F) {
	f.Add(28, 0.9, 700e6, 0.0, 2, 4, 2, 64, 64, int64(4<<20), 256.0, 0.2)
	f.Add(28, 0.0, 0.0, 45.0, 1, 2, 4, 128, 128, int64(8<<20), 256.0, 0.0)
	f.Add(65, math.NaN(), 700e6, 0.0, 2, 2, 1, 16, 16, int64(1<<20), 64.0, 0.1)
	f.Add(28, 0.9, math.Inf(1), 0.0, 2, 4, 2, 64, 64, int64(4<<20), 256.0, 0.2)
	f.Add(-7, 0.9, 700e6, 0.0, 0, -1, 2, 0, 1<<30, int64(-5), -1.0, 2.0)
	f.Add(28, 0.9, 700e6, 0.0, 1<<20, 1<<20, 1, 8, 8, int64(1<<20), 16.0, 0.1)

	f.Fuzz(func(t *testing.T, nm int, vdd, clockHz, targetTOPS float64,
		tx, ty, numTUs, tuRows, tuCols int, memBytes int64, nocGBps, whiteSpace float64) {
		cfg := Config{
			Name: "fuzz", TechNM: nm, Vdd: vdd,
			ClockHz: clockHz, TargetTOPS: targetTOPS,
			Tx: tx, Ty: ty,
			Core: CoreConfig{
				NumTUs: numTUs, TURows: tuRows, TUCols: tuCols,
				TUDataType: maclib.Int8, HasSU: true,
				Mem: []MemSegment{{Name: "spad", CapacityBytes: memBytes}},
			},
			NoCBisectionGBps: nocGBps,
			WhiteSpaceFrac:   whiteSpace,
		}
		c, err := Build(cfg) // must never panic: Build recovers and classifies
		if err != nil {
			return
		}
		for name, v := range map[string]float64{
			"peak":  c.PeakTOPS(),
			"area":  c.AreaMM2(),
			"tdp":   c.TDPW(),
			"topsW": c.PeakTOPSPerWatt(),
			"topsT": c.PeakTOPSPerTCO(),
			"leak":  c.LeakageW(),
			"cycle": c.CyclePS(),
			"clock": c.ClockHz(),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("built chip reports non-finite %s: %g (cfg %+v)", name, v, cfg)
			}
		}
	})
}
