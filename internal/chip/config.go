package chip

import (
	"neurometer/internal/guard"
	"neurometer/internal/maclib"
	"neurometer/internal/noc"
	"neurometer/internal/periph"
	"neurometer/internal/tech"
	"neurometer/internal/tensorunit"
)

// OffChipPort is a requested peripheral interface.
type OffChipPort struct {
	Kind periph.Kind
	GBps float64
	// Count instantiates multiple identical ports (e.g. 4 ICI links).
	Count int
}

// MemSegment mirrors onchipmem.Segment at the config level; capacities are
// per core (the on-chip memory is distributed).
type MemSegment struct {
	Name          string
	CapacityBytes int64
	// BlockBytes 0 = auto (scaled to the TU row width).
	BlockBytes int
	// Banks/ports 0 = let the optimizer search.
	Banks      int
	ReadPorts  int
	WritePorts int
	// Throughput targets in bytes per cycle; 0 = auto from the compute
	// units' demand.
	ReadBytesPerCycle  float64
	WriteBytesPerCycle float64
}

// CoreConfig describes one core. Only the high-level parameters are
// mandatory; everything else is derived by Build.
type CoreConfig struct {
	// NumTUs is N, the tensor units per core (paper caps the studied
	// design space at 4 to avoid VReg port explosion; larger values are
	// allowed but audited against the same rule unless SharedVRegPorts).
	NumTUs int
	// TURows x TUCols systolic cells per TU (X by X in the paper's tuple).
	TURows, TUCols int
	// TUDataType is the multiplier format (accumulator derived).
	TUDataType maclib.DataType
	// TUInterconnect / TUDataflow select the fabric (§II-A).
	TUInterconnect tensorunit.Interconnect
	TUDataflow     tensorunit.Dataflow
	// TULocalSpadBytes / TULocalRegBytes: per-cell storage (Eyeriss).
	TULocalSpadBytes int
	TULocalRegBytes  int

	// NumRTs / RTInputs configure reduction trees instead of (or beside)
	// TUs for RT-based accelerators.
	NumRTs   int
	RTInputs int

	// VULanes 0 = auto: matches the TU array length (or RT inputs).
	VULanes int
	// VUHasMAC adds per-lane multipliers.
	VUHasMAC bool
	// SharedVRegPorts lets all TUs share one 2R1W port group instead of
	// private ports (§II-A; the external performance tool must then model
	// the broadcast restriction).
	SharedVRegPorts bool

	// HasSU instantiates the scalar control core (default-on for
	// many-core datacenter designs; Eyeriss-style chips use top-level
	// control instead).
	HasSU bool

	// Mem is the core's slice of the distributed on-chip memory. Nil
	// segments mean a memory-less core (I/O fed).
	Mem []MemSegment
	// MemCell selects DFF/SRAM/eDRAM (default SRAM).
	MemCell tech.MemCell
}

// Config is the chip-level user configuration (Fig. 1 inputs).
type Config struct {
	Name string

	// TechNM and Vdd select the backend; Vdd 0 = nominal.
	TechNM int
	Vdd    float64

	// ClockHz 0 = search the minimum clock that reaches TargetTOPS (and
	// error out if timing cannot close); otherwise the fixed target clock.
	ClockHz float64
	// TargetTOPS is the system-level performance target used when
	// searching the clock (peak tera-ops/sec, 2 ops per MAC).
	TargetTOPS float64

	// Tx x Ty tiles, each holding one core.
	Tx, Ty int
	Core   CoreConfig

	// NoCTopology: zero value Auto selects ring for <=4 tiles and 2-D mesh
	// for >=8, per Table I. NoCBisectionGBps sizes the links.
	NoCTopology      NoCTopology
	NoCBisectionGBps float64

	// OffChip lists the peripheral ports (HBM, DDR, PCIe, ICI, DMA).
	OffChip []OffChipPort

	// WhiteSpaceFrac adds unmodeled area as a fraction of the total die
	// (the validation sections use the published ~21% unknown share plus
	// unmodeled components). Power is not scaled.
	WhiteSpaceFrac float64

	// AreaBudgetMM2 / PowerBudgetW: optional constraints; Build fails when
	// the finished chip exceeds them.
	AreaBudgetMM2 float64
	PowerBudgetW  float64
}

// NoCTopology wraps noc.Topology with an Auto default.
type NoCTopology int

const (
	NoCAuto NoCTopology = iota
	NoCMesh
	NoCRing
	NoCBus
	NoCHTree
)

func (t NoCTopology) resolve(tiles int) noc.Topology {
	switch t {
	case NoCMesh:
		return noc.Mesh2D
	case NoCRing:
		return noc.Ring
	case NoCBus:
		return noc.Bus
	case NoCHTree:
		return noc.HTree
	default:
		// Table I: "Ring when #Tile on chip Tx*Ty <= 4, 2D-Mesh when >= 8".
		if tiles <= 4 {
			return noc.Ring
		}
		return noc.Mesh2D
	}
}

// Validate performs field-level validation of the configuration: required
// fields, positive ranges, and finite-number checks on every float input.
// All failures wrap guard.ErrInvalidConfig, so sweep drivers can classify
// a malformed design point without string matching. Build calls it first;
// it is exported so front ends (JSON configs, DSE generators) can reject
// bad inputs before paying for a build.
func (c *Config) Validate() error {
	if c.TechNM <= 0 {
		return guard.Invalid("chip: TechNM required")
	}
	if err := guard.CheckFinites(
		"Vdd", c.Vdd, "ClockHz", c.ClockHz, "TargetTOPS", c.TargetTOPS,
		"NoCBisectionGBps", c.NoCBisectionGBps,
		"WhiteSpaceFrac", c.WhiteSpaceFrac,
		"AreaBudgetMM2", c.AreaBudgetMM2, "PowerBudgetW", c.PowerBudgetW,
	); err != nil {
		return guard.Invalid("chip: %v", err)
	}
	if c.Vdd < 0 {
		return guard.Invalid("chip: Vdd must be non-negative, got %g", c.Vdd)
	}
	if c.ClockHz < 0 || c.TargetTOPS < 0 {
		return guard.Invalid("chip: ClockHz/TargetTOPS must be non-negative, got %g/%g",
			c.ClockHz, c.TargetTOPS)
	}
	if c.Tx <= 0 || c.Ty <= 0 {
		return guard.Invalid("chip: tile grid must be positive, got %dx%d", c.Tx, c.Ty)
	}
	if tiles := int64(c.Tx) * int64(c.Ty); tiles > maxTiles {
		return guard.Invalid("chip: %d tiles exceeds the supported maximum %d", tiles, maxTiles)
	}
	if c.ClockHz <= 0 && c.TargetTOPS <= 0 {
		return guard.Invalid("chip: either ClockHz or TargetTOPS must be set")
	}
	if c.NoCBisectionGBps < 0 {
		return guard.Invalid("chip: NoCBisectionGBps must be non-negative, got %g", c.NoCBisectionGBps)
	}
	for i, op := range c.OffChip {
		if err := guard.CheckFinite("OffChip.GBps", op.GBps); err != nil {
			return guard.Invalid("chip: off-chip port %d: %v", i, err)
		}
		if op.GBps < 0 {
			return guard.Invalid("chip: off-chip port %d: negative bandwidth %g", i, op.GBps)
		}
	}
	cc := &c.Core
	hasTU := cc.NumTUs > 0
	hasRT := cc.NumRTs > 0
	if !hasTU && !hasRT && cc.VULanes == 0 {
		return guard.Invalid("chip: core has no compute units (TUs, RTs or VU lanes)")
	}
	if cc.NumTUs < 0 || cc.NumRTs < 0 || cc.VULanes < 0 {
		return guard.Invalid("chip: unit counts must be non-negative (TUs=%d RTs=%d VULanes=%d)",
			cc.NumTUs, cc.NumRTs, cc.VULanes)
	}
	if hasTU && (cc.TURows <= 0 || cc.TUCols <= 0) {
		return guard.Invalid("chip: TU dimensions required when NumTUs > 0")
	}
	if hasTU && (cc.TURows > maxTUDim || cc.TUCols > maxTUDim) {
		return guard.Invalid("chip: TU dimensions %dx%d exceed the supported maximum %d",
			cc.TURows, cc.TUCols, maxTUDim)
	}
	if hasRT && cc.RTInputs <= 0 {
		return guard.Invalid("chip: RTInputs required when NumRTs > 0")
	}
	if cc.TULocalSpadBytes < 0 || cc.TULocalRegBytes < 0 {
		return guard.Invalid("chip: per-cell storage must be non-negative")
	}
	for i, seg := range cc.Mem {
		if err := guard.CheckFinites(
			"ReadBytesPerCycle", seg.ReadBytesPerCycle,
			"WriteBytesPerCycle", seg.WriteBytesPerCycle,
		); err != nil {
			return guard.Invalid("chip: mem segment %d (%s): %v", i, seg.Name, err)
		}
		if seg.CapacityBytes <= 0 {
			return guard.Invalid("chip: mem segment %d (%s): capacity must be positive, got %d",
				i, seg.Name, seg.CapacityBytes)
		}
		if seg.BlockBytes < 0 || seg.Banks < 0 || seg.ReadPorts < 0 || seg.WritePorts < 0 {
			return guard.Invalid("chip: mem segment %d (%s): organization fields must be non-negative",
				i, seg.Name)
		}
		if seg.ReadBytesPerCycle < 0 || seg.WriteBytesPerCycle < 0 {
			return guard.Invalid("chip: mem segment %d (%s): throughput targets must be non-negative",
				i, seg.Name)
		}
	}
	return nil
}

// Sweep-sanity bounds: far above anything a feasible chip reaches, but
// tight enough that a corrupted config fails validation instead of
// allocating unbounded model state.
const (
	maxTiles = 1 << 20
	maxTUDim = 1 << 14
)
