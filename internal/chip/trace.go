package chip

import (
	"encoding/json"
	"fmt"
)

// TraceSample is one interval of a runtime activity trace: the Fig. 1
// "runtime statistics" input expressed as a time series, so phase behaviour
// (compute-bound layers, memory-bound layers, idle gaps) shows up as a
// power profile rather than a single average.
type TraceSample struct {
	// DurationSec is the length of the interval.
	DurationSec float64 `json:"duration_sec"`
	// Activity carries the component rates during the interval.
	Activity Activity `json:"activity"`
}

// TracePoint is one evaluated interval of the power profile.
type TracePoint struct {
	StartSec    float64 `json:"start_sec"`
	DurationSec float64 `json:"duration_sec"`
	PowerW      float64 `json:"power_w"`
}

// TraceResult summarizes a runtime power trace.
type TraceResult struct {
	Points []TracePoint `json:"points"`
	// AvgPowerW is the time-weighted average; PeakPowerW the maximum
	// interval power; EnergyJ the total energy.
	AvgPowerW  float64 `json:"avg_power_w"`
	PeakPowerW float64 `json:"peak_power_w"`
	EnergyJ    float64 `json:"energy_j"`
	TotalSec   float64 `json:"total_sec"`
}

// RuntimeTrace evaluates the runtime power for every interval of the trace
// and returns the profile with its time-weighted summary.
func (c *Chip) RuntimeTrace(samples []TraceSample) (TraceResult, error) {
	if len(samples) == 0 {
		return TraceResult{}, fmt.Errorf("chip: empty activity trace")
	}
	var res TraceResult
	t := 0.0
	for i, s := range samples {
		if s.DurationSec <= 0 {
			return TraceResult{}, fmt.Errorf("chip: trace sample %d has non-positive duration", i)
		}
		w, _ := c.RuntimePower(s.Activity)
		res.Points = append(res.Points, TracePoint{
			StartSec: t, DurationSec: s.DurationSec, PowerW: w,
		})
		res.EnergyJ += w * s.DurationSec
		if w > res.PeakPowerW {
			res.PeakPowerW = w
		}
		t += s.DurationSec
	}
	res.TotalSec = t
	res.AvgPowerW = res.EnergyJ / t
	return res, nil
}

// ParseTrace decodes a JSON activity trace (an array of TraceSample).
func ParseTrace(raw []byte) ([]TraceSample, error) {
	var samples []TraceSample
	if err := json.Unmarshal(raw, &samples); err != nil {
		return nil, fmt.Errorf("chip: parsing activity trace: %w", err)
	}
	return samples, nil
}
