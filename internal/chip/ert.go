package chip

import "encoding/json"

// EnergyEntry is one action energy of one component — the row format of an
// Accelergy-style Energy Reference Table (ERT). The paper positions
// NeuroMeter as the analytical foundation under tools like Accelergy and
// Timeloop; exporting the per-action energies is how that composition
// works: a mapper multiplies these by its action counts.
type EnergyEntry struct {
	Component string  `json:"component"`
	Action    string  `json:"action"`
	EnergyPJ  float64 `json:"energy_pj"`
	// Unit documents what one action is (one MAC, one block read, ...).
	Unit string `json:"unit"`
}

// EnergyTable exports the chip's per-action energies.
func (c *Chip) EnergyTable() []EnergyEntry {
	var out []EnergyEntry
	add := func(component, action string, pj float64, unit string) {
		out = append(out, EnergyEntry{Component: component, Action: action, EnergyPJ: pj, Unit: unit})
	}
	core := c.Core
	if core.TU != nil {
		add("tu", "mac", core.TU.PerMACPJ(), "one multiply-accumulate incl. registers, links, amortized FIFOs")
	}
	if core.RT != nil {
		add("rt", "mac", core.RT.PerMACPJ(), "one MAC-equivalent through the reduction tree")
	}
	add("vu", "lane_op", core.VU.PerOpPJ(), "one vector-lane op incl. VReg traffic")
	if core.SU != nil {
		add("su", "instruction", core.SU.PerInstrPJ(), "one scalar instruction incl. icache and register file")
	}
	if core.Mem != nil {
		for _, seg := range core.Mem.Segments {
			add("mem."+seg.Spec.Name, "read", seg.Data.ReadEnergyPJ(),
				"one block read ("+itoa(seg.Spec.BlockBytes)+" B)")
			add("mem."+seg.Spec.Name, "write", seg.Data.WriteEnergyPJ(),
				"one block write ("+itoa(seg.Spec.BlockBytes)+" B)")
		}
	}
	add("cdb", "byte", core.CDB.EnergyPerBytePJ(), "one byte across the central data bus")
	add("noc", "flit_hop", c.NoC.EnergyPerFlitHopPJ(), "one flit through one router + link")
	add("noc", "byte", c.NoC.EnergyPerBytePJ(), "one byte across the average route")
	for _, p := range c.Periph {
		r := p.Result()
		if r.DynPJ > 0 {
			add(p.Cfg.Kind.String(), "byte", r.DynPJ, "one byte through the interface")
		}
	}
	return out
}

// MarshalEnergyTable renders the ERT as indented JSON.
func (c *Chip) MarshalEnergyTable() ([]byte, error) {
	return json.MarshalIndent(c.EnergyTable(), "", "  ")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
