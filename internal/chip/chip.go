package chip

import (
	"fmt"
	"math"
	"sort"

	"neurometer/internal/guard"
	"neurometer/internal/noc"
	"neurometer/internal/obs"
	"neurometer/internal/pat"
	"neurometer/internal/periph"
	"neurometer/internal/tech"
)

// Observability: PAT evaluations are counted in the obs default registry —
// chip.builds counts attempts, chip.build_failures the configurations
// rejected for validation, timing, or budget reasons.
var (
	mBuilds        = obs.NewCounter("chip.builds")
	mBuildFailures = obs.NewCounter("chip.build_failures")
)

// TDP assumptions: activity factors at thermal design conditions, and the
// guardband that chip vendors rate TDP above the modeled worst realistic
// power (voltage/temperature margin, power viruses).
const (
	tdpActTU     = 1.0
	tdpActVU     = 0.5
	tdpActMem    = 0.85
	tdpActNoC    = 0.5
	tdpActSU     = 0.7
	tdpActCDB    = 0.7
	tdpActIO     = 0.9
	tdpGuardband = 1.15
)

// Chip is a fully evaluated accelerator chip.
type Chip struct {
	Cfg  Config
	Node tech.Node

	Core   *Core
	NoC    *noc.Network
	Periph []*periph.Port

	clockHz float64
	cyclePS float64
	tiles   int

	// misc is the top-level control/config/clock-spine logic block.
	misc pat.Result
}

// Build constructs and evaluates a chip from the high-level configuration,
// performing the clock search, budget checks, and a finite-number guard
// over the headline report metrics (a chip whose area/TDP/peak evaluates
// to NaN or Inf is rejected with guard.ErrNonFinite rather than leaking
// into frontiers or CSV output). Panics from the model stack are converted
// to guard.ErrCandidatePanic errors at this boundary.
func Build(cfg Config) (c *Chip, err error) {
	mBuilds.Inc()
	defer func() {
		if err != nil {
			c = nil
			mBuildFailures.Inc()
		}
	}()
	defer guard.RecoverTo(&err)
	if err := guard.Inject(nil, "chip.build"); err != nil {
		return nil, err
	}
	c, err = build(cfg)
	if err != nil {
		return nil, err
	}
	if ferr := guard.CheckFinites(
		"peak_tops", c.PeakTOPS(), "area_mm2", c.AreaMM2(), "tdp_w", c.TDPW(),
		"tops_per_w", c.PeakTOPSPerWatt(), "tops_per_tco", c.PeakTOPSPerTCO(),
	); ferr != nil {
		return nil, fmt.Errorf("chip %q: %w", cfg.Name, ferr)
	}
	return c, nil
}

func build(cfg Config) (*Chip, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	node, err := tech.ByNode(cfg.TechNM)
	if err != nil {
		return nil, err
	}
	if cfg.Vdd > 0 {
		node = node.WithVdd(cfg.Vdd)
	}
	tiles := cfg.Tx * cfg.Ty

	// ---- Clock: fixed, or solved from the TOPS target -----------------------
	clockHz := cfg.ClockHz
	if clockHz <= 0 {
		// Peak ops/cycle depends only on the static configuration; solve
		// clock = TOPS / opsPerCycle, then verify timing below.
		probe, err := buildCore(cfg.Core, node, 1e6) // relaxed cycle probe
		if err != nil {
			return nil, err
		}
		opsPerCycle := probe.PeakOpsPerCycle() * float64(tiles)
		if opsPerCycle <= 0 {
			return nil, fmt.Errorf("chip: zero peak throughput")
		}
		clockHz = cfg.TargetTOPS * 1e12 / opsPerCycle
	}
	cyclePS := 1e12 / clockHz

	c := &Chip{Cfg: cfg, Node: node, clockHz: clockHz, cyclePS: cyclePS, tiles: tiles}

	// ---- Core ------------------------------------------------------------------
	core, err := buildCore(cfg.Core, node, cyclePS)
	if err != nil {
		return nil, err
	}
	c.Core = core
	if core.CritPathPS() > cyclePS {
		return nil, fmt.Errorf("chip: timing failure: core critical path %.0fps exceeds cycle %.0fps (%.0f MHz)",
			core.CritPathPS(), cyclePS, clockHz/1e6)
	}

	// ---- NoC --------------------------------------------------------------------
	tileMM := math.Sqrt(core.AreaUM2()*1.1) / 1000
	network, err := noc.Build(noc.Config{
		Node:     node,
		Topology: cfg.NoCTopology.resolve(tiles),
		Tx:       cfg.Tx, Ty: cfg.Ty,
		TileMM:        tileMM,
		BisectionGBps: cfg.NoCBisectionGBps,
		CyclePS:       cyclePS,
	})
	if err != nil {
		return nil, err
	}
	c.NoC = network

	// ---- Peripherals ---------------------------------------------------------------
	for _, op := range cfg.OffChip {
		count := op.Count
		if count <= 0 {
			count = 1
		}
		for i := 0; i < count; i++ {
			p, err := periph.Build(periph.Config{Node: node, Kind: op.Kind, GBps: op.GBps})
			if err != nil {
				return nil, err
			}
			c.Periph = append(c.Periph, p)
		}
	}

	// ---- Top-level misc logic --------------------------------------------------------
	a, d, l := node.LogicBlock(150e3, 0.2)
	c.misc = pat.Result{AreaUM2: a, DynPJ: d, LeakUW: l}

	// ---- Budgets -----------------------------------------------------------------------
	if cfg.AreaBudgetMM2 > 0 && c.AreaMM2() > cfg.AreaBudgetMM2 {
		return nil, guard.Infeasible("chip: area %.1fmm2 exceeds budget %.1fmm2", c.AreaMM2(), cfg.AreaBudgetMM2)
	}
	if cfg.PowerBudgetW > 0 && c.TDPW() > cfg.PowerBudgetW {
		return nil, guard.Infeasible("chip: TDP %.1fW exceeds budget %.1fW", c.TDPW(), cfg.PowerBudgetW)
	}
	return c, nil
}

// ClockHz returns the resolved clock.
func (c *Chip) ClockHz() float64 { return c.clockHz }

// CyclePS returns the clock period in picoseconds.
func (c *Chip) CyclePS() float64 { return c.cyclePS }

// Tiles returns the core count.
func (c *Chip) Tiles() int { return c.tiles }

// PeakTOPS returns the chip's peak compute throughput in tera-ops/sec.
func (c *Chip) PeakTOPS() float64 {
	return c.Core.PeakOpsPerCycle() * float64(c.tiles) * c.clockHz / 1e12
}

// modeledAreaUM2 is the area of the modeled components (pre white space).
func (c *Chip) modeledAreaUM2() float64 {
	a := c.Core.AreaUM2()*float64(c.tiles) + c.NoC.AreaUM2() + c.misc.AreaUM2
	for _, p := range c.Periph {
		a += p.AreaUM2()
	}
	return a
}

// AreaMM2 returns the total die area including the configured white space.
func (c *Chip) AreaMM2() float64 {
	modeled := c.modeledAreaUM2() / 1e6
	ws := c.Cfg.WhiteSpaceFrac
	if ws <= 0 || ws >= 1 {
		return modeled
	}
	return modeled / (1 - ws)
}

// tdpParts returns the named TDP contributions in watts (pre guardband).
func (c *Chip) tdpParts() map[string]float64 {
	parts := map[string]float64{}
	hz := c.clockHz
	tiles := float64(c.tiles)
	core := c.Core

	if core.TU != nil {
		macs := float64(core.TU.MACs()) * float64(core.Cfg.NumTUs) * tiles
		parts["tu"] = core.TU.PerMACPJ()*1e-12*macs*hz*tdpActTU +
			core.TU.LeakUW()*float64(core.Cfg.NumTUs)*tiles*1e-6
	}
	if core.RT != nil {
		macs := float64(core.RT.MACs()) * float64(core.Cfg.NumRTs) * tiles
		parts["rt"] = core.RT.PerMACPJ()*1e-12*macs*hz*tdpActTU +
			core.RT.LeakUW()*float64(core.Cfg.NumRTs)*tiles*1e-6
	}
	lanes := float64(core.Cfg.VULanes)
	parts["vu"] = core.VU.PerOpPJ()*1e-12*lanes*hz*tdpActVU*tiles +
		core.VU.LeakUW()*tiles*1e-6
	if core.SU != nil {
		parts["su"] = core.SU.PerInstrPJ()*1e-12*hz*tdpActSU*tiles +
			core.SU.LeakUW()*tiles*1e-6
	}
	if core.Mem != nil {
		perCycle := 0.0
		for _, seg := range core.Mem.Segments {
			blk := float64(seg.Spec.BlockBytes)
			perCycle += seg.Spec.ReadBytesPerCycle / blk * seg.Data.ReadEnergyPJ()
			perCycle += seg.Spec.WriteBytesPerCycle / blk * seg.Data.WriteEnergyPJ()
		}
		parts["mem"] = perCycle*1e-12*hz*tdpActMem*tiles + core.Mem.LeakUW()*tiles*1e-6
	}
	parts["ctrl"] = (core.ifu.DynPJ+core.lsu.DynPJ)*1e-12*hz*tiles +
		(core.ifu.LeakUW+core.lsu.LeakUW)*tiles*1e-6
	// CDB: the compute units' streaming traffic (operands in, results out).
	cdbBytesPerCycle := core.cdbBPC
	if cdbBytesPerCycle == 0 {
		cdbBytesPerCycle = core.memReadBPC + core.memWriteBPC
	}
	parts["cdb"] = c.Core.CDB.EnergyPerBytePJ()*cdbBytesPerCycle*1e-12*hz*tdpActCDB*tiles +
		core.CDB.LeakUW()*tiles*1e-6
	// NoC at a fraction of peak injection bandwidth.
	flitsPerCycle := c.NoC.PeakBytesPerCycle() / (float64(c.NoC.FlitBits()) / 8)
	parts["noc"] = c.NoC.EnergyPerFlitHopPJ()*c.NoC.AvgHops()*flitsPerCycle*1e-12*hz*tdpActNoC +
		c.NoC.LeakUW()*1e-6
	for _, p := range c.Periph {
		parts[p.Cfg.Kind.String()] += p.PowerW(tdpActIO)
	}
	parts["misc"] = c.misc.DynPJ*1e-12*hz + c.misc.LeakUW*1e-6
	return parts
}

// TDPW returns the chip thermal design power in watts. Contributions are
// summed in sorted component order so the result is bit-for-bit
// deterministic (map iteration order would otherwise reorder float
// additions).
func (c *Chip) TDPW() float64 {
	parts := c.tdpParts()
	keys := make([]string, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += parts[k]
	}
	return total * tdpGuardband
}

// LeakageW returns the total static leakage.
func (c *Chip) LeakageW() float64 {
	l := c.Core.LeakUW()*float64(c.tiles) + c.NoC.LeakUW() + c.misc.LeakUW
	for _, p := range c.Periph {
		l += p.IdleW() * 1e6
	}
	return l * 1e-6
}

// PeakTOPSPerWatt returns peak TOPS per TDP watt.
func (c *Chip) PeakTOPSPerWatt() float64 { return c.PeakTOPS() / c.TDPW() }

// PeakTOPSPerTCO approximates peak cost efficiency as TOPS/mm^4/W: die cost
// grows roughly with area squared (§III-A.3).
func (c *Chip) PeakTOPSPerTCO() float64 {
	a := c.AreaMM2()
	return c.PeakTOPS() / (a * a * c.TDPW())
}

func (c *Chip) String() string {
	return fmt.Sprintf("chip[%s %dnm %dx%d cores @%.0fMHz peak=%.1fTOPS area=%.1fmm2 tdp=%.1fW]",
		c.Cfg.Name, c.Cfg.TechNM, c.Cfg.Tx, c.Cfg.Ty, c.clockHz/1e6,
		c.PeakTOPS(), c.AreaMM2(), c.TDPW())
}
