package chip

import (
	"fmt"
	"sort"
	"strings"
)

// AreaBreakdown returns the chip-level area tree. The root total equals
// AreaMM2(); a "whitespace" leaf holds the unmodeled share when configured.
func (c *Chip) AreaBreakdown() *patBreakdown {
	root := newBD(c.Cfg.Name, 0, 0)
	tiles := float64(c.tiles)
	core := c.Core
	parts := c.tdpParts()

	cores := newBD("cores", 0, 0)
	if core.TU != nil {
		cores.AddChild(newBD("tu",
			core.TU.AreaUM2()/1e6*float64(core.Cfg.NumTUs)*tiles, parts["tu"]*tdpGuardband))
	}
	if core.RT != nil {
		cores.AddChild(newBD("rt",
			core.RT.AreaUM2()/1e6*float64(core.Cfg.NumRTs)*tiles, parts["rt"]*tdpGuardband))
	}
	cores.AddChild(newBD("vu", core.VU.AreaUM2()/1e6*tiles, parts["vu"]*tdpGuardband))
	if core.SU != nil {
		cores.AddChild(newBD("su", core.SU.AreaUM2()/1e6*tiles, parts["su"]*tdpGuardband))
	}
	if core.Mem != nil {
		cores.AddChild(newBD("mem", core.Mem.AreaUM2()/1e6*tiles, parts["mem"]*tdpGuardband))
	}
	cores.AddChild(newBD("ctrl",
		(core.ifu.AreaUM2+core.lsu.AreaUM2)/1e6*tiles, parts["ctrl"]*tdpGuardband))
	cores.AddChild(newBD("cdb", core.CDB.AreaUM2()/1e6*tiles, parts["cdb"]*tdpGuardband))
	root.AddChild(cores)

	root.AddChild(newBD("noc", c.NoC.AreaUM2()/1e6, parts["noc"]*tdpGuardband))
	perKind := map[string]*patBreakdown{}
	for _, p := range c.Periph {
		k := p.Cfg.Kind.String()
		if perKind[k] == nil {
			perKind[k] = newBD(k, 0, 0)
		}
		perKind[k].AreaMM2 += p.AreaUM2() / 1e6
	}
	keys := make([]string, 0, len(perKind))
	for k := range perKind {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		perKind[k].PowerW = parts[k] * tdpGuardband
		root.AddChild(perKind[k])
	}
	root.AddChild(newBD("misc", c.misc.AreaUM2/1e6, parts["misc"]*tdpGuardband))

	if ws := c.Cfg.WhiteSpaceFrac; ws > 0 && ws < 1 {
		total := root.AreaMM2 / (1 - ws)
		root.AddChild(newBD("whitespace", total-root.AreaMM2, 0))
	}
	return root
}

// TimingEntry is one row of the timing report: the hardware critical paths
// per component (§II: NeuroMeter "outputs the timing information ... to
// help the user find out the hardware critical path").
type TimingEntry struct {
	Component string
	DelayPS   float64
	// SlackPS is cycle - delay (negative means timing failure).
	SlackPS float64
}

// TimingReport returns the per-component critical paths, sorted by
// descending delay (the first entry is the chip critical path).
func (c *Chip) TimingReport() []TimingEntry {
	cyc := c.cyclePS
	var out []TimingEntry
	add := func(name string, d float64) {
		out = append(out, TimingEntry{Component: name, DelayPS: d, SlackPS: cyc - d})
	}
	core := c.Core
	if core.TU != nil {
		add("tu", core.TU.CritPathPS())
	}
	if core.RT != nil {
		add("rt", core.RT.CritPathPS())
	}
	add("vu", core.VU.CritPathPS())
	if core.SU != nil {
		add("su", core.SU.CritPathPS())
	}
	if core.Mem != nil {
		// Banked memories operate on a two-cycle pipeline; report the
		// per-cycle stage time.
		var worst float64
		for _, seg := range core.Mem.Segments {
			if d := seg.Data.CycleDelayPS() / 2; d > worst {
				worst = d
			}
		}
		add("mem", worst)
	}
	add("cdb", core.CDB.CritPathPS())
	add("ifu", core.ifu.DelayPS)
	add("lsu", core.lsu.DelayPS)
	add("noc", c.NoC.Result().DelayPS)
	sort.Slice(out, func(i, j int) bool { return out[i].DelayPS > out[j].DelayPS })
	return out
}

// CriticalPath returns the slowest component and its delay.
func (c *Chip) CriticalPath() (string, float64) {
	r := c.TimingReport()
	return r[0].Component, r[0].DelayPS
}

// Report renders a human-readable summary (the cmd tools' output).
func (c *Chip) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", c.String())
	fmt.Fprintf(&sb, "peak: %.2f TOPS, %.3f TOPS/W, clock %.0f MHz (cycle %.0f ps)\n",
		c.PeakTOPS(), c.PeakTOPSPerWatt(), c.clockHz/1e6, c.cyclePS)
	fmt.Fprintf(&sb, "\n== area / TDP breakdown ==\n%s", c.AreaBreakdown())
	fmt.Fprintf(&sb, "\n== timing (cycle %.0f ps) ==\n", c.cyclePS)
	for _, e := range c.TimingReport() {
		fmt.Fprintf(&sb, "  %-8s %8.0f ps  slack %8.0f ps\n", e.Component, e.DelayPS, e.SlackPS)
	}
	return sb.String()
}
