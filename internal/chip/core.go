package chip

import (
	"fmt"
	"math"

	"neurometer/internal/cdb"
	"neurometer/internal/onchipmem"
	"neurometer/internal/pat"
	"neurometer/internal/periph"
	"neurometer/internal/reducetree"
	"neurometer/internal/scalarunit"
	"neurometer/internal/tech"
	"neurometer/internal/tensorunit"
	"neurometer/internal/vectorunit"
)

// Core is one evaluated core: IFU + LSU + EXU(TUs/RTs, VU+VReg, CDB) + SU
// + the core's slice of the distributed memory.
type Core struct {
	Cfg  CoreConfig
	Node tech.Node

	TU  *tensorunit.Unit // nil when NumTUs == 0
	RT  *reducetree.Unit // nil when NumRTs == 0
	VU  *vectorunit.Unit
	SU  *scalarunit.Unit // nil when !HasSU
	Mem *onchipmem.Mem   // nil when no segments
	CDB *cdb.Bus

	ifu pat.Result
	lsu pat.Result

	// memReadBPC / memWriteBPC are the provisioned memory bytes/cycle;
	// cdbBPC is the compute-side traffic that actually crosses the bus.
	memReadBPC, memWriteBPC float64
	cdbBPC                  float64

	areaUM2 float64
	leakUW  float64
	critPS  float64
}

// ifuGates/lsuGates: the lightweight front end of an ML accelerator core
// (§II-A: "an IFU in ML accelerators is usually lightweight").
const (
	ifuGates = 20e3
	lsuGates = 30e3
)

func buildCore(cfg CoreConfig, n tech.Node, cyclePS float64) (*Core, error) {
	c := &Core{Cfg: cfg, Node: n}

	// ---- Tensor units -------------------------------------------------------
	mulType := cfg.TUDataType
	accType := mulType.AccumType()
	var tuIOBits int
	if cfg.NumTUs > 0 {
		tu, err := tensorunit.Build(tensorunit.Config{
			Node: n, Rows: cfg.TURows, Cols: cfg.TUCols,
			MulType:      mulType,
			Interconnect: cfg.TUInterconnect, Dataflow: cfg.TUDataflow,
			LocalSpadBytes: cfg.TULocalSpadBytes, LocalRegBytes: cfg.TULocalRegBytes,
			CyclePS: cyclePS,
		})
		if err != nil {
			return nil, err
		}
		c.TU = tu
		accType = tu.Cfg.AccType
		// The CDB carries the TU's streaming operand side (activations /
		// weights); the psum drain goes to adjacent accumulator banks.
		tuIOBits = cfg.TUCols * mulType.Bits()
	}

	// ---- Reduction trees ----------------------------------------------------
	if cfg.NumRTs > 0 {
		rt, err := reducetree.Build(reducetree.Config{
			Node: n, Inputs: cfg.RTInputs, MulType: mulType, CyclePS: cyclePS,
		})
		if err != nil {
			return nil, err
		}
		c.RT = rt
		accType = rt.Cfg.AccType
		if bits := cfg.RTInputs * mulType.Bits(); bits > tuIOBits {
			tuIOBits = bits
		}
	}

	// ---- Vector unit + VReg (auto-scaled, §III-A) ---------------------------
	lanes := cfg.VULanes
	if lanes <= 0 {
		switch {
		case cfg.NumTUs > 0:
			lanes = cfg.TUCols // "lane number the same as the TU array length"
		case cfg.NumRTs > 0:
			lanes = maxI(cfg.RTInputs/8, 8)
		default:
			return nil, fmt.Errorf("chip: VULanes required for a VU-only core")
		}
	}
	// "NeuroMeter reserves two read ports and one write port in the VReg for
	// each functional unit" — N TUs (or RTs) plus the VU itself.
	funcUnits := cfg.NumTUs + cfg.NumRTs + 1
	rp, wp := 2*funcUnits, funcUnits
	if cfg.SharedVRegPorts {
		rp, wp = 4, 2 // one shared group for the TUs plus the VU's own
	}
	vu, err := vectorunit.Build(vectorunit.Config{
		Node: n, Lanes: lanes,
		ElemType:      accType,
		HasMAC:        cfg.VUHasMAC,
		VRegReadPorts: rp, VRegWritePorts: wp,
		CyclePS: cyclePS,
	})
	if err != nil {
		return nil, err
	}
	c.VU = vu
	c.Cfg.VULanes = lanes

	// ---- Scalar unit ---------------------------------------------------------
	if cfg.HasSU {
		su, err := scalarunit.Build(scalarunit.Config{Node: n, CyclePS: cyclePS})
		if err != nil {
			return nil, err
		}
		c.SU = su
	}

	// ---- Front end ------------------------------------------------------------
	mkBlock := func(gates float64) pat.Result {
		a, d, l := n.LogicBlock(gates, 0.15)
		return pat.Result{AreaUM2: a, DynPJ: d, LeakUW: l, DelayPS: 12 * n.FO4PS}
	}
	c.ifu = mkBlock(ifuGates)
	lsu := mkBlock(lsuGates)
	if cfg.HasSU {
		// Cores with their own control plane (the many-core datacenter
		// template) also carry a per-core DMA engine that feeds the
		// distributed memory slice from the off-chip/NoC side.
		dma, err := periph.Build(periph.Config{Node: n, Kind: periph.DMAEngine, GBps: 16})
		if err != nil {
			return nil, err
		}
		lsu.AreaUM2 += dma.AreaUM2()
		lsu.LeakUW += dma.IdleW() * 1e6
	}
	c.lsu = lsu

	// ---- On-chip memory slice ---------------------------------------------------
	if len(cfg.Mem) > 0 {
		mulBytes := float64(mulType.Bits()) / 8
		demandRead := float64(cfg.NumTUs)*float64(cfg.TUCols)*mulBytes*1.25 +
			float64(cfg.NumRTs)*float64(cfg.RTInputs)*mulBytes*1.25 +
			float64(lanes)*float64(accType.Bits())/8*0.25
		demandWrite := demandRead * 0.4
		segs := make([]onchipmem.Segment, len(cfg.Mem))
		for i, ms := range cfg.Mem {
			blk := ms.BlockBytes
			if blk <= 0 {
				blk = clampI(cfg.TUCols*int(mulBytes), 16, 512)
				if cfg.NumTUs == 0 {
					blk = 64
				}
			}
			rd, wr := ms.ReadBytesPerCycle, ms.WriteBytesPerCycle
			if rd <= 0 {
				rd = demandRead / float64(len(cfg.Mem))
			}
			if wr <= 0 {
				wr = demandWrite / float64(len(cfg.Mem))
			}
			segs[i] = onchipmem.Segment{
				Name: ms.Name, CapacityBytes: ms.CapacityBytes, BlockBytes: blk,
				Banks: ms.Banks, ReadPorts: ms.ReadPorts, WritePorts: ms.WritePorts,
				ReadBytesPerCycle: rd, WriteBytesPerCycle: wr,
			}
			c.memReadBPC += rd
			c.memWriteBPC += wr
		}
		c.cdbBPC = demandRead + demandWrite
		cell := cfg.MemCell
		mem, err := onchipmem.Build(onchipmem.Config{
			Node: n, Cell: cell, Style: onchipmem.Scratchpad,
			Segments: segs, CyclePS: cyclePS,
		})
		if err != nil {
			return nil, err
		}
		c.Mem = mem
	}

	// ---- Central data bus -------------------------------------------------------
	preArea := c.computeAreaUM2()
	var eps []cdb.Endpoint
	if c.TU != nil {
		eps = append(eps, cdb.Endpoint{
			Name: "tu", AreaUM2: c.TU.AreaUM2() * float64(cfg.NumTUs), Bits: tuIOBits * cfg.NumTUs,
		})
	}
	if c.RT != nil {
		eps = append(eps, cdb.Endpoint{
			Name: "rt", AreaUM2: c.RT.AreaUM2() * float64(cfg.NumRTs),
			Bits: cfg.RTInputs * mulType.Bits(),
		})
	}
	eps = append(eps, cdb.Endpoint{Name: "vu", AreaUM2: c.VU.AreaUM2(), Bits: lanes * accType.Bits()})
	if c.Mem != nil {
		blkBits := c.Mem.Segments[0].Spec.BlockBytes * 8
		eps = append(eps, cdb.Endpoint{Name: "mem", AreaUM2: c.Mem.AreaUM2(), Bits: blkBits})
	}
	bus, err := cdb.Build(cdb.Config{
		Node: n, Endpoints: eps, CoreAreaUM2: preArea, CyclePS: cyclePS,
	})
	if err != nil {
		return nil, err
	}
	c.CDB = bus

	// ---- Totals ------------------------------------------------------------------
	c.areaUM2 = c.computeAreaUM2() + bus.AreaUM2()
	c.leakUW = c.computeLeakUW() + bus.LeakUW()
	c.critPS = c.computeCritPS()
	return c, nil
}

func (c *Core) computeAreaUM2() float64 {
	a := c.ifu.AreaUM2 + c.lsu.AreaUM2
	if c.TU != nil {
		a += c.TU.AreaUM2() * float64(c.Cfg.NumTUs)
	}
	if c.RT != nil {
		a += c.RT.AreaUM2() * float64(c.Cfg.NumRTs)
	}
	a += c.VU.AreaUM2()
	if c.SU != nil {
		a += c.SU.AreaUM2()
	}
	if c.Mem != nil {
		a += c.Mem.AreaUM2()
	}
	return a
}

func (c *Core) computeLeakUW() float64 {
	l := c.ifu.LeakUW + c.lsu.LeakUW
	if c.TU != nil {
		l += c.TU.LeakUW() * float64(c.Cfg.NumTUs)
	}
	if c.RT != nil {
		l += c.RT.LeakUW() * float64(c.Cfg.NumRTs)
	}
	l += c.VU.LeakUW()
	if c.SU != nil {
		l += c.SU.LeakUW()
	}
	if c.Mem != nil {
		l += c.Mem.LeakUW()
	}
	return l
}

func (c *Core) computeCritPS() float64 {
	crit := math.Max(c.ifu.DelayPS, c.lsu.DelayPS)
	if c.TU != nil {
		crit = math.Max(crit, c.TU.CritPathPS())
	}
	if c.RT != nil {
		crit = math.Max(crit, c.RT.CritPathPS())
	}
	crit = math.Max(crit, c.VU.CritPathPS())
	if c.SU != nil {
		crit = math.Max(crit, c.SU.CritPathPS())
	}
	if c.CDB != nil {
		crit = math.Max(crit, c.CDB.CritPathPS())
	}
	// Memory arrays are pipelined over up to two cycles (memarray enforces
	// cycle <= 2.05x), so they do not set the core clock.
	return crit
}

// AreaUM2 returns the core's total area.
func (c *Core) AreaUM2() float64 { return c.areaUM2 }

// LeakUW returns the core's total leakage.
func (c *Core) LeakUW() float64 { return c.leakUW }

// CritPathPS returns the core's slowest pipeline stage.
func (c *Core) CritPathPS() float64 { return c.critPS }

// PeakOpsPerCycle returns the core's peak compute throughput: TU and RT ops
// (2 per MAC); VU ops count only for VU-only accelerators (EIE-style).
func (c *Core) PeakOpsPerCycle() float64 {
	var ops float64
	if c.TU != nil {
		ops += c.TU.PeakOpsPerCycle() * float64(c.Cfg.NumTUs)
	}
	if c.RT != nil {
		ops += c.RT.PeakOpsPerCycle() * float64(c.Cfg.NumRTs)
	}
	if ops == 0 {
		ops = c.VU.PeakOpsPerCycle()
	}
	return ops
}

// MemReadBPC / MemWriteBPC expose the provisioned memory throughput.
func (c *Core) MemReadBPC() float64  { return c.memReadBPC }
func (c *Core) MemWriteBPC() float64 { return c.memWriteBPC }

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
