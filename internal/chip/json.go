package chip

import (
	"encoding/json"

	"neurometer/internal/pat"
)

// JSONReport is the machine-readable form of a chip evaluation — the
// "flexible and extensible interface" side of NeuroMeter: external tools
// (performance simulators, cost models, plotting scripts) consume this
// instead of parsing the human-readable report.
type JSONReport struct {
	Name     string  `json:"name"`
	TechNM   int     `json:"tech_nm"`
	VddV     float64 `json:"vdd_v"`
	ClockMHz float64 `json:"clock_mhz"`
	Tiles    int     `json:"tiles"`

	PeakTOPS       float64 `json:"peak_tops"`
	AreaMM2        float64 `json:"area_mm2"`
	TDPW           float64 `json:"tdp_w"`
	LeakageW       float64 `json:"leakage_w"`
	PeakTOPSPerW   float64 `json:"peak_tops_per_watt"`
	PeakTOPSPerTCO float64 `json:"peak_tops_per_tco"`

	Area   []JSONBreakdownNode `json:"area_breakdown"`
	Timing []JSONTimingEntry   `json:"timing"`
}

// JSONBreakdownNode flattens one breakdown node.
type JSONBreakdownNode struct {
	Name     string              `json:"name"`
	AreaMM2  float64             `json:"area_mm2"`
	PowerW   float64             `json:"power_w"`
	Children []JSONBreakdownNode `json:"children,omitempty"`
}

// JSONTimingEntry is one critical-path row.
type JSONTimingEntry struct {
	Component string  `json:"component"`
	DelayPS   float64 `json:"delay_ps"`
	SlackPS   float64 `json:"slack_ps"`
}

func toJSONNode(b *pat.Breakdown) JSONBreakdownNode {
	n := JSONBreakdownNode{Name: b.Name, AreaMM2: b.AreaMM2, PowerW: b.PowerW}
	for _, c := range b.Children {
		n.Children = append(n.Children, toJSONNode(c))
	}
	return n
}

// JSONReport assembles the machine-readable report.
func (c *Chip) JSONReport() JSONReport {
	rep := JSONReport{
		Name:           c.Cfg.Name,
		TechNM:         c.Cfg.TechNM,
		VddV:           c.Node.Vdd,
		ClockMHz:       c.clockHz / 1e6,
		Tiles:          c.tiles,
		PeakTOPS:       c.PeakTOPS(),
		AreaMM2:        c.AreaMM2(),
		TDPW:           c.TDPW(),
		LeakageW:       c.LeakageW(),
		PeakTOPSPerW:   c.PeakTOPSPerWatt(),
		PeakTOPSPerTCO: c.PeakTOPSPerTCO(),
	}
	root := toJSONNode(c.AreaBreakdown())
	rep.Area = root.Children
	for _, e := range c.TimingReport() {
		rep.Timing = append(rep.Timing, JSONTimingEntry{
			Component: e.Component, DelayPS: e.DelayPS, SlackPS: e.SlackPS,
		})
	}
	return rep
}

// MarshalReport renders the JSON report with indentation.
func (c *Chip) MarshalReport() ([]byte, error) {
	return json.MarshalIndent(c.JSONReport(), "", "  ")
}
