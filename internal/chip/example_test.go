package chip_test

import (
	"fmt"

	"neurometer/internal/chip"
	"neurometer/internal/maclib"
	"neurometer/internal/periph"
)

// exampleConfig is a small Table I datacenter point: 2x2 cores, two 32x32
// tensor units per core, 32MB distributed scratchpad, HBM off-chip.
func exampleConfig() chip.Config {
	return chip.Config{
		Name: "example", TechNM: 28, ClockHz: 700e6,
		Tx: 2, Ty: 2,
		Core: chip.CoreConfig{
			NumTUs: 2, TURows: 32, TUCols: 32, TUDataType: maclib.Int8,
			HasSU: true,
			Mem:   []chip.MemSegment{{Name: "spad", CapacityBytes: 8 << 20}},
		},
		NoCBisectionGBps: 256,
		OffChip:          []chip.OffChipPort{{Kind: periph.HBMPort, GBps: 700}},
	}
}

// BuildCached memoizes Build on the configuration fingerprint: repeated
// requests for the same config share one immutable *Chip, which is safe to
// use from any number of goroutines.
func ExampleBuildCached() {
	cfg := exampleConfig()
	a, err := chip.BuildCached(cfg)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	b, _ := chip.BuildCached(cfg)
	fmt.Println("same instance:", a == b)
	fmt.Println("same fingerprint:", cfg.Fingerprint() == exampleConfig().Fingerprint())
	// Output:
	// same instance: true
	// same fingerprint: true
}
