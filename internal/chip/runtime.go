package chip

import (
	"fmt"

	"neurometer/internal/pat"
)

// patBreakdown aliases pat.Breakdown so report.go stays terse.
type patBreakdown = pat.Breakdown

func newBD(name string, area, power float64) *patBreakdown {
	return pat.NewBreakdown(name, area, power)
}

// Activity carries the runtime statistics a performance simulator feeds
// back into NeuroMeter (Fig. 1 "Runtime Statistics" input): utilizations
// and traffic rates of the microarchitecture components. All rates are
// chip-wide (summed over cores).
type Activity struct {
	// TUMACsPerSec / RTMACsPerSec: MAC operations actually executed.
	TUMACsPerSec float64
	RTMACsPerSec float64
	// VUOpsPerSec: vector lane operations.
	VUOpsPerSec float64
	// SUInstrPerSec: scalar instructions.
	SUInstrPerSec float64
	// MemReadBytesPerSec / MemWriteBytesPerSec: on-chip memory traffic.
	MemReadBytesPerSec  float64
	MemWriteBytesPerSec float64
	// NoCBytesPerSec: bytes injected into the NoC (average-hop routing is
	// applied internally).
	NoCBytesPerSec float64
	// OffChipBytesPerSec: DRAM/HBM traffic.
	OffChipBytesPerSec float64
	// HostBytesPerSec: PCIe traffic.
	HostBytesPerSec float64
	// ICIBytesPerSec: inter-chip traffic.
	ICIBytesPerSec float64
	// CDBBytesPerSec: intra-core bus traffic; zero lets the model derive
	// it from the memory traffic.
	CDBBytesPerSec float64
	// ClockGateIdleFrac is the fraction of idle sequential power removed
	// by clock gating (0 = no gating; the TU/VU idle clock load burns).
	ClockGateIdleFrac float64
}

// RuntimePower returns the chip's runtime power (watts) under the given
// activity, with a per-component breakdown. Unlike TDP, no guardband is
// applied: this is the average power of the running workload.
func (c *Chip) RuntimePower(a Activity) (float64, *pat.Breakdown) {
	core := c.Core
	tiles := float64(c.tiles)
	bd := pat.NewBreakdown(c.Cfg.Name+"/runtime", 0, 0)

	add := func(name string, w float64) {
		if w < 0 {
			w = 0
		}
		bd.AddChild(pat.NewBreakdown(name, 0, w))
	}

	// Idle sequential power: units that are not computing still burn clock
	// unless gated. Modeled as a fraction of the unit's full-rate dynamic
	// power proportional to its idleness.
	idleBurn := func(fullW, usedW float64) float64 {
		idle := fullW*0.30 - usedW*0.30 // clock tree + latches ~30% of dynamic
		if idle < 0 {
			idle = 0
		}
		return idle * (1 - a.ClockGateIdleFrac)
	}

	if core.TU != nil {
		full := core.TU.PerMACPJ() * 1e-12 * float64(core.TU.MACs()) *
			float64(core.Cfg.NumTUs) * tiles * c.clockHz
		used := core.TU.PerMACPJ() * 1e-12 * a.TUMACsPerSec
		leak := core.TU.LeakUW() * float64(core.Cfg.NumTUs) * tiles * 1e-6
		add("tu", used+idleBurn(full, used)+leak)
	}
	if core.RT != nil {
		full := core.RT.PerMACPJ() * 1e-12 * float64(core.RT.MACs()) *
			float64(core.Cfg.NumRTs) * tiles * c.clockHz
		used := core.RT.PerMACPJ() * 1e-12 * a.RTMACsPerSec
		leak := core.RT.LeakUW() * float64(core.Cfg.NumRTs) * tiles * 1e-6
		add("rt", used+idleBurn(full, used)+leak)
	}
	{
		full := core.VU.PerOpPJ() * 1e-12 * float64(core.Cfg.VULanes) * tiles * c.clockHz
		used := core.VU.PerOpPJ() * 1e-12 * a.VUOpsPerSec
		add("vu", used+idleBurn(full, used)+core.VU.LeakUW()*tiles*1e-6)
	}
	if core.SU != nil {
		used := core.SU.PerInstrPJ() * 1e-12 * a.SUInstrPerSec
		add("su", used+core.SU.LeakUW()*tiles*1e-6)
	}
	if core.Mem != nil {
		blk := float64(core.Mem.Segments[0].Spec.BlockBytes)
		rdW := core.Mem.ReadEnergyPJ("") / blk * 1e-12 * a.MemReadBytesPerSec
		wrW := core.Mem.WriteEnergyPJ("") / blk * 1e-12 * a.MemWriteBytesPerSec
		add("mem", rdW+wrW+core.Mem.LeakUW()*tiles*1e-6)
	}
	{
		ctrlW := (core.ifu.DynPJ+core.lsu.DynPJ)*1e-12*c.clockHz*tiles*0.7 +
			(core.ifu.LeakUW+core.lsu.LeakUW)*tiles*1e-6
		add("ctrl", ctrlW)
	}
	{
		cdbBps := a.CDBBytesPerSec
		if cdbBps == 0 {
			cdbBps = a.MemReadBytesPerSec + a.MemWriteBytesPerSec
		}
		add("cdb", core.CDB.EnergyPerBytePJ()*1e-12*cdbBps+core.CDB.LeakUW()*tiles*1e-6)
	}
	add("noc", c.NoC.EnergyPerBytePJ()*1e-12*a.NoCBytesPerSec+c.NoC.LeakUW()*1e-6)

	// Peripherals by traffic class.
	ioW := map[string]float64{}
	for _, p := range c.Periph {
		var bps float64
		switch p.Cfg.Kind.String() {
		case "hbm", "ddr":
			bps = a.OffChipBytesPerSec
		case "pcie":
			bps = a.HostBytesPerSec
		case "ici":
			bps = a.ICIBytesPerSec
		}
		util := 0.0
		if p.Cfg.GBps > 0 {
			util = bps / (p.Cfg.GBps * 1e9)
		}
		ioW[p.Cfg.Kind.String()] += p.PowerW(util)
	}
	for _, k := range []string{"ddr", "hbm", "pcie", "ici", "dma"} {
		if w, ok := ioW[k]; ok {
			add(k, w)
		}
	}
	add("misc", c.misc.DynPJ*1e-12*c.clockHz*0.5+c.misc.LeakUW*1e-6)

	return bd.PowerW, bd
}

// AchievedTOPS converts an op rate into TOPS.
func AchievedTOPS(opsPerSec float64) float64 { return opsPerSec / 1e12 }

// EfficiencySummary bundles the runtime efficiency metrics the case studies
// report for one workload run.
type EfficiencySummary struct {
	AchievedTOPS float64
	Utilization  float64 // achieved / peak
	PowerW       float64
	TOPSPerWatt  float64
	TOPSPerTCO   float64 // achieved TOPS / (area^2 * W)
}

// Efficiency computes the runtime efficiency metrics for an achieved op
// rate under the given activity.
func (c *Chip) Efficiency(opsPerSec float64, a Activity) EfficiencySummary {
	w, _ := c.RuntimePower(a)
	tops := opsPerSec / 1e12
	area := c.AreaMM2()
	return EfficiencySummary{
		AchievedTOPS: tops,
		Utilization:  tops / c.PeakTOPS(),
		PowerW:       w,
		TOPSPerWatt:  tops / w,
		TOPSPerTCO:   tops / (area * area * w),
	}
}

func (e EfficiencySummary) String() string {
	return fmt.Sprintf("achieved=%.2fTOPS util=%.1f%% power=%.1fW %.3fTOPS/W",
		e.AchievedTOPS, e.Utilization*100, e.PowerW, e.TOPSPerWatt)
}
