package chip

import (
	"fmt"
	"sync"

	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

// Build memoization. Design-space sweeps evaluate the same chip
// configuration many times — the figure drivers rebuild the named reference
// points Enumerate already built, benchmarks re-enumerate per iteration,
// and the three Fig. 10 batch regimes share one candidate set — so
// BuildCached keys finished builds (and deterministic build failures) on a
// canonical configuration fingerprint. A Chip is immutable after Build, so
// sharing one instance across concurrent sweep workers is safe.
var (
	mCacheHits   = obs.NewCounter("chip.build_cache_hits")
	mCacheMisses = obs.NewCounter("chip.build_cache_misses")

	buildCache sync.Map // fingerprint string -> *buildCacheEntry
)

// buildCacheEntry holds one memoized Build outcome. The sync.Once gives
// single-flight semantics: concurrent requests for the same fingerprint
// build once and share the result.
type buildCacheEntry struct {
	once sync.Once
	chip *Chip
	err  error
}

// Fingerprint returns a canonical string identity for the configuration:
// two configs with equal fingerprints produce identical chips. It covers
// every field (including nested core, memory-segment and off-chip slices)
// via Go's deterministic struct formatting; the zero values that mean
// "auto" are part of the identity, matching Build's behavior of resolving
// them the same way every time.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("%+v", c)
}

// BuildCached is Build behind a process-wide memo keyed on
// Config.Fingerprint. Both successful chips and build errors are cached —
// build failures (validation, timing, budget) are deterministic, so
// re-evaluating them is pure waste. Hits and misses are counted in the
// chip.build_cache_hits / chip.build_cache_misses metrics.
//
// While any guard fault is armed the cache is bypassed entirely (no reads,
// no writes): injected panics, errors and NaNs must reach their victim on
// the exact rehearsed visit, and a cached result must never mask one.
func BuildCached(cfg Config) (*Chip, error) {
	if guard.Armed() {
		return Build(cfg)
	}
	e, loaded := buildCache.LoadOrStore(cfg.Fingerprint(), &buildCacheEntry{})
	entry := e.(*buildCacheEntry)
	if loaded {
		mCacheHits.Inc()
	} else {
		mCacheMisses.Inc()
	}
	entry.once.Do(func() {
		entry.chip, entry.err = Build(cfg)
	})
	return entry.chip, entry.err
}

// ResetBuildCache drops every memoized build. Tests that recalibrate model
// constants (or measure cold-build cost) call it; production sweeps never
// need to.
func ResetBuildCache() {
	buildCache.Range(func(k, _ any) bool {
		buildCache.Delete(k)
		return true
	})
}
