package periph

import (
	"testing"

	"neurometer/internal/tech/techtest"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{Node: techtest.MustByNode(28), Kind: Kind(99), GBps: 1}); err == nil {
		t.Errorf("unknown kind must fail")
	}
	if _, err := Build(Config{Node: techtest.MustByNode(28), Kind: HBMPort, GBps: -1}); err == nil {
		t.Errorf("negative bandwidth must fail")
	}
}

func TestTPUv1InterfaceCalibration(t *testing.T) {
	n := techtest.MustByNode(28).WithVdd(0.86)
	// DDR port at TPU-v1's ~34GB/s: the paper models the DRAM port at
	// ~6% of a ~300mm2 die -> 15-22 mm2.
	ddr, err := Build(Config{Node: n, Kind: DDRPort, GBps: 34})
	if err != nil {
		t.Fatal(err)
	}
	if a := ddr.AreaUM2() / 1e6; a < 12 || a > 25 {
		t.Errorf("DDR port area out of band: %.1f mm2", a)
	}
	// PCIe Gen3 x16 at 14GB/s: ~3% -> 7-12 mm2.
	pcie, err := Build(Config{Node: n, Kind: PCIePort, GBps: 14})
	if err != nil {
		t.Fatal(err)
	}
	if a := pcie.AreaUM2() / 1e6; a < 6 || a > 13 {
		t.Errorf("PCIe area out of band: %.1f mm2", a)
	}
}

func TestHBMScale(t *testing.T) {
	n := techtest.MustByNode(16).WithVdd(0.75)
	hbm, err := Build(Config{Node: n, Kind: HBMPort, GBps: 700})
	if err != nil {
		t.Fatal(err)
	}
	if a := hbm.AreaUM2() / 1e6; a < 15 || a > 60 {
		t.Errorf("HBM port area out of band: %.1f mm2", a)
	}
	if hbm.PeakW() < 15 || hbm.PeakW() > 60 {
		t.Errorf("HBM interface power out of band: %.1f W", hbm.PeakW())
	}
}

func TestPowerUtilizationInterpolation(t *testing.T) {
	p, err := Build(Config{Node: techtest.MustByNode(28), Kind: ICILink, GBps: 62})
	if err != nil {
		t.Fatal(err)
	}
	idle, full := p.PowerW(0), p.PowerW(1)
	if idle != p.IdleW() || full != p.PeakW() {
		t.Errorf("bounds: %g/%g vs %g/%g", idle, full, p.IdleW(), p.PeakW())
	}
	half := p.PowerW(0.5)
	if half <= idle || half >= full {
		t.Errorf("half utilization must be between idle and peak")
	}
	if p.PowerW(-1) != idle || p.PowerW(2) != full {
		t.Errorf("utilization must clamp")
	}
}

func TestAnalogScalesSlowly(t *testing.T) {
	// PHYs shrink much more slowly than logic across nodes.
	a28, err := Build(Config{Node: techtest.MustByNode(28), Kind: HBMPort, GBps: 700})
	if err != nil {
		t.Fatal(err)
	}
	a16, err := Build(Config{Node: techtest.MustByNode(16), Kind: HBMPort, GBps: 700})
	if err != nil {
		t.Fatal(err)
	}
	logicShrink := techtest.MustByNode(16).GateAreaUM2() / techtest.MustByNode(28).GateAreaUM2()
	analogShrink := a16.AreaUM2() / a28.AreaUM2()
	if analogShrink <= logicShrink || analogShrink >= 1 {
		t.Errorf("analog shrink %.2f should be between logic shrink %.2f and 1", analogShrink, logicShrink)
	}
}

func TestDMAIsDigital(t *testing.T) {
	d28, err := Build(Config{Node: techtest.MustByNode(28), Kind: DMAEngine, GBps: 100})
	if err != nil {
		t.Fatal(err)
	}
	d16, err := Build(Config{Node: techtest.MustByNode(16), Kind: DMAEngine, GBps: 100})
	if err != nil {
		t.Fatal(err)
	}
	logicShrink := techtest.MustByNode(16).GateAreaUM2() / techtest.MustByNode(28).GateAreaUM2()
	got := d16.AreaUM2() / d28.AreaUM2()
	if got > logicShrink*1.05 {
		t.Errorf("DMA should scale like logic: got %.3f want ~%.3f", got, logicShrink)
	}
}

func TestResultAndString(t *testing.T) {
	for _, k := range []Kind{DDRPort, HBMPort, PCIePort, ICILink, DMAEngine, LPDDRPort} {
		p, err := Build(Config{Node: techtest.MustByNode(28), Kind: k, GBps: 10})
		if err != nil {
			t.Fatal(err)
		}
		if !p.Result().Valid() || p.Result().DynPJ <= 0 {
			t.Errorf("%v: invalid result", k)
		}
		if p.String() == "" || k.String() == "" {
			t.Errorf("%v: empty strings", k)
		}
	}
	// Zero-bandwidth port is legal (stub interface) with zero pJ/B.
	p, err := Build(Config{Node: techtest.MustByNode(28), Kind: PCIePort, GBps: 0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Result().DynPJ != 0 {
		t.Errorf("zero-bandwidth port pJ/B: %g", p.Result().DynPJ)
	}
}

func TestLPDDRSmallerThanDDR(t *testing.T) {
	n := techtest.MustByNode(28)
	lp, err := Build(Config{Node: n, Kind: LPDDRPort, GBps: 12.8})
	if err != nil {
		t.Fatal(err)
	}
	ddr, err := Build(Config{Node: n, Kind: DDRPort, GBps: 12.8})
	if err != nil {
		t.Fatal(err)
	}
	if lp.AreaUM2() >= ddr.AreaUM2() {
		t.Errorf("LPDDR must be smaller than server DDR: %g vs %g", lp.AreaUM2(), ddr.AreaUM2())
	}
	if lp.IdleW() >= ddr.IdleW() {
		t.Errorf("LPDDR must idle lower")
	}
}

func TestAnchorTabulated(t *testing.T) {
	// analogScale anchors on a package-level Reference lookup whose error
	// is discarded; this pins the invariant that makes that safe.
	if anchorRef.Nm != 28 || anchorRef.GateDensityPerMM2 <= 0 {
		t.Fatalf("28nm must be a tabulated tech entry, got %+v", anchorRef)
	}
}
