// Package periph models the peripheral blocks of an ML accelerator chip:
// off-chip memory ports (DDR, HBM), host interfaces (PCIe), inter-chip
// interconnect (ICI link + NIU, as in TPU-v2), and DMA engines.
//
// PHY-heavy blocks are dominated by analog/mixed-signal circuitry that does
// not scale with logic density, so the model uses empirical per-bandwidth
// constants (area slope in mm^2 per GB/s, energy in pJ/bit) with a mild
// node-dependent factor, calibrated against the TPU-v1/v2 interface shares.
package periph

import (
	"fmt"
	"math"

	"neurometer/internal/guard"
	"neurometer/internal/pat"
	"neurometer/internal/tech"
)

// Kind enumerates the peripheral families.
type Kind int

const (
	DDRPort Kind = iota
	HBMPort
	PCIePort
	ICILink // inter-chip interconnect link + network interface unit
	DMAEngine
	// LPDDRPort is a mobile-class low-power DRAM interface: far smaller
	// and lower-energy than the server DDR PHY, at lower peak bandwidth.
	LPDDRPort
)

func (k Kind) String() string {
	switch k {
	case DDRPort:
		return "ddr"
	case HBMPort:
		return "hbm"
	case PCIePort:
		return "pcie"
	case ICILink:
		return "ici"
	case DMAEngine:
		return "dma"
	case LPDDRPort:
		return "lpddr"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Config describes one peripheral instance.
type Config struct {
	Node tech.Node
	Kind Kind
	// GBps is the peak bandwidth (per direction for links).
	GBps float64
}

// params are the empirical constants at the 28nm anchor: fixed area,
// area slope per GB/s, energy per bit, idle power fraction.
type params struct {
	baseMM2   float64
	mm2PerGBs float64
	pjPerBit  float64
	idleFrac  float64 // static+bias power as a fraction of peak dynamic
}

var kindParams = map[Kind]params{
	// DDR3/4 PHY + controller: wide parallel interface, high pJ/bit.
	DDRPort: {baseMM2: 4.0, mm2PerGBs: 0.42, pjPerBit: 18, idleFrac: 0.25},
	// HBM PHY + controller: very wide, short-reach, lower pJ/bit.
	HBMPort: {baseMM2: 6.0, mm2PerGBs: 0.052, pjPerBit: 6.5, idleFrac: 0.20},
	// PCIe Gen3-class serdes.
	PCIePort: {baseMM2: 2.5, mm2PerGBs: 0.45, pjPerBit: 12, idleFrac: 0.30},
	// Inter-chip serdes link + NIU packet processing.
	ICILink: {baseMM2: 3.0, mm2PerGBs: 0.30, pjPerBit: 11, idleFrac: 0.30},
	// DMA engines are plain logic + buffering.
	DMAEngine: {baseMM2: 0.25, mm2PerGBs: 0.004, pjPerBit: 0.8, idleFrac: 0.10},
	// Mobile LPDDR4-class interface.
	LPDDRPort: {baseMM2: 1.0, mm2PerGBs: 0.10, pjPerBit: 9, idleFrac: 0.08},
}

// anchorRef holds the 28nm anchor's parameters; 28 is a static table
// entry, so the lookup cannot fail (asserted by TestAnchorTabulated).
var anchorRef, _ = tech.Reference(28)

// analogScale returns the area scale factor relative to the 28nm anchor:
// analog blocks shrink far more slowly than logic (~sqrt of the density
// gain).
func analogScale(n tech.Node) float64 {
	logic := anchorRef.GateDensityPerMM2 / n.GateDensityPerMM2
	return math.Sqrt(logic)
}

// Port is an evaluated peripheral.
type Port struct {
	Cfg     Config
	areaUM2 float64
	// peakW is the power when transferring at full bandwidth;
	// idleW the standing power.
	peakW float64
	idleW float64
}

// Build evaluates a peripheral instance.
func Build(cfg Config) (*Port, error) {
	p, ok := kindParams[cfg.Kind]
	if !ok {
		return nil, guard.Invalid("periph: unknown kind %v", cfg.Kind)
	}
	if cfg.GBps < 0 {
		return nil, guard.Invalid("periph: negative bandwidth %g", cfg.GBps)
	}
	if err := guard.CheckFinite("GBps", cfg.GBps); err != nil {
		return nil, guard.Invalid("periph: %v", err)
	}
	scale := analogScale(cfg.Node)
	if cfg.Kind == DMAEngine {
		// DMA is digital logic: scale with full density.
		scale = anchorRef.GateDensityPerMM2 / cfg.Node.GateDensityPerMM2
	}
	areaMM2 := (p.baseMM2 + p.mm2PerGBs*cfg.GBps) * scale
	peakW := p.pjPerBit * 1e-12 * cfg.GBps * 1e9 * 8
	// Energy scales weakly with voltage (analog swings are fixed); apply
	// half the voltage-squared scaling.
	vr := cfg.Node.Vdd / cfg.Node.VddNominal
	peakW *= (1 + vr*vr) / 2
	return &Port{
		Cfg:     cfg,
		areaUM2: areaMM2 * 1e6,
		peakW:   peakW,
		idleW:   peakW * p.idleFrac,
	}, nil
}

// AreaUM2 returns the port area.
func (p *Port) AreaUM2() float64 { return p.areaUM2 }

// PowerW returns the power at the given bandwidth utilization in [0,1]:
// idle power plus utilization-proportional transfer power.
func (p *Port) PowerW(utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	return p.idleW + (p.peakW-p.idleW)*utilization
}

// PeakW returns the full-bandwidth power; IdleW the standing power.
func (p *Port) PeakW() float64 { return p.peakW }
func (p *Port) IdleW() float64 { return p.idleW }

// Result summarizes the port; DynPJ is per byte transferred and LeakUW is
// the idle power.
func (p *Port) Result() pat.Result {
	var pjPerByte float64
	if p.Cfg.GBps > 0 {
		pjPerByte = (p.peakW - p.idleW) / (p.Cfg.GBps * 1e9) * 1e12
	}
	return pat.Result{
		AreaUM2: p.areaUM2,
		DynPJ:   pjPerByte,
		LeakUW:  p.idleW * 1e6,
		DelayPS: 0,
	}
}

func (p *Port) String() string {
	return fmt.Sprintf("%s[%.0fGB/s area=%.2fmm2 peak=%.2fW]",
		p.Cfg.Kind, p.Cfg.GBps, p.areaUM2/1e6, p.peakW)
}
