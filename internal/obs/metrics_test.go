package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// Concurrent increments must not lose updates (run under -race in CI).
func TestConcurrentCounterIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.concurrent")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestConcurrentHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.hist", []float64{1, 10, 100})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(w * 10)) // 0, 10, 20, 30
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot().Histograms["test.hist"]
	if s.Count != 4000 {
		t.Fatalf("count = %d, want 4000", s.Count)
	}
	if want := 1000.0*0 + 1000*10 + 1000*20 + 1000*30; s.Sum != want {
		t.Errorf("sum = %g, want %g", s.Sum, want)
	}
	if s.Min != 0 || s.Max != 30 {
		t.Errorf("min/max = %g/%g, want 0/30", s.Min, s.Max)
	}
	// Buckets: <=1: the 1000 zeros; <=10: the 1000 tens; <=100: 20s and 30s.
	if s.Buckets[0] != 1000 || s.Buckets[1] != 1000 || s.Buckets[2] != 2000 || s.Buckets[3] != 0 {
		t.Errorf("buckets = %v", s.Buckets)
	}
}

func TestGaugeAndRegistryLookupIdempotent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test.gauge")
	g.Set(3.5)
	if r.Gauge("test.gauge") != g {
		t.Error("second lookup returned a different gauge")
	}
	if v := g.Value(); v != 3.5 {
		t.Errorf("gauge = %g", v)
	}
	if r.Counter("c") != r.Counter("c") {
		t.Error("counter lookup not idempotent")
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	c.Inc()
	c.Add(5)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Error("nil instruments must read zero")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestSnapshotTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("perfsim.layers_simulated").Add(53)
	r.Gauge("dse.frontier_size").Set(14)
	r.Histogram("dse.candidate_eval_seconds", nil).Observe(0.002)

	txt := r.Snapshot().Text()
	for _, want := range []string{"perfsim.layers_simulated", "53", "dse.frontier_size", "n=1"} {
		if !strings.Contains(txt, want) {
			t.Errorf("text snapshot missing %q:\n%s", want, txt)
		}
	}

	raw, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var parsed Snapshot
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if parsed.Counters["perfsim.layers_simulated"] != 53 {
		t.Errorf("JSON counters: %v", parsed.Counters)
	}
	h := parsed.Histograms["dse.candidate_eval_seconds"]
	if h.Count != 1 || math.Abs(h.Mean()-0.002) > 1e-12 {
		t.Errorf("JSON histogram: %+v", h)
	}
}

// Regression: a duration histogram fed only negative (clock-skew) samples
// must clamp them to zero at record time — min, max, and sum all read 0 and
// the samples land in the first bucket, instead of a negative max leaking
// into snapshots.
func TestHistogramClampsNegativeObservations(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("skewed", []float64{1, 10})
	h.Observe(-0.25)
	h.Observe(-3e-9)
	s := r.Snapshot().Histograms["skewed"]
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.Min != 0 || s.Max != 0 || s.Sum != 0 {
		t.Errorf("min/max/sum = %g/%g/%g, want 0/0/0", s.Min, s.Max, s.Sum)
	}
	if s.Buckets[0] != 2 {
		t.Errorf("buckets = %v, want both samples in the first bucket", s.Buckets)
	}
	// Mixed with a real sample, the clamped zeros must not drag max down
	// or push min negative.
	h.Observe(5)
	s = r.Snapshot().Histograms["skewed"]
	if s.Min != 0 || s.Max != 5 {
		t.Errorf("after mixed samples min/max = %g/%g, want 0/5", s.Min, s.Max)
	}
}

func TestHistogramEmptySnapshotMinMaxZero(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty", nil)
	s := r.Snapshot().Histograms["empty"]
	if s.Min != 0 || s.Max != 0 || s.Count != 0 {
		t.Errorf("empty histogram snapshot: %+v", s)
	}
	if s.Mean() != 0 {
		t.Errorf("empty mean: %g", s.Mean())
	}
}
