// Package obs is NeuroMeter's zero-dependency observability layer:
// hierarchical wall-time spans with Chrome trace-event export, an atomic
// metrics registry (counters, gauges, histograms), a span-aware log/slog
// handler, and CLI profiling hooks.
//
// Everything is built to be no-op-cheap when disabled: with tracing off,
// Start performs one atomic load and returns a nil *Span whose methods are
// all nil-safe, adding zero allocations to hot paths (verified by
// TestDisabledSpanZeroAlloc). Metrics are plain atomics and stay enabled at
// all times; rendering them is what the -metrics flag gates.
//
// # Concurrency contract
//
// The whole API is safe for concurrent use. Counters, gauges and
// histograms are lock-free atomics — Gauge.Add in particular is a CAS
// loop, so many workers may maintain one level gauge (in-flight, queue
// depth) without losing updates. Concurrent obs.Start calls sharing one
// parent context are safe: a child only reads its parent, so the dse
// worker pool opens per-candidate spans under a single sweep span from
// every worker at once. Registry lookups (NewCounter et al.) are mutex
// protected and return one canonical instance per name.
//
// Typical use:
//
//	obs.StartTracing()
//	ctx, sp := obs.Start(ctx, "dse.runtime-study")
//	sp.SetInt("candidates", int64(len(cands)))
//	... nested obs.Start calls inherit the parent through ctx ...
//	sp.End()
//	t := obs.StopTracing()
//	t.WriteChromeTrace(f) // load in chrome://tracing or ui.perfetto.dev
package obs
