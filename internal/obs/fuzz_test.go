package obs

import (
	"strings"
	"testing"
)

// FuzzParseTraceparent throws arbitrary header values at the traceparent
// parser: no input may panic, and every accepted input must satisfy the
// parser's own contract — a 32-hex non-zero trace id and a non-zero parent
// span id that Traceparent-style rendering would round-trip.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-0123456789abcdef0123456789abcdef-00000000000000ab-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("ff-0123456789abcdef0123456789abcdef-ffffffffffffffff-01-extra")
	f.Add("")
	f.Add("garbage")
	f.Add("00-short-id-01")
	f.Add(" 00-0123456789abcdef0123456789abcdef-00000000000000ab-01 ")

	f.Fuzz(func(t *testing.T, s string) {
		traceID, parentID, ok := ParseTraceparent(s) // must never panic
		if !ok {
			if traceID != "" || parentID != 0 {
				t.Fatalf("rejected input leaked values: %q, %d", traceID, parentID)
			}
			return
		}
		if len(traceID) != 32 {
			t.Fatalf("accepted trace id has length %d: %q", len(traceID), traceID)
		}
		if traceID == strings.Repeat("0", 32) {
			t.Fatal("accepted the all-zero trace id")
		}
		for _, c := range traceID {
			if !strings.ContainsRune("0123456789abcdefABCDEF", c) {
				t.Fatalf("accepted non-hex trace id %q", traceID)
			}
		}
		if parentID == 0 {
			t.Fatal("accepted the zero parent id")
		}
	})
}
