package obs

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) over the snapshot.
// Zero-dependency like the rest of the package: instruments stay the flat
// named counters/gauges/histograms of the registry, and labels ride inside
// the instrument name in canonical `base{k="v",...}` form (built with
// Name). The renderer splits them back apart, groups label variants into
// one metric family under a single # HELP/# TYPE pair, and emits histogram
// families with cumulative _bucket series plus _sum and _count — exactly
// what a Prometheus scraper expects from /metricz?format=prom.
//
// Output is byte-deterministic: families sort by exposition name, series
// sort by label string, and bucket bounds are ascending by construction.

// Name composes an instrument name with Prometheus-style labels:
//
//	Name("serve.route_requests_total", "route", "chip.build")
//	  => `serve.route_requests_total{route="chip.build"}`
//
// Pairs are emitted in the given order; call sites use one fixed order per
// metric so equal label sets always produce the same instrument. Label
// values are escaped per the exposition format (backslash, quote, newline).
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(kv[i+1]))
		sb.WriteString(`"`)
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// splitName separates an instrument name into its base and label block
// (without braces); names built without Name have an empty label block.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// promName sanitizes a base name into a legal exposition metric name under
// the neurometer_ namespace: every rune outside [a-zA-Z0-9_:] becomes '_'.
func promName(base string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, base)
	return "neurometer_" + mapped
}

// promValue formats a sample value. The exposition format spells the
// non-finite values "+Inf", "-Inf", and "NaN".
func promValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSeries is one sample line: name{labels} value.
type promSeries struct {
	labels string
	value  string
}

// promFamily is one metric family: a HELP/TYPE header plus its series.
type promFamily struct {
	name   string // exposition name
	base   string // original registry base name (for HELP)
	typ    string // counter | gauge | histogram
	series []promSeries
}

// Prometheus renders the snapshot in the Prometheus text exposition format.
// Deterministic: rendering the same snapshot twice is byte-identical.
func (s Snapshot) Prometheus() []byte {
	fams := map[string]*promFamily{}
	family := func(base, typ string) *promFamily {
		name := promName(base)
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, base: base, typ: typ}
			fams[name] = f
		}
		return f
	}
	addSeries := func(base, typ, labels, value string) {
		f := family(base, typ)
		f.series = append(f.series, promSeries{labels: labels, value: value})
	}

	for name, v := range s.Counters {
		base, labels := splitName(name)
		addSeries(base, "counter", labels, strconv.FormatInt(v, 10))
	}
	for name, v := range s.Gauges {
		base, labels := splitName(name)
		addSeries(base, "gauge", labels, promValue(v))
	}
	for name, h := range s.Histograms {
		base, labels := splitName(name)
		f := family(base, "histogram")
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			f.series = append(f.series, promSeries{
				labels: joinLabels(labels, `le="`+promValue(bound)+`"`),
				value:  strconv.FormatInt(cum, 10),
			})
		}
		if n := len(h.Bounds); n < len(h.Buckets) {
			cum += h.Buckets[n]
		}
		f.series = append(f.series,
			promSeries{labels: joinLabels(labels, `le="+Inf"`), value: strconv.FormatInt(cum, 10)},
			promSeries{labels: "\x00sum" + labels, value: promValue(h.Sum)},
			promSeries{labels: "\x00count" + labels, value: strconv.FormatInt(h.Count, 10)},
		)
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	var sb strings.Builder
	for _, name := range names {
		f := fams[name]
		fmt.Fprintf(&sb, "# HELP %s NeuroMeter %s %s.\n", f.name, f.typ, f.base)
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		if f.typ == "histogram" {
			writeHistogramFamily(&sb, f)
			continue
		}
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		for _, se := range f.series {
			writeSample(&sb, f.name, "", se)
		}
	}
	return []byte(sb.String())
}

// writeHistogramFamily emits one histogram's series: buckets (in the
// ascending order they were appended), then _sum and _count, grouped per
// label variant sorted by label string.
func writeHistogramFamily(sb *strings.Builder, f *promFamily) {
	// Partition by variant: bucket series keep their append order (le
	// ascending); \x00-prefixed markers route to _sum/_count.
	type variant struct {
		buckets    []promSeries
		sum, count promSeries
	}
	variants := map[string]*variant{}
	var order []string
	get := func(labels string) *variant {
		v, ok := variants[labels]
		if !ok {
			v = &variant{}
			variants[labels] = v
			order = append(order, labels)
		}
		return v
	}
	for _, se := range f.series {
		switch {
		case strings.HasPrefix(se.labels, "\x00sum"):
			get(strings.TrimPrefix(se.labels, "\x00sum")).sum = se
		case strings.HasPrefix(se.labels, "\x00count"):
			get(strings.TrimPrefix(se.labels, "\x00count")).count = se
		default:
			base := se.labels[:strings.LastIndex(se.labels, "le=")]
			base = strings.TrimSuffix(base, ",")
			get(base).buckets = append(get(base).buckets, se)
		}
	}
	sort.Strings(order)
	for _, labels := range order {
		v := variants[labels]
		for _, se := range v.buckets {
			writeSample(sb, f.name, "_bucket", se)
		}
		writeSample(sb, f.name, "_sum", promSeries{labels: labels, value: v.sum.value})
		writeSample(sb, f.name, "_count", promSeries{labels: labels, value: v.count.value})
	}
}

func writeSample(sb *strings.Builder, name, suffix string, se promSeries) {
	sb.WriteString(name)
	sb.WriteString(suffix)
	if se.labels != "" {
		sb.WriteByte('{')
		sb.WriteString(se.labels)
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(se.value)
	sb.WriteByte('\n')
}

// joinLabels appends one label to a (possibly empty) comma-joined block.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// Always-on runtime gauges, refreshed by UpdateRuntimeMetrics at snapshot
// points (the /metricz handler, the CLIs' -metrics exit dump).
var (
	gGoroutines  = NewGauge("runtime.goroutines")
	gHeapAlloc   = NewGauge("runtime.heap_alloc_bytes")
	gHeapSys     = NewGauge("runtime.heap_sys_bytes")
	gGCPauseTot  = NewGauge("runtime.gc_pause_seconds_total")
	gGCRunsTotal = NewGauge("runtime.gc_runs_total")
)

// UpdateRuntimeMetrics refreshes the runtime gauges (goroutine count, heap
// bytes, cumulative GC pause) from the Go runtime. Call it just before
// taking a snapshot that should include fresh process health numbers; the
// ReadMemStats cost is a scrape-time expense, never a hot-path one.
func UpdateRuntimeMetrics() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gGoroutines.Set(float64(runtime.NumGoroutine()))
	gHeapAlloc.Set(float64(ms.HeapAlloc))
	gHeapSys.Set(float64(ms.HeapSys))
	gGCPauseTot.Set(float64(ms.PauseTotalNs) / 1e9)
	gGCRunsTotal.Set(float64(ms.NumGC))
}
