package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// LogHandler is a compact slog.Handler that prefixes each record with the
// active span's path taken from the record's context, tying log lines to
// the trace:
//
//	15:04:05.000 DEBUG [dse.run/dse.enumerate] progress tried=96 feasible=31
//
// Use slog.DebugContext / slog.InfoContext with the span-carrying context
// so the handler can see the span.
type LogHandler struct {
	level  slog.Leveler
	groups []string
	attrs  []slog.Attr

	mu *sync.Mutex
	w  io.Writer
}

var _ slog.Handler = (*LogHandler)(nil)

// NewLogHandler returns a handler writing to w at the given minimum level
// (slog.LevelInfo when level is nil).
func NewLogHandler(w io.Writer, level slog.Leveler) *LogHandler {
	if level == nil {
		level = slog.LevelInfo
	}
	return &LogHandler{w: w, level: level, mu: &sync.Mutex{}}
}

// Enabled implements slog.Handler.
func (h *LogHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level.Level()
}

// Handle implements slog.Handler.
func (h *LogHandler) Handle(ctx context.Context, r slog.Record) error {
	var sb strings.Builder
	if !r.Time.IsZero() {
		sb.WriteString(r.Time.Format("15:04:05.000"))
		sb.WriteByte(' ')
	}
	sb.WriteString(r.Level.String())
	if sp := FromContext(ctx); sp != nil {
		sb.WriteString(" [")
		sb.WriteString(sp.Path())
		sb.WriteByte(']')
	}
	sb.WriteByte(' ')
	sb.WriteString(r.Message)
	prefix := strings.Join(h.groups, ".")
	for _, a := range h.attrs {
		writeAttr(&sb, prefix, a)
	}
	r.Attrs(func(a slog.Attr) bool {
		writeAttr(&sb, prefix, a)
		return true
	})
	sb.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, sb.String())
	return err
}

func writeAttr(sb *strings.Builder, prefix string, a slog.Attr) {
	if a.Equal(slog.Attr{}) {
		return
	}
	key := a.Key
	if prefix != "" {
		key = prefix + "." + key
	}
	if a.Value.Kind() == slog.KindGroup {
		for _, g := range a.Value.Group() {
			writeAttr(sb, key, g)
		}
		return
	}
	fmt.Fprintf(sb, " %s=%v", key, a.Value.Resolve().Any())
}

// WithAttrs implements slog.Handler.
func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	h2 := *h
	h2.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &h2
}

// WithGroup implements slog.Handler.
func (h *LogHandler) WithGroup(name string) slog.Handler {
	h2 := *h
	h2.groups = append(append([]string(nil), h.groups...), name)
	return &h2
}
