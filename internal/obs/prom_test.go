package obs

import (
	"regexp"
	"strings"
	"testing"
)

// expositionLine matches the three legal line shapes of the Prometheus text
// exposition format — the same regex discipline the CI smoke job applies to
// a live /metricz?format=prom scrape.
var expositionLine = regexp.MustCompile(
	`^(# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+|# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+)$`)

func promFixture() Snapshot {
	return Snapshot{
		Counters: map[string]int64{
			"serve.requests_total": 7,
			Name("serve.route_errors_total", "route", "chip.build", "kind", "shed"): 2,
			Name("serve.route_errors_total", "route", "dse.study", "kind", "shed"):  1,
		},
		Gauges: map[string]float64{
			"runtime.goroutines": 12,
			Name("fleet.breaker_state", "worker", "10.0.0.7_8080"): 2,
		},
		Histograms: map[string]HistogramSnapshot{
			Name("serve.route_request_seconds", "route", "chip.build"): {
				Count:   4,
				Sum:     0.75,
				Bounds:  []float64{0.1, 1},
				Buckets: []int64{1, 2, 1}, // last = overflow past 1s
			},
		},
	}
}

func TestPrometheusExpositionShape(t *testing.T) {
	out := string(promFixture().Prometheus())
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("line fails exposition shape: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE neurometer_serve_requests_total counter",
		"neurometer_serve_requests_total 7",
		`neurometer_serve_route_errors_total{route="chip.build",kind="shed"} 2`,
		`neurometer_fleet_breaker_state{worker="10.0.0.7_8080"} 2`,
		"# TYPE neurometer_serve_route_request_seconds histogram",
		`neurometer_serve_route_request_seconds_bucket{route="chip.build",le="0.1"} 1`,
		`neurometer_serve_route_request_seconds_bucket{route="chip.build",le="1"} 3`,
		`neurometer_serve_route_request_seconds_bucket{route="chip.build",le="+Inf"} 4`,
		`neurometer_serve_route_request_seconds_sum{route="chip.build"} 0.75`,
		`neurometer_serve_route_request_seconds_count{route="chip.build"} 4`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One family header per base name, even with several label variants.
	if n := strings.Count(out, "# TYPE neurometer_serve_route_errors_total"); n != 1 {
		t.Errorf("route_errors_total has %d TYPE headers, want 1", n)
	}
}

func TestPrometheusDeterministic(t *testing.T) {
	a := string(promFixture().Prometheus())
	b := string(promFixture().Prometheus())
	if a != b {
		t.Fatal("two renders of the same snapshot differ")
	}
	// Families are sorted by exposition name.
	var famLines []string
	for _, line := range strings.Split(a, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			famLines = append(famLines, line)
		}
	}
	for i := 1; i < len(famLines); i++ {
		if famLines[i] < famLines[i-1] {
			t.Fatalf("families out of order: %q after %q", famLines[i], famLines[i-1])
		}
	}
}

func TestNameEscapesLabelValues(t *testing.T) {
	got := Name("m", "k", `a"b\c`+"\n")
	want := `m{k="a\"b\\c\n"}`
	if got != want {
		t.Fatalf("Name = %q, want %q", got, want)
	}
	base, labels := splitName(got)
	if base != "m" || labels != `k="a\"b\\c\n"` {
		t.Fatalf("splitName = (%q, %q)", base, labels)
	}
}

func TestBuildInfoGauge(t *testing.T) {
	RegisterBuildInfo()
	snap := Default().Snapshot()
	found := false
	for name, v := range snap.Gauges {
		base, labels := splitName(name)
		if base != "build_info" {
			continue
		}
		found = true
		if v != 1 {
			t.Errorf("build_info = %g, want 1", v)
		}
		for _, lbl := range []string{"version=", "revision=", "goversion=", "modified="} {
			if !strings.Contains(labels, lbl) {
				t.Errorf("build_info labels %q missing %s", labels, lbl)
			}
		}
	}
	if !found {
		t.Fatal("build_info gauge not registered")
	}
	if !strings.Contains(string(snap.Prometheus()), "neurometer_build_info{") {
		t.Fatal("exposition missing neurometer_build_info")
	}
	if s := ReadBuildInfo().String(); !strings.HasPrefix(s, "neurometer ") {
		t.Fatalf("version string %q", s)
	}
}

func TestRuntimeGauges(t *testing.T) {
	UpdateRuntimeMetrics()
	snap := Default().Snapshot()
	if snap.Gauges["runtime.goroutines"] < 1 {
		t.Errorf("runtime.goroutines = %g", snap.Gauges["runtime.goroutines"])
	}
	if snap.Gauges["runtime.heap_alloc_bytes"] <= 0 {
		t.Errorf("runtime.heap_alloc_bytes = %g", snap.Gauges["runtime.heap_alloc_bytes"])
	}
}

func TestHistogramBoundsSortedAtRegistration(t *testing.T) {
	h := NewHistogram("test.unsorted_bounds_seconds", []float64{1, 0.1, 10})
	h.Observe(0.05)
	h.Observe(5)
	snap := Default().Snapshot()
	hs := snap.Histograms["test.unsorted_bounds_seconds"]
	want := []float64{0.1, 1, 10}
	for i, b := range want {
		if hs.Bounds[i] != b {
			t.Fatalf("bounds = %v, want %v", hs.Bounds, want)
		}
	}
	if hs.Buckets[0] != 1 || hs.Buckets[2] != 1 {
		t.Fatalf("buckets = %v: observations landed in wrong cells", hs.Buckets)
	}
}
