package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// chromeEvent is one Chrome trace-event: an "X" complete event for spans,
// or an "i" instant event (thread-scoped) for point events. The format is
// the trace-event JSON consumed by chrome://tracing and Perfetto
// (ui.perfetto.dev); timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	S    string         `json:"s,omitempty"` // instant-event scope ("t")
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// snapshotEvents returns a copy of the recorded spans sorted by start time
// (then by longest duration, so parents precede their children).
func (t *Tracer) snapshotEvents() []spanEvent {
	t.mu.Lock()
	evs := make([]spanEvent, len(t.events))
	copy(evs, t.events)
	t.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].startNS != evs[j].startNS {
			return evs[i].startNS < evs[j].startNS
		}
		return evs[i].durNS > evs[j].durNS
	})
	return evs
}

// WriteChromeTrace writes every finished span as Chrome trace-event JSON.
// Nesting is conveyed by time containment on a track (tid), which both
// chrome://tracing and Perfetto render as a flame graph.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer")
	}
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, ev := range t.snapshotEvents() {
		ce := chromeEvent{
			Name: ev.name,
			Cat:  "obs",
			Ph:   "X",
			Ts:   float64(ev.startNS) / 1e3,
			Dur:  float64(ev.durNS) / 1e3,
			Pid:  1,
			Tid:  ev.track,
		}
		if ev.instant {
			ce.Ph, ce.Dur, ce.S = "i", 0, "t"
		}
		if len(ev.attrs) > 0 {
			ce.Args = map[string]any{}
			for _, a := range ev.attrs {
				ce.Args[a.Key] = a.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// profNode aggregates all spans sharing one ancestry path.
type profNode struct {
	name     string
	count    int64
	totalNS  int64
	children map[string]*profNode
	order    []string // child insertion order (start-time order)
}

func (n *profNode) child(name string) *profNode {
	c, ok := n.children[name]
	if !ok {
		c = &profNode{name: name, children: map[string]*profNode{}}
		n.children[name] = c
		n.order = append(n.order, name)
	}
	return c
}

// Profile renders a top-down text profile: every span path with its call
// count, cumulative wall time, and self time (cumulative minus children).
// Instant events carry no duration and are excluded.
func (t *Tracer) Profile() string {
	if t == nil {
		return ""
	}
	root := &profNode{children: map[string]*profNode{}}
	for _, ev := range t.snapshotEvents() {
		if ev.instant {
			continue
		}
		n := root
		for _, part := range strings.Split(ev.path, "/") {
			n = n.child(part)
		}
		n.count++
		n.totalNS += ev.durNS
	}
	var sb strings.Builder
	sb.WriteString("== span profile (top-down) ==\n")
	fmt.Fprintf(&sb, "%-52s %8s %12s %12s\n", "span", "calls", "total", "self")
	var walk func(n *profNode, depth int)
	walk = func(n *profNode, depth int) {
		names := append([]string(nil), n.order...)
		sort.SliceStable(names, func(i, j int) bool {
			return n.children[names[i]].totalNS > n.children[names[j]].totalNS
		})
		for _, name := range names {
			c := n.children[name]
			var childNS int64
			for _, gc := range c.children {
				childNS += gc.totalNS
			}
			self := c.totalNS - childNS
			if self < 0 {
				self = 0
			}
			label := strings.Repeat("  ", depth) + c.name
			fmt.Fprintf(&sb, "%-52s %8d %12s %12s\n",
				label, c.count, fmtDur(c.totalNS), fmtDur(self))
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return sb.String()
}

func fmtDur(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}
