package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// active is the process-wide tracer; nil means tracing is disabled and
// Start degrades to a single atomic load.
var active atomic.Pointer[Tracer]

// detachedEver flips true on the first NewRequestTracer and never resets.
// While false, no context in the process can carry a live span when the
// global tracer is off, so the disabled Start path may skip the context
// walk — keeping the per-layer hot path at two atomic loads.
var detachedEver atomic.Bool

// StartTracing installs a fresh process-wide tracer and returns it. Spans
// started before StartTracing (or after StopTracing) are no-ops.
func StartTracing() *Tracer {
	t := newTracer()
	active.Store(t)
	return t
}

// StopTracing disables tracing and returns the tracer that was active (nil
// if tracing was off). The returned tracer still holds every finished span
// for export.
func StopTracing() *Tracer {
	return active.Swap(nil)
}

// TracingEnabled reports whether a tracer is installed.
func TracingEnabled() bool { return active.Load() != nil }

// Tracer collects finished spans. All methods are safe for concurrent use.
type Tracer struct {
	now     func() time.Time // injectable clock (tests)
	epoch   time.Time
	traceID string        // 32 lowercase hex chars (W3C trace-id)
	lastID  atomic.Uint64 // span id allocator; 0 means "no span"

	mu     sync.Mutex
	events []spanEvent
	tracks map[uint64]bool // in-use Chrome-trace track (tid) ids
}

// spanEvent is one finished span (or instant event), recorded at End.
type spanEvent struct {
	name    string
	path    string // slash-joined ancestry, e.g. "dse.run/dse.enumerate"
	id      uint64 // tracer-scoped span id (W3C parent-id material)
	parent  uint64 // id of the parent span; 0 for roots
	track   uint64
	startNS int64 // relative to the tracer epoch
	durNS   int64
	instant bool // zero-duration point event (retry fired, breaker opened)
	attrs   []Attr
}

func newTracer() *Tracer {
	return &Tracer{
		now: time.Now, epoch: time.Now(),
		traceID: newTraceID(),
		tracks:  map[uint64]bool{},
	}
}

// TraceID returns the tracer's W3C trace id (32 lowercase hex chars).
// All spans recorded by this tracer share it; a worker's request tracer
// adopts the coordinator's id so log lines correlate across processes.
func (t *Tracer) TraceID() string { return t.traceID }

// SetTraceID replaces the tracer's trace id. Intended for request tracers
// joining an incoming traceparent; call it before starting spans.
func (t *Tracer) SetTraceID(id string) {
	if id != "" {
		t.traceID = id
	}
}

func (t *Tracer) nextID() uint64 { return t.lastID.Add(1) }

func (t *Tracer) clock() time.Time { return t.now() }

func (t *Tracer) record(ev spanEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// acquireTrack hands a root span the lowest free track id, so sequential
// root spans share track 1 while concurrent roots get their own rows in
// the trace viewer.
func (t *Tracer) acquireTrack() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := uint64(1); ; id++ {
		if !t.tracks[id] {
			t.tracks[id] = true
			return id
		}
	}
}

func (t *Tracer) releaseTrack(id uint64) {
	t.mu.Lock()
	delete(t.tracks, id)
	t.mu.Unlock()
}

// Attr is a span attribute. Use the typed constructors/setters; they avoid
// interface boxing on disabled spans.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Span is one timed region. A nil *Span is valid and every method on it is
// a no-op, so callers never need to branch on whether tracing is enabled.
// A span's setters are not safe for concurrent use with its End.
type Span struct {
	t      *Tracer
	parent *Span
	id     uint64
	name   string
	path   string
	track  uint64
	root   bool
	start  time.Time
	ended  bool
	attrs  []Attr
}

type ctxKey struct{}

// FromContext returns the span stored in ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Start begins a span named name as a child of the span in ctx (a root
// span if none) and returns a context carrying the new span. A child always
// records into its parent's tracer — that is what lets a request-scoped
// tracer (see NewRequestTracer) capture a whole subtree even when the
// process-wide tracer is off. With tracing fully disabled (no parent span,
// no active tracer) it returns ctx unchanged and a nil span at zero
// allocations.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := active.Load()
	if t == nil && !detachedEver.Load() {
		return ctx, nil // tracing off, no request tracer in the process
	}
	if parent := FromContext(ctx); parent != nil {
		return parent.t.start(ctx, parent, name, attrs)
	}
	if t == nil {
		return ctx, nil
	}
	return t.start(ctx, nil, name, attrs)
}

// StartRoot begins a root span recorded in t regardless of the process-wide
// tracer, returning a context that routes every nested Start into t. This is
// the entry point for request-scoped capture: a worker wraps one request's
// work in StartRoot and exports the resulting subtree with WireSpans.
func (t *Tracer) StartRoot(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	return t.start(ctx, nil, name, attrs)
}

func (t *Tracer) start(ctx context.Context, parent *Span, name string, attrs []Attr) (context.Context, *Span) {
	s := &Span{t: t, id: t.nextID(), name: name, start: t.clock()}
	if len(attrs) > 0 {
		s.attrs = attrs
	}
	if parent != nil {
		s.parent = parent
		s.path = parent.path + "/" + name
		s.track = parent.track
	} else {
		s.path = name
		s.track = t.acquireTrack()
		s.root = true
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Event records a zero-duration instant event under the span in ctx —
// a point in time worth seeing on the trace without a duration of its own
// (a retry fired, a hedge launched, a breaker opened). Without a span in
// ctx it is a no-op at zero allocations, like a disabled Start.
func Event(ctx context.Context, name string, attrs ...Attr) {
	sp := FromContext(ctx)
	if sp == nil {
		return
	}
	t := sp.t
	t.record(spanEvent{
		name:    name,
		path:    sp.path + "/" + name,
		id:      t.nextID(),
		parent:  sp.id,
		track:   sp.track,
		startNS: t.clock().Sub(t.epoch).Nanoseconds(),
		instant: true,
		attrs:   attrs,
	})
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Path returns the slash-joined ancestry path ("" on nil).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// SetStr attaches a string attribute. Nil-safe.
func (s *Span) SetStr(k, v string) {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: k, Value: v})
	}
}

// SetInt attaches an integer attribute. Nil-safe.
func (s *Span) SetInt(k string, v int64) {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: k, Value: v})
	}
}

// SetFloat attaches a float attribute. Nil-safe.
func (s *Span) SetFloat(k string, v float64) {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: k, Value: v})
	}
}

// End finishes the span and records it in its tracer. Nil-safe and
// idempotent; ending a span after StopTracing still records into the
// (now detached) tracer so the export stays complete.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	end := s.t.clock()
	var parentID uint64
	if s.parent != nil {
		parentID = s.parent.id
	}
	s.t.record(spanEvent{
		name:    s.name,
		path:    s.path,
		id:      s.id,
		parent:  parentID,
		track:   s.track,
		startNS: s.start.Sub(s.t.epoch).Nanoseconds(),
		durNS:   end.Sub(s.start).Nanoseconds(),
		attrs:   s.attrs,
	})
	if s.root {
		s.t.releaseTrack(s.track)
	}
}
