package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// active is the process-wide tracer; nil means tracing is disabled and
// Start degrades to a single atomic load.
var active atomic.Pointer[Tracer]

// StartTracing installs a fresh process-wide tracer and returns it. Spans
// started before StartTracing (or after StopTracing) are no-ops.
func StartTracing() *Tracer {
	t := newTracer()
	active.Store(t)
	return t
}

// StopTracing disables tracing and returns the tracer that was active (nil
// if tracing was off). The returned tracer still holds every finished span
// for export.
func StopTracing() *Tracer {
	return active.Swap(nil)
}

// TracingEnabled reports whether a tracer is installed.
func TracingEnabled() bool { return active.Load() != nil }

// Tracer collects finished spans. All methods are safe for concurrent use.
type Tracer struct {
	now   func() time.Time // injectable clock (tests)
	epoch time.Time

	mu     sync.Mutex
	events []spanEvent
	tracks map[uint64]bool // in-use Chrome-trace track (tid) ids
}

// spanEvent is one finished span, recorded at End.
type spanEvent struct {
	name    string
	path    string // slash-joined ancestry, e.g. "dse.run/dse.enumerate"
	track   uint64
	startNS int64 // relative to the tracer epoch
	durNS   int64
	attrs   []Attr
}

func newTracer() *Tracer {
	return &Tracer{now: time.Now, epoch: time.Now(), tracks: map[uint64]bool{}}
}

func (t *Tracer) clock() time.Time { return t.now() }

func (t *Tracer) record(ev spanEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// acquireTrack hands a root span the lowest free track id, so sequential
// root spans share track 1 while concurrent roots get their own rows in
// the trace viewer.
func (t *Tracer) acquireTrack() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := uint64(1); ; id++ {
		if !t.tracks[id] {
			t.tracks[id] = true
			return id
		}
	}
}

func (t *Tracer) releaseTrack(id uint64) {
	t.mu.Lock()
	delete(t.tracks, id)
	t.mu.Unlock()
}

// Attr is a span attribute. Use the typed constructors/setters; they avoid
// interface boxing on disabled spans.
type Attr struct {
	Key   string
	Value any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Span is one timed region. A nil *Span is valid and every method on it is
// a no-op, so callers never need to branch on whether tracing is enabled.
// A span's setters are not safe for concurrent use with its End.
type Span struct {
	t      *Tracer
	parent *Span
	name   string
	path   string
	track  uint64
	root   bool
	start  time.Time
	ended  bool
	attrs  []Attr
}

type ctxKey struct{}

// FromContext returns the span stored in ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Start begins a span named name as a child of the span in ctx (a root
// span if none) and returns a context carrying the new span. With tracing
// disabled it returns ctx unchanged and a nil span at zero allocations.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := active.Load()
	if t == nil {
		return ctx, nil
	}
	s := &Span{t: t, name: name, start: t.clock()}
	if len(attrs) > 0 {
		s.attrs = attrs
	}
	if parent := FromContext(ctx); parent != nil && parent.t == t {
		s.parent = parent
		s.path = parent.path + "/" + name
		s.track = parent.track
	} else {
		s.path = name
		s.track = t.acquireTrack()
		s.root = true
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Path returns the slash-joined ancestry path ("" on nil).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// SetStr attaches a string attribute. Nil-safe.
func (s *Span) SetStr(k, v string) {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: k, Value: v})
	}
}

// SetInt attaches an integer attribute. Nil-safe.
func (s *Span) SetInt(k string, v int64) {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: k, Value: v})
	}
}

// SetFloat attaches a float attribute. Nil-safe.
func (s *Span) SetFloat(k string, v float64) {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: k, Value: v})
	}
}

// End finishes the span and records it in its tracer. Nil-safe and
// idempotent; ending a span after StopTracing still records into the
// (now detached) tracer so the export stays complete.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	end := s.t.clock()
	s.t.record(spanEvent{
		name:    s.name,
		path:    s.path,
		track:   s.track,
		startNS: s.start.Sub(s.t.epoch).Nanoseconds(),
		durNS:   end.Sub(s.start).Nanoseconds(),
		attrs:   s.attrs,
	})
	if s.root {
		s.t.releaseTrack(s.track)
	}
}
