package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a deterministic clock advancing step per call.
func fakeClock(start time.Time, step time.Duration) func() time.Time {
	t := start
	return func() time.Time {
		cur := t
		t = t.Add(step)
		return cur
	}
}

func TestSpanNestingAndOrdering(t *testing.T) {
	tr := StartTracing()
	defer StopTracing()

	ctx := context.Background()
	ctx, root := Start(ctx, "root")
	cctx, child1 := Start(ctx, "child1")
	_, grand := Start(cctx, "grand")
	grand.End()
	child1.End()
	_, child2 := Start(ctx, "child2")
	child2.End()
	root.End()

	evs := tr.snapshotEvents()
	if len(evs) != 4 {
		t.Fatalf("events: got %d, want 4", len(evs))
	}
	// Sorted by start time: root, child1, grand, child2.
	wantPaths := []string{"root", "root/child1", "root/child1/grand", "root/child2"}
	for i, want := range wantPaths {
		if evs[i].path != want {
			t.Errorf("event %d path = %q, want %q", i, evs[i].path, want)
		}
	}
	// Children share the root's track and are contained in its interval.
	rootEv := evs[0]
	for _, ev := range evs[1:] {
		if ev.track != rootEv.track {
			t.Errorf("span %q on track %d, root on %d", ev.path, ev.track, rootEv.track)
		}
		if ev.startNS < rootEv.startNS ||
			ev.startNS+ev.durNS > rootEv.startNS+rootEv.durNS {
			t.Errorf("span %q [%d,+%d] not contained in root [%d,+%d]",
				ev.path, ev.startNS, ev.durNS, rootEv.startNS, rootEv.durNS)
		}
	}
	// child2 starts after child1 ends (sequential code).
	c1, c2 := evs[1], evs[3]
	if c2.startNS < c1.startNS+c1.durNS {
		t.Errorf("child2 starts at %d before child1 ends at %d", c2.startNS, c1.startNS+c1.durNS)
	}
}

func TestDisabledSpansAreNoOps(t *testing.T) {
	if TracingEnabled() {
		t.Fatal("tracing unexpectedly enabled at test start")
	}
	ctx := context.Background()
	ctx2, sp := Start(ctx, "x")
	if sp != nil {
		t.Fatal("disabled Start must return a nil span")
	}
	if ctx2 != ctx {
		t.Fatal("disabled Start must return ctx unchanged")
	}
	// All methods nil-safe.
	sp.SetStr("k", "v")
	sp.SetInt("k", 1)
	sp.SetFloat("k", 1)
	sp.End()
	if sp.Name() != "" || sp.Path() != "" {
		t.Fatal("nil span accessors must return zero values")
	}
}

// The span fast path with tracing disabled must not allocate: hot loops
// (per-layer simulation) run it unconditionally.
func TestDisabledSpanZeroAlloc(t *testing.T) {
	if TracingEnabled() {
		t.Fatal("tracing must be disabled for this test")
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		_, sp := Start(ctx, "hot")
		sp.SetStr("mapping", "n-split")
		sp.SetFloat("cycles", 42)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f per op, want 0", allocs)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	tr := StartTracing()
	defer StopTracing()
	epoch := time.Unix(1000, 0)
	tr.epoch = epoch
	tr.now = fakeClock(epoch, 100*time.Microsecond)

	ctx, root := Start(context.Background(), "dse.run") // t=0
	_, child := Start(ctx, "dse.enumerate")             // t=100µs
	child.SetInt("feasible", 31)
	child.End() // t=200µs
	root.End()  // t=300µs

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `{
 "traceEvents": [
  {
   "name": "dse.run",
   "cat": "obs",
   "ph": "X",
   "ts": 0,
   "dur": 300,
   "pid": 1,
   "tid": 1
  },
  {
   "name": "dse.enumerate",
   "cat": "obs",
   "ph": "X",
   "ts": 100,
   "dur": 100,
   "pid": 1,
   "tid": 1,
   "args": {
    "feasible": 31
   }
  }
 ],
 "displayTimeUnit": "ms"
}
`
	if got != want {
		t.Errorf("chrome trace mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// And it must be well-formed JSON with the trace-event envelope.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 2 {
		t.Fatalf("traceEvents: %d, want 2", len(parsed.TraceEvents))
	}
}

func TestConcurrentRootSpansGetOwnTracks(t *testing.T) {
	tr := StartTracing()
	defer StopTracing()

	_, a := Start(context.Background(), "a")
	_, b := Start(context.Background(), "b") // concurrent with a
	b.End()
	_, c := Start(context.Background(), "c") // b's track is free again
	c.End()
	a.End()

	tracks := map[string]uint64{}
	for _, ev := range tr.snapshotEvents() {
		tracks[ev.name] = ev.track
	}
	if tracks["a"] == tracks["b"] {
		t.Errorf("concurrent roots share track %d", tracks["a"])
	}
	if tracks["c"] != tracks["b"] {
		t.Errorf("track not recycled: c=%d, want %d", tracks["c"], tracks["b"])
	}
}

func TestProfileRendersTree(t *testing.T) {
	tr := StartTracing()
	defer StopTracing()
	epoch := time.Unix(0, 0)
	tr.epoch = epoch
	tr.now = fakeClock(epoch, time.Millisecond)

	ctx, root := Start(context.Background(), "run")
	for i := 0; i < 3; i++ {
		_, sp := Start(ctx, "step")
		sp.End()
	}
	root.End()

	prof := tr.Profile()
	if !strings.Contains(prof, "run") || !strings.Contains(prof, "  step") {
		t.Errorf("profile missing indented tree:\n%s", prof)
	}
	if !strings.Contains(prof, " 3 ") {
		t.Errorf("profile missing call count 3:\n%s", prof)
	}
}

func TestLogHandlerSpanContext(t *testing.T) {
	tr := StartTracing()
	defer StopTracing()
	_ = tr

	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(&buf, slog.LevelDebug))
	ctx, sp := Start(context.Background(), "dse.run")
	ctx, sp2 := Start(ctx, "dse.enumerate")
	logger.DebugContext(ctx, "progress", "tried", 96, slog.Group("g", "k", "v"))
	sp2.End()
	sp.End()

	line := buf.String()
	for _, want := range []string{"DEBUG", "[dse.run/dse.enumerate]", "progress", "tried=96", "g.k=v"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %q: %s", want, line)
		}
	}
}

func TestLogHandlerLevelGate(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewLogHandler(&buf, slog.LevelInfo))
	logger.Debug("hidden")
	logger.Info("shown")
	if strings.Contains(buf.String(), "hidden") {
		t.Error("debug line leaked through info-level handler")
	}
	if !strings.Contains(buf.String(), "shown") {
		t.Error("info line missing")
	}
}

func TestEndAfterStopStillRecords(t *testing.T) {
	StartTracing()
	_, sp := Start(context.Background(), "late")
	tr := StopTracing()
	sp.End()
	if n := len(tr.snapshotEvents()); n != 1 {
		t.Fatalf("events after late End: %d, want 1", n)
	}
}
