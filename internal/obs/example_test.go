package obs_test

import (
	"fmt"

	"neurometer/internal/obs"
)

// Counters are lock-free atomics registered once per name in the default
// registry; any number of goroutines may Inc/Add the same counter.
func ExampleCounter() {
	c := obs.NewCounter("example.layers_simulated")
	c.Inc()
	c.Add(4)
	fmt.Println(c.Value())
	// Output: 5
}

// Gauge.Add maintains level gauges (in-flight evaluations, queue depth)
// with a CAS loop, so concurrent +1/-1 pairs from a worker pool never lose
// updates and the gauge drains back to its resting level.
func ExampleGauge_Add() {
	g := obs.NewGauge("example.eval_inflight")
	g.Add(2)
	g.Add(1)
	g.Add(-3)
	fmt.Println(g.Value())
	// Output: 0
}
