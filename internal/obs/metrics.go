package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. All instrument operations are lock-free
// atomics, safe for concurrent sweeps; the registry lock is only taken on
// registration and snapshot. A nil *Registry is valid: registration on it
// returns nil instruments, whose methods are all no-ops — that is the
// "disabled registry" configuration.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// defaultRegistry backs the package-level constructors. Instrumented
// packages register their metrics at init and the CLIs render a snapshot
// under -metrics.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that holds the last set value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds delta to the gauge (CAS loop). Nil-safe. Used for
// level-style gauges — in-flight evaluations, queue depth — that many
// goroutines raise and lower concurrently.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the last set value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// LatencyBuckets are the default histogram bounds for durations in
// seconds: 1µs … 100s, decades.
var LatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100}

// Histogram is a fixed-bucket histogram with atomic cells. Observations
// above the last bound land in the overflow bucket.
type Histogram struct {
	bounds []float64 // upper bounds, ascending
	cells  []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: bounds, cells: make([]atomic.Int64, len(bounds)+1)}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. Nil-safe, lock-free. Negative values are
// clamped to zero at record time: duration instruments can observe small
// negative samples under clock skew (time.Since across a step), and an
// unclamped negative min/max would poison the snapshot's summary stats
// (a histogram that only ever saw skewed samples must report max=0, not a
// negative duration).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.cells[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
	casFloat(&h.min, v, func(cur, v float64) bool { return v < cur })
	casFloat(&h.max, v, func(cur, v float64) bool { return v > cur })
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func casFloat(bits *atomic.Uint64, v float64, better func(cur, v float64) bool) {
	for {
		old := bits.Load()
		if !better(math.Float64frombits(old), v) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Counter returns (registering if needed) the named counter. Nil-safe:
// a nil registry returns a nil, no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (registering if needed) the named gauge. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (registering if needed) the named histogram with the
// given bucket bounds (LatencyBuckets when bounds is nil). Bounds are fixed
// at first registration. Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if bounds == nil {
			bounds = LatencyBuckets
		}
		// Copy and sort: bucket order is part of the snapshot's determinism
		// contract, and the registry must not alias (or reorder) the
		// caller's slice.
		sorted := append([]float64(nil), bounds...)
		sort.Float64s(sorted)
		h = newHistogram(sorted)
		r.histograms[name] = h
	}
	return h
}

// NewCounter registers a counter in the default registry. Intended for
// package-level vars in instrumented packages.
func NewCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// NewGauge registers a gauge in the default registry.
func NewGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// NewHistogram registers a histogram in the default registry.
func NewHistogram(name string, bounds []float64) *Histogram {
	return defaultRegistry.Histogram(name, bounds)
}

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	Count   int64     `json:"count"`
	Sum     float64   `json:"sum"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Bounds  []float64 `json:"bounds"`
	Buckets []int64   `json:"buckets"` // len(Bounds)+1, last is overflow
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry's metrics.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the current metric values. Nil-safe (returns an empty
// snapshot).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		hs := HistogramSnapshot{
			Count:  h.count.Load(),
			Sum:    math.Float64frombits(h.sum.Load()),
			Min:    math.Float64frombits(h.min.Load()),
			Max:    math.Float64frombits(h.max.Load()),
			Bounds: h.bounds,
		}
		if hs.Count == 0 {
			hs.Min, hs.Max = 0, 0
		}
		for i := range h.cells {
			hs.Buckets = append(hs.Buckets, h.cells[i].Load())
		}
		s.Histograms[name] = hs
	}
	return s
}

// Snapshot renderings are deterministic so CI can diff them byte-for-byte:
// JSON map keys come out sorted (encoding/json sorts map keys), Text and
// Prometheus sort names explicitly, and histogram buckets are ascending by
// registration (bounds are sorted when the histogram is created).

// JSON renders the snapshot as indented JSON with sorted keys.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// Text renders the snapshot as a sorted, human-readable table.
func (s Snapshot) Text() string {
	var sb strings.Builder
	sb.WriteString("== metrics ==\n")
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&sb, "%-40s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&sb, "%-40s %g\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		fmt.Fprintf(&sb, "%-40s n=%d mean=%.3g min=%.3g max=%.3g\n",
			name, h.Count, h.Mean(), h.Min, h.Max)
	}
	return sb.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
