package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Cross-process tracing. A fleet coordinator tags each worker call with a
// W3C traceparent-style header; the worker captures its span subtree in a
// request-scoped tracer (NewRequestTracer + StartRoot), serializes it with
// WireSpans into the response, and the coordinator grafts the subtree under
// the dispatching span with Span.Graft. The merged tracer then exports one
// Chrome trace in which remote work nests under the coordinator spans that
// caused it. Remote timestamps are relative to the remote subtree's root,
// so clock skew between machines never shows in the merged timeline — the
// subtree is simply re-based onto the coordinator-side span that covers the
// round trip.

// TraceparentHeader is the HTTP header carrying trace context, per the W3C
// Trace Context spec ("traceparent: 00-<trace-id>-<parent-id>-<flags>").
const TraceparentHeader = "Traceparent"

// newTraceID returns 16 random bytes as 32 lowercase hex chars.
func newTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; a fixed fallback
		// keeps tracing functional rather than failing span creation.
		return "00000000000000000000000000000001"
	}
	return hex.EncodeToString(b[:])
}

// NewTraceID returns a fresh 32-hex-char trace id. It doubles as the
// request-id generator for serve access logs: a request that arrives
// without correlation headers still gets a unique, trace-shaped id.
func NewTraceID() string { return newTraceID() }

// NewRequestTracer returns a detached tracer for capturing one request's
// span subtree. It is never installed process-wide: the caller roots the
// request's work with StartRoot, and every nested Start joins the subtree
// through the context's parent span. Export the capture with WireSpans.
func NewRequestTracer() *Tracer {
	detachedEver.Store(true)
	return newTracer()
}

// Traceparent renders the W3C traceparent value for the span in ctx, or ""
// when ctx carries no span (tracing disabled — callers skip the header).
func Traceparent(ctx context.Context) string {
	sp := FromContext(ctx)
	if sp == nil {
		return ""
	}
	return fmt.Sprintf("00-%s-%016x-01", sp.t.traceID, sp.id)
}

// ParseTraceparent splits a traceparent header value into its trace id and
// parent span id. It accepts any version byte and ignores the flags, per
// the spec's forward-compatibility rules; malformed or all-zero ids report
// ok=false.
func ParseTraceparent(s string) (traceID string, parentID uint64, ok bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return "", 0, false
	}
	if _, err := hex.DecodeString(parts[1]); err != nil || parts[1] == strings.Repeat("0", 32) {
		return "", 0, false
	}
	id, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil || id == 0 {
		return "", 0, false
	}
	return parts[1], id, true
}

// WireAttr is one serialized span attribute. Values round-trip through
// JSON, so integer attributes come back as float64 — fine for trace args,
// which are display-only.
type WireAttr struct {
	K string `json:"k"`
	V any    `json:"v"`
}

// WireSpan is the serialized form of one recorded span or instant event:
// the wire format workers use to ship their span subtree back to the
// coordinator inside an eval response. StartNS is relative to the tracer
// epoch (for a request tracer, effectively the subtree root's start).
type WireSpan struct {
	ID      uint64     `json:"id"`
	Parent  uint64     `json:"parent,omitempty"` // 0 = subtree root
	Name    string     `json:"name"`
	Path    string     `json:"path"`
	StartNS int64      `json:"start_ns"`
	DurNS   int64      `json:"dur_ns,omitempty"`
	Instant bool       `json:"instant,omitempty"`
	Attrs   []WireAttr `json:"attrs,omitempty"`
}

// WireSpans exports every recorded span and instant event in start-time
// order. The result is also the test- and tooling-facing structured view of
// a trace (paths and parent links, which the Chrome export conveys only by
// time containment).
func (t *Tracer) WireSpans() []WireSpan {
	if t == nil {
		return nil
	}
	evs := t.snapshotEvents()
	out := make([]WireSpan, 0, len(evs))
	for _, ev := range evs {
		ws := WireSpan{
			ID:      ev.id,
			Parent:  ev.parent,
			Name:    ev.name,
			Path:    ev.path,
			StartNS: ev.startNS,
			DurNS:   ev.durNS,
			Instant: ev.instant,
		}
		for _, a := range ev.attrs {
			ws.Attrs = append(ws.Attrs, WireAttr{K: a.Key, V: a.Value})
		}
		out = append(out, ws)
	}
	return out
}

// Graft re-parents a remote span subtree under s: ids are remapped into
// s's tracer, paths are prefixed with s's ancestry, subtree roots become
// children of s, and timestamps are re-based so the remote epoch aligns
// with s's start (remote wall clocks never leak into the merged trace).
// Call it while s is live — typically right after decoding the response
// the spans arrived in. Nil-safe: with tracing disabled (nil s) it drops
// the spans.
func (s *Span) Graft(spans []WireSpan) {
	if s == nil || len(spans) == 0 {
		return
	}
	t := s.t
	base := s.start.Sub(t.epoch).Nanoseconds()
	idmap := make(map[uint64]uint64, len(spans))
	for _, ws := range spans {
		nid := t.nextID()
		idmap[ws.ID] = nid
		parent, ok := idmap[ws.Parent]
		if !ok {
			parent = s.id
		}
		ev := spanEvent{
			name:    ws.Name,
			path:    s.path + "/" + ws.Path,
			id:      nid,
			parent:  parent,
			track:   s.track,
			startNS: base + ws.StartNS,
			durNS:   ws.DurNS,
			instant: ws.Instant,
		}
		for _, a := range ws.Attrs {
			ev.attrs = append(ev.attrs, Attr{Key: a.K, Value: a.V})
		}
		t.record(ev)
	}
}
