package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	rt := NewRequestTracer()
	ctx, sp := rt.StartRoot(context.Background(), "worker.eval")
	hdr := Traceparent(ctx)
	sp.End()

	traceID, parentID, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected its own Traceparent output", hdr)
	}
	if traceID != rt.TraceID() {
		t.Errorf("trace id %q, want %q", traceID, rt.TraceID())
	}
	if parentID == 0 {
		t.Error("parent id must be non-zero")
	}
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Errorf("header %q missing version/flags framing", hdr)
	}
}

func TestTraceparentEmptyWithoutSpan(t *testing.T) {
	if got := Traceparent(context.Background()); got != "" {
		t.Fatalf("Traceparent without a span = %q, want empty", got)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"garbage",
		"00-short-0000000000000001-01",
		"00-" + strings.Repeat("0", 32) + "-0000000000000001-01", // all-zero trace id
		"00-" + strings.Repeat("a", 32) + "-0000000000000000-01", // all-zero parent
		"00-" + strings.Repeat("g", 32) + "-0000000000000001-01", // non-hex trace id
	}
	for _, s := range bad {
		if _, _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) = ok, want rejection", s)
		}
	}
	// Forward compatibility: a future version byte and trailing fields parse.
	if _, _, ok := ParseTraceparent("cc-" + strings.Repeat("a", 32) + "-00000000000000ff-01-future"); !ok {
		t.Error("future-version traceparent must parse")
	}
}

func TestRequestTracerAdoptsTraceID(t *testing.T) {
	rt := NewRequestTracer()
	rt.SetTraceID("abcdefabcdefabcdefabcdefabcdef12")
	if rt.TraceID() != "abcdefabcdefabcdefabcdefabcdef12" {
		t.Fatalf("SetTraceID not adopted: %q", rt.TraceID())
	}
	rt.SetTraceID("")
	if rt.TraceID() != "abcdefabcdefabcdefabcdefabcdef12" {
		t.Fatal("SetTraceID(\"\") must be a no-op")
	}
}

// TestRequestTracerCapturesSubtreeWhileGlobalOff is the worker-side
// contract: with process-wide tracing disabled, a request tracer still
// captures the whole subtree rooted at StartRoot, because children join
// their parent's tracer through the context.
func TestRequestTracerCapturesSubtreeWhileGlobalOff(t *testing.T) {
	if TracingEnabled() {
		t.Fatal("tracing must be disabled for this test")
	}
	rt := NewRequestTracer()
	ctx, root := rt.StartRoot(context.Background(), "worker.eval")
	cctx, child := Start(ctx, "dse.candidate")
	Event(cctx, "checkpoint")
	child.End()
	root.End()

	spans := rt.WireSpans()
	if len(spans) != 3 {
		t.Fatalf("captured %d spans, want 3", len(spans))
	}
	byPath := map[string]WireSpan{}
	for _, ws := range spans {
		byPath[ws.Path] = ws
	}
	rootWS := byPath["worker.eval"]
	childWS := byPath["worker.eval/dse.candidate"]
	evWS := byPath["worker.eval/dse.candidate/checkpoint"]
	if rootWS.Parent != 0 {
		t.Errorf("root parent = %d, want 0", rootWS.Parent)
	}
	if childWS.Parent != rootWS.ID {
		t.Errorf("child parent = %d, want root id %d", childWS.Parent, rootWS.ID)
	}
	if evWS.Parent != childWS.ID || !evWS.Instant {
		t.Errorf("instant event parent=%d instant=%v, want parent=%d instant=true",
			evWS.Parent, evWS.Instant, childWS.ID)
	}
}

// TestGraftMergesRemoteSubtree: a worker subtree serialized with WireSpans
// grafts under a coordinator span with remapped ids, prefixed paths, and
// timestamps re-based onto the coordinator span's start — the clock-skew-
// immune merge contract documented in DESIGN.md §12.
func TestGraftMergesRemoteSubtree(t *testing.T) {
	// Worker side: epoch-relative capture with a deterministic clock.
	wrt := NewRequestTracer()
	wepoch := time.Unix(5000, 0) // a wildly different wall clock
	wrt.epoch = wepoch
	wrt.now = fakeClock(wepoch, 100*time.Microsecond)
	wctx, wroot := wrt.StartRoot(context.Background(), "worker.eval") // t=0
	_, cand := Start(wctx, "dse.candidate")                           // t=100µs
	cand.End()                                                        // t=200µs
	wroot.End()                                                       // t=300µs
	wire := wrt.WireSpans()

	// Coordinator side.
	tr := StartTracing()
	defer StopTracing()
	epoch := time.Unix(1000, 0)
	tr.epoch = epoch
	tr.now = fakeClock(epoch, time.Millisecond)
	ctx, disp := Start(context.Background(), "fleet.dispatch") // t=0
	_, eval := Start(ctx, "fleet.eval")                        // t=1ms
	eval.Graft(wire)
	eval.End() // t=2ms
	disp.End() // t=3ms

	spans := tr.WireSpans()
	byPath := map[string]WireSpan{}
	for _, ws := range spans {
		byPath[ws.Path] = ws
	}
	evalWS := byPath["fleet.dispatch/fleet.eval"]
	rootWS, ok := byPath["fleet.dispatch/fleet.eval/worker.eval"]
	if !ok {
		t.Fatalf("grafted root missing; have %v", pathsOf(spans))
	}
	candWS, ok := byPath["fleet.dispatch/fleet.eval/worker.eval/dse.candidate"]
	if !ok {
		t.Fatalf("grafted child missing; have %v", pathsOf(spans))
	}
	if rootWS.Parent != evalWS.ID {
		t.Errorf("grafted root parent = %d, want fleet.eval id %d", rootWS.Parent, evalWS.ID)
	}
	if candWS.Parent != rootWS.ID {
		t.Errorf("grafted child parent = %d, want grafted root id %d", candWS.Parent, rootWS.ID)
	}
	// Re-based times: worker t=0 lands at fleet.eval's start (1ms), and the
	// worker's own wall clock (epoch 5000s) never leaks in.
	if rootWS.StartNS != evalWS.StartNS {
		t.Errorf("grafted root starts at %dns, want fleet.eval start %dns", rootWS.StartNS, evalWS.StartNS)
	}
	if candWS.StartNS != evalWS.StartNS+100_000 {
		t.Errorf("grafted child starts at %dns, want %dns", candWS.StartNS, evalWS.StartNS+100_000)
	}
	// The merged tracer still exports valid Chrome-trace JSON.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("merged trace is not valid JSON")
	}
}

func TestGraftNilSafe(t *testing.T) {
	var sp *Span
	sp.Graft([]WireSpan{{ID: 1, Name: "x", Path: "x"}}) // must not panic
}

func pathsOf(spans []WireSpan) []string {
	var out []string
	for _, ws := range spans {
		out = append(out, ws.Path)
	}
	return out
}
