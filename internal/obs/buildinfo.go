package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Build identity, sourced from runtime/debug.ReadBuildInfo: the module
// version stamped by `go install`, plus the VCS revision and dirty flag
// embedded by `go build` inside a git checkout. It feeds the -version flag
// on every CLI and the neurometer_build_info gauge (the Prometheus idiom:
// a constant-1 gauge whose labels carry the build identity, joinable
// against every other series from the process).

// BuildInfo is the resolved build identity of the running binary.
type BuildInfo struct {
	Version   string // module version ("(devel)" for plain `go build`)
	Revision  string // VCS revision, "" when built outside a checkout
	Dirty     bool   // VCS working tree had local modifications
	GoVersion string // Go toolchain that built the binary
}

var buildInfoOnce = sync.OnceValue(func() BuildInfo {
	b := BuildInfo{Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if bi.Main.Version != "" {
		b.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
})

// ReadBuildInfo returns the binary's build identity (cached after the
// first call).
func ReadBuildInfo() BuildInfo { return buildInfoOnce() }

// String renders the identity as the one-line -version output, e.g.
// "neurometer (devel) rev 1a2b3c4d (modified) go1.22.0".
func (b BuildInfo) String() string {
	s := "neurometer " + b.Version
	if b.Revision != "" {
		rev := b.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if b.Dirty {
			s += " (modified)"
		}
	}
	return s + " " + b.GoVersion
}

// RegisterBuildInfo publishes the build_info gauge: constant 1 with the
// identity in its labels. Idempotent; every entry point (CLI Setup, serve
// New) calls it so the gauge is present wherever /metricz or -metrics can
// be observed.
func RegisterBuildInfo() {
	b := ReadBuildInfo()
	rev := b.Revision
	if rev == "" {
		rev = "unknown"
	}
	NewGauge(Name("build_info",
		"version", b.Version,
		"revision", rev,
		"goversion", b.GoVersion,
		"modified", fmt.Sprintf("%t", b.Dirty),
	)).Set(1)
}
