package obs

import (
	"sync"
	"testing"
)

func TestGaugeAddConcurrent(t *testing.T) {
	g := NewGauge("test.gauge_add_concurrent")
	g.Set(10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 10 {
		t.Fatalf("gauge = %v after balanced concurrent adds, want 10", got)
	}
}

func TestGaugeAddNilSafe(t *testing.T) {
	var g *Gauge
	g.Add(1) // must not panic
}
