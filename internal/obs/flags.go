package obs

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags bundles the standard observability flags a NeuroMeter CLI exposes.
// Register them on a FlagSet with RegisterFlags, then call Setup after
// flag.Parse; the returned stop function flushes profiles, writes the
// Chrome trace, and renders the metrics snapshot. Call it before exiting
// (and after the work's root span has ended).
type Flags struct {
	CPUProfile string // -cpuprofile: pprof CPU profile path
	MemProfile string // -memprofile: pprof heap profile path
	Trace      string // -trace: Chrome trace-event JSON path
	Metrics    bool   // -metrics: print the metrics snapshot on exit
	Verbose    bool   // -v: debug logging (span-aware handler on stderr)
	Version    bool   // -version: print the build identity and exit
}

// RegisterFlags adds the observability flags to fs (use flag.CommandLine
// for a CLI's main flag set).
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to `file`")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to `file` on exit")
	fs.StringVar(&f.Trace, "trace", "", "write a Chrome trace-event JSON (chrome://tracing, Perfetto) to `file`")
	fs.BoolVar(&f.Metrics, "metrics", false, "print the metrics snapshot on exit")
	fs.BoolVar(&f.Verbose, "v", false, "verbose: debug-level, span-aware logging on stderr")
	fs.BoolVar(&f.Version, "version", false, "print version and build information, then exit")
	return f
}

// Setup activates whatever the parsed flags ask for: the span tracer, the
// CPU profiler, and debug logging. The returned stop function finalizes
// everything; it is safe to call exactly once.
func (f *Flags) Setup() (stop func(), err error) {
	if f.Version {
		fmt.Println(ReadBuildInfo().String())
		os.Exit(0)
	}
	RegisterBuildInfo()
	level := slog.LevelInfo
	if f.Verbose {
		level = slog.LevelDebug
	}
	slog.SetDefault(slog.New(NewLogHandler(os.Stderr, level)))

	var cpuFile *os.File
	if f.CPUProfile != "" {
		cpuFile, err = os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: -cpuprofile: %w", err)
		}
	}
	if f.Trace != "" {
		StartTracing()
	}

	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if f.Trace != "" {
			if t := StopTracing(); t != nil {
				if err := writeTraceFile(f.Trace, t); err != nil {
					fmt.Fprintf(os.Stderr, "obs: %v\n", err)
				} else {
					fmt.Fprintf(os.Stderr, "obs: wrote Chrome trace to %s (load in chrome://tracing or ui.perfetto.dev)\n", f.Trace)
				}
				fmt.Fprint(os.Stderr, t.Profile())
			}
		}
		if f.MemProfile != "" {
			if err := writeHeapProfile(f.MemProfile); err != nil {
				fmt.Fprintf(os.Stderr, "obs: %v\n", err)
			}
		}
		if f.Metrics {
			UpdateRuntimeMetrics()
			fmt.Fprint(os.Stderr, Default().Snapshot().Text())
		}
	}, nil
}

func writeTraceFile(path string, t *Tracer) error {
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("-trace: %w", err)
	}
	defer out.Close()
	if err := t.WriteChromeTrace(out); err != nil {
		return fmt.Errorf("-trace: %w", err)
	}
	return out.Close()
}

func writeHeapProfile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("-memprofile: %w", err)
	}
	defer out.Close()
	runtime.GC() // up-to-date allocation statistics
	if err := pprof.WriteHeapProfile(out); err != nil {
		return fmt.Errorf("-memprofile: %w", err)
	}
	return out.Close()
}
