package guard

// productionSites is the canonical fault-site registry: every site string
// passed to Inject or CorruptFloat from production (non-test) code, in
// evaluation order. doc.go documents each site's placement and blast
// radius; doc_test.go cross-checks this list against the tree, so a new
// injection point must be added here (and documented) to compile a green
// build. The chaos engine (internal/chaos) draws schedule events from
// this list, which is what makes its coverage claim — "every production
// fault site is reachable from a generated schedule" — checkable.
var productionSites = []string{
	"chip.build",
	"perfsim.simulate",
	"perfsim.layer",
	"perfsim.achieved_tops",
	"dse.candidate",
	"fleet.shard",
	"fleet.heartbeat",
	"fleet.register",
	"rstore.read",
	"rstore.write",
	"rstore.scan",
}

// Sites returns the canonical production fault-site registry as a fresh
// copy, in evaluation order.
func Sites() []string {
	out := make([]string, len(productionSites))
	copy(out, productionSites)
	return out
}
