package guard_test

import (
	"context"
	"errors"
	"fmt"

	"neurometer/internal/guard"
)

// Every model error wraps exactly one taxonomy sentinel, so callers
// classify with Kind / errors.Is and retry only what Retryable allows.
func ExampleKind() {
	err := guard.Invalid("tile grid %dx%d exceeds the die", 16, 16)
	fmt.Println(guard.Kind(err), guard.Retryable(err))

	stalled := fmt.Errorf("candidate stalled: %w", guard.ErrTimeout)
	fmt.Println(guard.Kind(stalled), guard.Retryable(stalled))
	// Output:
	// invalid-config false
	// timeout true
}

// CtxErr is the sweeps' single idiom for "has this run been interrupted,
// and how": nil while live, a classified taxonomy error afterwards.
func ExampleCtxErr() {
	ctx, cancel := context.WithCancel(context.Background())
	fmt.Println(guard.CtxErr(ctx))
	cancel()
	fmt.Println(errors.Is(guard.CtxErr(ctx), guard.ErrCanceled))
	// Output:
	// <nil>
	// true
}

// CheckFinite keeps NaN/Inf out of frontiers and reports: finite values
// pass, anything else becomes a classified ErrNonFinite.
func ExampleCheckFinite() {
	fmt.Println(guard.CheckFinite("power_w", 12.5))

	var nan float64
	nan /= nan
	fmt.Println(errors.Is(guard.CheckFinite("power_w", nan), guard.ErrNonFinite))
	// Output:
	// <nil>
	// true
}
