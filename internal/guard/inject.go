package guard

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"neurometer/internal/obs"
)

// Deterministic fault injection.
//
// Instrumented code declares named sites — Inject at control-flow points,
// CorruptFloat at value-producing points. Production runs pay one atomic
// load per site visit (armed is zero, nothing else executes). Tests arm
// faults with Arm and drive exactly the Nth visit of a site into a panic,
// a delay, an error, or a NaN, proving the corresponding recovery path
// end to end without randomness.

// Fault describes what happens when an armed site is hit.
type Fault struct {
	// Skip ignores the first Skip hits of the site; the fault fires on
	// hit Skip+1. Deterministic targeting of "the third candidate".
	Skip int
	// Count limits how many times the fault fires (0 = every hit after
	// Skip).
	Count int

	// Panic makes the site panic with a recognizable value.
	Panic bool
	// Delay makes the site sleep (context-aware: an expired ctx cuts the
	// sleep short and surfaces through the site's error return).
	Delay time.Duration
	// Err makes the site return this error.
	Err error
	// NaN makes CorruptFloat replace the site's value with NaN.
	NaN bool
	// OnHit, when non-nil, runs synchronously as the fault fires (after
	// Delay, before Panic/Err). Tests use it to cancel contexts or take
	// snapshots at an exact, reproducible point in a sweep.
	OnHit func()
}

// armedFault is a Fault plus its hit accounting.
type armedFault struct {
	Fault
	hits  int // site visits observed
	fired int // times the fault actually fired
}

var (
	// armed is the fast-path gate: number of sites with faults armed.
	armed atomic.Int32

	injectMu sync.Mutex
	faults   map[string]*armedFault

	// mFaults counts fired faults in the obs default registry.
	mFaults = obs.NewCounter("guard.faults_injected")
)

// Arm installs a fault at the named site and returns a disarm func.
// Arming a site replaces any fault already installed there. Safe for
// concurrent use with site hits; tests normally defer the disarm.
func Arm(site string, f Fault) (disarm func()) {
	injectMu.Lock()
	defer injectMu.Unlock()
	if faults == nil {
		faults = map[string]*armedFault{}
	}
	if _, exists := faults[site]; !exists {
		armed.Add(1)
	}
	faults[site] = &armedFault{Fault: f}
	return func() { Disarm(site) }
}

// Armed reports whether any fault is currently armed at any site. Caching
// layers (chip.BuildCached) consult it to bypass memoization while faults
// are live, so a cached result can never swallow an injected failure and
// hit-count targeting ("fire on the Nth visit") stays deterministic.
func Armed() bool { return armed.Load() > 0 }

// Disarm removes the fault at the named site, if any.
func Disarm(site string) {
	injectMu.Lock()
	defer injectMu.Unlock()
	if _, exists := faults[site]; exists {
		delete(faults, site)
		armed.Add(-1)
	}
}

// DisarmAll removes every armed fault (test cleanup).
func DisarmAll() {
	injectMu.Lock()
	defer injectMu.Unlock()
	armed.Add(-int32(len(faults)))
	faults = nil
}

// take records a hit at site and returns a copy of the fault iff it fires
// on this hit.
func take(site string) (Fault, bool) {
	injectMu.Lock()
	defer injectMu.Unlock()
	af, ok := faults[site]
	if !ok {
		return Fault{}, false
	}
	af.hits++
	if af.hits <= af.Skip {
		return Fault{}, false
	}
	if af.Count > 0 && af.fired >= af.Count {
		return Fault{}, false
	}
	af.fired++
	return af.Fault, true
}

// Inject is a fault-injection site for control flow. With no fault armed
// it costs one atomic load. When the armed fault fires it sleeps Delay
// (bounded by ctx), runs OnHit, then panics or returns the fault error;
// an expired ctx during the delay returns the classified context error.
// A nil ctx is treated as background.
func Inject(ctx context.Context, site string) error {
	if armed.Load() == 0 {
		return nil
	}
	f, fire := take(site)
	if !fire {
		return nil
	}
	mFaults.Inc()
	if f.Delay > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		t := time.NewTimer(f.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			if f.OnHit != nil {
				f.OnHit()
			}
			return CtxErr(ctx)
		}
	}
	if f.OnHit != nil {
		f.OnHit()
	}
	if f.Panic {
		panic(fmt.Sprintf("guard: injected panic at site %q", site))
	}
	return f.Err
}

// CorruptFloat is a fault-injection site for values: it returns v, or NaN
// when the armed fault (with NaN set) fires. With no fault armed it costs
// one atomic load.
func CorruptFloat(site string, v float64) float64 {
	if armed.Load() == 0 {
		return v
	}
	f, fire := take(site)
	if !fire || !f.NaN {
		return v
	}
	mFaults.Inc()
	return math.NaN()
}
