package guard

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"neurometer/internal/obs"
)

// Deterministic fault injection.
//
// Instrumented code declares named sites — Inject at control-flow points,
// CorruptFloat at value-producing points. Production runs pay one atomic
// load per site visit (armed is zero, nothing else executes). Tests arm
// faults with Arm and drive exactly the Nth visit of a site into a panic,
// a delay, an error, or a NaN, proving the corresponding recovery path
// end to end without randomness. Schedule-driven tests (the chaos engine)
// arm a whole Plan at once: multiple faults across multiple sites, each
// deterministically targeted by hit count or by a seeded RNG.

// Fault describes what happens when an armed site is hit.
type Fault struct {
	// Skip ignores the first Skip hits of the site; the fault fires on
	// hit Skip+1. Deterministic targeting of "the third candidate".
	Skip int
	// Count limits how many times the fault fires (0 = every hit after
	// Skip).
	Count int

	// Panic makes the site panic with a recognizable value.
	Panic bool
	// Delay makes the site sleep (context-aware: an expired ctx cuts the
	// sleep short and surfaces through the site's error return).
	Delay time.Duration
	// Err makes the site return this error.
	Err error
	// NaN makes CorruptFloat replace the site's value with NaN.
	NaN bool
	// OnHit, when non-nil, runs synchronously as the fault fires (after
	// Delay, before Panic/Err). Tests use it to cancel contexts or take
	// snapshots at an exact, reproducible point in a sweep.
	OnHit func()
}

// PlanFault is one fault of a Plan: a Fault bound to a site, optionally
// armed probabilistically.
type PlanFault struct {
	// Site names the injection site this fault attaches to.
	Site string
	Fault
	// Prob, when in (0, 1), makes each otherwise-eligible hit fire with
	// this probability, decided by the plan's seeded RNG. The draw
	// sequence is serialized with hit accounting, so the number of hits
	// that fire is a pure function of (Seed, hit count) — probabilistic
	// arming stays replayable. 0 (and anything >= 1) means deterministic.
	Prob float64
}

// Plan is a schedule of faults across many sites, armed as one unit. The
// chaos engine (internal/chaos) generates Plans from seeded schedules so
// one episode can weave faults across layers; plain tests can also use it
// to arm several sites without stacking individual Arm calls.
type Plan struct {
	// Seed drives every probabilistic fault in the plan.
	Seed int64
	// Faults are armed in order. A site's first fault in the plan
	// replaces whatever was armed there (Arm semantics); subsequent
	// faults for the same site stack behind it and are consulted in plan
	// order on each hit.
	Faults []PlanFault
}

// armedFault is a Fault plus its arming mode and firing account.
type armedFault struct {
	Fault
	prob  float64    // (0,1) when probabilistic
	rng   *rand.Rand // non-nil iff probabilistic
	fired int        // times this fault actually fired
}

// siteState is one site's armed faults plus its shared hit counter. Skip
// is measured against the site's hits (visits), not against any single
// fault's, so "fire on the Nth visit" means the same thing whether the
// fault was armed alone or as part of a plan.
type siteState struct {
	hits int
	list []*armedFault
}

var (
	// armed is the fast-path gate: number of sites with faults armed.
	armed atomic.Int32

	injectMu sync.Mutex
	faults   map[string]*siteState

	// mFaults counts fired faults in the obs default registry.
	mFaults = obs.NewCounter("guard.faults_injected")
)

// armLocked installs af at site; callers hold injectMu. replace resets the
// site (hit counter and fault list) first, preserving Arm's historical
// replace semantics.
func armLocked(site string, af *armedFault, replace bool) {
	if faults == nil {
		faults = map[string]*siteState{}
	}
	st, exists := faults[site]
	if !exists {
		armed.Add(1)
		st = &siteState{}
		faults[site] = st
	}
	if replace {
		st.hits = 0
		st.list = st.list[:0]
	}
	st.list = append(st.list, af)
}

// Arm installs a fault at the named site and returns a disarm func.
// Arming a site replaces any fault (or plan slice) already installed
// there. Safe for concurrent use with site hits; tests normally defer the
// disarm.
func Arm(site string, f Fault) (disarm func()) {
	injectMu.Lock()
	defer injectMu.Unlock()
	armLocked(site, &armedFault{Fault: f}, true)
	return func() { Disarm(site) }
}

// ArmPlan arms every fault of the plan and returns a disarm func covering
// all of the plan's sites. Probabilistic faults get independent RNG
// streams derived from Plan.Seed and their position, so adding a fault to
// a plan never perturbs the draws of the others.
func ArmPlan(p Plan) (disarm func()) {
	injectMu.Lock()
	replaced := map[string]bool{}
	for i, pf := range p.Faults {
		af := &armedFault{Fault: pf.Fault}
		if pf.Prob > 0 && pf.Prob < 1 {
			af.prob = pf.Prob
			af.rng = rand.New(rand.NewSource(p.Seed ^ (int64(i)+1)*-0x61C8864680B583EB))
		}
		armLocked(pf.Site, af, !replaced[pf.Site])
		replaced[pf.Site] = true
	}
	injectMu.Unlock()
	sites := make([]string, 0, len(replaced))
	for site := range replaced {
		sites = append(sites, site)
	}
	return func() {
		for _, site := range sites {
			Disarm(site)
		}
	}
}

// SiteStats is one armed site's hit accounting.
type SiteStats struct {
	// Hits counts site visits since arming.
	Hits int
	// Fired counts visits on which some armed fault actually fired.
	Fired int
}

// Stats snapshots the hit accounting of every currently armed site. Hit
// counting is serialized under the injection lock, so counts are exact
// even when parallel workers hammer the same site.
func Stats() map[string]SiteStats {
	injectMu.Lock()
	defer injectMu.Unlock()
	out := make(map[string]SiteStats, len(faults))
	for site, st := range faults {
		s := SiteStats{Hits: st.hits}
		for _, af := range st.list {
			s.Fired += af.fired
		}
		out[site] = s
	}
	return out
}

// Armed reports whether any fault is currently armed at any site. Caching
// layers (chip.BuildCached) consult it to bypass memoization while faults
// are live, so a cached result can never swallow an injected failure and
// hit-count targeting ("fire on the Nth visit") stays deterministic.
func Armed() bool { return armed.Load() > 0 }

// Disarm removes every fault at the named site, if any.
func Disarm(site string) {
	injectMu.Lock()
	defer injectMu.Unlock()
	if _, exists := faults[site]; exists {
		delete(faults, site)
		armed.Add(-1)
	}
}

// DisarmAll removes every armed fault (test cleanup).
func DisarmAll() {
	injectMu.Lock()
	defer injectMu.Unlock()
	armed.Add(-int32(len(faults)))
	faults = nil
}

// take records a hit at site and returns a copy of the first armed fault
// that fires on this hit, consulting the site's faults in arming order.
func take(site string) (Fault, bool) {
	injectMu.Lock()
	defer injectMu.Unlock()
	st, ok := faults[site]
	if !ok {
		return Fault{}, false
	}
	st.hits++
	for _, af := range st.list {
		if st.hits <= af.Skip {
			continue
		}
		if af.Count > 0 && af.fired >= af.Count {
			continue
		}
		if af.rng != nil && af.rng.Float64() >= af.prob {
			continue
		}
		af.fired++
		return af.Fault, true
	}
	return Fault{}, false
}

// Inject is a fault-injection site for control flow. With no fault armed
// it costs one atomic load. When the armed fault fires it sleeps Delay
// (bounded by ctx), runs OnHit, then panics or returns the fault error;
// an expired ctx during the delay returns the classified context error.
// A nil ctx is treated as background.
func Inject(ctx context.Context, site string) error {
	if armed.Load() == 0 {
		return nil
	}
	f, fire := take(site)
	if !fire {
		return nil
	}
	mFaults.Inc()
	if f.Delay > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		t := time.NewTimer(f.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			if f.OnHit != nil {
				f.OnHit()
			}
			return CtxErr(ctx)
		}
	}
	if f.OnHit != nil {
		f.OnHit()
	}
	if f.Panic {
		panic(fmt.Sprintf("guard: injected panic at site %q", site))
	}
	return f.Err
}

// CorruptFloat is a fault-injection site for values: it returns v, or NaN
// when the armed fault (with NaN set) fires. With no fault armed it costs
// one atomic load.
func CorruptFloat(site string, v float64) float64 {
	if armed.Load() == 0 {
		return v
	}
	f, fire := take(site)
	if !fire || !f.NaN {
		return v
	}
	mFaults.Inc()
	return math.NaN()
}
