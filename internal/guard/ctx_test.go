package guard

import (
	"context"
	"errors"
	"testing"
	"time"
)

// The serving layer maps guard.CtxErr onto HTTP statuses (504 vs 499), so
// which taxonomy kind wins under nested contexts is a contract, not an
// accident. These tests pin it down: the first cause to terminate the
// context chain wins — an expired deadline anywhere in the chain surfaces
// as ErrTimeout, an explicit cancel anywhere surfaces as ErrCanceled —
// regardless of nesting order.

// expired returns a context whose own deadline has already passed.
func expired(parent context.Context, t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(parent, time.Nanosecond)
	t.Cleanup(cancel)
	<-ctx.Done()
	return ctx
}

func TestCtxErrLiveContext(t *testing.T) {
	if err := CtxErr(context.Background()); err != nil {
		t.Fatalf("live context: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if err := CtxErr(ctx); err != nil {
		t.Fatalf("unexpired deadline: %v", err)
	}
}

func TestCtxErrDeadlineInsideCancel(t *testing.T) {
	// cancel(live) > deadline(expired): the inner deadline terminates the
	// chain first, so the leaf classifies as timeout.
	outer, cancel := context.WithCancel(context.Background())
	defer cancel()
	inner := expired(outer, t)
	if err := CtxErr(inner); !errors.Is(err, ErrTimeout) {
		t.Fatalf("inner deadline must win as timeout, got %v", err)
	}
}

func TestCtxErrCancelInsideDeadline(t *testing.T) {
	// deadline(long, live) > cancel(fired): the explicit cancel terminates
	// first and wins as canceled even though a deadline encloses it.
	outer, outerCancel := context.WithTimeout(context.Background(), time.Hour)
	defer outerCancel()
	inner, cancel := context.WithCancel(outer)
	cancel()
	if err := CtxErr(inner); !errors.Is(err, ErrCanceled) {
		t.Fatalf("explicit cancel must win as canceled, got %v", err)
	}
}

func TestCtxErrOuterDeadlinePropagatesThroughCancel(t *testing.T) {
	// deadline(expired) > cancel(never fired) > deadline(long): the outer
	// expiry propagates through the untouched middle cancel and the inner
	// longer deadline, and still classifies as timeout at the leaf.
	outer := expired(context.Background(), t)
	mid, midCancel := context.WithCancel(outer)
	defer midCancel()
	inner, innerCancel := context.WithTimeout(mid, time.Hour)
	defer innerCancel()
	<-inner.Done()
	if err := CtxErr(inner); !errors.Is(err, ErrTimeout) {
		t.Fatalf("propagated outer deadline must classify as timeout, got %v", err)
	}
}

func TestCtxErrCancelBeatsPendingDeadlines(t *testing.T) {
	// deadline(long) > cancel(fired) > deadline(long): with both deadlines
	// still pending, the explicit cancel is the terminating cause — the
	// serve layer reports 499 (client went away), not 504.
	outer, outerCancel := context.WithTimeout(context.Background(), time.Hour)
	defer outerCancel()
	mid, midCancel := context.WithCancel(outer)
	inner, innerCancel := context.WithTimeout(mid, time.Hour)
	defer innerCancel()
	midCancel()
	<-inner.Done()
	if err := CtxErr(inner); !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancel must beat pending deadlines, got %v", err)
	}
}

func TestClassifyNestedKinds(t *testing.T) {
	// Classify must agree with CtxErr's verdicts when handed the raw
	// context causes, and Kind must name them the way the serve layer's
	// status mapping expects.
	if k := Kind(Classify(context.DeadlineExceeded)); k != "timeout" {
		t.Fatalf("DeadlineExceeded classifies as %q, want timeout", k)
	}
	if k := Kind(Classify(context.Canceled)); k != "canceled" {
		t.Fatalf("Canceled classifies as %q, want canceled", k)
	}
	// Already-classified errors pass through unchanged: double
	// classification must not re-wrap.
	err := Classify(context.Canceled)
	if again := Classify(err); !errors.Is(again, ErrCanceled) || again.Error() != err.Error() {
		t.Fatalf("double Classify changed the error: %v vs %v", again, err)
	}
}
