package guard

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestBackoffDelayBands checks the full-jitter contract: every delay for
// attempt n lies in [0, min(Max, Base<<n)], and the cap stops growing at
// Max.
func TestBackoffDelayBands(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond}
	caps := []time.Duration{
		10 * time.Millisecond, // attempt 0
		20 * time.Millisecond,
		40 * time.Millisecond,
		40 * time.Millisecond, // clamped at Max
		40 * time.Millisecond,
	}
	for attempt, want := range caps {
		for i := 0; i < 200; i++ {
			d := b.Delay(attempt)
			if d < 0 || d > want {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, want)
			}
		}
	}
	if d := b.Delay(-3); d < 0 || d > caps[0] {
		t.Fatalf("negative attempt: delay %v outside [0, %v]", d, caps[0])
	}
}

// TestBackoffDelayJitters checks the delays are actually dithered — a
// degenerate constant delay would re-synchronize retry storms.
func TestBackoffDelayJitters(t *testing.T) {
	b := Backoff{Base: time.Second, Max: time.Second}
	seen := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		seen[b.Delay(0)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("50 draws produced %d distinct delays, want jitter", len(seen))
	}
}

// TestBackoffDefaults checks the zero value is usable with the documented
// defaults.
func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	for i := 0; i < 100; i++ {
		if d := b.Delay(0); d < 0 || d > defaultBackoffBase {
			t.Fatalf("zero-value delay %v outside [0, %v]", d, defaultBackoffBase)
		}
		if d := b.Delay(100); d < 0 || d > defaultBackoffMax {
			t.Fatalf("late-attempt delay %v outside [0, %v]", d, defaultBackoffMax)
		}
	}
}

// TestBackoffSleepHonorsContext checks a canceled ctx cuts the sleep short
// with the classified cause.
func TestBackoffSleepHonorsContext(t *testing.T) {
	b := Backoff{Base: time.Hour, Max: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already-dead ctx: the hour-scale sleep must not start
	start := time.Now()
	err := b.Sleep(ctx, 20)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Sleep under cancellation = %v, want ErrCanceled", err)
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("Sleep did not cut short: %v", since)
	}
}
