package guard

import (
	"errors"
	"fmt"
	"net/http"
	"testing"
)

func TestHTTPStatus(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, http.StatusOK},
		{Invalid("bad tx"), http.StatusBadRequest},
		{Infeasible("timing"), http.StatusUnprocessableEntity},
		{NonFinite("area_mm2", 0), http.StatusInternalServerError},
		{fmt.Errorf("candidate: %w", ErrTimeout), http.StatusGatewayTimeout},
		{fmt.Errorf("sweep: %w", ErrCanceled), StatusClientClosedRequest},
		{fmt.Errorf("eval: %w", ErrCandidatePanic), http.StatusInternalServerError},
		{errors.New("plain"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.want {
			t.Errorf("HTTPStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{fmt.Errorf("run: %w", ErrCanceled), 130},
		{Invalid("bad flag"), 2},
		{Infeasible("no feasible clock"), 2},
		{fmt.Errorf("eval: %w", ErrTimeout), 1},
		{fmt.Errorf("eval: %w", ErrCandidatePanic), 1},
		{errors.New("plain"), 1},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// An error wrapping both a cancel and a config failure maps by the first
// taxonomy match — invalid-config — in HTTPStatus, ExitCode, and Kind
// alike, so the three projections can never disagree about a failure.
func TestProjectionsAgreeOnJoinedErrors(t *testing.T) {
	err := errors.Join(Invalid("x"), ErrCanceled)
	if k := Kind(err); k != "invalid-config" {
		t.Fatalf("Kind = %q", k)
	}
	if s := HTTPStatus(err); s != http.StatusBadRequest {
		t.Fatalf("HTTPStatus = %d", s)
	}
	if c := ExitCode(err); c != 2 {
		t.Fatalf("ExitCode = %d", c)
	}
}
