package guard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"strings"

	"neurometer/internal/obs"
)

// Observability: recovery-path counters in the obs default registry. Every
// failure mode the sweeps absorb is visible under the CLIs' -metrics flag.
var (
	mPanics    = obs.NewCounter("guard.panics_recovered")
	mNonFinite = obs.NewCounter("guard.nonfinite_rejected")
)

// The failure taxonomy. Model packages wrap these with context via the
// constructor helpers below; callers classify with errors.Is.
var (
	// ErrInvalidConfig marks a configuration the model refuses to
	// evaluate: missing required fields, out-of-range parameters,
	// non-finite inputs. Never retryable.
	ErrInvalidConfig = errors.New("invalid config")

	// ErrInfeasible marks a well-formed configuration with no feasible
	// implementation: timing cannot close, budgets are exceeded, the
	// memory optimizer finds no organization. Never retryable.
	ErrInfeasible = errors.New("infeasible")

	// ErrNonFinite marks a model output rejected because it contained
	// NaN or Inf. Such values must never reach frontiers, winners, or
	// CSV output. Never retryable.
	ErrNonFinite = errors.New("non-finite result")

	// ErrTimeout marks an evaluation that exceeded its deadline.
	// Retryable: sweeps may re-attempt a timed-out candidate under the
	// bounded-retry policy.
	ErrTimeout = errors.New("timeout")

	// ErrCanceled marks an evaluation aborted because the whole run was
	// canceled (SIGINT, parent context). Never retryable: the sweep is
	// shutting down.
	ErrCanceled = errors.New("canceled")

	// ErrCandidatePanic marks a panicking evaluation converted to an
	// error by RecoverTo. Never retryable: panics are deterministic
	// model bugs, not transient conditions.
	ErrCandidatePanic = errors.New("candidate panicked")

	// ErrUnavailable marks a transient infrastructure failure: a remote
	// worker that refused the connection, shed the request, or died
	// mid-evaluation. The work itself is fine — somewhere else, or later,
	// it will succeed — so it is retryable under the bounded-backoff
	// policy.
	ErrUnavailable = errors.New("unavailable")

	// ErrCorrupt marks persisted state that failed integrity verification:
	// a result-store entry with a bad checksum, a torn write, a foreign
	// format version, or a payload that deserializes to something other
	// than what its fingerprint promises. Never retryable — rereading the
	// same bytes cannot fix them — and never fatal: every consumer of
	// persisted state treats ErrCorrupt as "this copy does not exist"
	// (quarantine it, recompute the result).
	ErrCorrupt = errors.New("corrupt data")
)

// Invalid returns an ErrInvalidConfig-wrapping error with a formatted
// message.
func Invalid(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidConfig, fmt.Sprintf(format, args...))
}

// Infeasible returns an ErrInfeasible-wrapping error with a formatted
// message.
func Infeasible(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInfeasible, fmt.Sprintf(format, args...))
}

// NonFinite returns an ErrNonFinite-wrapping error naming the offending
// quantity, and counts the rejection.
func NonFinite(name string, v float64) error {
	mNonFinite.Inc()
	return fmt.Errorf("%w: %s = %v", ErrNonFinite, name, v)
}

// Classify maps context errors onto the taxonomy: DeadlineExceeded becomes
// ErrTimeout, Canceled becomes ErrCanceled. Other errors (including nil)
// pass through unchanged.
func Classify(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %v", ErrCanceled, err)
	}
	return err
}

// CtxErr returns the classified context error, or nil when ctx is live.
// Model loops call it between units of work so per-candidate deadlines and
// SIGINT cancellation interrupt long evaluations promptly.
func CtxErr(ctx context.Context) error {
	return Classify(context.Cause(ctx))
}

// Unavailable returns an ErrUnavailable-wrapping error with a formatted
// message.
func Unavailable(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrUnavailable, fmt.Sprintf(format, args...))
}

// Corrupt returns an ErrCorrupt-wrapping error with a formatted message.
func Corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Retryable reports whether a failure is worth re-attempting under the
// sweeps' bounded-retry policy: timeouts and transient unavailability
// qualify — config, feasibility, non-finite and panic failures are
// deterministic.
func Retryable(err error) bool {
	return errors.Is(err, ErrTimeout) || errors.Is(err, ErrUnavailable)
}

// Kind names the taxonomy class of err for structured one-line CLI
// diagnostics ("invalid-config", "infeasible", "non-finite", "timeout",
// "canceled", "panic", "unavailable", "corrupt") or "error" for errors
// outside the taxonomy.
func Kind(err error) string {
	switch {
	case errors.Is(err, ErrInvalidConfig):
		return "invalid-config"
	case errors.Is(err, ErrInfeasible):
		return "infeasible"
	case errors.Is(err, ErrNonFinite):
		return "non-finite"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrCanceled):
		return "canceled"
	case errors.Is(err, ErrCandidatePanic):
		return "panic"
	case errors.Is(err, ErrUnavailable):
		return "unavailable"
	case errors.Is(err, ErrCorrupt):
		return "corrupt"
	}
	return "error"
}

// baseForKind inverts Kind: the taxonomy sentinel a kind string names, or
// nil for "error"/unknown kinds.
func baseForKind(kind string) error {
	switch kind {
	case "invalid-config":
		return ErrInvalidConfig
	case "infeasible":
		return ErrInfeasible
	case "non-finite":
		return ErrNonFinite
	case "timeout":
		return ErrTimeout
	case "canceled":
		return ErrCanceled
	case "panic":
		return ErrCandidatePanic
	case "unavailable":
		return ErrUnavailable
	case "corrupt":
		return ErrCorrupt
	}
	return nil
}

// kindError carries a reconstructed failure: the exact original message,
// classified under the taxonomy via errors.Is.
type kindError struct {
	base error
	msg  string
}

func (e *kindError) Error() string        { return e.msg }
func (e *kindError) Is(target error) bool { return target == e.base }

// KindError reconstructs a failure from its (kind, message) wire form —
// the shape checkpoints and the fleet protocol serialize — so that
// Kind(err) returns kind again, errors.Is classification works, and
// err.Error() is byte-identical to the original message (a failure that
// crosses a process boundary and is re-recorded must not mutate). Unknown
// kinds fall back to a plain error.
func KindError(kind, msg string) error {
	base := baseForKind(kind)
	if base == nil {
		return errors.New(msg)
	}
	return &kindError{base: base, msg: msg}
}

// CheckFinite returns an ErrNonFinite error when v is NaN or ±Inf, nil
// otherwise. name labels the quantity in the error message.
func CheckFinite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return NonFinite(name, v)
	}
	return nil
}

// CheckFinites validates a set of named quantities and reports the first
// non-finite one. Pairs alternate name, value:
//
//	guard.CheckFinites("area_mm2", a, "tdp_w", w)
func CheckFinites(pairs ...any) error {
	for i := 0; i+1 < len(pairs); i += 2 {
		name, _ := pairs[i].(string)
		v, ok := pairs[i+1].(float64)
		if !ok {
			return Invalid("CheckFinites: pair %d is %T, want float64", i/2, pairs[i+1])
		}
		if err := CheckFinite(name, v); err != nil {
			return err
		}
	}
	return nil
}

// RecoverTo converts an in-flight panic into an ErrCandidatePanic-wrapping
// error stored in *errp, preserving the panic value and a one-line origin.
// Use as a deferred call around one unit of sweep work:
//
//	func eval(...) (err error) {
//	    defer guard.RecoverTo(&err)
//	    ...
//	}
//
// The recovery is counted in the guard.panics_recovered metric. A nil errp
// converts the panic silently (still counted).
func RecoverTo(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	mPanics.Inc()
	if errp != nil {
		*errp = fmt.Errorf("%w: %v (at %s)", ErrCandidatePanic, r, panicOrigin())
	}
}

// panicOrigin extracts the topmost non-runtime frame of the recovered
// panic's stack for the one-line error message. The stack formats as pairs
// of "func\n\tfile:line" lines; scanning for the first frame outside
// runtime and this package is a best-effort nicety — fall back to
// "unknown" rather than risk a secondary failure.
func panicOrigin() string {
	lines := strings.Split(string(debug.Stack()), "\n")
	for i := 0; i+1 < len(lines); i++ {
		l := lines[i]
		if len(l) == 0 || l[0] == '\t' || strings.HasPrefix(l, "goroutine ") {
			continue
		}
		if strings.HasPrefix(l, "panic") || strings.HasPrefix(l, "runtime") ||
			strings.HasPrefix(l, "neurometer/internal/guard.") {
			continue
		}
		if strings.HasPrefix(lines[i+1], "\t") {
			if loc, _, ok := strings.Cut(strings.TrimSpace(lines[i+1]), " "); ok {
				return loc
			}
			return strings.TrimSpace(lines[i+1])
		}
		return l
	}
	return "unknown"
}
