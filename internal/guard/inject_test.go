package guard

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"
)

func TestInjectUnarmedIsNoop(t *testing.T) {
	DisarmAll()
	if err := Inject(context.Background(), "nowhere"); err != nil {
		t.Errorf("unarmed site must be a no-op: %v", err)
	}
	if v := CorruptFloat("nowhere", 42); v != 42 {
		t.Errorf("unarmed CorruptFloat must pass through: %v", v)
	}
}

func TestInjectSkipAndCount(t *testing.T) {
	t.Cleanup(DisarmAll)
	sentinel := errors.New("boom")
	Arm("site.a", Fault{Skip: 2, Count: 1, Err: sentinel})
	var got []error
	for i := 0; i < 5; i++ {
		got = append(got, Inject(nil, "site.a"))
	}
	want := []error{nil, nil, sentinel, nil, nil}
	for i := range want {
		if !errors.Is(got[i], want[i]) && got[i] != want[i] {
			t.Errorf("hit %d: got %v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestInjectPanicAndDisarm(t *testing.T) {
	t.Cleanup(DisarmAll)
	disarm := Arm("site.p", Fault{Panic: true})
	var err error
	func() {
		defer RecoverTo(&err)
		_ = Inject(context.Background(), "site.p")
	}()
	if !errors.Is(err, ErrCandidatePanic) {
		t.Fatalf("injected panic must recover to ErrCandidatePanic: %v", err)
	}
	disarm()
	if err := Inject(context.Background(), "site.p"); err != nil {
		t.Errorf("disarmed site must be a no-op: %v", err)
	}
}

func TestInjectDelayHonorsContext(t *testing.T) {
	t.Cleanup(DisarmAll)
	Arm("site.d", Fault{Delay: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Inject(ctx, "site.d")
	if time.Since(start) > 2*time.Second {
		t.Fatalf("delay must be cut short by the context")
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("expired ctx during delay must yield ErrTimeout: %v", err)
	}
}

func TestInjectOnHit(t *testing.T) {
	t.Cleanup(DisarmAll)
	fired := 0
	Arm("site.h", Fault{Skip: 1, OnHit: func() { fired++ }})
	for i := 0; i < 3; i++ {
		_ = Inject(nil, "site.h")
	}
	if fired != 2 {
		t.Errorf("OnHit fired %d times, want 2 (skip the first hit)", fired)
	}
}

func TestCorruptFloat(t *testing.T) {
	t.Cleanup(DisarmAll)
	Arm("site.n", Fault{NaN: true, Skip: 1, Count: 1})
	if v := CorruptFloat("site.n", 7); v != 7 {
		t.Errorf("skip hit must pass through, got %v", v)
	}
	if v := CorruptFloat("site.n", 7); !math.IsNaN(v) {
		t.Errorf("armed hit must corrupt to NaN, got %v", v)
	}
	if v := CorruptFloat("site.n", 7); v != 7 {
		t.Errorf("count-exhausted hit must pass through, got %v", v)
	}
}

func TestInjectConcurrentHits(t *testing.T) {
	t.Cleanup(DisarmAll)
	sentinel := errors.New("hit")
	Arm("site.c", Fault{Skip: 10, Count: 5, Err: sentinel})
	var wg sync.WaitGroup
	var mu sync.Mutex
	fires := 0
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if err := Inject(context.Background(), "site.c"); err != nil {
					mu.Lock()
					fires++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fires != 5 {
		t.Errorf("fault fired %d times across goroutines, want exactly 5", fires)
	}
}
