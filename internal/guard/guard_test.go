package guard

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func TestTaxonomyConstructors(t *testing.T) {
	if err := Invalid("x must be %d", 3); !errors.Is(err, ErrInvalidConfig) {
		t.Errorf("Invalid must wrap ErrInvalidConfig: %v", err)
	} else if !strings.Contains(err.Error(), "x must be 3") {
		t.Errorf("Invalid must format the message: %v", err)
	}
	if err := Infeasible("no org"); !errors.Is(err, ErrInfeasible) {
		t.Errorf("Infeasible must wrap ErrInfeasible: %v", err)
	}
	if err := NonFinite("area", math.NaN()); !errors.Is(err, ErrNonFinite) {
		t.Errorf("NonFinite must wrap ErrNonFinite: %v", err)
	}
}

func TestClassify(t *testing.T) {
	if Classify(nil) != nil {
		t.Errorf("Classify(nil) must be nil")
	}
	if err := Classify(context.DeadlineExceeded); !errors.Is(err, ErrTimeout) {
		t.Errorf("deadline must classify as ErrTimeout: %v", err)
	}
	if err := Classify(context.Canceled); !errors.Is(err, ErrCanceled) {
		t.Errorf("cancel must classify as ErrCanceled: %v", err)
	}
	sentinel := errors.New("other")
	if Classify(sentinel) != sentinel {
		t.Errorf("unrelated errors must pass through")
	}
}

func TestCtxErr(t *testing.T) {
	if err := CtxErr(context.Background()); err != nil {
		t.Errorf("live ctx: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := CtxErr(ctx); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled ctx must yield ErrCanceled: %v", err)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	<-dctx.Done()
	if err := CtxErr(dctx); !errors.Is(err, ErrTimeout) {
		t.Errorf("expired ctx must yield ErrTimeout: %v", err)
	}
}

func TestRetryable(t *testing.T) {
	if !Retryable(Classify(context.DeadlineExceeded)) {
		t.Errorf("timeouts must be retryable")
	}
	if !Retryable(Unavailable("connection refused")) {
		t.Errorf("transient unavailability must be retryable")
	}
	for _, err := range []error{
		Invalid("bad"), Infeasible("none"), NonFinite("x", math.Inf(1)),
		Classify(context.Canceled),
		errors.New("misc"),
	} {
		if Retryable(err) {
			t.Errorf("%v must not be retryable", err)
		}
	}
}

func TestKind(t *testing.T) {
	cases := map[string]error{
		"invalid-config": Invalid("z"),
		"infeasible":     Infeasible("z"),
		"non-finite":     NonFinite("z", math.NaN()),
		"timeout":        Classify(context.DeadlineExceeded),
		"canceled":       Classify(context.Canceled),
		"unavailable":    Unavailable("worker gone"),
		"error":          errors.New("misc"),
	}
	for want, err := range cases {
		if got := Kind(err); got != want {
			t.Errorf("Kind(%v) = %q, want %q", err, got, want)
		}
	}
	var panicked error
	func() {
		defer RecoverTo(&panicked)
		panic("boom")
	}()
	if Kind(panicked) != "panic" {
		t.Errorf("Kind(recovered panic) = %q", Kind(panicked))
	}
}

// TestKindErrorRoundTrip checks KindError inverts Kind exactly: the
// reconstructed error classifies under the same taxonomy member and its
// message is byte-identical to the original — the property the checkpoint
// files and the fleet wire protocol rely on to stay deterministic across
// process boundaries.
func TestKindErrorRoundTrip(t *testing.T) {
	originals := []error{
		Invalid("bad field"),
		Infeasible("no mapping"),
		NonFinite("tops", math.NaN()),
		Classify(context.DeadlineExceeded),
		Classify(context.Canceled),
		Unavailable("worker gone"),
	}
	for _, orig := range originals {
		re := KindError(Kind(orig), orig.Error())
		if re.Error() != orig.Error() {
			t.Errorf("KindError mutated the message: %q -> %q", orig.Error(), re.Error())
		}
		if Kind(re) != Kind(orig) {
			t.Errorf("KindError lost the kind: %q -> %q", Kind(orig), Kind(re))
		}
	}
	// Unknown kinds degrade to a plain error with the message intact.
	re := KindError("martian", "weird failure")
	if re.Error() != "weird failure" || Kind(re) != "error" {
		t.Errorf("unknown kind: %v (kind %q)", re, Kind(re))
	}
}

func TestCheckFinite(t *testing.T) {
	if err := CheckFinite("ok", 1.5); err != nil {
		t.Errorf("finite value: %v", err)
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := CheckFinite("bad", v); !errors.Is(err, ErrNonFinite) {
			t.Errorf("CheckFinite(%v) = %v, want ErrNonFinite", v, err)
		}
	}
	if err := CheckFinites("a", 1.0, "b", 2.0); err != nil {
		t.Errorf("all finite: %v", err)
	}
	err := CheckFinites("a", 1.0, "b", math.NaN())
	if !errors.Is(err, ErrNonFinite) || !strings.Contains(err.Error(), "b") {
		t.Errorf("CheckFinites must name the offender: %v", err)
	}
}

func TestRecoverTo(t *testing.T) {
	eval := func(boom bool) (err error) {
		defer RecoverTo(&err)
		if boom {
			panic("exploded")
		}
		return nil
	}
	if err := eval(false); err != nil {
		t.Errorf("no panic: %v", err)
	}
	err := eval(true)
	if !errors.Is(err, ErrCandidatePanic) {
		t.Fatalf("panic must convert to ErrCandidatePanic: %v", err)
	}
	if !strings.Contains(err.Error(), "exploded") {
		t.Errorf("panic value must be preserved: %v", err)
	}
	// The origin hint should point at this test file, not the runtime.
	if !strings.Contains(err.Error(), "guard_test.go") {
		t.Logf("origin hint did not resolve to the panic site (best-effort): %v", err)
	}
	before := mPanics.Value()
	_ = eval(true)
	if mPanics.Value() != before+1 {
		t.Errorf("recovered panics must be counted")
	}
}
