package guard

import (
	"context"
	"math/rand"
	"time"
)

// Backoff is the retry-delay policy for transient failures (the Retryable
// class): exponential growth with full jitter. Full jitter — a uniform
// draw over [0, cap] rather than cap itself — is what breaks retry
// synchronization: when a worker dies, every shard it held fails at the
// same instant, and undithered backoff would march the retries into the
// surviving workers in lockstep.
//
// The zero value is usable and takes the defaults below. Backoff is
// stateless; callers pass the attempt number they are about to make.
type Backoff struct {
	// Base caps the delay for attempt 0; the cap doubles per attempt.
	Base time.Duration
	// Max bounds the cap growth.
	Max time.Duration
}

// Default backoff policy: 50ms doubling to a 5s ceiling.
const (
	defaultBackoffBase = 50 * time.Millisecond
	defaultBackoffMax  = 5 * time.Second
)

// Delay returns the full-jitter delay before retry attempt n (0-based): a
// uniform random duration in [0, min(Max, Base<<n)]. Negative attempts are
// treated as 0.
func (b Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = defaultBackoffBase
	}
	if max <= 0 {
		max = defaultBackoffMax
	}
	if attempt < 0 {
		attempt = 0
	}
	cap := base
	for i := 0; i < attempt && cap < max; i++ {
		cap *= 2
	}
	if cap > max {
		cap = max
	}
	return time.Duration(rand.Int63n(int64(cap) + 1))
}

// Sleep waits Delay(attempt), bounded by ctx: an expired or canceled ctx
// cuts the sleep short and returns the classified context error (nil when
// the full delay elapsed).
func (b Backoff) Sleep(ctx context.Context, attempt int) error {
	d := b.Delay(attempt)
	if d <= 0 {
		return CtxErr(ctx)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return CtxErr(ctx)
	}
}
