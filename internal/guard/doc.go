// Package guard is NeuroMeter's robustness layer: a typed failure
// taxonomy shared by every model package, finite-number guards that keep
// NaN/Inf out of frontiers and reports, panic-to-error recovery for sweep
// workers, and a deterministic fault-injection facility (inject.go) used
// by tests to prove every recovery path.
//
// The taxonomy is deliberately small. Every error a model entry point
// returns wraps exactly one of the sentinel errors (ErrInvalidConfig,
// ErrInfeasible, ErrNonFinite, ErrTimeout, ErrCanceled,
// ErrCandidatePanic, ErrUnavailable, ErrCorrupt), so callers classify
// failures with errors.Is, Retryable picks out the transient kinds, and
// the CLIs render structured one-line diagnostics with Kind.
//
// # Concurrency contract
//
// Everything here is safe for concurrent use: classification helpers are
// pure, RecoverTo touches only its caller's error, and the injection
// registry is guarded by atomics — parallel sweep workers may all pass
// through armed Inject sites, and hit counting stays exact. Fault arming
// itself is process-global, so tests that arm faults must not run in
// parallel with unrelated tests (the repo's convention is a deferred
// DisarmAll and no t.Parallel in those tests). Armed reports whether any
// fault is live; caching layers consult it to get out of the blast path.
//
// # Context errors
//
// CtxErr classifies a context's state under the taxonomy: nil while live,
// ErrCanceled after cancellation, ErrTimeout after a deadline. It is the
// single idiom the sweeps use to decide between "keep going", "stop and
// checkpoint", and "retry".
//
// # Fault-site registry
//
// Arm targets a named site; Inject (or CorruptFloat) fires the armed
// fault when execution reaches it. ArmPlan arms a whole Plan at once —
// multiple faults across multiple sites, each targeted by hit count
// (Skip/Count) or probabilistically by a seeded RNG (PlanFault.Prob) —
// which is how the chaos engine (internal/chaos) weaves one episode's
// faults across layers; Stats reports exact per-site hit/fired counts.
// Sites returns the canonical registry below as a slice (sites.go), so
// schedule generators can enumerate it. The complete set of production
// sites, in evaluation order:
//
//	chip.build             chip.Build, before any modeling — a failing
//	                       site makes the whole candidate fail fast.
//	perfsim.simulate       perfsim.Simulate entry, before the layer walk.
//	perfsim.layer          once per layer inside the walk; with
//	                       Fault.Skip/Count this pinpoints one layer of
//	                       one candidate.
//	perfsim.achieved_tops  a CorruptFloat site on the final AchievedTOPS
//	                       value: Fault.NaN proves the non-finite guards
//	                       catch a corrupted metric before it reaches a
//	                       frontier or a CSV row.
//	dse.candidate          once per candidate in the study pool, after
//	                       checkpoint replay — the retry/checkpoint test
//	                       hook.
//	fleet.shard            once per shard dispatch on the coordinator;
//	                       drives retry, hedging, and breaker paths.
//	fleet.heartbeat        once per membership liveness probe on the
//	                       coordinator; an injected fault is a failed
//	                       probe, driving the suspect/evict aging paths
//	                       without killing a worker process.
//	fleet.register         on the serve register/drain endpoints before
//	                       the membership table is touched; drives the
//	                       join/drain failure paths (a worker that cannot
//	                       announce itself keeps serving shards).
//	rstore.read            result-store Get, before the disk read.
//	rstore.write           result-store Put, before the tmp-file write —
//	                       the ENOSPC/full-disk hook.
//	rstore.scan            once per entry visited by the startup
//	                       recovery scan; drives the unreadable-entry
//	                       quarantine path.
//
// Sites are plain strings, so a typo arms a site that never fires;
// tests should assert on observable effects (counters, errors), not on
// arming having "taken". When adding a site, register it here and keep
// the name as "package.operation".
package guard
