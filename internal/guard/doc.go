// Package guard is NeuroMeter's robustness layer: a typed failure
// taxonomy shared by every model package, finite-number guards that keep
// NaN/Inf out of frontiers and reports, panic-to-error recovery for sweep
// workers, and a deterministic fault-injection facility (inject.go) used
// by tests to prove every recovery path.
//
// The taxonomy is deliberately small. Every error a model entry point
// returns wraps exactly one of the sentinel errors (ErrInvalidConfig,
// ErrInfeasible, ErrNonFinite, ErrTimeout, ErrCanceled,
// ErrCandidatePanic), so callers classify failures with errors.Is,
// Retryable picks out the transient kinds (timeouts only), and the CLIs
// render structured one-line diagnostics with Kind.
//
// # Concurrency contract
//
// Everything here is safe for concurrent use: classification helpers are
// pure, RecoverTo touches only its caller's error, and the injection
// registry is guarded by atomics — parallel sweep workers may all pass
// through armed Inject sites, and hit counting stays exact. Fault arming
// itself is process-global, so tests that arm faults must not run in
// parallel with unrelated tests (the repo's convention is a deferred
// DisarmAll and no t.Parallel in those tests). Armed reports whether any
// fault is live; caching layers consult it to get out of the blast path.
//
// # Context errors
//
// CtxErr classifies a context's state under the taxonomy: nil while live,
// ErrCanceled after cancellation, ErrTimeout after a deadline. It is the
// single idiom the sweeps use to decide between "keep going", "stop and
// checkpoint", and "retry".
package guard
