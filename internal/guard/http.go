package guard

import (
	"errors"
	"net/http"
	"os"
)

// Process- and wire-facing projections of the error taxonomy. The serving
// layer (internal/serve) and the CLIs both classify failures through the
// same errors.Is chains as Kind, so a given failure always carries the same
// identity whether it surfaces as an HTTP status, an exit code, or a
// structured kind= log line.

// StatusClientClosedRequest is the non-standard 499 status (popularized by
// nginx) for requests abandoned by the client: the handler's context was
// canceled before the evaluation finished, through no fault of the server.
const StatusClientClosedRequest = 499

// HTTPStatus maps an error onto the HTTP status the serving layer returns
// for it:
//
//	nil               200 OK
//	ErrInvalidConfig  400 Bad Request         (the request can never succeed)
//	ErrInfeasible     422 Unprocessable Entity (well-formed, no feasible chip)
//	ErrTimeout        504 Gateway Timeout      (deadline expired mid-evaluation)
//	ErrCanceled       499                      (client went away)
//	ErrUnavailable    503 Service Unavailable  (transient; retry with backoff)
//	ErrNonFinite      500 Internal Server Error (model produced NaN/Inf)
//	ErrCandidatePanic 500 Internal Server Error (recovered model panic)
//	ErrCorrupt        500 Internal Server Error (persisted state failed
//	                                             integrity verification —
//	                                             callers degrade, never 4xx)
//	anything else     500 Internal Server Error
//
// The order mirrors Kind: an error wrapping several taxonomy members maps
// by the first match.
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrInvalidConfig):
		return http.StatusBadRequest
	case errors.Is(err, ErrInfeasible):
		return http.StatusUnprocessableEntity
	case errors.Is(err, ErrNonFinite):
		return http.StatusInternalServerError
	case errors.Is(err, ErrTimeout):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrCanceled):
		return StatusClientClosedRequest
	case errors.Is(err, ErrUnavailable):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// ExitCode maps an error onto the process exit code shared by every
// NeuroMeter CLI:
//
//	nil                              0
//	ErrInvalidConfig, ErrInfeasible  2    (usage/config errors, sysexits-style)
//	ErrCanceled                      130  (128 + SIGINT, the shell convention)
//	anything else                    1
//
// Precedence follows Kind so the kind= log line, the HTTP status, and the
// exit code always tell the same story about one failure.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, ErrInvalidConfig), errors.Is(err, ErrInfeasible):
		return 2
	case errors.Is(err, ErrCanceled):
		return 130
	}
	return 1
}

// Exit prints the structured one-line kind= diagnostic every CLI emits and
// exits with ExitCode(err). prog names the binary. A nil err is a no-op so
// callers can invoke it unconditionally on their run error.
func Exit(prog string, err error) {
	if err == nil {
		return
	}
	PrintErr(prog, err)
	os.Exit(ExitCode(err))
}

// PrintErr writes the structured one-line kind= diagnostic without exiting,
// for callers that have cleanup to sequence around the exit.
func PrintErr(prog string, err error) {
	if err == nil {
		return
	}
	os.Stderr.WriteString(prog + ": kind=" + Kind(err) + ": " + err.Error() + "\n")
}
