package guard

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestArmPlanMultiSiteExactHitCounts arms one plan across three sites and
// hammers every site from parallel goroutines. Hit accounting is
// serialized under the injection lock, so counts must be exact even under
// the race detector, and Skip/Count targeting must fire precisely the
// intended window of hits.
func TestArmPlanMultiSiteExactHitCounts(t *testing.T) {
	defer DisarmAll()
	errBoom := errors.New("boom")
	disarm := ArmPlan(Plan{
		Seed: 1,
		Faults: []PlanFault{
			{Site: "test.a", Fault: Fault{Err: errBoom}},                   // every hit
			{Site: "test.b", Fault: Fault{Skip: 10, Count: 5, Err: errBoom}}, // hits 11..15
			{Site: "test.c", Fault: Fault{Skip: 99, Err: errBoom}},         // hits 100..
		},
	})
	defer disarm()

	const workers, perWorker = 8, 25 // 200 hits per site
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				Inject(context.Background(), "test.a")
				Inject(context.Background(), "test.b")
				Inject(context.Background(), "test.c")
			}
		}()
	}
	wg.Wait()

	stats := Stats()
	want := map[string]SiteStats{
		"test.a": {Hits: 200, Fired: 200},
		"test.b": {Hits: 200, Fired: 5},
		"test.c": {Hits: 200, Fired: 101},
	}
	for site, w := range want {
		if got := stats[site]; got != w {
			t.Errorf("site %s: got %+v, want %+v", site, got, w)
		}
	}
}

// TestArmPlanStackedFaultsOneSite checks plan-order consultation when two
// faults share a site: the first fault owns its hit window, the second
// picks up where the first stops firing.
func TestArmPlanStackedFaultsOneSite(t *testing.T) {
	defer DisarmAll()
	errA, errB := errors.New("a"), errors.New("b")
	disarm := ArmPlan(Plan{
		Faults: []PlanFault{
			{Site: "test.s", Fault: Fault{Skip: 1, Count: 2, Err: errA}}, // hits 2,3
			{Site: "test.s", Fault: Fault{Skip: 4, Err: errB}},           // hits 5..
		},
	})
	defer disarm()

	var got []error
	for i := 0; i < 6; i++ {
		got = append(got, Inject(context.Background(), "test.s"))
	}
	want := []error{nil, errA, errA, nil, errB, errB}
	for i := range want {
		if !errors.Is(got[i], want[i]) && got[i] != want[i] {
			t.Errorf("hit %d: got %v, want %v", i+1, got[i], want[i])
		}
	}
}

// TestArmPlanProbabilisticDeterminism pins the replayability contract for
// probabilistic arming: the same (seed, hit sequence) fires the same hits,
// a different seed is allowed to differ, and the firing rate lands in a
// loose band around Prob.
func TestArmPlanProbabilisticDeterminism(t *testing.T) {
	defer DisarmAll()
	errBoom := errors.New("boom")
	run := func(seed int64) []bool {
		disarm := ArmPlan(Plan{
			Seed:   seed,
			Faults: []PlanFault{{Site: "test.p", Fault: Fault{Err: errBoom}, Prob: 0.3}},
		})
		defer disarm()
		fired := make([]bool, 400)
		for i := range fired {
			fired[i] = Inject(context.Background(), "test.p") != nil
		}
		return fired
	}

	a1, a2, b := run(42), run(42), run(43)
	if len(a1) != len(a2) {
		t.Fatal("length mismatch")
	}
	count := 0
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("hit %d differs between two runs of seed 42", i+1)
		}
		if a1[i] {
			count++
		}
	}
	if count < 60 || count > 180 { // 0.3*400 = 120 expected
		t.Errorf("seed 42 fired %d/400 hits, far from Prob=0.3", count)
	}
	same := true
	for i := range a1 {
		if a1[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical firing sequences — RNG is not seeded")
	}
}

// TestArmPlanConcurrentProbabilisticCountDeterminism checks that the
// *number* of probabilistic firings over N hits is a pure function of the
// seed even when the hits arrive from racing goroutines: every eligible
// hit consumes exactly one RNG draw under the lock, so total fired counts
// cannot depend on goroutine interleaving.
func TestArmPlanConcurrentProbabilisticCountDeterminism(t *testing.T) {
	defer DisarmAll()
	errBoom := errors.New("boom")
	run := func() int {
		disarm := ArmPlan(Plan{
			Seed:   7,
			Faults: []PlanFault{{Site: "test.pc", Fault: Fault{Err: errBoom}, Prob: 0.5}},
		})
		defer disarm()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					Inject(context.Background(), "test.pc")
				}
			}()
		}
		wg.Wait()
		return Stats()["test.pc"].Fired
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d fired %d hits, first run fired %d — probabilistic arming is not replayable", i+2, got, first)
		}
	}
}

// TestArmReplacesPlanSlice checks that a plain Arm on a site resets any
// plan faults stacked there (replace semantics), that the plan's other
// sites stay armed until the plan disarm runs, and that the plan disarm
// clears its sites wholesale (including faults armed there afterwards).
func TestArmReplacesPlanSlice(t *testing.T) {
	defer DisarmAll()
	errPlan, errArm := errors.New("plan"), errors.New("arm")
	disarmPlan := ArmPlan(Plan{
		Faults: []PlanFault{
			{Site: "test.r", Fault: Fault{Err: errPlan}},
			{Site: "test.other", Fault: Fault{Err: errPlan}},
		},
	})
	defer disarmPlan()

	disarmArm := Arm("test.r", Fault{Skip: 0, Err: errArm})
	defer disarmArm()
	if err := Inject(context.Background(), "test.r"); !errors.Is(err, errArm) {
		t.Fatalf("after Arm, site fired %v, want %v", err, errArm)
	}
	if err := Inject(context.Background(), "test.other"); !errors.Is(err, errPlan) {
		t.Fatalf("untouched plan site fired %v, want %v", err, errPlan)
	}

	disarmPlan()
	if err := Inject(context.Background(), "test.other"); err != nil {
		t.Fatalf("after plan disarm, site still fires: %v", err)
	}
	if err := Inject(context.Background(), "test.r"); err != nil {
		t.Fatalf("plan disarm covers whole sites; test.r still fires: %v", err)
	}
	if Armed() {
		t.Fatal("all sites disarmed, Armed() should be false")
	}
}
