package guard

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocRegistersEveryFaultSite pins the "complete registry" contract: the
// fault-site section of doc.go must name every site string passed to
// guard.Inject or guard.CorruptFloat anywhere in the production tree. A new
// injection point without a registry entry fails here, not in review.
func TestDocRegistersEveryFaultSite(t *testing.T) {
	doc, err := os.ReadFile("doc.go")
	if err != nil {
		t.Fatal(err)
	}
	// First argument is a context expression (ctx, r.Context(), nil, ...);
	// the site is the first string literal.
	siteRE := regexp.MustCompile(`guard\.(?:Inject|CorruptFloat)\(([^"]*?),\s*"([^"]+)"`)

	sites := map[string][]string{} // site -> files using it
	root := filepath.Join("..", "..")
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range siteRE.FindAllSubmatch(src, -1) {
			site := string(m[2])
			sites[site] = append(sites[site], path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) < 9 {
		t.Fatalf("found only %d fault sites in the tree — the call-site regex has likely rotted: %v",
			len(sites), sites)
	}
	for site, files := range sites {
		if !strings.Contains(string(doc), site) {
			t.Errorf("fault site %q (used in %v) is not registered in doc.go", site, files)
		}
	}
}
