package guard

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocRegistersEveryFaultSite pins the "complete registry" contract: the
// fault-site section of doc.go must name every site string passed to
// guard.Inject or guard.CorruptFloat anywhere in the production tree. A new
// injection point without a registry entry fails here, not in review.
func TestDocRegistersEveryFaultSite(t *testing.T) {
	doc, err := os.ReadFile("doc.go")
	if err != nil {
		t.Fatal(err)
	}
	// Inject's first argument is a context expression (ctx, r.Context(),
	// nil, ...) and the site is the first string literal; CorruptFloat
	// takes the site first.
	injectRE := regexp.MustCompile(`guard\.Inject\([^"]*?,\s*"([^"]+)"`)
	corruptRE := regexp.MustCompile(`guard\.CorruptFloat\(\s*"([^"]+)"`)

	sites := map[string][]string{} // site -> files using it
	root := filepath.Join("..", "..")
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, re := range []*regexp.Regexp{injectRE, corruptRE} {
			for _, m := range re.FindAllSubmatch(src, -1) {
				site := string(m[1])
				sites[site] = append(sites[site], path)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) < 9 {
		t.Fatalf("found only %d fault sites in the tree — the call-site regex has likely rotted: %v",
			len(sites), sites)
	}
	for site, files := range sites {
		if !strings.Contains(string(doc), site) {
			t.Errorf("fault site %q (used in %v) is not registered in doc.go", site, files)
		}
	}

	// The machine-readable registry (sites.go) must match the tree exactly
	// in both directions: every site used in production code is listed, and
	// every listed site is actually used somewhere.
	listed := map[string]bool{}
	for _, site := range Sites() {
		listed[site] = true
		if _, used := sites[site]; !used {
			t.Errorf("guard.Sites() lists %q but no production code injects at it", site)
		}
	}
	for site, files := range sites {
		if !listed[site] {
			t.Errorf("fault site %q (used in %v) is missing from guard.Sites()", site, files)
		}
	}
}
