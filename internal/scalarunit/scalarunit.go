// Package scalarunit models NeuroMeter's Scalar Unit (SU): the control-flow
// helper core used for auxiliary operations such as address calculation.
//
// Following the paper, the SU defaults to a simplified "ARM Cortex-A9 core"
// in McPAT's configuration with only the instruction fetch unit (without
// branch prediction), the integer register file, the ALU, and the LSU —
// the rest of the core removed. Each block is a gate-count model plus a
// small register file from memarray; users can reconfigure block sizes.
package scalarunit

import (
	"fmt"

	"neurometer/internal/maclib"
	"neurometer/internal/memarray"
	"neurometer/internal/pat"
	"neurometer/internal/tech"
)

// Config describes a scalar unit. Gate counts of zero select the defaults
// of the simplified Cortex-A9 configuration.
type Config struct {
	Node tech.Node
	// IFUGates, LSUGates: NAND2-equivalent complexity of the fetch and
	// load/store blocks.
	IFUGates float64
	LSUGates float64
	// IntRegEntries x 32-bit integer register file (default 32).
	IntRegEntries int
	// ICacheBytes: small instruction buffer (default 16 KiB).
	ICacheBytes int64
	// CyclePS is the target clock period.
	CyclePS float64
}

// Defaults for the simplified A9: the in-order front end without branch
// prediction plus fetch queues and sequencing (~90k gates), and the
// AGU/LSU with its store buffers and bus interface (~70k gates), per the
// McPAT-derived configuration the paper references.
const (
	defaultIFUGates = 90e3
	defaultLSUGates = 70e3
)

// Unit is an evaluated scalar unit.
type Unit struct {
	Cfg Config

	ifu, alu, lsu pat.Result
	regfile       *memarray.Array
	icache        *memarray.Array
	areaUM2       float64
	leakUW        float64
	perInstrPJ    float64
	critPS        float64
}

// Build evaluates a scalar unit.
func Build(cfg Config) (*Unit, error) {
	if cfg.CyclePS <= 0 {
		return nil, fmt.Errorf("scalarunit: CyclePS must be positive")
	}
	n := cfg.Node
	if cfg.IFUGates <= 0 {
		cfg.IFUGates = defaultIFUGates
	}
	if cfg.LSUGates <= 0 {
		cfg.LSUGates = defaultLSUGates
	}
	if cfg.IntRegEntries <= 0 {
		cfg.IntRegEntries = 32
	}
	if cfg.ICacheBytes <= 0 {
		cfg.ICacheBytes = 32 << 10
	}
	u := &Unit{Cfg: cfg}

	mk := func(gates, activity float64) pat.Result {
		a, d, l := n.LogicBlock(gates, activity)
		return pat.Result{AreaUM2: a, DynPJ: d, LeakUW: l, DelayPS: 14 * n.FO4PS}
	}
	u.ifu = mk(cfg.IFUGates, 0.15)
	u.lsu = mk(cfg.LSUGates, 0.12)
	u.alu = maclib.ALU(n, maclib.Int32)

	rf, err := memarray.Build(memarray.Config{
		Node: n, Cell: tech.CellDFF,
		CapacityBytes: int64(cfg.IntRegEntries) * 4,
		BlockBytes:    4,
		Banks:         1, ReadPorts: 2, WritePorts: 1,
		CyclePS: cfg.CyclePS,
	})
	if err != nil {
		return nil, fmt.Errorf("scalarunit: regfile: %w", err)
	}
	u.regfile = rf

	ic, err := memarray.Build(memarray.Config{
		Node: n, Cell: tech.CellSRAM,
		CapacityBytes: cfg.ICacheBytes,
		BlockBytes:    8,
		Banks:         1, ReadPorts: 1, WritePorts: 1,
		CyclePS: cfg.CyclePS,
	})
	if err != nil {
		return nil, fmt.Errorf("scalarunit: icache: %w", err)
	}
	u.icache = ic

	u.areaUM2 = (u.ifu.AreaUM2+u.alu.AreaUM2+u.lsu.AreaUM2)*1.2 +
		rf.AreaUM2() + ic.AreaUM2()
	u.leakUW = u.ifu.LeakUW + u.alu.LeakUW + u.lsu.LeakUW + rf.LeakUW() + ic.LeakUW()
	// Per instruction: fetch (icache read + IFU), 2 reg reads + 1 write,
	// ALU, and an LSU share.
	u.perInstrPJ = ic.ReadEnergyPJ() + u.ifu.DynPJ +
		2*rf.ReadEnergyPJ() + rf.WriteEnergyPJ() +
		u.alu.DynPJ + 0.3*u.lsu.DynPJ
	u.critPS = u.alu.DelayPS
	for _, d := range []float64{u.ifu.DelayPS, u.lsu.DelayPS, rf.AccessDelayPS()} {
		if d > u.critPS {
			u.critPS = d
		}
	}
	return u, nil
}

// AreaUM2 returns total SU area.
func (u *Unit) AreaUM2() float64 { return u.areaUM2 }

// PerInstrPJ returns dynamic energy per scalar instruction.
func (u *Unit) PerInstrPJ() float64 { return u.perInstrPJ }

// LeakUW returns total leakage.
func (u *Unit) LeakUW() float64 { return u.leakUW }

// CritPathPS returns the slowest stage delay.
func (u *Unit) CritPathPS() float64 { return u.critPS }

// MeetsTiming reports whether the SU fits its cycle.
func (u *Unit) MeetsTiming() bool { return u.critPS <= u.Cfg.CyclePS }

// Result summarizes the unit; DynPJ is per instruction.
func (u *Unit) Result() pat.Result {
	return pat.Result{AreaUM2: u.areaUM2, DynPJ: u.perInstrPJ, LeakUW: u.leakUW, DelayPS: u.critPS}
}

func (u *Unit) String() string {
	return fmt.Sprintf("su[a9-lite area=%.3fmm2 %.2fpJ/instr]", u.areaUM2/1e6, u.perInstrPJ)
}
