package scalarunit

import (
	"testing"

	"neurometer/internal/tech/techtest"
)

const cycle700 = 1e12 / 700e6

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Config{Node: techtest.MustByNode(28)}); err == nil {
		t.Errorf("zero cycle must fail")
	}
}

func TestDefaultsApplied(t *testing.T) {
	u, err := Build(Config{Node: techtest.MustByNode(28), CyclePS: cycle700})
	if err != nil {
		t.Fatal(err)
	}
	if u.Cfg.IFUGates != defaultIFUGates || u.Cfg.LSUGates != defaultLSUGates {
		t.Errorf("defaults not applied: %+v", u.Cfg)
	}
	if u.Cfg.IntRegEntries != 32 || u.Cfg.ICacheBytes != 32<<10 {
		t.Errorf("defaults not applied: %+v", u.Cfg)
	}
}

func TestSimplifiedA9Scale(t *testing.T) {
	// A simplified A9-class control core at 28nm: area well under 1 mm2
	// (the full A9 is ~1.5mm2 at 28nm with caches; ours strips the OoO
	// machinery and branch prediction).
	u, err := Build(Config{Node: techtest.MustByNode(28), CyclePS: cycle700})
	if err != nil {
		t.Fatal(err)
	}
	a := u.AreaUM2() / 1e6
	if a < 0.02 || a > 1.0 {
		t.Errorf("SU area out of band: %.3f mm2", a)
	}
	if u.PerInstrPJ() <= 0 || u.PerInstrPJ() > 200 {
		t.Errorf("per-instruction energy out of band: %.1f pJ", u.PerInstrPJ())
	}
	if !u.MeetsTiming() {
		t.Errorf("SU must close 700MHz at 28nm: crit=%.0fps", u.CritPathPS())
	}
}

func TestCustomGateCounts(t *testing.T) {
	small, err := Build(Config{Node: techtest.MustByNode(28), CyclePS: cycle700})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(Config{
		Node: techtest.MustByNode(28), CyclePS: cycle700,
		IFUGates: 200e3, LSUGates: 150e3, ICacheBytes: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if big.AreaUM2() <= small.AreaUM2() {
		t.Errorf("bigger config must be bigger: %g vs %g", big.AreaUM2(), small.AreaUM2())
	}
}

func TestNodeScaling(t *testing.T) {
	a28, err := Build(Config{Node: techtest.MustByNode(28), CyclePS: cycle700})
	if err != nil {
		t.Fatal(err)
	}
	a65, err := Build(Config{Node: techtest.MustByNode(65), CyclePS: 1e12 / 200e6})
	if err != nil {
		t.Fatal(err)
	}
	if a28.AreaUM2() >= a65.AreaUM2() {
		t.Errorf("28nm SU must be smaller than 65nm")
	}
	if !a28.Result().Valid() || !a65.Result().Valid() {
		t.Errorf("invalid results")
	}
	if a28.String() == "" {
		t.Errorf("empty string")
	}
}
