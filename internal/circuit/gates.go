package circuit

import (
	"math"

	"neurometer/internal/pat"
	"neurometer/internal/tech"
)

// DFF models a standard-cell D flip-flop. Energy is per clock edge with the
// data input toggling (worst case data activity folded into callers'
// activity factors); clock-pin energy is included, matching the paper's
// choice to amortize the clock network into components.
type DFF struct {
	Node tech.Node
}

// dffGateEquiv is the NAND2-equivalent complexity of a scan-less DFF.
const dffGateEquiv = 6.0

// Eval returns per-bit flip-flop characteristics. Delay is clk-to-Q.
func (d DFF) Eval() pat.Result {
	return pat.Result{
		AreaUM2: d.Node.DFFCellUM2,
		DynPJ:   dffGateEquiv * d.Node.GateEnergyFJ / 1000 * 0.7,
		LeakUW:  dffGateEquiv * d.Node.GateLeakNW / 1000,
		DelayPS: 2.2 * d.Node.FO4PS,
	}
}

// Register is a Bits-wide bank of DFFs.
type Register struct {
	Node tech.Node
	Bits int
}

// Eval returns the register's characteristics; energy is per full-width
// write at activity 1.
func (r Register) Eval() pat.Result {
	return DFF{Node: r.Node}.Eval().Scale(float64(maxI(r.Bits, 1)))
}

// Decoder models an N-to-2^N row decoder built from predecode + final NAND
// stages, the regular-logic pattern NeuroMeter shares with CACTI/McPAT.
type Decoder struct {
	Node    tech.Node
	Outputs int // number of decoded lines (2^N)
}

// Eval returns decoder characteristics; energy is per decode operation.
func (d Decoder) Eval() pat.Result {
	n := maxI(d.Outputs, 2)
	addrBits := math.Ceil(math.Log2(float64(n)))
	// ~1 NAND per output plus predecoders.
	gates := float64(n) + 4*addrBits
	area, dyn, leak := d.Node.LogicBlock(gates, 0.5)
	// Only one output line plus the predecode path switches per decode.
	dynPerOp := (addrBits*2 + 4) * d.Node.GateEnergyFJ / 1000
	levels := 2 + math.Ceil(math.Log2(math.Max(addrBits, 1)))
	_ = dyn
	return pat.Result{
		AreaUM2: area,
		DynPJ:   dynPerOp,
		LeakUW:  leak,
		DelayPS: levels * d.Node.FO4PS,
	}
}

// Mux models an Inputs:1 multiplexer of the given width, built as a tree of
// 2:1 muxes.
type Mux struct {
	Node   tech.Node
	Inputs int
	Bits   int
}

// Eval returns mux characteristics; energy is per select operation with the
// selected bus toggling.
func (m Mux) Eval() pat.Result {
	in := maxI(m.Inputs, 2)
	bits := maxI(m.Bits, 1)
	levels := math.Ceil(math.Log2(float64(in)))
	gates := float64(in-1) * 3 * float64(bits) // 3 gates per 2:1 mux bit
	area, _, leak := m.Node.LogicBlock(gates, 0.3)
	// One path of the tree switches per op.
	dynPerOp := levels * 3 * float64(bits) * m.Node.GateEnergyFJ / 1000 * 0.5
	return pat.Result{
		AreaUM2: area,
		DynPJ:   dynPerOp,
		LeakUW:  leak,
		DelayPS: levels * 1.4 * m.Node.FO4PS,
	}
}

// Crossbar models an Inputs x Outputs, Bits-wide matrix crossbar (the NoC
// router switch fabric). Area grows with Inputs*Outputs*Bits; energy is per
// traversal of one input->output connection.
type Crossbar struct {
	Node    tech.Node
	Inputs  int
	Outputs int
	Bits    int
}

// Eval returns crossbar characteristics.
func (x Crossbar) Eval() pat.Result {
	in, out, bits := maxI(x.Inputs, 1), maxI(x.Outputs, 1), maxI(x.Bits, 1)
	// Wire-dominated area: each crosspoint is a tristate driver; the grid
	// spans in*bits tracks by out*bits tracks at intermediate pitch.
	f := float64(x.Node.Nm) / 1000
	pitch := 8 * f // um
	w := float64(in*bits) * pitch
	h := float64(out*bits) * pitch
	crosspoints := float64(in * out * bits)
	gateArea := crosspoints * 2 * x.Node.GateAreaUM2()
	area := math.Max(w*h, gateArea)
	// Per traversal: one row + one column of wire plus bits drivers. The
	// traversal wire is repeated, as in real wide switch fabrics.
	wireCap := (w + h) / 1000 * x.Node.WireCapFFPerMM[tech.WireIntermediate]
	dyn := (wireCap*x.Node.Vdd*x.Node.Vdd/1000)*0.5 +
		float64(bits)*4*x.Node.GateEnergyFJ/1000
	leak := crosspoints * 2 * x.Node.GateLeakNW / 1000
	trav, _ := (Wire{
		Node: x.Node, Layer: tech.WireIntermediate,
		LengthMM: (w + h) / 1000, Bits: 1,
	}).Repeated()
	return pat.Result{AreaUM2: area, DynPJ: dyn, LeakUW: leak, DelayPS: trav.DelayPS + 2*x.Node.FO4PS}
}
