package circuit

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"neurometer/internal/guard"
	"neurometer/internal/tech"
	"neurometer/internal/tech/techtest"
)

var n28 = techtest.MustByNode(28)

func TestWireElmoreMonotonicInLength(t *testing.T) {
	prev := 0.0
	for _, l := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		w := Wire{Node: n28, Layer: tech.WireIntermediate, LengthMM: l, LoadFF: 5}
		d := w.ElmoreDelayPS()
		if d <= prev {
			t.Errorf("delay must grow with length: %gmm -> %gps (prev %g)", l, d, prev)
		}
		prev = d
	}
}

func TestWireElmoreQuadraticGrowth(t *testing.T) {
	// Unrepeated wire delay grows superlinearly (RC both scale with L).
	w1 := Wire{Node: n28, Layer: tech.WireIntermediate, LengthMM: 1}
	w4 := Wire{Node: n28, Layer: tech.WireIntermediate, LengthMM: 4}
	r := w4.ElmoreDelayPS() / w1.ElmoreDelayPS()
	if r < 4.5 {
		t.Errorf("4x wire should be >4.5x slower unrepeated, got %.2fx", r)
	}
}

func TestWireLayersOrdering(t *testing.T) {
	// Global wires are faster per mm than local wires.
	loc := Wire{Node: n28, Layer: tech.WireLocal, LengthMM: 2}
	glb := Wire{Node: n28, Layer: tech.WireGlobal, LengthMM: 2}
	if glb.ElmoreDelayPS() >= loc.ElmoreDelayPS() {
		t.Errorf("global wire should be faster: %g vs %g", glb.ElmoreDelayPS(), loc.ElmoreDelayPS())
	}
}

func TestRepeatedWireLinearizes(t *testing.T) {
	long := Wire{Node: n28, Layer: tech.WireGlobal, LengthMM: 10, Bits: 1}
	rep, inserted := long.Repeated()
	if !inserted {
		t.Fatalf("10mm wire must need repeaters")
	}
	raw := long.Eval()
	if rep.DelayPS >= raw.DelayPS {
		t.Errorf("repeated wire must be faster: %g vs %g", rep.DelayPS, raw.DelayPS)
	}
	if rep.AreaUM2 <= raw.AreaUM2 {
		t.Errorf("repeaters must cost area")
	}
	// Repeated delay ~linear: 2x length ~ 2x delay (within 30%).
	long2 := long
	long2.LengthMM = 20
	rep2, _ := long2.Repeated()
	ratio := rep2.DelayPS / rep.DelayPS
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("repeated delay should be ~linear, 2x length gave %.2fx", ratio)
	}
	short := Wire{Node: n28, Layer: tech.WireGlobal, LengthMM: 0.05}
	if _, ins := short.Repeated(); ins {
		t.Errorf("50um wire should not need repeaters")
	}
}

func TestPipelinedWireMeetsCycle(t *testing.T) {
	cycle := 1e12 / 700e6 // 700MHz in ps
	w := Wire{Node: n28, Layer: tech.WireGlobal, LengthMM: 12, Bits: 64}
	res, stages := w.Pipelined(cycle)
	if res.DelayPS > cycle {
		t.Errorf("pipelined stage delay %.0fps exceeds cycle %.0fps", res.DelayPS, cycle)
	}
	if stages < 1 {
		// 12mm at 28nm cannot be traversed in 1.43ns... unless repeaters are heroic.
		t.Logf("12mm wire fit in one cycle (stages=%d, delay=%.0fps)", stages, res.DelayPS)
	}
	short := Wire{Node: n28, Layer: tech.WireGlobal, LengthMM: 0.3, Bits: 64}
	_, st := short.Pipelined(cycle)
	if st != 0 {
		t.Errorf("short wire should not be pipelined, got %d stages", st)
	}
	// No cycle constraint: never pipelined.
	_, st = w.Pipelined(0)
	if st != 0 {
		t.Errorf("cycle=0 must disable pipelining")
	}
}

func TestWireBitsScaleAreaEnergyNotDelay(t *testing.T) {
	w1 := Wire{Node: n28, Layer: tech.WireIntermediate, LengthMM: 1, Bits: 1}
	w8 := Wire{Node: n28, Layer: tech.WireIntermediate, LengthMM: 1, Bits: 8}
	r1, r8 := w1.Eval(), w8.Eval()
	if math.Abs(r8.AreaUM2-8*r1.AreaUM2) > 1e-9 || math.Abs(r8.DynPJ-8*r1.DynPJ) > 1e-9 {
		t.Errorf("bus area/energy must scale with bits")
	}
	if r8.DelayPS != r1.DelayPS {
		t.Errorf("bus delay must not depend on bits")
	}
}

func TestElmoreChain(t *testing.T) {
	seg := PiFromWire(n28, tech.WireIntermediate, 0.5)
	segs := []PiRC{seg, seg, seg}
	taps := []float64{2, 2, 10}
	d, err := ElmoreChainPS(100, segs, taps)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("chain delay: %g", d)
	}
	// Equivalent single wire with same total length and end load should be
	// close (within 25%: the chain has distributed taps).
	w := Wire{Node: n28, Layer: tech.WireIntermediate, LengthMM: 1.5, DriverRes: 100, LoadFF: 10}
	single := w.ElmoreDelayPS()
	if d < single*0.75 {
		t.Errorf("chain with extra taps should not be much faster: chain=%g single=%g", d, single)
	}
	// More taps, more delay.
	d2, err := ElmoreChainPS(100, segs, []float64{20, 20, 20})
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d {
		t.Errorf("heavier taps must slow the chain: %g vs %g", d2, d)
	}
}

func TestElmoreChainMismatchIsInvalidConfig(t *testing.T) {
	// The length mismatch is an error at the API boundary (not a panic),
	// classified under the guard taxonomy.
	_, err := ElmoreChainPS(100, []PiRC{{}}, nil)
	if err == nil {
		t.Fatalf("expected error on len mismatch")
	}
	if !errors.Is(err, guard.ErrInvalidConfig) {
		t.Errorf("mismatch error must wrap guard.ErrInvalidConfig: %v", err)
	}
}

func TestDFFAndRegister(t *testing.T) {
	d := DFF{Node: n28}.Eval()
	if !d.Valid() || d.AreaUM2 <= 0 || d.DynPJ <= 0 || d.DelayPS <= 0 {
		t.Fatalf("DFF: %v", d)
	}
	r := Register{Node: n28, Bits: 32}.Eval()
	if math.Abs(r.AreaUM2-32*d.AreaUM2) > 1e-9 {
		t.Errorf("register must be 32 DFFs")
	}
	r0 := Register{Node: n28}.Eval() // zero bits clamps to 1
	if r0.AreaUM2 != d.AreaUM2 {
		t.Errorf("zero-bit register should clamp to 1")
	}
}

func TestDecoderScaling(t *testing.T) {
	small := Decoder{Node: n28, Outputs: 64}.Eval()
	big := Decoder{Node: n28, Outputs: 512}.Eval()
	if big.AreaUM2 <= small.AreaUM2 {
		t.Errorf("bigger decoder must be bigger")
	}
	if big.DelayPS < small.DelayPS {
		t.Errorf("bigger decoder can't be faster")
	}
	if !small.Valid() || !big.Valid() {
		t.Errorf("invalid decoder results")
	}
}

func TestMuxScaling(t *testing.T) {
	m2 := Mux{Node: n28, Inputs: 2, Bits: 32}.Eval()
	m16 := Mux{Node: n28, Inputs: 16, Bits: 32}.Eval()
	if m16.AreaUM2 <= m2.AreaUM2 || m16.DelayPS <= m2.DelayPS {
		t.Errorf("16:1 mux must be bigger and slower than 2:1")
	}
}

func TestCrossbarScaling(t *testing.T) {
	x5 := Crossbar{Node: n28, Inputs: 5, Outputs: 5, Bits: 64}.Eval()
	x10 := Crossbar{Node: n28, Inputs: 10, Outputs: 10, Bits: 64}.Eval()
	if x10.AreaUM2 < x5.AreaUM2*2 {
		t.Errorf("crossbar area should grow ~quadratically: %g -> %g", x5.AreaUM2, x10.AreaUM2)
	}
	if !x5.Valid() || !x10.Valid() {
		t.Errorf("invalid crossbar results")
	}
}

func TestAdderKinds(t *testing.T) {
	rip := Adder{Node: n28, Bits: 32, Kind: AdderRipple}.Eval()
	pre := Adder{Node: n28, Bits: 32, Kind: AdderPrefix}.Eval()
	if pre.DelayPS >= rip.DelayPS {
		t.Errorf("prefix adder must be faster: %g vs %g", pre.DelayPS, rip.DelayPS)
	}
	if pre.AreaUM2 <= rip.AreaUM2 {
		t.Errorf("prefix adder must be bigger: %g vs %g", pre.AreaUM2, rip.AreaUM2)
	}
}

func TestAdderWidthProperty(t *testing.T) {
	f := func(raw uint8) bool {
		bits := int(raw%63) + 2
		a := Adder{Node: n28, Bits: bits, Kind: AdderRipple}.Eval()
		b := Adder{Node: n28, Bits: bits * 2, Kind: AdderRipple}.Eval()
		return b.AreaUM2 > a.AreaUM2 && b.DelayPS > a.DelayPS && a.Valid() && b.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiplierScaling(t *testing.T) {
	m8 := Multiplier{Node: n28, BitsA: 8, BitsB: 8}.Eval()
	m16 := Multiplier{Node: n28, BitsA: 16, BitsB: 16}.Eval()
	m32 := Multiplier{Node: n28, BitsA: 32, BitsB: 32}.Eval()
	if !(m8.AreaUM2 < m16.AreaUM2 && m16.AreaUM2 < m32.AreaUM2) {
		t.Errorf("multiplier area must grow with width: %g %g %g", m8.AreaUM2, m16.AreaUM2, m32.AreaUM2)
	}
	// Roughly quadratic: 16x16 should be ~3-5x the 8x8.
	r := m16.AreaUM2 / m8.AreaUM2
	if r < 2.5 || r > 6 {
		t.Errorf("16/8 multiplier area ratio out of range: %g", r)
	}
}

func TestFIFO(t *testing.T) {
	f := FIFO{Node: n28, Depth: 16, Bits: 8}.Eval()
	if !f.Valid() || f.AreaUM2 <= 0 {
		t.Fatalf("FIFO: %v", f)
	}
	deeper := FIFO{Node: n28, Depth: 64, Bits: 8}.Eval()
	if deeper.AreaUM2 <= f.AreaUM2 {
		t.Errorf("deeper FIFO must be bigger")
	}
	wider := FIFO{Node: n28, Depth: 16, Bits: 32}.Eval()
	if wider.AreaUM2 <= f.AreaUM2 {
		t.Errorf("wider FIFO must be bigger")
	}
}

func TestTechNodeOrderingForDelay(t *testing.T) {
	// The same adder gets faster and smaller on newer nodes.
	n65 := techtest.MustByNode(65)
	a65 := Adder{Node: n65, Bits: 32, Kind: AdderPrefix}.Eval()
	a28 := Adder{Node: n28, Bits: 32, Kind: AdderPrefix}.Eval()
	if a28.DelayPS >= a65.DelayPS || a28.AreaUM2 >= a65.AreaUM2 || a28.DynPJ >= a65.DynPJ {
		t.Errorf("28nm adder must beat 65nm on all axes")
	}
}
