// Package circuit provides NeuroMeter's circuit-level primitives: RC wires
// with Elmore delay, driver chains, flip-flops, decoders, multiplexers,
// adders and multipliers. Architectural components (tensor units, memory
// arrays, NoC routers, ...) are composed from these primitives, each
// evaluated against a tech.Node.
package circuit

import (
	"math"

	"neurometer/internal/guard"
	"neurometer/internal/pat"
	"neurometer/internal/tech"
)

// Wire describes a point-to-point interconnect segment abstracted as the
// pi-RC model of Fig. 2(d): a driver output resistance, the distributed wire
// RC, and a lumped load capacitance.
type Wire struct {
	Node     tech.Node
	Layer    tech.WireLayer
	LengthMM float64
	// DriverRes is the output resistance of the driving stage in ohms.
	// Zero means "size an appropriate driver automatically".
	DriverRes float64
	// LoadFF is the far-end load capacitance in fF.
	LoadFF float64
	// Bits is the bus width (parallel wires). Area/energy scale with Bits;
	// delay does not.
	Bits int
}

// ElmoreDelayPS returns the Elmore delay of the (unrepeated) wire in ps:
//
//	t = R_drv*(C_w + C_L) + R_w*(C_w/2 + C_L)
func (w Wire) ElmoreDelayPS() float64 {
	rw := w.Node.WireResOhmPerMM[w.Layer] * w.LengthMM
	cw := w.Node.WireCapFFPerMM[w.Layer] * w.LengthMM * 1e-15
	cl := w.LoadFF * 1e-15
	rd := w.DriverRes
	if rd <= 0 {
		rd = w.Node.InvRonOhm() / 8 // default 8x driver
	}
	return (rd*(cw+cl) + rw*(cw/2+cl)) * 1e12
}

// wireEnergyPJPerBit is the switching energy of one wire at activity 1.
func (w Wire) wireEnergyPJPerBit() float64 {
	cw := w.Node.WireCapFFPerMM[w.Layer] * w.LengthMM
	return (cw + w.LoadFF) * w.Node.Vdd * w.Node.Vdd / 1000 // fF*V^2 -> pJ
}

// wirePitchUM returns the routing pitch per wire in um for the layer,
// approximated from the node name (pitch ~ 4F local, 8F intermediate,
// 16F global, plus spacing).
func (w Wire) wirePitchUM() float64 {
	f := float64(w.Node.Nm) / 1000 // feature size in um
	switch w.Layer {
	case tech.WireLocal:
		return 4 * f
	case tech.WireIntermediate:
		return 8 * f
	default:
		return 16 * f
	}
}

// TrackAreaUM2 returns the raw routing-track footprint of the bus. Wires on
// upper metal layers route over logic, so callers that account for silicon
// area separately (e.g. NoC links) can subtract most of this footprint.
func (w Wire) TrackAreaUM2() float64 {
	bits := float64(maxI(w.Bits, 1))
	return w.wirePitchUM() * w.LengthMM * 1000 * bits
}

// Eval returns the power/area/timing of the unrepeated wire bus. Energy is
// per bus transfer (all bits switching counted at activity 1; callers apply
// activity factors).
func (w Wire) Eval() pat.Result {
	bits := w.Bits
	if bits <= 0 {
		bits = 1
	}
	return pat.Result{
		AreaUM2: w.wirePitchUM() * w.LengthMM * 1000 * float64(bits),
		DynPJ:   w.wireEnergyPJPerBit() * float64(bits),
		LeakUW:  0,
		DelayPS: w.ElmoreDelayPS(),
	}
}

// Repeated returns the wire evaluated with optimal repeater insertion.
// Repeaters linearize delay with length at the cost of driver area/energy.
// The returned result includes repeater overheads; the bool reports whether
// repeaters were actually inserted (short wires need none).
func (w Wire) Repeated() (pat.Result, bool) {
	res := w.Eval()
	// Critical segment length where unrepeated quadratic delay exceeds the
	// repeated linear delay (classic sqrt(2*Rdrv*Cin/(Rw*Cw)) form).
	rw := w.Node.WireResOhmPerMM[w.Layer]
	cw := w.Node.WireCapFFPerMM[w.Layer] * 1e-15
	r0 := w.Node.InvRonOhm()
	c0 := w.Node.InvCinFF() * 1e-15
	lcrit := math.Sqrt(2 * r0 * c0 / (rw * cw)) // in mm
	if w.LengthMM <= lcrit {
		return res, false
	}
	nseg := math.Ceil(w.LengthMM / lcrit)
	seg := w
	seg.LengthMM = w.LengthMM / nseg
	seg.DriverRes = 0
	segRes := seg.Eval()
	bits := float64(maxI(w.Bits, 1))
	// Repeater: ~24x inverter per segment per bit.
	repArea := 24 * w.Node.GateAreaUM2()
	repEnergy := 24 * w.Node.GateEnergyFJ / 1000 // pJ per switch
	repLeak := 24 * w.Node.GateLeakNW / 1000
	out := pat.Result{
		AreaUM2: segRes.AreaUM2*nseg + repArea*nseg*bits,
		DynPJ:   segRes.DynPJ*nseg + repEnergy*nseg*bits,
		LeakUW:  repLeak * nseg * bits,
		DelayPS: segRes.DelayPS * nseg,
	}
	return out, true
}

// Pipelined evaluates the repeated wire and, if its delay exceeds the cycle
// time, inserts pipeline flip-flops so the bus sustains one transfer per
// cycle (§II-A CDB: "when the length is large, wires are pipelined to meet
// the throughput requirement"). It returns the result (with DFF overheads)
// and the number of pipeline stages (0 = combinational within one cycle).
func (w Wire) Pipelined(cyclePS float64) (pat.Result, int) {
	res, _ := w.Repeated()
	if cyclePS <= 0 || res.DelayPS <= cyclePS {
		return res, 0
	}
	stages := int(math.Ceil(res.DelayPS / cyclePS))
	ff := DFF{Node: w.Node}
	ffRes := ff.Eval()
	bits := float64(maxI(w.Bits, 1))
	nff := float64(stages-1) * bits
	res.AreaUM2 += ffRes.AreaUM2 * nff
	res.DynPJ += ffRes.DynPJ * nff
	res.LeakUW += ffRes.LeakUW * nff
	// Per-stage delay now fits the cycle; report the stage delay as the
	// critical path contribution.
	res.DelayPS = res.DelayPS / float64(stages)
	return res, stages
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PiRC is the explicit three-element pi model of one wire segment, exposed
// for tests and for the inner-TU interconnect model which chains segments
// with taps (Fig. 2(d)).
type PiRC struct {
	ROhm  float64
	CNear float64 // fF
	CFar  float64 // fF
}

// PiFromWire decomposes a wire segment into its pi equivalent.
func PiFromWire(n tech.Node, layer tech.WireLayer, lengthMM float64) PiRC {
	return PiRC{
		ROhm:  n.WireResOhmPerMM[layer] * lengthMM,
		CNear: n.WireCapFFPerMM[layer] * lengthMM / 2,
		CFar:  n.WireCapFFPerMM[layer] * lengthMM / 2,
	}
}

// ElmoreChainPS computes the Elmore delay (ps) through a chain of pi
// segments with per-tap load capacitances, driven by driverRes ohms. taps
// must have the same length as segs; taps[i] (fF) loads the far node of
// segs[i]. The delay reported is to the far end of the chain. A
// segs/taps length mismatch is an ErrInvalidConfig error at the API
// boundary, not a panic.
func ElmoreChainPS(driverRes float64, segs []PiRC, taps []float64) (float64, error) {
	if len(taps) != len(segs) {
		return 0, guard.Invalid("circuit: ElmoreChainPS needs len(taps)=%d == len(segs)=%d",
			len(taps), len(segs))
	}
	// Total downstream capacitance seen at each resistor.
	total := 0.0
	for i, s := range segs {
		total += s.CNear + s.CFar + taps[i]
	}
	delay := 0.0
	remaining := total
	// Driver sees all capacitance.
	delay += driverRes * remaining
	for i, s := range segs {
		// Resistance of segment i carries everything beyond its near cap.
		remaining -= s.CNear
		delay += s.ROhm * remaining
		remaining -= s.CFar + taps[i]
	}
	return delay * 1e-15 * 1e12, nil // ohm*fF -> ps
}
