package circuit

import (
	"math"

	"neurometer/internal/pat"
	"neurometer/internal/tech"
)

// AdderKind selects the integer adder microarchitecture.
type AdderKind int

const (
	// AdderRipple is a ripple-carry adder: minimal area/energy, O(n) delay.
	AdderRipple AdderKind = iota
	// AdderPrefix is a Kogge-Stone-class parallel-prefix adder: O(log n)
	// delay at ~3x the gates.
	AdderPrefix
)

// Adder models a Bits-wide two-input integer adder.
type Adder struct {
	Node tech.Node
	Bits int
	Kind AdderKind
}

// Eval returns adder characteristics; energy is per addition with typical
// (~0.25) internal node activity.
func (a Adder) Eval() pat.Result {
	bits := float64(maxI(a.Bits, 1))
	var gates, levels float64
	switch a.Kind {
	case AdderPrefix:
		gates = bits * (3 + 2*math.Ceil(math.Log2(bits)))
		levels = math.Ceil(math.Log2(bits)) + 3
	default:
		gates = bits * 5 // full adder ~5 NAND2 equivalents
		levels = bits * 1.1
	}
	area, dyn, leak := a.Node.LogicBlock(gates, 0.25)
	return pat.Result{
		AreaUM2: area,
		DynPJ:   dyn,
		LeakUW:  leak,
		DelayPS: levels * a.Node.FO4PS,
	}
}

// Multiplier models an unsigned/signed array multiplier producing the full
// 2*Bits product (Booth-encoded above 8 bits).
type Multiplier struct {
	Node  tech.Node
	BitsA int
	BitsB int
}

// Eval returns multiplier characteristics; energy per multiply at typical
// operand activity.
func (m Multiplier) Eval() pat.Result {
	a := float64(maxI(m.BitsA, 1))
	b := float64(maxI(m.BitsB, 1))
	// Partial-product array: a*b AND terms + (a-1) rows of b-bit adders,
	// Booth encoding halves rows above 8 bits.
	rows := a
	booth := 1.0
	if a > 8 {
		rows = a / 2
		booth = 1.15 // encoder overhead per row
	}
	gates := (a*b*1.0 + rows*b*5) * booth
	area, dyn, leak := m.Node.LogicBlock(gates, 0.3)
	levels := math.Ceil(math.Log2(rows))*2 + math.Ceil(math.Log2(b)) + 4
	return pat.Result{
		AreaUM2: area,
		DynPJ:   dyn,
		LeakUW:  leak,
		DelayPS: levels * m.Node.FO4PS,
	}
}

// FIFO models a DFF-based first-in-first-out queue of Depth entries, each
// Bits wide, with head/tail pointers and full/empty logic. Used for the
// tensor-unit I/O FIFOs.
type FIFO struct {
	Node  tech.Node
	Depth int
	Bits  int
}

// Eval returns FIFO characteristics; energy is per push+pop pair of one
// entry (the steady-state streaming cost).
func (f FIFO) Eval() pat.Result {
	depth := maxI(f.Depth, 1)
	bits := maxI(f.Bits, 1)
	cell := DFF{Node: f.Node}.Eval()
	storage := cell.Scale(float64(depth * bits))
	ptrBits := maxI(int(math.Ceil(math.Log2(float64(depth))))+1, 2)
	ctlArea, ctlDyn, ctlLeak := f.Node.LogicBlock(float64(ptrBits*12+20), 0.4)
	rd := Mux{Node: f.Node, Inputs: depth, Bits: bits}.Eval()
	// Per push+pop: write one entry, read one entry through the mux, and
	// update pointers. Idle storage burns only clock power, folded into
	// an effective 15% background toggle on the storage bank.
	dyn := cell.DynPJ*float64(bits) + rd.DynPJ + ctlDyn +
		storage.DynPJ*0.15
	return pat.Result{
		AreaUM2: storage.AreaUM2 + rd.AreaUM2 + ctlArea,
		DynPJ:   dyn,
		LeakUW:  storage.LeakUW + rd.LeakUW + ctlLeak,
		DelayPS: cell.DelayPS + rd.DelayPS,
	}
}
