package refchips

import (
	"fmt"

	"neurometer/internal/chip"
	"neurometer/internal/workloads"
)

// Published component shares (percent of total die area). TPU-v1 follows
// the floorplan of the TPU paper [30]; TPU-v2 rows are the ones the paper's
// §II-C quotes; Eyeriss shares are approximated from the die plot of [17]
// (the paper reports only the error directions: PE array +7%, buffer -7%).
var tpuv1PublishedShares = []ShareRow{
	{Component: "systolic-array", PublishedPct: 24},
	{Component: "unified-buffer+wfifo", PublishedPct: 29},
	{Component: "accumulators", PublishedPct: 6},
	{Component: "activation-pipeline", PublishedPct: 6},
	{Component: "dram-port", PublishedPct: 2.8},
	{Component: "pcie", PublishedPct: 1.8},
	{Component: "host-if+ctrl+misc", PublishedPct: 9.4}, // unmodeled
	{Component: "unknown", PublishedPct: 21},
}

var tpuv2PublishedShares = []ShareRow{
	{Component: "ici+niu", PublishedPct: 5},
	{Component: "hbm-ports", PublishedPct: 5},
	{Component: "pcie", PublishedPct: 2},
	{Component: "transpose+rpu+misc", PublishedPct: 11}, // unmodeled
	{Component: "unknown", PublishedPct: 21},
}

var eyerissPublishedShares = []ShareRow{
	{Component: "pe-array", PublishedPct: 68},
	{Component: "global-buffer", PublishedPct: 18},
	{Component: "multicast-noc", PublishedPct: 5},
	{Component: "rlc+relu+ctrl", PublishedPct: 9},
}

// segmentAreaMM2 returns the die area of one named memory segment.
func segmentAreaMM2(c *chip.Chip, names ...string) float64 {
	var total float64
	for _, n := range names {
		if s := c.Core.Mem.Segment(n); s != nil {
			total += s.Data.AreaUM2() / 1e6
		}
	}
	return total
}

// ValidateTPUv1 builds the TPU-v1 model and compares it against the
// published numbers (Fig. 3).
func ValidateTPUv1() (Report, error) {
	c, err := chip.Build(TPUv1())
	if err != nil {
		return Report{}, fmt.Errorf("refchips: tpu-v1: %w", err)
	}
	total := c.AreaMM2()
	bd := c.AreaBreakdown()
	pct := func(mm2 float64) float64 { return mm2 / total * 100 }

	rep := Report{
		Name:             "tpu-v1",
		PublishedAreaMM2: TPUv1PublishedAreaMM2,
		ModeledAreaMM2:   total,
		PublishedTDPW:    TPUv1PublishedTDPW,
		ModeledTDPW:      c.TDPW(),
	}
	modeled := map[string]float64{
		"systolic-array":       pct(bd.Find("tu").AreaMM2),
		"unified-buffer+wfifo": pct(segmentAreaMM2(c, "ub", "wfifo")),
		"accumulators":         pct(segmentAreaMM2(c, "acc")),
		"activation-pipeline":  pct(bd.Find("vu").AreaMM2),
		"dram-port":            pct(bd.Find("ddr").AreaMM2),
		"pcie":                 pct(bd.Find("pcie").AreaMM2),
		// The modeled white space covers both the published unknown 21%
		// and the unmodeled host-if/ctrl/misc.
		"host-if+ctrl+misc": 0,
		"unknown":           pct(bd.Find("whitespace").AreaMM2),
	}
	for _, row := range tpuv1PublishedShares {
		row.ModeledPct = modeled[row.Component]
		rep.AreaShares = append(rep.AreaShares, row)
	}
	return rep, nil
}

// ValidateTPUv2 builds the TPU-v2 model and compares it against the
// published numbers (Fig. 4).
func ValidateTPUv2() (Report, error) {
	c, err := chip.Build(TPUv2())
	if err != nil {
		return Report{}, fmt.Errorf("refchips: tpu-v2: %w", err)
	}
	total := c.AreaMM2()
	bd := c.AreaBreakdown()
	pct := func(mm2 float64) float64 { return mm2 / total * 100 }
	rep := Report{
		Name:             "tpu-v2",
		PublishedAreaMM2: TPUv2PublishedAreaMM2,
		ModeledAreaMM2:   total,
		PublishedTDPW:    TPUv2PublishedTDPW,
		ModeledTDPW:      c.TDPW(),
	}
	modeled := map[string]float64{
		"ici+niu":            pct(bd.Find("ici").AreaMM2 + bd.Find("noc").AreaMM2),
		"hbm-ports":          pct(bd.Find("hbm").AreaMM2),
		"pcie":               pct(bd.Find("pcie").AreaMM2),
		"transpose+rpu+misc": 0, // unmodeled, inside white space
		"unknown":            pct(bd.Find("whitespace").AreaMM2),
	}
	for _, row := range tpuv2PublishedShares {
		row.ModeledPct = modeled[row.Component]
		rep.AreaShares = append(rep.AreaShares, row)
	}
	// The MXU and VMem shares have no single published figure; expose them
	// anyway for the report (published = 0 marks "not published").
	rep.AreaShares = append(rep.AreaShares,
		ShareRow{Component: "mxu (no published %)", ModeledPct: pct(bd.Find("tu").AreaMM2)},
		ShareRow{Component: "vmem (no published %)", ModeledPct: pct(segmentAreaMM2(c, "vmem"))},
	)
	return rep, nil
}

// VMemPorts returns the read/write port organization NeuroMeter's internal
// optimizer chose for the TPU-v2 VMem (the paper highlights it finds 2R1W).
func VMemPorts() (read, write int, err error) {
	c, err := chip.Build(TPUv2())
	if err != nil {
		return 0, 0, err
	}
	org := c.Core.Mem.Segment("vmem").Data.Org
	return org.ReadPorts, org.WritePorts, nil
}

// eyerissLayerActivity derives runtime activity factors for one AlexNet
// layer the way the paper's footnote describes: from the processing time
// (published PE utilization), the number of active PEs, the percentage of
// zero input feature maps (zero-gating reduces MAC switching), and the
// global-buffer access counts.
func eyerissLayerActivity(c *chip.Chip, layer string) (chip.Activity, float64, error) {
	l, err := workloads.Layer(workloads.AlexNet(), layer)
	if err != nil {
		return chip.Activity{}, 0, err
	}
	// Published operating points: conv1 reads dense images (high switching,
	// high PE utilization); conv5 reads post-ReLU sparse fmaps (lower
	// switching via zero-gating, lower utilization).
	var peUtil, switching float64
	switch layer {
	case "conv1":
		peUtil, switching = 0.85, 0.65
	case "conv5":
		peUtil, switching = 0.72, 0.40
	default:
		peUtil, switching = 0.75, 0.55
	}
	pes := float64(c.Core.TU.MACs())
	macsPerSec := pes * c.ClockHz() * peUtil
	timeSec := float64(l.MACs()) / macsPerSec

	// Global-buffer traffic: inputs and weights are read with reuse passes,
	// outputs written once (2 bytes per Int16 element).
	reads := float64(l.InBytes())*2*3 + float64(l.Params())*2*2
	writes := float64(l.OutBytes()) * 2 * 2
	act := chip.Activity{
		TUMACsPerSec:        macsPerSec * switching,
		VUOpsPerSec:         float64(l.OutBytes()) / timeSec,
		MemReadBytesPerSec:  reads / timeSec,
		MemWriteBytesPerSec: writes / timeSec,
		ClockGateIdleFrac:   0.6, // Eyeriss gates idle PEs aggressively
	}
	return act, timeSec, nil
}

// ValidateEyeriss builds the Eyeriss model and compares it against the
// published numbers, including the AlexNet conv1/conv5 runtime power
// (Fig. 5(c)(d)).
func ValidateEyeriss() (Report, error) {
	c, err := chip.Build(Eyeriss())
	if err != nil {
		return Report{}, fmt.Errorf("refchips: eyeriss: %w", err)
	}
	total := c.AreaMM2()
	bd := c.AreaBreakdown()
	pct := func(mm2 float64) float64 { return mm2 / total * 100 }
	rep := Report{
		Name:             "eyeriss",
		PublishedAreaMM2: EyerissPublishedCoreMM2,
		ModeledAreaMM2:   total,
	}
	modeled := map[string]float64{
		// The multicast X/Y buses live inside the TU model; report the PE
		// array without them and the buses separately.
		"pe-array":      pct(bd.Find("tu").AreaMM2 - c.Core.TU.BusResult().AreaUM2/1e6),
		"global-buffer": pct(segmentAreaMM2(c, "gb")),
		"multicast-noc": pct(c.Core.TU.BusResult().AreaUM2 / 1e6),
		"rlc+relu+ctrl": pct(bd.Find("vu").AreaMM2 + bd.Find("misc").AreaMM2 +
			bd.Find("ctrl").AreaMM2 + bd.Find("whitespace").AreaMM2),
	}
	for _, row := range eyerissPublishedShares {
		row.ModeledPct = modeled[row.Component]
		rep.AreaShares = append(rep.AreaShares, row)
	}

	for _, tc := range []struct {
		layer     string
		published float64
	}{
		{"conv1", EyerissConv1PowerW},
		{"conv5", EyerissConv5PowerW},
	} {
		act, _, err := eyerissLayerActivity(c, tc.layer)
		if err != nil {
			return Report{}, err
		}
		w, _ := c.RuntimePower(act)
		rep.PowerRows = append(rep.PowerRows, ShareRow{
			Component:    "alexnet-" + tc.layer,
			PublishedPct: tc.published * 1000, // mW
			ModeledPct:   w * 1000,
		})
	}
	return rep, nil
}

// EyerissPEAreaMM2 returns the modeled single-PE area (Fig. 5(a) compares
// at PE granularity; published PE ~= 0.05 mm2 at 65nm).
func EyerissPEAreaMM2() (float64, error) {
	c, err := chip.Build(Eyeriss())
	if err != nil {
		return 0, err
	}
	return c.Core.TU.CellResult().AreaUM2 / 1e6, nil
}
