package refchips

import (
	"math"
	"strings"
	"testing"
)

// TestTPUv1Validation reproduces Fig. 3: chip-level area within the paper's
// 10% band and TDP within its 5% band, with component shares close to the
// published floorplan.
func TestTPUv1Validation(t *testing.T) {
	rep, err := ValidateTPUv1()
	if err != nil {
		t.Fatal(err)
	}
	if rep.AreaErr() > 0.10 {
		t.Errorf("TPU-v1 area error %.1f%% exceeds the paper's 10%% band", rep.AreaErr()*100)
	}
	if rep.TDPErr() > 0.05 {
		t.Errorf("TPU-v1 TDP error %.1f%% exceeds the paper's 5%% band", rep.TDPErr()*100)
	}
	// Component shares: systolic array and accumulators within a few points
	// of the published floorplan (the paper claims ~2% relative for these).
	for _, row := range rep.AreaShares {
		switch row.Component {
		case "systolic-array", "accumulators", "unified-buffer+wfifo":
			if math.Abs(row.ModeledPct-row.PublishedPct) > 5 {
				t.Errorf("TPU-v1 %s share: modeled %.1f%% vs published %.1f%%",
					row.Component, row.ModeledPct, row.PublishedPct)
			}
		}
	}
}

// TestTPUv1PowerBreakdownShape: the systolic array is the dominant power
// consumer (the paper models 56% of chip power; no published data exists).
func TestTPUv1PowerShape(t *testing.T) {
	rep, err := ValidateTPUv1()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ModeledTDPW < 70 || rep.ModeledTDPW > 80 {
		t.Errorf("TPU-v1 TDP %.1fW outside the 75W +/- 5W window", rep.ModeledTDPW)
	}
}

// TestTPUv2Validation: our TPU-v2 model is the weakest of the three (the
// paper reached 17% area and 9% TDP error; our bottom-up 16nm energies are
// lower). The test pins the current accuracy so regressions are caught, and
// EXPERIMENTS.md documents the deviation.
func TestTPUv2Validation(t *testing.T) {
	rep, err := ValidateTPUv2()
	if err != nil {
		t.Fatal(err)
	}
	if rep.AreaErr() > 0.30 {
		t.Errorf("TPU-v2 area error %.1f%% regressed beyond 30%%", rep.AreaErr()*100)
	}
	if rep.TDPErr() > 0.45 {
		t.Errorf("TPU-v2 TDP error %.1f%% regressed beyond 45%%", rep.TDPErr()*100)
	}
	// The modeled area must stay *below* the published bound: the published
	// figure is itself an upper bound ("< 611 mm2").
	if rep.ModeledAreaMM2 >= TPUv2PublishedAreaMM2 {
		t.Errorf("TPU-v2 modeled area %.0f exceeds the published upper bound", rep.ModeledAreaMM2)
	}
}

// TestTPUv2VMemPortSearch reproduces the paper's §II-C highlight: the
// internal optimizer automatically finds the 2R1W VMem organization from
// the throughput requirement.
func TestTPUv2VMemPortSearch(t *testing.T) {
	r, w, err := VMemPorts()
	if err != nil {
		t.Fatal(err)
	}
	if r != 2 || w != 1 {
		t.Errorf("VMem ports %dR%dW, paper finds 2R1W", r, w)
	}
}

// TestEyerissValidation reproduces Fig. 5: single-PE and chip-level area
// plus the AlexNet conv1/conv5 runtime power comparisons.
func TestEyerissValidation(t *testing.T) {
	rep, err := ValidateEyeriss()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: overall area within 15%; ours lands slightly above — pin 20%.
	if rep.AreaErr() > 0.20 {
		t.Errorf("Eyeriss area error %.1f%% regressed beyond 20%%", rep.AreaErr()*100)
	}
	// The PE array dominates the chip, as published.
	var peShare float64
	for _, row := range rep.AreaShares {
		if row.Component == "pe-array" {
			peShare = row.ModeledPct
		}
	}
	if peShare < 50 {
		t.Errorf("PE array share %.1f%% should dominate the chip", peShare)
	}
	// Runtime power within ~20% of the measured AlexNet layers (the paper
	// reports +11% and -13%).
	for _, row := range rep.PowerRows {
		err := math.Abs(row.ModeledPct-row.PublishedPct) / row.PublishedPct
		if err > 0.20 {
			t.Errorf("%s runtime power: modeled %.0fmW vs published %.0fmW (%.0f%% err)",
				row.Component, row.ModeledPct, row.PublishedPct, err*100)
		}
	}
}

// TestEyerissPEArea reproduces Fig. 5(a)'s PE-granularity comparison.
func TestEyerissPEArea(t *testing.T) {
	pe, err := EyerissPEAreaMM2()
	if err != nil {
		t.Fatal(err)
	}
	if pe < 0.035 || pe > 0.070 {
		t.Errorf("PE area %.4f mm2 outside the published ~0.05 mm2 band", pe)
	}
}

func TestReportRendering(t *testing.T) {
	rep, err := ValidateEyeriss()
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"eyeriss", "area", "pe-array", "runtime power", "alexnet-conv1"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	// TPU-v1 report includes TDP; Eyeriss (no published TDP) must not.
	if strings.Contains(s, "TDP:") {
		t.Errorf("Eyeriss report should not print a TDP row")
	}
	v1, err := ValidateTPUv1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v1.String(), "TDP:") {
		t.Errorf("TPU-v1 report must print the TDP row")
	}
}

func TestConfigsBuildable(t *testing.T) {
	for _, rep := range []func() (Report, error){ValidateTPUv1, ValidateTPUv2, ValidateEyeriss} {
		if _, err := rep(); err != nil {
			t.Errorf("validation failed: %v", err)
		}
	}
}
