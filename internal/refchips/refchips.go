// Package refchips holds the three validation targets of the paper's §II-C
// — TPU-v1, TPU-v2 and Eyeriss — as NeuroMeter configurations plus the
// published numbers they are compared against (Figs. 3-5). The Validate
// functions produce the same chip-level and component-share comparisons the
// paper's ring charts show.
package refchips

import (
	"fmt"
	"math"
	"strings"

	"neurometer/internal/chip"
	"neurometer/internal/maclib"
	"neurometer/internal/periph"
	"neurometer/internal/tensorunit"
)

// Published reference values (from the cited TPU-v1 [30], TPU-v2 [29] and
// Eyeriss [17] publications, as quoted in the paper).
const (
	TPUv1PublishedAreaMM2 = 331 // "< 331 mm^2"
	TPUv1PublishedTDPW    = 75
	TPUv2PublishedAreaMM2 = 611 // "< 611 mm^2"
	TPUv2PublishedTDPW    = 280
	// Eyeriss core area (4.0 x 3.5 mm logic fabric at 65 nm, excluding pads).
	EyerissPublishedCoreMM2 = 12.25
	// Eyeriss measured runtime power for AlexNet layers (mW @1.0V, 200MHz).
	EyerissConv1PowerW = 0.332
	EyerissConv5PowerW = 0.236
)

// TPUv1 returns the TPU-v1 configuration of Fig. 3: a single core with a
// 256x256 Int8 systolic array at 28nm/0.86V/700MHz, 24 MiB unified buffer
// (dual bank, 1R1W), 4 MiB accumulator buffer, weight FIFO, DDR3 and PCIe
// Gen3 x16 interfaces. The published ~21% unknown area plus the unmodeled
// host interface/control/misc (~5%) enter as white space.
func TPUv1() chip.Config {
	return chip.Config{
		Name: "tpu-v1", TechNM: 28, Vdd: 0.86, ClockHz: 700e6,
		Tx: 1, Ty: 1,
		Core: chip.CoreConfig{
			NumTUs: 1, TURows: 256, TUCols: 256, TUDataType: maclib.Int8,
			VULanes: 256, // the activation pipeline
			Mem: []chip.MemSegment{
				{Name: "ub", CapacityBytes: 24 << 20, BlockBytes: 256,
					Banks: 2, ReadPorts: 1, WritePorts: 1,
					ReadBytesPerCycle: 256, WriteBytesPerCycle: 256},
				{Name: "acc", CapacityBytes: 4 << 20, BlockBytes: 256, Banks: 4,
					ReadBytesPerCycle: 1024, WriteBytesPerCycle: 1024},
				{Name: "wfifo", CapacityBytes: 256 << 10, BlockBytes: 256,
					ReadBytesPerCycle: 256, WriteBytesPerCycle: 64},
			},
		},
		NoCTopology: chip.NoCBus, NoCBisectionGBps: 30,
		OffChip: []chip.OffChipPort{
			{Kind: periph.DDRPort, GBps: 34},  // 2x DDR3-2133 channels
			{Kind: periph.PCIePort, GBps: 14}, // Gen3 x16
		},
		WhiteSpaceFrac: 0.26, // 21% unknown + ~5% unmodeled host-if/ctrl/misc
	}
}

// TPUv2 returns the TPU-v2 configuration of Fig. 4: two cores, each with
// one 128x128 MXU (BF16 multiply, FP32 accumulate) and an 8 MiB VMem slice
// (quad-bank; NeuroMeter's optimizer finds 2R1W ports from the throughput
// requirement), at an assumed 16nm node, 0.75V, 700MHz, with 700GB/s HBM,
// four ICI links at 62 GB/s per direction and PCIe.
func TPUv2() chip.Config {
	return chip.Config{
		Name: "tpu-v2", TechNM: 16, Vdd: 0.75, ClockHz: 700e6,
		Tx: 1, Ty: 2,
		Core: chip.CoreConfig{
			NumTUs: 1, TURows: 128, TUCols: 128, TUDataType: maclib.BF16,
			// The published TPU-v2 vector unit is 128 lanes x 8 sublanes of
			// 32-bit FP with multipliers.
			VULanes: 1024, VUHasMAC: true,
			HasSU: true,
			Mem: []chip.MemSegment{
				{Name: "vmem", CapacityBytes: 8 << 20, BlockBytes: 256, Banks: 4,
					// Two reads + one write of 256B per cycle per bank group:
					// the throughput that makes the optimizer pick 2R1W.
					ReadBytesPerCycle: 2 * 4 * 256, WriteBytesPerCycle: 1 * 4 * 256},
			},
		},
		NoCTopology: chip.NoCRing, NoCBisectionGBps: 62, // ICI-fed ring
		OffChip: []chip.OffChipPort{
			{Kind: periph.HBMPort, GBps: 700},
			{Kind: periph.ICILink, GBps: 62, Count: 4}, // 496 Gb/s per direction
			{Kind: periph.PCIePort, GBps: 14},
			{Kind: periph.DMAEngine, GBps: 700},
		},
		WhiteSpaceFrac: 0.32, // 21% unknown + ~11% unmodeled transpose/RPU/misc
	}
}

// Eyeriss returns the Eyeriss-v1 configuration of Fig. 5: a single core
// whose 12x14 PE array is a multicast (X/Y-bus) tensor unit with Int16
// MACs and per-PE local storage (448 B spad + 72 B registers), a 108 KB
// global buffer in 27 banks, at 65nm/1.0V/200MHz. The chip's multicast NoC
// is the inner-TU interconnect; run-length coding, scan chain and top-level
// control are folded into the misc logic.
func Eyeriss() chip.Config {
	return chip.Config{
		Name: "eyeriss", TechNM: 65, Vdd: 1.0, ClockHz: 200e6,
		Tx: 1, Ty: 1,
		Core: chip.CoreConfig{
			NumTUs: 1, TURows: 12, TUCols: 14, TUDataType: maclib.Int16,
			TUInterconnect:   tensorunit.Multicast,
			TUDataflow:       tensorunit.RowStationary,
			TULocalSpadBytes: 448,
			TULocalRegBytes:  72,
			VULanes:          14, // ReLU / run-length-coding datapath
			Mem: []chip.MemSegment{
				{Name: "gb", CapacityBytes: 108 << 10, BlockBytes: 8, Banks: 27,
					ReadPorts: 1, WritePorts: 1,
					ReadBytesPerCycle: 32, WriteBytesPerCycle: 16},
			},
		},
		NoCTopology: chip.NoCBus, NoCBisectionGBps: 1,
		// The published 12.25 mm2 is the core fabric (pads excluded), and
		// every core component is modeled: only a small assembly margin
		// enters as white space.
		WhiteSpaceFrac: 0.03,
	}
}

// ShareRow is one component of a validation comparison: the published
// relative share versus the modeled one (the paper's ring-chart format).
type ShareRow struct {
	Component    string
	PublishedPct float64 // published share of total, in percent
	ModeledPct   float64
}

// Report is the outcome of one chip validation.
type Report struct {
	Name string

	PublishedAreaMM2 float64
	ModeledAreaMM2   float64
	PublishedTDPW    float64
	ModeledTDPW      float64

	AreaShares []ShareRow
	// PowerRows holds runtime-power comparisons (Eyeriss only).
	PowerRows []ShareRow
}

// AreaErr and TDPErr return the relative chip-level errors.
func (r Report) AreaErr() float64 {
	return math.Abs(r.ModeledAreaMM2-r.PublishedAreaMM2) / r.PublishedAreaMM2
}

func (r Report) TDPErr() float64 {
	if r.PublishedTDPW == 0 {
		return 0
	}
	return math.Abs(r.ModeledTDPW-r.PublishedTDPW) / r.PublishedTDPW
}

func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s validation ==\n", r.Name)
	fmt.Fprintf(&sb, "area: modeled %.1f mm2 vs published %.0f mm2 (%.1f%% err)\n",
		r.ModeledAreaMM2, r.PublishedAreaMM2, r.AreaErr()*100)
	if r.PublishedTDPW > 0 {
		fmt.Fprintf(&sb, "TDP:  modeled %.1f W vs published %.0f W (%.1f%% err)\n",
			r.ModeledTDPW, r.PublishedTDPW, r.TDPErr()*100)
	}
	if len(r.AreaShares) > 0 {
		fmt.Fprintf(&sb, "area shares (published vs modeled):\n")
		for _, s := range r.AreaShares {
			fmt.Fprintf(&sb, "  %-22s %5.1f%%  vs %5.1f%%\n", s.Component, s.PublishedPct, s.ModeledPct)
		}
	}
	if len(r.PowerRows) > 0 {
		fmt.Fprintf(&sb, "runtime power (published vs modeled, mW):\n")
		for _, s := range r.PowerRows {
			fmt.Fprintf(&sb, "  %-22s %6.1f  vs %6.1f\n", s.Component, s.PublishedPct, s.ModeledPct)
		}
	}
	return sb.String()
}
