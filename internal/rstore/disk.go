package rstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"neurometer/internal/guard"
)

// DiskStore is the disk backend: one file per result under a two-level
// content-addressed layout,
//
//	<dir>/objects/<aa>/<sha256(fingerprint)>.res
//	<dir>/quarantine/                      (corrupt entries, moved aside)
//
// Writes are crash-safe (tmp file + fsync + rename + parent-dir fsync): a
// SIGKILL at any instant leaves either the previous entry or a *.tmp file
// the next startup scan removes — never a half-written entry served as a
// result. Reads verify the envelope (checksum, version, embedded
// fingerprint) before returning a byte of payload; anything that fails
// moves to quarantine/ instead of being deleted, so an operator can
// inspect what corrupted and the store can never serve the same bad bytes
// twice. All methods are safe for concurrent use — distinct fingerprints
// touch distinct files, and same-fingerprint writers race only on the
// atomic rename, whose last writer wins with a complete entry either way.
type DiskStore struct {
	dir    string
	odir   string // <dir>/objects
	qdir   string // <dir>/quarantine
	report ScanReport

	// qmu serializes quarantine-cap enforcement so concurrent quarantines
	// can't double-evict (and double-count) the same victim.
	qmu sync.Mutex
}

// Quarantine growth bounds. Quarantined entries are kept for inspection,
// not forever: a store fed a stream of corrupt entries (bad disk, hostile
// writer) must not grow quarantine/ without bound. When either cap is
// exceeded the oldest entries rotate out first and rstore.quarantine_evicted
// counts each removal. Variables (not constants) so the flood regression
// test can tighten them; production uses the defaults.
var (
	quarantineMaxEntries = 256
	quarantineMaxBytes   = int64(64 << 20)
)

// QuarantineLimits reports the active quarantine directory caps (max
// entry count, max total bytes). Invariant checks use it to assert a
// chaos episode's store stayed within bounds.
func QuarantineLimits() (entries int, bytes int64) {
	return quarantineMaxEntries, quarantineMaxBytes
}

// ScanReport summarizes the startup recovery scan.
type ScanReport struct {
	// Entries is the number of verified entries the scan kept.
	Entries int
	// Quarantined counts entries moved to quarantine/ (torn, corrupt,
	// foreign version, or filed under the wrong name).
	Quarantined int
	// TmpRemoved counts orphaned *.tmp files deleted (a crash between
	// write and rename leaves exactly one).
	TmpRemoved int
}

const (
	entryExt  = ".res"
	tmpSuffix = ".tmp"
)

// OpenDisk opens (creating if necessary) the store rooted at dir and runs
// the recovery scan: orphaned *.tmp files are removed and every entry is
// verified, with failures quarantined rather than trusted or deleted. A
// store directory full of garbage therefore opens successfully and behaves
// as empty — the durability contract is that a damaged store degrades to
// recomputation, never to wrong results and never to a crash.
func OpenDisk(dir string) (*DiskStore, error) {
	if dir == "" {
		return nil, guard.Invalid("rstore: empty store directory")
	}
	s := &DiskStore{
		dir:  dir,
		odir: filepath.Join(dir, "objects"),
		qdir: filepath.Join(dir, "quarantine"),
	}
	for _, d := range []string{s.dir, s.odir, s.qdir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("rstore: %w", err)
		}
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	slog.Info("rstore: opened disk store", "dir", dir,
		"entries", s.report.Entries, "quarantined", s.report.Quarantined,
		"tmp_removed", s.report.TmpRemoved)
	return s, nil
}

// Report returns the startup scan summary.
func (s *DiskStore) Report() ScanReport { return s.report }

// Dir returns the store root.
func (s *DiskStore) Dir() string { return s.dir }

// path maps a fingerprint to its entry file.
func (s *DiskStore) path(fp string) string {
	sum := sha256.Sum256([]byte(fp))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(s.odir, name[:2], name+entryExt)
}

// scan walks the object tree once at open: *.tmp droppings are removed,
// every *.res entry is decoded and verified, and failures are quarantined.
// Files the store did not write (unknown extensions) are left untouched.
// guard.Inject("rstore.scan") fires per entry visit so tests can drive the
// unreadable-entry path deterministically.
func (s *DiskStore) scan() error {
	err := filepath.WalkDir(s.odir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if strings.HasSuffix(path, tmpSuffix) {
			if rerr := os.Remove(path); rerr == nil {
				s.report.TmpRemoved++
				mTmpRemoved.Inc()
			}
			return nil
		}
		if filepath.Ext(path) != entryExt {
			return nil // not ours; leave it alone
		}
		verr := guard.Inject(nil, "rstore.scan")
		var b []byte
		if verr == nil {
			b, verr = os.ReadFile(path)
		}
		if verr == nil {
			var fp string
			fp, _, verr = DecodeEntry(b)
			if verr == nil && s.path(fp) != path {
				verr = guard.Corrupt("rstore: entry %s embeds fingerprint for %s",
					filepath.Base(path), filepath.Base(s.path(fp)))
			}
		}
		if verr != nil {
			s.quarantineFile(path, verr)
			s.report.Quarantined++
			mQuarantined.Inc()
			return nil
		}
		s.report.Entries++
		return nil
	})
	if err != nil {
		return fmt.Errorf("rstore: scan: %w", err)
	}
	return nil
}

// Get returns the verified payload for fp. A missing entry is ErrNotFound;
// a present-but-invalid entry is quarantined and reported as
// guard.ErrCorrupt; read failures classify as guard.ErrUnavailable. Every
// non-nil error means "compute the result yourself".
func (s *DiskStore) Get(fp string) ([]byte, error) {
	if err := guard.Inject(nil, "rstore.read"); err != nil {
		return nil, fmt.Errorf("rstore: read %s: %w", shortFP(fp), err)
	}
	path := s.path(fp)
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, guard.Unavailable("rstore: read %s: %v", shortFP(fp), err)
	}
	stored, payload, err := DecodeEntry(b)
	if err == nil && stored != fp {
		err = guard.Corrupt("rstore: entry for %s holds a result for a different fingerprint", shortFP(fp))
	}
	if err != nil {
		s.quarantineFile(path, err)
		mQuarantined.Inc()
		return nil, err
	}
	return payload, nil
}

// Put durably stores payload under fp: encode, write to a tmp file, fsync
// the file, rename over the final name, fsync the directory. A failure at
// any step removes the tmp file and returns an error the caller treats as
// "result not persisted" — never as a failed evaluation.
// guard.Inject("rstore.write") is the ENOSPC/IO-fault hook.
func (s *DiskStore) Put(fp string, payload []byte) error {
	if err := guard.Inject(nil, "rstore.write"); err != nil {
		return fmt.Errorf("rstore: write %s: %w", shortFP(fp), err)
	}
	b, err := EncodeEntry(fp, payload)
	if err != nil {
		return err
	}
	path := s.path(fp)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return guard.Unavailable("rstore: write %s: %v", shortFP(fp), err)
	}
	tmp := path + tmpSuffix
	if err := writeFileSync(tmp, b); err != nil {
		os.Remove(tmp)
		return guard.Unavailable("rstore: write %s: %v", shortFP(fp), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return guard.Unavailable("rstore: write %s: %v", shortFP(fp), err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return guard.Unavailable("rstore: write %s: %v", shortFP(fp), err)
	}
	return nil
}

// Quarantine moves the entry for fp (if any) into quarantine/. Callers use
// it when a checksum-valid entry fails a higher layer's verification —
// undeserializable payload, non-finite metrics, identity mismatch — so the
// bad bytes are preserved for inspection but never served again.
func (s *DiskStore) Quarantine(fp string, reason error) {
	path := s.path(fp)
	if _, err := os.Stat(path); err != nil {
		return // already gone (raced with another quarantine, or flight-only bytes)
	}
	s.quarantineFile(path, reason)
	mQuarantined.Inc()
}

// quarantineFile moves one file into quarantine/, suffixing the name if a
// previous incarnation is already there. Move failures degrade to removal,
// and removal failures are logged — a file we can neither move nor delete
// must at least never be trusted again, which Get's verification ensures.
func (s *DiskStore) quarantineFile(path string, reason error) {
	dst := filepath.Join(s.qdir, filepath.Base(path))
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); errors.Is(err, fs.ErrNotExist) {
			break
		}
		dst = filepath.Join(s.qdir, fmt.Sprintf("%s.%d", filepath.Base(path), i))
	}
	if err := os.Rename(path, dst); err != nil {
		if rerr := os.Remove(path); rerr != nil {
			slog.Warn("rstore: could not quarantine or remove corrupt entry",
				"path", path, "reason", reason, "err", err)
			return
		}
	}
	slog.Warn("rstore: quarantined corrupt entry",
		"entry", filepath.Base(path), "kind", guard.Kind(reason), "reason", reason)
	s.enforceQuarantineCap()
}

// enforceQuarantineCap rotates quarantine/ down to the configured bounds,
// oldest entry first (mtime, then name for same-second ties). Called
// after every quarantine move; errors degrade silently — cap enforcement
// is best-effort hygiene and must never turn a successful quarantine into
// a failure.
func (s *DiskStore) enforceQuarantineCap() {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	ents, err := os.ReadDir(s.qdir)
	if err != nil {
		return
	}
	type qfile struct {
		name string
		size int64
		mod  int64 // unix nanos
	}
	files := make([]qfile, 0, len(ents))
	var total int64
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, qfile{e.Name(), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	if len(files) <= quarantineMaxEntries && total <= quarantineMaxBytes {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mod != files[j].mod {
			return files[i].mod < files[j].mod
		}
		return files[i].name < files[j].name
	})
	for i := 0; i < len(files) && (len(files)-i > quarantineMaxEntries || total > quarantineMaxBytes); i++ {
		if err := os.Remove(filepath.Join(s.qdir, files[i].name)); err != nil {
			continue
		}
		total -= files[i].size
		mQEvicted.Inc()
		slog.Warn("rstore: rotated oldest quarantined entry out (quarantine cap)",
			"entry", files[i].name)
	}
}

// Close releases the store. The disk backend holds no open handles, so
// this is a no-op kept for the Store contract.
func (s *DiskStore) Close() error { return nil }

// shortFP abbreviates a fingerprint for log and error messages.
func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12] + "…"
	}
	return fp
}

// writeFileSync writes b to path and fsyncs the file before closing, so
// the subsequent rename can only expose fully durable bytes.
func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-renamed entry's directory record is
// durable. Filesystems that refuse directory fsync (EINVAL on some network
// mounts) are tolerated: the rename stays atomic, only durability-after-
// crash degrades to the mount's own policy.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}
