package rstore

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"

	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

func counter(name string) int64 {
	return obs.Default().Snapshot().Counters[name]
}

// entryFile returns the single *.res file under the store's object tree,
// failing the test unless exactly n exist (returns the first).
func entryFiles(t *testing.T, s *DiskStore, n int) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(s.odir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == entryExt {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != n {
		t.Fatalf("got %d entry files, want %d", len(files), n)
	}
	return files
}

func quarantined(t *testing.T, s *DiskStore) []string {
	t.Helper()
	ents, err := os.ReadDir(s.qdir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestEntryRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)} {
		b, err := EncodeEntry("fp-1", payload)
		if err != nil {
			t.Fatal(err)
		}
		fp, got, err := DecodeEntry(b)
		if err != nil {
			t.Fatal(err)
		}
		if fp != "fp-1" || !bytes.Equal(got, payload) {
			t.Fatalf("round trip mismatch: fp=%q payload=%d bytes", fp, len(got))
		}
	}
	if _, err := EncodeEntry("", nil); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("empty fingerprint: got %v, want ErrInvalidConfig", err)
	}
}

func TestEntryEveryBitFlipDetected(t *testing.T) {
	b, err := EncodeEntry("fingerprint", []byte("payload bytes"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		mut := bytes.Clone(b)
		mut[i] ^= 0x40
		if _, _, err := DecodeEntry(mut); err == nil {
			t.Fatalf("flip at offset %d went undetected", i)
		} else if !errors.Is(err, guard.ErrCorrupt) {
			t.Fatalf("flip at offset %d: got %v, want ErrCorrupt", i, err)
		}
	}
	// Every truncation must be detected too (torn write).
	for n := 0; n < len(b); n++ {
		if _, _, err := DecodeEntry(b[:n]); !errors.Is(err, guard.ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrCorrupt", n, err)
		}
	}
}

func TestEntryForeignVersionRejected(t *testing.T) {
	b, err := EncodeEntry("fp", []byte("v2 payload"))
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(b[4:8], EntryVersion+1)
	if _, _, err := DecodeEntry(b); !errors.Is(err, guard.ErrCorrupt) {
		t.Fatalf("foreign version: got %v, want ErrCorrupt", err)
	}
}

func TestEntryImplausibleLengthsRejected(t *testing.T) {
	b, _ := EncodeEntry("fp", []byte("p"))
	for _, off := range []int{8, 12} { // fpLen, payLen
		mut := bytes.Clone(b)
		binary.LittleEndian.PutUint32(mut[off:off+4], 0xFFFFFFFF)
		if _, _, err := DecodeEntry(mut); !errors.Is(err, guard.ErrCorrupt) {
			t.Fatalf("huge length at %d: got %v, want ErrCorrupt", off, err)
		}
	}
}

func TestDiskPutGetAndMiss(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss: got %v, want ErrNotFound", err)
	}
	if err := s.Put("fp-a", []byte("row-a")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("fp-a")
	if err != nil || string(got) != "row-a" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Overwrite is atomic last-writer-wins.
	if err := s.Put("fp-a", []byte("row-a2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get("fp-a"); string(got) != "row-a2" {
		t.Fatalf("after overwrite Get = %q", got)
	}
}

func TestDiskGetQuarantinesBitFlip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fp-b", []byte("precious")); err != nil {
		t.Fatal(err)
	}
	path := entryFiles(t, s, 1)[0]
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	before := counter("rstore.corrupt_quarantined")
	if _, err := s.Get("fp-b"); !errors.Is(err, guard.ErrCorrupt) {
		t.Fatalf("Get on flipped entry: got %v, want ErrCorrupt", err)
	}
	if got := counter("rstore.corrupt_quarantined") - before; got != 1 {
		t.Fatalf("corrupt_quarantined delta = %d, want 1", got)
	}
	if q := quarantined(t, s); len(q) != 1 {
		t.Fatalf("quarantine holds %v, want one entry", q)
	}
	// The bad copy is gone: reads now miss instead of re-reading garbage.
	if _, err := s.Get("fp-b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after quarantine: got %v, want ErrNotFound", err)
	}
}

func TestDiskRecoveryScan(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("keep", []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("torn", []byte("will be truncated")); err != nil {
		t.Fatal(err)
	}
	// A SIGKILL between write and rename leaves a *.tmp orphan.
	good := entryFiles(t, s, 2)[0]
	if err := os.WriteFile(good+".tmp", []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Tear the second entry (truncate mid-payload).
	var torn string
	for _, f := range entryFiles(t, s, 2) {
		raw, _ := os.ReadFile(f)
		if _, p, err := DecodeEntry(raw); err == nil && string(p) == "will be truncated" {
			torn = f
		}
	}
	raw, _ := os.ReadFile(torn)
	if err := os.WriteFile(torn, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	// An entry filed under the wrong name (hard-linked / renamed garbage).
	misfiled, _ := EncodeEntry("some-other-fp", []byte("misfiled"))
	if err := os.WriteFile(filepath.Join(filepath.Dir(good), "00deadbeef"+entryExt), misfiled, 0o644); err != nil {
		t.Fatal(err)
	}
	// A file the store does not own is left alone.
	foreign := filepath.Join(filepath.Dir(good), "notes.txt")
	if err := os.WriteFile(foreign, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenDisk(dir)
	if err != nil {
		t.Fatalf("scan over damaged store must not fail: %v", err)
	}
	r := s2.Report()
	if r.Entries != 1 || r.Quarantined != 2 || r.TmpRemoved != 1 {
		t.Fatalf("scan report = %+v, want entries=1 quarantined=2 tmp_removed=1", r)
	}
	if got, err := s2.Get("keep"); err != nil || string(got) != "good" {
		t.Fatalf("surviving entry: %q, %v", got, err)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign file must be untouched: %v", err)
	}
	if q := quarantined(t, s2); len(q) != 2 {
		t.Fatalf("quarantine holds %v, want two entries", q)
	}
}

func TestDiskScanFaultInjection(t *testing.T) {
	defer guard.DisarmAll()
	dir := t.TempDir()
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fp", []byte("x")); err != nil {
		t.Fatal(err)
	}
	defer guard.Arm("rstore.scan", guard.Fault{Err: errors.New("injected scan failure")})()
	s2, err := OpenDisk(dir)
	if err != nil {
		t.Fatalf("scan with per-entry fault must still open: %v", err)
	}
	if r := s2.Report(); r.Quarantined != 1 || r.Entries != 0 {
		t.Fatalf("scan report = %+v, want the unreadable entry quarantined", r)
	}
}

func TestPutFaultInjection(t *testing.T) {
	defer guard.DisarmAll()
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer guard.Arm("rstore.write", guard.Fault{Err: syscall.ENOSPC, Count: 1})()
	if err := s.Put("fp", []byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Put under ENOSPC: got %v", err)
	}
	entryFiles(t, s, 0)
	// The next write (disk recovered) succeeds.
	if err := s.Put("fp", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestReadFaultDegradesLookup(t *testing.T) {
	defer guard.DisarmAll()
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fp", []byte("x")); err != nil {
		t.Fatal(err)
	}
	c := NewCache(s)
	defer guard.Arm("rstore.read", guard.Fault{Err: guard.Unavailable("injected io error"), Count: 1})()
	before := counter("rstore.degraded")
	if c.Lookup(context.Background(), "fp", func([]byte) error { return nil }) {
		t.Fatal("Lookup must degrade under a read fault")
	}
	if got := counter("rstore.degraded") - before; got != 1 {
		t.Fatalf("degraded delta = %d, want 1", got)
	}
	// Fault cleared: the entry is intact and the lookup hits.
	if !c.Lookup(context.Background(), "fp", func([]byte) error { return nil }) {
		t.Fatal("Lookup must hit once the fault clears")
	}
}

func TestLookupRejectedPayloadQuarantined(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("fp", []byte("checksum-valid but semantically bad")); err != nil {
		t.Fatal(err)
	}
	c := NewCache(s)
	before := counter("rstore.corrupt_quarantined")
	ok := c.Lookup(context.Background(), "fp", func([]byte) error {
		return guard.Corrupt("verify says no")
	})
	if ok {
		t.Fatal("Lookup must fail when verify rejects")
	}
	if got := counter("rstore.corrupt_quarantined") - before; got != 1 {
		t.Fatalf("corrupt_quarantined delta = %d, want 1", got)
	}
	if _, err := s.Get("fp"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rejected entry must be quarantined: got %v", err)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(s)
	var calls atomic.Int32
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([][]byte, waiters)
	sharedCount := atomic.Int32{}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload, shared, err := c.Compute(context.Background(), "fp", func() ([]byte, error) {
				calls.Add(1)
				<-release // hold the flight open until everyone has joined
				return []byte("the answer"), nil
			})
			if err != nil {
				t.Error(err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = payload
		}(i)
	}
	// Wait until the leader is inside fn, then let the flight finish. The
	// waiters may not all have joined yet, but at least the leader is
	// committed; joining later is also fine (they hit the flight map).
	for calls.Load() == 0 {
	}
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1", calls.Load())
	}
	for i, r := range results {
		if string(r) != "the answer" {
			t.Fatalf("waiter %d got %q", i, r)
		}
	}
	// The leader persisted; a later lookup hits from disk.
	if !c.Lookup(context.Background(), "fp", func(p []byte) error {
		if string(p) != "the answer" {
			return guard.Corrupt("bad bytes")
		}
		return nil
	}) {
		t.Fatal("persisted flight result must be readable")
	}
}

func TestCacheComputeErrorPropagates(t *testing.T) {
	s, err := OpenDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(s)
	boom := errors.New("eval failed")
	if _, _, err := c.Compute(context.Background(), "fp", func() ([]byte, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the compute error", err)
	}
	// Failures are never persisted.
	if _, err := s.Get("fp"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed compute must not persist: got %v", err)
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if c.Lookup(context.Background(), "fp", func([]byte) error { return nil }) {
		t.Fatal("nil cache must miss")
	}
	payload, shared, err := c.Compute(context.Background(), "fp", func() ([]byte, error) {
		return []byte("direct"), nil
	})
	if err != nil || shared || string(payload) != "direct" {
		t.Fatalf("nil cache Compute = %q, %v, %v", payload, shared, err)
	}
	c.Add("fp", []byte("x"))
	c.ReportBad(context.Background(), "fp", errors.New("x"))
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if NewCache(nil) != nil {
		t.Fatal("NewCache(nil) must be nil")
	}
}
