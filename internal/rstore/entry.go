package rstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"

	"neurometer/internal/guard"
)

// The on-disk entry codec. An entry is a self-verifying envelope around an
// opaque payload:
//
//	offset 0   magic   "NMRS"
//	offset 4   version uint32 LE (EntryVersion)
//	offset 8   fpLen   uint32 LE
//	offset 12  payLen  uint32 LE
//	offset 16  fingerprint (fpLen bytes)
//	...        payload     (payLen bytes)
//	last 32    SHA-256 over every preceding byte
//
// The embedded fingerprint ties the bytes to the result they claim to be —
// a file renamed or hard-linked onto the wrong key fails verification even
// with an intact checksum — and the trailing digest catches torn writes
// (truncation) and bit flips anywhere in the envelope. Decode never
// panics and never trusts a length field it has not bounds-checked, so
// arbitrary on-disk garbage (or fuzzer input) classifies cleanly as
// guard.ErrCorrupt instead of crashing the reader.

// EntryVersion is bumped whenever the envelope or payload format changes;
// readers quarantine entries from any other version instead of guessing.
const EntryVersion = 1

const (
	entryMagic    = "NMRS"
	entryHeader   = 16 // magic + version + fpLen + payLen
	entryChecksum = sha256.Size

	// maxFingerprint / maxPayload bound the length fields a decoder will
	// believe, so a corrupt header cannot drive a multi-gigabyte
	// allocation.
	maxFingerprint = 1 << 16
	maxPayload     = 64 << 20
)

// EncodeEntry wraps a payload in the checksummed envelope.
func EncodeEntry(fingerprint string, payload []byte) ([]byte, error) {
	if fingerprint == "" {
		return nil, guard.Invalid("rstore: empty fingerprint")
	}
	if len(fingerprint) > maxFingerprint {
		return nil, guard.Invalid("rstore: fingerprint is %d bytes, max %d", len(fingerprint), maxFingerprint)
	}
	if len(payload) > maxPayload {
		return nil, guard.Invalid("rstore: payload is %d bytes, max %d", len(payload), maxPayload)
	}
	b := make([]byte, 0, entryHeader+len(fingerprint)+len(payload)+entryChecksum)
	b = append(b, entryMagic...)
	b = binary.LittleEndian.AppendUint32(b, EntryVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(fingerprint)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, fingerprint...)
	b = append(b, payload...)
	sum := sha256.Sum256(b)
	return append(b, sum[:]...), nil
}

// DecodeEntry unwraps and verifies an envelope: magic, version, length
// sanity, and the trailing checksum. Every failure wraps guard.ErrCorrupt;
// callers quarantine the bytes and recompute. The returned payload aliases
// b.
func DecodeEntry(b []byte) (fingerprint string, payload []byte, err error) {
	if len(b) < entryHeader+entryChecksum {
		return "", nil, guard.Corrupt("rstore: entry truncated to %d bytes", len(b))
	}
	if string(b[:4]) != entryMagic {
		return "", nil, guard.Corrupt("rstore: bad magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != EntryVersion {
		return "", nil, guard.Corrupt("rstore: entry version %d, this build reads version %d", v, EntryVersion)
	}
	fpLen := binary.LittleEndian.Uint32(b[8:12])
	payLen := binary.LittleEndian.Uint32(b[12:16])
	if fpLen == 0 || fpLen > maxFingerprint || payLen > maxPayload {
		return "", nil, guard.Corrupt("rstore: implausible lengths fp=%d payload=%d", fpLen, payLen)
	}
	want := entryHeader + int(fpLen) + int(payLen) + entryChecksum
	if len(b) != want {
		return "", nil, guard.Corrupt("rstore: entry is %d bytes, header promises %d", len(b), want)
	}
	body := b[:want-entryChecksum]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], b[want-entryChecksum:]) {
		return "", nil, guard.Corrupt("rstore: checksum mismatch")
	}
	fp := string(b[entryHeader : entryHeader+fpLen])
	return fp, b[entryHeader+fpLen : entryHeader+int(fpLen)+int(payLen)], nil
}
