// Package rstore is the persistent, content-addressed result store: every
// NeuroMeter evaluation is a pure function of its candidate fingerprint,
// so a verified byte-for-byte copy of a previous result can stand in for
// re-running the models — across studies, across processes, and across
// fleet workers sharing a disk.
//
// The contract that makes the cache safe to trust is verified degradation:
// a store may make an evaluation cheaper, but no store fault — torn write,
// flipped bit, foreign format version, full disk, unreadable mount — may
// ever change a result, fail a study, or crash the process. Every read is
// re-verified (envelope checksum, embedded-fingerprint match, and the
// caller's own payload validation); anything that fails verification is
// quarantined and the caller silently falls back to evaluating. A study
// run against a cold store, a warm store, a poisoned store, or no store at
// all produces byte-identical output.
//
// Concurrency within a process is deduplicated by single-flight: when many
// studies want the same missing fingerprint, one evaluates and the rest
// wait for its bytes.
package rstore

import (
	"context"
	"errors"
	"log/slog"
	"sync"

	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

// ErrNotFound reports a fingerprint with no stored entry: the one store
// outcome that is a plain miss rather than a degradation.
var ErrNotFound = errors.New("rstore: not found")

// Store is the pluggable persistence backend. Implementations must be safe
// for concurrent use and must honor the degradation contract: Get returns
// ErrNotFound for absent entries and a guard-classified error (quarantining
// the bytes when they are corrupt) for everything else; Put either persists
// durably or returns an error — a partial entry must never become visible.
type Store interface {
	// Get returns the verified payload stored under fp, ErrNotFound when
	// there is none, or a guard-classified error when the entry exists
	// but cannot be trusted (in which case it has been quarantined).
	Get(fp string) ([]byte, error)
	// Put durably stores payload under fp.
	Put(fp string, payload []byte) error
	// Quarantine moves the entry for fp aside because a higher layer's
	// verification rejected its (checksum-valid) payload.
	Quarantine(fp string, reason error)
	// Close releases backend resources.
	Close() error
}

// Counters for the -metrics snapshot. hits/misses tell the cache story;
// corrupt_quarantined and degraded tell the robustness story — CI chaos
// jobs assert on both.
var (
	mHits          = obs.NewCounter("rstore.hits")
	mMisses        = obs.NewCounter("rstore.misses")
	mQuarantined   = obs.NewCounter("rstore.corrupt_quarantined")
	mDegraded      = obs.NewCounter("rstore.degraded")
	mWriteFailures = obs.NewCounter("rstore.write_failures")
	mTmpRemoved    = obs.NewCounter("rstore.tmp_removed")
	mDeduped       = obs.NewCounter("rstore.singleflight_deduped")
	mQEvicted      = obs.NewCounter("rstore.quarantine_evicted")
)

// Cache is the process-facing face of a Store: read-path verification,
// degradation accounting, and in-process single-flight. A nil *Cache is
// valid and behaves as "no store": lookups miss, computes run, writes are
// dropped — so call sites wire it through unconditionally.
type Cache struct {
	store Store

	mu     sync.Mutex
	flight map[string]*flightCall
}

// flightCall is one in-progress computation other callers can wait on.
type flightCall struct {
	done    chan struct{}
	payload []byte
	err     error
}

// NewCache wraps a backend store. A nil store yields a nil Cache.
func NewCache(s Store) *Cache {
	if s == nil {
		return nil
	}
	return &Cache{store: s, flight: make(map[string]*flightCall)}
}

// Close closes the backend.
func (c *Cache) Close() error {
	if c == nil {
		return nil
	}
	return c.store.Close()
}

// Lookup fetches and fully verifies the entry for fp, reporting whether it
// can be trusted. verify receives the stored payload and must reject
// anything it would not have produced itself (undeserializable bytes,
// identity mismatch, non-finite metrics); it runs after the envelope
// checks, so by the time it sees bytes their checksum and embedded
// fingerprint already matched. Lookup never fails: every non-hit outcome —
// miss, corrupt entry, unreadable backend, rejected payload — returns
// false and the caller evaluates. Only a plain miss counts as a miss;
// everything else counts (and traces) as a degradation.
func (c *Cache) Lookup(ctx context.Context, fp string, verify func(payload []byte) error) bool {
	if c == nil {
		return false
	}
	payload, err := c.store.Get(fp)
	switch {
	case err == nil:
	case errors.Is(err, ErrNotFound):
		mMisses.Inc()
		return false
	default:
		c.degrade(ctx, err)
		return false
	}
	if err := verify(payload); err != nil {
		c.store.Quarantine(fp, err)
		c.degrade(ctx, err)
		return false
	}
	mHits.Inc()
	obs.Event(ctx, "rstore.hit")
	return true
}

// degrade records a fallback-to-evaluation for any reason other than a
// plain miss.
func (c *Cache) degrade(ctx context.Context, err error) {
	mDegraded.Inc()
	obs.Event(ctx, "rstore.degraded", obs.String("kind", guard.Kind(err)))
	slog.Debug("rstore: degraded to evaluation", "kind", guard.Kind(err), "err", err)
}

// Compute runs fn under single-flight for fp: the first caller (the
// leader) computes, and concurrent callers for the same fingerprint wait
// and share the leader's bytes instead of re-evaluating. On success the
// leader best-effort persists the payload — a write failure (ENOSPC, bad
// mount) is counted and logged but never surfaces, because persistence is
// an optimization, not part of the result.
//
// The return distinguishes who did the work: shared is false for the
// leader (payload is exactly what fn returned — callers that captured
// richer state in fn's closure should prefer that) and true for waiters
// (payload is the leader's bytes, which the waiter must verify-decode
// like any other cached read). A compute error propagates to every caller
// in the flight; waiters treat it as their own evaluation failing.
//
// A waiter whose ctx ends first stops waiting and returns the classified
// context error, exactly as if its own evaluation had timed out.
func (c *Cache) Compute(ctx context.Context, fp string, fn func() ([]byte, error)) (payload []byte, shared bool, err error) {
	if c == nil {
		p, err := fn()
		return p, false, err
	}
	c.mu.Lock()
	if f, ok := c.flight[fp]; ok {
		c.mu.Unlock()
		mDeduped.Inc()
		select {
		case <-f.done:
			return f.payload, true, f.err
		case <-ctx.Done():
			return nil, false, guard.CtxErr(ctx)
		}
	}
	f := &flightCall{done: make(chan struct{})}
	c.flight[fp] = f
	c.mu.Unlock()

	f.payload, f.err = fn()
	// A nil payload with a nil error means "nothing to persist" (the
	// caller kept its result out-of-band); don't write an empty entry.
	if f.err == nil && f.payload != nil {
		c.put(fp, f.payload)
	}
	c.mu.Lock()
	delete(c.flight, fp)
	c.mu.Unlock()
	close(f.done)
	return f.payload, false, f.err
}

// Add best-effort persists a payload computed elsewhere (a fleet worker's
// shard outcome, a remote dispatch result) under fp. Failures are counted
// and logged, never returned: the result already exists — only its
// durability is at stake.
func (c *Cache) Add(fp string, payload []byte) {
	if c == nil {
		return
	}
	c.put(fp, payload)
}

// put persists payload under fp, absorbing failures into the
// write_failures counter.
func (c *Cache) put(fp string, payload []byte) {
	if err := c.store.Put(fp, payload); err != nil {
		mWriteFailures.Inc()
		slog.Warn("rstore: result not persisted", "kind", guard.Kind(err), "err", err)
	}
}

// ReportBad quarantines the stored entry for fp after a caller's own
// verification rejected payload bytes obtained outside Lookup (for
// example, a single-flight waiter that failed to decode the leader's
// bytes), and counts the degradation.
func (c *Cache) ReportBad(ctx context.Context, fp string, reason error) {
	if c == nil {
		return
	}
	c.store.Quarantine(fp, reason)
	c.degrade(ctx, reason)
}
