package rstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// setQuarantineCaps tightens the quarantine bounds for one test and
// restores the defaults on cleanup.
func setQuarantineCaps(t *testing.T, entries int, bytes int64) {
	t.Helper()
	oldE, oldB := quarantineMaxEntries, quarantineMaxBytes
	quarantineMaxEntries, quarantineMaxBytes = entries, bytes
	t.Cleanup(func() { quarantineMaxEntries, quarantineMaxBytes = oldE, oldB })
}

// plantGarbageEntry writes a syntactically-placed but corrupt *.res file
// into the object tree, backdated by age so eviction order is testable.
func plantGarbageEntry(t *testing.T, dir string, i int, age time.Duration) {
	t.Helper()
	sub := filepath.Join(dir, "objects", fmt.Sprintf("%02x", i))
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(sub, fmt.Sprintf("%040x", i)+entryExt)
	if err := os.WriteFile(path, []byte(fmt.Sprintf("garbage-%d", i)), 0o644); err != nil {
		t.Fatal(err)
	}
	mt := time.Now().Add(-age)
	if err := os.Chtimes(path, mt, mt); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineFloodStaysUnderCap is the regression test for the bounded
// quarantine: a flood of corrupt entries at startup must leave the
// quarantine directory at or under the entry cap, rotate the oldest
// entries out first, and account each removal in rstore.quarantine_evicted.
func TestQuarantineFloodStaysUnderCap(t *testing.T) {
	const cap = 5
	setQuarantineCaps(t, cap, 1<<20)
	dir := t.TempDir()
	const flood = 20
	for i := 0; i < flood; i++ {
		// Older index = older mtime; the scan quarantines in directory
		// order, so mtimes inherited by rename decide eviction order.
		plantGarbageEntry(t, dir, i, time.Duration(flood-i)*time.Hour)
	}

	evictedBefore := counter("rstore.quarantine_evicted")
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if got := s.Report().Quarantined; got != flood {
		t.Fatalf("scan quarantined %d entries, want %d", got, flood)
	}
	q := quarantined(t, s)
	if len(q) > cap {
		t.Fatalf("quarantine holds %d entries after flood, cap is %d: %v", len(q), cap, q)
	}
	evicted := counter("rstore.quarantine_evicted") - evictedBefore
	if want := int64(flood - cap); evicted != want {
		t.Fatalf("rstore.quarantine_evicted advanced by %d, want %d", evicted, want)
	}
	// The survivors must be the newest entries (highest indices).
	for _, name := range q {
		var idx int
		if _, err := fmt.Sscanf(name, "%x", &idx); err != nil {
			t.Fatalf("unexpected quarantine entry name %q", name)
		}
		if idx < flood-cap {
			t.Errorf("old entry %q survived rotation; want only the %d newest", name, cap)
		}
	}
}

// TestQuarantineByteCap checks the byte bound independently of the entry
// bound: entries rotate out oldest-first until total size fits.
func TestQuarantineByteCap(t *testing.T) {
	setQuarantineCaps(t, 1000, 30) // each garbage entry is ~9-10 bytes
	dir := t.TempDir()
	for i := 0; i < 8; i++ {
		plantGarbageEntry(t, dir, i, time.Duration(8-i)*time.Hour)
	}
	s, err := OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var total int64
	ents, err := os.ReadDir(s.qdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}
	if total > 30 {
		t.Fatalf("quarantine holds %d bytes, cap is 30", total)
	}
	if len(ents) == 0 {
		t.Fatal("byte cap evicted everything; newest entries should survive")
	}
}
