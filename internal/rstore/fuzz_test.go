package rstore

import (
	"bytes"
	"errors"
	"testing"

	"neurometer/internal/guard"
)

// FuzzDecodeEntry throws arbitrary bytes at the entry decoder: no input
// may panic or allocate past the length bounds, every rejection must
// classify as guard.ErrCorrupt, and anything the decoder accepts must
// re-encode to the exact same bytes (the envelope has no redundant
// freedom). Corpus seeds cover the interesting boundaries: valid entries,
// truncations, and headers promising more than they deliver.
func FuzzDecodeEntry(f *testing.F) {
	valid, _ := EncodeEntry("fp", []byte("payload"))
	empty, _ := EncodeEntry("k", nil)
	f.Add([]byte{})
	f.Add([]byte("NMRS"))
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(empty)
	f.Add(bytes.Repeat([]byte{0xFF}, entryHeader+entryChecksum))

	f.Fuzz(func(t *testing.T, b []byte) {
		fp, payload, err := DecodeEntry(b) // must never panic
		if err != nil {
			if !errors.Is(err, guard.ErrCorrupt) {
				t.Fatalf("rejection not classified as ErrCorrupt: %v", err)
			}
			return
		}
		re, eerr := EncodeEntry(fp, payload)
		if eerr != nil {
			t.Fatalf("accepted entry does not re-encode: %v", eerr)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("accepted entry is not canonical: %d in, %d out", len(b), len(re))
		}
	})
}

// FuzzEncodeDecodeRoundTrip drives the codec end to end: every encodable
// (fingerprint, payload) pair must decode back to itself.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add("fp", []byte("payload"))
	f.Add("x", []byte{})
	f.Add("long-fingerprint-with-|delimiters|", []byte{0, 1, 2, 0xFF})

	f.Fuzz(func(t *testing.T, fp string, payload []byte) {
		b, err := EncodeEntry(fp, payload)
		if err != nil {
			return // rejected input (empty/oversized fingerprint) is fine
		}
		gotFP, gotPayload, err := DecodeEntry(b)
		if err != nil {
			t.Fatalf("encoded entry does not decode: %v", err)
		}
		if gotFP != fp || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip mismatch: fp=%q payload=%d bytes", gotFP, len(gotPayload))
		}
	})
}
