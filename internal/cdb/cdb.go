// Package cdb models NeuroMeter's Central Data Bus: the intra-core
// interconnect between the VReg and the other functional components (TU,
// VU, Mem). Following §II-A, wires are assumed to route around the
// functional components, with length estimated as the square root of the
// component area, and are pipelined when long to meet the throughput
// requirement.
package cdb

import (
	"fmt"
	"math"

	"neurometer/internal/circuit"
	"neurometer/internal/pat"
	"neurometer/internal/tech"
)

// Endpoint is one component the bus connects to the VReg hub.
type Endpoint struct {
	Name string
	// AreaUM2 of the component: the wire to it routes around it, so its
	// length is sqrt(area).
	AreaUM2 float64
	// Bits of the connection (e.g. TU row width x operand bits).
	Bits int
}

// Config describes a core's central data bus.
type Config struct {
	Node tech.Node
	// Endpoints lists the components hanging off the VReg.
	Endpoints []Endpoint
	// CoreAreaUM2 is the total core area; the average route also crosses a
	// fraction of the core.
	CoreAreaUM2 float64
	// CyclePS is the target clock period (pipelining threshold).
	CyclePS float64
}

// Bus is an evaluated central data bus.
type Bus struct {
	Cfg Config

	perEndpoint []pat.Result
	stages      []int
	areaUM2     float64
	leakUW      float64
	critPS      float64
}

// Build evaluates the bus.
func Build(cfg Config) (*Bus, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, fmt.Errorf("cdb: at least one endpoint required")
	}
	if cfg.CyclePS <= 0 {
		return nil, fmt.Errorf("cdb: CyclePS must be positive")
	}
	b := &Bus{Cfg: cfg}
	for _, ep := range cfg.Endpoints {
		if ep.Bits <= 0 {
			return nil, fmt.Errorf("cdb: endpoint %q has no width", ep.Name)
		}
		lengthMM := math.Sqrt(ep.AreaUM2)/1000 + math.Sqrt(cfg.CoreAreaUM2)/1000*0.25
		w := circuit.Wire{
			Node: cfg.Node, Layer: tech.WireIntermediate,
			LengthMM: lengthMM,
			Bits:     ep.Bits,
		}
		res, st := w.Pipelined(cfg.CyclePS)
		b.perEndpoint = append(b.perEndpoint, res)
		b.stages = append(b.stages, st)
		b.areaUM2 += res.AreaUM2
		b.leakUW += res.LeakUW
		if res.DelayPS > b.critPS {
			b.critPS = res.DelayPS
		}
	}
	return b, nil
}

// AreaUM2 returns the total bus area.
func (b *Bus) AreaUM2() float64 { return b.areaUM2 }

// LeakUW returns total leakage.
func (b *Bus) LeakUW() float64 { return b.leakUW }

// CritPathPS returns the slowest (per-stage) wire delay.
func (b *Bus) CritPathPS() float64 { return b.critPS }

// TransferEnergyPJ returns the energy of one full-width transfer to the
// named endpoint (0 if absent).
func (b *Bus) TransferEnergyPJ(name string) float64 {
	for i, ep := range b.Cfg.Endpoints {
		if ep.Name == name {
			return b.perEndpoint[i].DynPJ
		}
	}
	return 0
}

// EnergyPerBytePJ returns the average per-byte transfer energy across all
// endpoints.
func (b *Bus) EnergyPerBytePJ() float64 {
	var pj, bytes float64
	for i, ep := range b.Cfg.Endpoints {
		pj += b.perEndpoint[i].DynPJ
		bytes += float64(ep.Bits) / 8
	}
	if bytes == 0 {
		return 0
	}
	return pj / bytes
}

// Stages returns the pipeline depth of the named endpoint's wire (-1 if
// absent).
func (b *Bus) Stages(name string) int {
	for i, ep := range b.Cfg.Endpoints {
		if ep.Name == name {
			return b.stages[i]
		}
	}
	return -1
}

// Result summarizes the bus; DynPJ is the average endpoint transfer.
func (b *Bus) Result() pat.Result {
	var dyn float64
	for _, r := range b.perEndpoint {
		dyn += r.DynPJ
	}
	return pat.Result{
		AreaUM2: b.areaUM2,
		DynPJ:   dyn / float64(len(b.perEndpoint)),
		LeakUW:  b.leakUW,
		DelayPS: b.critPS,
	}
}

func (b *Bus) String() string {
	return fmt.Sprintf("cdb[%d endpoints area=%.3fmm2 crit=%.0fps]",
		len(b.Cfg.Endpoints), b.areaUM2/1e6, b.critPS)
}
