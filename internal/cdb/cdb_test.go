package cdb

import (
	"testing"

	"neurometer/internal/tech/techtest"
)

const cycle700 = 1e12 / 700e6

func cfg() Config {
	return Config{
		Node: techtest.MustByNode(28),
		Endpoints: []Endpoint{
			{Name: "tu", AreaUM2: 5e6, Bits: 512},
			{Name: "vu", AreaUM2: 1e6, Bits: 512},
			{Name: "mem", AreaUM2: 10e6, Bits: 2048},
		},
		CoreAreaUM2: 30e6,
		CyclePS:     cycle700,
	}
}

func TestBuildValidation(t *testing.T) {
	c := cfg()
	c.Endpoints = nil
	if _, err := Build(c); err == nil {
		t.Errorf("no endpoints must fail")
	}
	c = cfg()
	c.CyclePS = 0
	if _, err := Build(c); err == nil {
		t.Errorf("zero cycle must fail")
	}
	c = cfg()
	c.Endpoints[0].Bits = 0
	if _, err := Build(c); err == nil {
		t.Errorf("zero-width endpoint must fail")
	}
}

func TestWireLengthFollowsComponentArea(t *testing.T) {
	// Bigger components mean longer routes (sqrt of area) and so more
	// transfer energy (§II-A CDB rule).
	b, err := Build(cfg())
	if err != nil {
		t.Fatal(err)
	}
	tuE := b.TransferEnergyPJ("tu") / 512
	memE := b.TransferEnergyPJ("mem") / 2048
	if memE <= tuE {
		t.Errorf("per-bit energy to the larger component must be higher: mem=%g tu=%g", memE, tuE)
	}
	if b.TransferEnergyPJ("nope") != 0 {
		t.Errorf("unknown endpoint must report 0")
	}
}

func TestPipeliningOnBigCores(t *testing.T) {
	big := cfg()
	big.Endpoints[2].AreaUM2 = 150e6 // a 150mm2 memory: ~12mm route
	big.CoreAreaUM2 = 400e6
	b, err := Build(big)
	if err != nil {
		t.Fatal(err)
	}
	if b.Stages("mem") < 1 {
		t.Errorf("12mm bus at 700MHz must pipeline, got %d stages", b.Stages("mem"))
	}
	if b.CritPathPS() > cycle700 {
		t.Errorf("pipelined bus must fit the cycle: %.0fps", b.CritPathPS())
	}
	if b.Stages("nope") != -1 {
		t.Errorf("unknown endpoint stage must be -1")
	}
}

func TestAccounting(t *testing.T) {
	b, err := Build(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if b.AreaUM2() <= 0 || b.EnergyPerBytePJ() <= 0 {
		t.Errorf("degenerate: area=%g e=%g", b.AreaUM2(), b.EnergyPerBytePJ())
	}
	if !b.Result().Valid() {
		t.Errorf("invalid result")
	}
	if b.String() == "" {
		t.Errorf("empty string")
	}
}
