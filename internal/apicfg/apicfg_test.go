package apicfg

import (
	"encoding/json"
	"errors"
	"testing"

	"neurometer/internal/chip"
	"neurometer/internal/guard"
	"neurometer/internal/maclib"
	"neurometer/internal/periph"
)

const sample = `{
  "name": "toy", "tech_nm": 28, "clock_hz": 700e6, "tx": 2, "ty": 4,
  "core": {
    "num_tus": 2, "tu_rows": 64, "tu_cols": 64, "tu_data_type": "int8",
    "has_su": true,
    "mem": [{"name": "spad", "capacity_bytes": 4194304}]
  },
  "noc_bisection_gbps": 256,
  "off_chip": [{"kind": "hbm", "gbps": 700}]
}`

func TestParseBuildsValidConfig(t *testing.T) {
	cfg, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "toy" || cfg.Tx != 2 || cfg.Ty != 4 {
		t.Fatalf("parsed config: %+v", cfg)
	}
	if cfg.Core.TUDataType != maclib.Int8 || !cfg.Core.HasSU {
		t.Fatalf("core: %+v", cfg.Core)
	}
	if len(cfg.OffChip) != 1 || cfg.OffChip[0].Kind != periph.HBMPort {
		t.Fatalf("off-chip: %+v", cfg.OffChip)
	}
	if _, err := chip.Build(cfg); err != nil {
		t.Fatalf("parsed config must build: %v", err)
	}
}

func TestParseRejectsBadEnumsAndJSON(t *testing.T) {
	if _, err := Parse([]byte(`{bad json`)); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("bad JSON: %v", err)
	}
	if _, err := Parse([]byte(`{"core":{"tu_data_type":"int4"}}`)); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("bad data type: %v", err)
	}
	if _, err := Parse([]byte(`{"off_chip":[{"kind":"smbus"}]}`)); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("bad port kind: %v", err)
	}
}

func TestPresetAndResolve(t *testing.T) {
	for _, name := range []string{"tpuv1", "tpuv2", "eyeriss"} {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Name == "" {
			t.Fatalf("%s: empty config", name)
		}
	}
	if _, err := Preset("tpu9"); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("unknown preset: %v", err)
	}

	if _, err := Resolve("", nil); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("neither source: %v", err)
	}
	if _, err := Resolve("tpuv1", json.RawMessage(sample)); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("both sources: %v", err)
	}
	if cfg, err := Resolve("", json.RawMessage(sample)); err != nil || cfg.Name != "toy" {
		t.Fatalf("inline resolve: %v %+v", err, cfg)
	}
	if cfg, err := Resolve("tpuv1", nil); err != nil || cfg.Name == "" {
		t.Fatalf("preset resolve: %v %+v", err, cfg)
	}
}
