package apicfg

import (
	"encoding/json"
	"errors"
	"testing"

	"neurometer/internal/chip"
	"neurometer/internal/guard"
	"neurometer/internal/maclib"
	"neurometer/internal/periph"
)

const sample = `{
  "name": "toy", "tech_nm": 28, "clock_hz": 700e6, "tx": 2, "ty": 4,
  "core": {
    "num_tus": 2, "tu_rows": 64, "tu_cols": 64, "tu_data_type": "int8",
    "has_su": true,
    "mem": [{"name": "spad", "capacity_bytes": 4194304}]
  },
  "noc_bisection_gbps": 256,
  "off_chip": [{"kind": "hbm", "gbps": 700}]
}`

func TestParseBuildsValidConfig(t *testing.T) {
	cfg, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "toy" || cfg.Tx != 2 || cfg.Ty != 4 {
		t.Fatalf("parsed config: %+v", cfg)
	}
	if cfg.Core.TUDataType != maclib.Int8 || !cfg.Core.HasSU {
		t.Fatalf("core: %+v", cfg.Core)
	}
	if len(cfg.OffChip) != 1 || cfg.OffChip[0].Kind != periph.HBMPort {
		t.Fatalf("off-chip: %+v", cfg.OffChip)
	}
	if _, err := chip.Build(cfg); err != nil {
		t.Fatalf("parsed config must build: %v", err)
	}
}

func TestParseRejectsBadEnumsAndJSON(t *testing.T) {
	if _, err := Parse([]byte(`{bad json`)); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("bad JSON: %v", err)
	}
	if _, err := Parse([]byte(`{"core":{"tu_data_type":"int4"}}`)); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("bad data type: %v", err)
	}
	if _, err := Parse([]byte(`{"off_chip":[{"kind":"smbus"}]}`)); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("bad port kind: %v", err)
	}
}

func TestPresetAndResolve(t *testing.T) {
	for _, name := range []string{"tpuv1", "tpuv2", "eyeriss"} {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Name == "" {
			t.Fatalf("%s: empty config", name)
		}
	}
	if _, err := Preset("tpu9"); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("unknown preset: %v", err)
	}

	if _, err := Resolve("", nil); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("neither source: %v", err)
	}
	if _, err := Resolve("tpuv1", json.RawMessage(sample)); !errors.Is(err, guard.ErrInvalidConfig) {
		t.Fatalf("both sources: %v", err)
	}
	if cfg, err := Resolve("", json.RawMessage(sample)); err != nil || cfg.Name != "toy" {
		t.Fatalf("inline resolve: %v %+v", err, cfg)
	}
	if cfg, err := Resolve("tpuv1", nil); err != nil || cfg.Name == "" {
		t.Fatalf("preset resolve: %v %+v", err, cfg)
	}
}

// TestParseRejectsUnknownFields: a typo in a config file must be an error,
// not a field silently falling back to its zero value.
func TestParseRejectsUnknownFields(t *testing.T) {
	cases := []string{
		`{"name": "x", "clokc_hz": 700e6}`,                       // top-level typo
		`{"name": "x", "core": {"num_tus": 2, "tu_row": 64}}`,    // nested typo
		`{"name": "x", "off_chip": [{"kind": "hbm", "gps": 1}]}`, // array-element typo
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c)); !errors.Is(err, guard.ErrInvalidConfig) {
			t.Errorf("Parse(%s) = %v, want invalid-config for unknown field", c, err)
		}
	}
	// Every documented field is still accepted.
	if _, err := Parse([]byte(sample)); err != nil {
		t.Fatalf("sample config must still parse: %v", err)
	}
}

// TestResolvePresetRoundTrip: resolving a preset by name yields exactly the
// configuration Preset returns — Resolve adds routing, not interpretation.
func TestResolvePresetRoundTrip(t *testing.T) {
	for _, name := range []string{"tpuv1", "tpuv2", "eyeriss"} {
		want, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%s): %v", name, err)
		}
		got, err := Resolve(name, nil)
		if err != nil {
			t.Fatalf("Resolve(%s, nil): %v", name, err)
		}
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got)
		if string(wb) != string(gb) {
			t.Errorf("Resolve(%s) differs from Preset(%s):\n%s\n%s", name, name, wb, gb)
		}
	}
}

// TestErrorMessagesGolden pins the exact user-facing error strings: clients
// and scripts match on them, so a rewording is an API change.
func TestErrorMessagesGolden(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"both sources", func() error { _, err := Resolve("tpuv1", json.RawMessage(sample)); return err }(),
			"invalid config: give either a preset or an inline config, not both"},
		{"neither source", func() error { _, err := Resolve("", nil); return err }(),
			"invalid config: a preset or an inline config is required"},
		{"unknown preset", func() error { _, err := Preset("tpu9"); return err }(),
			`invalid config: unknown preset "tpu9"`},
		{"unknown data type", func() error { _, err := Parse([]byte(`{"core":{"tu_data_type":"int4"}}`)); return err }(),
			`invalid config: unknown tu_data_type "int4"`},
		{"unknown port kind", func() error { _, err := Parse([]byte(`{"off_chip":[{"kind":"smbus"}]}`)); return err }(),
			`invalid config: unknown off_chip kind "smbus"`},
		{"unknown field", func() error { _, err := Parse([]byte(`{"bogus": 1}`)); return err }(),
			`invalid config: apicfg: json: unknown field "bogus"`},
	}
	for _, c := range cases {
		if c.err == nil || c.err.Error() != c.want {
			t.Errorf("%s:\n got  %v\n want %s", c.name, c.err, c.want)
		}
	}
}
