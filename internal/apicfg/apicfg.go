// Package apicfg is the user-facing JSON schema for accelerator
// descriptions, shared by cmd/neurometer (the -config flag) and the
// neurometerd serving layer (the /v1/chip/build and /v1/perfsim/simulate
// request bodies). It mirrors chip.Config with string enums for data
// types, topologies and port kinds, so the same chip description works on
// the command line and over the wire.
package apicfg

import (
	"bytes"
	"encoding/json"

	"neurometer/internal/chip"
	"neurometer/internal/guard"
	"neurometer/internal/maclib"
	"neurometer/internal/periph"
	"neurometer/internal/refchips"
)

// Config is the JSON accelerator description.
type Config struct {
	Name    string  `json:"name"`
	TechNM  int     `json:"tech_nm"`
	Vdd     float64 `json:"vdd,omitempty"`
	ClockHz float64 `json:"clock_hz,omitempty"`
	// TargetTOPS lets the tool search the clock instead.
	TargetTOPS float64 `json:"target_tops,omitempty"`
	Tx         int     `json:"tx"`
	Ty         int     `json:"ty"`

	Core struct {
		NumTUs         int    `json:"num_tus"`
		TURows         int    `json:"tu_rows"`
		TUCols         int    `json:"tu_cols"`
		TUDataType     string `json:"tu_data_type"`
		TUInterconnect string `json:"tu_interconnect,omitempty"` // unicast | multicast
		NumRTs         int    `json:"num_rts,omitempty"`
		RTInputs       int    `json:"rt_inputs,omitempty"`
		VULanes        int    `json:"vu_lanes,omitempty"`
		HasSU          bool   `json:"has_su,omitempty"`
		Mem            []struct {
			Name          string `json:"name"`
			CapacityBytes int64  `json:"capacity_bytes"`
			BlockBytes    int    `json:"block_bytes,omitempty"`
			Banks         int    `json:"banks,omitempty"`
		} `json:"mem"`
	} `json:"core"`

	NoCBisectionGBps float64 `json:"noc_bisection_gbps,omitempty"`
	OffChip          []struct {
		Kind  string  `json:"kind"` // ddr | hbm | pcie | ici | dma
		GBps  float64 `json:"gbps"`
		Count int     `json:"count,omitempty"`
	} `json:"off_chip,omitempty"`
	WhiteSpaceFrac float64 `json:"white_space_frac,omitempty"`
	AreaBudgetMM2  float64 `json:"area_budget_mm2,omitempty"`
	PowerBudgetW   float64 `json:"power_budget_w,omitempty"`
}

// ChipConfig converts the JSON schema to the model's configuration.
// Unknown enum strings fail with guard.ErrInvalidConfig.
func (j Config) ChipConfig() (chip.Config, error) {
	cfg := chip.Config{
		Name: j.Name, TechNM: j.TechNM, Vdd: j.Vdd,
		ClockHz: j.ClockHz, TargetTOPS: j.TargetTOPS,
		Tx: j.Tx, Ty: j.Ty,
		NoCBisectionGBps: j.NoCBisectionGBps,
		WhiteSpaceFrac:   j.WhiteSpaceFrac,
		AreaBudgetMM2:    j.AreaBudgetMM2,
		PowerBudgetW:     j.PowerBudgetW,
	}
	dt := map[string]maclib.DataType{
		"": maclib.Int8, "int8": maclib.Int8, "int16": maclib.Int16,
		"int32": maclib.Int32, "bf16": maclib.BF16,
		"fp16": maclib.FP16, "fp32": maclib.FP32,
	}
	d, ok := dt[j.Core.TUDataType]
	if !ok {
		return cfg, guard.Invalid("unknown tu_data_type %q", j.Core.TUDataType)
	}
	cfg.Core = chip.CoreConfig{
		NumTUs: j.Core.NumTUs, TURows: j.Core.TURows, TUCols: j.Core.TUCols,
		TUDataType: d,
		NumRTs:     j.Core.NumRTs, RTInputs: j.Core.RTInputs,
		VULanes: j.Core.VULanes, HasSU: j.Core.HasSU,
	}
	for _, m := range j.Core.Mem {
		cfg.Core.Mem = append(cfg.Core.Mem, chip.MemSegment{
			Name: m.Name, CapacityBytes: m.CapacityBytes,
			BlockBytes: m.BlockBytes, Banks: m.Banks,
		})
	}
	kinds := map[string]chip.OffChipPort{
		"ddr":  {Kind: periph.DDRPort},
		"hbm":  {Kind: periph.HBMPort},
		"pcie": {Kind: periph.PCIePort},
		"ici":  {Kind: periph.ICILink},
		"dma":  {Kind: periph.DMAEngine},
	}
	for _, p := range j.OffChip {
		port, ok := kinds[p.Kind]
		if !ok {
			return cfg, guard.Invalid("unknown off_chip kind %q", p.Kind)
		}
		port.GBps, port.Count = p.GBps, p.Count
		cfg.OffChip = append(cfg.OffChip, port)
	}
	return cfg, nil
}

// Parse decodes a JSON accelerator description into a chip configuration.
// Unknown fields are rejected: a typo like "clokc_hz" silently falling back
// to a default would misprice a chip, which is worse than an error.
func Parse(raw []byte) (chip.Config, error) {
	var j Config
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return chip.Config{}, guard.Invalid("apicfg: %v", err)
	}
	return j.ChipConfig()
}

// Preset resolves a bundled reference-chip name ("tpuv1" | "tpuv2" |
// "eyeriss") to its configuration.
func Preset(name string) (chip.Config, error) {
	switch name {
	case "tpuv1":
		return refchips.TPUv1(), nil
	case "tpuv2":
		return refchips.TPUv2(), nil
	case "eyeriss":
		return refchips.Eyeriss(), nil
	}
	return chip.Config{}, guard.Invalid("unknown preset %q", name)
}

// Resolve picks a chip configuration from a preset name or an inline JSON
// description — the shape both serving endpoints and the CLI share.
// Exactly one of the two must be provided.
func Resolve(preset string, raw json.RawMessage) (chip.Config, error) {
	switch {
	case preset != "" && len(raw) > 0:
		return chip.Config{}, guard.Invalid("give either a preset or an inline config, not both")
	case preset != "":
		return Preset(preset)
	case len(raw) > 0:
		return Parse(raw)
	}
	return chip.Config{}, guard.Invalid("a preset or an inline config is required")
}
