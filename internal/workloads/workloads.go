// Package workloads defines the ML models used by the paper's case studies
// as graph.Graph layer tables: ResNet-50, Inception-v3 and NasNet-A-Large
// for the datacenter study (Table II), and AlexNet for the Eyeriss runtime
// validation (Fig. 5(c)(d)).
package workloads

import (
	"fmt"

	"neurometer/internal/graph"
)

// AlexNet returns the classic five-conv AlexNet used by the Eyeriss paper
// (227x227 input, grouped conv2/4/5 modeled via reduced input channels).
func AlexNet() *graph.Graph {
	g := &graph.Graph{Name: "alexnet"}
	add := func(l graph.Layer) { g.Layers = append(g.Layers, l) }
	add(graph.Layer{Name: "conv1", Kind: graph.Conv2D, InH: 227, InW: 227, InC: 3, OutC: 96, KH: 11, KW: 11, Stride: 4})
	add(graph.Layer{Name: "pool1", Kind: graph.Pool, InH: 55, InW: 55, InC: 96, KH: 3, KW: 3, Stride: 2})
	add(graph.Layer{Name: "conv2", Kind: graph.Conv2D, InH: 27, InW: 27, InC: 48, OutC: 256, KH: 5, KW: 5, Stride: 1, SamePad: true})
	add(graph.Layer{Name: "pool2", Kind: graph.Pool, InH: 27, InW: 27, InC: 256, KH: 3, KW: 3, Stride: 2})
	add(graph.Layer{Name: "conv3", Kind: graph.Conv2D, InH: 13, InW: 13, InC: 256, OutC: 384, KH: 3, KW: 3, Stride: 1, SamePad: true})
	add(graph.Layer{Name: "conv4", Kind: graph.Conv2D, InH: 13, InW: 13, InC: 192, OutC: 384, KH: 3, KW: 3, Stride: 1, SamePad: true})
	add(graph.Layer{Name: "conv5", Kind: graph.Conv2D, InH: 13, InW: 13, InC: 192, OutC: 256, KH: 3, KW: 3, Stride: 1, SamePad: true})
	add(graph.Layer{Name: "pool5", Kind: graph.Pool, InH: 13, InW: 13, InC: 256, KH: 3, KW: 3, Stride: 2})
	add(graph.Layer{Name: "fc6", Kind: graph.MatMul, InH: 1, InW: 1, InC: 9216, OutC: 4096})
	add(graph.Layer{Name: "fc7", Kind: graph.MatMul, InH: 1, InW: 1, InC: 4096, OutC: 4096})
	add(graph.Layer{Name: "fc8", Kind: graph.MatMul, InH: 1, InW: 1, InC: 4096, OutC: 1000})
	return g
}

// Layer returns the named layer of a graph (for per-layer studies such as
// the Eyeriss AlexNet-Conv1/Conv5 runtime validation).
func Layer(g *graph.Graph, name string) (graph.Layer, error) {
	for _, l := range g.Layers {
		if l.Name == name {
			return l, nil
		}
	}
	return graph.Layer{}, fmt.Errorf("workloads: %s has no layer %q", g.Name, name)
}

// ResNet50 returns the ResNet-50 v1.5 table at 299x299 input (the
// inception-style preprocessing used in Google's TPU benchmark pipelines;
// the paper's Table II operand count of 7.8G multiply-adds matches this
// resolution, not the 224x224 variant's 4.1G).
func ResNet50() *graph.Graph {
	g := &graph.Graph{Name: "resnet"}
	add := func(l graph.Layer) { g.Layers = append(g.Layers, l) }
	add(graph.Layer{Name: "conv1", Kind: graph.Conv2D, InH: 299, InW: 299, InC: 3, OutC: 64, KH: 7, KW: 7, Stride: 2, SamePad: true})
	add(graph.Layer{Name: "pool1", Kind: graph.Pool, InH: 150, InW: 150, InC: 64, KH: 3, KW: 3, Stride: 2, SamePad: true})

	h, inC := 75, 64
	stage := func(name string, mid, out, blocks, stride int) {
		for b := 0; b < blocks; b++ {
			s := 1
			if b == 0 {
				s = stride
			}
			inH := h
			if b == 0 && stride > 1 {
				h = (h + stride - 1) / stride
			}
			// v1.5 places the stride on the 3x3.
			add(graph.Layer{Name: fmt.Sprintf("%s_b%d_1x1a", name, b), Kind: graph.Conv2D,
				InH: inH, InW: inH, InC: inC, OutC: mid, KH: 1, KW: 1, Stride: 1, SamePad: true})
			add(graph.Layer{Name: fmt.Sprintf("%s_b%d_3x3", name, b), Kind: graph.Conv2D,
				InH: inH, InW: inH, InC: mid, OutC: mid, KH: 3, KW: 3, Stride: s, SamePad: true})
			add(graph.Layer{Name: fmt.Sprintf("%s_b%d_1x1b", name, b), Kind: graph.Conv2D,
				InH: h, InW: h, InC: mid, OutC: out, KH: 1, KW: 1, Stride: 1, SamePad: true})
			if b == 0 {
				add(graph.Layer{Name: fmt.Sprintf("%s_b%d_down", name, b), Kind: graph.Conv2D,
					InH: inH, InW: inH, InC: inC, OutC: out, KH: 1, KW: 1, Stride: s, SamePad: true})
			}
			add(graph.Layer{Name: fmt.Sprintf("%s_b%d_add", name, b), Kind: graph.EltwiseAdd,
				InH: h, InW: h, InC: out})
			inC = out
		}
	}
	stage("s1", 64, 256, 3, 1)
	stage("s2", 128, 512, 4, 2)
	stage("s3", 256, 1024, 6, 2)
	stage("s4", 512, 2048, 3, 2)
	add(graph.Layer{Name: "gap", Kind: graph.GlobalPool, InH: h, InW: h, InC: 2048})
	add(graph.Layer{Name: "fc", Kind: graph.MatMul, InH: 1, InW: 1, InC: 2048, OutC: 1000})
	return g
}

// All returns the three datacenter case-study workloads of Table II.
func All() []*graph.Graph {
	return []*graph.Graph{ResNet50(), InceptionV3(), NasNetALarge()}
}

// ByName resolves a case-study workload.
func ByName(name string) (*graph.Graph, error) {
	switch name {
	case "resnet", "resnet50", "resnet-50":
		return ResNet50(), nil
	case "inception", "inception-v3", "inceptionv3":
		return InceptionV3(), nil
	case "nasnet", "nasnet-a-large", "nasnetalarge":
		return NasNetALarge(), nil
	case "alexnet":
		return AlexNet(), nil
	case "bert", "bert-base", "transformer":
		return BERTBase()
	case "mobilenet", "mobilenet-v1", "mobilenetv1":
		return MobileNetV1(), nil
	}
	return nil, fmt.Errorf("workloads: unknown model %q", name)
}
