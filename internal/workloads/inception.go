package workloads

import (
	"fmt"

	"neurometer/internal/graph"
)

// conv is a helper for building branch-heavy graphs.
type convSpec struct {
	name   string
	in     int // input channels
	out    int
	kh, kw int
	stride int
	same   bool
}

// InceptionV3 returns the Inception-v3 table (299x299 input), following the
// canonical channel configuration (stem, 3x InceptionA, grid reduction,
// 4x InceptionB, grid reduction, 2x InceptionC, classifier). Branch
// structure is linearized: each branch's convs appear in order and a Concat
// marks the join; the simulator treats layers independently, so
// linearization preserves MACs, params and footprints.
func InceptionV3() *graph.Graph {
	g := &graph.Graph{Name: "inception"}
	add := func(h int, c convSpec) {
		g.Layers = append(g.Layers, graph.Layer{
			Name: c.name, Kind: graph.Conv2D,
			InH: h, InW: h, InC: c.in, OutC: c.out,
			KH: c.kh, KW: c.kw, Stride: c.stride, SamePad: c.same,
		})
	}
	pool := func(name string, h, c, k, s int, same bool) {
		g.Layers = append(g.Layers, graph.Layer{
			Name: name, Kind: graph.Pool, InH: h, InW: h, InC: c, KH: k, KW: k, Stride: s, SamePad: same,
		})
	}
	concat := func(name string, h, c int) {
		g.Layers = append(g.Layers, graph.Layer{
			Name: name, Kind: graph.Concat, InH: h, InW: h, InC: c, OutC: c,
		})
	}

	// ---- Stem ----------------------------------------------------------------
	add(299, convSpec{"stem_conv1", 3, 32, 3, 3, 2, false})  // -> 149
	add(149, convSpec{"stem_conv2", 32, 32, 3, 3, 1, false}) // -> 147
	add(147, convSpec{"stem_conv3", 32, 64, 3, 3, 1, true})  // -> 147
	pool("stem_pool1", 147, 64, 3, 2, false)                 // -> 73
	add(73, convSpec{"stem_conv4", 64, 80, 1, 1, 1, false})  // -> 73
	add(73, convSpec{"stem_conv5", 80, 192, 3, 3, 1, false}) // -> 71
	pool("stem_pool2", 71, 192, 3, 2, false)                 // -> 35

	// ---- InceptionA x3 at 35x35 ------------------------------------------------
	inceptionA := func(idx, in, poolProj int) int {
		p := func(n string) string { return fmt.Sprintf("mixedA%d_%s", idx, n) }
		add(35, convSpec{p("b1_1x1"), in, 64, 1, 1, 1, true})
		add(35, convSpec{p("b2_1x1"), in, 48, 1, 1, 1, true})
		add(35, convSpec{p("b2_5x5"), 48, 64, 5, 5, 1, true})
		add(35, convSpec{p("b3_1x1"), in, 64, 1, 1, 1, true})
		add(35, convSpec{p("b3_3x3a"), 64, 96, 3, 3, 1, true})
		add(35, convSpec{p("b3_3x3b"), 96, 96, 3, 3, 1, true})
		pool(p("b4_pool"), 35, in, 3, 1, true)
		add(35, convSpec{p("b4_proj"), in, poolProj, 1, 1, 1, true})
		out := 64 + 64 + 96 + poolProj
		concat(p("concat"), 35, out)
		return out
	}
	c := 192
	c = inceptionA(0, c, 32) // 256
	c = inceptionA(1, c, 64) // 288
	c = inceptionA(2, c, 64) // 288

	// ---- Grid reduction to 17x17 -------------------------------------------------
	add(35, convSpec{"redB_b1_3x3", c, 384, 3, 3, 2, false}) // -> 17
	add(35, convSpec{"redB_b2_1x1", c, 64, 1, 1, 1, true})
	add(35, convSpec{"redB_b2_3x3a", 64, 96, 3, 3, 1, true})
	add(35, convSpec{"redB_b2_3x3b", 96, 96, 3, 3, 2, false}) // -> 17
	pool("redB_pool", 35, c, 3, 2, false)
	c = 384 + 96 + c // 768
	concat("redB_concat", 17, c)

	// ---- InceptionB x4 at 17x17 (7x1/1x7 factorized) ------------------------------
	inceptionB := func(idx, in, mid int) int {
		p := func(n string) string { return fmt.Sprintf("mixedB%d_%s", idx, n) }
		add(17, convSpec{p("b1_1x1"), in, 192, 1, 1, 1, true})
		add(17, convSpec{p("b2_1x1"), in, mid, 1, 1, 1, true})
		add(17, convSpec{p("b2_1x7"), mid, mid, 1, 7, 1, true})
		add(17, convSpec{p("b2_7x1"), mid, 192, 7, 1, 1, true})
		add(17, convSpec{p("b3_1x1"), in, mid, 1, 1, 1, true})
		add(17, convSpec{p("b3_7x1a"), mid, mid, 7, 1, 1, true})
		add(17, convSpec{p("b3_1x7a"), mid, mid, 1, 7, 1, true})
		add(17, convSpec{p("b3_7x1b"), mid, mid, 7, 1, 1, true})
		add(17, convSpec{p("b3_1x7b"), mid, 192, 1, 7, 1, true})
		pool(p("b4_pool"), 17, in, 3, 1, true)
		add(17, convSpec{p("b4_proj"), in, 192, 1, 1, 1, true})
		concat(p("concat"), 17, 768)
		return 768
	}
	c = inceptionB(0, c, 128)
	c = inceptionB(1, c, 160)
	c = inceptionB(2, c, 160)
	c = inceptionB(3, c, 192)

	// ---- Grid reduction to 8x8 ------------------------------------------------------
	add(17, convSpec{"redC_b1_1x1", c, 192, 1, 1, 1, true})
	add(17, convSpec{"redC_b1_3x3", 192, 320, 3, 3, 2, false}) // -> 8
	add(17, convSpec{"redC_b2_1x1", c, 192, 1, 1, 1, true})
	add(17, convSpec{"redC_b2_1x7", 192, 192, 1, 7, 1, true})
	add(17, convSpec{"redC_b2_7x1", 192, 192, 7, 1, 1, true})
	add(17, convSpec{"redC_b2_3x3", 192, 192, 3, 3, 2, false}) // -> 8
	pool("redC_pool", 17, c, 3, 2, false)
	c = 320 + 192 + c // 1280
	concat("redC_concat", 8, c)

	// ---- InceptionC x2 at 8x8 ----------------------------------------------------------
	inceptionC := func(idx, in int) int {
		p := func(n string) string { return fmt.Sprintf("mixedC%d_%s", idx, n) }
		add(8, convSpec{p("b1_1x1"), in, 320, 1, 1, 1, true})
		add(8, convSpec{p("b2_1x1"), in, 384, 1, 1, 1, true})
		add(8, convSpec{p("b2_1x3"), 384, 384, 1, 3, 1, true})
		add(8, convSpec{p("b2_3x1"), 384, 384, 3, 1, 1, true})
		add(8, convSpec{p("b3_1x1"), in, 448, 1, 1, 1, true})
		add(8, convSpec{p("b3_3x3"), 448, 384, 3, 3, 1, true})
		add(8, convSpec{p("b3_1x3"), 384, 384, 1, 3, 1, true})
		add(8, convSpec{p("b3_3x1"), 384, 384, 3, 1, 1, true})
		pool(p("b4_pool"), 8, in, 3, 1, true)
		add(8, convSpec{p("b4_proj"), in, 192, 1, 1, 1, true})
		out := 320 + 2*384 + 2*384 + 192 // 2048
		concat(p("concat"), 8, out)
		return out
	}
	c = inceptionC(0, c)
	c = inceptionC(1, c)

	// ---- Classifier ------------------------------------------------------------------------
	g.Layers = append(g.Layers,
		graph.Layer{Name: "gap", Kind: graph.GlobalPool, InH: 8, InW: 8, InC: c},
		graph.Layer{Name: "fc", Kind: graph.MatMul, InH: 1, InW: 1, InC: c, OutC: 1000},
	)
	return g
}
