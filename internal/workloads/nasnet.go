package workloads

import (
	"fmt"

	"neurometer/internal/graph"
)

// NasNetALarge returns a NASNet-A-Large (6 @ 4032, 331x331 input) layer
// table. The cell micro-structure follows the published NASNet-A normal and
// reduction cells (five separable-conv pairs plus pooling branches per
// normal cell, each separable conv applied twice as in the reference
// implementation), with the standard Large configuration: N=6 cell repeats
// per stack and F=168 base filters doubling at each reduction. The exact
// skip wiring between cells is simplified to adjacent-cell inputs, which
// preserves MAC/parameter/footprint totals within a few percent of the
// published 23.8 GFLOPs / ~85-89M parameters.
func NasNetALarge() *graph.Graph {
	g := &graph.Graph{Name: "nasnet"}
	sep := func(name string, h, in, out, k, stride int) {
		// NASNet separable conv = (depthwise k x k + pointwise 1x1) applied
		// twice; the second application has stride 1 and out->out channels.
		g.Layers = append(g.Layers,
			graph.Layer{Name: name + "_dw1", Kind: graph.DepthwiseConv2D,
				InH: h, InW: h, InC: in, KH: k, KW: k, Stride: stride, SamePad: true},
			graph.Layer{Name: name + "_pw1", Kind: graph.Conv2D,
				InH: outDim(h, stride), InW: outDim(h, stride), InC: in, OutC: out, KH: 1, KW: 1, Stride: 1, SamePad: true},
			graph.Layer{Name: name + "_dw2", Kind: graph.DepthwiseConv2D,
				InH: outDim(h, stride), InW: outDim(h, stride), InC: out, KH: k, KW: k, Stride: 1, SamePad: true},
			graph.Layer{Name: name + "_pw2", Kind: graph.Conv2D,
				InH: outDim(h, stride), InW: outDim(h, stride), InC: out, OutC: out, KH: 1, KW: 1, Stride: 1, SamePad: true},
		)
	}
	conv1x1 := func(name string, h, in, out int) {
		g.Layers = append(g.Layers, graph.Layer{Name: name, Kind: graph.Conv2D,
			InH: h, InW: h, InC: in, OutC: out, KH: 1, KW: 1, Stride: 1, SamePad: true})
	}
	pool := func(name string, h, c, stride int) {
		g.Layers = append(g.Layers, graph.Layer{Name: name, Kind: graph.Pool,
			InH: h, InW: h, InC: c, KH: 3, KW: 3, Stride: stride, SamePad: true})
	}

	// Normal cell at spatial h with F filters: inputs are squeezed to F via
	// 1x1, then five combinations (3 sep5x5/3x3 pairs + 2 pool/identity
	// branches); output is the concat of 6 F-wide tensors = 6F channels.
	normalCell := func(name string, h, inC, f int) int {
		conv1x1(name+"_squeeze_l", h, inC, f)
		conv1x1(name+"_squeeze_r", h, inC, f)
		sep(name+"_sep5a", h, f, f, 5, 1)
		sep(name+"_sep3a", h, f, f, 3, 1)
		sep(name+"_sep5b", h, f, f, 5, 1)
		sep(name+"_sep3b", h, f, f, 3, 1)
		sep(name+"_sep3c", h, f, f, 3, 1)
		pool(name+"_avg1", h, f, 1)
		pool(name+"_avg2", h, f, 1)
		out := 6 * f
		g.Layers = append(g.Layers, graph.Layer{Name: name + "_concat", Kind: graph.Concat,
			InH: h, InW: h, InC: out, OutC: out})
		return out
	}
	// Reduction cell: strided separable convs and pools; output 4F at h/2.
	reductionCell := func(name string, h, inC, f int) (int, int) {
		conv1x1(name+"_squeeze_l", h, inC, f)
		conv1x1(name+"_squeeze_r", h, inC, f)
		sep(name+"_sep5", h, f, f, 5, 2)
		sep(name+"_sep7", h, f, f, 7, 2)
		sep(name+"_sep5b", h, f, f, 5, 2)
		sep(name+"_sep3", h, f, f, 3, 2)
		pool(name+"_max", h, f, 2)
		h2 := outDim(h, 2)
		out := 4 * f
		g.Layers = append(g.Layers, graph.Layer{Name: name + "_concat", Kind: graph.Concat,
			InH: h2, InW: h2, InC: out, OutC: out})
		return h2, out
	}

	// ---- Stem ----------------------------------------------------------------
	g.Layers = append(g.Layers, graph.Layer{Name: "stem_conv", Kind: graph.Conv2D,
		InH: 331, InW: 331, InC: 3, OutC: 96, KH: 3, KW: 3, Stride: 2, SamePad: true}) // -> 166
	h, c := 166, 96
	h, c = reductionCell("stem_red1", h, c, 42) // -> 83, 168
	h, c = reductionCell("stem_red2", h, c, 84) // -> 42, 336

	// ---- Stack 1: 6 normal cells @ 42x42, F=168 --------------------------------
	f := 168
	for i := 0; i < 6; i++ {
		c = normalCell(fmt.Sprintf("n1_%d", i), h, c, f)
	}
	h, c = reductionCell("red1", h, c, 2*f) // -> 21, 1344

	// ---- Stack 2: 6 normal cells @ 21x21, F=336 ----------------------------------
	f = 336
	for i := 0; i < 6; i++ {
		c = normalCell(fmt.Sprintf("n2_%d", i), h, c, f)
	}
	h, c = reductionCell("red2", h, c, 2*f) // -> 11, 2688

	// ---- Stack 3: 6 normal cells @ 11x11, F=672 ------------------------------------
	f = 672
	for i := 0; i < 6; i++ {
		c = normalCell(fmt.Sprintf("n3_%d", i), h, c, f)
	}

	// ---- Classifier ------------------------------------------------------------------
	g.Layers = append(g.Layers,
		graph.Layer{Name: "gap", Kind: graph.GlobalPool, InH: h, InW: h, InC: c},
		graph.Layer{Name: "fc", Kind: graph.MatMul, InH: 1, InW: 1, InC: c, OutC: 1000},
	)
	return g
}

func outDim(in, stride int) int {
	if stride <= 1 {
		return in
	}
	return (in + stride - 1) / stride
}
