package workloads

import (
	"fmt"

	"neurometer/internal/graph"
)

// MobileNetV1 returns the standard MobileNet-224 table (1.0x width): a
// 3x3 stem convolution followed by thirteen depthwise-separable blocks and
// the classifier — ~569M MACs and ~4.2M parameters, the canonical
// edge-inference workload (and a stress test for the depthwise mapping
// path the datacenter CNNs barely touch).
func MobileNetV1() *graph.Graph {
	g := &graph.Graph{Name: "mobilenet"}
	h := 224
	conv := func(name string, in, out, k, s int) {
		g.Layers = append(g.Layers, graph.Layer{
			Name: name, Kind: graph.Conv2D, InH: h, InW: h, InC: in, OutC: out,
			KH: k, KW: k, Stride: s, SamePad: true,
		})
		h = (h + s - 1) / s
	}
	dwsep := func(idx, in, out, stride int) {
		g.Layers = append(g.Layers, graph.Layer{
			Name: fmt.Sprintf("dw%d", idx), Kind: graph.DepthwiseConv2D,
			InH: h, InW: h, InC: in, KH: 3, KW: 3, Stride: stride, SamePad: true,
		})
		h = (h + stride - 1) / stride
		g.Layers = append(g.Layers, graph.Layer{
			Name: fmt.Sprintf("pw%d", idx), Kind: graph.Conv2D,
			InH: h, InW: h, InC: in, OutC: out, KH: 1, KW: 1, Stride: 1, SamePad: true,
		})
	}

	conv("conv1", 3, 32, 3, 2) // -> 112
	blocks := []struct{ in, out, stride int }{
		{32, 64, 1},
		{64, 128, 2}, {128, 128, 1},
		{128, 256, 2}, {256, 256, 1},
		{256, 512, 2},
		{512, 512, 1}, {512, 512, 1}, {512, 512, 1}, {512, 512, 1}, {512, 512, 1},
		{512, 1024, 2}, {1024, 1024, 1},
	}
	for i, b := range blocks {
		dwsep(i+1, b.in, b.out, b.stride)
	}
	g.Layers = append(g.Layers,
		graph.Layer{Name: "gap", Kind: graph.GlobalPool, InH: h, InW: h, InC: 1024},
		graph.Layer{Name: "fc", Kind: graph.MatMul, InH: 1, InW: 1, InC: 1024, OutC: 1000},
	)
	return g
}
