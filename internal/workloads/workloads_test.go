package workloads

import (
	"math"
	"testing"

	"neurometer/internal/graph"
)

// within reports |got-want|/want <= tol.
func within(got, want, tol float64) bool {
	return math.Abs(got-want)/want <= tol
}

// TestTableII reproduces Table II of the paper: the workload
// characteristics of ResNet, Inception and NasNet. The paper's "#MAC Op"
// column is multiply-add counts; #Param is the Int8-quantized model size.
func TestTableII(t *testing.T) {
	for _, tc := range []struct {
		name        string
		paperMACsG  float64
		paperParamM float64
	}{
		{"resnet", 7.8, 23.7},
		{"inception", 5.7, 22.0},
		{"nasnet", 23.8, 84.9},
	} {
		g, err := ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		gotMACs := float64(g.MACs()) / 1e9
		if !within(gotMACs, tc.paperMACsG, 0.05) {
			t.Errorf("%s MACs %.2fG vs paper %.1fG (>5%% off)", tc.name, gotMACs, tc.paperMACsG)
		}
		gotParams := float64(g.Params()) / 1e6
		if !within(gotParams, tc.paperParamM, 0.10) {
			t.Errorf("%s params %.1fM vs paper %.1fM (>10%% off)", tc.name, gotParams, tc.paperParamM)
		}
	}
}

func TestGraphsValidate(t *testing.T) {
	for _, g := range All() {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		if g.PeakDataBytes() <= 0 {
			t.Errorf("%s: no data footprint", g.Name)
		}
	}
	if err := AlexNet().Validate(); err != nil {
		t.Errorf("alexnet: %v", err)
	}
}

func TestAlexNetEyerissLayers(t *testing.T) {
	// Eyeriss reports conv1 = 105.4M MACs and conv5 = 74.6M (grouped).
	a := AlexNet()
	c1, err := Layer(a, "conv1")
	if err != nil {
		t.Fatal(err)
	}
	if !within(float64(c1.MACs()), 105.4e6, 0.01) {
		t.Errorf("conv1 MACs %.1fM, want 105.4M", float64(c1.MACs())/1e6)
	}
	c5, err := Layer(a, "conv5")
	if err != nil {
		t.Fatal(err)
	}
	if !within(float64(c5.MACs()), 74.6e6, 0.01) {
		t.Errorf("conv5 MACs %.1fM, want 74.6M", float64(c5.MACs())/1e6)
	}
	if _, err := Layer(a, "conv99"); err == nil {
		t.Errorf("missing layer must error")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"resnet", "resnet50", "inception", "inceptionv3", "nasnet", "alexnet"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("gpt2"); err == nil {
		t.Errorf("unknown model must fail")
	}
}

func TestNasNetIsHeaviest(t *testing.T) {
	r, i, n := ResNet50(), InceptionV3(), NasNetALarge()
	if n.MACs() <= r.MACs() || n.MACs() <= i.MACs() {
		t.Errorf("NasNet must have the most MACs")
	}
	if n.Params() <= r.Params() {
		t.Errorf("NasNet must have the most params")
	}
	// NasNet is dominated by depthwise-separable structure: it should have
	// far more layers than ResNet.
	if len(n.Layers) < 3*len(r.Layers) {
		t.Errorf("NasNet layer count suspicious: %d vs %d", len(n.Layers), len(r.Layers))
	}
}

func TestInceptionChannelMath(t *testing.T) {
	g := InceptionV3()
	// The stem must end at 35x35x192 and the first InceptionA concat at 256.
	var sawStemPool, sawConcat bool
	for _, l := range g.Layers {
		if l.Name == "stem_pool2" {
			sawStemPool = true
			if l.OutH() != 35 {
				t.Errorf("stem_pool2 out %d, want 35", l.OutH())
			}
		}
		if l.Name == "mixedA0_concat" {
			sawConcat = true
			if l.InC != 256 {
				t.Errorf("mixedA0 channels %d, want 256", l.InC)
			}
		}
	}
	if !sawStemPool || !sawConcat {
		t.Errorf("landmark layers missing")
	}
}

func TestTransformerEncoder(t *testing.T) {
	if _, err := TransformerEncoder(0, 768, 12, 512); err == nil {
		t.Errorf("zero layers must fail")
	}
	if _, err := TransformerEncoder(12, 768, 11, 512); err == nil {
		t.Errorf("indivisible heads must fail")
	}
	g, err := BERTBase()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// BERT-base: ~85M encoder+pooler params, ~95M MACs per token.
	if !within(float64(g.Params()), 85.6e6, 0.03) {
		t.Errorf("bert params %.1fM, want ~85.6M", float64(g.Params())/1e6)
	}
	if !within(float64(g.MACs()), 95.0e6, 0.03) {
		t.Errorf("bert MACs/token %.1fM, want ~95M", float64(g.MACs())/1e6)
	}
	// Attention products carry no weights.
	for _, l := range g.Layers {
		if l.DynamicB && l.Params() != 0 {
			t.Fatalf("dynamic matmul %s must have no params", l.Name)
		}
	}
	if _, err := ByName("bert"); err != nil {
		t.Errorf("ByName(bert): %v", err)
	}
}

func TestMobileNetV1(t *testing.T) {
	g := MobileNetV1()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Canonical MobileNet-224 1.0x: ~569M MACs, ~4.2M params.
	if !within(float64(g.MACs()), 569e6, 0.05) {
		t.Errorf("mobilenet MACs %.0fM, want ~569M", float64(g.MACs())/1e6)
	}
	if !within(float64(g.Params()), 4.2e6, 0.05) {
		t.Errorf("mobilenet params %.2fM, want ~4.2M", float64(g.Params())/1e6)
	}
	// Depthwise layers carry a meaningful MAC share (the point of the model).
	var dwMACs int64
	for _, l := range g.Layers {
		if l.Kind == graph.DepthwiseConv2D {
			dwMACs += l.MACs()
		}
	}
	if frac := float64(dwMACs) / float64(g.MACs()); frac < 0.02 || frac > 0.15 {
		t.Errorf("depthwise MAC share %.3f out of the expected band", frac)
	}
	if _, err := ByName("mobilenet"); err != nil {
		t.Errorf("ByName: %v", err)
	}
}
