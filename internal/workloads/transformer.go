package workloads

import (
	"fmt"

	"neurometer/internal/graph"
	"neurometer/internal/guard"
)

// TransformerEncoder returns a BERT-base-class encoder stack as a layer
// table — an extension beyond the paper's CNN-only study that exercises the
// MatMul path of the simulator. Attention score/context products are
// batched small GEMMs; they are modeled as MatMul layers with the reduction
// and output dimensions of one head, repeated per head, which preserves MAC
// and parameter totals.
//
// Shape conventions: the sequence dimension rides the simulator's batch
// (one "frame" is one token), so simulating with batch = seqLen models one
// sequence; weights follow the standard 12-layer, 768-hidden, 12-head
// configuration (~85M encoder params, ~94M MACs per token, i.e. ~48 GMACs
// for a 512-token sequence).
func TransformerEncoder(layers, hidden, heads, seqLen int) (*graph.Graph, error) {
	if layers <= 0 || hidden <= 0 || heads <= 0 || seqLen <= 0 {
		return nil, guard.Invalid("workloads: transformer dims must be positive")
	}
	if hidden%heads != 0 {
		return nil, guard.Invalid("workloads: hidden (%d) must divide by heads (%d)", hidden, heads)
	}
	headDim := hidden / heads
	g := &graph.Graph{Name: "transformer"}
	mm := func(name string, in, out int) {
		g.Layers = append(g.Layers, graph.Layer{
			Name: name, Kind: graph.MatMul, InH: 1, InW: 1, InC: in, OutC: out,
		})
	}
	mmDyn := func(name string, in, out int) {
		g.Layers = append(g.Layers, graph.Layer{
			Name: name, Kind: graph.MatMul, InH: 1, InW: 1, InC: in, OutC: out,
			DynamicB: true,
		})
	}
	vec := func(name string, kind graph.OpKind, c int) {
		g.Layers = append(g.Layers, graph.Layer{
			Name: name, Kind: kind, InH: 1, InW: 1, InC: c,
		})
	}
	for l := 0; l < layers; l++ {
		p := func(n string) string { return fmt.Sprintf("l%d_%s", l, n) }
		// Attention projections.
		mm(p("q"), hidden, hidden)
		mm(p("k"), hidden, hidden)
		mm(p("v"), hidden, hidden)
		// Scores (q . k^T) and context (scores . v): per token, each head
		// reduces over headDim (scores) and seqLen (context).
		for h := 0; h < heads; h++ {
			mmDyn(p(fmt.Sprintf("scores_h%d", h)), headDim, seqLen)
		}
		vec(p("softmax"), graph.Softmax, heads*seqLen)
		for h := 0; h < heads; h++ {
			mmDyn(p(fmt.Sprintf("context_h%d", h)), seqLen, headDim)
		}
		mm(p("attn_out"), hidden, hidden)
		vec(p("ln1"), graph.BatchNorm, hidden)
		vec(p("residual1"), graph.EltwiseAdd, hidden)
		// Feed-forward.
		mm(p("ffn_up"), hidden, 4*hidden)
		vec(p("gelu"), graph.Activation, 4*hidden)
		mm(p("ffn_down"), 4*hidden, hidden)
		vec(p("ln2"), graph.BatchNorm, hidden)
		vec(p("residual2"), graph.EltwiseAdd, hidden)
	}
	mm("pooler", hidden, hidden)
	return g, nil
}

// BERTBase returns the canonical 12x768x12 encoder at 512 tokens. The
// construction error is propagated rather than panicking so callers at the
// API boundary stay in the guard error model.
func BERTBase() (*graph.Graph, error) {
	g, err := TransformerEncoder(12, 768, 12, 512)
	if err != nil {
		return nil, err
	}
	g.Name = "bert-base"
	return g, nil
}
