package noc

import (
	"strings"
	"testing"

	"neurometer/internal/tech/techtest"
)

const cycle700 = 1e12 / 700e6

func mesh(tx, ty int) Config {
	return Config{
		Node: techtest.MustByNode(28), Topology: Mesh2D,
		Tx: tx, Ty: ty, TileMM: 3.0,
		BisectionGBps: 256, CyclePS: cycle700,
	}
}

func TestBuildValidation(t *testing.T) {
	c := mesh(0, 4)
	if _, err := Build(c); err == nil {
		t.Errorf("zero dimension must fail")
	}
	c = mesh(2, 2)
	c.CyclePS = 0
	if _, err := Build(c); err == nil {
		t.Errorf("zero cycle must fail")
	}
	c = mesh(2, 2)
	c.TileMM = 0
	if _, err := Build(c); err == nil {
		t.Errorf("zero tile must fail")
	}
}

func TestMeshShape(t *testing.T) {
	n, err := Build(mesh(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if n.Routers() != 32 {
		t.Errorf("routers: %d", n.Routers())
	}
	// 4*(8-1) + 8*(4-1) = 28+24 = 52 links.
	if n.Links() != 52 {
		t.Errorf("links: %d", n.Links())
	}
	// Bisection: cut perpendicular to the long axis crosses Tx=4 links;
	// 256GB/s over 4 links at 700MHz = ~91B per flit -> 736 bits.
	if n.FlitBits() != 736 {
		t.Errorf("flit bits: %d", n.FlitBits())
	}
}

func TestTopologies(t *testing.T) {
	for _, tc := range []struct {
		topo           Topology
		tx, ty         int
		routers, links int
	}{
		{Mesh2D, 2, 2, 4, 4},
		{Ring, 1, 4, 4, 4},
		{Bus, 1, 4, 0, 1},
		{HTree, 2, 4, 7, 14},
	} {
		c := mesh(tc.tx, tc.ty)
		c.Topology = tc.topo
		n, err := Build(c)
		if err != nil {
			t.Fatalf("%v: %v", tc.topo, err)
		}
		if n.Routers() != tc.routers || n.Links() != tc.links {
			t.Errorf("%v %dx%d: routers=%d links=%d, want %d/%d",
				tc.topo, tc.tx, tc.ty, n.Routers(), n.Links(), tc.routers, tc.links)
		}
		if n.AvgHops() <= 0 {
			t.Errorf("%v: AvgHops=%g", tc.topo, n.AvgHops())
		}
		if n.Result().Valid() == false {
			t.Errorf("%v: invalid result", tc.topo)
		}
	}
}

func TestSingleTileRingHasNoLinks(t *testing.T) {
	c := mesh(1, 1)
	c.Topology = Ring
	n, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if n.Links() != 0 {
		t.Errorf("1-tile ring links: %d", n.Links())
	}
}

func TestWiderBisectionCostsMore(t *testing.T) {
	lo, err := Build(mesh(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	hiCfg := mesh(4, 4)
	hiCfg.BisectionGBps = 1024
	hi, err := Build(hiCfg)
	if err != nil {
		t.Fatal(err)
	}
	if hi.FlitBits() <= lo.FlitBits() {
		t.Errorf("4x bandwidth must widen flits: %d vs %d", hi.FlitBits(), lo.FlitBits())
	}
	if hi.AreaUM2() <= lo.AreaUM2() {
		t.Errorf("wider NoC must cost more area")
	}
}

func TestMoreTilesMoreOverhead(t *testing.T) {
	// Wimpy designs pay more NoC: a 8x8 mesh has far more routers/links
	// than 2x2 at the same bisection bandwidth.
	small, err := Build(mesh(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(mesh(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if big.AreaUM2() <= small.AreaUM2() {
		t.Errorf("more tiles must cost more NoC area")
	}
	if big.AvgHops() <= small.AvgHops() {
		t.Errorf("more tiles must mean more hops")
	}
}

func TestExplicitFlitOverride(t *testing.T) {
	c := mesh(4, 4)
	c.FlitBits = 128
	n, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if n.FlitBits() != 128 {
		t.Errorf("flit override ignored: %d", n.FlitBits())
	}
}

func TestLinkPipelining(t *testing.T) {
	// Long tiles at a fast clock force link pipeline stages.
	c := mesh(4, 4)
	c.TileMM = 8
	c.CyclePS = 400
	n, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if n.LinkStages() < 1 {
		t.Errorf("8mm link at 2.5GHz must pipeline")
	}
	if n.HopLatencyCycles() <= 2 {
		t.Errorf("hop latency must include link stages")
	}
}

func TestEnergyAccounting(t *testing.T) {
	n, err := Build(mesh(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if n.EnergyPerFlitHopPJ() <= 0 || n.EnergyPerBytePJ() <= 0 {
		t.Errorf("energies must be positive")
	}
	if n.PeakBytesPerCycle() <= 0 {
		t.Errorf("peak bandwidth must be positive")
	}
	if n.RouterResult().AreaUM2 <= 0 || n.LinkResult().DynPJ <= 0 {
		t.Errorf("element results must be populated")
	}
	if !strings.Contains(n.String(), "mesh2d") {
		t.Errorf("String: %q", n.String())
	}
	for _, topo := range []Topology{Mesh2D, Ring, Bus, HTree} {
		if topo.String() == "" {
			t.Errorf("empty topology string")
		}
	}
}
