// Package noc models NeuroMeter's Network-on-Chip: routers (input buffers,
// crossbar, allocators) and links, composed over the supported topologies —
// 2-D mesh, ring, bus, and H-tree (§II-A). Link width is derived from the
// required bisection bandwidth, and link wires are repeated and pipelined
// against the clock.
package noc

import (
	"fmt"
	"math"

	"neurometer/internal/circuit"
	"neurometer/internal/guard"
	"neurometer/internal/obs"
	"neurometer/internal/pat"
	"neurometer/internal/tech"
)

// mBuilds counts NoC model evaluations in the obs default registry.
var mBuilds = obs.NewCounter("noc.builds")

// Topology enumerates the supported NoC shapes.
type Topology int

const (
	Mesh2D Topology = iota
	Ring
	Bus
	HTree
)

func (t Topology) String() string {
	switch t {
	case Mesh2D:
		return "mesh2d"
	case Ring:
		return "ring"
	case Bus:
		return "bus"
	case HTree:
		return "htree"
	}
	return fmt.Sprintf("Topology(%d)", int(t))
}

// Config describes a chip-level interconnect.
type Config struct {
	Node     tech.Node
	Topology Topology
	// Tx x Ty tiles (Ring/Bus/HTree use Tx*Ty as the node count).
	Tx, Ty int
	// TileMM is the tile pitch in millimetres (link length).
	TileMM float64
	// BisectionGBps is the required bisection bandwidth per direction.
	// FlitBits is derived from it; a non-zero FlitBits overrides.
	BisectionGBps float64
	FlitBits      int
	// ClockHz is the NoC clock (defaults to the core clock).
	ClockHz float64
	// VCs and BufDepth parameterize the router input buffering
	// (defaults 2 VCs x 8 flits).
	VCs      int
	BufDepth int
	// CyclePS is the target clock period for link pipelining.
	CyclePS float64
}

// Network is an evaluated NoC.
type Network struct {
	Cfg Config

	router     pat.Result // one router
	link       pat.Result // one link (pipelined)
	linkStages int
	numRouters int
	numLinks   int
	radix      int
	flitBits   int
}

// Build evaluates the NoC.
func Build(cfg Config) (*Network, error) {
	mBuilds.Inc()
	if cfg.Tx <= 0 || cfg.Ty <= 0 {
		return nil, guard.Invalid("noc: topology must have positive dimensions, got %dx%d", cfg.Tx, cfg.Ty)
	}
	if cfg.CyclePS <= 0 {
		return nil, guard.Invalid("noc: CyclePS must be positive")
	}
	if cfg.TileMM <= 0 {
		return nil, guard.Invalid("noc: TileMM must be positive")
	}
	if err := guard.CheckFinites(
		"CyclePS", cfg.CyclePS, "TileMM", cfg.TileMM, "BisectionGBps", cfg.BisectionGBps,
	); err != nil {
		return nil, guard.Invalid("noc: %v", err)
	}
	if cfg.ClockHz <= 0 {
		cfg.ClockHz = 1e12 / cfg.CyclePS
	}
	n := cfg.Node
	tiles := cfg.Tx * cfg.Ty
	net := &Network{Cfg: cfg}

	// ---- Flit width from bisection bandwidth -------------------------------
	flitBits := cfg.FlitBits
	if flitBits <= 0 {
		cut := bisectionLinks(cfg.Topology, cfg.Tx, cfg.Ty)
		bytesPerCycle := cfg.BisectionGBps * 1e9 / cfg.ClockHz
		if bytesPerCycle <= 0 {
			bytesPerCycle = 16 // default 16B flits
			cut = 1
		}
		flitBits = int(math.Ceil(bytesPerCycle*8/float64(cut)/8)) * 8
		if flitBits < 32 {
			flitBits = 32
		}
	}
	net.flitBits = flitBits

	// ---- Topology shape -----------------------------------------------------
	switch cfg.Topology {
	case Mesh2D:
		net.radix = 5
		net.numRouters = tiles
		net.numLinks = cfg.Tx*(cfg.Ty-1) + cfg.Ty*(cfg.Tx-1)
	case Ring:
		net.radix = 3
		net.numRouters = tiles
		net.numLinks = tiles
		if tiles == 1 {
			net.numLinks = 0
		}
	case Bus:
		net.radix = 0 // no routers: central arbiter modeled in the link
		net.numRouters = 0
		net.numLinks = 1
	case HTree:
		net.radix = 3
		net.numRouters = maxI(tiles-1, 0)
		net.numLinks = maxI(2*(tiles-1), 0)
	default:
		return nil, guard.Invalid("noc: unknown topology %v", cfg.Topology)
	}

	// ---- Router -------------------------------------------------------------
	if net.radix > 0 {
		vcs := cfg.VCs
		if vcs <= 0 {
			vcs = 2
		}
		depth := cfg.BufDepth
		if depth <= 0 {
			depth = 8
		}
		buf := circuit.FIFO{Node: n, Depth: vcs * depth, Bits: flitBits}.Eval()
		xbar := circuit.Crossbar{Node: n, Inputs: net.radix, Outputs: net.radix, Bits: flitBits}.Eval()
		allocGates := float64(net.radix*net.radix*vcs*14 + 400)
		aArea, aDyn, aLeak := n.LogicBlock(allocGates, 0.25)
		r := pat.Result{
			AreaUM2: (buf.AreaUM2*float64(net.radix) + xbar.AreaUM2 + aArea) * 1.15,
			// Per flit traversal: one buffer write+read, one crossbar pass,
			// allocation.
			DynPJ:   buf.DynPJ + xbar.DynPJ + aDyn,
			LeakUW:  buf.LeakUW*float64(net.radix) + xbar.LeakUW + aLeak,
			DelayPS: math.Max(buf.DelayPS, xbar.DelayPS) + 4*n.FO4PS,
		}
		net.router = r
	}

	// ---- Link ----------------------------------------------------------------
	linkLen := cfg.TileMM
	switch cfg.Topology {
	case Bus:
		// The bus spans the whole tile row plus arbiter.
		linkLen = cfg.TileMM * float64(tiles) * 0.6
	case HTree:
		// Average branch length grows toward the root; use 1.5 tiles.
		linkLen = cfg.TileMM * 1.5
	}
	wire := circuit.Wire{
		Node: n, Layer: tech.WireGlobal,
		LengthMM: linkLen,
		Bits:     flitBits,
	}
	link, stages := wire.Pipelined(cfg.CyclePS)
	// Links ride the global metal layers over logic: only the repeaters and
	// pipeline DFFs consume silicon, plus a 10% keep-out under the tracks.
	link.AreaUM2 -= wire.TrackAreaUM2() * 0.9
	if link.AreaUM2 < 0 {
		link.AreaUM2 = 0
	}
	if cfg.Topology == Bus {
		arbArea, arbDyn, arbLeak := n.LogicBlock(float64(tiles*60+300), 0.25)
		link.AreaUM2 += arbArea
		link.DynPJ += arbDyn
		link.LeakUW += arbLeak
	}
	net.link = link
	net.linkStages = stages
	return net, nil
}

func bisectionLinks(t Topology, tx, ty int) int {
	switch t {
	case Mesh2D:
		// Cut perpendicular to the longer axis.
		if tx < ty {
			return tx
		}
		return ty
	case Ring:
		return 2
	default: // Bus, HTree: a single (wide) channel crosses the cut
		return 1
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FlitBits returns the derived flit width.
func (nw *Network) FlitBits() int { return nw.flitBits }

// Routers and Links return the element counts.
func (nw *Network) Routers() int { return nw.numRouters }
func (nw *Network) Links() int   { return nw.numLinks }

// LinkStages returns the pipeline depth of one link.
func (nw *Network) LinkStages() int { return nw.linkStages }

// AvgHops returns the average router-to-router hop count for uniform
// traffic, used by the performance simulator.
func (nw *Network) AvgHops() float64 {
	tx, ty := float64(nw.Cfg.Tx), float64(nw.Cfg.Ty)
	tiles := tx * ty
	switch nw.Cfg.Topology {
	case Mesh2D:
		return (tx + ty) / 3
	case Ring:
		return tiles / 4
	case Bus:
		return 1
	case HTree:
		return math.Max(1, math.Log2(tiles))
	}
	return 1
}

// HopLatencyCycles returns the per-hop latency in cycles (router pipeline +
// link stages).
func (nw *Network) HopLatencyCycles() float64 {
	return 2 + float64(nw.linkStages)
}

// EnergyPerFlitHopPJ returns the dynamic energy of moving one flit one hop
// (router traversal + link).
func (nw *Network) EnergyPerFlitHopPJ() float64 {
	return nw.router.DynPJ + nw.link.DynPJ
}

// EnergyPerBytePJ returns the average energy to move one byte across the
// network (AvgHops hops).
func (nw *Network) EnergyPerBytePJ() float64 {
	flitBytes := float64(nw.flitBits) / 8
	return nw.EnergyPerFlitHopPJ() / flitBytes * nw.AvgHops()
}

// PeakBytesPerCycle returns the aggregate injection bandwidth.
func (nw *Network) PeakBytesPerCycle() float64 {
	nodes := float64(nw.Cfg.Tx * nw.Cfg.Ty)
	return nodes * float64(nw.flitBits) / 8
}

// AreaUM2 returns the total NoC area (routers + links).
func (nw *Network) AreaUM2() float64 {
	return nw.router.AreaUM2*float64(nw.numRouters) + nw.link.AreaUM2*float64(nw.numLinks)
}

// LeakUW returns total NoC leakage.
func (nw *Network) LeakUW() float64 {
	return nw.router.LeakUW*float64(nw.numRouters) + nw.link.LeakUW*float64(nw.numLinks)
}

// RouterResult and LinkResult expose per-element models.
func (nw *Network) RouterResult() pat.Result { return nw.router }
func (nw *Network) LinkResult() pat.Result   { return nw.link }

// Result summarizes the NoC; DynPJ is per flit-hop.
func (nw *Network) Result() pat.Result {
	return pat.Result{
		AreaUM2: nw.AreaUM2(),
		DynPJ:   nw.EnergyPerFlitHopPJ(),
		LeakUW:  nw.LeakUW(),
		DelayPS: math.Max(nw.router.DelayPS, nw.link.DelayPS),
	}
}

func (nw *Network) String() string {
	return fmt.Sprintf("noc[%s %dx%d flit=%db routers=%d links=%d area=%.3fmm2]",
		nw.Cfg.Topology, nw.Cfg.Tx, nw.Cfg.Ty, nw.flitBits, nw.numRouters,
		nw.numLinks, nw.AreaUM2()/1e6)
}
