package memarray

import (
	"testing"
	"testing/quick"

	"neurometer/internal/tech"
	"neurometer/internal/tech/techtest"
)

const cycle700MHz = 1e12 / 700e6

func cfg28(capBytes int64, block int) Config {
	return Config{
		Node:          techtest.MustByNode(28),
		Cell:          tech.CellSRAM,
		CapacityBytes: capBytes,
		BlockBytes:    block,
		CyclePS:       cycle700MHz,
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	if _, err := Build(cfg28(0, 64)); err == nil {
		t.Errorf("zero capacity must fail")
	}
	if _, err := Build(cfg28(1024, 0)); err == nil {
		t.Errorf("zero block must fail")
	}
	if _, err := Build(cfg28(64, 128)); err == nil {
		t.Errorf("block>capacity must fail")
	}
	c := cfg28(1<<20, 64)
	c.CyclePS = 0
	if _, err := Build(c); err == nil {
		t.Errorf("zero cycle must fail")
	}
}

func TestBasicArraySane(t *testing.T) {
	a, err := Build(cfg28(1<<20, 64)) // 1MiB, 64B blocks
	if err != nil {
		t.Fatal(err)
	}
	if a.AreaUM2() <= 0 || a.ReadEnergyPJ() <= 0 || a.WriteEnergyPJ() <= 0 ||
		a.LeakUW() <= 0 || a.AccessDelayPS() <= 0 {
		t.Fatalf("degenerate result: %v", a)
	}
	// 1MiB at 28nm: raw cells are ~1.07mm2; the full array must be bigger
	// but within ~6x (peripheral overhead bound).
	raw := float64(1<<20) * 8 * a.Cfg.Node.SRAMCellUM2
	if a.AreaUM2() < raw {
		t.Errorf("array smaller than its own cells: %g < %g", a.AreaUM2(), raw)
	}
	if a.AreaUM2() > raw*6 {
		t.Errorf("peripheral overhead above 6x: %g vs raw %g", a.AreaUM2(), raw)
	}
	if !a.Result().Valid() {
		t.Errorf("invalid result")
	}
}

func TestAreaMonotonicInCapacity(t *testing.T) {
	prev := 0.0
	for _, mb := range []int64{1, 2, 4, 8, 16} {
		a, err := Build(cfg28(mb<<20, 64))
		if err != nil {
			t.Fatalf("%dMiB: %v", mb, err)
		}
		if a.AreaUM2() <= prev {
			t.Errorf("%dMiB not bigger than previous: %g <= %g", mb, a.AreaUM2(), prev)
		}
		prev = a.AreaUM2()
	}
}

func TestEnergyGrowsWithCapacity(t *testing.T) {
	small, err := Build(cfg28(256<<10, 64))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(cfg28(16<<20, 64))
	if err != nil {
		t.Fatal(err)
	}
	if big.ReadEnergyPJ() <= small.ReadEnergyPJ() {
		t.Errorf("16MiB read (%gpJ) should cost more than 256KiB read (%gpJ)",
			big.ReadEnergyPJ(), small.ReadEnergyPJ())
	}
	if big.AccessDelayPS() <= small.AccessDelayPS() {
		t.Errorf("bigger array should be slower")
	}
}

func TestThroughputForcesBanking(t *testing.T) {
	base := cfg28(4<<20, 32)
	lo, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	hi := base
	hi.ReadBytesPerCycle = 2048
	hi.WriteBytesPerCycle = 1024
	hiA, err := Build(hi)
	if err != nil {
		t.Fatal(err)
	}
	needBanksPorts := float64(hiA.Org.Banks*hiA.Org.ReadPorts) * float64(hi.BlockBytes)
	if needBanksPorts < 2048 {
		t.Errorf("optimizer under-provisioned reads: banks=%d rp=%d block=%d",
			hiA.Org.Banks, hiA.Org.ReadPorts, hi.BlockBytes)
	}
	if hiA.Org.Banks <= lo.Org.Banks && hiA.Org.ReadPorts <= lo.Org.ReadPorts {
		t.Errorf("high-throughput config should use more banks or ports: %+v vs %+v", hiA.Org, lo.Org)
	}
}

func TestPortSearchTPUv2Style(t *testing.T) {
	// The paper highlights that NeuroMeter automatically finds 2R1W for
	// TPU-v2's VMem given the throughput requirement. Reproduce the shape:
	// an 8MiB quad-bank memory that must serve 2 blocks read + 1 written
	// per cycle needs 2 read ports and 1 write port when banks are fixed=4.
	n := techtest.MustByNode(16)
	cfg := Config{
		Node: n, Cell: tech.CellSRAM,
		CapacityBytes: 8 << 20, BlockBytes: 256,
		Banks:   4,
		CyclePS: cycle700MHz,
		// 2 reads + 1 write of 256B per cycle per bank group.
		ReadBytesPerCycle:  2 * 4 * 256,
		WriteBytesPerCycle: 1 * 4 * 256,
	}
	a, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Org.ReadPorts != 2 || a.Org.WritePorts != 1 {
		t.Errorf("expected 2R1W, got %dR%dW", a.Org.ReadPorts, a.Org.WritePorts)
	}
}

func TestMorePortsCostArea(t *testing.T) {
	base := cfg28(1<<20, 64)
	base.Banks = 4
	base.ReadPorts, base.WritePorts = 1, 1
	a1, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	base.ReadPorts = 3
	a3, err := Build(base)
	if err != nil {
		t.Fatal(err)
	}
	if a3.AreaUM2() <= a1.AreaUM2()*1.3 {
		t.Errorf("3R1W should cost much more than 1R1W: %g vs %g", a3.AreaUM2(), a1.AreaUM2())
	}
}

func TestLatencyTargetRespected(t *testing.T) {
	cfg := cfg28(8<<20, 64)
	cfg.TargetLatencyPS = 2000
	a, err := Build(cfg)
	if err != nil {
		t.Skipf("no organization meets 2ns on 8MiB: %v", err)
	}
	if a.AccessDelayPS() > cfg.TargetLatencyPS {
		t.Errorf("latency target violated: %g > %g", a.AccessDelayPS(), cfg.TargetLatencyPS)
	}
}

func TestCellFamilies(t *testing.T) {
	sram, err := Build(cfg28(2<<20, 64))
	if err != nil {
		t.Fatal(err)
	}
	ec := cfg28(2<<20, 64)
	ec.Cell = tech.CellEDRAM
	edram, err := Build(ec)
	if err != nil {
		t.Fatal(err)
	}
	if edram.AreaUM2() >= sram.AreaUM2() {
		t.Errorf("eDRAM must be denser than SRAM: %g vs %g", edram.AreaUM2(), sram.AreaUM2())
	}
	dc := cfg28(64<<10, 64)
	dc.Cell = tech.CellDFF
	dff, err := Build(dc)
	if err != nil {
		t.Fatal(err)
	}
	sc := cfg28(64<<10, 64)
	sramSmall, err := Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	if dff.AreaUM2() <= sramSmall.AreaUM2() {
		t.Errorf("DFF array must be bigger than SRAM of same capacity")
	}
}

func TestNodeScaling(t *testing.T) {
	c16 := cfg28(4<<20, 64)
	c16.Node = techtest.MustByNode(16)
	a16, err := Build(c16)
	if err != nil {
		t.Fatal(err)
	}
	a28, err := Build(cfg28(4<<20, 64))
	if err != nil {
		t.Fatal(err)
	}
	if a16.AreaUM2() >= a28.AreaUM2() {
		t.Errorf("16nm array must be smaller than 28nm")
	}
	if a16.ReadEnergyPJ() >= a28.ReadEnergyPJ() {
		t.Errorf("16nm read must be cheaper")
	}
}

func TestPropertyValidAcrossSizes(t *testing.T) {
	f := func(kb uint16, blkSel uint8) bool {
		capBytes := int64(kb%1024+1) << 10 // 1KiB..1MiB
		blocks := []int{8, 16, 32, 64, 128}
		blk := blocks[int(blkSel)%len(blocks)]
		if int64(blk) > capBytes {
			blk = int(capBytes)
		}
		cfg := cfg28(capBytes, blk)
		a, err := Build(cfg)
		if err != nil {
			return false
		}
		return a.Result().Valid() && a.AreaUM2() > 0 && a.CycleDelayPS() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStringIncludesOrg(t *testing.T) {
	a, err := Build(cfg28(1<<20, 64))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == "" {
		t.Errorf("empty String()")
	}
}
