// Package memarray is NeuroMeter's analytical memory-array model, in the
// CACTI tradition: SRAM/DFF/eDRAM arrays organized as banks of subarrays,
// with decoder/wordline/bitline Elmore timing, per-access energy, leakage,
// and layout area including sense amplifiers, drivers, routing channels and
// the H-tree that distributes the wide data bus across banks.
//
// The package also contains the internal organization optimizer the paper
// describes (§II "the tool will automatically set the low-level parameters
// (such as the number of banks, the number of the read/write ports) via its
// internal optimizer"): given capacity, block size, a target latency and a
// target throughput, Build searches bank counts, subarray aspect ratios and
// port counts and returns the minimum-cost feasible organization.
package memarray

import (
	"fmt"
	"math"

	"neurometer/internal/circuit"
	"neurometer/internal/guard"
	"neurometer/internal/obs"
	"neurometer/internal/pat"
	"neurometer/internal/tech"
)

// Observability: memarray.builds counts Build calls, memarray.evals the
// candidate organizations the internal optimizer scored — the dominant
// cost of chip construction, and the first thing to batch or cache when
// sweeps get slow.
var (
	mBuilds = obs.NewCounter("memarray.builds")
	mEvals  = obs.NewCounter("memarray.evals")
)

// Config specifies a memory array the way a NeuroMeter user does: high
// level parameters only. Zero values for Banks/ReadPorts/WritePorts ask the
// optimizer to choose them.
type Config struct {
	Node tech.Node
	Cell tech.MemCell

	// CapacityBytes is the total storage; BlockBytes the width of one
	// access (one port, one cycle).
	CapacityBytes int64
	BlockBytes    int

	// ReadPorts/WritePorts: dedicated port counts per bank. 0 = search.
	ReadPorts  int
	WritePorts int

	// Banks: 0 = search over powers of two.
	Banks int

	// CyclePS is the clock the array must keep up with (used for both
	// pipelining decisions and throughput accounting). Required.
	CyclePS float64

	// TargetLatencyPS: optional upper bound on random-access latency.
	TargetLatencyPS float64

	// ReadBytesPerCycle / WriteBytesPerCycle: sustained throughput the
	// array must deliver. The optimizer provisions banks*ports to cover
	// them with a bank-conflict margin.
	ReadBytesPerCycle  float64
	WriteBytesPerCycle float64
}

// Org describes the organization the optimizer settled on.
type Org struct {
	Banks            int
	ReadPorts        int
	WritePorts       int
	SubarrayRows     int
	SubarrayCols     int
	SubarraysPerBank int
}

// Array is a fully evaluated memory array.
type Array struct {
	Cfg Config
	Org Org

	areaUM2  float64
	readPJ   float64 // per BlockBytes read
	writePJ  float64
	leakUW   float64
	accessPS float64 // random access latency
	cyclePS  float64 // minimum bank cycle time
}

// conflictMargin over-provisions bank*port bandwidth to absorb bank
// conflicts in the banked scratchpads (software-managed layouts keep
// conflicts low, so the margin is modest).
const conflictMargin = 1.0

// maxBanks bounds the optimizer search.
const maxBanks = 4096

// Build evaluates (and where requested, optimizes) the array organization.
func Build(cfg Config) (*Array, error) {
	mBuilds.Inc()
	if cfg.CapacityBytes <= 0 {
		return nil, guard.Invalid("memarray: capacity must be positive, got %d", cfg.CapacityBytes)
	}
	if cfg.BlockBytes <= 0 {
		return nil, guard.Invalid("memarray: block size must be positive, got %d", cfg.BlockBytes)
	}
	if int64(cfg.BlockBytes) > cfg.CapacityBytes {
		return nil, guard.Invalid("memarray: block (%dB) exceeds capacity (%dB)", cfg.BlockBytes, cfg.CapacityBytes)
	}
	if cfg.CyclePS <= 0 {
		return nil, guard.Invalid("memarray: CyclePS must be positive")
	}
	if err := guard.CheckFinites(
		"CyclePS", cfg.CyclePS, "ReadBytesPerCycle", cfg.ReadBytesPerCycle,
		"WriteBytesPerCycle", cfg.WriteBytesPerCycle, "TargetLatencyPS", cfg.TargetLatencyPS,
	); err != nil {
		return nil, guard.Invalid("memarray: %v", err)
	}

	bankChoices := powersOfTwo(1, maxBanks)
	if cfg.Banks > 0 {
		bankChoices = []int{cfg.Banks}
	}
	readChoices := []int{1, 2, 3, 4}
	if cfg.ReadPorts > 0 {
		readChoices = []int{cfg.ReadPorts}
	}
	writeChoices := []int{1, 2, 3, 4}
	if cfg.WritePorts > 0 {
		writeChoices = []int{cfg.WritePorts}
	}

	var best *Array
	var bestCost float64
	for _, banks := range bankChoices {
		if int64(banks)*int64(cfg.BlockBytes)*8 > cfg.CapacityBytes*8 {
			// Banks smaller than one block make no sense.
			continue
		}
		for _, rp := range readChoices {
			for _, wp := range writeChoices {
				if !meetsThroughput(cfg, banks, rp, wp) {
					continue
				}
				a, err := evaluate(cfg, banks, rp, wp)
				if err != nil {
					continue
				}
				if cfg.TargetLatencyPS > 0 && a.accessPS > cfg.TargetLatencyPS {
					continue
				}
				// Cost: area-energy product (CACTI's classic objective),
				// energy averaged over a read+write pair.
				cost := a.areaUM2 * (a.readPJ + a.writePJ)
				if best == nil || cost < bestCost {
					best, bestCost = a, cost
				}
			}
		}
	}
	if best == nil {
		return nil, guard.Infeasible("memarray: no feasible organization for %dB (block %dB, need %.1fR+%.1fW B/cyc, latency<=%.0fps)",
			cfg.CapacityBytes, cfg.BlockBytes, cfg.ReadBytesPerCycle, cfg.WriteBytesPerCycle, cfg.TargetLatencyPS)
	}
	return best, nil
}

func meetsThroughput(cfg Config, banks, rp, wp int) bool {
	cap := float64(banks * cfg.BlockBytes)
	need := (cfg.ReadBytesPerCycle) * conflictMargin
	if float64(rp)*cap < need {
		return false
	}
	needW := (cfg.WriteBytesPerCycle) * conflictMargin
	return float64(wp)*cap >= needW
}

func powersOfTwo(lo, hi int) []int {
	var out []int
	for v := lo; v <= hi; v *= 2 {
		out = append(out, v)
	}
	return out
}

// portAreaFactor returns the cell-area multiplier for a cell with the given
// total port count: each additional port adds a wordline (height) and a
// bitline pair (width). DFF-based register files grow far more slowly: the
// flop is shared and extra ports only add read-mux fanout.
func portAreaFactor(cell tech.MemCell, totalPorts int) float64 {
	if totalPorts <= 1 {
		return 1
	}
	extra := float64(totalPorts - 1)
	if cell == tech.CellDFF {
		return 1 + 0.15*extra
	}
	return (1 + 0.45*extra) * (1 + 0.25*extra)
}

// evaluate computes the PAT of one candidate organization.
func evaluate(cfg Config, banks, rp, wp int) (*Array, error) {
	mEvals.Inc()
	n := cfg.Node
	totalBits := float64(cfg.CapacityBytes) * 8
	bankBits := totalBits / float64(banks)
	blockBits := float64(cfg.BlockBytes) * 8
	ports := rp + wp

	cellArea := n.CellAreaUM2(cfg.Cell) * portAreaFactor(cfg.Cell, ports)
	cellW, cellH := n.CellDimsUM(cfg.Cell)
	pf := math.Sqrt(portAreaFactor(cfg.Cell, ports))
	cellW *= pf
	cellH *= pf

	// Subarray search: square-ish subarrays between 64x64 and 1024x1024.
	type subCand struct {
		rows, cols int
		res        *Array
		cost       float64
	}
	var best *subCand
	for _, rows := range []int{16, 32, 64, 128, 256, 512, 1024} {
		for _, cols := range []int{16, 32, 64, 128, 256, 512, 1024} {
			subBits := float64(rows * cols)
			if subBits > bankBits {
				continue
			}
			subsPerBank := math.Ceil(bankBits / subBits)
			// Active subarrays per access: enough columns to supply the
			// block, with the column-mux ratio searched alongside.
			for _, colMux := range []int{1, 2, 4, 8} {
				bitsPerSub := float64(cols / colMux)
				if bitsPerSub < 1 {
					continue
				}
				activeSubs := math.Ceil(blockBits / bitsPerSub)
				if activeSubs > subsPerBank {
					continue
				}

				a := evalOrg(cfg, banks, rp, wp, rows, cols, int(subsPerBank),
					int(activeSubs), cellArea, cellW, cellH)
				if a.cyclePS > cfg.CyclePS*2.05 {
					// Bank cycle can be up to 2 cycles with pipelining; slower
					// organizations can't sustain the per-bank throughput.
					continue
				}
				cost := a.areaUM2 * (a.readPJ + a.writePJ)
				if best == nil || cost < best.cost {
					best = &subCand{rows: rows, cols: cols, res: a, cost: cost}
				}
			}
		}
	}
	if best == nil {
		return nil, guard.Infeasible("memarray: no subarray organization fits")
	}
	return best.res, nil
}

func evalOrg(cfg Config, banks, rp, wp, rows, cols, subsPerBank, activeSubs int,
	cellArea, cellW, cellH float64) *Array {

	n := cfg.Node
	blockBits := float64(cfg.BlockBytes) * 8
	bankBits := float64(cfg.CapacityBytes) * 8 / float64(banks)

	// ---- Subarray level -------------------------------------------------
	subCellsArea := float64(rows*cols) * cellArea
	dec := circuit.Decoder{Node: n, Outputs: rows}.Eval()
	wlWire := circuit.Wire{
		Node: n, Layer: tech.WireLocal,
		LengthMM:  float64(cols) * cellW / 1000,
		DriverRes: n.InvRonOhm() / 16,
		LoadFF:    float64(cols) * 0.18, // gate cap of pass transistors
	}
	wlDelay := wlWire.ElmoreDelayPS()
	wlEnergy := wlWire.Eval().DynPJ

	// Bitline: discharge through the cell; the cell is a weak driver
	// (~25x unit inverter resistance); sensing uses a reduced swing.
	blLen := float64(rows) * cellH / 1000
	blCap := n.WireCapFFPerMM[tech.WireLocal]*blLen + float64(rows)*0.10
	cellRes := n.InvRonOhm() * 25
	blDelay := cellRes * blCap * 1e-15 * 1e12 * 0.35 // reduced swing sensing
	const senseSwing = 0.25
	blEnergyPerCol := blCap * n.Vdd * n.Vdd * senseSwing / 1000 // pJ

	// Peripheral gates per subarray: sense amps + precharge + write
	// drivers per column, wordline drivers per row.
	perColGates := 14.0 * float64(rp+wp)
	perRowGates := 4.0 * float64(rp+wp)
	periphGates := float64(cols)*perColGates + float64(rows)*perRowGates
	periphArea := periphGates * n.GateAreaUM2()
	subArea := (subCellsArea + periphArea + dec.AreaUM2) * 1.18 // routing channels

	senseDelay := 3 * n.FO4PS
	subAccessPS := dec.DelayPS + wlDelay + blDelay + senseDelay

	// ---- Bank level ------------------------------------------------------
	bankArea := subArea * float64(subsPerBank)
	bankSideMM := math.Sqrt(bankArea) / 1000
	// Intra-bank data distribution: blockBits routed from the active
	// subarrays to the bank port on intermediate metal with shielding.
	// Each read and write port owns its own data path.
	const shield = 1.4
	portPaths := float64(rp + wp)
	htree := circuit.Wire{
		Node: n, Layer: tech.WireIntermediate,
		LengthMM: bankSideMM * 0.5,
		Bits:     int(blockBits),
	}
	htreeRes, _ := htree.Repeated()
	htreeArea := htreeRes.AreaUM2 * shield * portPaths
	htreeEnergy := htreeRes.DynPJ // per access on one port
	htreeDelay := htreeRes.DelayPS
	htreeLeak := htreeRes.LeakUW * portPaths

	bankCtlGates := 800 + 60*math.Log2(bankBits)
	bankCtlArea, bankCtlDyn, bankCtlLeak := n.LogicBlock(bankCtlGates, 0.3)

	bankTotalArea := (bankArea+htreeArea+bankCtlArea)*1.08 + // bank assembly
		float64(activeSubs)*blockBits/float64(activeSubs)*
			circuit.DFF{Node: n}.Eval().AreaUM2 // output latch per block bit

	// ---- Array level -----------------------------------------------------
	cellsOnly := bankTotalArea * float64(banks)
	arraySideMM := math.Sqrt(cellsOnly) / 1000
	// Bank-to-port routing across the array: the block bus travels on
	// average a third of the array side, regardless of which bank serves
	// the access (banks tile in 2D around the port spine).
	edge := circuit.Wire{
		Node: n, Layer: tech.WireIntermediate,
		LengthMM: arraySideMM * 0.35,
		Bits:     int(blockBits),
	}
	edgeRes, _ := edge.Repeated()
	edgeArea := edgeRes.AreaUM2 * shield * portPaths
	totalArea := cellsOnly + edgeArea

	// ---- Per-access energy ----------------------------------------------
	active := float64(activeSubs)
	readPJ := dec.DynPJ*active + wlEnergy*active +
		blEnergyPerCol*float64(cols)*active +
		htreeEnergy + edgeRes.DynPJ + bankCtlDyn
	// Writes drive full-swing bitlines but skip the sense path.
	writePJ := dec.DynPJ*active + wlEnergy*active +
		blEnergyPerCol*float64(cols)*active*(1.0/senseSwing)*0.5 +
		htreeEnergy + edgeRes.DynPJ + bankCtlDyn

	// ---- Leakage ---------------------------------------------------------
	totalBits := float64(cfg.CapacityBytes) * 8
	leakUW := totalBits*n.CellLeakNW(cfg.Cell)/1000 +
		periphGates*float64(subsPerBank*banks)*n.GateLeakNW/1000 +
		bankCtlLeak*float64(banks) +
		(htreeLeak+edgeRes.LeakUW)*float64(banks)

	accessPS := subAccessPS + htreeDelay + edgeRes.DelayPS
	cyclePS := subAccessPS * 1.1 // bank busy time; H-trees are pipelined

	return &Array{
		Cfg: cfg,
		Org: Org{
			Banks: banks, ReadPorts: rp, WritePorts: wp,
			SubarrayRows: rows, SubarrayCols: cols, SubarraysPerBank: subsPerBank,
		},
		areaUM2:  totalArea,
		readPJ:   readPJ,
		writePJ:  writePJ,
		leakUW:   leakUW,
		accessPS: accessPS,
		cyclePS:  cyclePS,
	}
}

// AreaUM2 returns total layout area in um^2.
func (a *Array) AreaUM2() float64 { return a.areaUM2 }

// ReadEnergyPJ returns the energy of one block read.
func (a *Array) ReadEnergyPJ() float64 { return a.readPJ }

// WriteEnergyPJ returns the energy of one block write.
func (a *Array) WriteEnergyPJ() float64 { return a.writePJ }

// LeakUW returns total static leakage in uW.
func (a *Array) LeakUW() float64 { return a.leakUW }

// AccessDelayPS returns the random-access latency in ps.
func (a *Array) AccessDelayPS() float64 { return a.accessPS }

// CycleDelayPS returns the minimum per-bank cycle time in ps.
func (a *Array) CycleDelayPS() float64 { return a.cyclePS }

// Result summarizes the array as a pat.Result whose DynPJ is the average of
// one read and one write.
func (a *Array) Result() pat.Result {
	return pat.Result{
		AreaUM2: a.areaUM2,
		DynPJ:   (a.readPJ + a.writePJ) / 2,
		LeakUW:  a.leakUW,
		DelayPS: a.accessPS,
	}
}

func (a *Array) String() string {
	return fmt.Sprintf("mem[%s %dB block=%dB banks=%d %dR%dW sub=%dx%d area=%.2fmm2 rd=%.1fpJ wr=%.1fpJ lat=%.0fps]",
		a.Cfg.Cell, a.Cfg.CapacityBytes, a.Cfg.BlockBytes, a.Org.Banks,
		a.Org.ReadPorts, a.Org.WritePorts, a.Org.SubarrayRows, a.Org.SubarrayCols,
		a.areaUM2/1e6, a.readPJ, a.writePJ, a.accessPS)
}
