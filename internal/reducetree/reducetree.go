// Package reducetree models NeuroMeter's Reduction Tree (RT): an N-input
// 1-D MAC array cascaded into a log2(N)-layer adder tree, with optional
// pipeline DFFs between layers to meet timing (§II-A). RTs are the compute
// fabric of sparsity-oriented accelerators (SIGMA, Cambricon-X, MAERI)
// because their workload mapping is more flexible than a 2-D array's.
package reducetree

import (
	"fmt"
	"math"

	"neurometer/internal/circuit"
	"neurometer/internal/maclib"
	"neurometer/internal/pat"
	"neurometer/internal/tech"
)

// Config describes a reduction tree.
type Config struct {
	Node tech.Node
	// Inputs is N, the width of the 1-D MAC array feeding the tree.
	// It must be a power of two.
	Inputs int
	// MulType/AccType as in the tensor unit; AccType zero value (int8)
	// means "derive from MulType".
	MulType maclib.DataType
	AccType maclib.DataType
	// AdderFanIn is the fan-in of each tree adder (default 2, the paper's
	// default "array of 2-by-1 adders"; users can customize).
	AdderFanIn int
	// CyclePS is the target clock period; pipeline DFF layers are inserted
	// between adder levels whenever the accumulated combinational delay
	// would exceed it.
	CyclePS float64
}

// clockOverhead matches the tensorunit convention for sequential energy.
const clockOverhead = 1.35

// fabricOverhead is the P&R overhead of the tree fabric; trees place less
// densely than 2-D arrays (irregular wiring) but have no stationary
// operand registers.
const fabricOverhead = 1.6

// Unit is an evaluated reduction tree.
type Unit struct {
	Cfg Config

	macArray pat.Result // the N-input MAC stage (total)
	tree     pat.Result // all adder layers incl. pipeline DFFs (total)
	pipeDFFs int        // pipeline registers inserted (bit-groups)
	levels   int
	perMACPJ float64
	areaUM2  float64
	leakUW   float64
	critPS   float64
}

// Build evaluates a reduction tree.
func Build(cfg Config) (*Unit, error) {
	if cfg.Inputs < 2 {
		return nil, fmt.Errorf("reducetree: need at least 2 inputs, got %d", cfg.Inputs)
	}
	if cfg.Inputs&(cfg.Inputs-1) != 0 {
		return nil, fmt.Errorf("reducetree: inputs must be a power of two, got %d", cfg.Inputs)
	}
	if cfg.CyclePS <= 0 {
		return nil, fmt.Errorf("reducetree: CyclePS must be positive")
	}
	fanIn := cfg.AdderFanIn
	if fanIn == 0 {
		fanIn = 2
	}
	if fanIn < 2 {
		return nil, fmt.Errorf("reducetree: adder fan-in must be >= 2, got %d", fanIn)
	}
	acc := cfg.AccType
	if acc == maclib.Int8 {
		acc = cfg.MulType.AccumType()
	}
	n := cfg.Node
	u := &Unit{Cfg: cfg}
	u.Cfg.AccType = acc
	u.Cfg.AdderFanIn = fanIn

	// ---- 1-D MAC (multiplier) array ---------------------------------------
	mult := maclib.Mult(n, cfg.MulType)
	inReg := circuit.Register{Node: n, Bits: 2 * cfg.MulType.Bits()}.Eval()
	inReg.DynPJ *= clockOverhead
	lane := mult.Add(inReg)
	u.macArray = lane.Scale(float64(cfg.Inputs))

	// ---- Adder tree ---------------------------------------------------------
	levels := int(math.Ceil(math.Log(float64(cfg.Inputs)) / math.Log(float64(fanIn))))
	u.levels = levels
	add := maclib.Add(n, acc)
	ff := circuit.DFF{Node: n}.Eval()
	ffBits := acc.Bits()

	var treeArea, treeDynPerReduce, treeLeak float64
	accum := lane.DelayPS // delay accumulated since the last pipeline cut
	crit := accum
	adders := 0
	for lvl := 0; lvl < levels; lvl++ {
		nodes := cfg.Inputs / pow(fanIn, lvl+1)
		if nodes < 1 {
			nodes = 1
		}
		adders += nodes
		levelAdders := float64(nodes) * float64(fanIn-1) // fan-in k = k-1 two-input adds
		treeArea += add.AreaUM2 * levelAdders
		treeDynPerReduce += add.DynPJ * levelAdders
		treeLeak += add.LeakUW * levelAdders
		levelDelay := add.DelayPS * float64(fanIn-1)
		if accum+levelDelay > cfg.CyclePS*0.9 {
			// Insert the optional pipeline DFF layer before this level
			// (§II-A part 3) so no stage exceeds the cycle.
			u.pipeDFFs += nodes * fanIn
			nff := float64(nodes * fanIn * ffBits)
			treeArea += ff.AreaUM2 * nff
			treeDynPerReduce += ff.DynPJ * clockOverhead * nff
			treeLeak += ff.LeakUW * nff
			if accum > crit {
				crit = accum
			}
			accum = ff.DelayPS
		}
		accum += levelDelay
	}
	if accum > crit {
		crit = accum
	}
	u.tree = pat.Result{AreaUM2: treeArea, DynPJ: treeDynPerReduce, LeakUW: treeLeak}

	// Output accumulator register.
	outReg := circuit.Register{Node: n, Bits: ffBits}.Eval()
	outReg.DynPJ *= clockOverhead
	u.tree = u.tree.Add(outReg)

	u.areaUM2 = (u.macArray.AreaUM2 + u.tree.AreaUM2) * fabricOverhead
	u.leakUW = u.macArray.LeakUW + u.tree.LeakUW
	// One "reduce" consumes Inputs MACs worth of work: N multiplies plus
	// N-1 adds. Report energy per MAC-equivalent op for comparability with
	// the TU.
	totalPerReduce := u.macArray.DynPJ + u.tree.DynPJ
	u.perMACPJ = totalPerReduce / float64(cfg.Inputs)
	u.critPS = crit
	return u, nil
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// AreaUM2 returns total area.
func (u *Unit) AreaUM2() float64 { return u.areaUM2 }

// PerMACPJ returns dynamic energy per MAC-equivalent operation.
func (u *Unit) PerMACPJ() float64 { return u.perMACPJ }

// LeakUW returns total leakage.
func (u *Unit) LeakUW() float64 { return u.leakUW }

// CritPathPS returns the slowest pipeline stage delay.
func (u *Unit) CritPathPS() float64 { return u.critPS }

// MeetsTiming reports whether the slowest stage fits the target cycle.
func (u *Unit) MeetsTiming() bool { return u.critPS <= u.Cfg.CyclePS }

// Levels returns the adder-tree depth; PipelineDFFLayers the number of
// inserted pipeline cut points (in adder nodes).
func (u *Unit) Levels() int { return u.levels }

// PipelineDFFs returns the number of tree nodes that received a pipeline
// register.
func (u *Unit) PipelineDFFs() int { return u.pipeDFFs }

// MACs returns the number of multiplier lanes.
func (u *Unit) MACs() int { return u.Cfg.Inputs }

// PeakOpsPerCycle returns 2*Inputs ops per cycle (N multiplies + N-1 adds,
// rounded to the same 2-ops-per-MAC convention as the TU).
func (u *Unit) PeakOpsPerCycle() float64 { return 2 * float64(u.Cfg.Inputs) }

// Result summarizes the unit; DynPJ is per MAC-equivalent.
func (u *Unit) Result() pat.Result {
	return pat.Result{AreaUM2: u.areaUM2, DynPJ: u.perMACPJ, LeakUW: u.leakUW, DelayPS: u.critPS}
}

func (u *Unit) String() string {
	return fmt.Sprintf("rt[%d:1 %s/%s levels=%d pipeDFFs=%d area=%.3fmm2 %.3fpJ/MAC]",
		u.Cfg.Inputs, u.Cfg.MulType, u.Cfg.AccType, u.levels, u.pipeDFFs,
		u.areaUM2/1e6, u.perMACPJ)
}
