package reducetree

import (
	"strings"
	"testing"

	"neurometer/internal/maclib"
	"neurometer/internal/tech/techtest"
)

const cycle700 = 1e12 / 700e6

func cfg(inputs int) Config {
	return Config{
		Node:    techtest.MustByNode(28),
		Inputs:  inputs,
		MulType: maclib.Int8,
		CyclePS: cycle700,
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(cfg(1)); err == nil {
		t.Errorf("1 input must fail")
	}
	if _, err := Build(cfg(48)); err == nil {
		t.Errorf("non-power-of-two must fail")
	}
	c := cfg(64)
	c.CyclePS = 0
	if _, err := Build(c); err == nil {
		t.Errorf("zero cycle must fail")
	}
	c = cfg(64)
	c.AdderFanIn = 1
	if _, err := Build(c); err == nil {
		t.Errorf("fan-in 1 must fail")
	}
}

func TestLevels(t *testing.T) {
	for _, tc := range []struct {
		inputs, fanIn, levels int
	}{
		{64, 2, 6}, {1024, 2, 10}, {64, 4, 3}, {16, 2, 4},
	} {
		c := cfg(tc.inputs)
		c.AdderFanIn = tc.fanIn
		u, err := Build(c)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if u.Levels() != tc.levels {
			t.Errorf("inputs=%d fanIn=%d: levels=%d, want %d", tc.inputs, tc.fanIn, u.Levels(), tc.levels)
		}
	}
}

func TestAreaScalesLinearly(t *testing.T) {
	small, err := Build(cfg(64))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(cfg(1024))
	if err != nil {
		t.Fatal(err)
	}
	r := big.AreaUM2() / small.AreaUM2()
	if r < 12 || r > 20 {
		t.Errorf("16x inputs should be ~16x the area, got %.1fx", r)
	}
}

func TestRTPerMACCheaperThanTU(t *testing.T) {
	// The RT has no stationary-operand registers per MAC lane, so its
	// per-MAC energy should undercut a same-OPS systolic TU. This is the
	// premise behind the paper's RT-vs-TU sparsity study baseline ("the
	// same OPS per compute unit as the corresponding systolic arrays").
	u, err := Build(cfg(1024))
	if err != nil {
		t.Fatal(err)
	}
	if u.PerMACPJ() <= 0 || u.PerMACPJ() > 1.0 {
		t.Errorf("RT per-MAC energy out of band: %g pJ", u.PerMACPJ())
	}
}

func TestPipelineInsertionAtFastClock(t *testing.T) {
	// A 1024-input tree cannot traverse 10 adder levels in a 2GHz cycle;
	// the builder must cut it with pipeline DFFs and still meet timing.
	c := cfg(1024)
	c.CyclePS = 500 // 2 GHz
	u, err := Build(c)
	if err != nil {
		t.Fatal(err)
	}
	if u.PipelineDFFs() == 0 {
		t.Errorf("2GHz 1024-input tree must pipeline")
	}
	if !u.MeetsTiming() {
		t.Errorf("pipelined tree must meet timing: crit=%.0fps cycle=%.0fps", u.CritPathPS(), c.CyclePS)
	}
	// A slow clock needs no pipelining for a small tree.
	slow := cfg(16)
	slow.CyclePS = 10000
	u2, err := Build(slow)
	if err != nil {
		t.Fatal(err)
	}
	if u2.PipelineDFFs() != 0 {
		t.Errorf("10ns 16-input tree should not pipeline, got %d DFF nodes", u2.PipelineDFFs())
	}
}

func TestPipeliningCostsAreaButMeetsTiming(t *testing.T) {
	slow := cfg(256)
	slow.CyclePS = 20000
	fast := cfg(256)
	fast.CyclePS = 700
	us, err := Build(slow)
	if err != nil {
		t.Fatal(err)
	}
	uf, err := Build(fast)
	if err != nil {
		t.Fatal(err)
	}
	if uf.AreaUM2() <= us.AreaUM2() {
		t.Errorf("pipelined tree must cost more area: %g vs %g", uf.AreaUM2(), us.AreaUM2())
	}
}

func TestCustomAdderFanIn(t *testing.T) {
	c2 := cfg(256)
	c4 := cfg(256)
	c4.AdderFanIn = 4
	u2, err := Build(c2)
	if err != nil {
		t.Fatal(err)
	}
	u4, err := Build(c4)
	if err != nil {
		t.Fatal(err)
	}
	if u4.Levels() >= u2.Levels() {
		t.Errorf("fan-in 4 must be shallower: %d vs %d", u4.Levels(), u2.Levels())
	}
}

func TestPeakOpsAndString(t *testing.T) {
	u, err := Build(cfg(64))
	if err != nil {
		t.Fatal(err)
	}
	if u.MACs() != 64 || u.PeakOpsPerCycle() != 128 {
		t.Errorf("ops accounting: MACs=%d peak=%g", u.MACs(), u.PeakOpsPerCycle())
	}
	if !strings.Contains(u.String(), "64:1") {
		t.Errorf("String: %q", u.String())
	}
	if !u.Result().Valid() {
		t.Errorf("invalid result")
	}
}
