package serve

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

// Observability: the request-path metrics in the obs default registry.
// serve.shed_total is the load-shedding contract's witness; the histogram
// and gauge reuse the obs instruments the sweeps already export.
var (
	mRequests   = obs.NewCounter("serve.requests_total")
	mErrors5xx  = obs.NewCounter("serve.responses_5xx")
	mShed       = obs.NewCounter("serve.shed_total")
	mPanics     = obs.NewCounter("serve.handler_panics")
	mReqSeconds = obs.NewHistogram("serve.request_seconds", nil)
	gInflight   = obs.NewGauge("serve.inflight")
)

// apiError is the wire form of every failure: the message plus the guard
// taxonomy kind, so clients branch on a stable enum instead of parsing
// prose.
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// handlerFunc is a model endpoint: it returns the response body (marshaled
// as JSON) and an optional non-200 success status. Failures return a guard
// taxonomy error; the middleware maps it to the HTTP status.
type handlerFunc func(r *http.Request) (status int, body any, err error)

// handle wraps a model endpoint with the full robustness stack, outermost
// first: request metrics, admission control (lim may be nil for cheap
// endpoints), per-request deadline propagation, panic recovery, error→
// status mapping, and watchdog accounting.
func (s *Server) handle(endpoint string, lim *limiter, h handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mRequests.Inc()
		start := time.Now()
		gInflight.Add(1)
		defer func() {
			gInflight.Add(-1)
			mReqSeconds.Observe(time.Since(start).Seconds())
		}()

		if lim != nil {
			release, err := lim.acquire(r.Context())
			if err != nil {
				s.writeError(w, r, endpoint, err)
				return
			}
			defer release()
		}

		ctx, cancel := s.requestContext(r)
		defer cancel()

		var status int
		var body any
		err := func() (err error) {
			defer guard.RecoverTo(&err)
			status, body, err = h(r.WithContext(ctx))
			return err
		}()
		if err != nil {
			if errors.Is(err, guard.ErrCandidatePanic) {
				mPanics.Inc()
			}
			s.writeError(w, r, endpoint, err)
			return
		}
		s.wd.ok()
		if status == 0 {
			status = http.StatusOK
		}
		writeJSON(w, status, body)
	})
}

// requestContext derives the handler context: the server's default request
// timeout, tightened (never loosened) by a positive ?timeout_ms= query
// parameter. The resulting deadline rides into the model layers, and a
// client disconnect cancels it through r.Context().
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if ms, err := strconv.Atoi(r.URL.Query().Get("timeout_ms")); err == nil && ms > 0 {
		if req := time.Duration(ms) * time.Millisecond; d <= 0 || req < d {
			d = req
		}
	}
	if d <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), d)
}

// writeError renders a failure: ErrShed → 429 + Retry-After, everything
// else through guard.HTTPStatus, with the kind= taxonomy in the body. 5xx
// responses feed the watchdog; shed and 4xx responses do not (the server
// is behaving as designed).
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, endpoint string, err error) {
	status := guard.HTTPStatus(err)
	if errors.Is(err, ErrShed) {
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", s.retryAfter())
		mShed.Inc()
	}
	if status >= 500 {
		mErrors5xx.Inc()
		s.wd.fail()
		slog.Warn("serve: request failed", "endpoint", endpoint,
			"status", status, "kind", guard.Kind(err), "err", err)
	}
	writeJSON(w, status, apiError{Error: err.Error(), Kind: guard.Kind(err)})
}

// retryAfter hints how long a shed client should back off: the admission
// deadline rounded up to a whole second (the time a queued slot is most
// likely to take to free).
func (s *Server) retryAfter() string {
	secs := int(s.cfg.AdmissionTimeout / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		slog.Debug("serve: response encode failed", "err", err)
	}
}
