package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"mime"
	"net/http"
	"strconv"
	"time"

	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

// Observability: the request-path metrics in the obs default registry.
// serve.shed_total is the load-shedding contract's witness; the histogram
// and gauge reuse the obs instruments the sweeps already export.
var (
	mRequests   = obs.NewCounter("serve.requests_total")
	mErrors5xx  = obs.NewCounter("serve.responses_5xx")
	mShed       = obs.NewCounter("serve.shed_total")
	mPanics     = obs.NewCounter("serve.handler_panics")
	mReqSeconds = obs.NewHistogram("serve.request_seconds", nil)
	gInflight   = obs.NewGauge("serve.inflight")
)

// routeMetrics are the per-route RED instruments (rate, errors, duration),
// registered once per route when the middleware stack is built. Error
// counters are labeled by taxonomy kind and registered on first use — the
// kind set is small and data-dependent.
type routeMetrics struct {
	requests *obs.Counter
	seconds  *obs.Histogram
}

func newRouteMetrics(route string) routeMetrics {
	return routeMetrics{
		requests: obs.NewCounter(obs.Name("serve.route_requests_total", "route", route)),
		seconds:  obs.NewHistogram(obs.Name("serve.route_request_seconds", "route", route), nil),
	}
}

func routeErrors(route, kind string) *obs.Counter {
	return obs.NewCounter(obs.Name("serve.route_errors_total", "route", route, "kind", kind))
}

// statusWriter records the response status for metrics and the access log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// requestID resolves the request's correlation id: an incoming X-Request-Id
// wins (so a caller's id threads through), then the trace id of an incoming
// traceparent (fleet calls correlate with the coordinator's trace), then a
// fresh id. The resolved id is echoed in the X-Request-Id response header
// and stamped on the access-log line.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" {
		if len(id) > 64 {
			id = id[:64]
		}
		return id
	}
	if traceID, _, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
		return traceID
	}
	return obs.NewTraceID()
}

// apiError is the wire form of every failure: the message plus the guard
// taxonomy kind, so clients branch on a stable enum instead of parsing
// prose.
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// Serve-level rejections outside the guard taxonomy: an oversized request
// body (413, kind=too-large) and a POST with a non-JSON Content-Type (415,
// kind=unsupported-media). Both are client errors the model layers never
// see.
var (
	ErrTooLarge         = errors.New("request body too large")
	ErrUnsupportedMedia = errors.New("unsupported content type")
)

// errKind names an error for the wire: serve sentinels get their own kinds,
// everything else falls through to the guard taxonomy.
func errKind(err error) string {
	switch {
	case errors.Is(err, ErrShed):
		return "shed"
	case errors.Is(err, ErrTooLarge):
		return "too-large"
	case errors.Is(err, ErrUnsupportedMedia):
		return "unsupported-media"
	}
	return guard.Kind(err)
}

// handlerFunc is a model endpoint: it returns the response body (marshaled
// as JSON) and an optional non-200 success status. Failures return a guard
// taxonomy error; the middleware maps it to the HTTP status.
type handlerFunc func(r *http.Request) (status int, body any, err error)

// handle wraps a model endpoint with the full robustness stack, outermost
// first: request identity + RED metrics + access logging, admission control
// (lim may be nil for cheap endpoints), per-request deadline propagation,
// panic recovery, error→status mapping, and watchdog accounting.
func (s *Server) handle(endpoint string, lim *limiter, h handlerFunc) http.Handler {
	rm := newRouteMetrics(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mRequests.Inc()
		rm.requests.Inc()
		start := time.Now()
		gInflight.Add(1)

		rid := requestID(r)
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Request-Id", rid)

		var kind string // error disposition ("" = success), for RED + log
		defer func() {
			gInflight.Add(-1)
			sec := time.Since(start).Seconds()
			mReqSeconds.Observe(sec)
			rm.seconds.Observe(sec)
			if kind != "" {
				routeErrors(endpoint, kind).Inc()
			}
			s.logAccess(r, endpoint, rid, sw.status(), kind, sec)
		}()
		fail := func(err error) {
			kind = errKind(err)
			s.writeError(sw, r, endpoint, err)
		}

		if r.Method == http.MethodPost {
			if err := checkContentType(r); err != nil {
				fail(err)
				return
			}
			// MaxBytesReader (unlike a bare LimitReader) closes the
			// connection on overflow and surfaces a typed error decodeBody
			// maps to 413 — a client streaming an oversized body cannot
			// tie up the decoder.
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		}

		if lim != nil {
			release, err := lim.acquire(r.Context())
			if err != nil {
				fail(err)
				return
			}
			defer release()
		}

		ctx, cancel := s.requestContext(r)
		defer cancel()
		ctx, span := obs.Start(ctx, "serve."+endpoint, obs.String("request_id", rid))
		defer span.End()

		var status int
		var body any
		err := func() (err error) {
			defer guard.RecoverTo(&err)
			status, body, err = h(r.WithContext(ctx))
			return err
		}()
		if err != nil {
			if errors.Is(err, guard.ErrCandidatePanic) {
				mPanics.Inc()
			}
			fail(err)
			return
		}
		s.wd.ok()
		if status == 0 {
			status = http.StatusOK
		}
		writeJSON(sw, status, body)
	})
}

// logAccess emits one structured access-log line (when the server has an
// access logger): request id, route, status, error disposition, latency,
// and a slow-request flag against the configured threshold.
func (s *Server) logAccess(r *http.Request, endpoint, rid string, status int, kind string, sec float64) {
	if s.accessLog == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("request_id", rid),
		slog.String("route", endpoint),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Float64("duration_ms", sec*1e3),
	}
	if kind != "" {
		attrs = append(attrs, slog.String("kind", kind))
	}
	if slow := s.cfg.SlowRequest; slow > 0 && sec >= slow.Seconds() {
		attrs = append(attrs, slog.Bool("slow", true))
	}
	s.accessLog.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
}

// requestContext derives the handler context: the server's default request
// timeout, tightened (never loosened) by a positive ?timeout_ms= query
// parameter. The resulting deadline rides into the model layers, and a
// client disconnect cancels it through r.Context().
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if ms, err := strconv.Atoi(r.URL.Query().Get("timeout_ms")); err == nil && ms > 0 {
		if req := time.Duration(ms) * time.Millisecond; d <= 0 || req < d {
			d = req
		}
	}
	if d <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), d)
}

// checkContentType rejects POSTs whose declared Content-Type is not JSON.
// An absent Content-Type is tolerated — the body decoder is the arbiter
// then — but an explicit wrong declaration (a form post, a file upload) is
// a client bug better reported as 415 than as a JSON parse error.
func checkContentType(r *http.Request) error {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return fmt.Errorf("%w: malformed Content-Type %q", ErrUnsupportedMedia, ct)
	}
	if mt != "application/json" {
		return fmt.Errorf("%w: %q (this API speaks application/json)", ErrUnsupportedMedia, mt)
	}
	return nil
}

// writeError renders a failure: ErrShed → 429 + Retry-After, ErrTooLarge →
// 413, ErrUnsupportedMedia → 415, everything else through guard.HTTPStatus,
// with the kind= taxonomy in the body. 5xx responses feed the watchdog;
// shed and 4xx responses do not (the server is behaving as designed).
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, endpoint string, err error) {
	status := guard.HTTPStatus(err)
	switch {
	case errors.Is(err, ErrShed):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", s.retryAfter())
		mShed.Inc()
	case errors.Is(err, ErrTooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrUnsupportedMedia):
		status = http.StatusUnsupportedMediaType
	}
	if status >= 500 {
		mErrors5xx.Inc()
		s.wd.fail()
		slog.Warn("serve: request failed", "endpoint", endpoint,
			"status", status, "kind", errKind(err), "err", err)
	}
	writeJSON(w, status, apiError{Error: err.Error(), Kind: errKind(err)})
}

// retryAfter hints how long a shed client should back off: the admission
// deadline rounded up to a whole second (the time a queued slot is most
// likely to take to free), plus a uniform 0..RetryAfterJitter seconds of
// dither so a burst of shed clients does not reconverge on the same retry
// tick and shed again in lockstep.
func (s *Server) retryAfter() string {
	secs := int(s.cfg.AdmissionTimeout / time.Second)
	if secs < 1 {
		secs = 1
	}
	if j := s.cfg.RetryAfterJitter; j > 0 {
		secs += rand.Intn(j + 1)
	}
	return strconv.Itoa(secs)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		slog.Debug("serve: response encode failed", "err", err)
	}
}
