package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"mime"
	"net/http"
	"strconv"
	"time"

	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

// Observability: the request-path metrics in the obs default registry.
// serve.shed_total is the load-shedding contract's witness; the histogram
// and gauge reuse the obs instruments the sweeps already export.
var (
	mRequests   = obs.NewCounter("serve.requests_total")
	mErrors5xx  = obs.NewCounter("serve.responses_5xx")
	mShed       = obs.NewCounter("serve.shed_total")
	mPanics     = obs.NewCounter("serve.handler_panics")
	mReqSeconds = obs.NewHistogram("serve.request_seconds", nil)
	gInflight   = obs.NewGauge("serve.inflight")
)

// apiError is the wire form of every failure: the message plus the guard
// taxonomy kind, so clients branch on a stable enum instead of parsing
// prose.
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// Serve-level rejections outside the guard taxonomy: an oversized request
// body (413, kind=too-large) and a POST with a non-JSON Content-Type (415,
// kind=unsupported-media). Both are client errors the model layers never
// see.
var (
	ErrTooLarge         = errors.New("request body too large")
	ErrUnsupportedMedia = errors.New("unsupported content type")
)

// errKind names an error for the wire: serve sentinels get their own kinds,
// everything else falls through to the guard taxonomy.
func errKind(err error) string {
	switch {
	case errors.Is(err, ErrShed):
		return "shed"
	case errors.Is(err, ErrTooLarge):
		return "too-large"
	case errors.Is(err, ErrUnsupportedMedia):
		return "unsupported-media"
	}
	return guard.Kind(err)
}

// handlerFunc is a model endpoint: it returns the response body (marshaled
// as JSON) and an optional non-200 success status. Failures return a guard
// taxonomy error; the middleware maps it to the HTTP status.
type handlerFunc func(r *http.Request) (status int, body any, err error)

// handle wraps a model endpoint with the full robustness stack, outermost
// first: request metrics, admission control (lim may be nil for cheap
// endpoints), per-request deadline propagation, panic recovery, error→
// status mapping, and watchdog accounting.
func (s *Server) handle(endpoint string, lim *limiter, h handlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mRequests.Inc()
		start := time.Now()
		gInflight.Add(1)
		defer func() {
			gInflight.Add(-1)
			mReqSeconds.Observe(time.Since(start).Seconds())
		}()

		if r.Method == http.MethodPost {
			if err := checkContentType(r); err != nil {
				s.writeError(w, r, endpoint, err)
				return
			}
			// MaxBytesReader (unlike a bare LimitReader) closes the
			// connection on overflow and surfaces a typed error decodeBody
			// maps to 413 — a client streaming an oversized body cannot
			// tie up the decoder.
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}

		if lim != nil {
			release, err := lim.acquire(r.Context())
			if err != nil {
				s.writeError(w, r, endpoint, err)
				return
			}
			defer release()
		}

		ctx, cancel := s.requestContext(r)
		defer cancel()

		var status int
		var body any
		err := func() (err error) {
			defer guard.RecoverTo(&err)
			status, body, err = h(r.WithContext(ctx))
			return err
		}()
		if err != nil {
			if errors.Is(err, guard.ErrCandidatePanic) {
				mPanics.Inc()
			}
			s.writeError(w, r, endpoint, err)
			return
		}
		s.wd.ok()
		if status == 0 {
			status = http.StatusOK
		}
		writeJSON(w, status, body)
	})
}

// requestContext derives the handler context: the server's default request
// timeout, tightened (never loosened) by a positive ?timeout_ms= query
// parameter. The resulting deadline rides into the model layers, and a
// client disconnect cancels it through r.Context().
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	d := s.cfg.RequestTimeout
	if ms, err := strconv.Atoi(r.URL.Query().Get("timeout_ms")); err == nil && ms > 0 {
		if req := time.Duration(ms) * time.Millisecond; d <= 0 || req < d {
			d = req
		}
	}
	if d <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), d)
}

// checkContentType rejects POSTs whose declared Content-Type is not JSON.
// An absent Content-Type is tolerated — the body decoder is the arbiter
// then — but an explicit wrong declaration (a form post, a file upload) is
// a client bug better reported as 415 than as a JSON parse error.
func checkContentType(r *http.Request) error {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return nil
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return fmt.Errorf("%w: malformed Content-Type %q", ErrUnsupportedMedia, ct)
	}
	if mt != "application/json" {
		return fmt.Errorf("%w: %q (this API speaks application/json)", ErrUnsupportedMedia, mt)
	}
	return nil
}

// writeError renders a failure: ErrShed → 429 + Retry-After, ErrTooLarge →
// 413, ErrUnsupportedMedia → 415, everything else through guard.HTTPStatus,
// with the kind= taxonomy in the body. 5xx responses feed the watchdog;
// shed and 4xx responses do not (the server is behaving as designed).
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, endpoint string, err error) {
	status := guard.HTTPStatus(err)
	switch {
	case errors.Is(err, ErrShed):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", s.retryAfter())
		mShed.Inc()
	case errors.Is(err, ErrTooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrUnsupportedMedia):
		status = http.StatusUnsupportedMediaType
	}
	if status >= 500 {
		mErrors5xx.Inc()
		s.wd.fail()
		slog.Warn("serve: request failed", "endpoint", endpoint,
			"status", status, "kind", errKind(err), "err", err)
	}
	writeJSON(w, status, apiError{Error: err.Error(), Kind: errKind(err)})
}

// retryAfter hints how long a shed client should back off: the admission
// deadline rounded up to a whole second (the time a queued slot is most
// likely to take to free), plus a uniform 0..RetryAfterJitter seconds of
// dither so a burst of shed clients does not reconverge on the same retry
// tick and shed again in lockstep.
func (s *Server) retryAfter() string {
	secs := int(s.cfg.AdmissionTimeout / time.Second)
	if secs < 1 {
		secs = 1
	}
	if j := s.cfg.RetryAfterJitter; j > 0 {
		secs += rand.Intn(j + 1)
	}
	return strconv.Itoa(secs)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		slog.Debug("serve: response encode failed", "err", err)
	}
}
