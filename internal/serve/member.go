package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"time"

	"neurometer/internal/fleet"
	"neurometer/internal/guard"
)

// Fleet membership endpoints and the worker-side join loop.
//
// Coordinator side: when Config.Membership is set, POST /v1/worker/register
// and POST /v1/worker/drain (always mounted, under the worker limiter) feed
// the coordinator's membership table, and /readyz grows a fleet summary.
// On a process without a membership table the endpoints answer 400 — a
// worker announcing itself to a non-coordinator is a deployment mistake
// worth surfacing, not ignoring.
//
// Worker side: when Config.Join and Config.Advertise are set, a join loop
// re-registers this process with the coordinator every JoinInterval — the
// initial registration is how a hot-started worker enters the fleet, and
// the periodic re-registration readmits it if the coordinator ever
// suspected or evicted it (e.g. across a coordinator heartbeat outage).
// Shutdown stops the loop and announces drain to the coordinator BEFORE
// closing the listener, so the coordinator stops dispatching to a worker
// that is about to disappear while the worker still finishes the shards it
// holds.

// MemberRequest is the register/drain wire format: the worker's advertised
// base URL.
type MemberRequest struct {
	URL string `json:"url"`
}

// MemberResponse reports the worker's resulting membership state.
type MemberResponse struct {
	URL   string `json:"url"`
	State string `json:"state"`
}

func (s *Server) workerRegister(r *http.Request) (int, any, error) {
	var req MemberRequest
	if err := decodeBody(r, &req); err != nil {
		return 0, nil, err
	}
	if err := guard.Inject(r.Context(), "fleet.register"); err != nil {
		return 0, nil, err
	}
	if s.cfg.Membership == nil {
		return 0, nil, guard.Invalid("serve: not a fleet coordinator")
	}
	st, err := s.cfg.Membership.Register(r.Context(), req.URL, time.Now())
	if err != nil {
		return 0, nil, err
	}
	return http.StatusOK, MemberResponse{URL: req.URL, State: st.String()}, nil
}

func (s *Server) workerDrain(r *http.Request) (int, any, error) {
	var req MemberRequest
	if err := decodeBody(r, &req); err != nil {
		return 0, nil, err
	}
	if err := guard.Inject(r.Context(), "fleet.register"); err != nil {
		return 0, nil, err
	}
	if s.cfg.Membership == nil {
		return 0, nil, guard.Invalid("serve: not a fleet coordinator")
	}
	st, err := s.cfg.Membership.Drain(r.Context(), req.URL)
	if err != nil {
		return 0, nil, err
	}
	return http.StatusOK, MemberResponse{URL: req.URL, State: st.String()}, nil
}

// joinLoop announces this worker to the coordinator immediately and then
// every JoinInterval. Registration is idempotent on the coordinator side,
// so the steady-state re-registration is a cheap worker-driven heartbeat
// that also self-heals an eviction.
func (s *Server) joinLoop(ctx context.Context) {
	defer close(s.joinDone)
	s.announce(ctx, "/v1/worker/register")
	t := time.NewTicker(s.joinInterval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			s.announce(ctx, "/v1/worker/register")
		}
	}
}

func (s *Server) joinInterval() time.Duration {
	if s.cfg.JoinInterval > 0 {
		return s.cfg.JoinInterval
	}
	return fleet.DefaultHeartbeat
}

// announce POSTs this worker's advertised URL to one coordinator membership
// endpoint. Failures are logged and retried on the next tick — a worker
// that cannot reach its coordinator still serves /v1/worker/eval; the
// coordinator's own probes decide its fate.
func (s *Server) announce(ctx context.Context, path string) bool {
	body, _ := json.Marshal(MemberRequest{URL: s.cfg.Advertise})
	cctx, cancel := context.WithTimeout(ctx, s.joinInterval())
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost,
		s.cfg.Join+path, bytes.NewReader(body))
	if err != nil {
		slog.WarnContext(ctx, "serve: fleet announce failed", "path", path, "err", err)
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		slog.WarnContext(ctx, "serve: fleet announce failed",
			"coordinator", s.cfg.Join, "path", path, "err", err)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		slog.WarnContext(ctx, "serve: fleet announce rejected",
			"coordinator", s.cfg.Join, "path", path, "status", resp.StatusCode)
		return false
	}
	return true
}

// announceDrain tells the coordinator to stop dispatching to this worker.
// Called by Shutdown after the join loop has stopped (so a late
// re-registration cannot undo the drain) and before the listener closes
// (so shards already leased to this worker still complete and report).
func (s *Server) announceDrain(ctx context.Context) {
	if s.cfg.Join == "" || s.cfg.Advertise == "" {
		return
	}
	if s.announce(ctx, "/v1/worker/drain") {
		slog.InfoContext(ctx, "serve: announced drain to coordinator",
			"coordinator", s.cfg.Join, "advertise", s.cfg.Advertise)
	}
}
