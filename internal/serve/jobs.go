package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"neurometer/internal/dse"
	"neurometer/internal/guard"
	"neurometer/internal/obs"
	"neurometer/internal/perfsim"
)

// The async DSE job API. A study's identity is its fingerprint — the
// constraints, batch regime, options, workloads, and candidate list that
// determine its output — and the job ID is a hash of that fingerprint.
// Idempotence falls out: resubmitting the same study returns the same job,
// whether it is queued, running, finished, or was interrupted by a restart
// (in which case the new job resumes the checkpoint the old process
// flushed on its way down, and completes byte-identically).

var (
	mJobsSubmitted = obs.NewCounter("serve.jobs_submitted")
	mJobsDone      = obs.NewCounter("serve.jobs_completed")
	mJobsFailed    = obs.NewCounter("serve.jobs_failed")
	gJobsRunning   = obs.NewGauge("serve.jobs_running")
)

// Job states.
const (
	JobQueued      = "queued"
	JobRunning     = "running"
	JobDone        = "done"
	JobFailed      = "failed"
	JobInterrupted = "interrupted" // shutdown drained it; resubmit to resume
)

// StudyRequest describes a study job. The zero value means: the paper's
// Table I constraints, frontier + second-round reduction, batch 1, all
// workloads, all optimizations.
type StudyRequest struct {
	// Regime picks a Fig. 10 batch regime ("a-small" | "b-medium" |
	// "c-large"); alternatively set Batch or LatencyBoundMS directly.
	Regime         string  `json:"regime,omitempty"`
	Batch          int     `json:"batch,omitempty"`
	LatencyBoundMS float64 `json:"latency_bound_ms,omitempty"`
	// Full evaluates the whole feasible set instead of the frontier.
	Full bool `json:"full,omitempty"`
	// Models restricts the workload set (names as in /v1/perfsim/simulate).
	Models []string `json:"models,omitempty"`
	// Sweep-shrinking knobs (defaults: the Table I choices).
	XChoices []int `json:"x_choices,omitempty"`
	NChoices []int `json:"n_choices,omitempty"`
	MaxTiles int   `json:"max_tiles,omitempty"`
	// Hardening overrides.
	CandidateTimeoutMS int `json:"candidate_timeout_ms,omitempty"`
	Retries            int `json:"retries,omitempty"`
	Workers            int `json:"workers,omitempty"`
	// Wait blocks the request until the job finishes (bounded by the
	// request deadline) instead of returning 202 immediately.
	Wait bool `json:"wait,omitempty"`
}

// spec resolves the request into a dse.StudySpec.
func (sr StudyRequest) spec() (dse.StudySpec, error) {
	cs := dse.TableI()
	if len(sr.XChoices) > 0 {
		cs.XChoices = sr.XChoices
	}
	if len(sr.NChoices) > 0 {
		cs.NChoices = sr.NChoices
	}
	if sr.MaxTiles > 0 {
		cs.MaxTiles = sr.MaxTiles
	}
	var spec dse.BatchSpec
	switch {
	case sr.Regime != "" && (sr.Batch != 0 || sr.LatencyBoundMS != 0):
		return dse.StudySpec{}, guard.Invalid("give a regime or an explicit batch spec, not both")
	case sr.Regime == "a-small":
		spec = dse.BatchSpec{Fixed: 1}
	case sr.Regime == "b-medium":
		spec = dse.BatchSpec{LatencyBound: 10e-3}
	case sr.Regime == "c-large":
		spec = dse.BatchSpec{Fixed: 256}
	case sr.Regime != "":
		return dse.StudySpec{}, guard.Invalid("unknown regime %q", sr.Regime)
	case sr.Batch != 0 && sr.LatencyBoundMS != 0:
		return dse.StudySpec{}, guard.Invalid("give batch or latency_bound_ms, not both")
	case sr.Batch < 0:
		return dse.StudySpec{}, guard.Invalid("batch must be positive, got %d", sr.Batch)
	case sr.Batch > 0:
		spec = dse.BatchSpec{Fixed: sr.Batch}
	case sr.LatencyBoundMS > 0:
		spec = dse.BatchSpec{LatencyBound: sr.LatencyBoundMS * 1e-3}
	default:
		spec = dse.BatchSpec{Fixed: 1}
	}
	return dse.StudySpec{
		Constraints: cs,
		Full:        sr.Full,
		Spec:        spec,
		Opt:         perfsim.DefaultOptions(),
		Models:      sr.Models,
	}, nil
}

// job is one study's lifecycle record.
type job struct {
	id    string
	study *dse.Study
	hard  dse.Hardening

	cancel context.CancelFunc
	done   chan struct{} // closed when the run goroutine finishes

	mu    sync.Mutex
	state string
	rows  []dse.RuntimeRow
	err   error
}

func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
}

// JobStatus is the wire form of a job.
type JobStatus struct {
	ID         string           `json:"id"`
	State      string           `json:"state"`
	Candidates int              `json:"candidates"`
	Rows       []dse.RuntimeRow `json:"rows,omitempty"`
	CSV        string           `json:"csv,omitempty"`
	Error      string           `json:"error,omitempty"`
	Kind       string           `json:"kind,omitempty"`
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		State:      j.state,
		Candidates: j.study.NumCandidates(),
	}
	if j.state == JobDone {
		st.Rows = j.rows
		st.CSV = dse.RuntimeRowsCSV(j.rows)
	}
	if j.err != nil {
		st.Error = j.err.Error()
		st.Kind = guard.Kind(j.err)
	}
	return st
}

// jobStore owns every job of this process plus the run-slot semaphore.
type jobStore struct {
	s    *Server
	sem  chan struct{} // running-study slots
	mu   sync.Mutex
	jobs map[string]*job
	wg   sync.WaitGroup
}

func newJobStore(s *Server) *jobStore {
	cleanJobsDir(s.cfg.JobsDir)
	return &jobStore{
		s:    s,
		sem:  make(chan struct{}, s.cfg.StudyLimit),
		jobs: map[string]*job{},
	}
}

// cleanJobsDir is the startup hygiene scan of the jobs directory: a SIGKILL
// between a checkpoint's tmp write and its rename leaves an orphaned
// *.ckpt.json.tmp that no future flush will ever reclaim (each job writes
// its own path). The orphans are harmless to correctness — resume reads
// only the renamed file — but they accumulate forever and confuse
// operators listing the directory, so they are removed on boot. Nothing
// else is touched, and a missing or unreadable directory is a no-op: job
// persistence degrades, serving does not.
func cleanJobsDir(dir string) {
	if dir == "" {
		return
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		return
	}
	for _, path := range matches {
		if err := os.Remove(path); err == nil {
			slog.Info("serve: removed orphaned checkpoint tmp file", "path", path)
		}
	}
}

// jobID hashes a study fingerprint into the stable, URL-safe job identity.
func jobID(fingerprint string) string {
	sum := sha256.Sum256([]byte(fingerprint))
	return hex.EncodeToString(sum[:8])
}

func (st *jobStore) running() int {
	return len(st.sem)
}

func (st *jobStore) queued() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, j := range st.jobs {
		j.mu.Lock()
		if j.state == JobQueued {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// submit registers (or finds) the job for a study and starts it. The
// queued-job bound is the job API's admission control: beyond it new
// studies shed with ErrShed rather than queueing unboundedly.
func (st *jobStore) submit(study *dse.Study, hard dse.Hardening) (*job, bool, error) {
	id := jobID(study.Fingerprint())
	st.mu.Lock()
	if j, ok := st.jobs[id]; ok {
		// Idempotent resubmission. A job the drain interrupted is revived
		// with a fresh run that resumes its checkpoint.
		j.mu.Lock()
		interrupted := j.state == JobInterrupted
		if interrupted {
			j.state = JobQueued
			j.err = nil
			j.done = make(chan struct{})
			j.study = study
		}
		j.mu.Unlock()
		st.mu.Unlock()
		if interrupted {
			st.start(j)
		}
		return j, false, nil
	}
	if st.s.isDraining() {
		st.mu.Unlock()
		return nil, false, fmt.Errorf("%w: server is draining", ErrShed)
	}
	if n := st.queuedLocked(); n >= st.s.cfg.MaxQueuedJobs {
		st.mu.Unlock()
		return nil, false, fmt.Errorf("%w: %d study jobs already queued", ErrShed, n)
	}
	j := &job{
		id:    id,
		study: study,
		hard:  hard,
		state: JobQueued,
		done:  make(chan struct{}),
	}
	st.jobs[id] = j
	st.mu.Unlock()
	mJobsSubmitted.Inc()
	st.start(j)
	return j, true, nil
}

// queuedLocked is queued() for callers already holding st.mu.
func (st *jobStore) queuedLocked() int {
	n := 0
	for _, j := range st.jobs {
		j.mu.Lock()
		if j.state == JobQueued {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// start launches the job goroutine: wait for a run slot, execute the study
// under the server's base context, record the outcome.
func (st *jobStore) start(j *job) {
	ctx, cancel := context.WithCancel(st.s.baseCtx)
	j.mu.Lock()
	j.cancel = cancel
	done := j.done
	j.mu.Unlock()
	st.wg.Add(1)
	go func() {
		defer st.wg.Done()
		defer close(done)
		select {
		case st.sem <- struct{}{}:
			defer func() { <-st.sem }()
		case <-ctx.Done():
			// Drained while queued: nothing ran, nothing to flush.
			j.setState(JobInterrupted)
			return
		}
		j.setState(JobRunning)
		gJobsRunning.Add(1)
		defer gJobsRunning.Add(-1)

		rows, err := j.study.Run(ctx, j.hard, st.ckptPath(j.id))
		j.mu.Lock()
		defer j.mu.Unlock()
		switch {
		case err == nil:
			j.state, j.rows, j.err = JobDone, rows, nil
			mJobsDone.Inc()
		case errors.Is(err, guard.ErrCanceled) && st.s.isDraining():
			// The drain canceled us; the checkpoint flush already ran
			// inside RuntimeStudyHardened. Resumable.
			j.state, j.err = JobInterrupted, err
			slog.Info("serve: study job interrupted by drain, checkpoint flushed",
				"job", j.id, "rows_done", len(rows))
		default:
			j.state, j.err = JobFailed, err
			mJobsFailed.Inc()
			slog.Warn("serve: study job failed", "job", j.id,
				"kind", guard.Kind(err), "err", err)
		}
	}()
}

// ckptPath places a job's checkpoint under JobsDir ("" disables
// persistence).
func (st *jobStore) ckptPath(id string) string {
	if st.s.cfg.JobsDir == "" {
		return ""
	}
	return filepath.Join(st.s.cfg.JobsDir, id+".ckpt.json")
}

// shutdown cancels every running job and waits (bounded by ctx) for the
// goroutines to unwind — which includes their checkpoint flushes.
func (st *jobStore) shutdown(ctx context.Context) error {
	st.mu.Lock()
	for _, j := range st.jobs {
		j.mu.Lock()
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	}
	st.mu.Unlock()
	finished := make(chan struct{})
	go func() {
		st.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: job drain incomplete: %w", guard.CtxErr(ctx))
	}
}

// ---- handlers -------------------------------------------------------------

func (s *Server) studySubmit(r *http.Request) (int, any, error) {
	var req StudyRequest
	if err := decodeBody(r, &req); err != nil {
		return 0, nil, err
	}
	spec, err := req.spec()
	if err != nil {
		return 0, nil, err
	}
	study, err := dse.NewStudy(r.Context(), spec)
	if err != nil {
		return 0, nil, err
	}
	hard := dse.Hardening{
		CandidateTimeout: time.Duration(req.CandidateTimeoutMS) * time.Millisecond,
		MaxRetries:       req.Retries,
		Workers:          s.cfg.Workers,
		// In coordinator mode, studies shard across the worker fleet;
		// whatever the fleet cannot resolve is evaluated in-process.
		Dispatch: s.cfg.Dispatch,
		// Study jobs read through the shared result store (nil = disabled).
		Results: s.cfg.Results,
	}
	if req.Workers > 0 {
		hard.Workers = req.Workers
	}
	j, _, err := s.jobs.submit(study, hard)
	if err != nil {
		return 0, nil, err
	}
	if !req.Wait {
		return http.StatusAccepted, j.status(), nil
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// The job keeps running server-side; the client just stopped
		// waiting. 504/499 per the deadline-vs-disconnect cause.
		return 0, nil, guard.CtxErr(r.Context())
	}
	status := j.status()
	if status.State == JobFailed {
		// Surface the job failure with its mapped HTTP status so a
		// synchronous caller sees exactly what an inline endpoint would
		// have returned.
		j.mu.Lock()
		err := j.err
		j.mu.Unlock()
		return 0, nil, err
	}
	return http.StatusOK, status, nil
}

func (s *Server) studyGet(r *http.Request) (int, any, error) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		return 0, nil, guard.Invalid("unknown job %q", id)
	}
	return http.StatusOK, j.status(), nil
}
