package serve

import (
	"context"
	"testing"
	"time"

	"neurometer/internal/fleet"
	"neurometer/internal/guard"
)

// coordinatorServer builds a serve.Server in coordinator mode backed by a
// real fleet.Coordinator (no heartbeats — tests drive membership directly).
func coordinatorServer(t *testing.T, workers ...string) (*Server, *fleet.Coordinator, string) {
	t.Helper()
	coord, err := fleet.New(fleet.Config{Workers: workers, Dynamic: len(workers) == 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	s, ts := newTestServer(t, Config{
		Dispatch:   coord.Dispatch,
		Membership: coord.Membership(),
	})
	return s, coord, ts.URL
}

func TestWorkerRegisterAndDrainEndpoints(t *testing.T) {
	_, coord, url := coordinatorServer(t, "http://seed:8080")

	// /readyz carries the membership summary in coordinator mode.
	status, _, body := doJSON(t, "GET", url+"/readyz", "")
	if status != 200 {
		t.Fatalf("readyz: %d", status)
	}
	fl, ok := body["fleet"].(map[string]any)
	if !ok {
		t.Fatalf("readyz has no fleet summary: %v", body)
	}
	if fl["workers_live"] != float64(1) {
		t.Fatalf("workers_live = %v, want 1", fl["workers_live"])
	}

	// A new worker registers: live, visible in /readyz.
	status, _, body = doJSON(t, "POST", url+"/v1/worker/register", `{"url":"http://joiner:8080"}`)
	if status != 200 || body["state"] != "live" {
		t.Fatalf("register: %d %v", status, body)
	}
	_, _, body = doJSON(t, "GET", url+"/readyz", "")
	if fl := body["fleet"].(map[string]any); fl["workers_live"] != float64(2) {
		t.Fatalf("workers_live after join = %v, want 2", fl["workers_live"])
	}

	// Drain moves it out of rotation; /readyz reflects the transition.
	status, _, body = doJSON(t, "POST", url+"/v1/worker/drain", `{"url":"http://joiner:8080"}`)
	if status != 200 || body["state"] != "draining" {
		t.Fatalf("drain: %d %v", status, body)
	}
	_, _, body = doJSON(t, "GET", url+"/readyz", "")
	fl = body["fleet"].(map[string]any)
	if fl["workers_live"] != float64(1) || fl["workers_draining"] != float64(1) {
		t.Fatalf("fleet summary after drain = %v, want 1 live 1 draining", fl)
	}
	if st := coord.Membership().States()["http://joiner:8080"]; st != fleet.StateDraining {
		t.Fatalf("membership state = %v, want draining", st)
	}

	// Draining an unknown worker is a 400 invalid-config.
	status, _, body = doJSON(t, "POST", url+"/v1/worker/drain", `{"url":"http://stranger:8080"}`)
	if status != 400 || body["kind"] != "invalid-config" {
		t.Fatalf("drain of unknown worker: %d %v, want 400 invalid-config", status, body)
	}
}

// TestMemberEndpointsRejectNonCoordinator: the endpoints are always mounted
// but a process without a membership table refuses them loudly.
func TestMemberEndpointsRejectNonCoordinator(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/worker/register", "/v1/worker/drain"} {
		status, _, body := doJSON(t, "POST", ts.URL+path, `{"url":"http://w:8080"}`)
		if status != 400 || body["kind"] != "invalid-config" {
			t.Fatalf("%s on non-coordinator: %d %v, want 400 invalid-config", path, status, body)
		}
	}
}

// TestRegisterFaultSite: an armed fleet.register fault fails the endpoint
// without touching the membership table.
func TestRegisterFaultSite(t *testing.T) {
	_, coord, url := coordinatorServer(t, "http://seed:8080")
	guard.Arm("fleet.register", guard.Fault{Err: guard.Unavailable("injected register fault"), Count: 1})
	defer guard.DisarmAll()

	status, _, body := doJSON(t, "POST", url+"/v1/worker/register", `{"url":"http://joiner:8080"}`)
	if status != 503 {
		t.Fatalf("register under injected fault: %d %v, want 503", status, body)
	}
	if _, known := coord.Membership().States()["http://joiner:8080"]; known {
		t.Fatal("failed registration must not touch the membership table")
	}
	// The fault is spent; the retry succeeds.
	status, _, _ = doJSON(t, "POST", url+"/v1/worker/register", `{"url":"http://joiner:8080"}`)
	if status != 200 {
		t.Fatalf("register after fault cleared: %d", status)
	}
}

// TestJoinLoopRegistersAndShutdownDrains: a worker configured with
// Join/Advertise announces itself to the coordinator at startup, and its
// Shutdown announces drain before the listener closes.
func TestJoinLoopRegistersAndShutdownDrains(t *testing.T) {
	_, coord, coordURL := coordinatorServer(t)

	worker := New(Config{
		Join:         coordURL,
		Advertise:    "http://worker-1:8080",
		JoinInterval: 20 * time.Millisecond,
	})

	// The zero State is live, so a bare map lookup cannot distinguish
	// "registered" from "unknown" — require the key to exist.
	waitLive := func(why string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			st, known := coord.Membership().States()["http://worker-1:8080"]
			if known && st == fleet.StateLive {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s; states = %v", why, coord.Membership().States())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitLive("worker never registered")

	// Drain-and-readmit: the periodic re-registration heals the drain.
	if _, err := coord.Membership().Drain(context.Background(), "http://worker-1:8080"); err != nil {
		t.Fatal(err)
	}
	waitLive("worker never readmitted by re-registration")

	// Shutdown announces drain to the coordinator.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := worker.Shutdown(ctx); err != nil {
		t.Fatalf("worker shutdown: %v", err)
	}
	if st := coord.Membership().States()["http://worker-1:8080"]; st != fleet.StateDraining {
		t.Fatalf("worker state after shutdown = %v, want draining", st)
	}
	// And the drain is final: the stopped join loop cannot re-register.
	time.Sleep(60 * time.Millisecond)
	if st := coord.Membership().States()["http://worker-1:8080"]; st != fleet.StateDraining {
		t.Fatalf("worker state %v after shutdown settled, want draining (no late re-registration)", st)
	}
}
