package serve

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// The simulate-batch wire contract: one prepared workload across many
// candidate configs, per-candidate failures isolated inside a 200, and every
// successful entry identical to what the single-candidate endpoint returns
// for the same config.

func TestSimulateBatchMatchesSingleEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, _, batch := doJSON(t, "POST", ts.URL+"/v1/perfsim/simulate-batch",
		`{"workload":"resnet50","batch":8,"configs":[{"preset":"tpuv1"},{"preset":"tpuv2"},{"preset":"eyeriss"}]}`)
	if status != 200 {
		t.Fatalf("simulate-batch: %d %v", status, batch)
	}
	if failed, _ := batch["failed"].(float64); failed != 0 {
		t.Fatalf("failed = %v, want 0", batch["failed"])
	}
	entries, _ := batch["results"].([]any)
	if len(entries) != 3 {
		t.Fatalf("got %d results, want 3", len(entries))
	}
	for i, preset := range []string{"tpuv1", "tpuv2", "eyeriss"} {
		status, _, single := doJSON(t, "POST", ts.URL+"/v1/perfsim/simulate",
			`{"preset":"`+preset+`","workload":"resnet50","batch":8}`)
		if status != 200 {
			t.Fatalf("simulate %s: %d %v", preset, status, single)
		}
		entry, _ := entries[i].(map[string]any)
		got, _ := entry["result"].(map[string]any)
		if !reflect.DeepEqual(got, single) {
			t.Errorf("batch entry %d (%s) differs from single-candidate response:\nbatch:  %v\nsingle: %v",
				i, preset, got, single)
		}
	}
}

func TestSimulateBatchIsolatesCandidateFailures(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, _, body := doJSON(t, "POST", ts.URL+"/v1/perfsim/simulate-batch",
		`{"workload":"alexnet","batch":4,"configs":[{"preset":"tpuv1"},{"preset":"no-such-chip"},{"preset":"tpuv2"}]}`)
	if status != 200 {
		t.Fatalf("mixed batch must still be 200: %d %v", status, body)
	}
	if failed, _ := body["failed"].(float64); failed != 1 {
		t.Fatalf("failed = %v, want 1", body["failed"])
	}
	entries, _ := body["results"].([]any)
	if len(entries) != 3 {
		t.Fatalf("got %d results, want 3", len(entries))
	}
	bad, _ := entries[1].(map[string]any)
	if bad["kind"] != "invalid-config" || bad["result"] != nil {
		t.Fatalf("failed entry = %v, want kind=invalid-config and no result", bad)
	}
	for _, i := range []int{0, 2} {
		entry, _ := entries[i].(map[string]any)
		res, _ := entry["result"].(map[string]any)
		if fps, _ := res["fps"].(float64); fps <= 0 {
			t.Fatalf("entry %d fps = %v, want > 0 (neighbor of a failed candidate)", i, entry)
		}
	}
}

func TestSimulateBatchRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	for name, body := range map[string]string{
		"no configs":       `{"workload":"alexnet","batch":4,"configs":[]}`,
		"unknown workload": `{"workload":"gpt7","batch":4,"configs":[{"preset":"tpuv1"}]}`,
	} {
		status, _, resp := doJSON(t, "POST", ts.URL+"/v1/perfsim/simulate-batch", body)
		if status != 400 || resp["kind"] != "invalid-config" {
			t.Errorf("%s: %d %v, want 400 invalid-config", name, status, resp)
		}
	}

	// One config past the documented bound.
	cfgs := make([]string, maxBatchConfigs+1)
	for i := range cfgs {
		cfgs[i] = `{"preset":"tpuv1"}`
	}
	over := `{"workload":"alexnet","batch":4,"configs":[` + strings.Join(cfgs, ",") + `]}`
	if !json.Valid([]byte(over)) {
		t.Fatal("test body is not valid JSON")
	}
	status, _, resp := doJSON(t, "POST", ts.URL+"/v1/perfsim/simulate-batch", over)
	if status != 400 || resp["kind"] != "invalid-config" {
		t.Fatalf("oversized config list: %d %v, want 400 invalid-config", status, resp)
	}
}
