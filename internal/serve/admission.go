package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

// ErrShed marks a request rejected by admission control: the waiting room
// was full, no execution slot freed up within the admission deadline, or
// the evaluation pool was past its load watermark. The middleware maps it
// to 429 Too Many Requests with a Retry-After header — shedding is the
// designed response to overload, not a server failure, so it neither feeds
// the watchdog nor counts as a 5xx.
var ErrShed = errors.New("overloaded")

// evalInflight is the dse worker pool's in-flight gauge, shared through the
// obs default registry. Cost-aware shedding reads it: when heavy study work
// saturates the evaluation pool, cheap interactive requests are turned away
// early instead of piling onto a machine that cannot serve them.
var evalInflight = obs.NewGauge("dse.eval_inflight")

// limiter is one endpoint's admission controller: at most cap(slots)
// requests executing, at most cap(queue) more waiting, everyone else shed
// immediately. A waiter that does not get a slot within admissionTimeout is
// shed too — bounded queueing in space AND time.
type limiter struct {
	endpoint         string
	slots            chan struct{}
	queue            chan struct{}
	admissionTimeout time.Duration
	// watermark sheds before queueing when evalInflight meets it (0 = off).
	watermark float64
}

func newLimiter(endpoint string, maxInflight, queueDepth int, admissionTimeout time.Duration, watermark float64) *limiter {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &limiter{
		endpoint:         endpoint,
		slots:            make(chan struct{}, maxInflight),
		queue:            make(chan struct{}, maxInflight+queueDepth),
		admissionTimeout: admissionTimeout,
		watermark:        watermark,
	}
}

// acquire admits the request or returns ErrShed (or the classified context
// error when the client gave up while waiting). On success the returned
// release func must be called exactly once when the request finishes.
func (l *limiter) acquire(ctx context.Context) (release func(), err error) {
	if l.watermark > 0 && evalInflight.Value() >= l.watermark {
		return nil, fmt.Errorf("%w: %s: evaluation pool past watermark (%.0f in flight)",
			ErrShed, l.endpoint, evalInflight.Value())
	}
	// The waiting room bounds slot-holders plus waiters, so a ticket is
	// held until the request releases its slot.
	select {
	case l.queue <- struct{}{}:
	default:
		return nil, fmt.Errorf("%w: %s: admission queue full", ErrShed, l.endpoint)
	}
	timer := time.NewTimer(l.admissionTimeout)
	defer timer.Stop()
	select {
	case l.slots <- struct{}{}:
		return func() {
			<-l.slots
			<-l.queue
		}, nil
	case <-timer.C:
		<-l.queue
		return nil, fmt.Errorf("%w: %s: no slot within admission deadline %s",
			ErrShed, l.endpoint, l.admissionTimeout)
	case <-ctx.Done():
		<-l.queue
		return nil, guard.CtxErr(ctx)
	}
}
