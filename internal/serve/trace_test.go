package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"neurometer/internal/dse"
	"neurometer/internal/fleet"
	"neurometer/internal/guard"
	"neurometer/internal/obs"
)

// dispatchTraced runs one traced coordinator dispatch of sh across the
// given fleet config and returns the coordinator tracer's merged spans.
func dispatchTraced(t *testing.T, cfg fleet.Config, sh dse.Shard) ([]obs.WireSpan, []dse.ShardOutcome) {
	t.Helper()
	tr := obs.StartTracing()
	defer obs.StopTracing()

	coord, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, study := obs.Start(context.Background(), "study")
	var mu sync.Mutex
	var outs []dse.ShardOutcome
	coord.Dispatch(ctx, sh, func(o dse.ShardOutcome) {
		mu.Lock()
		outs = append(outs, o)
		mu.Unlock()
	})
	study.End()

	// The merged tracer must always export a loadable Chrome trace.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("merged trace is not valid JSON")
	}
	return tr.WireSpans(), outs
}

// TestMergedTraceFromTwoWorkers is the golden trace-merge test: a traced
// coordinator dispatch across two in-process workers produces ONE span tree
// in which each worker's serialized subtree (worker.eval and its per-
// candidate dse.candidate spans) is re-parented under the owning fleet.eval
// span, which nests under fleet.shard under fleet.dispatch.
func TestMergedTraceFromTwoWorkers(t *testing.T) {
	_, w1 := newTestServer(t, Config{})
	_, w2 := newTestServer(t, Config{})
	sh := tinyShard(t) // 2 candidates; ShardSize 1 → one shard per worker

	spans, outs := dispatchTraced(t, fleet.Config{
		Workers:    []string{w1.URL, w2.URL},
		ShardSize:  1,
		HedgeAfter: -1,
	}, sh)
	if len(outs) != 2 {
		t.Fatalf("dispatch reported %d outcomes, want 2", len(outs))
	}

	byID := map[uint64]obs.WireSpan{}
	count := map[string]int{}
	for _, ws := range spans {
		byID[ws.ID] = ws
		count[ws.Name]++
	}
	// Both workers' subtrees arrived: one worker.eval per shard, each with
	// one dse.candidate, under 2 fleet.eval / 2 fleet.shard spans.
	for name, want := range map[string]int{
		"fleet.dispatch": 1, "fleet.shard": 2, "fleet.eval": 2,
		"worker.eval": 2, "dse.candidate": 2,
	} {
		if count[name] != want {
			t.Errorf("span %q appears %d times, want %d (all: %v)", name, count[name], want, count)
		}
	}
	// Parent chain: every dse.candidate → worker.eval → fleet.eval →
	// fleet.shard → fleet.dispatch → study, and the path mirrors it.
	wantChain := []string{"worker.eval", "fleet.eval", "fleet.shard", "fleet.dispatch", "study"}
	for _, ws := range spans {
		if ws.Name != "dse.candidate" {
			continue
		}
		if want := "study/fleet.dispatch/fleet.shard/fleet.eval/worker.eval/dse.candidate"; ws.Path != want {
			t.Errorf("dse.candidate path = %q, want %q", ws.Path, want)
		}
		cur := ws
		for _, wantName := range wantChain {
			parent, ok := byID[cur.Parent]
			if !ok {
				t.Fatalf("span %q has dangling parent %d", cur.Path, cur.Parent)
			}
			if parent.Name != wantName {
				t.Fatalf("span %q parent = %q, want %q", cur.Path, parent.Name, wantName)
			}
			cur = parent
		}
	}
	// The two fleet.eval spans targeted distinct workers.
	workers := map[string]bool{}
	for _, ws := range spans {
		if ws.Name != "fleet.eval" {
			continue
		}
		for _, a := range ws.Attrs {
			if a.K == "worker" {
				workers[a.V.(string)] = true
			}
		}
	}
	if len(workers) != 2 {
		t.Errorf("fleet.eval spans name %d distinct workers, want 2: %v", len(workers), workers)
	}
	// Containment: every grafted worker span lies inside its parent's
	// interval (the re-based timestamps are what Perfetto nests by).
	for _, ws := range spans {
		parent, ok := byID[ws.Parent]
		if !ok {
			continue
		}
		if ws.StartNS < parent.StartNS || ws.StartNS+ws.DurNS > parent.StartNS+parent.DurNS {
			t.Errorf("span %q [%d,+%d] escapes parent %q [%d,+%d]",
				ws.Path, ws.StartNS, ws.DurNS, parent.Path, parent.StartNS, parent.DurNS)
		}
	}
}

// TestRetryAndBreakerInstantEvents: a dead worker first in rotation forces
// a retry, which must appear as an instant event under the fleet.shard
// span; enough consecutive failures also trip that worker's breaker open,
// which must appear as a breaker-open instant event.
func TestRetryAndBreakerInstantEvents(t *testing.T) {
	_, w2 := newTestServer(t, Config{})
	sh := tinyShard(t)

	spans, outs := dispatchTraced(t, fleet.Config{
		// Round-robin starts at index 0: the dead worker takes the first
		// attempt deterministically.
		Workers:          []string{"http://127.0.0.1:1", w2.URL},
		ShardSize:        len(sh.Cands), // one shard → one deterministic retry chain
		HedgeAfter:       -1,
		MaxAttempts:      3,
		BreakerThreshold: 1,
		Backoff:          guard.Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond},
	}, sh)
	if len(outs) != len(sh.Cands) {
		t.Fatalf("dispatch reported %d outcomes, want %d", len(outs), len(sh.Cands))
	}

	var sawRetry, sawBreaker bool
	for _, ws := range spans {
		if !ws.Instant {
			continue
		}
		switch ws.Name {
		case "fleet.retry":
			sawRetry = true
			if want := "study/fleet.dispatch/fleet.shard/fleet.retry"; ws.Path != want {
				t.Errorf("fleet.retry path = %q, want %q", ws.Path, want)
			}
		case "fleet.breaker.open":
			sawBreaker = true
		}
	}
	if !sawRetry {
		t.Error("no fleet.retry instant event in trace")
	}
	if !sawBreaker {
		t.Error("no fleet.breaker.open instant event in trace")
	}
}

// TestHedgeInstantEvent: a primary that hangs past HedgeAfter triggers a
// hedged attempt on the other worker, recorded as a fleet.hedge instant
// event, and the hedge's result resolves the shard.
func TestHedgeInstantEvent(t *testing.T) {
	_, w2 := newTestServer(t, Config{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		// Far past HedgeAfter: the hedge fires and wins long before this
		// resolves, whichever order the results then land in.
		time.Sleep(400 * time.Millisecond)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer slow.Close()
	sh := tinyShard(t)

	spans, outs := dispatchTraced(t, fleet.Config{
		Workers:     []string{slow.URL, w2.URL},
		ShardSize:   len(sh.Cands),
		HedgeAfter:  30 * time.Millisecond,
		MaxAttempts: 2,
	}, sh)
	if len(outs) != len(sh.Cands) {
		t.Fatalf("dispatch reported %d outcomes, want %d", len(outs), len(sh.Cands))
	}
	found := false
	for _, ws := range spans {
		if ws.Instant && ws.Name == "fleet.hedge" {
			found = true
			if !strings.HasSuffix(ws.Path, "fleet.shard/fleet.hedge") {
				t.Errorf("fleet.hedge path = %q", ws.Path)
			}
		}
	}
	if !found {
		t.Error("no fleet.hedge instant event in trace")
	}
}

// TestWorkerEvalSpansOnlyWithTraceparent: the worker endpoint returns a
// span subtree exactly when the request carries a traceparent — an untraced
// caller gets the PR-5 response shape, byte-identical.
func TestWorkerEvalSpansOnlyWithTraceparent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	sh := tinyShard(t)
	body, err := json.Marshal(sh)
	if err != nil {
		t.Fatal(err)
	}

	post := func(traceparent string) dse.ShardResult {
		t.Helper()
		req, err := http.NewRequest("POST", ts.URL+"/v1/worker/eval", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if traceparent != "" {
			req.Header.Set(obs.TraceparentHeader, traceparent)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("worker eval: status %d", resp.StatusCode)
		}
		var res dse.ShardResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return res
	}

	if res := post(""); len(res.Spans) != 0 {
		t.Fatalf("untraced request returned %d spans, want 0", len(res.Spans))
	}
	traced := post("00-" + strings.Repeat("ab", 16) + "-00000000000000aa-01")
	if len(traced.Spans) == 0 {
		t.Fatal("traced request returned no spans")
	}
	var root *obs.WireSpan
	cands := 0
	for i, ws := range traced.Spans {
		switch ws.Name {
		case "worker.eval":
			root = &traced.Spans[i]
		case "dse.candidate":
			cands++
		}
	}
	if root == nil || root.Parent != 0 {
		t.Fatalf("traced response missing worker.eval subtree root: %+v", traced.Spans)
	}
	if cands != len(sh.Cands) {
		t.Fatalf("traced response has %d dse.candidate spans, want %d", cands, len(sh.Cands))
	}
}
