package serve

import (
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"neurometer/internal/guard"
)

// TestLoadShedding saturates a one-slot build endpoint with an injected
// delay and asserts the overload contract: excess requests get 429 with a
// Retry-After header, within (roughly) the admission deadline rather than
// hanging, and serve.shed_total counts every shed.
func TestLoadShedding(t *testing.T) {
	defer guard.DisarmAll()
	_, ts := newTestServer(t, Config{
		BuildLimit:       1,
		QueueDepth:       0,
		AdmissionTimeout: 100 * time.Millisecond,
	})

	// Hold the single build slot for half a second. chip.build injects with
	// a nil ctx, so the delay runs to completion regardless of deadlines.
	hold := 500 * time.Millisecond
	guard.Arm("chip.build", guard.Fault{Delay: hold, Count: 1})

	start := time.Now()
	const extra = 4
	var wg sync.WaitGroup
	statuses := make([]int, 1+extra)
	retryAfter := make([]string, 1+extra)
	for i := range statuses {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i > 0 {
				// Let the slow request claim the slot first.
				time.Sleep(50 * time.Millisecond)
			}
			resp, err := http.Post(ts.URL+"/v1/chip/build", "application/json",
				strings.NewReader(`{"preset":"tpuv1"}`))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	shed := 0
	for i, st := range statuses {
		switch st {
		case 200:
		case 429:
			shed++
			if retryAfter[i] == "" {
				t.Errorf("request %d: 429 without Retry-After", i)
			}
		default:
			t.Errorf("request %d: unexpected status %d", i, st)
		}
	}
	if shed == 0 {
		t.Fatal("no request was shed despite a saturated slot")
	}
	// The waiting room (slots+queue = 1) was full while the slow build held
	// its ticket, so sheds were immediate — well before the slot freed.
	if elapsed := time.Since(start); elapsed > hold+2*time.Second {
		t.Fatalf("shedding took %v — requests hung instead of shedding", elapsed)
	}
	if mShed.Value() == 0 {
		t.Fatal("serve.shed_total did not count the sheds")
	}
}

// TestWatermarkShedding pushes the shared dse.eval_inflight gauge past the
// configured watermark and checks that interactive endpoints turn work away
// while heavy study evaluation saturates the pool.
func TestWatermarkShedding(t *testing.T) {
	_, ts := newTestServer(t, Config{ShedWatermark: 2})

	evalInflight.Add(2) // as if two study candidates were evaluating
	status, hdr, body := doJSON(t, "POST", ts.URL+"/v1/chip/build", `{"preset":"tpuv1"}`)
	evalInflight.Add(-2)
	if status != 429 {
		t.Fatalf("status = %d (%v), want 429", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	if status, _, _ := doJSON(t, "POST", ts.URL+"/v1/chip/build", `{"preset":"tpuv1"}`); status != 200 {
		t.Fatalf("below watermark: status = %d, want 200", status)
	}
}

// TestWatchdogDegradesAndRecovers drives consecutive 5xx failures through
// the middleware and watches /readyz flip to 503 degraded, then back to 200
// after a success.
func TestWatchdogDegradesAndRecovers(t *testing.T) {
	defer guard.DisarmAll()
	_, ts := newTestServer(t, Config{DegradedAfter: 2})

	disarm := guard.Arm("chip.build", guard.Fault{Err: guard.NonFinite("peak_tops", 0)})
	for i := 0; i < 2; i++ {
		if status, _, _ := doJSON(t, "POST", ts.URL+"/v1/chip/build", `{"preset":"tpuv1"}`); status != 500 {
			t.Fatalf("faulted build %d: status %d, want 500", i, status)
		}
	}
	status, _, body := doJSON(t, "GET", ts.URL+"/readyz", "")
	if status != 503 || body["ready"] != false {
		t.Fatalf("readyz after consecutive failures: %d %v, want 503 degraded", status, body)
	}
	if reason, _ := body["reason"].(string); !strings.Contains(reason, "degraded") {
		t.Fatalf("readyz reason = %q, want degraded", body["reason"])
	}

	// Liveness is unaffected: the process can still recover on its own.
	if status, _, _ := doJSON(t, "GET", ts.URL+"/healthz", ""); status != 200 {
		t.Fatal("healthz went down with the watchdog — degraded must not mean dead")
	}

	disarm()
	if status, _, _ := doJSON(t, "POST", ts.URL+"/v1/chip/build", `{"preset":"tpuv1"}`); status != 200 {
		t.Fatal("build did not recover after disarm")
	}
	status, _, body = doJSON(t, "GET", ts.URL+"/readyz", "")
	if status != 200 || body["ready"] != true {
		t.Fatalf("readyz after recovery: %d %v, want 200 ready", status, body)
	}
}

// TestShedDoesNotTripWatchdog: 429s are the designed overload response, not
// failures — a shed storm must not mark the instance degraded.
func TestShedDoesNotTripWatchdog(t *testing.T) {
	s, ts := newTestServer(t, Config{ShedWatermark: 1, DegradedAfter: 2})
	evalInflight.Add(1)
	defer evalInflight.Add(-1)
	for i := 0; i < 5; i++ {
		if status, _, _ := doJSON(t, "POST", ts.URL+"/v1/chip/build", `{"preset":"tpuv1"}`); status != 429 {
			t.Fatalf("status %d, want 429", status)
		}
	}
	if s.wd.isDegraded() {
		t.Fatal("shedding tripped the watchdog")
	}
}
