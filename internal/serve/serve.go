package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"time"

	"neurometer/internal/apicfg"
	"neurometer/internal/chip"
	"neurometer/internal/dse"
	"neurometer/internal/fleet"
	"neurometer/internal/guard"
	"neurometer/internal/obs"
	"neurometer/internal/perfsim"
	"neurometer/internal/rstore"
	"neurometer/internal/workloads"
)

// Config sizes the server's robustness envelope. The zero value of any
// field falls back to the DefaultConfig value.
type Config struct {
	// BuildLimit / SimulateLimit bound concurrent executions per endpoint;
	// StudyLimit bounds concurrently *running* study jobs; WorkerLimit
	// bounds concurrent fleet shard evaluations (/v1/worker/eval).
	BuildLimit    int
	SimulateLimit int
	StudyLimit    int
	WorkerLimit   int
	// QueueDepth bounds how many admitted requests may wait for a slot per
	// endpoint; beyond it requests shed immediately.
	QueueDepth int
	// MaxQueuedJobs bounds submitted-but-not-running study jobs.
	MaxQueuedJobs int
	// AdmissionTimeout bounds how long a queued request waits for a slot.
	AdmissionTimeout time.Duration
	// RequestTimeout is the default per-request deadline (tightened per
	// request with ?timeout_ms=).
	RequestTimeout time.Duration
	// ShedWatermark sheds build/simulate requests while dse.eval_inflight
	// is at or above it (0 disables cost-aware shedding).
	ShedWatermark float64
	// DegradedAfter consecutive 5xx responses trip /readyz degraded
	// (0 falls back to the default; negative disables the watchdog).
	DegradedAfter int
	// Workers is the dse evaluation pool size for study jobs.
	Workers int
	// JobsDir holds study-job checkpoints; empty disables job persistence
	// (jobs still run, but do not survive a restart).
	JobsDir string
	// MaxBodyBytes bounds request bodies; an overflowing body is rejected
	// with 413 and kind=too-large.
	MaxBodyBytes int64
	// RetryAfterJitter widens the Retry-After hint on 429 responses by a
	// uniform 0..RetryAfterJitter seconds, de-synchronizing shed clients
	// that would otherwise all retry on the same tick. Negative disables.
	RetryAfterJitter int
	// Results, when non-nil, is the persistent content-addressed result
	// store shared by this process: study jobs read through it
	// (dse.Hardening.Results) and /v1/worker/eval consults it before
	// evaluating shard candidates, so a worker that already knows an
	// answer serves it from disk. nil disables result caching; store
	// faults degrade to evaluation and never fail a request.
	Results *rstore.Cache
	// Dispatch, when non-nil, is installed as dse.Hardening.Dispatch for
	// study jobs — typically fleet.Coordinator.Dispatch, making this
	// process the coordinator of a worker fleet. Candidates the dispatcher
	// cannot resolve are evaluated in-process.
	Dispatch func(ctx context.Context, sh dse.Shard, report func(dse.ShardOutcome))
	// Membership, when non-nil, makes this process a fleet coordinator:
	// POST /v1/worker/register and /v1/worker/drain feed this table, and
	// /readyz carries its per-state worker counts. Typically
	// fleet.Coordinator.Membership() alongside Dispatch.
	Membership *fleet.Membership
	// Join, when non-empty, makes this process a fleet worker that
	// announces itself to the coordinator at this base URL: it registers at
	// startup, re-registers every JoinInterval (self-healing a suspicion or
	// eviction), and announces drain on Shutdown before the listener
	// closes. Requires Advertise — the URL the coordinator should dispatch
	// to for this worker.
	Join         string
	Advertise    string
	JoinInterval time.Duration
	// AccessLog, when non-nil, receives one structured line per request on
	// the model endpoints (request id, route, status, disposition, latency,
	// slow flag). nil disables access logging.
	AccessLog *slog.Logger
	// SlowRequest is the latency at or above which an access-log line is
	// flagged slow=true (0 falls back to the default; negative disables).
	SlowRequest time.Duration
}

// DefaultConfig returns the production defaults.
func DefaultConfig() Config {
	return Config{
		BuildLimit:       8,
		SimulateLimit:    4,
		StudyLimit:       1,
		WorkerLimit:      2,
		RetryAfterJitter: 3,
		QueueDepth:       16,
		MaxQueuedJobs:    8,
		AdmissionTimeout: time.Second,
		RequestTimeout:   30 * time.Second,
		DegradedAfter:    5,
		Workers:          dse.DefaultWorkers,
		MaxBodyBytes:     1 << 20,
		SlowRequest:      time.Second,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.BuildLimit == 0 {
		c.BuildLimit = d.BuildLimit
	}
	if c.SimulateLimit == 0 {
		c.SimulateLimit = d.SimulateLimit
	}
	if c.StudyLimit == 0 {
		c.StudyLimit = d.StudyLimit
	}
	if c.WorkerLimit == 0 {
		c.WorkerLimit = d.WorkerLimit
	}
	if c.RetryAfterJitter == 0 {
		c.RetryAfterJitter = d.RetryAfterJitter
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.MaxQueuedJobs == 0 {
		c.MaxQueuedJobs = d.MaxQueuedJobs
	}
	if c.AdmissionTimeout == 0 {
		c.AdmissionTimeout = d.AdmissionTimeout
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = d.RequestTimeout
	}
	if c.DegradedAfter == 0 {
		c.DegradedAfter = d.DegradedAfter
	}
	if c.Workers == 0 {
		c.Workers = d.Workers
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = d.MaxBodyBytes
	}
	if c.SlowRequest == 0 {
		c.SlowRequest = d.SlowRequest
	}
	return c
}

// Server is the neurometerd HTTP service. Create with New, mount Handler
// (or ListenAndServe), and always Shutdown — it owns running study jobs.
type Server struct {
	cfg  Config
	mux  *http.ServeMux
	http *http.Server
	wd   *watchdog
	jobs *jobStore

	limBuild  *limiter
	limSim    *limiter
	limWorker *limiter
	accessLog *slog.Logger

	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   chan struct{} // closed when Shutdown begins
	stopOnce   sync.Once
	stopErr    error

	joinCancel context.CancelFunc // non-nil when the join loop is running
	joinDone   chan struct{}
}

// New builds a server from the config (zero fields take defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	obs.RegisterBuildInfo() // the build_info gauge is visible on /metricz
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		wd:         &watchdog{threshold: int64(cfg.DegradedAfter)},
		limBuild:   newLimiter("chip.build", cfg.BuildLimit, cfg.QueueDepth, cfg.AdmissionTimeout, cfg.ShedWatermark),
		limSim:     newLimiter("perfsim.simulate", cfg.SimulateLimit, cfg.QueueDepth, cfg.AdmissionTimeout, cfg.ShedWatermark),
		limWorker:  newLimiter("fleet.shard", cfg.WorkerLimit, cfg.QueueDepth, cfg.AdmissionTimeout, 0),
		accessLog:  cfg.AccessLog,
		baseCtx:    ctx,
		baseCancel: cancel,
		draining:   make(chan struct{}),
	}
	s.jobs = newJobStore(s)
	// Constructed here, not in Serve, so Shutdown never races the Serve
	// goroutine's first instructions.
	s.http = &http.Server{Handler: s.mux}

	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /readyz", s.readyz)
	s.mux.HandleFunc("GET /metricz", s.metricz)
	s.mux.Handle("POST /v1/chip/build", s.handle("chip.build", s.limBuild, s.buildHandler))
	s.mux.Handle("POST /v1/perfsim/simulate", s.handle("perfsim.simulate", s.limSim, s.simulateHandler))
	s.mux.Handle("POST /v1/perfsim/simulate-batch", s.handle("perfsim.simulate_batch", s.limSim, s.simulateBatchHandler))
	s.mux.Handle("POST /v1/dse/study", s.handle("dse.study", nil, s.studySubmit))
	s.mux.Handle("GET /v1/dse/study/{id}", s.handle("dse.study.get", nil, s.studyGet))
	s.mux.Handle("POST /v1/worker/eval", s.handle("worker.eval", s.limWorker, s.workerEval))
	s.mux.Handle("POST /v1/worker/register", s.handle("worker.register", s.limWorker, s.workerRegister))
	s.mux.Handle("POST /v1/worker/drain", s.handle("worker.drain", s.limWorker, s.workerDrain))
	if cfg.Join != "" && cfg.Advertise != "" {
		jctx, jcancel := context.WithCancel(context.Background())
		s.joinCancel = jcancel
		s.joinDone = make(chan struct{})
		go s.joinLoop(jctx)
	}
	return s
}

// Handler exposes the routed middleware stack (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.http.Serve(l)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown drains the server in the documented order: close the listener,
// drain in-flight connections within the ctx deadline, cancel running
// study jobs and wait for their checkpoint flushes, then log the final
// metrics snapshot. Idempotent (a SIGTERM/SIGINT double-fire drains once);
// afterwards /readyz reports 503 until the process exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopOnce.Do(func() {
		close(s.draining)
		// Fleet worker: stop the join loop first (a late re-registration
		// must not undo the drain), then announce drain to the coordinator
		// while the listener is still open — leased shards finish and
		// report, new dispatch goes elsewhere.
		if s.joinCancel != nil {
			s.joinCancel()
			<-s.joinDone
		}
		s.announceDrain(ctx)
		httpErr := s.http.Shutdown(ctx) // listener close + connection drain
		jobsErr := s.jobs.shutdown(ctx) // cancel studies, wait for flushes
		s.baseCancel()
		snap := obs.Default().Snapshot()
		slog.Info("serve: final metrics snapshot",
			"requests", snap.Counters["serve.requests_total"],
			"shed", snap.Counters["serve.shed_total"],
			"responses_5xx", snap.Counters["serve.responses_5xx"],
			"jobs_submitted", snap.Counters["serve.jobs_submitted"])
		s.stopErr = httpErr
		if s.stopErr == nil {
			s.stopErr = jobsErr
		}
	})
	return s.stopErr
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// ---- health & metrics -----------------------------------------------------

func (s *Server) healthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// readyzBody is the /readyz wire format.
type readyzBody struct {
	Ready               bool   `json:"ready"`
	Reason              string `json:"reason,omitempty"`
	ConsecutiveFailures int64  `json:"consecutive_failures"`
	RunningJobs         int    `json:"running_jobs"`
	// Fleet is the coordinator's membership summary (coordinator mode
	// only): per-state worker counts, so load balancers and the CI chaos
	// jobs can gate on fleet health without scraping metrics.
	Fleet *fleet.MemberCounts `json:"fleet,omitempty"`
}

func (s *Server) readyz(w http.ResponseWriter, _ *http.Request) {
	body := readyzBody{
		Ready:               true,
		ConsecutiveFailures: s.wd.consecutive.Load(),
		RunningJobs:         s.jobs.running(),
	}
	if s.cfg.Membership != nil {
		c := s.cfg.Membership.Counts()
		body.Fleet = &c
	}
	switch {
	case s.isDraining():
		body.Ready, body.Reason = false, "draining"
	case s.wd.isDegraded():
		body.Ready, body.Reason = false, "degraded: consecutive request failures"
	}
	status := http.StatusOK
	if !body.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

// metricz serves the registry snapshot: human-readable text by default,
// ?format=json for the structured form, ?format=prom for the Prometheus
// text exposition format a scraper consumes. All three renderings are
// deterministically ordered, so CI can diff consecutive scrapes.
func (s *Server) metricz(w http.ResponseWriter, r *http.Request) {
	obs.UpdateRuntimeMetrics()
	snap := obs.Default().Snapshot()
	switch r.URL.Query().Get("format") {
	case "json":
		writeJSON(w, http.StatusOK, snap)
	case "prom":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(snap.Prometheus())
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, snap.Text())
	}
}

// ---- /v1/chip/build -------------------------------------------------------

// ChipRequest selects a chip: a bundled preset or an inline apicfg JSON
// description (exactly one).
type ChipRequest struct {
	Preset string          `json:"preset,omitempty"`
	Config json.RawMessage `json:"config,omitempty"`
}

func (cr ChipRequest) resolve() (*chip.Chip, error) {
	cfg, err := apicfg.Resolve(cr.Preset, cr.Config)
	if err != nil {
		return nil, err
	}
	return chip.BuildCached(cfg)
}

func (s *Server) buildHandler(r *http.Request) (int, any, error) {
	var req ChipRequest
	if err := decodeBody(r, &req); err != nil {
		return 0, nil, err
	}
	if err := guard.CtxErr(r.Context()); err != nil {
		return 0, nil, err
	}
	c, err := req.resolve()
	if err != nil {
		return 0, nil, err
	}
	return http.StatusOK, c.JSONReport(), nil
}

// ---- /v1/perfsim/simulate -------------------------------------------------

// SimulateRequest runs one workload at one batch size on a chip.
type SimulateRequest struct {
	ChipRequest
	Workload string           `json:"workload"`
	Batch    int              `json:"batch"`
	Options  *perfsim.Options `json:"options,omitempty"` // nil = all optimizations on
}

// SimulateResponse is the runtime summary (mirrors the cmd/neurometer
// -workload output).
type SimulateResponse struct {
	Chip         string  `json:"chip"`
	Workload     string  `json:"workload"`
	Batch        int     `json:"batch"`
	FPS          float64 `json:"fps"`
	LatencyMS    float64 `json:"latency_ms"`
	AchievedTOPS float64 `json:"achieved_tops"`
	Utilization  float64 `json:"utilization"`
	PowerW       float64 `json:"power_w"`
	TOPSPerWatt  float64 `json:"tops_per_watt"`
	TOPSPerTCO   float64 `json:"tops_per_tco"`
}

func (s *Server) simulateHandler(r *http.Request) (int, any, error) {
	var req SimulateRequest
	if err := decodeBody(r, &req); err != nil {
		return 0, nil, err
	}
	g, err := workloads.ByName(req.Workload)
	if err != nil {
		return 0, nil, guard.Invalid("%v", err)
	}
	c, err := req.resolve()
	if err != nil {
		return 0, nil, err
	}
	opt := perfsim.DefaultOptions()
	if req.Options != nil {
		opt = *req.Options
	}
	batch := req.Batch
	if batch == 0 {
		batch = 1
	}
	res, err := perfsim.SimulateCtx(r.Context(), c, g, batch, opt)
	if err != nil {
		return 0, nil, err
	}
	e := c.Efficiency(res.AchievedTOPS*1e12, res.Activity)
	return http.StatusOK, SimulateResponse{
		Chip:         c.Cfg.Name,
		Workload:     g.Name,
		Batch:        batch,
		FPS:          res.FPS,
		LatencyMS:    res.LatencySec * 1e3,
		AchievedTOPS: res.AchievedTOPS,
		Utilization:  res.Utilization,
		PowerW:       e.PowerW,
		TOPSPerWatt:  e.TOPSPerWatt,
		TOPSPerTCO:   e.TOPSPerTCO,
	}, nil
}

// ---- /v1/perfsim/simulate-batch -------------------------------------------

// maxBatchConfigs bounds the candidate list of one simulate-batch request.
// The endpoint exists to amortize workload preparation across candidates,
// not to smuggle a whole design-space sweep past the study-job machinery —
// use POST /v1/dse/study for sweeps that need checkpoints and admission as
// long-running work.
const maxBatchConfigs = 256

// SimulateBatchRequest evaluates one workload at one batch size across many
// candidate chips in a single call. The workload graph is validated and
// prepared once and shared by every candidate (perfsim.SimulateBatch).
type SimulateBatchRequest struct {
	Workload string           `json:"workload"`
	Batch    int              `json:"batch"`
	Options  *perfsim.Options `json:"options,omitempty"` // nil = all optimizations on
	Configs  []ChipRequest    `json:"configs"`
}

// SimulateBatchEntry is one candidate's outcome: a result, or a failure in
// (kind, error) form — the same taxonomy classes error responses carry. A
// failed candidate never disturbs its neighbors.
type SimulateBatchEntry struct {
	Result *SimulateResponse `json:"result,omitempty"`
	Kind   string            `json:"kind,omitempty"`
	Err    string            `json:"error,omitempty"`
}

// SimulateBatchResponse is the simulate-batch wire format. Results[i]
// corresponds to Configs[i].
type SimulateBatchResponse struct {
	Workload string               `json:"workload"`
	Batch    int                  `json:"batch"`
	Failed   int                  `json:"failed"`
	Results  []SimulateBatchEntry `json:"results"`
}

// simulateBatchHandler runs one workload across many candidate chips.
// Request-level problems (unknown workload, no/too many configs, invalid
// batch) fail the call; per-candidate problems (unresolvable config,
// infeasible chip, non-finite metrics) land in that candidate's entry with
// status 200. Admission, deadline, and body-size limits are the simulate
// endpoint's — one batch call occupies one simulate slot.
func (s *Server) simulateBatchHandler(r *http.Request) (int, any, error) {
	var req SimulateBatchRequest
	if err := decodeBody(r, &req); err != nil {
		return 0, nil, err
	}
	if len(req.Configs) == 0 {
		return 0, nil, guard.Invalid("simulate-batch: no configs")
	}
	if len(req.Configs) > maxBatchConfigs {
		return 0, nil, guard.Invalid("simulate-batch: %d configs exceeds the %d limit",
			len(req.Configs), maxBatchConfigs)
	}
	g, err := workloads.ByName(req.Workload)
	if err != nil {
		return 0, nil, guard.Invalid("%v", err)
	}
	p, err := perfsim.Prepare(g)
	if err != nil {
		return 0, nil, err
	}
	opt := perfsim.DefaultOptions()
	if req.Options != nil {
		opt = *req.Options
	}
	batch := req.Batch
	if batch == 0 {
		batch = 1
	}
	resp := SimulateBatchResponse{
		Workload: g.Name,
		Batch:    batch,
		Results:  make([]SimulateBatchEntry, len(req.Configs)),
	}
	// Resolve every candidate chip first; a config that does not build is a
	// per-entry failure and its slot stays nil through the batch (perfsim
	// skips nothing — a nil chip fails candidate validation — but the build
	// error recorded here wins).
	chips := make([]*chip.Chip, len(req.Configs))
	for i, cr := range req.Configs {
		c, rerr := cr.resolve()
		if rerr != nil {
			resp.Results[i] = SimulateBatchEntry{Kind: guard.Kind(rerr), Err: rerr.Error()}
			continue
		}
		chips[i] = c
	}
	br, err := p.SimulateBatch(r.Context(), batch, opt, chips)
	if err != nil {
		return 0, nil, err
	}
	defer br.Release()
	for i := range resp.Results {
		if resp.Results[i].Err != "" {
			continue // config never built; keep the build error
		}
		if serr := br.Errs[i]; serr != nil {
			resp.Results[i] = SimulateBatchEntry{Kind: guard.Kind(serr), Err: serr.Error()}
			continue
		}
		res := &br.Results[i]
		c := chips[i]
		e := c.Efficiency(res.AchievedTOPS*1e12, res.Activity)
		resp.Results[i].Result = &SimulateResponse{
			Chip:         c.Cfg.Name,
			Workload:     g.Name,
			Batch:        batch,
			FPS:          res.FPS,
			LatencyMS:    res.LatencySec * 1e3,
			AchievedTOPS: res.AchievedTOPS,
			Utilization:  res.Utilization,
			PowerW:       e.PowerW,
			TOPSPerWatt:  e.TOPSPerWatt,
			TOPSPerTCO:   e.TOPSPerTCO,
		}
	}
	for _, en := range resp.Results {
		if en.Err != "" {
			resp.Failed++
		}
	}
	return http.StatusOK, resp, nil
}

// ---- /v1/worker/eval ------------------------------------------------------

// workerEval is the worker side of the fleet protocol: evaluate one shard
// of a distributed study and return its outcomes. Candidate failures travel
// inside the 200 response as (kind, msg) outcomes; only a malformed shard
// (400) or an interrupted evaluation (the coordinator's lease expired and
// canceled the request) fails the call, in which case the coordinator
// requeues the shard elsewhere — re-evaluation is deterministic, so a
// retried shard cannot change the study's output. guard.Inject("fleet.shard")
// is the chaos hook the fleet tests and the CI chaos job use to fault
// workers without killing processes.
//
// Tracing: a request carrying a coordinator traceparent gets its own
// request-scoped tracer — independent of this process's -trace state — and
// the captured span subtree (worker.eval plus its per-candidate evals)
// rides back in the response for the coordinator to graft into the study
// trace.
func (s *Server) workerEval(r *http.Request) (int, any, error) {
	var sh dse.Shard
	if err := decodeBody(r, &sh); err != nil {
		return 0, nil, err
	}
	ctx := r.Context()
	var rt *obs.Tracer
	var root *obs.Span
	if traceID, _, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
		rt = obs.NewRequestTracer()
		rt.SetTraceID(traceID)
		ctx, root = rt.StartRoot(ctx, "worker.eval",
			obs.Int("candidates", int64(len(sh.Cands))))
	}
	if err := guard.Inject(ctx, "fleet.shard"); err != nil {
		return 0, nil, err
	}
	outs, err := dse.EvalShard(ctx, sh, s.cfg.Workers, s.cfg.Results)
	root.End() // nil-safe; must end before export so the subtree is complete
	if err != nil {
		return 0, nil, err
	}
	res := dse.ShardResult{Outcomes: outs}
	if rt != nil {
		res.Spans = rt.WireSpans()
	}
	return http.StatusOK, res, nil
}

// decodeBody reads a bounded JSON request body. Malformed JSON is an
// invalid-config failure (400), not a server error; a body past the
// MaxBytesReader bound (installed by handle) is a 413.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return fmt.Errorf("%w: request body exceeds %d bytes", ErrTooLarge, tooBig.Limit)
		}
		return guard.Invalid("request body: %v", err)
	}
	return nil
}
